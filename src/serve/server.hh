/**
 * @file
 * Event-driven inference serving front end.
 *
 * One InferenceServer wraps one CompiledModel behind a
 * DynamicBatcher and speaks the length-prefixed wire protocol
 * (serve/wire.hh) over two transports:
 *
 *  - **Sockets** (start()): a poll(2) event loop on non-blocking
 *    TCP sockets bound to 127.0.0.1. Connections are accepted
 *    non-blocking, partial reads accumulate in a per-connection
 *    FrameReader, decoded requests go to the batcher, and
 *    completions append encoded responses to the connection's write
 *    buffer — a self-pipe wakes the poll loop, which flushes under
 *    POLLOUT. Responses for a connection that closed mid-request are
 *    dropped and counted (droppedResponses), never delivered to a
 *    stale fd.
 *
 *  - **Loopback** (loopback()): an in-process client handle whose
 *    bytes run through the identical Session framing/decode path and
 *    the same batcher — no sockets, no poll loop — so deterministic
 *    tests (and the perf_report serve section) prove the whole wire
 *    format and serving semantics without touching the network.
 *
 * shutdown() is graceful: stop accepting, drain the batcher (every
 * admitted request completes; late submits get a typed ShuttingDown
 * response), flush pending connection writes, then join the loop.
 */

#ifndef NC_SERVE_SERVER_HH
#define NC_SERVE_SERVER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/batcher.hh"
#include "serve/wire.hh"

namespace nc::serve
{

/** Everything an InferenceServer is configured with. */
struct ServerOptions
{
    BatcherOptions batcher;
    /** Socket mode: TCP port on 127.0.0.1 (0 = ephemeral). */
    unsigned port = 0;
    /** Concurrent connections; later accepts are closed at once. */
    unsigned maxConnections = 64;
};

/** Aggregate transport counters (atomically maintained). */
struct ServerStats
{
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsRefused = 0; ///< over maxConnections
    uint64_t framesIn = 0;           ///< well-formed requests decoded
    uint64_t protocolErrors = 0;     ///< bad frames / poisoned streams
    uint64_t droppedResponses = 0;   ///< connection died mid-request
};

namespace detail
{
class Session;
struct LoopbackState;
} // namespace detail

/** Serves one compiled model over sockets and/or loopback. */
class InferenceServer
{
  public:
    /** @p model must outlive the server. Serving needs a functional
     * backend (the batcher enforces it — analytic models have no
     * output tensors to return). */
    InferenceServer(core::CompiledModel &model,
                    ServerOptions opts = {});
    ~InferenceServer(); ///< shutdown()

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * In-process client over the shared framing path. Handles are
     * cheap; each owns its own response stream. send() is
     * non-blocking (completions arrive on the batcher thread);
     * receive() blocks for the next response in completion order.
     */
    class LoopbackClient
    {
      public:
        /** Encode and submit one request. */
        void send(const wire::RequestFrame &req);
        /** Feed raw frame bytes (malformed-stream tests). */
        void sendBytes(std::span<const uint8_t> bytes);
        /**
         * Next decoded response, blocking up to @p timeoutMs.
         * nullopt on timeout or when the response stream itself is
         * corrupt (never expected from an in-process server).
         */
        std::optional<wire::ResponseFrame>
        receive(unsigned timeoutMs = 30000);

      private:
        friend class InferenceServer;
        std::shared_ptr<detail::LoopbackState> state;
        std::shared_ptr<detail::Session> session;
    };

    /** New loopback client; usable with or without start(). */
    LoopbackClient loopback();

    /**
     * Bind 127.0.0.1:options().port, listen, and spawn the poll
     * loop. Returns false with @p error filled when the socket
     * layer refuses (no permission, port taken) — callers choose
     * between dying loudly and falling back to loopback.
     */
    bool start(std::string *error = nullptr);
    /** The bound TCP port (valid after a successful start()). */
    uint16_t port() const { return boundPort; }

    /** Graceful stop: no new work, drain, flush, join. Idempotent. */
    void shutdown();

    DynamicBatcher &batcher() { return batch; }
    const DynamicBatcher &batcher() const { return batch; }
    const ServerOptions &options() const { return opts; }
    ServerStats serverStats() const;

  private:
    friend class detail::Session;
    struct Connection;
    struct SocketState;

    void pollLoop();
    void wake();
    void acceptNew();
    void readConn(const std::shared_ptr<Connection> &conn);
    bool flushConn(const std::shared_ptr<Connection> &conn);
    void closeConn(const std::shared_ptr<Connection> &conn);
    /** Route one decoded request (or a decode failure) from a
     * session into the batcher / straight back out. */
    void dispatch(detail::Session &session,
                  std::vector<uint8_t> payload);

    ServerOptions opts;
    DynamicBatcher batch;
    uint16_t boundPort = 0;
    std::unique_ptr<SocketState> sock; ///< null until start()

    struct StatCells;
    std::unique_ptr<StatCells> stat;
};

} // namespace nc::serve

#endif // NC_SERVE_SERVER_HH
