#include "serve/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <thread>

#include "common/logging.hh"

namespace nc::serve
{

namespace detail
{

/**
 * One request stream: the framing/decode path shared by the socket
 * and loopback transports. Incoming bytes are fed from exactly one
 * thread per session; deliveries (encoded responses) may arrive from
 * the batcher thread concurrently, so the deliver callback is the
 * thread-safety boundary.
 */
class Session : public std::enable_shared_from_this<Session>
{
  public:
    using Deliver = std::function<void(std::vector<uint8_t>)>;

    Session(InferenceServer &srv_, Deliver deliver_)
        : srv(srv_), deliver(std::move(deliver_))
    {
    }

    void
    onBytes(std::span<const uint8_t> bytes)
    {
        reader.feed(bytes);
        while (auto payload = reader.next())
            srv.dispatch(*this, std::move(*payload));
    }

    bool poisoned() const { return !reader.error().empty(); }
    const std::string &streamError() const { return reader.error(); }

    void
    deliverResponse(const wire::ResponseFrame &rsp)
    {
        std::vector<uint8_t> bytes;
        wire::encodeResponse(rsp, bytes);
        deliver(std::move(bytes));
    }

  private:
    InferenceServer &srv;
    Deliver deliver;
    wire::FrameReader reader;
};

/** The loopback client's response side: bytes back to frames. */
struct LoopbackState
{
    std::mutex mtx;
    std::condition_variable cv;
    wire::FrameReader reader;
    std::deque<wire::ResponseFrame> ready;
    std::string error;

    void
    onResponseBytes(std::vector<uint8_t> bytes)
    {
        std::lock_guard lk(mtx);
        reader.feed(bytes);
        while (auto payload = reader.next()) {
            wire::ResponseFrame rsp;
            std::string err;
            if (wire::decodeResponse(*payload, rsp, err))
                ready.push_back(std::move(rsp));
            else if (error.empty())
                error = err;
        }
        if (error.empty() && !reader.error().empty())
            error = reader.error();
        cv.notify_all();
    }
};

} // namespace detail

struct InferenceServer::StatCells
{
    std::atomic<uint64_t> connectionsAccepted{0};
    std::atomic<uint64_t> connectionsRefused{0};
    std::atomic<uint64_t> framesIn{0};
    std::atomic<uint64_t> protocolErrors{0};
    std::atomic<uint64_t> droppedResponses{0};
};

/** One accepted TCP connection. The poll loop owns fd and reads;
 * deliveries append to the write buffer under mtx. */
struct InferenceServer::Connection
{
    int fd = -1;
    std::shared_ptr<detail::Session> session;
    std::mutex mtx;
    std::vector<uint8_t> out;
    size_t outPos = 0;
    bool closed = false;

    bool
    hasPending()
    {
        std::lock_guard lk(mtx);
        return outPos < out.size();
    }
};

struct InferenceServer::SocketState
{
    int listenFd = -1;
    int wakeR = -1, wakeW = -1;
    std::thread loop;
    std::vector<std::shared_ptr<Connection>> conns; ///< loop thread only
    std::atomic<bool> stopAccepting{false};
    std::atomic<bool> exitWhenIdle{false};
    /** Flush budget once exitWhenIdle: steady_clock ms timestamp. */
    std::atomic<int64_t> flushDeadlineMs{0};
};

namespace
{

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

InferenceServer::InferenceServer(core::CompiledModel &model,
                                 ServerOptions opts_)
    : opts(opts_), batch(model, opts_.batcher),
      stat(std::make_unique<StatCells>())
{
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

void
InferenceServer::dispatch(detail::Session &session,
                          std::vector<uint8_t> payload)
{
    wire::RequestFrame req;
    std::string err;
    if (!wire::decodeRequest(payload, req, err)) {
        ++stat->protocolErrors;
        wire::ResponseFrame rsp;
        rsp.id = 0; // the id could not be trusted
        rsp.status = wire::Status::BadRequest;
        rsp.message = err;
        session.deliverResponse(rsp);
        return;
    }
    ++stat->framesIn;
    auto sp = session.shared_from_this();
    uint64_t id = req.id;
    batch.submit(std::move(req.input), req.priority,
                 [sp, id](DynamicBatcher::Result r) {
                     wire::ResponseFrame rsp;
                     rsp.id = id;
                     rsp.status = r.status;
                     rsp.queueMs = r.queueMs;
                     rsp.latencyMs = r.latencyMs;
                     rsp.passIndex = r.passIndex;
                     rsp.batchSize = r.batchSize;
                     rsp.message = std::move(r.message);
                     rsp.output = std::move(r.output);
                     sp->deliverResponse(rsp);
                 });
}

// ---------------------------------------------------------------------
// Loopback transport
// ---------------------------------------------------------------------

InferenceServer::LoopbackClient
InferenceServer::loopback()
{
    LoopbackClient client;
    client.state = std::make_shared<detail::LoopbackState>();
    auto state = client.state;
    client.session = std::make_shared<detail::Session>(
        *this, [state](std::vector<uint8_t> bytes) {
            state->onResponseBytes(std::move(bytes));
        });
    return client;
}

void
InferenceServer::LoopbackClient::send(const wire::RequestFrame &req)
{
    std::vector<uint8_t> bytes;
    wire::encodeRequest(req, bytes);
    session->onBytes(bytes);
}

void
InferenceServer::LoopbackClient::sendBytes(
    std::span<const uint8_t> bytes)
{
    session->onBytes(bytes);
}

std::optional<wire::ResponseFrame>
InferenceServer::LoopbackClient::receive(unsigned timeoutMs)
{
    std::unique_lock lk(state->mtx);
    bool got = state->cv.wait_for(
        lk, std::chrono::milliseconds(timeoutMs),
        [&] { return !state->ready.empty() || !state->error.empty(); });
    if (!got || state->ready.empty())
        return std::nullopt;
    wire::ResponseFrame rsp = std::move(state->ready.front());
    state->ready.pop_front();
    return rsp;
}

// ---------------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------------

bool
InferenceServer::start(std::string *error)
{
    auto fail = [&](const char *what) {
        if (error)
            *error = std::string(what) + ": " + std::strerror(errno);
        if (sock) {
            if (sock->listenFd >= 0)
                ::close(sock->listenFd);
            if (sock->wakeR >= 0)
                ::close(sock->wakeR);
            if (sock->wakeW >= 0)
                ::close(sock->wakeW);
            sock.reset();
        }
        return false;
    };

    nc_assert(!sock, "InferenceServer::start called twice");
    sock = std::make_unique<SocketState>();

    sock->listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (sock->listenFd < 0)
        return fail("socket");
    setNonBlocking(sock->listenFd);
    int one = 1;
    (void)::setsockopt(sock->listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(opts.port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(sock->listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0)
        return fail("bind");
    if (::listen(sock->listenFd, 64) < 0)
        return fail("listen");

    socklen_t len = sizeof addr;
    if (::getsockname(sock->listenFd,
                      reinterpret_cast<sockaddr *>(&addr), &len) < 0)
        return fail("getsockname");
    boundPort = ntohs(addr.sin_port);

    int pfd[2];
    if (::pipe(pfd) < 0)
        return fail("pipe");
    sock->wakeR = pfd[0];
    sock->wakeW = pfd[1];
    setNonBlocking(sock->wakeR);
    setNonBlocking(sock->wakeW);

    sock->loop = std::thread([this] { pollLoop(); });
    return true;
}

void
InferenceServer::wake()
{
    if (!sock || sock->wakeW < 0)
        return;
    uint8_t b = 1;
    // A full pipe already guarantees a pending wakeup.
    (void)!::write(sock->wakeW, &b, 1);
}

void
InferenceServer::acceptNew()
{
    for (;;) {
        int fd = ::accept(sock->listenFd, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN or transient: poll again
        if (sock->stopAccepting.load() ||
            sock->conns.size() >= opts.maxConnections) {
            ++stat->connectionsRefused;
            ::close(fd);
            continue;
        }
        setNonBlocking(fd);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        std::weak_ptr<Connection> wconn = conn;
        conn->session = std::make_shared<detail::Session>(
            *this, [this, wconn](std::vector<uint8_t> bytes) {
                auto c = wconn.lock();
                if (!c) {
                    ++stat->droppedResponses;
                    return;
                }
                {
                    std::lock_guard lk(c->mtx);
                    if (c->closed) {
                        ++stat->droppedResponses;
                        return;
                    }
                    c->out.insert(c->out.end(), bytes.begin(),
                                  bytes.end());
                }
                wake();
            });
        sock->conns.push_back(std::move(conn));
        ++stat->connectionsAccepted;
    }
}

void
InferenceServer::readConn(const std::shared_ptr<Connection> &conn)
{
    uint8_t buf[65536];
    for (;;) {
        ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
        if (n > 0) {
            conn->session->onBytes({buf, static_cast<size_t>(n)});
            if (conn->session->poisoned()) {
                ++stat->protocolErrors;
                nc_warn("serve: dropping connection: %s",
                        conn->session->streamError().c_str());
                closeConn(conn);
                return;
            }
            continue;
        }
        if (n == 0) { // peer closed; responses in flight will drop
            closeConn(conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == EINTR)
            return;
        closeConn(conn); // hard error
        return;
    }
}

/** Returns false once the connection is gone. */
bool
InferenceServer::flushConn(const std::shared_ptr<Connection> &conn)
{
    std::unique_lock lk(conn->mtx);
    while (conn->outPos < conn->out.size()) {
        ssize_t n = ::send(conn->fd, conn->out.data() + conn->outPos,
                           conn->out.size() - conn->outPos,
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn->outPos += static_cast<size_t>(n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            return true; // poll for POLLOUT
        lk.unlock();
        closeConn(conn);
        return false;
    }
    conn->out.clear();
    conn->outPos = 0;
    return true;
}

void
InferenceServer::closeConn(const std::shared_ptr<Connection> &conn)
{
    std::lock_guard lk(conn->mtx);
    if (conn->closed)
        return;
    conn->closed = true;
    ::close(conn->fd);
    conn->fd = -1;
}

void
InferenceServer::pollLoop()
{
    auto &st = *sock;
    for (;;) {
        std::vector<pollfd> fds;
        fds.push_back({st.wakeR, POLLIN, 0});
        bool accepting = !st.stopAccepting.load();
        if (accepting)
            fds.push_back({st.listenFd, POLLIN, 0});
        size_t firstConn = fds.size();
        size_t nConns = st.conns.size(); // acceptNew grows the list;
                                         // only these have pollfds
        bool anyPending = false;
        for (auto &conn : st.conns) {
            short events = POLLIN;
            if (conn->hasPending()) {
                events |= POLLOUT;
                anyPending = true;
            }
            fds.push_back({conn->fd, events, 0});
        }

        if (st.exitWhenIdle.load()) {
            if (!anyPending)
                break;
            if (nowMs() > st.flushDeadlineMs.load()) {
                nc_warn("serve: shutdown flush budget exhausted with "
                        "%zu connections still writing",
                        st.conns.size());
                break;
            }
        }

        int timeout = st.exitWhenIdle.load() ? 50 : -1;
        if (::poll(fds.data(), fds.size(), timeout) < 0) {
            if (errno == EINTR)
                continue;
            nc_warn("serve: poll failed: %s", std::strerror(errno));
            break;
        }

        if (fds[0].revents & POLLIN) { // drain the wake pipe
            uint8_t junk[256];
            while (::read(st.wakeR, junk, sizeof junk) > 0) {
            }
        }
        if (accepting && (fds[firstConn - 1].revents & POLLIN))
            acceptNew();

        for (size_t i = 0; i < nConns; ++i) {
            auto conn = st.conns[i];
            short rev = fds[firstConn + i].revents;
            if (rev & (POLLERR | POLLNVAL)) {
                closeConn(conn);
                continue;
            }
            if (rev & POLLOUT)
                if (!flushConn(conn))
                    continue;
            if (rev & (POLLIN | POLLHUP))
                readConn(conn);
        }
        std::erase_if(st.conns, [](const auto &c) {
            std::lock_guard lk(c->mtx);
            return c->closed;
        });
    }
    for (auto &conn : st.conns)
        closeConn(conn);
    st.conns.clear();
}

void
InferenceServer::shutdown()
{
    if (sock && sock->loop.joinable()) {
        sock->stopAccepting.store(true);
        wake();
    }
    // Every admitted request completes (appending responses that the
    // still-running poll loop keeps flushing); late submits get the
    // typed ShuttingDown refusal.
    batch.drain();
    if (sock && sock->loop.joinable()) {
        sock->flushDeadlineMs.store(nowMs() + 5000);
        sock->exitWhenIdle.store(true);
        wake();
        sock->loop.join();
        ::close(sock->listenFd);
        ::close(sock->wakeR);
        ::close(sock->wakeW);
        sock->listenFd = sock->wakeR = sock->wakeW = -1;
    }
}

ServerStats
InferenceServer::serverStats() const
{
    ServerStats s;
    s.connectionsAccepted = stat->connectionsAccepted.load();
    s.connectionsRefused = stat->connectionsRefused.load();
    s.framesIn = stat->framesIn.load();
    s.protocolErrors = stat->protocolErrors.load();
    s.droppedResponses = stat->droppedResponses.load();
    return s;
}

} // namespace nc::serve
