#include "serve/loadgen.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"
#include "dnn/random.hh"

namespace nc::serve
{

// ---------------------------------------------------------------------
// SocketClient
// ---------------------------------------------------------------------

std::optional<SocketClient>
SocketClient::connectTo(uint16_t port, std::string *error)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return std::nullopt;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        if (error)
            *error = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return std::nullopt;
    }
    return SocketClient(fd);
}

SocketClient::~SocketClient()
{
    if (fd >= 0)
        ::close(fd);
}

SocketClient::SocketClient(SocketClient &&other) noexcept
    : fd(other.fd), reader(std::move(other.reader)),
      err(std::move(other.err))
{
    other.fd = -1;
}

void
SocketClient::send(const wire::RequestFrame &req)
{
    std::vector<uint8_t> bytes;
    wire::encodeRequest(req, bytes);
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        err = std::string("send: ") + std::strerror(errno);
        return;
    }
}

std::optional<wire::ResponseFrame>
SocketClient::receive(unsigned timeoutMs)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs);
    for (;;) {
        if (auto payload = reader.next()) {
            wire::ResponseFrame rsp;
            std::string derr;
            if (!wire::decodeResponse(*payload, rsp, derr)) {
                err = derr;
                return std::nullopt;
            }
            return rsp;
        }
        if (!reader.error().empty()) {
            err = reader.error();
            return std::nullopt;
        }
        auto left = std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
        if (left <= 0) {
            err = "receive timeout";
            return std::nullopt;
        }
        pollfd pfd{fd, POLLIN, 0};
        int pr = ::poll(&pfd, 1, static_cast<int>(left));
        if (pr < 0 && errno != EINTR) {
            err = std::string("poll: ") + std::strerror(errno);
            return std::nullopt;
        }
        if (pr <= 0)
            continue;
        uint8_t buf[65536];
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            reader.feed({buf, static_cast<size_t>(n)});
            continue;
        }
        if (n == 0) {
            err = "connection closed by server";
            return std::nullopt;
        }
        if (errno != EINTR && errno != EAGAIN) {
            err = std::string("recv: ") + std::strerror(errno);
            return std::nullopt;
        }
    }
}

// ---------------------------------------------------------------------
// Load generation
// ---------------------------------------------------------------------

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** Request i's input, a pure function of (seed, i, model shape). */
dnn::QTensor
requestInput(const core::CompiledModel &model, uint64_t seed,
             uint64_t i)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + i + 1);
    return dnn::randomQTensor(rng, model.inputChannels(),
                              model.inputHeight(),
                              model.inputWidth());
}

/** One channel's outcome, merged after the join. */
struct ChannelResult
{
    std::vector<double> latenciesMs;
    uint64_t completed = 0, rejected = 0, errors = 0,
             mismatched = 0;
};

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

LoadStats
runLoadGen(core::CompiledModel &model, InferenceServer &server,
           const LoadGenOptions &opts)
{
    nc_assert(opts.requests > 0 && opts.clients > 0,
              "loadgen needs requests >= 1 and clients >= 1");
    nc_assert(opts.priority <= wire::kMaxPriority,
              "loadgen priority %u out of band", opts.priority);
    if (opts.overSocket)
        nc_assert(server.port() != 0,
                  "socket-mode loadgen needs a started server");

    // Deterministic inputs; expected outputs computed up front on
    // the idle model (the batcher's runner only touches the model
    // once traffic starts).
    std::vector<dnn::QTensor> inputs;
    inputs.reserve(opts.requests);
    for (uint64_t i = 0; i < opts.requests; ++i)
        inputs.push_back(requestInput(model, opts.seed, i));
    std::vector<dnn::QTensor> expected;
    if (opts.verify) {
        auto direct = model.runBatch(inputs);
        expected = std::move(direct.outputs);
    }

    unsigned clients =
        std::min(opts.clients, std::max(1u, opts.requests));
    std::vector<ChannelResult> results(clients);
    auto t0 = Clock::now();

    auto worker = [&](unsigned c) {
        ChannelResult &res = results[c];
        // Per-channel transport.
        std::optional<SocketClient> sockCh;
        std::optional<InferenceServer::LoopbackClient> loopCh;
        if (opts.overSocket) {
            std::string cerr;
            auto connected = SocketClient::connectTo(
                static_cast<uint16_t>(server.port()), &cerr);
            if (!connected) {
                nc_warn("loadgen client %u: %s", c, cerr.c_str());
                res.errors += (opts.requests - c - 1) / clients + 1;
                return;
            }
            sockCh.emplace(std::move(*connected));
        } else {
            loopCh = server.loopback();
        }
        auto sendOne = [&](uint64_t i) {
            wire::RequestFrame req;
            req.id = i + 1; // ids are 1-based; 0 marks "unparsed"
            req.priority = static_cast<uint8_t>(opts.priority);
            req.input = inputs[i];
            if (sockCh)
                sockCh->send(req);
            else
                loopCh->send(req);
        };
        auto receiveOne = [&] {
            return sockCh ? sockCh->receive() : loopCh->receive();
        };
        auto account = [&](const wire::ResponseFrame &rsp,
                           double clientMs) {
            switch (rsp.status) {
            case wire::Status::Ok:
                ++res.completed;
                // Closed loop: client wall time. Open loop: the
                // server-side latency the response carries (the
                // channel drains responses after the send phase).
                res.latenciesMs.push_back(
                    opts.openLoopRps > 0 ? rsp.latencyMs : clientMs);
                if (opts.verify) {
                    uint64_t i = rsp.id - 1;
                    if (rsp.output.data() != expected[i].data() ||
                        rsp.output.channels() !=
                            expected[i].channels())
                        ++res.mismatched;
                }
                break;
            case wire::Status::Rejected:
                ++res.rejected;
                break;
            default:
                ++res.errors;
                break;
            }
        };

        if (opts.openLoopRps > 0) {
            // Open loop: send request i at t0 + i/rate regardless of
            // completions, then drain this channel's responses.
            auto interval = std::chrono::duration<double>(
                1.0 / opts.openLoopRps);
            unsigned sent = 0;
            for (uint64_t i = c; i < opts.requests; i += clients) {
                std::this_thread::sleep_until(
                    t0 + std::chrono::duration_cast<Clock::duration>(
                             interval * static_cast<double>(i)));
                sendOne(i);
                ++sent;
            }
            for (unsigned k = 0; k < sent; ++k) {
                auto rsp = receiveOne();
                if (!rsp) {
                    ++res.errors;
                    continue;
                }
                account(*rsp, 0);
            }
        } else {
            // Closed loop: one outstanding request per channel.
            for (uint64_t i = c; i < opts.requests; i += clients) {
                auto s0 = Clock::now();
                sendOne(i);
                auto rsp = receiveOne();
                if (!rsp) {
                    ++res.errors;
                    continue;
                }
                account(*rsp, msSince(s0, Clock::now()));
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned c = 0; c < clients; ++c)
        threads.emplace_back(worker, c);
    for (auto &t : threads)
        t.join();
    double wallMs = msSince(t0, Clock::now());

    LoadStats stats;
    std::vector<double> all;
    for (auto &res : results) {
        stats.completed += res.completed;
        stats.rejected += res.rejected;
        stats.errors += res.errors;
        stats.mismatched += res.mismatched;
        all.insert(all.end(), res.latenciesMs.begin(),
                   res.latenciesMs.end());
    }
    std::sort(all.begin(), all.end());
    stats.p50Ms = percentile(all, 0.5);
    stats.p99Ms = percentile(all, 0.99);
    stats.wallMs = wallMs;
    stats.imagesPerSec =
        wallMs > 0 ? static_cast<double>(stats.completed) /
                         (wallMs / 1e3)
                   : 0;
    auto bstats = server.batcher().stats();
    stats.meanOccupancy = bstats.meanOccupancy();
    stats.occupancyHist = bstats.occupancyHist;
    return stats;
}

} // namespace nc::serve
