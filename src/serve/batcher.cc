#include "serve/batcher.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nc::serve
{

namespace
{

double
msSince(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

double
BatcherStats::meanOccupancy() const
{
    uint64_t images = 0, flushes = 0;
    for (size_t n = 1; n < occupancyHist.size(); ++n) {
        images += n * occupancyHist[n];
        flushes += occupancyHist[n];
    }
    return flushes ? static_cast<double>(images) / flushes : 0.0;
}

DynamicBatcher::DynamicBatcher(core::CompiledModel &model_,
                               BatcherOptions opts_)
    : model(model_), opts(opts_)
{
    if (!model.functional())
        nc_fatal("DynamicBatcher needs a functional model: backend "
                 "'%s' produces no output tensors to serve",
                 core::backendKindName(model.backend()));
    if (opts.maxInflight == 0)
        nc_fatal("DynamicBatcher: maxInflight must be >= 1");
    if (opts.deadlineMs == 0)
        nc_fatal("DynamicBatcher: deadlineMs must be >= 1");
    perPass = opts.maxBatch ? opts.maxBatch
                            : model.batchBands().imageSlots;
    perPass = std::clamp(perPass, 1u, core::CompiledModel::kMaxBatch);
    counters.occupancyHist.assign(perPass + 1, 0);
    paused = opts.startPaused;
    runner = std::thread([this] { runnerLoop(); });
}

DynamicBatcher::~DynamicBatcher()
{
    drain();
}

void
DynamicBatcher::submit(dnn::QTensor input, uint8_t priority,
                       Completion done)
{
    nc_assert(priority <= wire::kMaxPriority,
              "priority %u out of band", priority);
    Result refusal;
    {
        std::lock_guard lk(mtx);
        if (draining || stopped) {
            refusal.status = wire::Status::ShuttingDown;
            refusal.message = "server is draining";
        } else if (input.channels() != model.inputChannels() ||
                   input.height() != model.inputHeight() ||
                   input.width() != model.inputWidth()) {
            refusal.status = wire::Status::BadRequest;
            refusal.message = detail::format(
                "input shape %ux%ux%u does not match the model's "
                "%ux%ux%u",
                input.channels(), input.height(), input.width(),
                model.inputChannels(), model.inputHeight(),
                model.inputWidth());
            ++counters.badRequests;
        } else if (queue.size() + executing >= opts.maxInflight) {
            refusal.status = wire::Status::Rejected;
            refusal.message = detail::format(
                "in-flight cap %u reached — backpressure",
                opts.maxInflight);
            ++counters.rejected;
        } else {
            ++counters.accepted;
            queue.push_back(Pending{std::move(input), priority,
                                    nextSeq++, Clock::now(),
                                    std::move(done)});
            cv.notify_all();
            return;
        }
    }
    // Refusals complete inline on the caller's thread, outside the
    // lock (the completion may immediately resubmit).
    done(std::move(refusal));
}

std::vector<DynamicBatcher::Pending>
DynamicBatcher::takeBatch()
{
    // Deterministic composition: highest priority first, admission
    // order (seq) as the tie-break. seq is unique, so this is a total
    // order — identical submissions compose identical batches.
    std::sort(queue.begin(), queue.end(),
              [](const Pending &a, const Pending &b) {
                  if (a.priority != b.priority)
                      return a.priority > b.priority;
                  return a.seq < b.seq;
              });
    size_t n = std::min<size_t>(queue.size(), perPass);
    std::vector<Pending> batch;
    batch.reserve(n);
    std::move(queue.begin(), queue.begin() + static_cast<ptrdiff_t>(n),
              std::back_inserter(batch));
    queue.erase(queue.begin(), queue.begin() + static_cast<ptrdiff_t>(n));
    return batch;
}

void
DynamicBatcher::runnerLoop()
{
    std::unique_lock lk(mtx);
    for (;;) {
        if (queue.empty()) {
            if (draining)
                break;
            cv.wait(lk, [&] { return !queue.empty() || draining; });
            continue;
        }
        if (paused && !draining) {
            cv.wait(lk, [&] { return !paused || draining; });
            continue;
        }
        if (queue.size() < perPass && !draining) {
            // Undersized: wait for more work until the oldest queued
            // request's deadline, then flush what we have.
            auto oldest = std::min_element(
                              queue.begin(), queue.end(),
                              [](const Pending &a, const Pending &b) {
                                  return a.seq < b.seq;
                              })
                              ->arrival;
            auto deadline =
                oldest + std::chrono::milliseconds(opts.deadlineMs);
            if (Clock::now() < deadline) {
                cv.wait_until(lk, deadline);
                continue; // re-evaluate: new work, drain, or expiry
            }
            ++counters.deadlineFlushes;
        }
        auto batch = takeBatch();
        executing = static_cast<unsigned>(batch.size());
        uint64_t passIdx = counters.passes++;
        ++counters.occupancyHist[batch.size()];
        lk.unlock();

        std::vector<dnn::QTensor> inputs;
        inputs.reserve(batch.size());
        for (auto &p : batch)
            inputs.push_back(std::move(p.input));
        auto execStart = Clock::now();
        auto res = model.runBatch(inputs);
        auto done = Clock::now();

        // Publish the counters before delivering: a completion that
        // reads stats() must see its own pass accounted for.
        lk.lock();
        executing = 0;
        counters.served += batch.size();
        cv.notify_all(); // drain() waits for executing to settle
        lk.unlock();

        // Completions in batch order (priority desc, seq asc).
        for (size_t i = 0; i < batch.size(); ++i) {
            Result r;
            r.status = wire::Status::Ok;
            r.output = std::move(res.outputs[i]);
            r.queueMs = msSince(batch[i].arrival, execStart);
            r.latencyMs = msSince(batch[i].arrival, done);
            r.passIndex = passIdx;
            r.batchSize = static_cast<unsigned>(batch.size());
            batch[i].done(std::move(r));
        }

        lk.lock();
    }
    stopped = true;
    cv.notify_all();
}

void
DynamicBatcher::drain()
{
    {
        std::lock_guard lk(mtx);
        draining = true;
        paused = false;
        cv.notify_all();
    }
    // Join exactly once; later drain() calls (the destructor's,
    // typically) see an unjoinable thread and return immediately.
    std::lock_guard jl(joinMtx);
    if (runner.joinable())
        runner.join();
}

void
DynamicBatcher::pause()
{
    std::lock_guard lk(mtx);
    paused = true;
    cv.notify_all();
}

void
DynamicBatcher::resume()
{
    std::lock_guard lk(mtx);
    paused = false;
    cv.notify_all();
}

size_t
DynamicBatcher::queued() const
{
    std::lock_guard lk(mtx);
    return queue.size();
}

BatcherStats
DynamicBatcher::stats() const
{
    std::lock_guard lk(mtx);
    return counters;
}

} // namespace nc::serve
