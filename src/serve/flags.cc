#include "serve/flags.hh"

#include "serve/wire.hh"

namespace nc::serve
{

void
ServeFlags::registerWith(common::ArgParser &args)
{
    args.addUint("port", &port,
                 "TCP port on 127.0.0.1 (0 = ephemeral)", 0, 65535);
    args.addUint("deadline-ms", &deadlineMs,
                 "batching flush deadline in ms", 1, 600000);
    args.addUint("max-inflight", &maxInflight,
                 "admission cap on in-flight requests", 1, 65536);
    args.addUint("priority", &priority, "request priority (0 = bulk)",
                 0, wire::kMaxPriority);
}

} // namespace nc::serve
