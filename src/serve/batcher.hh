/**
 * @file
 * Deadline-driven dynamic batcher in front of a CompiledModel.
 *
 * Concurrent in-flight requests coalesce into the image-parallel
 * runBatch passes the §IV-E residency planner already carves: the
 * batcher queues admitted requests and flushes a pass when either the
 * model's image slots fill or the oldest queued request's latency
 * deadline expires — min(imageSlots reached, deadline expiry) — so
 * light traffic pays at most one deadline of extra latency and heavy
 * traffic runs at full batch occupancy.
 *
 * Semantics:
 *  - Admission control: at most maxInflight requests queued+executing;
 *    the next submit completes immediately with Status::Rejected (a
 *    loud typed response, never a silent drop).
 *  - Priorities: each flush serves the highest-priority queued
 *    requests first (wire::kMaxPriority band); ties break by
 *    admission order (sequence number), so identical runs compose
 *    identical batches — the determinism the parity suite and the
 *    bench numbers rely on.
 *  - Shape validation: an input that does not match the model dies
 *    here with Status::BadRequest instead of reaching runBatch (whose
 *    shape mismatch is a hard process error).
 *  - Drain: drain() stops admission (subsequent submits complete with
 *    Status::ShuttingDown), flushes every queued request in normal
 *    passes, and joins the runner.
 *
 * One runner thread serializes runBatch calls (the model's array
 * state is single-run; parallelism comes from the engine's pool
 * fanning the pass's images). Completions are invoked on the runner
 * thread — rejected/bad-request submits complete on the caller's
 * thread — and must not re-enter the batcher except via submit.
 *
 * pause()/resume() freeze the runner between passes so tests and the
 * backpressure probe can compose a queue deterministically; paused
 * time does not count against deadlines' usefulness (deadlines still
 * expire, the runner just won't look until resumed).
 */

#ifndef NC_SERVE_BATCHER_HH
#define NC_SERVE_BATCHER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/compiled_model.hh"
#include "serve/wire.hh"

namespace nc::serve
{

/** Batcher tuning; the CLI flags in flags.hh mirror these. */
struct BatcherOptions
{
    /**
     * Flush deadline in milliseconds: an undersized batch launches
     * once the oldest queued request has waited this long.
     */
    unsigned deadlineMs = 2;
    /** Admission cap on queued + executing requests. */
    unsigned maxInflight = 256;
    /**
     * Images per pass; 0 uses the model's batchBands().imageSlots
     * (the §IV-E concurrency the cache capacity supports) — the
     * natural flush quantum, since a larger batch only time-slices.
     */
    unsigned maxBatch = 0;
    /** Start with the runner frozen (tests/bench compose queues). */
    bool startPaused = false;
};

/** Aggregate counters; stats() snapshots them consistently. */
struct BatcherStats
{
    uint64_t accepted = 0;   ///< admitted into the queue
    uint64_t rejected = 0;   ///< typed Rejected completions
    uint64_t badRequests = 0; ///< shape/validation failures
    uint64_t served = 0;     ///< Ok completions
    uint64_t passes = 0;     ///< runBatch passes launched
    uint64_t deadlineFlushes = 0; ///< passes launched undersized
    /** occupancyHist[n] = passes that served exactly n requests
     * (index 0 unused; size imagesPerPass()+1). */
    std::vector<uint64_t> occupancyHist;

    /** Mean images per pass (0 when no pass ran). */
    double meanOccupancy() const;
};

/** Coalesces submitted requests into deadline-bounded passes. */
class DynamicBatcher
{
  public:
    /**
     * A served (or refused) request: the wire-level response minus
     * the id, which the transport layer owns.
     */
    struct Result
    {
        wire::Status status = wire::Status::Ok;
        dnn::QTensor output;
        double queueMs = 0;
        double latencyMs = 0;
        uint64_t passIndex = 0;
        unsigned batchSize = 0;
        std::string message;
    };

    using Completion = std::function<void(Result)>;

    /** @p model must outlive the batcher. */
    DynamicBatcher(core::CompiledModel &model, BatcherOptions opts);
    /** Drains and joins (equivalent to drain()). */
    ~DynamicBatcher();

    DynamicBatcher(const DynamicBatcher &) = delete;
    DynamicBatcher &operator=(const DynamicBatcher &) = delete;

    /**
     * Submit one request. Admitted requests complete on the runner
     * thread once their pass finishes; refused ones (over the
     * in-flight cap, wrong shape, draining) complete inline on the
     * calling thread with the typed non-Ok status. @p priority must
     * be within wire::kMaxPriority (transports validate first).
     */
    void submit(dnn::QTensor input, uint8_t priority, Completion done);

    /**
     * Stop admission, flush every queued request, join the runner.
     * Idempotent. Implicitly resumes a paused batcher — drain means
     * "finish the work", not "freeze with work queued".
     */
    void drain();

    /** @name Deterministic-composition hooks (tests, bench probes) */
    /// @{
    void pause();
    void resume();
    /// @}

    /** The flush quantum actually in use. */
    unsigned imagesPerPass() const { return perPass; }
    /** Queued (not yet executing) requests right now. */
    size_t queued() const;
    /** Consistent snapshot of the aggregate counters. */
    BatcherStats stats() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending
    {
        dnn::QTensor input;
        uint8_t priority = 0;
        uint64_t seq = 0; ///< admission order, the deterministic tie-break
        Clock::time_point arrival;
        Completion done;
    };

    void runnerLoop();
    /** Pop the next pass's requests (priority desc, seq asc). */
    std::vector<Pending> takeBatch();

    core::CompiledModel &model;
    BatcherOptions opts;
    unsigned perPass;

    mutable std::mutex mtx;
    std::mutex joinMtx; ///< serializes drain()'s one-time join
    std::condition_variable cv;
    std::vector<Pending> queue;
    uint64_t nextSeq = 0;
    unsigned executing = 0; ///< requests inside the current pass
    bool paused = false;
    bool draining = false;
    bool stopped = false;
    BatcherStats counters;
    std::thread runner;
};

} // namespace nc::serve

#endif // NC_SERVE_BATCHER_HH
