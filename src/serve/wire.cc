#include "serve/wire.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace nc::serve::wire
{

namespace
{

/** @name Little-endian field writers (append to a byte vector) */
/// @{
void
put8(std::vector<uint8_t> &out, uint8_t v)
{
    out.push_back(v);
}

void
put16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putF32(std::vector<uint8_t> &out, float v)
{
    put32(out, std::bit_cast<uint32_t>(v));
}

void
putF64(std::vector<uint8_t> &out, double v)
{
    put64(out, std::bit_cast<uint64_t>(v));
}
/// @}

/** Bounds-checked little-endian field reader over one payload. */
class Cursor
{
  public:
    explicit Cursor(std::span<const uint8_t> bytes_) : bytes(bytes_) {}

    bool
    take(size_t n, const uint8_t *&p)
    {
        if (bytes.size() - pos < n)
            return false;
        p = bytes.data() + pos;
        pos += n;
        return true;
    }

    bool
    get8(uint8_t &v)
    {
        const uint8_t *p;
        if (!take(1, p))
            return false;
        v = p[0];
        return true;
    }

    bool
    get16(uint16_t &v)
    {
        const uint8_t *p;
        if (!take(2, p))
            return false;
        v = static_cast<uint16_t>(p[0] | (p[1] << 8));
        return true;
    }

    bool
    get32(uint32_t &v)
    {
        const uint8_t *p;
        if (!take(4, p))
            return false;
        v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p[i]) << (8 * i);
        return true;
    }

    bool
    get64(uint64_t &v)
    {
        const uint8_t *p;
        if (!take(8, p))
            return false;
        v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p[i]) << (8 * i);
        return true;
    }

    bool
    getF32(float &v)
    {
        uint32_t bits;
        if (!get32(bits))
            return false;
        v = std::bit_cast<float>(bits);
        return true;
    }

    bool
    getF64(double &v)
    {
        uint64_t bits;
        if (!get64(bits))
            return false;
        v = std::bit_cast<double>(bits);
        return true;
    }

    bool atEnd() const { return pos == bytes.size(); }

  private:
    std::span<const uint8_t> bytes;
    size_t pos = 0;
};

void
putTensor(std::vector<uint8_t> &out, const dnn::QTensor &t)
{
    put32(out, t.channels());
    put32(out, t.height());
    put32(out, t.width());
    putF32(out, t.params().minVal);
    putF32(out, t.params().maxVal);
    out.insert(out.end(), t.data().begin(), t.data().end());
}

bool
getTensor(Cursor &c, dnn::QTensor &t, std::string &error)
{
    uint32_t ch, h, w;
    float lo, hi;
    if (!c.get32(ch) || !c.get32(h) || !c.get32(w) || !c.getF32(lo) ||
        !c.getF32(hi)) {
        error = "truncated tensor header";
        return false;
    }
    // An all-zero dim triple is the explicit "no tensor" encoding of
    // non-Ok responses; a partially zero one is malformed.
    if (ch == 0 && h == 0 && w == 0) {
        t = dnn::QTensor();
        return true;
    }
    if (ch == 0 || h == 0 || w == 0) {
        error = "degenerate tensor dims";
        return false;
    }
    uint64_t n = static_cast<uint64_t>(ch) * h * w;
    if (n > kMaxFrameBytes) {
        error = "tensor larger than the frame ceiling";
        return false;
    }
    const uint8_t *p;
    if (!c.take(static_cast<size_t>(n), p)) {
        error = "tensor payload shorter than its dims";
        return false;
    }
    t = dnn::QTensor(ch, h, w, dnn::QuantParams{lo, hi});
    std::memcpy(t.data().data(), p, static_cast<size_t>(n));
    return true;
}

/** Common payload header; returns false on magic/version mismatch. */
bool
checkHeader(Cursor &c, Kind want, std::string &error)
{
    uint16_t magic;
    uint8_t version, kind;
    if (!c.get16(magic) || !c.get8(version) || !c.get8(kind)) {
        error = "truncated frame header";
        return false;
    }
    if (magic != kMagic) {
        error = "bad magic (not a serve frame)";
        return false;
    }
    if (version != kVersion) {
        error = detail::format("protocol version %u, expected %u",
                               version, kVersion);
        return false;
    }
    if (kind != static_cast<uint8_t>(want)) {
        error = detail::format("frame kind %u, expected %u", kind,
                               static_cast<unsigned>(want));
        return false;
    }
    return true;
}

/** Back-patch the length prefix once the payload is in place. */
void
finishFrame(std::vector<uint8_t> &out, size_t lenAt)
{
    uint64_t payload = out.size() - lenAt - 4;
    nc_assert(payload <= kMaxFrameBytes,
              "frame payload %llu exceeds the %u-byte ceiling",
              static_cast<unsigned long long>(payload), kMaxFrameBytes);
    for (unsigned i = 0; i < 4; ++i)
        out[lenAt + i] = static_cast<uint8_t>(payload >> (8 * i));
}

} // namespace

const char *
statusName(Status s)
{
    switch (s) {
    case Status::Ok: return "ok";
    case Status::Rejected: return "rejected";
    case Status::BadRequest: return "bad-request";
    case Status::ShuttingDown: return "shutting-down";
    }
    return "unknown";
}

void
encodeRequest(const RequestFrame &req, std::vector<uint8_t> &out)
{
    nc_assert(req.priority <= kMaxPriority,
              "request priority %u out of band", req.priority);
    size_t lenAt = out.size();
    put32(out, 0); // patched below
    put16(out, kMagic);
    put8(out, kVersion);
    put8(out, static_cast<uint8_t>(Kind::Request));
    put64(out, req.id);
    put8(out, req.priority);
    putTensor(out, req.input);
    finishFrame(out, lenAt);
}

void
encodeResponse(const ResponseFrame &rsp, std::vector<uint8_t> &out)
{
    size_t lenAt = out.size();
    put32(out, 0); // patched below
    put16(out, kMagic);
    put8(out, kVersion);
    put8(out, static_cast<uint8_t>(Kind::Response));
    put64(out, rsp.id);
    put8(out, static_cast<uint8_t>(rsp.status));
    putF64(out, rsp.queueMs);
    putF64(out, rsp.latencyMs);
    put64(out, rsp.passIndex);
    put32(out, rsp.batchSize);
    put32(out, static_cast<uint32_t>(rsp.message.size()));
    out.insert(out.end(), rsp.message.begin(), rsp.message.end());
    putTensor(out, rsp.output);
    finishFrame(out, lenAt);
}

bool
decodeRequest(std::span<const uint8_t> payload, RequestFrame &out,
              std::string &error)
{
    Cursor c(payload);
    if (!checkHeader(c, Kind::Request, error))
        return false;
    if (!c.get64(out.id) || !c.get8(out.priority)) {
        error = "truncated request fields";
        return false;
    }
    if (out.priority > kMaxPriority) {
        error = detail::format("priority %u out of band (max %u)",
                               out.priority, kMaxPriority);
        return false;
    }
    if (!getTensor(c, out.input, error))
        return false;
    if (out.input.size() == 0) {
        error = "request carries no input tensor";
        return false;
    }
    if (!c.atEnd()) {
        error = "trailing bytes after request";
        return false;
    }
    return true;
}

bool
decodeResponse(std::span<const uint8_t> payload, ResponseFrame &out,
               std::string &error)
{
    Cursor c(payload);
    if (!checkHeader(c, Kind::Response, error))
        return false;
    uint8_t status;
    uint32_t msgLen;
    if (!c.get64(out.id) || !c.get8(status) ||
        !c.getF64(out.queueMs) || !c.getF64(out.latencyMs) ||
        !c.get64(out.passIndex) || !c.get32(out.batchSize) ||
        !c.get32(msgLen)) {
        error = "truncated response fields";
        return false;
    }
    if (status > static_cast<uint8_t>(Status::ShuttingDown)) {
        error = detail::format("unknown status byte %u", status);
        return false;
    }
    out.status = static_cast<Status>(status);
    const uint8_t *msg;
    if (!c.take(msgLen, msg)) {
        error = "truncated response message";
        return false;
    }
    out.message.assign(reinterpret_cast<const char *>(msg), msgLen);
    if (!getTensor(c, out.output, error))
        return false;
    if (!c.atEnd()) {
        error = "trailing bytes after response";
        return false;
    }
    return true;
}

void
FrameReader::feed(std::span<const uint8_t> bytes)
{
    if (!err.empty())
        return;
    // Compact the consumed prefix before growing: the buffer never
    // holds more than one partial frame plus what feed() just added.
    if (pos > 0) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<ptrdiff_t>(pos));
        pos = 0;
    }
    buf.insert(buf.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<uint8_t>>
FrameReader::next()
{
    if (!err.empty())
        return std::nullopt;
    if (buf.size() - pos < 4)
        return std::nullopt;
    uint32_t len = 0;
    for (unsigned i = 0; i < 4; ++i)
        len |= static_cast<uint32_t>(buf[pos + i]) << (8 * i);
    if (len > kMaxFrameBytes) {
        err = detail::format("frame length %u exceeds the %u-byte "
                             "ceiling — stream desynchronized",
                             len, kMaxFrameBytes);
        return std::nullopt;
    }
    if (buf.size() - pos - 4 < len)
        return std::nullopt;
    auto first = buf.begin() + static_cast<ptrdiff_t>(pos + 4);
    std::vector<uint8_t> payload(first,
                                 first + static_cast<ptrdiff_t>(len));
    pos += 4 + len;
    return payload;
}

} // namespace nc::serve::wire
