/**
 * @file
 * The serving CLI surface shared by the server binary
 * (examples/serve_demo) and the load generator (bench/serve_loadgen):
 * one struct, one registration call, identical flag names, bounds,
 * and error messages on both sides. All four flags use the strict
 * bounded parser (ArgParser::addUint), so garbage and out-of-range
 * values die naming the flag.
 */

#ifndef NC_SERVE_FLAGS_HH
#define NC_SERVE_FLAGS_HH

#include "common/argparse.hh"
#include "serve/batcher.hh"
#include "serve/server.hh"

namespace nc::serve
{

/** Parsed --port/--deadline-ms/--max-inflight/--priority values. */
struct ServeFlags
{
    unsigned port = 0;        ///< TCP port, 0 = ephemeral
    unsigned deadlineMs = 2;  ///< batcher flush deadline
    unsigned maxInflight = 256; ///< admission cap
    unsigned priority = 0;    ///< request priority (0..kMaxPriority)

    /** Register the four flags on @p args (bounds enforced). */
    void registerWith(common::ArgParser &args);

    /** Fold the batcher-facing values into server options. */
    ServerOptions
    serverOptions() const
    {
        ServerOptions o;
        o.port = port;
        o.batcher.deadlineMs = deadlineMs;
        o.batcher.maxInflight = maxInflight;
        return o;
    }
};

} // namespace nc::serve

#endif // NC_SERVE_FLAGS_HH
