/**
 * @file
 * Length-prefixed binary wire protocol of the serving front end.
 *
 * Every frame is a little-endian u32 payload length followed by the
 * payload; the payload starts with a magic/version/kind header so a
 * desynchronized or foreign byte stream is rejected loudly instead of
 * being misparsed. Two frame kinds:
 *
 *   Request:  id (u64), priority (u8, 0..kMaxPriority), input tensor
 *             (c/h/w u32 each, quant min/max f32 each, c*h*w bytes).
 *   Response: id (u64), status (u8), per-request InferenceReport
 *             slice (queue wait ms, total latency ms as f64; pass
 *             index u64; batch occupancy u32), an error string
 *             (u32 length + bytes, empty for Ok), and the output
 *             tensor in the request encoding (empty dims for non-Ok).
 *
 * The same encode/decode path serves both transports: the socket
 * server parses exactly these bytes off TCP connections, and the
 * in-process loopback transport routes them through the identical
 * FrameReader, so a loopback test proves the wire format too.
 */

#ifndef NC_SERVE_WIRE_HH
#define NC_SERVE_WIRE_HH

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dnn/tensor.hh"

namespace nc::serve::wire
{

/** First payload byte pair of every frame ("NC"). */
inline constexpr uint16_t kMagic = 0x434e;
/** Protocol version; bumped on any layout change. */
inline constexpr uint8_t kVersion = 1;
/** Priorities are a small band: 0 (bulk) .. 7 (most urgent). */
inline constexpr uint8_t kMaxPriority = 7;
/**
 * Upper bound on one frame's payload, sized for kMaxBatch-free
 * single images with headroom (a 2048x299x299 tensor is ~183 MB —
 * far beyond any modeled input); larger prefixes are a protocol
 * error, not an allocation.
 */
inline constexpr uint32_t kMaxFrameBytes = 256u * 1024 * 1024;

/** Frame kinds (payload byte 3). */
enum class Kind : uint8_t { Request = 1, Response = 2 };

/** Typed response verdicts; rejects are loud, never silent drops. */
enum class Status : uint8_t {
    Ok = 0,           ///< output + report slice attached
    Rejected = 1,     ///< admission control: past --max-inflight
    BadRequest = 2,   ///< malformed frame / wrong input shape
    ShuttingDown = 3, ///< server draining; resubmit elsewhere
};

/** Human-readable status name ("ok", "rejected", ...). */
const char *statusName(Status s);

/** One inference request as it crosses the wire. */
struct RequestFrame
{
    uint64_t id = 0;
    uint8_t priority = 0; ///< 0..kMaxPriority, higher first
    dnn::QTensor input;
};

/** One response: verdict, output, and the per-request report slice. */
struct ResponseFrame
{
    uint64_t id = 0;
    Status status = Status::Ok;
    /** Time spent queued in the batcher before its pass launched. */
    double queueMs = 0;
    /** Total server-side latency (admission to completion). */
    double latencyMs = 0;
    /** Index of the runBatch pass that served this request. */
    uint64_t passIndex = 0;
    /** How many requests shared that pass (batch occupancy). */
    uint32_t batchSize = 0;
    /** Diagnostic for non-Ok statuses (empty for Ok). */
    std::string message;
    /** The network's output activation (empty for non-Ok). */
    dnn::QTensor output;
};

/** Append one encoded frame (length prefix included) to @p out. */
void encodeRequest(const RequestFrame &req, std::vector<uint8_t> &out);
void encodeResponse(const ResponseFrame &rsp,
                    std::vector<uint8_t> &out);

/**
 * Decode one frame payload (the bytes after the length prefix).
 * Returns false and fills @p error on any malformation: bad magic or
 * version, wrong kind, truncated fields, tensor byte count not
 * matching its dims, priority out of band.
 */
bool decodeRequest(std::span<const uint8_t> payload, RequestFrame &out,
                   std::string &error);
bool decodeResponse(std::span<const uint8_t> payload,
                    ResponseFrame &out, std::string &error);

/**
 * Incremental length-prefix splitter for a byte stream: feed() bytes
 * as they arrive (partial frames welcome), next() hands back one
 * complete payload at a time. A length prefix over kMaxFrameBytes
 * poisons the reader (error() non-empty, next() forever empty) — the
 * stream is desynchronized and the connection must be dropped.
 */
class FrameReader
{
  public:
    void feed(std::span<const uint8_t> bytes);
    /** One complete frame payload, or nullopt if none is buffered. */
    std::optional<std::vector<uint8_t>> next();
    /** Non-empty once the stream is unrecoverable. */
    const std::string &error() const { return err; }
    /** Bytes buffered but not yet returned (for tests). */
    size_t pending() const { return buf.size() - pos; }

  private:
    std::vector<uint8_t> buf;
    size_t pos = 0;
    std::string err;
};

} // namespace nc::serve::wire

#endif // NC_SERVE_WIRE_HH
