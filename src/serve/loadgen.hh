/**
 * @file
 * Load generation against an InferenceServer, shared by the
 * bench/serve_loadgen binary, perf_report's schema-5 "serve"
 * section, and the serving tests — one implementation, so the JSON
 * numbers and the parity proofs measure the identical traffic.
 *
 * Two drive modes:
 *  - **closed loop** (openLoopRps == 0): `clients` concurrent
 *    channels, each keeping exactly one request outstanding —
 *    latency samples are client wall time (send to receive).
 *  - **open loop** (openLoopRps > 0): arrivals are scheduled at the
 *    fixed aggregate rate independent of completions, fanned over
 *    the channels; latency samples are the server-side latencyMs
 *    each response carries (admission to completion), since the
 *    channel drains responses asynchronously.
 *
 * Inputs are deterministic from the seed (request i's image depends
 * only on seed and i), and verification computes every expected
 * output up front via direct CompiledModel::runBatch on the idle
 * model, then compares each served tensor bit for bit.
 */

#ifndef NC_SERVE_LOADGEN_HH
#define NC_SERVE_LOADGEN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/server.hh"

namespace nc::serve
{

/** Blocking wire-protocol client over TCP to 127.0.0.1:port. */
class SocketClient
{
  public:
    /** Connect, or return nullopt with @p error filled. */
    static std::optional<SocketClient>
    connectTo(uint16_t port, std::string *error = nullptr);
    ~SocketClient();
    SocketClient(SocketClient &&other) noexcept;
    SocketClient &operator=(SocketClient &&) = delete;
    SocketClient(const SocketClient &) = delete;

    /** Encode and write one request (blocking until accepted). */
    void send(const wire::RequestFrame &req);
    /** Next response frame; nullopt on timeout or a dead/corrupt
     * stream (streamError() explains which). */
    std::optional<wire::ResponseFrame>
    receive(unsigned timeoutMs = 30000);
    const std::string &streamError() const { return err; }

  private:
    explicit SocketClient(int fd_) : fd(fd_) {}
    int fd = -1;
    wire::FrameReader reader;
    std::string err;
};

/** What one load-generation run is configured with. */
struct LoadGenOptions
{
    unsigned requests = 64;
    unsigned clients = 4;
    /** Aggregate open-loop arrival rate (requests/s); 0 = closed. */
    double openLoopRps = 0;
    unsigned priority = 0; ///< applied to every request
    uint64_t seed = 1;     ///< input generation (deterministic)
    bool verify = true;    ///< compare against direct runBatch
    bool overSocket = false; ///< TCP channels instead of loopback
};

/** Aggregate outcome of one run. */
struct LoadStats
{
    uint64_t completed = 0;  ///< Ok responses
    uint64_t rejected = 0;   ///< typed backpressure refusals
    uint64_t errors = 0;     ///< other non-Ok / timeouts
    uint64_t mismatched = 0; ///< served != direct runBatch (verify)
    double p50Ms = 0;
    double p99Ms = 0;
    double imagesPerSec = 0;
    double wallMs = 0;
    double meanOccupancy = 0; ///< images per pass over the run
    /** The batcher's per-pass occupancy histogram after the run. */
    std::vector<uint64_t> occupancyHist;
};

/**
 * Drive @p server (which wraps @p model) with the configured
 * traffic and collect the stats. Socket mode requires a started
 * server; the model must be idle (verification runs direct
 * runBatch before traffic starts).
 */
LoadStats runLoadGen(core::CompiledModel &model,
                     InferenceServer &server,
                     const LoadGenOptions &opts);

} // namespace nc::serve

#endif // NC_SERVE_LOADGEN_HH
