/**
 * @file
 * gem5-style status/error reporting for the Neural Cache simulator.
 *
 * Four severities, mirroring gem5's src/base/logging.hh contract:
 *  - panic():  a simulator bug; never the user's fault. Aborts.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments). Exits with code 1.
 *  - warn():   something is questionable but the run continues.
 *  - inform(): plain status output.
 */

#ifndef NC_COMMON_LOGGING_HH
#define NC_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace nc
{

/** Verbosity knob: when false, inform() output is suppressed. */
void setVerbose(bool verbose);
bool verbose();

namespace detail
{

/** Compose "severity: message (file:line)" and emit it to stderr. */
void emit(const char *severity, const std::string &msg,
          const char *file, int line);

[[noreturn]] void panicImpl(const std::string &msg,
                            const char *file, int line);
[[noreturn]] void fatalImpl(const std::string &msg,
                            const char *file, int line);
void warnImpl(const std::string &msg, const char *file, int line);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace nc

/** Unrecoverable simulator bug. Aborts so a core dump is available. */
#define nc_panic(...) \
    ::nc::detail::panicImpl(::nc::detail::format(__VA_ARGS__), \
                            __FILE__, __LINE__)

/** Unrecoverable user error (bad config / arguments). Exits cleanly. */
#define nc_fatal(...) \
    ::nc::detail::fatalImpl(::nc::detail::format(__VA_ARGS__), \
                            __FILE__, __LINE__)

/** Suspicious condition; simulation continues. */
#define nc_warn(...) \
    ::nc::detail::warnImpl(::nc::detail::format(__VA_ARGS__), \
                           __FILE__, __LINE__)

/** Status message (suppressed unless verbose). */
#define nc_inform(...) \
    ::nc::detail::informImpl(::nc::detail::format(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define nc_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::nc::detail::panicImpl( \
                std::string("assertion '" #cond "' failed: ") + \
                ::nc::detail::format(__VA_ARGS__), __FILE__, __LINE__); \
        } \
    } while (0)

namespace nc
{

/**
 * Whether nc_dassert() is live in this build. Debug/asan presets keep
 * it on; Release (NDEBUG) compiles it out. Tests that provoke a
 * debug-only assertion consult this to skip themselves in Release.
 */
#ifdef NDEBUG
inline constexpr bool kDebugAsserts = false;
#else
inline constexpr bool kDebugAsserts = true;
#endif

} // namespace nc

/**
 * Debug-only invariant check for per-lane / per-word hot paths (BitRow
 * bit access, Array row bounds): the cost of the branch is comparable
 * to the work guarded, so Release builds compile it out entirely. The
 * condition stays semantically checked (unevaluated) to avoid unused
 * warnings.
 */
#ifdef NDEBUG
#define nc_dassert(cond, ...) \
    do { \
        (void)sizeof((cond) ? 1 : 0); \
    } while (0)
#else
#define nc_dassert(cond, ...) nc_assert(cond, __VA_ARGS__)
#endif

#endif // NC_COMMON_LOGGING_HH
