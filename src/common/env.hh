/**
 * @file
 * Startup validation of NC_-prefixed environment variables.
 *
 * Every knob this simulator reads from the environment begins with
 * "NC_", and each reader parses its value strictly (thread_pool.cc,
 * trace.cc, sram/faults.cc). That strictness is worthless if the
 * variable name itself is typo'd: NC_FAULT=kill=0.5 silently runs
 * the fault-free configuration it was meant to perturb. So startup
 * scans the whole environment once and dies on any unrecognized
 * NC_-prefixed name, suggesting the nearest known one.
 */

#ifndef NC_COMMON_ENV_HH
#define NC_COMMON_ENV_HH

namespace nc::common
{

/**
 * Scan the process environment and die (nc_fatal) on the first
 * NC_-prefixed variable that is not a known configuration knob,
 * naming the nearest known variable. Unconditional — tests call this
 * directly; production code goes through checkEnvOnce().
 */
void checkEnvOrDie();

/**
 * checkEnvOrDie() at most once per process. Invoked from the Engine
 * and ThreadPool constructors so any entry point that configures the
 * simulator trips over a typo'd knob before it can mislead a run.
 */
void checkEnvOnce();

} // namespace nc::common

#endif // NC_COMMON_ENV_HH
