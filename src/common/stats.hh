/**
 * @file
 * Minimal statistics package, in the spirit of gem5's Stats.
 *
 * Components own Scalar counters registered against a StatGroup; groups
 * can be dumped as a flat name/value listing. This is intentionally much
 * smaller than gem5's package — the simulator is deterministic and
 * single-threaded, so scalars and simple distributions are enough.
 */

#ifndef NC_COMMON_STATS_HH
#define NC_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace nc
{

/** A named 64-bit event counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(uint64_t n) { count += n; return *this; }
    Scalar &operator++() { ++count; return *this; }
    void reset() { count = 0; }

    uint64_t value() const { return count; }

  private:
    uint64_t count = 0;
};

/** Running mean/min/max over double-valued samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        ++n;
        total += v;
        lo = n == 1 ? v : std::min(lo, v);
        hi = n == 1 ? v : std::max(hi, v);
    }

    void reset() { n = 0; total = 0; lo = 0; hi = 0; }

    uint64_t samples() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0; }
    double min() const { return lo; }
    double max() const { return hi; }

  private:
    uint64_t n = 0;
    double total = 0;
    double lo = 0;
    double hi = 0;
};

/**
 * A registry of named statistics belonging to one component.
 *
 * Pointers handed to add*() must outlive the group; the usual pattern is
 * for a component to own both its stats and its StatGroup as members.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name_) : groupName(std::move(name_)) {}

    void addScalar(const std::string &name, const Scalar *s);
    void addDistribution(const std::string &name, const Distribution *d);

    /** Emit "group.stat value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return groupName; }

    /** Look up a registered scalar's value (0 if absent). */
    uint64_t scalarValue(const std::string &name) const;

  private:
    std::string groupName;
    std::map<std::string, const Scalar *> scalars;
    std::map<std::string, const Distribution *> dists;
};

} // namespace nc

#endif // NC_COMMON_STATS_HH
