/**
 * @file
 * Chunked bump arena for per-run word scratch.
 *
 * The prepared kernels (Executor conv/pool/requantize tasks, the
 * layout transposes of bitserial::storeVector/loadVector) need small
 * uint64_t scratch buffers on every window of every layer — hot
 * enough that a heap allocation per window shows up in perf_report.
 * An Arena hands them out by bumping a cursor through chunks that are
 * never freed, so steady-state allocation is pointer arithmetic.
 *
 * Growth appends a new chunk instead of reallocating, so previously
 * returned spans stay valid for as long as their scope holds (the
 * failure mode a plain std::vector-backed bump allocator would have).
 * release() rewinds to a Mark without touching memory; ArenaScope is
 * the RAII form. scratchArena() is thread_local, which makes the
 * whole scheme safe under the pool fan-outs without any locking:
 * each task's scopes nest on its own thread's arena.
 */

#ifndef NC_COMMON_ARENA_HH
#define NC_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace nc::common
{

/** Bump allocator over stable chunks; see file comment. */
class Arena
{
  public:
    /** A rewind point: the cursor position at mark() time. */
    struct Mark
    {
        size_t chunk;
        size_t used;
    };

    /** Uninitialized word scratch, valid until release() past it. */
    std::span<uint64_t>
    alloc(size_t n)
    {
        if (n == 0)
            return {};
        if (chunks.empty())
            chunks.emplace_back(n < kMinChunkWords ? kMinChunkWords
                                                   : n);
        while (used + n > chunks[cur].cap) {
            if (cur + 1 == chunks.size())
                chunks.emplace_back(
                    n < kMinChunkWords ? kMinChunkWords : n);
            ++cur;
            used = 0;
        }
        uint64_t *p = chunks[cur].data.get() + used;
        used += n;
        return {p, n};
    }

    Mark mark() const { return {cur, used}; }

    /** Rewind to @p m; spans handed out after it become invalid. */
    void
    release(Mark m)
    {
        cur = m.chunk;
        used = m.used;
    }

  private:
    struct Chunk
    {
        explicit Chunk(size_t cap_)
            : data(std::make_unique<uint64_t[]>(cap_)), cap(cap_)
        {
        }
        std::unique_ptr<uint64_t[]> data;
        size_t cap;
    };

    /** 32KB chunks: one covers every per-window buffer in practice. */
    static constexpr size_t kMinChunkWords = 4096;

    std::vector<Chunk> chunks;
    size_t cur = 0;  ///< chunk the cursor is in
    size_t used = 0; ///< words consumed of that chunk
};

/** This thread's scratch arena (one per pool worker, no locking). */
inline Arena &
scratchArena()
{
    thread_local Arena arena;
    return arena;
}

/**
 * RAII mark/release over the calling thread's scratch arena. Scopes
 * nest; a span allocated here dies with the scope, so never store
 * one beyond it (and never across a parallelFor boundary — the tasks
 * run on other threads' arenas).
 */
class ArenaScope
{
  public:
    ArenaScope() : arena(scratchArena()), m(arena.mark()) {}
    ~ArenaScope() { arena.release(m); }
    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

    std::span<uint64_t> alloc(size_t n) { return arena.alloc(n); }

  private:
    Arena &arena;
    Arena::Mark m;
};

} // namespace nc::common

#endif // NC_COMMON_ARENA_HH
