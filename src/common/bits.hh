/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator.
 *
 * Bit-serial arithmetic constantly slices integers into individual bits
 * (LSB first, matching the order in which the column peripherals consume
 * them) and reassembles them. These helpers keep that logic in one place.
 */

#ifndef NC_COMMON_BITS_HH
#define NC_COMMON_BITS_HH

// The codebase uses C++20 features (defaulted operator<=> in
// cache/compute_cache.hh, among others) whose pre-C++20 diagnostics
// are cryptic ("declaration of 'operator<=' as non-function"). This
// header is included everywhere, so fail fast with a clear message.
// MSVC keeps __cplusplus at 199711L unless /Zc:__cplusplus is passed;
// _MSVC_LANG always reports the real language level.
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "neural-cache requires C++20: build with /std:c++20 (CMake sets this via target_compile_features(nc PUBLIC cxx_std_20))"
#endif
#elif defined(__cplusplus) && __cplusplus < 202002L
#error "neural-cache requires C++20: build with -std=c++20 (CMake sets this via target_compile_features(nc PUBLIC cxx_std_20))"
#endif

#include <cstdint>
#include <type_traits>

namespace nc
{

/** Extract bit @p pos (0 = LSB) of @p value. */
template <typename T>
constexpr bool
bit(T value, unsigned pos)
{
    using U = std::make_unsigned_t<T>;
    return (static_cast<U>(value) >> pos) & 1u;
}

/** Return @p value with bit @p pos set to @p b. */
template <typename T>
constexpr T
setBit(T value, unsigned pos, bool b)
{
    using U = std::make_unsigned_t<T>;
    U u = static_cast<U>(value);
    U mask = U(1) << pos;
    return static_cast<T>(b ? (u | mask) : (u & ~mask));
}

/** Mask covering the low @p nbits bits (nbits in [0, 64]). */
constexpr uint64_t
lowMask(unsigned nbits)
{
    return nbits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << nbits) - 1);
}

/** Truncate @p value to its low @p nbits bits. */
constexpr uint64_t
truncate(uint64_t value, unsigned nbits)
{
    return value & lowMask(nbits);
}

/** Sign-extend the low @p nbits bits of @p value to 64 bits. */
constexpr int64_t
signExtend(uint64_t value, unsigned nbits)
{
    if (nbits == 0 || nbits >= 64)
        return static_cast<int64_t>(value);
    uint64_t sign = uint64_t(1) << (nbits - 1);
    uint64_t v = truncate(value, nbits);
    return static_cast<int64_t>((v ^ sign) - sign);
}

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** ceil(log2(v)); log2Ceil(1) == 0. @pre v >= 1 */
constexpr unsigned
log2Ceil(uint64_t v)
{
    unsigned r = 0;
    uint64_t p = 1;
    while (p < v) {
        p <<= 1;
        ++r;
    }
    return r;
}

/** floor(log2(v)). @pre v >= 1 */
constexpr unsigned
log2Floor(uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Smallest power of two >= v. @pre v >= 1 */
constexpr uint64_t
roundUpPow2(uint64_t v)
{
    return uint64_t(1) << log2Ceil(v);
}

/** ceil(a / b) for positive integers. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
constexpr uint64_t
roundUp(uint64_t a, uint64_t b)
{
    return divCeil(a, b) * b;
}

/**
 * In-place 64x64 bit-matrix transpose: afterwards bit i of a[j] equals
 * what bit j of a[i] held on entry. This is the workhorse behind the
 * word-parallel transposed stores/loads of bitserial::storeVector /
 * loadVector (each 64-lane block of a slice moves in one transpose
 * instead of 64x64 individual bit pokes). Classic recursive block-swap
 * (Hacker's Delight 2nd ed., fig. 7-6).
 */
inline void
transpose64(uint64_t a[64])
{
    uint64_t m = 0x00000000FFFFFFFFULL;
    for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
            uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k + j] ^= t;
            a[k] ^= t << j;
        }
    }
}

} // namespace nc

#endif // NC_COMMON_BITS_HH
