/**
 * @file
 * Deterministic random number generation for workloads and tests.
 *
 * Everything in the repository that needs randomness goes through Rng so
 * that experiments are reproducible from a single seed.
 */

#ifndef NC_COMMON_RNG_HH
#define NC_COMMON_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace nc
{

/** A seeded mersenne-twister wrapper with convenience draws. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed) : engine(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        std::uniform_int_distribution<int64_t> d(lo, hi);
        return d(engine);
    }

    /** Uniform unsigned value of exactly @p nbits bits. */
    uint64_t
    uniformBits(unsigned nbits)
    {
        if (nbits == 0)
            return 0;
        std::uniform_int_distribution<uint64_t> d(
            0, nbits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << nbits) - 1));
        return d(engine);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(engine);
    }

    /** Vector of @p n uniform unsigned @p nbits-bit values. */
    std::vector<uint64_t>
    bitVector(size_t n, unsigned nbits)
    {
        std::vector<uint64_t> v(n);
        for (auto &x : v)
            x = uniformBits(nbits);
        return v;
    }

    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace nc

#endif // NC_COMMON_RNG_HH
