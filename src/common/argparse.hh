/**
 * @file
 * A tiny command-line option parser for the examples and benches.
 *
 * Replaces the unchecked std::atoi pattern: every option is declared
 * with a target, values are range- and syntax-checked, unknown
 * arguments and missing values produce a one-line error plus the
 * usage text, and --help prints it and exits 0. Both "--batch 4" and
 * "--batch=4" spellings are accepted.
 *
 *     unsigned batch = 1;
 *     std::string backend = "functional";
 *     common::ArgParser args("inception_inference",
 *                            "Whole-model inference study");
 *     args.addUnsigned("batch", &batch, "images per batch (>= 1)");
 *     args.addString("backend", &backend,
 *                    "reference|functional|isa|analytic");
 *     args.parse(argc, argv); // exits with a message on bad input
 */

#ifndef NC_COMMON_ARGPARSE_HH
#define NC_COMMON_ARGPARSE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nc::common
{

/** Declarative long-option parser ("--name value" / "--name=value"). */
class ArgParser
{
  public:
    ArgParser(std::string prog, std::string description);

    /** Register an unsigned option; *target keeps its default. */
    void addUnsigned(const std::string &name, unsigned *target,
                     const std::string &help);
    /**
     * Register a bounded unsigned option: strict parse plus a range
     * check, so out-of-range values (a port over 65535, a priority
     * over the wire band) die naming the flag and the valid range
     * instead of wrapping or passing through.
     */
    void addUint(const std::string &name, unsigned *target,
                 const std::string &help, unsigned minVal,
                 unsigned maxVal);
    /** Register a 64-bit unsigned option (seeds). */
    void addUint64(const std::string &name, uint64_t *target,
                   const std::string &help);
    /** Register a floating-point option (rates, thresholds). */
    void addDouble(const std::string &name, double *target,
                   const std::string &help);
    /** Register a string option. */
    void addString(const std::string &name, std::string *target,
                   const std::string &help);
    /** Register a value-less boolean flag. */
    void addFlag(const std::string &name, bool *target,
                 const std::string &help);

    /**
     * Parse @p argv. On "--help": print usage, exit 0. On any error
     * (unknown option, missing or malformed value): print the error
     * and usage to stderr, exit 1.
     */
    void parse(int argc, const char *const *argv);

    /**
     * Non-exiting core of parse() for tests: returns false and fills
     * @p error instead of exiting. "--help" returns false with
     * error empty.
     */
    bool tryParse(int argc, const char *const *argv,
                  std::string &error);

    /** The generated usage text. */
    std::string usage() const;

  private:
    enum class Type { Unsigned, Uint64, Double, String, Flag };

    struct Option
    {
        std::string name;
        std::string help;
        Type type = Type::String;
        void *target = nullptr;
        /** Inclusive bounds, Unsigned only (addUint sets them). */
        unsigned minVal = 0;
        unsigned maxVal = 0xffffffffu;
    };

    const Option *find(const std::string &name) const;
    bool assign(const Option &opt, const std::string &value,
                std::string &error) const;

    std::string prog;
    std::string description;
    std::vector<Option> options;
};

} // namespace nc::common

#endif // NC_COMMON_ARGPARSE_HH
