#include "common/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

namespace nc::trace
{

namespace
{

std::set<std::string> &
flags()
{
    static std::set<std::string> f;
    return f;
}

/** Parse NC_DEBUG once per reset. */
void
readEnv()
{
    const char *env = std::getenv("NC_DEBUG");
    if (!env)
        return;
    std::istringstream ss(env);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            flags().insert(item);
}

bool &
envLoaded()
{
    static bool loaded = false;
    return loaded;
}

void
ensureEnv()
{
    if (!envLoaded()) {
        readEnv();
        envLoaded() = true;
    }
}

} // namespace

void
enable(const std::string &flag)
{
    ensureEnv();
    flags().insert(flag);
}

void
disable(const std::string &flag)
{
    ensureEnv();
    flags().erase(flag);
}

bool
enabled(const std::string &flag)
{
    ensureEnv();
    return flags().count("All") != 0 || flags().count(flag) != 0;
}

void
reset()
{
    flags().clear();
    envLoaded() = false;
}

void
emit(const std::string &flag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", flag.c_str(), msg.c_str());
}

} // namespace nc::trace
