#include "common/trace.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace nc::trace
{

namespace
{

std::set<std::string> &
flags()
{
    static std::set<std::string> f;
    return f;
}

/** Flag names are identifiers: [A-Za-z0-9_]+, gem5-style. */
bool
validFlagName(const std::string &item)
{
    if (item.empty())
        return false;
    for (char ch : item)
        if (!std::isalnum(static_cast<unsigned char>(ch)) &&
            ch != '_')
            return false;
    return true;
}

/**
 * Parse NC_DEBUG once per reset. Malformed flag names are hard
 * configuration errors: a silently-dropped "Contro ller" or
 * "Executor;" would run the whole simulation without the trace the
 * user asked for.
 */
void
readEnv()
{
    const char *env = std::getenv("NC_DEBUG");
    if (!env)
        return;
    std::istringstream ss(env);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue; // tolerate "A,,B" / trailing commas
        if (!validFlagName(item))
            nc_fatal("NC_DEBUG flag '%s' is not a flag name "
                     "(letters, digits, underscores)", item.c_str());
        flags().insert(item);
    }
}

bool &
envLoaded()
{
    static bool loaded = false;
    return loaded;
}

void
ensureEnv()
{
    if (!envLoaded()) {
        readEnv();
        envLoaded() = true;
    }
}

} // namespace

void
enable(const std::string &flag)
{
    ensureEnv();
    flags().insert(flag);
}

void
disable(const std::string &flag)
{
    ensureEnv();
    flags().erase(flag);
}

bool
enabled(const std::string &flag)
{
    ensureEnv();
    return flags().count("All") != 0 || flags().count(flag) != 0;
}

void
reset()
{
    flags().clear();
    envLoaded() = false;
}

void
emit(const std::string &flag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", flag.c_str(), msg.c_str());
}

} // namespace nc::trace
