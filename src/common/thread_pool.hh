/**
 * @file
 * A small fixed-size thread pool for fanning independent simulation
 * work items across cores.
 *
 * The simulator's parallelism is embarrassingly regular: a convolution
 * layer is w.m independent per-filter-batch array programs, a pooling
 * layer is independent output windows, a broadcast instruction expands
 * identically on every enrolled array. parallelFor() covers all of
 * these: it runs fn(i) for every i in [0, n), distributing indices
 * over the workers (plus the calling thread) through one shared
 * atomic cursor — no work stealing, no task graph.
 *
 * Determinism contract: tasks must write disjoint state (each task
 * owns its array / its slice of the output), so results are identical
 * for any thread count and any index-to-thread assignment. Statistics
 * are reduced by the caller after the join as order-independent sums.
 *
 * Sizing: an explicit constructor argument wins; 0 defers to the
 * NC_THREADS environment variable, then to the hardware concurrency.
 * A pool of size 1 spawns no threads at all and parallelFor() runs
 * inline, making the serial path zero-overhead.
 */

#ifndef NC_COMMON_THREAD_POOL_HH
#define NC_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nc::common
{

/**
 * Process-unique nonzero id of the pool task the calling thread is
 * currently executing, 0 outside any task. Nested parallelFor() calls
 * run inline and therefore keep the outer task's id — the id names a
 * unit of concurrency, not a call depth. Debug builds only: always 0
 * under NDEBUG (the sram ownership race detector, its sole consumer,
 * is compiled out there too).
 */
uint64_t currentTaskId();

/** Fixed-size pool executing index-space loops. */
class ThreadPool
{
  public:
    /**
     * @param nthreads total workers including the caller; 0 = auto.
     * Worker threads spawn lazily on the first parallelFor() that can
     * use them, so serial consumers and short-lived instances never
     * pay thread create/teardown.
     */
    explicit ThreadPool(unsigned nthreads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count including the calling thread (>= 1). */
    unsigned size() const { return nThreads; }

    /**
     * Run fn(i) for every i in [0, n) and block until all calls have
     * returned. The calling thread participates. Concurrent calls
     * must touch disjoint state. Allocation-free: the callable is
     * shared with the workers through a borrowed pointer + trampoline,
     * never a std::function — safe because the call blocks until
     * every worker is done with it.
     *
     * Exceptions: a throwing task does not deadlock or terminate the
     * process. The first exception (by completion order) is captured,
     * the remaining index space is abandoned, the join still waits
     * for every in-flight task, and the exception rethrows from
     * parallelFor() on the calling thread. The pool stays usable.
     * Indices already claimed when the throw lands still run, so
     * side effects of sibling tasks may or may not have happened —
     * callers treating an exception as fatal (the simulator's only
     * use) are unaffected.
     *
     * Re-entrant: a parallelFor issued from inside a task of the same
     * pool (e.g. a per-layer kernel running under a per-branch
     * fan-out) detects the nesting and runs its indices inline on the
     * calling thread. Because tasks must already be disjoint-state and
     * order-independent, collapsing an inner loop to serial cannot
     * change any result — only which level of the nest supplies the
     * parallelism.
     */
    template <class F>
    void
    parallelFor(size_t n, F &&fn)
    {
        using Fn = std::remove_reference_t<F>;
        parallelForRaw(n,
                       const_cast<void *>(static_cast<const void *>(&fn)),
                       [](void *ctx, size_t i) {
                           (*static_cast<Fn *>(ctx))(i);
                       });
    }

    /**
     * The automatic pool size: NC_THREADS when set to a positive
     * integer, otherwise std::thread::hardware_concurrency() (>= 1).
     */
    static unsigned defaultThreads();

  private:
    void parallelForRaw(size_t n, void *ctx,
                        void (*fn)(void *, size_t));
    void ensureWorkers();
    void workerLoop();
    void runShare();

    unsigned nThreads;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    void (*jobFn)(void *, size_t) = nullptr;
    void *jobCtx = nullptr;
    size_t jobN = 0;
    std::exception_ptr jobErr; ///< first failure of the current job
    std::atomic<size_t> cursor{0};
    unsigned target = 0;    ///< helper slots for the current job
    unsigned joined = 0;    ///< helpers that claimed a slot
    unsigned pending = 0;   ///< helpers still running the current job
    uint64_t generation = 0;
    bool stopping = false;
};

} // namespace nc::common

#endif // NC_COMMON_THREAD_POOL_HH
