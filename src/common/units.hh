/**
 * @file
 * Physical-unit helpers (time, energy, frequency, data size).
 *
 * The simulator keeps time in picoseconds and energy in picojoules as
 * plain doubles; these helpers make the conversion points explicit and
 * self-documenting instead of scattering magic 1e-12 factors around.
 */

#ifndef NC_COMMON_UNITS_HH
#define NC_COMMON_UNITS_HH

#include <cstdint>

namespace nc
{

/** Seconds per picosecond. */
constexpr double picoToSec = 1e-12;
/** Milliseconds per picosecond. */
constexpr double picoToMs = 1e-9;
/** Joules per picojoule. */
constexpr double pjToJoule = 1e-12;

/** A clock described by its frequency in hertz. */
struct Clock
{
    double freqHz = 0.0;

    /** Period in picoseconds. */
    double periodPs() const { return 1e12 / freqHz; }

    /** Convert a cycle count to picoseconds. */
    double cyclesToPs(double cycles) const { return cycles * periodPs(); }

    /** Convert a cycle count to milliseconds. */
    double cyclesToMs(double cycles) const
    {
        return cyclesToPs(cycles) * picoToMs;
    }
};

constexpr double operator"" _GHz(long double v)
{
    return static_cast<double>(v) * 1e9;
}
constexpr double operator"" _MHz(long double v)
{
    return static_cast<double>(v) * 1e6;
}

constexpr uint64_t operator"" _KiB(unsigned long long v) { return v << 10; }
constexpr uint64_t operator"" _MiB(unsigned long long v) { return v << 20; }
constexpr uint64_t operator"" _GiB(unsigned long long v) { return v << 30; }

/** Bytes -> MiB as a double (for report printing). */
constexpr double
bytesToMiB(uint64_t bytes)
{
    return static_cast<double>(bytes) / static_cast<double>(1_MiB);
}

/** Bandwidth expressed in bytes per second. */
struct Bandwidth
{
    double bytesPerSec = 0.0;

    /** Time in picoseconds to move @p bytes at this bandwidth. */
    double transferPs(double bytes) const
    {
        return bytes / bytesPerSec * 1e12;
    }
};

constexpr Bandwidth operator"" _GBps(long double v)
{
    return Bandwidth{static_cast<double>(v) * 1e9};
}

} // namespace nc

#endif // NC_COMMON_UNITS_HH
