#include "common/argparse.hh"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace nc::common
{

ArgParser::ArgParser(std::string prog_, std::string description_)
    : prog(std::move(prog_)), description(std::move(description_))
{
}

void
ArgParser::addUnsigned(const std::string &name, unsigned *target,
                       const std::string &help)
{
    options.push_back({name, help, Type::Unsigned, target});
}

void
ArgParser::addUint(const std::string &name, unsigned *target,
                   const std::string &help, unsigned minVal,
                   unsigned maxVal)
{
    Option opt{name, help, Type::Unsigned, target, minVal, maxVal};
    options.push_back(opt);
}

void
ArgParser::addUint64(const std::string &name, uint64_t *target,
                     const std::string &help)
{
    options.push_back({name, help, Type::Uint64, target});
}

void
ArgParser::addDouble(const std::string &name, double *target,
                     const std::string &help)
{
    options.push_back({name, help, Type::Double, target});
}

void
ArgParser::addString(const std::string &name, std::string *target,
                     const std::string &help)
{
    options.push_back({name, help, Type::String, target});
}

void
ArgParser::addFlag(const std::string &name, bool *target,
                   const std::string &help)
{
    options.push_back({name, help, Type::Flag, target});
}

const ArgParser::Option *
ArgParser::find(const std::string &name) const
{
    for (const auto &opt : options)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

bool
ArgParser::assign(const Option &opt, const std::string &value,
                  std::string &error) const
{
    if (opt.type == Type::String) {
        *static_cast<std::string *>(opt.target) = value;
        return true;
    }

    if (opt.type == Type::Double) {
        errno = 0;
        char *end = nullptr;
        double parsed = std::strtod(value.c_str(), &end);
        if (value.empty() || *end != '\0' || errno != 0) {
            error = "--" + opt.name + ": '" + value +
                    "' is not a valid number";
            return false;
        }
        *static_cast<double *>(opt.target) = parsed;
        return true;
    }

    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    bool malformed = value.empty() || *end != '\0' || errno != 0 ||
                     value.front() == '-';
    if (!malformed && opt.type == Type::Unsigned &&
        parsed > 0xffffffffull)
        malformed = true;
    if (malformed) {
        error = "--" + opt.name + ": '" + value +
                "' is not a valid non-negative integer";
        return false;
    }
    if (opt.type == Type::Unsigned) {
        if (parsed < opt.minVal || parsed > opt.maxVal) {
            std::ostringstream os;
            os << "--" << opt.name << ": " << value
               << " out of range [" << opt.minVal << ", "
               << opt.maxVal << "]";
            error = os.str();
            return false;
        }
        *static_cast<unsigned *>(opt.target) =
            static_cast<unsigned>(parsed);
    } else {
        *static_cast<uint64_t *>(opt.target) = parsed;
    }
    return true;
}

bool
ArgParser::tryParse(int argc, const char *const *argv,
                    std::string &error)
{
    error.clear();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return false; // empty error: caller prints usage, exit 0

        if (arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
            error = "unexpected argument '" + arg + "'";
            return false;
        }

        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        if (auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }

        const Option *opt = find(name);
        if (!opt) {
            error = "unknown option '--" + name + "'";
            return false;
        }

        if (opt->type == Type::Flag) {
            if (has_value) {
                error = "--" + name + " takes no value";
                return false;
            }
            *static_cast<bool *>(opt->target) = true;
            continue;
        }

        if (!has_value) {
            if (i + 1 >= argc) {
                error = "--" + name + " needs a value";
                return false;
            }
            value = argv[++i];
        }
        if (!assign(*opt, value, error))
            return false;
    }
    return true;
}

void
ArgParser::parse(int argc, const char *const *argv)
{
    std::string error;
    if (tryParse(argc, argv, error))
        return;
    if (error.empty()) { // --help
        std::fputs(usage().c_str(), stdout);
        std::exit(0);
    }
    std::fprintf(stderr, "%s: %s\n\n%s", prog.c_str(), error.c_str(),
                 usage().c_str());
    std::exit(1);
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << "usage: " << prog;
    for (const auto &opt : options) {
        os << " [--" << opt.name;
        if (opt.type != Type::Flag)
            os << " <value>";
        os << "]";
    }
    os << "\n";
    if (!description.empty())
        os << description << "\n";
    if (!options.empty()) {
        os << "\noptions:\n";
        for (const auto &opt : options) {
            std::string lhs = "  --" + opt.name;
            if (opt.type != Type::Flag)
                lhs += " <value>";
            os << lhs;
            for (size_t pad = lhs.size(); pad < 26; ++pad)
                os << ' ';
            os << opt.help << "\n";
        }
    }
    os << "  --help                  show this message\n";
    return os.str();
}

} // namespace nc::common
