#include "common/stats.hh"

#include "common/logging.hh"

namespace nc
{

void
StatGroup::addScalar(const std::string &name, const Scalar *s)
{
    nc_assert(s != nullptr, "null scalar '%s'", name.c_str());
    scalars[name] = s;
}

void
StatGroup::addDistribution(const std::string &name, const Distribution *d)
{
    nc_assert(d != nullptr, "null distribution '%s'", name.c_str());
    dists[name] = d;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, s] : scalars)
        os << groupName << "." << name << " " << s->value() << "\n";
    for (const auto &[name, d] : dists) {
        os << groupName << "." << name << ".samples " << d->samples()
           << "\n";
        os << groupName << "." << name << ".mean " << d->mean() << "\n";
        os << groupName << "." << name << ".min " << d->min() << "\n";
        os << groupName << "." << name << ".max " << d->max() << "\n";
    }
}

uint64_t
StatGroup::scalarValue(const std::string &name) const
{
    auto it = scalars.find(name);
    return it == scalars.end() ? 0 : it->second->value();
}

} // namespace nc
