/**
 * @file
 * Host-SIMD tier taxonomy and the NC_SIMD knob's strict grammar.
 *
 * The fused sense/logic/write-back passes of sram::Array and the
 * bit-matrix transposes of bitserial::storeVector/loadVector exist in
 * three widths: portable 64-bit words, AVX2 (256-bit, 4 words per
 * step), and AVX-512 (512-bit, 8 words per step). This header names
 * the tiers and resolves what a run may use; the kernels themselves
 * and the dispatch table live in sram/kernels.hh (the tier ladder is
 * a property of the host, the tables a property of the simulator).
 *
 * Tiers form a strict ladder — every host that can run a tier can
 * run all tiers below it, both in silicon (no shipping AVX-512 part
 * lacks AVX2) and in this build (a compiler that accepts -mavx512f
 * accepts -mavx2) — so "what the host supports" is a single value,
 * not a set. The AVX-512 tier requires the F, BW, and VL subsets.
 *
 * NC_SIMD=scalar|avx2|avx512|auto selects the tier, parsed exactly
 * as strictly as NC_THREADS: any other spelling is fatal, and
 * requesting a tier above the host's ladder is fatal too, naming the
 * best tier the host does have — a silent fallback would benchmark
 * the wrong kernels while claiming otherwise.
 */

#ifndef NC_COMMON_SIMD_HH
#define NC_COMMON_SIMD_HH

namespace nc::common::simd
{

/** Kernel width tiers, narrowest first (the ladder order). */
enum class Tier : int
{
    Scalar = 0, ///< portable uint64_t words, 64 lanes per step
    Avx2 = 1,   ///< 256-bit vectors, 256 lanes per step
    Avx512 = 2, ///< 512-bit vectors (F+BW+VL), 512 lanes per step
};

/** Lower-case tier name, matching the NC_SIMD grammar. */
const char *tierName(Tier t);

/**
 * The widest tier this CPU can execute (CPUID-derived, cached after
 * the first call). Says nothing about what this *build* contains —
 * sram::kern::bestTier() intersects this with the compiled-in
 * tables and is what dispatch decisions must use.
 */
Tier cpuBestTier();

/**
 * Resolve an NC_SIMD-style spec against a host whose best tier is
 * @p best. nullptr and "auto" yield @p best; "scalar"/"avx2"/
 * "avx512" yield that tier when best allows it and die naming
 * @p best otherwise; anything else (padding, case, typos) dies
 * listing the grammar. Pure — tests exercise every branch on any
 * host by passing a synthetic @p best.
 */
Tier resolveTierSpec(const char *spec, Tier best);

} // namespace nc::common::simd

#endif // NC_COMMON_SIMD_HH
