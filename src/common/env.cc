#include "common/env.hh"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.hh"

extern "C" char **environ;

namespace nc::common
{

namespace
{

/** Every environment variable the simulator reads. Keep sorted. */
constexpr const char *kKnown[] = {"NC_DEBUG", "NC_FAULTS",
                                  "NC_SIMD", "NC_THREADS"};

size_t
editDistance(const std::string &a, const char *b)
{
    size_t lb = std::strlen(b);
    std::vector<size_t> prev(lb + 1), cur(lb + 1);
    for (size_t j = 0; j <= lb; ++j)
        prev[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (size_t j = 1; j <= lb; ++j)
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1,
                               prev[j - 1] + (a[i - 1] != b[j - 1])});
        std::swap(prev, cur);
    }
    return prev[lb];
}

} // namespace

void
checkEnvOrDie()
{
    for (char **e = environ; e && *e; ++e) {
        const char *entry = *e;
        const char *eq = std::strchr(entry, '=');
        std::string name(entry, eq ? static_cast<size_t>(eq - entry)
                                   : std::strlen(entry));
        if (name.rfind("NC_", 0) != 0)
            continue;
        if (std::any_of(std::begin(kKnown), std::end(kKnown),
                        [&](const char *k) { return name == k; }))
            continue;
        size_t best = SIZE_MAX;
        const char *hint = kKnown[0];
        for (const char *k : kKnown) {
            size_t d = editDistance(name, k);
            if (d < best) {
                best = d;
                hint = k;
            }
        }
        nc_fatal("unknown environment variable %s (did you mean %s? "
                 "known: NC_DEBUG, NC_FAULTS, NC_SIMD, NC_THREADS)",
                 name.c_str(), hint);
    }
}

void
checkEnvOnce()
{
    static std::once_flag flag;
    std::call_once(flag, checkEnvOrDie);
}

} // namespace nc::common
