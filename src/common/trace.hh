/**
 * @file
 * gem5-style debug tracing.
 *
 * Components print through nc_dprintf(flag, ...) guarded by named
 * debug flags, exactly like gem5's DPRINTF machinery: nothing is
 * emitted unless the flag is enabled, either programmatically
 * (trace::enable) or through the NC_DEBUG environment variable
 * (comma-separated flag names, read once at startup; "All" enables
 * everything).
 */

#ifndef NC_COMMON_TRACE_HH
#define NC_COMMON_TRACE_HH

#include <string>

#include "common/logging.hh"

namespace nc::trace
{

/** Enable/disable one flag (or "All"). */
void enable(const std::string &flag);
void disable(const std::string &flag);

/** Is the flag (or "All") currently enabled? */
bool enabled(const std::string &flag);

/** Drop every programmatic flag and re-read NC_DEBUG. */
void reset();

/** Emit one trace line ("flag: message") to stderr. */
void emit(const std::string &flag, const std::string &msg);

} // namespace nc::trace

/** Print iff @p flag is enabled. Usage mirrors gem5's DPRINTF. */
#define nc_dprintf(flag, ...) \
    do { \
        if (::nc::trace::enabled(flag)) \
            ::nc::trace::emit(flag, \
                              ::nc::detail::format(__VA_ARGS__)); \
    } while (0)

#endif // NC_COMMON_TRACE_HH
