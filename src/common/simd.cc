#include "common/simd.hh"

#include <cstring>

#include "common/logging.hh"

namespace nc::common::simd
{

const char *
tierName(Tier t)
{
    switch (t) {
    case Tier::Scalar:
        return "scalar";
    case Tier::Avx2:
        return "avx2";
    case Tier::Avx512:
        return "avx512";
    }
    return "scalar";
}

Tier
cpuBestTier()
{
    // __builtin_cpu_supports runs CPUID once per feature under the
    // hood and both GCC and Clang provide it on x86; any other
    // target simply has no wide tier to offer.
    static const Tier best = [] {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
        // The 512-bit kernels use masked byte extraction
        // (_mm512_movepi8_mask, BW subset) and their embedded 256-bit
        // remainder kernels use VPTERNLOGQ on ymm registers (VL
        // subset) — F alone (early Xeon Phi) does not qualify. Every
        // server core with BW also has VL (Skylake-SP onward).
        if (__builtin_cpu_supports("avx512f") &&
            __builtin_cpu_supports("avx512bw") &&
            __builtin_cpu_supports("avx512vl"))
            return Tier::Avx512;
        if (__builtin_cpu_supports("avx2"))
            return Tier::Avx2;
#endif
        return Tier::Scalar;
    }();
    return best;
}

Tier
resolveTierSpec(const char *spec, Tier best)
{
    if (!spec || std::strcmp(spec, "auto") == 0)
        return best;
    Tier want;
    if (std::strcmp(spec, "scalar") == 0)
        want = Tier::Scalar;
    else if (std::strcmp(spec, "avx2") == 0)
        want = Tier::Avx2;
    else if (std::strcmp(spec, "avx512") == 0)
        want = Tier::Avx512;
    else
        // Mirrors NC_THREADS strictness: padding, case variants, and
        // typos are configuration errors, not requests to guess.
        nc_fatal("NC_SIMD='%s' is not a dispatch tier (expected "
                 "scalar, avx2, avx512, or auto)",
                 spec);
    if (want > best)
        // A silent fallback would run (and benchmark) narrower
        // kernels than the operator asked for; name what this host
        // can actually do instead.
        nc_fatal("NC_SIMD='%s' is not available on this host/build "
                 "(best tier: %s)",
                 spec, tierName(best));
    return want;
}

} // namespace nc::common::simd
