#include "common/thread_pool.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"

namespace nc::common
{

namespace
{

/**
 * The pool this thread is currently running a task of (null outside
 * any task). parallelForRaw() consults it to collapse nested loops on
 * the same pool to inline execution instead of corrupting the single
 * shared job slot.
 */
thread_local const ThreadPool *tl_active_pool = nullptr;

struct ActivePoolScope
{
    explicit ActivePoolScope(const ThreadPool *p)
        : prev(tl_active_pool)
    {
        tl_active_pool = p;
    }
    ~ActivePoolScope() { tl_active_pool = prev; }
    const ThreadPool *prev;
};

/**
 * Task identity for the ownership race detector: each claimed index
 * gets a fresh process-unique id for the duration of its fn(i) call.
 * Debug builds only — release builds never assign ids (currentTaskId
 * stays 0) so the hot loop carries no extra atomic traffic.
 */
thread_local uint64_t tl_task_id = 0;

#ifndef NDEBUG
std::atomic<uint64_t> g_next_task_id{0};

struct PoolTaskScope
{
    PoolTaskScope() : prev(tl_task_id)
    {
        tl_task_id = g_next_task_id.fetch_add(
                         1, std::memory_order_relaxed) +
                     1;
    }
    ~PoolTaskScope() { tl_task_id = prev; }
    uint64_t prev;
};
#endif

} // namespace

uint64_t
currentTaskId()
{
    return tl_task_id;
}

unsigned
ThreadPool::defaultThreads()
{
    // A misread thread count silently misconfigures every pool in
    // the process (and with it every cycle-reduction fan-out), so
    // garbage is a hard configuration error, not a warning that
    // scrolls past: the value must be a plain positive decimal
    // integer with no trailing junk, and absurd counts — far beyond
    // any machine this simulator meets — are rejected as the typos
    // they are.
    constexpr long kMaxThreads = 4096;
    if (const char *env = std::getenv("NC_THREADS")) {
        char *end = nullptr;
        errno = 0;
        long v = std::strtol(env, &end, 10);
        // strtol quietly skips leading whitespace; a padded value is
        // as suspect as trailing junk, so both are rejected.
        if (end == env || *end != '\0' ||
            std::isspace(static_cast<unsigned char>(env[0])))
            nc_fatal("NC_THREADS='%s' is not an integer", env);
        if (errno == ERANGE || v > kMaxThreads)
            nc_fatal("NC_THREADS='%s' is absurdly large (max %ld)",
                     env, kMaxThreads);
        if (v < 1)
            nc_fatal("NC_THREADS='%s' must be a positive thread "
                     "count", env);
        return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned nthreads)
    : nThreads(nthreads != 0 ? nthreads : defaultThreads())
{
    // A typo'd NC_* knob must not silently configure nothing; die
    // here (and in the Engine constructor) before any work runs.
    checkEnvOnce();
}

void
ThreadPool::ensureWorkers()
{
    if (!workers.empty())
        return;
    workers.reserve(nThreads - 1);
    for (unsigned i = 0; i + 1 < nThreads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cvStart.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::runShare()
{
    for (;;) {
        size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobN)
            break;
        try {
#ifndef NDEBUG
            PoolTaskScope task_identity;
#endif
            jobFn(jobCtx, i);
        } catch (...) {
            // First failure wins; park the cursor past the end so no
            // further indices are claimed (tasks already claimed
            // still finish — the join below waits for them).
            {
                std::lock_guard<std::mutex> lk(mtx);
                if (!jobErr)
                    jobErr = std::current_exception();
            }
            cursor.store(jobN, std::memory_order_relaxed);
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mtx);
            cvStart.wait(lk, [&] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            // Jobs smaller than the pool only open n-1 helper slots;
            // a spuriously woken worker beyond that goes back to
            // sleep instead of contending for the cursor.
            if (joined >= target)
                continue;
            ++joined;
        }
        {
            ActivePoolScope scope(this);
            runShare();
        }
        {
            std::lock_guard<std::mutex> lk(mtx);
            if (--pending == 0)
                cvDone.notify_one();
        }
    }
}

void
ThreadPool::parallelForRaw(size_t n, void *ctx,
                           void (*fn)(void *, size_t))
{
    if (n == 0)
        return;
    // Nested loop on the pool we are already running a task of: the
    // outer level owns the workers (and the one job slot), so the
    // inner level runs inline on this thread.
    if (tl_active_pool == this) {
        for (size_t i = 0; i < n; ++i)
            fn(ctx, i);
        return;
    }
    // The caller participates, so a job needs at most n - 1 helpers.
    size_t helpers = std::min<size_t>(nThreads - 1, n - 1);
    if (helpers == 0) {
        for (size_t i = 0; i < n; ++i)
            fn(ctx, i);
        return;
    }
    ensureWorkers();
    {
        std::lock_guard<std::mutex> lk(mtx);
        jobFn = fn;
        jobCtx = ctx;
        jobN = n;
        jobErr = nullptr;
        cursor.store(0, std::memory_order_relaxed);
        target = static_cast<unsigned>(helpers);
        joined = 0;
        pending = static_cast<unsigned>(helpers);
        ++generation;
    }
    // Wake only as many workers as there are helper slots; a worker
    // re-entering its wait sees the bumped generation by itself.
    for (size_t i = 0; i < helpers; ++i)
        cvStart.notify_one();
    {
        ActivePoolScope scope(this);
        runShare();
    }
    // The join must run even when this thread's own share failed:
    // workers still borrow jobFn/jobCtx, so unwinding past them would
    // dangle the callable. runShare() never throws (failures land in
    // jobErr), so reaching here is unconditional.
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(mtx);
        cvDone.wait(lk, [&] { return pending == 0; });
        jobFn = nullptr;
        jobCtx = nullptr;
        jobN = 0;
        err = jobErr;
        jobErr = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace nc::common
