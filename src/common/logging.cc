#include "common/logging.hh"

#include <cstdarg>
#include <vector>

namespace nc
{

namespace
{
bool verboseFlag = true;
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

namespace detail
{

void
emit(const char *severity, const std::string &msg,
     const char *file, int line)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", severity, msg.c_str(),
                 file, line);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    emit("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    emit("fatal", msg, file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg, const char *file, int line)
{
    emit("warn", msg, file, line);
}

void
informImpl(const std::string &msg)
{
    if (verboseFlag)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace detail

} // namespace nc
