/**
 * @file
 * Closed-form cycle costs of the bit-serial operations.
 *
 * Two families live here:
 *
 *  1. `impl*Cycles` — exact counts of the micro-op sequences our ALU
 *     (alu.hh) issues. Property tests assert that the functional
 *     simulator consumes exactly these many compute cycles, so the
 *     analytic cost model and the functional model can never drift.
 *
 *  2. `paper*Cycles` — the formulas quoted by the paper (§III-B/C:
 *     addition n+1, multiplication n^2+5n-2, division 1.5n^2+5.5n).
 *     The Neural Cache cost model can be run in "paper" mode that uses
 *     these instead, for apples-to-apples reproduction of the
 *     evaluation numbers. EXPERIMENTS.md records both.
 */

#ifndef NC_BITSERIAL_COST_HH
#define NC_BITSERIAL_COST_HH

#include <cstdint>

#include "common/bits.hh"

namespace nc::bitserial
{

/** Tunable micro-costs of the ALU. */
struct AluConfig
{
    /**
     * Compute cycles to move one word line to another word line with a
     * lane shift (sense-amp cycling through the column mux): one sense
     * phase plus one drive phase.
     */
    unsigned moveCyclesPerRow = 2;
};

/** Copy / inverted copy / zero / ones of an n-bit slice. */
constexpr uint64_t
implCopyCycles(unsigned n)
{
    return n;
}

/** Addition of two n-bit slices; +1 when the carry-out is stored. */
constexpr uint64_t
implAddCycles(unsigned n, bool store_carry)
{
    return n + (store_carry ? 1 : 0);
}

/** Subtraction: invert subtrahend (n) then add with carry-in 1. */
constexpr uint64_t
implSubCycles(unsigned n, bool store_carry)
{
    return 2 * uint64_t(n) + (store_carry ? 1 : 0);
}

/**
 * Multiplication of an m-bit multiplicand by an n-bit multiplier into
 * an (m+n)-bit product: zero the product band, then per multiplier bit
 * one tag load, m predicated adds, and one predicated carry store.
 */
constexpr uint64_t
implMulCycles(unsigned m, unsigned n)
{
    return (uint64_t(m) + n) + uint64_t(n) * (m + 2);
}

/** Square multiply (both operands n bits): n^2 + 4n. */
constexpr uint64_t
implMulCycles(unsigned n)
{
    return implMulCycles(n, n);
}

/**
 * Fused MAC: acc(w bits) += a(n) * b(n) with full carry propagation to
 * the top of the accumulator every iteration.
 */
constexpr uint64_t
implMacFusedCycles(unsigned n, unsigned w)
{
    // sum_{i=0}^{n-1} (1 + w - i)
    return uint64_t(n) * (1 + w) - uint64_t(n) * (n - 1) / 2;
}

/**
 * MAC through the scratchpad (paper Figure 10 layout): multiply into a
 * 2n-bit scratch band, then add the scratch into the w-bit partial sum.
 */
constexpr uint64_t
implMacScratchCycles(unsigned n, unsigned w)
{
    return implMulCycles(n) + w;
}

/**
 * Lane-tree sum reduction of `lanes` (power of two) elements that start
 * w0 bits wide. Each of the log2(lanes) steps moves the live width
 * across lanes (moveCyclesPerRow per word line), adds, and stores the
 * carry, growing the live width by one bit.
 */
constexpr uint64_t
implReduceSumCycles(unsigned w0, unsigned lanes, unsigned move_per_row)
{
    uint64_t cycles = 0;
    unsigned w = w0;
    for (unsigned k = lanes; k > 1; k >>= 1) {
        cycles += uint64_t(move_per_row) * w; // lane move
        cycles += w;                          // add
        cycles += 1;                          // carry store
        ++w;
    }
    return cycles;
}

/** Lane-wise max/min of two n-bit slices into the first. */
constexpr uint64_t
implMaxCycles(unsigned n)
{
    return 3 * uint64_t(n) + 1;
}

/** Lane-tree max/min reduction over `lanes` n-bit elements. */
constexpr uint64_t
implReduceMaxCycles(unsigned n, unsigned lanes, unsigned move_per_row)
{
    uint64_t cycles = 0;
    for (unsigned k = lanes; k > 1; k >>= 1)
        cycles += uint64_t(move_per_row) * n + implMaxCycles(n);
    return cycles;
}

/** Unsigned comparison a >= b into the tag latch. */
constexpr uint64_t
implCompareCycles(unsigned n)
{
    return 2 * uint64_t(n) + 1;
}

/** ReLU of a w-bit two's-complement slice. */
constexpr uint64_t
implReluCycles(unsigned w)
{
    return 1 + uint64_t(w);
}

/** Logical shift (either direction) of a w-bit slice. */
constexpr uint64_t
implShiftCycles(unsigned w)
{
    return w;
}

/**
 * Restoring division: n-bit dividend / d-bit divisor. Remainder init
 * (n+d rows) and one-time divisor inversion (d+1 rows), then per
 * quotient bit a (d+1)-bit windowed subtract, tag capture, quotient
 * store, and predicated restore.
 */
constexpr uint64_t
implDivCycles(unsigned n, unsigned d)
{
    return (uint64_t(n) + d) + (uint64_t(d) + 1) +
           uint64_t(n) * (2 * uint64_t(d) + 4);
}

/** @name Formulas as published (paper §III-B/C). */
/// @{
constexpr uint64_t
paperAddCycles(unsigned n)
{
    return uint64_t(n) + 1;
}

constexpr uint64_t
paperMulCycles(unsigned n)
{
    return uint64_t(n) * n + 5 * uint64_t(n) - 2;
}

constexpr double
paperDivCycles(unsigned n)
{
    return 1.5 * n * n + 5.5 * n;
}
/// @}

} // namespace nc::bitserial

#endif // NC_BITSERIAL_COST_HH
