/**
 * @file
 * ALU extensions beyond the paper's core arithmetic.
 *
 * Three groups:
 *
 *  - Compute Cache heritage ops (HPCA'17 [9], which Neural Cache
 *    builds on): lane-wise equality into the tag latch and
 *    associative key search — both built from XNOR sensing plus the
 *    tag-AND compound predicate.
 *
 *  - Batch normalization (paper §IV-D): y = ((x * gamma) >> shift)
 *    + beta with per-lane (per-channel) integer gamma/beta, exactly
 *    the multiply/shift/add sequence the paper describes running
 *    in-cache after the CPU computes the scalars.
 *
 *  - Zero-skipping MAC (paper §VII names sparsity exploitation as
 *    future work): a one-cycle wired-OR zero detect of the multiplier
 *    slice lets fully-zero passes skip the whole multiply.
 */

#ifndef NC_BITSERIAL_EXTENSIONS_HH
#define NC_BITSERIAL_EXTENSIONS_HH

#include "bitserial/alu.hh"

namespace nc::bitserial
{

/**
 * Tag <= (a == b) lane-wise: one tag-AND-XNOR cycle per bit (the tag
 * preset travels with the first cycle's control word). Costs a.bits
 * cycles; `scratch` is unused and kept only for signature symmetry
 * with the other comparison helpers.
 */
uint64_t equalCompare(Array &arr, const VecSlice &a, const VecSlice &b,
                      const VecSlice &scratch);

/**
 * Associative search (Compute Cache's search/BCAM mode): tag <=
 * (lane value == key) for a broadcast scalar key. Bits of the key
 * select whether the stored bit or its complement feeds the tag-AND,
 * so no scratch is needed: one cycle per bit.
 */
uint64_t searchKey(Array &arr, const VecSlice &slice, uint64_t key);

/** Count of matching lanes after searchKey() (free: read the tag). */
unsigned matchCount(const Array &arr);

/**
 * In-place batch normalization (paper §IV-D):
 *   val <= ((val * gamma) >> shift) + beta   (all unsigned)
 * gamma is g_bits wide, beta matches val.bits. `prod` needs
 * val.bits + g_bits rows of scratch. Returns cycles.
 */
uint64_t batchNorm(Array &arr, const VecSlice &val,
                   const VecSlice &gamma, const VecSlice &beta,
                   unsigned shift, const VecSlice &prod,
                   unsigned zero_row);

/** Closed-form cost of batchNorm(). */
constexpr uint64_t
implBatchNormCycles(unsigned vbits, unsigned gbits)
{
    // multiply + copy of the shifted window + final add.
    return implMulCycles(vbits, gbits) + vbits + vbits;
}

/**
 * acc += a * b like macScratch(), but a one-cycle wired-OR zero
 * detect of the multiplier band skips the multiply + add entirely
 * when every lane's multiplier is zero. Worst case costs one cycle
 * more than macScratch; all-zero passes cost 1 cycle.
 */
uint64_t macScratchSkipZero(Array &arr, const VecSlice &a,
                            const VecSlice &b, const VecSlice &acc,
                            const VecSlice &scratch, unsigned zero_row);

/** Closed-form costs of the zero-skip MAC's two outcomes. */
constexpr uint64_t
implMacSkipHitCycles()
{
    return 1;
}

constexpr uint64_t
implMacSkipMissCycles(unsigned n, unsigned w)
{
    return 1 + implMacScratchCycles(n, w);
}

/**
 * Saturating narrow: clamp the wide unsigned value in `val` to its
 * low @p out_bits (lanes whose upper bits are non-zero get all-ones
 * in the low field). This is the clamp of §IV-D requantization, done
 * in-array: fold the upper rows into the tag with OR, then a
 * predicated all-ones write over the low field.
 */
uint64_t saturate(Array &arr, const VecSlice &val, unsigned out_bits);

constexpr uint64_t
implSaturateCycles(unsigned vbits, unsigned out_bits)
{
    return (vbits - out_bits) + out_bits;
}

/** val <= -val (two's complement negate: invert then +1). */
uint64_t negate(Array &arr, const VecSlice &val, unsigned zero_row);

constexpr uint64_t
implNegateCycles(unsigned n)
{
    return 2 * uint64_t(n);
}

/**
 * out <= |a - b| for unsigned operands: subtract, then conditionally
 * negate where the subtraction borrowed.
 */
uint64_t absDiff(Array &arr, const VecSlice &a, const VecSlice &b,
                 const VecSlice &out, const VecSlice &scratch,
                 unsigned zero_row);

constexpr uint64_t
implAbsDiffCycles(unsigned n)
{
    return implSubCycles(n, false) + 1 + implNegateCycles(n);
}

} // namespace nc::bitserial

#endif // NC_BITSERIAL_EXTENSIONS_HH
