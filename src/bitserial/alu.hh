/**
 * @file
 * The bit-serial vector ALU (paper §III).
 *
 * Every function issues a deterministic micro-op sequence against one
 * sram::Array and returns the number of compute cycles consumed; the
 * counts are exactly the `impl*Cycles` formulas in cost.hh (enforced by
 * tests). All operations are SIMD across the array's bit lines: lane i
 * computes on element i of each operand slice.
 *
 * Conventions:
 *  - Elements are unsigned, LSB on the lowest word line of the slice,
 *    except where a function documents two's-complement semantics.
 *  - `zero_row` is the array's reserved all-zero word line
 *    (RowAllocator::zeroRow()); ops that pad uneven operand widths or
 *    propagate carries require it.
 *  - Output slices may alias an input slice only when base rows are
 *    equal (in-place accumulation); partially shifted overlap is
 *    rejected.
 */

#ifndef NC_BITSERIAL_ALU_HH
#define NC_BITSERIAL_ALU_HH

#include <cstdint>

#include "bitserial/cost.hh"
#include "bitserial/layout.hh"
#include "sram/array.hh"

namespace nc::bitserial
{

using sram::Array;

/** dst <= src. @return cycles (src.bits). */
uint64_t copy(Array &arr, const VecSlice &src, const VecSlice &dst,
              bool pred = false);

/** dst <= ~src (lane-wise one's complement). */
uint64_t copyInv(Array &arr, const VecSlice &src, const VecSlice &dst,
                 bool pred = false);

/** dst <= 0. */
uint64_t zero(Array &arr, const VecSlice &dst, bool pred = false);

/**
 * out <= a + b (+ carry_in), unsigned.
 *
 * Widths may differ if @p zero_row is provided (the shorter operand is
 * padded by activating the zero row). out.bits must equal
 * max(a.bits, b.bits) (modular sum) or one more (carry-out stored).
 */
uint64_t add(Array &arr, const VecSlice &a, const VecSlice &b,
             const VecSlice &out, unsigned zero_row = kNoRow,
             bool pred = false, bool carry_in = false);

/**
 * out <= a - b (two's complement wraparound); `scratch` must hold
 * b.bits rows and is clobbered with ~b. After return the carry latch
 * holds the lane-wise "no borrow" flag (1 iff a >= b).
 */
uint64_t sub(Array &arr, const VecSlice &a, const VecSlice &b,
             const VecSlice &out, const VecSlice &scratch,
             unsigned zero_row = kNoRow, bool pred = false);

/**
 * prod <= a * b, unsigned. prod.bits must equal a.bits + b.bits and
 * must not overlap the operands. Uses the tag-predicated shift-and-add
 * scheme of paper Figure 6.
 */
uint64_t multiply(Array &arr, const VecSlice &a, const VecSlice &b,
                  const VecSlice &prod);

/**
 * acc += a * b (unsigned), fully fused: every multiplier bit ripples
 * its carry to the top of the accumulator. acc.bits >= a.bits + b.bits
 * is required for an overflow-free result.
 */
uint64_t macFused(Array &arr, const VecSlice &a, const VecSlice &b,
                  const VecSlice &acc, unsigned zero_row);

/**
 * acc += a * b via a (a.bits+b.bits)-wide scratch band: multiply into
 * scratch, then one wide add (the paper's Figure 10 scratchpad flow).
 */
uint64_t macScratch(Array &arr, const VecSlice &a, const VecSlice &b,
                    const VecSlice &acc, const VecSlice &scratch,
                    unsigned zero_row);

/**
 * In-place lane-tree sum reduction (paper Figure 5).
 *
 * `acc` holds `lanes` (power of two) elements that are live in the low
 * @p w0 bits; rows [w0, acc.bits) are scratch headroom and need not be
 * zeroed. After return, lane 0's low w0+log2(lanes) bits hold the sum
 * of lanes [0, lanes); other lanes hold partial sums. `scratch` needs
 * w0 + log2(lanes) - 1 rows.
 */
uint64_t reduceSum(Array &arr, const VecSlice &acc, unsigned w0,
                   unsigned lanes, const VecSlice &scratch,
                   const AluConfig &cfg = {});

/** a <= max(a, b) lane-wise, unsigned. scratch: a.bits rows. */
uint64_t maxInto(Array &arr, const VecSlice &a, const VecSlice &b,
                 const VecSlice &scratch);

/** a <= min(a, b) lane-wise, unsigned. */
uint64_t minInto(Array &arr, const VecSlice &a, const VecSlice &b,
                 const VecSlice &scratch);

/**
 * Lane-tree max (or min) reduction: lane 0 of `data` ends up with the
 * extremum of lanes [0, lanes). `move` and `cmp` are data.bits-row
 * scratch bands.
 */
uint64_t reduceMax(Array &arr, const VecSlice &data, unsigned lanes,
                   const VecSlice &move, const VecSlice &cmp,
                   bool take_min = false, const AluConfig &cfg = {});

/** Tag latch <= (a >= b) unsigned; scratch clobbered (a.bits rows). */
uint64_t compareGE(Array &arr, const VecSlice &a, const VecSlice &b,
                   const VecSlice &scratch);

/** val <= max(val, 0) for two's-complement val (paper §IV-D ReLU). */
uint64_t relu(Array &arr, const VecSlice &val);

/** val <<= k (logical), in place. */
uint64_t shiftUp(Array &arr, const VecSlice &val, unsigned k);

/** val >>= k (logical), in place. */
uint64_t shiftDown(Array &arr, const VecSlice &val, unsigned k);

/**
 * quot <= num / den, rem window left in `rwork` low den.bits rows.
 * Unsigned restoring division. `rwork` needs num.bits + den.bits rows
 * (clobbered), `twork` den.bits + 1 rows, `dwork` den.bits + 1 rows.
 * Lanes whose divisor is zero produce all-ones quotients.
 */
uint64_t divide(Array &arr, const VecSlice &num, const VecSlice &den,
                const VecSlice &quot, const VecSlice &rwork,
                const VecSlice &twork, const VecSlice &dwork);

} // namespace nc::bitserial

#endif // NC_BITSERIAL_ALU_HH
