#include "bitserial/extensions.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::bitserial
{

uint64_t
equalCompare(Array &arr, const VecSlice &a, const VecSlice &b,
             const VecSlice &scratch)
{
    nc_assert(a.bits == b.bits, "equalCompare width mismatch");
    (void)scratch; // kept in the signature for layout symmetry
    arr.tagSet(true);
    for (unsigned j = 0; j < a.bits; ++j)
        arr.opTagAndXnor(a.row(j), b.row(j));
    return a.bits;
}

uint64_t
searchKey(Array &arr, const VecSlice &slice, uint64_t key)
{
    nc_assert(slice.bits <= 64, "key wider than 64 bits");
    nc_assert(truncate(key, slice.bits) == key,
              "key 0x%llx exceeds %u bits",
              static_cast<unsigned long long>(key), slice.bits);
    arr.tagSet(true);
    for (unsigned j = 0; j < slice.bits; ++j) {
        if (bit(key, j))
            arr.opTagAnd(slice.row(j));
        else
            arr.opTagAndInv(slice.row(j));
    }
    return slice.bits;
}

unsigned
matchCount(const Array &arr)
{
    return arr.tag().popcount();
}

uint64_t
batchNorm(Array &arr, const VecSlice &val, const VecSlice &gamma,
          const VecSlice &beta, unsigned shift, const VecSlice &prod,
          unsigned zero_row)
{
    nc_assert(beta.bits == val.bits, "beta width must match value");
    nc_assert(prod.bits == val.bits + gamma.bits,
              "product band needs %u rows", val.bits + gamma.bits);
    nc_assert(shift + val.bits <= prod.bits,
              "shift %u pushes the window past the product", shift);

    uint64_t cycles = multiply(arr, val, gamma, prod);
    // val <= prod >> shift (copy the shifted window back).
    for (unsigned j = 0; j < val.bits; ++j) {
        arr.opCopy(prod.row(shift + j), val.row(j));
        ++cycles;
    }
    cycles += add(arr, val, beta, val, zero_row);
    nc_assert(cycles == implBatchNormCycles(val.bits, gamma.bits),
              "batchNorm cycle model drift");
    return cycles;
}

uint64_t
saturate(Array &arr, const VecSlice &val, unsigned out_bits)
{
    nc_assert(out_bits > 0 && out_bits < val.bits,
              "saturate to %u bits of a %u-bit value", out_bits,
              val.bits);
    arr.tagSet(false);
    uint64_t cycles = 0;
    for (unsigned j = out_bits; j < val.bits; ++j) {
        arr.opTagOr(val.row(j));
        ++cycles;
    }
    for (unsigned j = 0; j < out_bits; ++j) {
        arr.opOnes(val.row(j), /*pred=*/true);
        ++cycles;
    }
    nc_assert(cycles == implSaturateCycles(val.bits, out_bits),
              "saturate cycle model drift");
    return cycles;
}

uint64_t
negate(Array &arr, const VecSlice &val, unsigned zero_row)
{
    uint64_t cycles = 0;
    for (unsigned j = 0; j < val.bits; ++j) {
        arr.opCopyInv(val.row(j), val.row(j));
        ++cycles;
    }
    arr.carrySet(true);
    for (unsigned j = 0; j < val.bits; ++j) {
        arr.opAdd(val.row(j), zero_row, val.row(j));
        ++cycles;
    }
    nc_assert(cycles == implNegateCycles(val.bits),
              "negate cycle model drift");
    return cycles;
}

uint64_t
absDiff(Array &arr, const VecSlice &a, const VecSlice &b,
        const VecSlice &out, const VecSlice &scratch, unsigned zero_row)
{
    unsigned n = a.bits;
    uint64_t cycles = sub(arr, a, b, out, scratch, zero_row);
    arr.opLoadTagFromCarry(/*invert=*/true); // tag = borrowed (a < b)
    ++cycles;
    // Conditional negate of the borrowed lanes.
    for (unsigned j = 0; j < n; ++j) {
        arr.opCopyInv(out.row(j), out.row(j), /*pred=*/true);
        ++cycles;
    }
    arr.carrySet(true);
    for (unsigned j = 0; j < n; ++j) {
        arr.opAdd(out.row(j), zero_row, out.row(j), /*pred=*/true);
        ++cycles;
    }
    nc_assert(cycles == implAbsDiffCycles(n),
              "absDiff cycle model drift");
    return cycles;
}

uint64_t
macScratchSkipZero(Array &arr, const VecSlice &a, const VecSlice &b,
                   const VecSlice &acc, const VecSlice &scratch,
                   unsigned zero_row)
{
    // One compute cycle: activate the whole multiplier band and sense
    // the wired-OR — zero iff every lane of every bit row is zero.
    bool any = false;
    for (unsigned j = 0; j < b.bits && !any; ++j)
        any = arr.rowRef(b.row(j)).popcount() != 0;
    arr.opZero(scratch.row(0), /*pred=*/false); // the detect cycle
    if (!any)
        return implMacSkipHitCycles();
    uint64_t cycles = 1 + macScratch(arr, a, b, acc, scratch, zero_row);
    nc_assert(a.bits != b.bits ||
                  cycles == implMacSkipMissCycles(a.bits, acc.bits),
              "macScratchSkipZero cycle model drift");
    return cycles;
}

} // namespace nc::bitserial
