#include "bitserial/alu.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::bitserial
{

namespace
{

/** In-place aliasing is only safe when base rows line up exactly. */
void
checkAlias(const VecSlice &out, const VecSlice &in, const char *what)
{
    nc_assert(out.base == in.base || !out.overlaps(in),
              "%s: shifted overlap between slices [%u,+%u) and [%u,+%u)",
              what, out.base, out.bits, in.base, in.bits);
}

} // namespace

uint64_t
copy(Array &arr, const VecSlice &src, const VecSlice &dst, bool pred)
{
    nc_assert(dst.bits >= src.bits, "copy into narrower slice");
    checkAlias(dst, src, "copy");
    for (unsigned j = 0; j < src.bits; ++j)
        arr.opCopy(src.row(j), dst.row(j), pred);
    return implCopyCycles(src.bits);
}

uint64_t
copyInv(Array &arr, const VecSlice &src, const VecSlice &dst, bool pred)
{
    nc_assert(dst.bits >= src.bits, "copyInv into narrower slice");
    checkAlias(dst, src, "copyInv");
    for (unsigned j = 0; j < src.bits; ++j)
        arr.opCopyInv(src.row(j), dst.row(j), pred);
    return implCopyCycles(src.bits);
}

uint64_t
zero(Array &arr, const VecSlice &dst, bool pred)
{
    for (unsigned j = 0; j < dst.bits; ++j)
        arr.opZero(dst.row(j), pred);
    return implCopyCycles(dst.bits);
}

uint64_t
add(Array &arr, const VecSlice &a, const VecSlice &b, const VecSlice &out,
    unsigned zero_row, bool pred, bool carry_in)
{
    unsigned n = std::max(a.bits, b.bits);
    nc_assert(out.bits == n || out.bits == n + 1,
              "add output %u bits for %u-bit operands", out.bits, n);
    nc_assert(a.bits == b.bits || zero_row != kNoRow,
              "uneven add requires a zero row");
    checkAlias(out, a, "add");
    checkAlias(out, b, "add");

    arr.carrySet(carry_in);
    for (unsigned j = 0; j < n; ++j) {
        unsigned ra = j < a.bits ? a.row(j) : zero_row;
        unsigned rb = j < b.bits ? b.row(j) : zero_row;
        arr.opAdd(ra, rb, out.row(j), pred);
    }
    bool store_carry = out.bits == n + 1;
    if (store_carry)
        arr.opStoreCarry(out.row(n), pred);
    return implAddCycles(n, store_carry);
}

uint64_t
sub(Array &arr, const VecSlice &a, const VecSlice &b, const VecSlice &out,
    const VecSlice &scratch, unsigned zero_row, bool pred)
{
    nc_assert(a.bits == b.bits, "sub requires equal widths");
    nc_assert(scratch.bits >= b.bits, "sub scratch too small");
    uint64_t cycles = copyInv(arr, b, scratch.slice(0, b.bits), pred);
    cycles += add(arr, a, scratch.slice(0, b.bits), out, zero_row, pred,
                  /*carry_in=*/true);
    return cycles;
}

uint64_t
multiply(Array &arr, const VecSlice &a, const VecSlice &b,
         const VecSlice &prod)
{
    nc_assert(prod.bits == a.bits + b.bits,
              "product must be %u bits, got %u", a.bits + b.bits,
              prod.bits);
    nc_assert(!prod.overlaps(a) && !prod.overlaps(b),
              "product overlaps an operand");

    uint64_t cycles = zero(arr, prod);
    for (unsigned i = 0; i < b.bits; ++i) {
        arr.opLoadTag(b.row(i));
        ++cycles;
        arr.carrySet(false);
        for (unsigned j = 0; j < a.bits; ++j) {
            arr.opAdd(a.row(j), prod.row(i + j), prod.row(i + j),
                      /*pred=*/true);
            ++cycles;
        }
        arr.opStoreCarry(prod.row(i + a.bits), /*pred=*/true);
        ++cycles;
    }
    nc_assert(cycles == implMulCycles(a.bits, b.bits),
              "multiply cycle model drift");
    return cycles;
}

uint64_t
macFused(Array &arr, const VecSlice &a, const VecSlice &b,
         const VecSlice &acc, unsigned zero_row)
{
    nc_assert(acc.bits >= a.bits + b.bits,
              "accumulator too narrow: %u < %u", acc.bits,
              a.bits + b.bits);
    nc_assert(!acc.overlaps(a) && !acc.overlaps(b),
              "accumulator overlaps an operand");
    nc_assert(zero_row != kNoRow, "macFused requires a zero row");

    uint64_t cycles = 0;
    for (unsigned i = 0; i < b.bits; ++i) {
        arr.opLoadTag(b.row(i));
        ++cycles;
        arr.carrySet(false);
        for (unsigned j = 0; j < a.bits; ++j) {
            arr.opAdd(a.row(j), acc.row(i + j), acc.row(i + j),
                      /*pred=*/true);
            ++cycles;
        }
        for (unsigned k = i + a.bits; k < acc.bits; ++k) {
            arr.opAdd(acc.row(k), zero_row, acc.row(k), /*pred=*/true);
            ++cycles;
        }
    }
    return cycles;
}

uint64_t
macScratch(Array &arr, const VecSlice &a, const VecSlice &b,
           const VecSlice &acc, const VecSlice &scratch, unsigned zero_row)
{
    nc_assert(scratch.bits == a.bits + b.bits, "scratch must fit product");
    nc_assert(acc.bits >= scratch.bits, "accumulator narrower than product");
    uint64_t cycles = multiply(arr, a, b, scratch);
    cycles += add(arr, scratch, acc, acc, zero_row);
    nc_assert(a.bits != b.bits ||
                  cycles == implMacScratchCycles(a.bits, acc.bits),
              "macScratch cycle model drift");
    return cycles;
}

uint64_t
reduceSum(Array &arr, const VecSlice &acc, unsigned w0, unsigned lanes,
          const VecSlice &scratch, const AluConfig &cfg)
{
    nc_assert(isPow2(lanes) && lanes >= 1, "lanes %u not a power of two",
              lanes);
    unsigned steps = log2Ceil(lanes);
    nc_assert(acc.bits >= w0 + steps,
              "reduction headroom: need %u rows, have %u", w0 + steps,
              acc.bits);
    nc_assert(steps == 0 || scratch.bits >= w0 + steps - 1,
              "reduction scratch: need %u rows, have %u",
              w0 + steps - 1, scratch.bits);

    uint64_t cycles = 0;
    unsigned w = w0;
    for (unsigned k = lanes; k > 1; k >>= 1) {
        unsigned shift = k / 2;
        for (unsigned j = 0; j < w; ++j) {
            arr.opLaneShift(acc.row(j), scratch.row(j), shift,
                            cfg.moveCyclesPerRow);
            cycles += cfg.moveCyclesPerRow;
        }
        arr.carrySet(false);
        for (unsigned j = 0; j < w; ++j) {
            arr.opAdd(acc.row(j), scratch.row(j), acc.row(j));
            ++cycles;
        }
        arr.opStoreCarry(acc.row(w));
        ++cycles;
        ++w;
    }
    nc_assert(cycles ==
                  implReduceSumCycles(w0, lanes, cfg.moveCyclesPerRow),
              "reduceSum cycle model drift");
    return cycles;
}

uint64_t
maxInto(Array &arr, const VecSlice &a, const VecSlice &b,
        const VecSlice &scratch)
{
    nc_assert(a.bits == b.bits && scratch.bits >= a.bits,
              "maxInto width mismatch");
    unsigned n = a.bits;
    VecSlice s = scratch.slice(0, n);
    uint64_t cycles = copyInv(arr, b, s);
    arr.carrySet(true);
    for (unsigned j = 0; j < n; ++j) {
        arr.opAdd(a.row(j), s.row(j), s.row(j));
        ++cycles;
    }
    arr.opLoadTagFromCarry(/*invert=*/true); // tag = (a < b)
    ++cycles;
    cycles += copy(arr, b, a, /*pred=*/true);
    nc_assert(cycles == implMaxCycles(n), "maxInto cycle model drift");
    return cycles;
}

uint64_t
minInto(Array &arr, const VecSlice &a, const VecSlice &b,
        const VecSlice &scratch)
{
    nc_assert(a.bits == b.bits && scratch.bits >= a.bits,
              "minInto width mismatch");
    unsigned n = a.bits;
    VecSlice s = scratch.slice(0, n);
    uint64_t cycles = copyInv(arr, b, s);
    arr.carrySet(true);
    for (unsigned j = 0; j < n; ++j) {
        arr.opAdd(a.row(j), s.row(j), s.row(j));
        ++cycles;
    }
    arr.opLoadTagFromCarry(/*invert=*/false); // tag = (a >= b)
    ++cycles;
    cycles += copy(arr, b, a, /*pred=*/true);
    return cycles;
}

uint64_t
reduceMax(Array &arr, const VecSlice &data, unsigned lanes,
          const VecSlice &move, const VecSlice &cmp, bool take_min,
          const AluConfig &cfg)
{
    nc_assert(isPow2(lanes), "lanes %u not a power of two", lanes);
    nc_assert(move.bits >= data.bits && cmp.bits >= data.bits,
              "reduceMax scratch too small");

    uint64_t cycles = 0;
    for (unsigned k = lanes; k > 1; k >>= 1) {
        unsigned shift = k / 2;
        for (unsigned j = 0; j < data.bits; ++j) {
            arr.opLaneShift(data.row(j), move.row(j), shift,
                            cfg.moveCyclesPerRow);
            cycles += cfg.moveCyclesPerRow;
        }
        VecSlice m = move.slice(0, data.bits);
        cycles += take_min ? minInto(arr, data, m, cmp)
                           : maxInto(arr, data, m, cmp);
    }
    nc_assert(cycles == implReduceMaxCycles(data.bits, lanes,
                                            cfg.moveCyclesPerRow),
              "reduceMax cycle model drift");
    return cycles;
}

uint64_t
compareGE(Array &arr, const VecSlice &a, const VecSlice &b,
          const VecSlice &scratch)
{
    nc_assert(a.bits == b.bits && scratch.bits >= b.bits,
              "compareGE width mismatch");
    unsigned n = a.bits;
    VecSlice s = scratch.slice(0, n);
    uint64_t cycles = copyInv(arr, b, s);
    arr.carrySet(true);
    for (unsigned j = 0; j < n; ++j) {
        arr.opAdd(a.row(j), s.row(j), s.row(j));
        ++cycles;
    }
    arr.opLoadTagFromCarry();
    ++cycles;
    nc_assert(cycles == implCompareCycles(n), "compareGE cycle drift");
    return cycles;
}

uint64_t
relu(Array &arr, const VecSlice &val)
{
    arr.opLoadTag(val.row(val.bits - 1)); // tag = sign bit
    uint64_t cycles = 1;
    cycles += zero(arr, val, /*pred=*/true);
    nc_assert(cycles == implReluCycles(val.bits), "relu cycle drift");
    return cycles;
}

uint64_t
shiftUp(Array &arr, const VecSlice &val, unsigned k)
{
    unsigned w = val.bits;
    if (k >= w)
        return zero(arr, val);
    for (unsigned j = w; j-- > k;)
        arr.opCopy(val.row(j - k), val.row(j));
    for (unsigned j = 0; j < k; ++j)
        arr.opZero(val.row(j));
    return implShiftCycles(w);
}

uint64_t
shiftDown(Array &arr, const VecSlice &val, unsigned k)
{
    unsigned w = val.bits;
    if (k >= w)
        return zero(arr, val);
    for (unsigned j = 0; j + k < w; ++j)
        arr.opCopy(val.row(j + k), val.row(j));
    for (unsigned j = w - k; j < w; ++j)
        arr.opZero(val.row(j));
    return implShiftCycles(w);
}

uint64_t
divide(Array &arr, const VecSlice &num, const VecSlice &den,
       const VecSlice &quot, const VecSlice &rwork, const VecSlice &twork,
       const VecSlice &dwork)
{
    unsigned n = num.bits;
    unsigned d = den.bits;
    nc_assert(quot.bits >= n, "quotient too narrow");
    nc_assert(rwork.bits >= n + d, "rwork needs %u rows", n + d);
    nc_assert(twork.bits >= d + 1 && dwork.bits >= d + 1,
              "t/d work bands need %u rows", d + 1);

    // R <= zero-extended dividend.
    uint64_t cycles = copy(arr, num, rwork.slice(0, n));
    cycles += zero(arr, rwork.slice(n, d));

    // One's complement of the divisor, plus the implicit high 1 bit
    // (complement of the divisor's zero extension).
    cycles += copyInv(arr, den, dwork.slice(0, d));
    arr.opOnes(dwork.row(d));
    ++cycles;

    for (unsigned i = n; i-- > 0;) {
        // T <= R[i .. i+d] - den  (add of the complement, carry-in 1).
        arr.carrySet(true);
        for (unsigned j = 0; j <= d; ++j) {
            arr.opAdd(rwork.row(i + j), dwork.row(j), twork.row(j));
            ++cycles;
        }
        arr.opLoadTagFromCarry(); // tag = no-borrow = (window >= den)
        ++cycles;
        arr.opStoreTag(quot.row(i));
        ++cycles;
        for (unsigned j = 0; j <= d; ++j) {
            arr.opCopy(twork.row(j), rwork.row(i + j), /*pred=*/true);
            ++cycles;
        }
    }
    nc_assert(cycles == implDivCycles(n, d), "divide cycle model drift");
    return cycles;
}

} // namespace nc::bitserial
