/**
 * @file
 * Transposed-layout bookkeeping: vector slices and row allocation.
 *
 * In the transposed layout every bit line (lane) holds one element
 * vertically: bit j of the element lives on word line base+j. A VecSlice
 * names such a group of word lines; a RowAllocator hands out
 * non-overlapping slices within one array, mirroring how the mapper
 * carves an array into filter / input / scratchpad / partial-sum /
 * output regions (paper Figure 10).
 */

#ifndef NC_BITSERIAL_LAYOUT_HH
#define NC_BITSERIAL_LAYOUT_HH

#include <cstdint>
#include <limits>
#include <span>

#include "sram/array.hh"

namespace nc::bitserial
{

/** Sentinel meaning "no row". */
constexpr unsigned kNoRow = std::numeric_limits<unsigned>::max();

/**
 * A contiguous band of word lines holding one transposed vector:
 * lane i of the array stores element i, LSB on row base.
 */
struct VecSlice
{
    unsigned base = 0; ///< word line of the LSB
    unsigned bits = 0; ///< element width

    /** Word line of bit @p i. */
    unsigned
    row(unsigned i) const
    {
        return base + i;
    }

    /** Sub-slice of @p n bits starting at bit @p lo. */
    VecSlice
    slice(unsigned lo, unsigned n) const
    {
        return VecSlice{base + lo, n};
    }

    bool
    overlaps(const VecSlice &o) const
    {
        return base < o.base + o.bits && o.base < base + bits;
    }
};

/**
 * Sequential word-line allocator for one array. Also owns the array's
 * constant-zero row, which dual-row activation uses to pad uneven
 * operands (sensing {x, 0} yields BL=0, BLB=~x, XOR=x: an add of x+0).
 */
class RowAllocator
{
  public:
    explicit RowAllocator(unsigned total_rows);

    /** Reserve @p bits contiguous word lines. Fatal if out of space. */
    VecSlice alloc(unsigned bits);

    /**
     * The reserved all-zero row. Allocated (once) from the top of the
     * array so data slices can grow from the bottom. The caller is
     * responsible for never writing it.
     */
    unsigned zeroRow();

    unsigned used() const { return next; }
    unsigned remaining() const { return top - next; }
    unsigned capacity() const { return nrows; }

    /** Release everything (zero-row reservation included). */
    void reset();

  private:
    unsigned nrows;
    unsigned next = 0;          ///< first free row at the bottom
    unsigned top;               ///< first reserved row at the top
    unsigned zrow = kNoRow;
};

/**
 * Store @p values into @p slice of @p arr (debug path: pokes bits, no
 * cycles charged). Lane i takes values[i]; extra lanes are zeroed.
 * The word-parallel path batches all 64-lane blocks through one
 * transpose (or bit-plane pack for elements of <= 8 bits) per call,
 * on arena scratch — no per-call heap traffic.
 */
void storeVector(sram::Array &arr, const VecSlice &slice,
                 std::span<const uint64_t> values);

inline void
storeVector(sram::Array &arr, const VecSlice &slice,
            const std::vector<uint64_t> &values)
{
    storeVector(arr, slice, std::span<const uint64_t>(values));
}

/**
 * Store @p count copies of @p value into @p slice (extra lanes
 * zeroed) — the broadcast form of storeVector. No transpose at all:
 * each bit plane is a constant run of @p count lanes.
 */
void storeSplat(sram::Array &arr, const VecSlice &slice,
                uint64_t value, size_t count);

/** Read the elements held by @p slice (debug path, no cycles). */
std::vector<uint64_t> loadVector(const sram::Array &arr,
                                 const VecSlice &slice);

/** Read lane @p lane of @p slice as an unsigned element. */
uint64_t loadLane(const sram::Array &arr, const VecSlice &slice,
                  unsigned lane);

} // namespace nc::bitserial

#endif // NC_BITSERIAL_LAYOUT_HH
