#include "bitserial/layout.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::bitserial
{

RowAllocator::RowAllocator(unsigned total_rows)
    : nrows(total_rows), top(total_rows)
{
    nc_assert(total_rows > 0, "allocator over empty array");
}

VecSlice
RowAllocator::alloc(unsigned bits)
{
    nc_assert(bits > 0, "zero-width slice");
    if (next + bits > top) {
        nc_fatal("row allocator exhausted: want %u rows, %u free",
                 bits, top - next);
    }
    VecSlice s{next, bits};
    next += bits;
    return s;
}

unsigned
RowAllocator::zeroRow()
{
    if (zrow == kNoRow) {
        nc_assert(top > next, "no room for zero row");
        zrow = --top;
    }
    return zrow;
}

void
RowAllocator::reset()
{
    next = 0;
    top = nrows;
    zrow = kNoRow;
}

void
storeVector(sram::Array &arr, const VecSlice &slice,
            const std::vector<uint64_t> &values)
{
    nc_assert(values.size() <= arr.cols(),
              "%zu values exceed %u lanes", values.size(), arr.cols());
    for (unsigned lane = 0; lane < arr.cols(); ++lane) {
        uint64_t v = lane < values.size() ? values[lane] : 0;
        for (unsigned b = 0; b < slice.bits; ++b)
            arr.poke(slice.row(b), lane, bit(v, b));
    }
}

std::vector<uint64_t>
loadVector(const sram::Array &arr, const VecSlice &slice)
{
    std::vector<uint64_t> out(arr.cols(), 0);
    for (unsigned lane = 0; lane < arr.cols(); ++lane)
        out[lane] = loadLane(arr, slice, lane);
    return out;
}

uint64_t
loadLane(const sram::Array &arr, const VecSlice &slice, unsigned lane)
{
    nc_assert(slice.bits <= 64, "lane wider than 64 bits");
    uint64_t v = 0;
    for (unsigned b = 0; b < slice.bits; ++b)
        v = setBit(v, b, arr.peek(slice.row(b), lane));
    return v;
}

} // namespace nc::bitserial
