#include "bitserial/layout.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::bitserial
{

RowAllocator::RowAllocator(unsigned total_rows)
    : nrows(total_rows), top(total_rows)
{
    nc_assert(total_rows > 0, "allocator over empty array");
}

VecSlice
RowAllocator::alloc(unsigned bits)
{
    nc_assert(bits > 0, "zero-width slice");
    if (next + bits > top) {
        nc_fatal("row allocator exhausted: want %u rows, %u free",
                 bits, top - next);
    }
    VecSlice s{next, bits};
    next += bits;
    return s;
}

unsigned
RowAllocator::zeroRow()
{
    if (zrow == kNoRow) {
        nc_assert(top > next, "no room for zero row");
        zrow = --top;
    }
    return zrow;
}

void
RowAllocator::reset()
{
    next = 0;
    top = nrows;
    zrow = kNoRow;
}

void
storeVector(sram::Array &arr, const VecSlice &slice,
            const std::vector<uint64_t> &values)
{
    nc_assert(values.size() <= arr.cols(),
              "%zu values exceed %u lanes", values.size(), arr.cols());
    nc_assert(slice.bits <= 64, "slice wider than 64 bits");

    if (arr.referenceMode()) {
        // Bit-by-bit scalar path (differential oracle / bench baseline).
        for (unsigned lane = 0; lane < arr.cols(); ++lane) {
            uint64_t v = lane < values.size() ? values[lane] : 0;
            for (unsigned b = 0; b < slice.bits; ++b)
                arr.poke(slice.row(b), lane, bit(v, b));
        }
        return;
    }

    // Word-parallel path: each 64-lane block is one 64x64 bit-matrix
    // transpose — block word buf[i] holds lane i's value going in and
    // bit-plane b's word coming out, so every array word is touched
    // exactly once.
    const size_t nblocks = (arr.cols() + 63) / 64;
    uint64_t buf[64];
    for (size_t blk = 0; blk < nblocks; ++blk) {
        for (unsigned i = 0; i < 64; ++i) {
            size_t lane = blk * 64 + i;
            buf[i] = lane < values.size() ? values[lane] : 0;
        }
        transpose64(buf);
        for (unsigned b = 0; b < slice.bits; ++b)
            arr.rowMut(slice.row(b)).setWord(blk, buf[b]);
    }
}

std::vector<uint64_t>
loadVector(const sram::Array &arr, const VecSlice &slice)
{
    std::vector<uint64_t> out(arr.cols(), 0);
    nc_assert(slice.bits <= 64, "slice wider than 64 bits");

    if (arr.referenceMode()) {
        for (unsigned lane = 0; lane < arr.cols(); ++lane)
            out[lane] = loadLane(arr, slice, lane);
        return out;
    }

    const size_t nblocks = (arr.cols() + 63) / 64;
    uint64_t buf[64];
    for (size_t blk = 0; blk < nblocks; ++blk) {
        for (unsigned b = 0; b < 64; ++b) {
            buf[b] = b < slice.bits
                         ? arr.rowRef(slice.row(b)).word(blk)
                         : 0;
        }
        transpose64(buf);
        size_t n = std::min<size_t>(64, arr.cols() - blk * 64);
        for (size_t i = 0; i < n; ++i)
            out[blk * 64 + i] = buf[i];
    }
    return out;
}

uint64_t
loadLane(const sram::Array &arr, const VecSlice &slice, unsigned lane)
{
    nc_assert(slice.bits <= 64, "lane wider than 64 bits");
    // Word-level gather: one shift/mask per bit plane instead of a
    // peek() call chain per bit.
    const size_t wi = lane / 64;
    const unsigned sh = lane % 64;
    uint64_t v = 0;
    for (unsigned b = 0; b < slice.bits; ++b)
        v |= ((arr.rowRef(slice.row(b)).word(wi) >> sh) & 1u) << b;
    return v;
}

} // namespace nc::bitserial
