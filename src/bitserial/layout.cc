#include "bitserial/layout.hh"

#include <algorithm>
#include <cstring>

#include "common/arena.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "sram/kernels.hh"

namespace nc::bitserial
{

RowAllocator::RowAllocator(unsigned total_rows)
    : nrows(total_rows), top(total_rows)
{
    nc_assert(total_rows > 0, "allocator over empty array");
}

VecSlice
RowAllocator::alloc(unsigned bits)
{
    nc_assert(bits > 0, "zero-width slice");
    if (next + bits > top) {
        nc_fatal("row allocator exhausted: want %u rows, %u free",
                 bits, top - next);
    }
    VecSlice s{next, bits};
    next += bits;
    return s;
}

unsigned
RowAllocator::zeroRow()
{
    if (zrow == kNoRow) {
        nc_assert(top > next, "no room for zero row");
        zrow = --top;
    }
    return zrow;
}

void
RowAllocator::reset()
{
    next = 0;
    top = nrows;
    zrow = kNoRow;
}

void
storeVector(sram::Array &arr, const VecSlice &slice,
            std::span<const uint64_t> values)
{
    nc_assert(values.size() <= arr.cols(),
              "%zu values exceed %u lanes", values.size(), arr.cols());
    nc_assert(slice.bits <= 64, "slice wider than 64 bits");

    if (arr.referenceMode()) {
        // Bit-by-bit scalar path (differential oracle / bench baseline).
        for (unsigned lane = 0; lane < arr.cols(); ++lane) {
            uint64_t v = lane < values.size() ? values[lane] : 0;
            for (unsigned b = 0; b < slice.bits; ++b)
                arr.poke(slice.row(b), lane, bit(v, b));
        }
        return;
    }

    const size_t nblocks = (arr.cols() + 63) / 64;
    const auto &kt = sram::kern::active();
    common::ArenaScope scratch;

    // Narrow elements (the 8-bit-quantized common case): skip the
    // transpose entirely and peel bit planes straight out of the
    // values, one word of 64 lanes per pack step.
    if (slice.bits <= 8) {
        std::span<uint64_t> planes =
            scratch.alloc(size_t(slice.bits) * nblocks);
        kt.packPlanes(values.data(), values.size(), slice.bits,
                      planes.data(), nblocks);
        for (unsigned b = 0; b < slice.bits; ++b) {
            sram::BitRow &row = arr.rowMut(slice.row(b));
            for (size_t blk = 0; blk < nblocks; ++blk)
                row.setWord(blk, planes[size_t(b) * nblocks + blk]);
        }
        return;
    }

    // Wide elements: one batched 64x64 bit-matrix transpose over all
    // blocks — word [blk*64 + i] holds lane i's value going in and
    // bit-plane i's word coming out — then row-major write-back, so
    // every array word (and every row's fault hook) is touched once.
    std::span<uint64_t> blocks = scratch.alloc(nblocks * 64);
    if (!values.empty())
        std::memcpy(blocks.data(), values.data(),
                    values.size() * sizeof(uint64_t));
    std::memset(blocks.data() + values.size(), 0,
                (nblocks * 64 - values.size()) * sizeof(uint64_t));
    kt.transposeBlocks(blocks.data(), nblocks);
    for (unsigned b = 0; b < slice.bits; ++b) {
        sram::BitRow &row = arr.rowMut(slice.row(b));
        for (size_t blk = 0; blk < nblocks; ++blk)
            row.setWord(blk, blocks[blk * 64 + b]);
    }
}

void
storeSplat(sram::Array &arr, const VecSlice &slice, uint64_t value,
           size_t count)
{
    nc_assert(count <= arr.cols(), "%zu values exceed %u lanes",
              count, arr.cols());
    nc_assert(slice.bits <= 64, "slice wider than 64 bits");

    if (arr.referenceMode()) {
        for (unsigned lane = 0; lane < arr.cols(); ++lane) {
            uint64_t v = lane < count ? value : 0;
            for (unsigned b = 0; b < slice.bits; ++b)
                arr.poke(slice.row(b), lane, bit(v, b));
        }
        return;
    }

    // A broadcast needs no transpose: bit plane b is a run of
    // `count` ones (or zeros) followed by zeros.
    const size_t nblocks = (arr.cols() + 63) / 64;
    for (unsigned b = 0; b < slice.bits; ++b) {
        sram::BitRow &row = arr.rowMut(slice.row(b));
        const bool set = bit(value, b);
        for (size_t blk = 0; blk < nblocks; ++blk) {
            uint64_t w = 0;
            if (set && count > blk * 64) {
                size_t n = count - blk * 64;
                w = n >= 64 ? ~uint64_t(0) : lowMask(unsigned(n));
            }
            row.setWord(blk, w);
        }
    }
}

std::vector<uint64_t>
loadVector(const sram::Array &arr, const VecSlice &slice)
{
    std::vector<uint64_t> out(arr.cols(), 0);
    nc_assert(slice.bits <= 64, "slice wider than 64 bits");

    if (arr.referenceMode()) {
        for (unsigned lane = 0; lane < arr.cols(); ++lane)
            out[lane] = loadLane(arr, slice, lane);
        return out;
    }

    // Row-major gather (one fault-hook touch per row), one batched
    // transpose over all blocks, then the lanes fall out contiguous.
    const size_t nblocks = (arr.cols() + 63) / 64;
    common::ArenaScope scratch;
    std::span<uint64_t> blocks = scratch.alloc(nblocks * 64);
    std::memset(blocks.data(), 0, nblocks * 64 * sizeof(uint64_t));
    for (unsigned b = 0; b < slice.bits && b < 64; ++b) {
        const sram::BitRow &row = arr.rowRef(slice.row(b));
        for (size_t blk = 0; blk < nblocks; ++blk)
            blocks[blk * 64 + b] = row.word(blk);
    }
    sram::kern::active().transposeBlocks(blocks.data(), nblocks);
    std::memcpy(out.data(), blocks.data(),
                arr.cols() * sizeof(uint64_t));
    return out;
}

uint64_t
loadLane(const sram::Array &arr, const VecSlice &slice, unsigned lane)
{
    nc_assert(slice.bits <= 64, "lane wider than 64 bits");
    // Word-level gather: one shift/mask per bit plane instead of a
    // peek() call chain per bit.
    const size_t wi = lane / 64;
    const unsigned sh = lane % 64;
    uint64_t v = 0;
    for (unsigned b = 0; b < slice.bits; ++b)
        v |= ((arr.rowRef(slice.row(b)).word(wi) >> sh) & 1u) << b;
    return v;
}

} // namespace nc::bitserial
