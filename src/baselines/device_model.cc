#include "baselines/device_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nc::baselines
{

double
DeviceModel::opLatencyPs(const dnn::Op &op) const
{
    double flops;
    double bytes;
    if (op.isConv()) {
        flops = static_cast<double>(op.conv.flops());
        bytes = static_cast<double>(op.conv.inputBytes() +
                                    op.conv.filterBytes() +
                                    op.conv.outputBytes()) *
                4.0; // FP32 baselines (the unquantized model is faster
                     // on the CPU, per the paper's methodology)
    } else {
        flops = static_cast<double>(op.pool.windowCount()) *
                op.pool.r * op.pool.s;
        bytes = static_cast<double>(op.pool.inputBytes() +
                                    op.pool.outputBytes()) *
                4.0;
    }
    double compute_ps =
        flops / (prm.peakFlops * prm.computeEfficiency) * 1e12;
    double mem_ps =
        bytes / (prm.memBwBytesPerSec * prm.memEfficiency) * 1e12;
    return std::max(compute_ps, mem_ps) + prm.perOpOverheadPs;
}

double
DeviceModel::stageLatencyPs(const dnn::Stage &stage) const
{
    double total = 0;
    for (const auto &b : stage.branches)
        for (const auto &op : b.ops)
            total += opLatencyPs(op);
    return total;
}

double
DeviceModel::networkLatencyPs(const dnn::Network &net) const
{
    double total = 0;
    for (const auto &st : net.stages)
        total += stageLatencyPs(st);
    return total;
}

void
DeviceModel::calibrate(const dnn::Network &net, double target_ms)
{
    double raw_ms = networkLatencyPs(net) * picoToMs;
    nc_assert(raw_ms > 0, "cannot calibrate against an empty network");
    scale = target_ms / raw_ms;
}

std::vector<double>
DeviceModel::stageLatenciesMs(const dnn::Network &net) const
{
    std::vector<double> out;
    out.reserve(net.stages.size());
    for (const auto &st : net.stages)
        out.push_back(stageLatencyPs(st) * picoToMs * scale);
    return out;
}

double
DeviceModel::totalLatencyMs(const dnn::Network &net) const
{
    return networkLatencyPs(net) * picoToMs * scale;
}

double
DeviceModel::energyJ(const dnn::Network &net) const
{
    return prm.measuredPowerW * totalLatencyMs(net) * 1e-3;
}

DeviceModel
DeviceModel::xeonE5_2697v3(const dnn::Network &inception)
{
    Params p;
    p.name = "cpu-xeon-e5-2697v3";
    // 14 cores x 2.6 GHz x 32 FP32 flops/cycle (2x 8-wide FMA).
    p.peakFlops = 14 * 2.6e9 * 32.0;
    p.memBwBytesPerSec = 68e9; // 4-channel DDR4-2133
    // TensorFlow CPU inference sustains a small fraction of peak on
    // conv kernels; memory path is comparatively efficient.
    p.computeEfficiency = 0.06;
    p.memEfficiency = 0.5;
    p.perOpOverheadPs = 50e6; // 50 us framework dispatch per op
    p.measuredPowerW = 105.56; // RAPL (Table III)

    DeviceModel m(p);
    // Published Inception v3 total: 86 ms (paper §V / Figure 15).
    m.calibrate(inception, 86.0);
    return m;
}

DeviceModel
DeviceModel::titanXp(const dnn::Network &inception)
{
    Params p;
    p.name = "gpu-titan-xp";
    // 3840 CUDA cores x ~1.58 GHz boost x 2 flops (FMA).
    p.peakFlops = 3840 * 1.58e9 * 2.0;
    p.memBwBytesPerSec = 547.6e9; // GDDR5X
    p.computeEfficiency = 0.25;
    p.memEfficiency = 0.6;
    p.perOpOverheadPs = 80e6; // kernel launch + cuDNN dispatch per op
    p.measuredPowerW = 112.87; // nvidia-smi (Table III)

    DeviceModel m(p);
    // Figure 15: Neural Cache is 18.3x over CPU and 7.7x over GPU, so
    // the GPU batch-1 latency is 86 / 18.3 * 7.7 = 36.2 ms.
    m.calibrate(inception, 86.0 / 18.3 * 7.7);
    return m;
}

BatchCurve
BatchCurve::fit(double batch1_lat_ms, double peak_inf_per_sec)
{
    nc_assert(batch1_lat_ms > 0 && peak_inf_per_sec > 0,
              "degenerate batch curve");
    BatchCurve c;
    c.peakInfPerSec = peak_inf_per_sec;
    // thr(1) = 1000 / batch1_lat_ms = peak / (1 + n50).
    double thr1 = 1000.0 / batch1_lat_ms;
    nc_assert(thr1 < peak_inf_per_sec,
              "batch-1 throughput already exceeds the peak");
    c.n50 = peak_inf_per_sec / thr1 - 1.0;
    return c;
}

} // namespace nc::baselines
