/**
 * @file
 * Baseline device models: Xeon E5-2697 v3 (CPU) and Titan Xp (GPU).
 *
 * The paper measures TensorFlow inference on real hardware (Table II)
 * and reports per-layer latency (Figure 13), totals (Figure 15),
 * batched throughput (Figure 16), and RAPL / nvidia-smi power
 * (Table III). We cannot re-run that rig, so each device is an
 * analytic roofline: per layer,
 *
 *   t(op) = max(flops / (peak * efficiency), bytes / (bw * eff_bw))
 *           + per-op framework overhead
 *
 * and the device is then *calibrated* — a single scale factor makes
 * the Inception v3 total match the published measurement (86 ms CPU;
 * GPU derived from the published 7.7x-over-NC ratio). The per-layer
 * *shape* therefore comes from first principles (arithmetic intensity
 * dominates, mixed layers are the bulk), while absolute totals match
 * the paper — the substitution recorded in DESIGN.md §4.2.
 *
 * Batched throughput follows a saturating-batch model fitted to the
 * two published endpoints (batch-1 latency, peak throughput).
 */

#ifndef NC_BASELINES_DEVICE_MODEL_HH
#define NC_BASELINES_DEVICE_MODEL_HH

#include <string>
#include <vector>

#include "common/units.hh"
#include "dnn/layers.hh"

namespace nc::baselines
{

/** Analytic roofline model of one measured device. */
class DeviceModel
{
  public:
    struct Params
    {
        std::string name;
        double peakFlops = 0;      ///< FP32 peak, flops/s
        double memBwBytesPerSec = 0;
        double computeEfficiency = 1.0; ///< sustained fraction of peak
        double memEfficiency = 1.0;
        double perOpOverheadPs = 0; ///< kernel-launch/framework cost
        double measuredPowerW = 0;  ///< published average power
    };

    explicit DeviceModel(Params p) : prm(std::move(p)) {}

    const Params &params() const { return prm; }

    /** Uncalibrated roofline latency of one op / stage / network. */
    double opLatencyPs(const dnn::Op &op) const;
    double stageLatencyPs(const dnn::Stage &stage) const;
    double networkLatencyPs(const dnn::Network &net) const;

    /**
     * Pin the model so networkLatencyPs(net) * scale == target. Call
     * once with the measured workload; per-layer shape is unchanged.
     */
    void calibrate(const dnn::Network &net, double target_ms);
    double calibrationScale() const { return scale; }

    /** Calibrated per-stage latencies, ms. */
    std::vector<double> stageLatenciesMs(const dnn::Network &net) const;
    /** Calibrated total latency, ms. */
    double totalLatencyMs(const dnn::Network &net) const;

    /** Energy at the published average power, joules. */
    double energyJ(const dnn::Network &net) const;

    /** @name Published-machine presets (Table II), pre-calibrated. */
    /// @{
    static DeviceModel xeonE5_2697v3(const dnn::Network &inception);
    static DeviceModel titanXp(const dnn::Network &inception);
    /// @}

  private:
    Params prm;
    double scale = 1.0;
};

/**
 * Saturating batched-throughput curve: thr(n) = peak * n / (n + n50).
 * Fitted from the batch-1 latency and the published peak throughput.
 */
struct BatchCurve
{
    double peakInfPerSec = 0;
    double n50 = 1.0;

    double
    throughput(double n) const
    {
        return peakInfPerSec * n / (n + n50);
    }

    static BatchCurve fit(double batch1_lat_ms, double peak_inf_per_sec);
};

} // namespace nc::baselines

#endif // NC_BASELINES_DEVICE_MODEL_HH
