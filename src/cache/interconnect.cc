#include "cache/interconnect.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::cache
{

uint64_t
IntraSliceBus::quadrantCycles(uint64_t bits) const
{
    return divCeil(bits, quadrantBits);
}

uint64_t
IntraSliceBus::fillWayCycles(unsigned rows, unsigned row_bits,
                             bool replicated_in_bank) const
{
    // One bank: four arrays = two sense-amp pairs. Each pair drinks
    // arrayPortBits per cycle, the two pairs in parallel off the 64-bit
    // quadrant. Distinct data: 2 pairs x 2 arrays x rows x row_bits
    // total bits through a 64-bit pipe at 64 b/cycle -> but each pair
    // can only absorb 32 b/cycle, so the pair is the bottleneck:
    // (2 arrays x rows x row_bits) / 32 cycles.
    uint64_t bits_per_pair = uint64_t(2) * rows * row_bits;
    uint64_t cycles = divCeil(bits_per_pair, arrayPortBits);
    if (replicated_in_bank && bankLatch)
        cycles = divCeil(cycles, 2);
    return cycles;
}

double
IntraSliceBus::fillWayPs(unsigned rows, unsigned row_bits,
                         bool replicated_in_bank) const
{
    return clock.cyclesToPs(static_cast<double>(
        fillWayCycles(rows, row_bits, replicated_in_bank)));
}

double
IntraSliceBus::streamPs(uint64_t bytes) const
{
    return clock.cyclesToPs(
        static_cast<double>(divCeil(bytes * 8, widthBits)));
}

double
Ring::broadcastPs(uint64_t bytes) const
{
    uint64_t flits = divCeil(bytes * 8, linkBits);
    double serialization = clock.cyclesToPs(static_cast<double>(flits));
    double tail = clock.cyclesToPs(
        static_cast<double>(hopCycles) * (stops / 2.0));
    return serialization + tail;
}

double
Ring::transferPs(uint64_t bytes, unsigned hops) const
{
    nc_assert(hops <= stops, "hops %u exceed ring stops %u", hops, stops);
    uint64_t flits = divCeil(bytes * 8, linkBits);
    return clock.cyclesToPs(static_cast<double>(flits) +
                            static_cast<double>(hopCycles) * hops);
}

double
Ring::perSliceBandwidthBytesPerSec() const
{
    return clock.freqHz * (linkBits / 8.0);
}

} // namespace nc::cache
