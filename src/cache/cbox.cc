#include "cache/cbox.hh"

#include "sram/tmu.hh"

namespace nc::cache
{

// Out of line so this translation unit always carries a symbol (empty
// TUs trip "ranlib: file has no symbols" on macOS and other strict
// toolchains).
double
CBox::transposePs(uint64_t bytes) const
{
    sram::TransposeUnit proto(tmuRows, tmuCols);
    uint64_t per_tmu = (bytes + tmus - 1) / tmus;
    uint64_t cycles = proto.streamCycles(per_tmu, 8);
    return clock.cyclesToPs(static_cast<double>(cycles));
}

} // namespace nc::cache
