#include "cache/cbox.hh"

// CBox is header-only today; the translation unit compile-checks the
// header and anchors future non-inline additions.

namespace nc::cache
{
} // namespace nc::cache
