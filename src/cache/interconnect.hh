/**
 * @file
 * On-chip interconnect models (paper §IV-C).
 *
 * Two levels:
 *
 *  - IntraSliceBus: the 256-bit data bus inside one slice, organized as
 *    four 64-bit quadrant buses; each quadrant feeds one 32 KB bank per
 *    way, and the two 8 KB arrays of a sub-array share sense amps and
 *    receive 32 bits per bus cycle. A 64-bit latch per bank lets data
 *    that is replicated across a bank's arrays be sent once and played
 *    back twice, halving transfer time. The bus broadcasts naturally,
 *    so filters/inputs replicated across ways cost one transfer.
 *
 *  - Ring: the bidirectional inter-slice ring. Broadcast is a single
 *    traversal; point-to-point pays hop latency plus serialization.
 *
 * All methods return picoseconds so the cost model can mix them freely
 * with array cycle counts.
 */

#ifndef NC_CACHE_INTERCONNECT_HH
#define NC_CACHE_INTERCONNECT_HH

#include <cstdint>

#include "common/units.hh"

namespace nc::cache
{

/** The 256-bit intra-slice data bus (4 x 64-bit quadrants). */
struct IntraSliceBus
{
    unsigned widthBits = 256;
    unsigned quadrantBits = 64;
    /** Bits an array pair (shared sense amps) absorbs per bus cycle. */
    unsigned arrayPortBits = 32;
    /** Bus clock (compute-mode clock of the slice). */
    Clock clock{2.5_GHz};
    /** 64-bit replay latch per bank (halves replicated fills). */
    bool bankLatch = true;

    /** Cycles for one quadrant to deliver @p bits to its bank. */
    uint64_t quadrantCycles(uint64_t bits) const;

    /**
     * Cycles to fill @p rows word lines of @p row_bits bits in every
     * array of one way, with distinct data per array. Banks stream in
     * parallel (one per quadrant); inside a bank the four arrays are
     * two sense-amp pairs, each absorbing arrayPortBits per cycle.
     * @p replicated_in_bank uses the bank latch to halve the stream
     * when both pairs want the same data.
     */
    uint64_t fillWayCycles(unsigned rows, unsigned row_bits,
                           bool replicated_in_bank = false) const;

    /** Picosecond version of fillWayCycles(). */
    double fillWayPs(unsigned rows, unsigned row_bits,
                     bool replicated_in_bank = false) const;

    /** Time to stream @p bytes over the full 256-bit bus once. */
    double streamPs(uint64_t bytes) const;
};

/** The bidirectional inter-slice ring. */
struct Ring
{
    /** Payload width of one ring message, bits (Intel ring: 32 B). */
    unsigned linkBits = 256;
    Clock clock{2.5_GHz};
    /** Per-hop latency, cycles. */
    unsigned hopCycles = 1;
    unsigned stops = 14;

    /**
     * Time to broadcast @p bytes from one stop to all stops: the
     * message circulates half the ring in each direction while every
     * stop snoops it, so serialization dominates and the propagation
     * tail is stops/2 hops.
     */
    double broadcastPs(uint64_t bytes) const;

    /** Point-to-point transfer across @p hops stops. */
    double transferPs(uint64_t bytes, unsigned hops) const;

    /** Aggregate bandwidth available for slice-local, parallel moves. */
    double perSliceBandwidthBytesPerSec() const;
};

} // namespace nc::cache

#endif // NC_CACHE_INTERCONNECT_HH
