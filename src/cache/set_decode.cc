#include "cache/set_decode.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::cache
{

SetDecoder::SetDecoder(Geometry geom_) : geom(std::move(geom_)) {}

unsigned
SetDecoder::setsPerSlice() const
{
    return static_cast<unsigned>(geom.sliceBytes() /
                                 (geom.waysPerSlice * lineBytes()));
}

unsigned
SetDecoder::sliceOf(uint64_t paddr) const
{
    // Documented stand-in for Intel's undisclosed hash: XOR-fold the
    // line address so that consecutive lines spread across slices and
    // upper bits participate (the real hash has both properties).
    uint64_t la = paddr / lineBytes();
    uint64_t h = la ^ (la >> 7) ^ (la >> 13) ^ (la >> 21);
    return static_cast<unsigned>(h % geom.slices);
}

unsigned
SetDecoder::setOf(uint64_t paddr) const
{
    return static_cast<unsigned>((paddr / lineBytes()) %
                                 setsPerSlice());
}

unsigned
SetDecoder::offsetOf(uint64_t paddr) const
{
    return static_cast<unsigned>(paddr % lineBytes());
}

uint64_t
SetDecoder::composeAddress(unsigned slice, unsigned set) const
{
    nc_assert(slice < geom.slices, "slice %u out of %u", slice,
              geom.slices);
    nc_assert(set < setsPerSlice(), "set %u out of %u", set,
              setsPerSlice());
    unsigned sets = setsPerSlice();
    // Walk the cosets above the set bits until the hash lands on the
    // requested slice; the fold mixes the coset index mod `slices`,
    // so a match appears within a few multiples of the slice count.
    for (uint64_t u = 0; u < 64 * uint64_t(geom.slices); ++u) {
        uint64_t la = u * sets + set;
        uint64_t paddr = la * lineBytes();
        if (sliceOf(paddr) == slice)
            return paddr;
    }
    nc_panic("no address found for slice %u set %u", slice, set);
}

} // namespace nc::cache
