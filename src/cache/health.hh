/**
 * @file
 * Array health tracking and BIST: the detection half of the fault
 * subsystem.
 *
 * A HealthMap records, per physical array of one ComputeCache, whether
 * the array is trusted to compute (healthy) or has been retired, and
 * why. Two detectors populate it:
 *
 *  - bistScan(): a compile-time march test (write 0101…/1010…
 *    checkerboards through every word line, read back, compare —
 *    then the inverse pattern, so every cell is exercised at both
 *    values). Stuck-at cells and dead arrays fail the readback and
 *    retire before placement, which then simply allocates around
 *    them (the ComputeCache logical→physical remap compacts the
 *    survivors).
 *
 *  - the runtime canary check (core/compiled_model.cc): every placed
 *    array reserves a constant-zero guard word line at the top (the
 *    bitserial::RowAllocator zero row, which padded adds read and
 *    nothing may ever write). After each batch pass the run loop
 *    reads the guard row of every in-use array; a non-zero read is a
 *    mid-run fault, and the model retires the array and repairs.
 *
 * The march runs on throwaway Arrays bound to the same per-physical
 * fault records the real arrays would get, so scanning neither
 * materializes nor perturbs cache state, and the fault registry's
 * deterministic touch counters still advance in a reproducible order.
 * Arrays with no fault record are ideal by construction (the
 * simulator cannot manufacture a defect outside the registry), so
 * the scan skips them — a pure shortcut with identical verdicts.
 */

#ifndef NC_CACHE_HEALTH_HH
#define NC_CACHE_HEALTH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/geometry.hh"
#include "sram/array.hh"
#include "sram/faults.hh"

namespace nc::cache
{

/** Per-physical-array health of one ComputeCache. */
class HealthMap
{
  public:
    explicit HealthMap(uint64_t narrays);

    uint64_t arrays() const { return n; }
    bool
    healthy(uint64_t index) const
    {
        return index < n && state[index] == 0;
    }
    uint64_t retiredCount() const { return nRetired; }

    /** Retire @p index with a diagnostic reason. Idempotent. */
    void retire(uint64_t index, std::string reason);

    /** The retirement reason (null while healthy). */
    const std::string *reason(uint64_t index) const;

    /** Retired indices, ascending. */
    std::vector<uint64_t> retired() const;

    /**
     * Human-readable roll call of every retired array ("none" when
     * clean) — hard-error messages name the dead, not just count it.
     */
    std::string summary() const;

  private:
    uint64_t n;
    uint64_t nRetired = 0;
    std::vector<uint8_t> state; ///< 0 healthy, 1 retired
    std::map<uint64_t, std::string> reasons;
};

/**
 * March @p arr: write/readback-verify checkerboard and inverse
 * checkerboard over every word line. Returns true when every cell
 * held both values. Leaves the array's cells holding the last
 * pattern — run it on a scratch Array, not live state.
 */
bool bistMarch(sram::Array &arr);

/**
 * BIST the whole cache: march every physical array whose record in
 * @p reg carries a static defect (dead or stuck-at; records are
 * decided at registry construction, and record-less arrays are ideal
 * by construction) and retire the failures into @p health. Returns
 * the number of arrays this scan retired. Transient-only records are
 * skipped — soft errors are a runtime phenomenon the canary check
 * owns, and a march under a high flip rate would spuriously retire
 * healthy silicon. @p reg may be null (no faults configured): the
 * scan is then a no-op.
 */
uint64_t bistScan(const Geometry &geom, sram::faults::Registry *reg,
                  HealthMap &health);

} // namespace nc::cache

#endif // NC_CACHE_HEALTH_HH
