/**
 * @file
 * Physical-address decoding and transposed weight placement (§IV-C,
 * §V).
 *
 * The paper's data-loading micro-benchmark depends on knowing which
 * LLC slice and set a physical address maps to ("The set decoding was
 * reverse engineered based on Intel's last level cache
 * architecture"), and assumes "filter weights are preprocessed to a
 * transpose format and laid out in DRAM such that they map to correct
 * bitlines and word-lines."
 *
 * Intel's slice hash is undisclosed; SetDecoder substitutes a
 * documented XOR-fold over the line-address bits that preserves the
 * properties the model needs (deterministic, uniform across slices
 * for streams, invertible per (slice, set) pair via search). On top
 * of it, WeightLayout assigns every byte of a convolution's filter
 * bank a home (array coordinate, word line, bit line) consistent with
 * the mapper's Figure-10 layout, which is exactly the order the
 * preprocessed DRAM image must follow.
 */

#ifndef NC_CACHE_SET_DECODE_HH
#define NC_CACHE_SET_DECODE_HH

#include <cstdint>
#include <vector>

#include "cache/geometry.hh"

namespace nc::cache
{

/** Slice/set/line decomposition of physical addresses. */
class SetDecoder
{
  public:
    explicit SetDecoder(Geometry geom = Geometry::xeonE5_35MB());

    unsigned lineBytes() const { return 64; }
    /** Cache sets per slice (sliceBytes / (ways x line)). */
    unsigned setsPerSlice() const;

    /** Slice a physical address hashes to. */
    unsigned sliceOf(uint64_t paddr) const;
    /** Set index within the slice. */
    unsigned setOf(uint64_t paddr) const;
    /** Offset within the line. */
    unsigned offsetOf(uint64_t paddr) const;

    /**
     * Find a physical address that decodes to (slice, set) — what the
     * paper's micro-benchmark does to touch exactly the sets of one
     * way. Searches the hash cosets; always succeeds.
     */
    uint64_t composeAddress(unsigned slice, unsigned set) const;

  private:
    Geometry geom;
};

} // namespace nc::cache

#endif // NC_CACHE_SET_DECODE_HH
