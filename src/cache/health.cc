#include "cache/health.hh"

#include "common/logging.hh"

namespace nc::cache
{

HealthMap::HealthMap(uint64_t narrays) : n(narrays), state(narrays, 0)
{
    nc_assert(narrays > 0, "health map over zero arrays");
}

void
HealthMap::retire(uint64_t index, std::string reason)
{
    nc_assert(index < n, "retiring array %llu of a %llu-array cache",
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(n));
    if (state[index])
        return; // already retired; keep the first reason
    state[index] = 1;
    ++nRetired;
    reasons.emplace(index, std::move(reason));
}

const std::string *
HealthMap::reason(uint64_t index) const
{
    auto it = reasons.find(index);
    return it == reasons.end() ? nullptr : &it->second;
}

std::vector<uint64_t>
HealthMap::retired() const
{
    std::vector<uint64_t> out;
    out.reserve(nRetired);
    for (const auto &[idx, why] : reasons)
        out.push_back(idx);
    return out;
}

std::string
HealthMap::summary() const
{
    if (reasons.empty())
        return "none";
    std::string s;
    for (const auto &[idx, why] : reasons) {
        if (!s.empty())
            s += ", ";
        s += "array " + std::to_string(idx) + " (" + why + ")";
    }
    return s;
}

bool
bistMarch(sram::Array &arr)
{
    const unsigned rows = arr.rows();
    const unsigned cols = arr.cols();
    // Checkerboard then inverse: every cell is written and verified
    // at both 0 and 1, so any stuck-at fails one of the two passes
    // and a dead array's scrambled senses fail both. Adjacent lanes
    // carry opposite values, which also trips lane-coupling defects.
    for (int inv = 0; inv < 2; ++inv) {
        for (unsigned r = 0; r < rows; ++r) {
            sram::BitRow row(cols);
            for (size_t w = 0; w < row.wordCount(); ++w)
                row.setWord(w, (r + inv) % 2 ? 0xaaaaaaaaaaaaaaaaull
                                             : 0x5555555555555555ull);
            arr.writeRow(r, row);
        }
        for (unsigned r = 0; r < rows; ++r) {
            sram::BitRow expect(cols);
            for (size_t w = 0; w < expect.wordCount(); ++w)
                expect.setWord(w, (r + inv) % 2
                                      ? 0xaaaaaaaaaaaaaaaaull
                                      : 0x5555555555555555ull);
            sram::BitRow got = arr.readRow(r);
            for (size_t w = 0; w < expect.wordCount(); ++w)
                if (got.word(w) != expect.word(w))
                    return false;
        }
    }
    return true;
}

uint64_t
bistScan(const Geometry &geom, sram::faults::Registry *reg,
         HealthMap &health)
{
    if (!reg)
        return 0;
    uint64_t retired = 0;
    for (uint64_t i = 0; i < geom.totalArrays(); ++i) {
        sram::faults::ArrayFaults *rec = reg->recordFor(i);
        if (!rec || !health.healthy(i))
            continue; // ideal by construction / already retired
        if (!rec->killed() && rec->stuck().empty())
            continue; // transient-only record: soft errors are a
                      // runtime phenomenon, not a manufacturing
                      // defect — marching such an array at a high
                      // rate would retire healthy silicon the canary
                      // is designed to protect at run time
        // A scratch array wearing the real array's fault record: the
        // march sees exactly the defects the live array would
        // develop, without materializing or dirtying cache state.
        sram::Array probe(geom.arrayRows, geom.arrayCols);
        probe.setFaults(rec);
        if (bistMarch(probe))
            continue;
        health.retire(i, rec->killed() ? "bist: dead array"
                                       : "bist: failed march test");
        ++retired;
    }
    return retired;
}

} // namespace nc::cache
