/**
 * @file
 * LLC geometry (paper Figure 3 / §II-C).
 *
 * The modeled hierarchy, following the Xeon E5-2697 v3 LLC:
 *
 *   processor
 *     `- 14 slices of 2.5 MB on a bidirectional ring
 *          `- 20 ways per slice
 *               `- 4 banks (32 KB) per way, one per bus quadrant
 *                    `- 2 sub-arrays (16 KB) per bank
 *                         `- 2 SRAM arrays (8 KB, 256x256) per sub-array
 *
 * 20 ways x 4 banks x 4 arrays = 320 arrays per slice; 14 slices = 4480
 * arrays = 1,146,880 bit lines = the paper's ALU-slot headline. Way 20
 * stays a normal cache for the CPU and way 19 buffers inputs/outputs, so
 * 18 ways (288 arrays/slice) compute.
 */

#ifndef NC_CACHE_GEOMETRY_HH
#define NC_CACHE_GEOMETRY_HH

#include <cstdint>
#include <string>

namespace nc::cache
{

/** Static description of one LLC configuration. */
struct Geometry
{
    std::string name = "xeon-e5-2697v3-35mb";

    unsigned slices = 14;
    unsigned waysPerSlice = 20;
    unsigned banksPerWay = 4;
    unsigned subarraysPerBank = 2;
    unsigned arraysPerSubarray = 2;
    unsigned arrayRows = 256;
    unsigned arrayCols = 256;

    /** Ways kept out of compute: one for the CPU, one for I/O. */
    unsigned reservedWays = 2;

    /** @name Derived counts */
    /// @{
    unsigned
    arraysPerBank() const
    {
        return subarraysPerBank * arraysPerSubarray;
    }

    unsigned
    arraysPerWay() const
    {
        return banksPerWay * arraysPerBank();
    }

    unsigned
    arraysPerSlice() const
    {
        return waysPerSlice * arraysPerWay();
    }

    unsigned
    totalArrays() const
    {
        return slices * arraysPerSlice();
    }

    unsigned
    computeWays() const
    {
        return waysPerSlice - reservedWays;
    }

    unsigned
    computeArraysPerSlice() const
    {
        return computeWays() * arraysPerWay();
    }

    unsigned
    computeArrays() const
    {
        return slices * computeArraysPerSlice();
    }

    uint64_t
    arrayBytes() const
    {
        return uint64_t(arrayRows) * arrayCols / 8;
    }

    uint64_t
    sliceBytes() const
    {
        return uint64_t(arraysPerSlice()) * arrayBytes();
    }

    uint64_t
    capacityBytes() const
    {
        return uint64_t(slices) * sliceBytes();
    }

    /** Bit-serial ALU slots: one per bit line of every array. */
    uint64_t
    aluSlots() const
    {
        return uint64_t(totalArrays()) * arrayCols;
    }

    /** ALU slots usable for DNN compute (reserved ways excluded). */
    uint64_t
    computeAluSlots() const
    {
        return uint64_t(computeArrays()) * arrayCols;
    }

    /** Bytes of the per-slice I/O way (way 19). */
    uint64_t
    reservedWayBytes() const
    {
        return uint64_t(arraysPerWay()) * arrayBytes();
    }
    /// @}

    /** @name Presets used by the paper's evaluation (Table IV) */
    /// @{
    static Geometry xeonE5_35MB();
    static Geometry scaled45MB();
    static Geometry scaled60MB();
    /// @}
};

} // namespace nc::cache

#endif // NC_CACHE_GEOMETRY_HH
