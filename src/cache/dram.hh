/**
 * @file
 * Main-memory channel model.
 *
 * The paper times way-loading with a micro-benchmark on the real
 * machine (set-address decoding reverse-engineered, VTune-profiled).
 * We substitute a bandwidth/latency channel model (DESIGN.md §4.3): an
 * effective bandwidth that reflects the strided set-granular access
 * pattern rather than peak DDR4 numbers, calibrated so filter loading
 * lands at ~46% of batch-1 inference latency (paper Figure 14).
 */

#ifndef NC_CACHE_DRAM_HH
#define NC_CACHE_DRAM_HH

#include <cstdint>

#include "common/units.hh"

namespace nc::cache
{

/** Effective DRAM channel seen by filter/input loading. */
struct DramModel
{
    /**
     * Effective bandwidth of way-granular streaming loads. The 64 GB
     * DDR4 system peaks far higher, but set-decoded strided fills
     * sustain roughly this much (calibrated so filter loading is ~46%
     * of batch-1 latency, Figure 14).
     */
    Bandwidth effectiveBw{11.0e9};

    /** First-access latency of a stream, picoseconds. */
    double streamLatencyPs = 80e3; // 80 ns

    /** DRAM access energy per byte moved, picojoules. */
    double energyPjPerByte = 40.0;

    /**
     * Time to stream @p bytes into (or out of) the cache. Defined out
     * of line (dram.cc) so the translation unit anchors at least one
     * symbol.
     */
    double transferPs(uint64_t bytes) const;

    /** Energy to move @p bytes, picojoules. */
    double
    transferPj(uint64_t bytes) const
    {
        return energyPjPerByte * static_cast<double>(bytes);
    }
};

} // namespace nc::cache

#endif // NC_CACHE_DRAM_HH
