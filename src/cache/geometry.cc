#include "cache/geometry.hh"

namespace nc::cache
{

Geometry
Geometry::xeonE5_35MB()
{
    return Geometry{};
}

Geometry
Geometry::scaled45MB()
{
    Geometry g;
    g.name = "scaled-45mb";
    g.slices = 18;
    return g;
}

Geometry
Geometry::scaled60MB()
{
    Geometry g;
    g.name = "scaled-60mb";
    g.slices = 24;
    return g;
}

} // namespace nc::cache
