#include "cache/dram.hh"

namespace nc::cache
{

// Out of line so this translation unit always carries a symbol (empty
// TUs trip "ranlib: file has no symbols" on macOS and other strict
// toolchains).
double
DramModel::transferPs(uint64_t bytes) const
{
    if (bytes == 0)
        return 0.0;
    return streamLatencyPs +
           effectiveBw.transferPs(static_cast<double>(bytes));
}

} // namespace nc::cache
