#include "cache/compute_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nc::cache
{

ComputeCache::ComputeCache(Geometry geom_) : geom(std::move(geom_))
{
    ringNet.stops = geom.slices;
    if (sram::ownership::kEnabled)
        ownReg = std::make_unique<sram::ownership::Registry>(
            geom.totalArrays());
}

uint64_t
ComputeCache::flatIndex(const ArrayCoord &c) const
{
    nc_assert(c.slice < geom.slices && c.way < geom.waysPerSlice &&
                  c.bank < geom.banksPerWay &&
                  c.array < geom.arraysPerBank(),
              "bad array coordinate (%u,%u,%u,%u)", c.slice, c.way,
              c.bank, c.array);
    return ((uint64_t(c.slice) * geom.waysPerSlice + c.way) *
                geom.banksPerWay +
            c.bank) *
               geom.arraysPerBank() +
           c.array;
}

ArrayCoord
ComputeCache::coordOf(uint64_t flat) const
{
    nc_assert(flat < geom.totalArrays(), "flat index %llu out of range",
              static_cast<unsigned long long>(flat));
    ArrayCoord c;
    c.array = flat % geom.arraysPerBank();
    flat /= geom.arraysPerBank();
    c.bank = flat % geom.banksPerWay;
    flat /= geom.banksPerWay;
    c.way = flat % geom.waysPerSlice;
    c.slice = static_cast<unsigned>(flat / geom.waysPerSlice);
    return c;
}

sram::Array &
ComputeCache::array(const ArrayCoord &c)
{
    uint64_t idx = flatIndex(c);
    auto it = arrays.find(idx);
    if (it == arrays.end()) {
        // Materialization mutates the map and therefore only happens
        // from serial phases (kernel preparation, replica pinning);
        // parallel tasks always hit the find() fast path above.
        it = arrays
                 .emplace(idx, std::make_unique<sram::Array>(
                                   geom.arrayRows, geom.arrayCols))
                 .first;
        it->second->setOwnership(ownReg.get(), idx);
    }
    return *it->second;
}

bool
ComputeCache::materialized(const ArrayCoord &c) const
{
    return arrays.count(flatIndex(c)) != 0;
}

uint64_t
ComputeCache::lockstepCycles() const
{
    uint64_t worst = 0;
    for (const auto &[idx, arr] : arrays)
        worst = std::max(worst, arr->computeCycles());
    return worst;
}

uint64_t
ComputeCache::totalComputeCycles() const
{
    uint64_t total = 0;
    for (const auto &[idx, arr] : arrays)
        total += arr->computeCycles();
    return total;
}

uint64_t
ComputeCache::totalAccessCycles() const
{
    uint64_t total = 0;
    for (const auto &[idx, arr] : arrays)
        total += arr->accessCycles();
    return total;
}

void
ComputeCache::resetCycles()
{
    for (auto &[idx, arr] : arrays)
        arr->resetCycles();
}

} // namespace nc::cache
