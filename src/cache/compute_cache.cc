#include "cache/compute_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nc::cache
{

ComputeCache::ComputeCache(Geometry geom_) : geom(std::move(geom_))
{
    ringNet.stops = geom.slices;
    if (sram::ownership::kEnabled)
        ownReg = std::make_unique<sram::ownership::Registry>(
            geom.totalArrays());
}

uint64_t
ComputeCache::flatIndex(const ArrayCoord &c) const
{
    nc_assert(c.slice < geom.slices && c.way < geom.waysPerSlice &&
                  c.bank < geom.banksPerWay &&
                  c.array < geom.arraysPerBank(),
              "bad array coordinate (%u,%u,%u,%u)", c.slice, c.way,
              c.bank, c.array);
    return ((uint64_t(c.slice) * geom.waysPerSlice + c.way) *
                geom.banksPerWay +
            c.bank) *
               geom.arraysPerBank() +
           c.array;
}

ArrayCoord
ComputeCache::coordOf(uint64_t flat) const
{
    nc_assert(flat < geom.totalArrays(), "flat index %llu out of range",
              static_cast<unsigned long long>(flat));
    ArrayCoord c;
    c.array = flat % geom.arraysPerBank();
    flat /= geom.arraysPerBank();
    c.bank = flat % geom.banksPerWay;
    flat /= geom.banksPerWay;
    c.way = flat % geom.waysPerSlice;
    c.slice = static_cast<unsigned>(flat / geom.waysPerSlice);
    return c;
}

sram::Array &
ComputeCache::array(const ArrayCoord &c)
{
    // Callers address logical indices; the self-healing remap picks
    // the physical array behind them (identity when no faults are
    // configured — see the class comment).
    uint64_t idx = flatIndex(c);
    uint64_t phys = physicalOf(idx);
    auto it = arrays.find(phys);
    if (it == arrays.end()) {
        // Materialization mutates the map and therefore only happens
        // from serial phases (kernel preparation, replica pinning);
        // parallel tasks always hit the find() fast path above.
        it = arrays
                 .emplace(phys, std::make_unique<sram::Array>(
                                    geom.arrayRows, geom.arrayCols))
                 .first;
        // Ownership claims are made in logical coordinates; faults
        // belong to the physical silicon.
        it->second->setOwnership(ownReg.get(), idx);
        if (fltReg)
            it->second->setFaults(fltReg->recordFor(phys));
    }
    return *it->second;
}

bool
ComputeCache::materialized(const ArrayCoord &c) const
{
    return arrays.count(physicalOf(flatIndex(c))) != 0;
}

const sram::Array *
ComputeCache::peekArray(uint64_t flat) const
{
    auto it = arrays.find(physicalOf(flat));
    return it == arrays.end() ? nullptr : it->second.get();
}

void
ComputeCache::configureFaults(const sram::faults::Config &cfg)
{
    nc_assert(!fltReg, "fault injection configured twice");
    nc_assert(arrays.empty(),
              "fault injection configured after %zu arrays "
              "materialized (records attach at materialization)",
              arrays.size());
    fltReg = std::make_unique<sram::faults::Registry>(
        cfg, geom.totalArrays(), geom.arrayRows, geom.arrayCols);
    healthMap = std::make_unique<HealthMap>(geom.totalArrays());
}

uint64_t
ComputeCache::bistScanAndRemap()
{
    nc_assert(healthMap, "bist scan without configured faults");
    uint64_t retired = bistScan(geom, fltReg.get(), *healthMap);
    // Compact the survivors into a dense logical space: placement
    // sees usableArrays() interchangeable arrays and never needs to
    // know which physical ones died.
    remap.clear();
    remap.reserve(geom.totalArrays() - healthMap->retiredCount());
    for (uint64_t i = 0; i < geom.totalArrays(); ++i)
        if (healthMap->healthy(i))
            remap.push_back(i);
    nc_assert(!remap.empty(), "bist retired every array: %s",
              healthMap->summary().c_str());
    return retired;
}

void
ComputeCache::injectFlip(uint64_t physical, unsigned row,
                         unsigned lane)
{
    nc_assert(fltReg, "transient injection without configured faults");
    fltReg->injectFlip(physical, row, lane);
    // The flip may have created the array's first fault record —
    // after the array materialized holding a null record pointer.
    // Re-bind so the live array sees it.
    if (auto it = arrays.find(physical); it != arrays.end())
        it->second->setFaults(fltReg->recordFor(physical));
}

uint64_t
ComputeCache::retireAndSubstitute(uint64_t logical, std::string reason)
{
    nc_assert(healthMap, "retiring array without configured faults");
    if (remap.empty()) {
        // Faults configured but BIST skipped: start from identity.
        remap.resize(geom.totalArrays());
        for (uint64_t i = 0; i < remap.size(); ++i)
            remap[i] = i;
    }
    nc_assert(logical + 1 < remap.size(),
              "retiring logical array %llu with no spare behind it "
              "(%llu usable; retired so far: %s)",
              static_cast<unsigned long long>(logical),
              static_cast<unsigned long long>(remap.size()),
              healthMap->summary().c_str());

    uint64_t casualty = remap[logical];
    healthMap->retire(casualty, std::move(reason));

    uint64_t spare = remap.back();
    remap.pop_back();
    remap[logical] = spare;

    // The casualty may keep its materialized husk (its accrued cycle
    // counts stay in the totals — the work really happened), but the
    // substitute must start clean: re-bind its ownership to the new
    // logical index and wipe any stale state it held as a dropped
    // replica. Guard rows are zero again by construction.
    if (auto it = arrays.find(spare); it != arrays.end()) {
        sram::Array &arr = *it->second;
        arr.setOwnership(ownReg.get(), logical);
        for (unsigned r = 0; r < geom.arrayRows; ++r)
            arr.rowMut(r) = sram::BitRow(geom.arrayCols);
        arr.carrySet(false);
        arr.tagSet(false);
    }
    return spare;
}

void
ComputeCache::retireCompact(uint64_t logical, std::string reason)
{
    nc_assert(healthMap, "retiring array without configured faults");
    nc_assert(logical < usableArrays(),
              "retiring logical array %llu of %llu usable",
              static_cast<unsigned long long>(logical),
              static_cast<unsigned long long>(usableArrays()));
    healthMap->retire(physicalOf(logical), std::move(reason));

    remap.clear();
    remap.reserve(geom.totalArrays() - healthMap->retiredCount());
    for (uint64_t i = 0; i < geom.totalArrays(); ++i)
        if (healthMap->healthy(i))
            remap.push_back(i);
    nc_assert(!remap.empty(), "every array retired: %s",
              healthMap->summary().c_str());

    // Compaction moves every logical index at or above the casualty:
    // re-bind each materialized survivor to its new logical index and
    // wipe its state (the caller re-pins everything).
    for (uint64_t l = 0; l < remap.size(); ++l) {
        auto it = arrays.find(remap[l]);
        if (it == arrays.end())
            continue;
        sram::Array &arr = *it->second;
        arr.setOwnership(ownReg.get(), l);
        for (unsigned r = 0; r < geom.arrayRows; ++r)
            arr.rowMut(r) = sram::BitRow(geom.arrayCols);
        arr.carrySet(false);
        arr.tagSet(false);
    }
}

uint64_t
ComputeCache::lockstepCycles() const
{
    uint64_t worst = 0;
    for (const auto &[idx, arr] : arrays)
        worst = std::max(worst, arr->computeCycles());
    return worst;
}

uint64_t
ComputeCache::totalComputeCycles() const
{
    uint64_t total = 0;
    for (const auto &[idx, arr] : arrays)
        total += arr->computeCycles();
    return total;
}

uint64_t
ComputeCache::totalAccessCycles() const
{
    uint64_t total = 0;
    for (const auto &[idx, arr] : arrays)
        total += arr->accessCycles();
    return total;
}

void
ComputeCache::resetCycles()
{
    for (auto &[idx, arr] : arrays)
        arr->resetCycles();
}

} // namespace nc::cache
