/**
 * @file
 * ComputeCache: the LLC with every SRAM array morphed into a vector
 * unit.
 *
 * The container instantiates arrays lazily: timing-only studies never
 * touch bits (the analytic cost model works from the geometry alone),
 * while the functional executor materializes just the arrays it maps
 * data onto. All arrays execute in SIMD lock-step when computing — the
 * controller broadcasts one instruction stream — so the compute-cycle
 * clock of the whole cache is the maximum over member arrays, which
 * lockstepCycles() reports.
 */

#ifndef NC_CACHE_COMPUTE_CACHE_HH
#define NC_CACHE_COMPUTE_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>

#include "cache/cbox.hh"
#include "cache/dram.hh"
#include "common/bits.hh" // for the C++20 guard: <=> below mis-parses pre-C++20
#include "cache/geometry.hh"
#include "cache/interconnect.hh"
#include "sram/array.hh"
#include "sram/ownership.hh"

namespace nc::cache
{

/** Coordinates of one array inside the LLC. */
struct ArrayCoord
{
    unsigned slice = 0;
    unsigned way = 0;
    unsigned bank = 0;
    unsigned array = 0; ///< index within the bank [0, 4)

    auto operator<=>(const ArrayCoord &) const = default;
};

/** The whole compute-capable LLC. */
class ComputeCache
{
  public:
    explicit ComputeCache(Geometry geom = Geometry::xeonE5_35MB());

    const Geometry &geometry() const { return geom; }
    const IntraSliceBus &bus() const { return sliceBus; }
    const Ring &ring() const { return ringNet; }
    const DramModel &dram() const { return dramModel; }
    const CBox &cbox() const { return cboxModel; }

    /** Flat index of @p c in [0, totalArrays). */
    uint64_t flatIndex(const ArrayCoord &c) const;
    /** Inverse of flatIndex(). */
    ArrayCoord coordOf(uint64_t flat) const;

    /** Lazily materialize and return the array at @p c. */
    sram::Array &array(const ArrayCoord &c);
    /** Test whether @p c has been materialized. */
    bool materialized(const ArrayCoord &c) const;
    size_t materializedCount() const { return arrays.size(); }

    /**
     * SIMD lock-step compute cycles: the maximum compute-cycle count
     * over all materialized arrays (every array sees every broadcast
     * instruction, so the slowest defines the wall clock).
     */
    uint64_t lockstepCycles() const;

    /** Sum of compute cycles over materialized arrays (for energy). */
    uint64_t totalComputeCycles() const;
    /** Sum of access cycles over materialized arrays. */
    uint64_t totalAccessCycles() const;

    void resetCycles();

    /**
     * The array-ownership race detector of this cache (debug builds;
     * null under NDEBUG — the hooks in sram::Array are compiled out
     * there too). Kernels claim flat-array ranges against it via
     * sram::ownership::ClaimScope before fanning out.
     */
    sram::ownership::Registry *
    ownershipRegistry() const
    {
        return ownReg.get();
    }

  private:
    Geometry geom;
    IntraSliceBus sliceBus;
    Ring ringNet;
    DramModel dramModel;
    CBox cboxModel;
    std::map<uint64_t, std::unique_ptr<sram::Array>> arrays;
    std::unique_ptr<sram::ownership::Registry> ownReg;
};

} // namespace nc::cache

#endif // NC_CACHE_COMPUTE_CACHE_HH
