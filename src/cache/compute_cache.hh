/**
 * @file
 * ComputeCache: the LLC with every SRAM array morphed into a vector
 * unit.
 *
 * The container instantiates arrays lazily: timing-only studies never
 * touch bits (the analytic cost model works from the geometry alone),
 * while the functional executor materializes just the arrays it maps
 * data onto. All arrays execute in SIMD lock-step when computing — the
 * controller broadcasts one instruction stream — so the compute-cycle
 * clock of the whole cache is the maximum over member arrays, which
 * lockstepCycles() reports.
 */

#ifndef NC_CACHE_COMPUTE_CACHE_HH
#define NC_CACHE_COMPUTE_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>

#include <vector>

#include "cache/cbox.hh"
#include "cache/dram.hh"
#include "common/bits.hh" // for the C++20 guard: <=> below mis-parses pre-C++20
#include "cache/geometry.hh"
#include "cache/health.hh"
#include "cache/interconnect.hh"
#include "sram/array.hh"
#include "sram/faults.hh"
#include "sram/ownership.hh"

namespace nc::cache
{

/** Coordinates of one array inside the LLC. */
struct ArrayCoord
{
    unsigned slice = 0;
    unsigned way = 0;
    unsigned bank = 0;
    unsigned array = 0; ///< index within the bank [0, 4)

    auto operator<=>(const ArrayCoord &) const = default;
};

/** The whole compute-capable LLC. */
class ComputeCache
{
  public:
    explicit ComputeCache(Geometry geom = Geometry::xeonE5_35MB());

    const Geometry &geometry() const { return geom; }
    const IntraSliceBus &bus() const { return sliceBus; }
    const Ring &ring() const { return ringNet; }
    const DramModel &dram() const { return dramModel; }
    const CBox &cbox() const { return cboxModel; }

    /** Flat index of @p c in [0, totalArrays). */
    uint64_t flatIndex(const ArrayCoord &c) const;
    /** Inverse of flatIndex(). */
    ArrayCoord coordOf(uint64_t flat) const;

    /** Lazily materialize and return the array at @p c. */
    sram::Array &array(const ArrayCoord &c);
    /** Test whether @p c has been materialized. */
    bool materialized(const ArrayCoord &c) const;
    size_t materializedCount() const { return arrays.size(); }

    /**
     * SIMD lock-step compute cycles: the maximum compute-cycle count
     * over all materialized arrays (every array sees every broadcast
     * instruction, so the slowest defines the wall clock).
     */
    uint64_t lockstepCycles() const;

    /** Sum of compute cycles over materialized arrays (for energy). */
    uint64_t totalComputeCycles() const;
    /** Sum of access cycles over materialized arrays. */
    uint64_t totalAccessCycles() const;

    void resetCycles();

    /**
     * The array-ownership race detector of this cache (debug builds;
     * null under NDEBUG — the hooks in sram::Array are compiled out
     * there too). Kernels claim flat-array ranges against it via
     * sram::ownership::ClaimScope before fanning out.
     */
    sram::ownership::Registry *
    ownershipRegistry() const
    {
        return ownReg.get();
    }

    /** @name Fault injection, health, and self-healing remap
     *
     * When faults are configured the cache keeps a logical→physical
     * translation in front of its arrays: placement, kernels, and
     * the audit all keep addressing dense logical indices, while
     * retired physical arrays simply drop out of the map. The table
     * starts as the identity over BIST survivors; a runtime
     * retirement substitutes the highest spare physical array for
     * the casualty's logical slot and shrinks usable capacity by
     * one. Unconfigured caches keep an empty table and translate
     * through two branch-free checks.
     */
    /// @{
    /**
     * Arm fault injection. Must run before any array materializes
     * (records attach at materialization); creates the registry and
     * the health map.
     */
    void configureFaults(const sram::faults::Config &cfg);
    bool faultsConfigured() const { return fltReg != nullptr; }
    sram::faults::Registry *faultRegistry() { return fltReg.get(); }
    const sram::faults::Registry *
    faultRegistry() const
    {
        return fltReg.get();
    }
    /** Null until configureFaults(). */
    HealthMap *health() { return healthMap.get(); }
    const HealthMap *health() const { return healthMap.get(); }

    /**
     * March-scan every suspect array (cache/health.hh), retire the
     * failures, and rebuild the remap over the survivors. Returns
     * how many arrays this scan retired.
     */
    uint64_t bistScanAndRemap();

    /**
     * Schedule a one-shot transient flip of (row, lane) in physical
     * array @p physical (a mid-run soft error at a deterministic
     * point). Use this instead of faultRegistry()->injectFlip():
     * creating the record may happen after the struck array
     * materialized with a null record pointer, so the cache re-binds
     * the record to the live array here.
     */
    void injectFlip(uint64_t physical, unsigned row, unsigned lane);

    /** Arrays usable for placement (total minus retired). */
    uint64_t
    usableArrays() const
    {
        return remap.empty() ? geom.totalArrays() : remap.size();
    }

    /** The physical array behind logical index @p logical. */
    uint64_t
    physicalOf(uint64_t logical) const
    {
        return remap.empty() ? logical : remap[logical];
    }

    /**
     * Retire the physical array behind @p logical and substitute the
     * highest spare: the last logical index's physical array takes
     * over @p logical (re-bound and zeroed if materialized) and
     * usableArrays() shrinks by one. The caller guarantees a spare
     * exists — @p logical must be below usableArrays() - 1, i.e. the
     * tail entry is not itself live. Returns the substituted
     * physical index.
     */
    uint64_t retireAndSubstitute(uint64_t logical, std::string reason);

    /**
     * Retire the physical array behind @p logical with no
     * substitution: the remap compacts over all healthy survivors,
     * reshuffling the whole logical space. Every materialized
     * survivor is re-bound to its new logical index and wiped, so
     * the caller must re-place and re-pin the entire plan afterward
     * — this is the shed-capacity path (dropping an image slot,
     * degrading to streaming), not the surgical spare substitution.
     */
    void retireCompact(uint64_t logical, std::string reason);

    /** The array at logical @p flat if materialized (else null). */
    const sram::Array *peekArray(uint64_t flat) const;
    /// @}

  private:
    Geometry geom;
    IntraSliceBus sliceBus;
    Ring ringNet;
    DramModel dramModel;
    CBox cboxModel;
    std::map<uint64_t, std::unique_ptr<sram::Array>> arrays;
    std::unique_ptr<sram::ownership::Registry> ownReg;
    std::unique_ptr<sram::faults::Registry> fltReg;
    std::unique_ptr<HealthMap> healthMap;
    /** Logical→physical translation (empty = identity, no faults). */
    std::vector<uint64_t> remap;
};

} // namespace nc::cache

#endif // NC_CACHE_COMPUTE_CACHE_HH
