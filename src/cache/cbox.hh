/**
 * @file
 * Cache control box: transpose gateway and instruction sequencing
 * (paper §III-F and §IV-F).
 *
 * Each slice's C-BOX hosts a few Transpose Memory Units that convert
 * bus data between regular and transposed layout, and the control FSM
 * that broadcasts in-cache compute instructions over the intra-slice
 * address bus (one FSM per bank, 204 um^2 each, 0.23 mm^2 chip-wide).
 */

#ifndef NC_CACHE_CBOX_HH
#define NC_CACHE_CBOX_HH

#include <cstdint>

#include "common/units.hh"

namespace nc::cache
{

/** Per-slice control box with its transpose gateway. */
struct CBox
{
    /** TMUs per slice; a few saturate the intra-slice bus. */
    unsigned tmus = 2;
    /** Geometry of each TMU macro. */
    unsigned tmuRows = 256;
    unsigned tmuCols = 64;
    /** TMU port clock (matches the access clock domain). */
    Clock clock{4.0_GHz};

    /** Control FSM area bookkeeping (paper §IV-F). */
    double fsmAreaUm2 = 204.0;
    unsigned fsmsPerSlice = 80; // one per bank

    /**
     * Time for this slice's TMUs to transpose @p bytes of 8-bit
     * elements arriving in regular layout. TMUs work independently on
     * disjoint element batches. Defined out of line (cbox.cc) so the
     * translation unit anchors at least one symbol.
     */
    double transposePs(uint64_t bytes) const;

    /** Chip-wide FSM area in mm^2 for @p slices slices. */
    double
    fsmAreaMm2(unsigned slices) const
    {
        return fsmAreaUm2 * fsmsPerSlice * slices * 1e-6;
    }
};

} // namespace nc::cache

#endif // NC_CACHE_CBOX_HH
