/**
 * @file
 * Filter packing and splitting (paper §IV-A).
 *
 * A bit line computes one channel's RxS dot product, so the filter
 * footprint per bit line is RxS bytes and the lane count per
 * convolution is the channel count. Two transforms keep both within
 * the array budget:
 *
 *  - Filter splitting: when RxS exceeds 9 bytes (Inception's 5x5 =
 *    25), the filter is split across `splitFactor` bit lines, each
 *    holding ceil(RxS/split) bytes; the channel dimension effectively
 *    multiplies by the split factor (the split partial sums merge in
 *    the existing channel reduction).
 *
 *  - Filter packing: 1x1 filters pack up to 16 consecutive channels
 *    into one bit line (inputs stream one byte at a time since 1x1
 *    has no window reuse), dividing the lanes needed per convolution
 *    by the pack factor and thereby shrinking the reduction tree.
 *
 * Finally the effective channel count is padded to the next power of
 * two (zero channels) so the lane-shift reduction tree stays regular.
 */

#ifndef NC_MAPPING_FILTER_TRANSFORM_HH
#define NC_MAPPING_FILTER_TRANSFORM_HH

#include "dnn/layers.hh"

namespace nc::mapping
{

/** Limits that drive the transforms. */
struct TransformLimits
{
    /** Max filter bytes a bit line may hold before splitting. */
    unsigned maxFilterBytes = 9;
    /** Channels packed per bit line for 1x1 filters. */
    unsigned packTarget = 16;
};

/** Result of packing / splitting one convolution's filters. */
struct FilterTransform
{
    unsigned rs = 0;          ///< original RxS bytes
    unsigned splitFactor = 1; ///< bit lines one channel spreads over
    unsigned packFactor = 1;  ///< channels sharing one bit line
    unsigned effRS = 0;       ///< filter bytes per bit line (= MACs)
    unsigned effChannels = 0; ///< lanes before power-of-two padding
    unsigned paddedChannels = 0; ///< lanes per convolution (pow2)

    /** Word lines the filter band occupies (8-bit elements). */
    unsigned
    filterRows(unsigned bits) const
    {
        return effRS * bits;
    }

    /**
     * Word lines the input band occupies: packed 1x1 filters stream
     * one input byte at a time (no reuse), everything else stages the
     * whole window.
     */
    unsigned
    inputRows(unsigned bits) const
    {
        return (packFactor > 1 ? 1 : effRS) * bits;
    }
};

/** Apply packing/splitting to @p op's filters. */
FilterTransform transformFilter(const dnn::ConvOp &op,
                                const TransformLimits &lim = {});

} // namespace nc::mapping

#endif // NC_MAPPING_FILTER_TRANSFORM_HH
