/**
 * @file
 * Static band-plan auditor: compile-time proof that a compiled
 * model's array placement is race-free.
 *
 * Every parallelism claim of the run loop — concurrent branches,
 * §IV-E image slots, nested per-array kernel fan-outs — rests on the
 * placement invariant that concurrently-live array ranges are
 * pairwise disjoint and inside the cache geometry. auditPlan() walks
 * a CompiledModel's placement artifacts (stationary filter bands,
 * per-branch scratch slots, streaming band groups, and the
 * planBatchBands image-replica arithmetic) and proves that invariant
 * statically, reporting every violation with layer/branch/slot names.
 * Engine::compile() runs it unconditionally and fails fast; the
 * runtime ownership detector (sram/ownership.hh) then polices the
 * same contract dynamically in debug builds — the auditor proves the
 * plan, the detector catches kernels straying from it.
 *
 * The range-level core (auditRanges) is exposed separately so tests
 * can feed deliberately-overlapping plans without fabricating a whole
 * compiled model.
 */

#ifndef NC_MAPPING_PLAN_AUDIT_HH
#define NC_MAPPING_PLAN_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/geometry.hh"
#include "mapping/plan.hh"

namespace nc::core
{
class CompiledModel;
}

namespace nc::mapping
{

/**
 * One placed array range with its liveness/concurrency coordinates.
 * Two ranges may share arrays only when they can never be live at
 * the same time in different concurrency units:
 *  - different epochs (serial stages of the streaming regime) never
 *    coexist;
 *  - the same unit (one branch's layers time-sharing a streaming
 *    band; a claim against itself) is serial by construction, but
 *    its ranges must then be identical or disjoint — a partial
 *    overlap is a layout bug even within one unit;
 *  - everything else must be pairwise disjoint.
 */
struct AuditRange
{
    /** Always-live epoch (resident bands, scratch slots). */
    static constexpr uint32_t kAllEpochs = 0xffffffffu;

    std::string label;   ///< diagnostic name ("conv 'x' filter band")
    uint64_t base = 0;   ///< first flat array index
    uint64_t arrays = 0; ///< extent (must be >= 1)
    uint32_t epoch = kAllEpochs; ///< serial stage, or kAllEpochs
    uint32_t unit = 0;   ///< concurrency unit (branch/layer/slot)
};

/** One provable defect of a plan. */
struct AuditViolation
{
    std::string message;
};

/** The auditor's verdict: violations plus coverage counters. */
struct AuditReport
{
    std::vector<AuditViolation> violations;
    uint64_t rangesChecked = 0;
    uint64_t pairsChecked = 0;

    bool ok() const { return violations.empty(); }
    /** All violation messages, newline-joined ("ok" when clean). */
    std::string summary() const;
};

/**
 * The range-level core: bounds-check every range against @p geom,
 * verify the §IV-E replica arithmetic of @p bands (ranges confined
 * to one image slot's footprint, slots inside the cache, streaming
 * pinned to one slot), and prove concurrently-live ranges pairwise
 * disjoint under the AuditRange liveness rules. @p usable_arrays
 * shrinks the capacity bound below the geometry when arrays have
 * been retired (0 = the full geometry): ranges live in the dense
 * logical space the health remap exposes, so the whole plan —
 * replicas included — must fit the survivors.
 */
AuditReport auditRanges(const std::vector<AuditRange> &ranges,
                        const cache::Geometry &geom,
                        const BatchBandPlan &bands,
                        uint64_t usable_arrays = 0);

/**
 * The placed array ranges of @p model, exactly as auditPlan() checks
 * them: one range per on-array conv filter band (with the resident /
 * streaming epoch-unit coordinates) plus the always-live scratch
 * slots of placed models. Exposed so other static passes — the
 * program verifier cross-references every prepared layer's band
 * against this list — prove their claims against the same placement
 * facts the auditor proves disjoint, not a second derivation of them.
 */
std::vector<AuditRange> planRanges(const core::CompiledModel &model);

/**
 * Audit @p model's compiled placement. Pure inspection: walks the
 * per-layer bands, scratch assignment, stage/branch structure, and
 * batch banding; never mutates the model or touches arrays. Analytic
 * models (no placement) still get their banding arithmetic checked.
 * Models with configured faults are audited against the shrunken
 * usable capacity, and every live logical index — every band, every
 * scratch slot, every image replica — is proven to map to a healthy
 * physical array (no live range touches a retired array).
 */
AuditReport auditPlan(const core::CompiledModel &model);

/**
 * Fail-fast gate: nc_fatal with every violation message when @p rep
 * is not clean (@p what names the audited plan). auditPlanOrDie()
 * routes through this; tests drive it with hand-built range sets.
 */
void auditOrDie(const AuditReport &rep, const std::string &what);

/** auditPlan() + nc_fatal on the first violation (compile gate). */
void auditPlanOrDie(const core::CompiledModel &model);

} // namespace nc::mapping

#endif // NC_MAPPING_PLAN_AUDIT_HH
