/**
 * @file
 * Mapping plans: how one op spreads over the compute cache
 * (paper §IV-A/B, Figures 9-11).
 *
 * A ConvPlan captures, for one convolution sub-layer:
 *  - the per-array row layout (Figure 10): filter band, input band,
 *    scratchpad, partial sum, output buffer, reduction operands;
 *  - lanes per convolution (padded channels) and how many filter
 *    batches (M's) share an array;
 *  - the cache-wide parallelism: convolutions in flight, serial
 *    passes, and the resulting array utilization;
 *  - the slice partition of output pixels (consecutive E's per slice,
 *    Figure 11).
 *
 * Pool layers map like convs without filters (PoolPlan).
 */

#ifndef NC_MAPPING_PLAN_HH
#define NC_MAPPING_PLAN_HH

#include <cstdint>
#include <vector>

#include "bitserial/layout.hh"
#include "cache/geometry.hh"
#include "dnn/layers.hh"
#include "mapping/filter_transform.hh"

namespace nc::mapping
{

/** Fixed word-line budget of the Figure 10 array layout (8-bit). */
struct RowBudget
{
    unsigned scratchRows = 16;  ///< 2 bytes: product scratchpad
    unsigned partialRows = 24;  ///< 3 bytes: partial sum
    unsigned outputRows = 32;   ///< 4 bytes: buffered output
    unsigned zeroRows = 1;      ///< reserved constant-zero word line

    unsigned
    overhead() const
    {
        return scratchRows + partialRows + outputRows + zeroRows;
    }
};

/** Complete placement of one convolution across the cache. */
struct ConvPlan
{
    FilterTransform ft;

    unsigned lanesPerConv = 0;   ///< bit lines one convolution uses
    unsigned arraysPerConv = 1;  ///< arrays when lanes exceed one array
    unsigned convsPerArray = 0;  ///< filter batches (M's) per array
    uint64_t parallelConvs = 0;  ///< cache-wide convolutions in flight
    uint64_t serialPasses = 0;   ///< sequential rounds
    double utilization = 0.0;    ///< busy fraction of compute slots

    unsigned filterRows = 0;     ///< word lines of stationary filters
    unsigned inputRows = 0;      ///< word lines streamed per window
    unsigned freeRows = 0;       ///< spare lines for extra input reuse
    bool fitsSenseAmpPair = true; ///< reduction stays within 2 arrays

    /** Input bytes newly streamed per window (sliding-window reuse). */
    unsigned newInputBytesPerWindow = 0;

    /** Outputs (E positions) assigned per slice (Figure 11). */
    uint64_t outputsPerSlice = 0;
};

/** Placement of a pooling op. */
struct PoolPlan
{
    uint64_t windows = 0;        ///< total pooled outputs
    uint64_t parallelWindows = 0;
    uint64_t serialPasses = 0;
    unsigned windowSize = 0;     ///< RxS inputs reduced per window
    unsigned inputRows = 0;
    double utilization = 0.0;
};

/** Build the plan of @p op on @p geom (8-bit elements). */
ConvPlan planConv(const dnn::ConvOp &op, const cache::Geometry &geom,
                  const TransformLimits &lim = {},
                  const RowBudget &budget = {});

PoolPlan planPool(const dnn::PoolOp &op, const cache::Geometry &geom);

/**
 * How one convolution's (channels x filter positions) work spreads
 * over functional executor arrays — the §IV-A transforms applied to
 * the simulator's per-filter-batch mapping:
 *
 *  - legacy: one array per filter batch, one channel per bit line,
 *    the whole RxS window staged (shapes the original executor ran;
 *    bit- and cycle-identical to it).
 *  - packing (1x1 filters): packFactor consecutive channels share a
 *    bit line, inputs stream one byte at a time through a single
 *    input slot.
 *  - splitting (RxS > maxFilterBytes): each channel spreads over
 *    splitFactor bit lines holding effRS filter positions each; the
 *    split partials merge in the existing cross-lane reduction.
 *  - chunking (lanes still exceed one array): the channel range is
 *    cut into `chunks` arrays per filter batch and the per-chunk
 *    accumulators merge through the shared sense amps (host-side sum
 *    in the simulator).
 */
struct FunctionalConvPlan
{
    bool fits = false;
    bool legacy = true;        ///< untransformed one-array mapping
    unsigned packFactor = 1;   ///< channels sharing one bit line
    unsigned splitFactor = 1;  ///< bit lines one channel spreads over
    unsigned effRS = 0;        ///< MAC slots (filter bytes) per lane
    unsigned chunkChannels = 0;///< input channels per array chunk
    unsigned chunks = 1;       ///< arrays one filter batch spans
    unsigned lanes = 0;        ///< bit lines per chunk (pow2 padded)

    /** Arrays one whole layer of @p m filter batches occupies. */
    uint64_t
    totalArrays(unsigned m) const
    {
        return uint64_t(m) * chunks;
    }
};

/** Plan @p op's functional-array mapping on @p geom. */
FunctionalConvPlan planFunctionalConv(const dnn::ConvOp &op,
                                      const cache::Geometry &geom,
                                      const TransformLimits &lim = {});

/**
 * The Figure-10 per-array row carve-up of one conv layer: filter
 * band, input band, 2-byte product scratchpad, partial sum with
 * cross-lane reduction headroom, reduction scratch, and the reserved
 * constant-zero word line. Both functional conv kernels (the
 * direct-ALU Executor and the broadcast LayerEngine) build their
 * slice maps from this one definition, so their layouts cannot
 * drift apart.
 */
struct ConvRowLayout
{
    unsigned lanes = 0;   ///< bit lines per chunk (one per lane)
    unsigned rs = 0;      ///< MAC slots per lane (effRS)
    unsigned redBits = 0; ///< partial width incl. reduction headroom
    unsigned packFactor = 1;  ///< channels sharing one bit line
    unsigned splitFactor = 1; ///< bit lines one channel spreads over
    std::vector<bitserial::VecSlice> filt, inp;
    bitserial::VecSlice scratch, partial, redScratch;
    unsigned zrow = 0;    ///< reserved all-zero word line
};

/** Word lines the legacy carve-up of (c, r, s) needs, zero row
 * included. */
unsigned convLayoutRows(unsigned c, unsigned r, unsigned s);

/** Word lines a generalized carve-up needs: @p lanes bit lines, @p
 * mac_slots filter slots, @p input_slots staged input slots. */
unsigned convLayoutRowsEx(unsigned lanes, unsigned mac_slots,
                          unsigned input_slots);

/**
 * Build the legacy (untransformed) carve-up on @p geom's array shape.
 * Fatal if it does not fit — call fitsFunctionalExecutor() first to
 * fail gracefully.
 */
ConvRowLayout makeConvRowLayout(const cache::Geometry &geom,
                                unsigned c, unsigned r, unsigned s);

/** Build the carve-up a FunctionalConvPlan selected. */
ConvRowLayout makeConvRowLayout(const cache::Geometry &geom,
                                const FunctionalConvPlan &plan);

/**
 * Whether the functional executor can run @p op on @p geom through
 * some combination of the pack/split/chunk transforms. Engine::compile
 * consults this to fail fast — with a useful message — instead of
 * deep inside a kernel.
 */
bool fitsFunctionalExecutor(const dnn::ConvOp &op,
                            const cache::Geometry &geom);

/**
 * The per-array row carve-up of the §IV-D residual merge,
 * sat8(((a + b) * mult) >> shift): two operand bytes, the widened
 * 9-bit sum, the broadcast multiplier, and the 17-bit product that
 * is shifted and saturated in place. Both eltwise kernels (the
 * direct-ALU Executor and the broadcast LayerEngine) build their
 * slice maps from this one definition — the same single-source rule
 * ConvRowLayout enforces for convolutions — which is also what lets
 * the static program verifier (core/program_verify.hh) check one
 * canonical instruction stream for both.
 */
struct EltwiseRowLayout
{
    bitserial::VecSlice va, vb;  ///< the two operand bytes
    bitserial::VecSlice acc;     ///< widened sum (bits + 1)
    bitserial::VecSlice gain;    ///< broadcast requant multiplier
    bitserial::VecSlice prod;    ///< acc.bits + gain.bits product
    unsigned zrow = 0;           ///< reserved all-zero word line
};

/** Build the eltwise carve-up on @p geom's array shape. */
EltwiseRowLayout makeEltwiseRowLayout(const cache::Geometry &geom);

/**
 * The per-array carve-up of the broadcast max-pool fold (§IV-D
 * "designating a temporary maximum ... selective copy"): the
 * streamed element, the running maximum, and the compare scratch.
 */
struct PoolRowLayout
{
    bitserial::VecSlice cur;  ///< the window element streamed in
    bitserial::VecSlice best; ///< running maximum
    bitserial::VecSlice cmp;  ///< MaxInto compare scratch
    unsigned zrow = 0;        ///< reserved all-zero word line
};

/** Build the max-pool carve-up on @p geom's array shape. */
PoolRowLayout makePoolRowLayout(const cache::Geometry &geom);

/**
 * Functional execution plan of one stage's branch structure: per-
 * branch output shapes, the channel offset each non-shortcut branch's
 * output occupies in the stage's channel-concatenated output, and the
 * residual wiring (which branch is the shortcut feeding the eltwise
 * merges). Validates the topology rules the functional engines
 * depend on — eltwise only as a branch tail, at most one shortcut
 * branch, matching merge shapes, uniform branch input and concat
 * (h, w) — with fatal errors naming the offending op.
 */
struct StageConcatPlan
{
    struct Shape3
    {
        unsigned c = 0, h = 0, w = 0;
    };

    Shape3 input;               ///< common input of every branch
    std::vector<Shape3> branchOut;
    /** Channel offset of each branch's output in the concat (zero and
     * meaningless for the shortcut branch, whose output merges into
     * the eltwise adds instead). */
    std::vector<unsigned> concatOffset;
    int shortcutBranch = -1;    ///< index, or -1
    Shape3 out;                 ///< the stage's concatenated output
};

StageConcatPlan planStageConcat(const dnn::Stage &stage);

/**
 * Image-parallel batch banding (paper §IV-E, Figure 16): once a
 * network's filter bands are pinned stationary, the cache's spare
 * array capacity processes multiple images simultaneously. One image
 * slot is a complete copy of the network's working state — every conv
 * layer's stationary filter band plus one scratch array per
 * concurrently-executing branch — so slot k lives at flat-array
 * offset k * perImageArrays and images never share mutable arrays.
 * Batches beyond imageSlots time-slice: pass p runs images
 * [p * imageSlots, (p+1) * imageSlots) concurrently.
 */
struct BatchBandPlan
{
    /** Stationary filter arrays of one image's conv layers. */
    uint64_t filterArrays = 0;
    /** Scratch arrays per image (one per concurrent branch). */
    unsigned scratchSlots = 1;
    /** Whole per-image footprint: filter bands + scratch. */
    uint64_t perImageArrays = 1;
    /** Whole-network residency (one image's bands fit the cache). */
    bool resident = false;
    /** Images the spare capacity executes concurrently (>= 1;
     * exactly 1 in the streaming regime, whose layers time-share
     * bands and therefore cannot overlap images). */
    unsigned imageSlots = 1;

    /** Time-sliced passes a batch of @p batch images needs. */
    uint64_t
    passes(unsigned batch) const
    {
        return (uint64_t(batch) + imageSlots - 1) / imageSlots;
    }
};

/**
 * Carve per-image bands for a network whose one-image footprint is
 * @p filter_arrays stationary arrays plus @p scratch_slots scratch
 * arrays. @p fits_resident says whether one image's bands fit the
 * cache at all (callers that place layers themselves pass their
 * residency verdict; the streaming regime pins imageSlots to 1).
 * @p usable_arrays caps the capacity below the geometry total when
 * arrays have been retired (cache/health.hh); 0 means the full
 * geometry. Residency and imageSlots both honor the cap, which is
 * how capacity degrades gracefully as faults retire arrays.
 */
BatchBandPlan planBatchBands(uint64_t filter_arrays,
                             unsigned scratch_slots,
                             const cache::Geometry &geom,
                             bool fits_resident,
                             uint64_t usable_arrays = 0);

/**
 * Net-level convenience: derive the per-image footprint from every
 * conv/fc op's functional mapping (planFunctionalConv) and the
 * widest stage's branch count — the all-functional assumption the
 * analytic batch report prices. Networks with any op no functional
 * mapping can place, or whose footprint exceeds the cache, get the
 * streaming verdict (imageSlots == 1).
 */
BatchBandPlan planBatchBands(const dnn::Network &net,
                             const cache::Geometry &geom);

} // namespace nc::mapping

#endif // NC_MAPPING_PLAN_HH
