/**
 * @file
 * Mapping plans: how one op spreads over the compute cache
 * (paper §IV-A/B, Figures 9-11).
 *
 * A ConvPlan captures, for one convolution sub-layer:
 *  - the per-array row layout (Figure 10): filter band, input band,
 *    scratchpad, partial sum, output buffer, reduction operands;
 *  - lanes per convolution (padded channels) and how many filter
 *    batches (M's) share an array;
 *  - the cache-wide parallelism: convolutions in flight, serial
 *    passes, and the resulting array utilization;
 *  - the slice partition of output pixels (consecutive E's per slice,
 *    Figure 11).
 *
 * Pool layers map like convs without filters (PoolPlan).
 */

#ifndef NC_MAPPING_PLAN_HH
#define NC_MAPPING_PLAN_HH

#include <cstdint>
#include <vector>

#include "bitserial/layout.hh"
#include "cache/geometry.hh"
#include "dnn/layers.hh"
#include "mapping/filter_transform.hh"

namespace nc::mapping
{

/** Fixed word-line budget of the Figure 10 array layout (8-bit). */
struct RowBudget
{
    unsigned scratchRows = 16;  ///< 2 bytes: product scratchpad
    unsigned partialRows = 24;  ///< 3 bytes: partial sum
    unsigned outputRows = 32;   ///< 4 bytes: buffered output
    unsigned zeroRows = 1;      ///< reserved constant-zero word line

    unsigned
    overhead() const
    {
        return scratchRows + partialRows + outputRows + zeroRows;
    }
};

/** Complete placement of one convolution across the cache. */
struct ConvPlan
{
    FilterTransform ft;

    unsigned lanesPerConv = 0;   ///< bit lines one convolution uses
    unsigned arraysPerConv = 1;  ///< arrays when lanes exceed one array
    unsigned convsPerArray = 0;  ///< filter batches (M's) per array
    uint64_t parallelConvs = 0;  ///< cache-wide convolutions in flight
    uint64_t serialPasses = 0;   ///< sequential rounds
    double utilization = 0.0;    ///< busy fraction of compute slots

    unsigned filterRows = 0;     ///< word lines of stationary filters
    unsigned inputRows = 0;      ///< word lines streamed per window
    unsigned freeRows = 0;       ///< spare lines for extra input reuse
    bool fitsSenseAmpPair = true; ///< reduction stays within 2 arrays

    /** Input bytes newly streamed per window (sliding-window reuse). */
    unsigned newInputBytesPerWindow = 0;

    /** Outputs (E positions) assigned per slice (Figure 11). */
    uint64_t outputsPerSlice = 0;
};

/** Placement of a pooling op. */
struct PoolPlan
{
    uint64_t windows = 0;        ///< total pooled outputs
    uint64_t parallelWindows = 0;
    uint64_t serialPasses = 0;
    unsigned windowSize = 0;     ///< RxS inputs reduced per window
    unsigned inputRows = 0;
    double utilization = 0.0;
};

/** Build the plan of @p op on @p geom (8-bit elements). */
ConvPlan planConv(const dnn::ConvOp &op, const cache::Geometry &geom,
                  const TransformLimits &lim = {},
                  const RowBudget &budget = {});

PoolPlan planPool(const dnn::PoolOp &op, const cache::Geometry &geom);

/**
 * The Figure-10 per-array row carve-up of one conv layer: filter
 * band, input band, 2-byte product scratchpad, partial sum with
 * cross-lane reduction headroom, reduction scratch, and the reserved
 * constant-zero word line. Both functional conv kernels (the
 * direct-ALU Executor and the broadcast LayerEngine) build their
 * slice maps from this one definition, so their layouts cannot
 * drift apart.
 */
struct ConvRowLayout
{
    unsigned lanes = 0;   ///< padded channels (one per bit line)
    unsigned rs = 0;      ///< filter positions RxS
    unsigned redBits = 0; ///< partial width incl. reduction headroom
    std::vector<bitserial::VecSlice> filt, inp;
    bitserial::VecSlice scratch, partial, redScratch;
    unsigned zrow = 0;    ///< reserved all-zero word line
};

/** Word lines the carve-up of (c, r, s) needs, zero row included. */
unsigned convLayoutRows(unsigned c, unsigned r, unsigned s);

/**
 * Build the carve-up on @p geom's array shape. Fatal if it does not
 * fit — call fitsFunctionalExecutor() first to fail gracefully.
 */
ConvRowLayout makeConvRowLayout(const cache::Geometry &geom,
                                unsigned c, unsigned r, unsigned s);

/**
 * Whether the functional executor's one-array-per-filter-batch
 * mapping can run @p op on @p geom: padded channels must fit one
 * array's bit lines and the ConvRowLayout bands must fit its word
 * lines. Engine::compile consults this to fail fast — with a useful
 * message — instead of deep inside a kernel.
 */
bool fitsFunctionalExecutor(const dnn::ConvOp &op,
                            const cache::Geometry &geom);

} // namespace nc::mapping

#endif // NC_MAPPING_PLAN_HH
