/**
 * @file
 * Transposed weight placement (paper §IV-C): "filter weights are
 * preprocessed to a transpose format and laid out in DRAM such that
 * they map to correct bitlines and word-lines." WeightLayout assigns
 * every byte of a convolution's filter bank its home (array
 * coordinate, word line, bit line) consistent with the mapper's
 * Figure-10 layout — the order the preprocessed DRAM image follows.
 */

#ifndef NC_MAPPING_WEIGHT_LAYOUT_HH
#define NC_MAPPING_WEIGHT_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "cache/compute_cache.hh"
#include "cache/geometry.hh"
#include "dnn/reference.hh"
#include "mapping/plan.hh"

namespace nc::mapping
{

using cache::ArrayCoord;
using cache::Geometry;

/** Home of one weight byte inside the compute cache. */
struct WeightHome
{
    ArrayCoord coord;  ///< which 8KB array
    unsigned lane = 0; ///< bit line
    unsigned row = 0;  ///< word line of the byte's LSB
    /**
     * Serial pass the byte belongs to: filter banks larger than one
     * slice's compute ways time-multiplex the arrays (§IV-B's serial
     * passes), and the DRAM image streams pass by pass. Zero for
     * every layer that fits in one pass.
     */
    unsigned pass = 0;

    bool operator==(const WeightHome &) const = default;
};

/**
 * Placement of a convolution's filter bank across the cache,
 * following the mapper's plan: channels walk bit lines (split
 * channels consecutive), filter bytes walk the word-line band,
 * filter batches (M's) walk lane groups then arrays, replicated
 * across ways/slices by broadcast (so only way-0/slice-0 homes are
 * enumerated — the broadcast copies are implicit).
 */
class WeightLayout
{
  public:
    WeightLayout(const dnn::ConvOp &op, const mapping::ConvPlan &plan,
                 const Geometry &geom);

    /**
     * Home of filter element (m, c, k) where k indexes the RxS
     * window in row-major order.
     */
    WeightHome homeOf(unsigned m, unsigned c, unsigned k) const;

    /** Word lines the filter band occupies per array. */
    unsigned filterRows() const { return plan.filterRows; }

    /**
     * The DRAM streaming order: every (m, c, k) element enumerated in
     * the order the transposed image must be laid out so a linear
     * DRAM burst fills word lines sequentially.
     */
    std::vector<WeightHome> streamingOrder() const;

    /** A filter element together with its placement. */
    struct Placed
    {
        WeightHome home;
        unsigned m = 0, c = 0, k = 0;
    };

    /** Every element with its home, in streaming order. */
    std::vector<Placed> placements() const;

    /**
     * The preprocessed DRAM image (paper §IV-C): the filter bank's
     * bytes in exactly the streaming order, ready to burst into the
     * arrays. @p w must match the op's (m, c, r, s).
     */
    std::vector<uint8_t> dramImage(const dnn::QWeights &w) const;

  private:
    dnn::ConvOp op;
    mapping::ConvPlan plan;
    Geometry geom;
};

} // namespace nc::mapping

#endif // NC_MAPPING_WEIGHT_LAYOUT_HH
