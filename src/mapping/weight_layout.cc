#include "mapping/weight_layout.hh"

#include <algorithm>
#include <tuple>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::mapping
{

WeightLayout::WeightLayout(const dnn::ConvOp &op_,
                           const mapping::ConvPlan &plan_,
                           const Geometry &geom_)
    : op(op_), plan(plan_), geom(geom_)
{
}

WeightHome
WeightLayout::homeOf(unsigned m, unsigned c, unsigned k) const
{
    nc_assert(m < op.m && c < op.c && k < op.r * op.s,
              "filter element (%u,%u,%u) out of range", m, c, k);
    const auto &ft = plan.ft;

    unsigned lane;     // within one convolution's lane group
    unsigned byte_idx; // within the bit line's filter byte stack
    if (ft.splitFactor > 1) {
        lane = c * ft.splitFactor + k / ft.effRS;
        byte_idx = k % ft.effRS;
    } else if (ft.packFactor > 1) {
        lane = c / ft.packFactor;
        byte_idx = c % ft.packFactor; // k == 0 for 1x1 filters
    } else {
        lane = c;
        byte_idx = k;
    }

    unsigned array_idx;
    unsigned abs_lane;
    if (plan.convsPerArray >= 1) {
        array_idx = m / plan.convsPerArray;
        unsigned group = m % plan.convsPerArray;
        abs_lane = group * plan.lanesPerConv + lane;
    } else {
        array_idx = m * plan.arraysPerConv + lane / geom.arrayCols;
        abs_lane = lane % geom.arrayCols;
    }

    WeightHome home;
    // Filter banks wider than one slice's compute ways run in serial
    // passes (§IV-B): pass p re-uses the same arrays, and its weights
    // stream after pass p-1's in the DRAM image.
    unsigned compute_arrays = geom.computeArraysPerSlice();
    home.pass = array_idx / compute_arrays;
    array_idx %= compute_arrays;
    unsigned arrays_per_way = geom.arraysPerWay();
    home.coord.slice = 0; // broadcast replicates to other slices
    home.coord.way = array_idx / arrays_per_way;
    unsigned in_way = array_idx % arrays_per_way;
    home.coord.bank = in_way / geom.arraysPerBank();
    home.coord.array = in_way % geom.arraysPerBank();
    nc_assert(home.coord.way < geom.computeWays(),
              "filter bank of '%s' spills past the compute ways",
              op.name.c_str());
    home.lane = abs_lane;
    home.row = byte_idx * 8; // 8-bit elements, LSB first
    return home;
}

namespace
{

/** Streaming sort key: pass, arrays, word lines, then bit lines. */
std::tuple<unsigned, uint64_t, unsigned, unsigned>
streamKey(const nc::cache::Geometry &geom, const WeightHome &h)
{
    uint64_t flat =
        (uint64_t(h.coord.way) * geom.banksPerWay + h.coord.bank) *
            geom.arraysPerBank() +
        h.coord.array;
    return {h.pass, flat, h.row, h.lane};
}

} // namespace

std::vector<WeightLayout::Placed>
WeightLayout::placements() const
{
    std::vector<Placed> placed;
    placed.reserve(static_cast<size_t>(op.m) * op.c * op.r * op.s);
    for (unsigned m = 0; m < op.m; ++m)
        for (unsigned c = 0; c < op.c; ++c)
            for (unsigned k = 0; k < op.r * op.s; ++k)
                placed.push_back(Placed{homeOf(m, c, k), m, c, k});

    std::sort(placed.begin(), placed.end(),
              [&](const Placed &a, const Placed &b) {
                  return streamKey(geom, a.home) <
                         streamKey(geom, b.home);
              });
    return placed;
}

std::vector<WeightHome>
WeightLayout::streamingOrder() const
{
    std::vector<WeightHome> homes;
    auto placed = placements();
    homes.reserve(placed.size());
    for (const auto &p : placed)
        homes.push_back(p.home);
    return homes;
}

std::vector<uint8_t>
WeightLayout::dramImage(const dnn::QWeights &w) const
{
    nc_assert(w.m == op.m && w.c == op.c && w.r == op.r &&
                  w.s == op.s,
              "weight tensor does not match the op '%s'",
              op.name.c_str());
    std::vector<uint8_t> image;
    auto placed = placements();
    image.reserve(placed.size());
    for (const auto &p : placed)
        image.push_back(w.at(p.m, p.c, p.k / op.s, p.k % op.s));
    return image;
}

} // namespace nc::mapping
