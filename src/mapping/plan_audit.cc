#include "mapping/plan_audit.hh"

#include <cinttypes>
#include <cstdio>

#include "cache/compute_cache.hh"
#include "common/logging.hh"
#include "core/compiled_model.hh"

namespace nc::mapping
{

namespace
{

/**
 * Unit-id spaces: units are only compared for equality, so the spaces
 * just need to be collision-free. Streaming branch units are the raw
 * branch slot index (compared within one stage epoch); resident conv
 * bands and scratch slots are always-live and get globally unique
 * ids above these bases.
 */
constexpr uint32_t kScratchUnitBase = 0x20000000u;
constexpr uint32_t kResidentUnitBase = 0x40000000u;

std::string
describe(const AuditRange &r)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, " [%" PRIu64 ", %" PRIu64 ")",
                  r.base, r.base + r.arrays);
    return "'" + r.label + "'" + buf;
}

void
addViolation(AuditReport &rep, std::string msg)
{
    rep.violations.push_back(AuditViolation{std::move(msg)});
}

} // namespace

std::string
AuditReport::summary() const
{
    if (violations.empty())
        return "ok";
    std::string s;
    for (const AuditViolation &v : violations) {
        if (!s.empty())
            s += '\n';
        s += v.message;
    }
    return s;
}

AuditReport
auditRanges(const std::vector<AuditRange> &ranges,
            const cache::Geometry &geom, const BatchBandPlan &bands,
            uint64_t usable_arrays)
{
    AuditReport rep;
    const uint64_t total =
        usable_arrays == 0 ? geom.totalArrays() : usable_arrays;
    if (total > geom.totalArrays())
        addViolation(rep, "usable capacity " + std::to_string(total) +
                              " exceeds the " +
                              std::to_string(geom.totalArrays()) +
                              "-array geometry");

    // The §IV-E banding arithmetic itself.
    if (bands.scratchSlots < 1)
        addViolation(rep, "batch banding has no scratch slot");
    if (bands.imageSlots < 1)
        addViolation(rep, "batch banding has no image slot");
    if (bands.perImageArrays !=
        bands.filterArrays + bands.scratchSlots)
        addViolation(
            rep, "batch banding per-image footprint " +
                     std::to_string(bands.perImageArrays) +
                     " != filter arrays " +
                     std::to_string(bands.filterArrays) +
                     " + scratch slots " +
                     std::to_string(bands.scratchSlots));
    if (!bands.resident && bands.imageSlots != 1)
        addViolation(rep,
                     "streaming regime with " +
                         std::to_string(bands.imageSlots) +
                         " image slots (layers time-share bands; "
                         "a second in-flight image would clobber "
                         "them)");
    if (bands.resident &&
        uint64_t(bands.imageSlots) * bands.perImageArrays > total)
        addViolation(rep,
                     std::to_string(bands.imageSlots) +
                         " image replicas of " +
                         std::to_string(bands.perImageArrays) +
                         " arrays exceed the " +
                         std::to_string(total) + "-array cache");

    // Per-range bounds.
    for (const AuditRange &r : ranges) {
        ++rep.rangesChecked;
        if (r.arrays == 0) {
            addViolation(rep, "empty range " + describe(r));
            continue;
        }
        if (r.base + r.arrays < r.base || r.base + r.arrays > total)
            addViolation(rep, describe(r) + " exceeds the " +
                                  std::to_string(total) +
                                  "-array geometry");
        // Image replicas displace every range by slot *
        // perImageArrays, so multi-slot plans must confine slot 0 to
        // its own footprint or replicas would interleave.
        else if (bands.imageSlots > 1 &&
                 r.base + r.arrays > bands.perImageArrays)
            addViolation(rep,
                         describe(r) +
                             " escapes the per-image footprint of " +
                             std::to_string(bands.perImageArrays) +
                             " arrays (" +
                             std::to_string(bands.imageSlots) +
                             " image slots)");
    }

    // Pairwise disjointness of concurrently-live ranges.
    for (size_t i = 0; i < ranges.size(); ++i) {
        const AuditRange &a = ranges[i];
        if (a.arrays == 0)
            continue;
        for (size_t j = i + 1; j < ranges.size(); ++j) {
            const AuditRange &b = ranges[j];
            if (b.arrays == 0)
                continue;
            bool live_together = a.epoch == AuditRange::kAllEpochs ||
                                 b.epoch == AuditRange::kAllEpochs ||
                                 a.epoch == b.epoch;
            if (!live_together)
                continue;
            ++rep.pairsChecked;
            bool overlap = a.base < b.base + b.arrays &&
                           b.base < a.base + a.arrays;
            if (!overlap)
                continue;
            if (a.unit == b.unit) {
                // One unit is serial with itself (a streaming
                // branch's layers time-share one band), but then the
                // shared band must be the same band.
                if (a.base != b.base || a.arrays != b.arrays)
                    addViolation(rep,
                                 describe(a) + " and " + describe(b) +
                                     " partially overlap within one "
                                     "concurrency unit");
                continue;
            }
            addViolation(rep, describe(a) + " and " + describe(b) +
                                  " overlap while concurrently live");
        }
    }
    return rep;
}

namespace
{

/**
 * Walk @p model's placement and build the live-range list; the
 * structural defects found along the way (mis-wired scratch slots,
 * bandless convs, residency mismatches) go into @p structural when
 * given, and are silently skipped for callers that only want the
 * ranges themselves (planRanges).
 */
std::vector<AuditRange>
collectRanges(const core::CompiledModel &model, AuditReport *structural)
{
    const BatchBandPlan &bands = model.batchBands();
    const dnn::Network &net = model.network();
    const auto &layers = model.compiledLayers();
    const auto &stages = model.compiledStages();

    std::vector<AuditRange> ranges;
    uint32_t resident_seq = 0;

    for (size_t si = 0; si < stages.size(); ++si) {
        const auto &cstage = stages[si];
        for (size_t bi = 0; bi < cstage.branches.size(); ++bi) {
            const std::string where = " (stage '" +
                                      net.stages[si].name +
                                      "' branch '" +
                                      net.stages[si].branches[bi].name +
                                      "')";
            for (size_t li : cstage.branches[bi].layerIdx) {
                const core::CompiledLayer &layer = layers[li];
                bool on_arrays =
                    layer.backend == core::BackendKind::Functional ||
                    layer.backend == core::BackendKind::Isa;
                if (!on_arrays)
                    continue;
                // Branch slot wiring: concurrently executing
                // branches must scribble on distinct scratch arrays.
                if (structural &&
                    layer.scratchArray !=
                        model.scratchBaseArray() + bi)
                    addViolation(
                        *structural,
                        "layer '" + layer.op.name() +
                            "' scratch array " +
                            std::to_string(layer.scratchArray) +
                            " is not its branch slot " +
                            std::to_string(model.scratchBaseArray() +
                                           bi) +
                            where);
                if (!layer.op.isConv())
                    continue;
                if (layer.bandArrays == 0) {
                    if (structural)
                        addViolation(*structural,
                                     "conv '" + layer.op.name() +
                                         "' has no filter band" +
                                         where);
                    continue;
                }
                if (structural && layer.bandResident != bands.resident)
                    addViolation(
                        *structural,
                        "conv '" + layer.op.name() + "' placed " +
                            (layer.bandResident ? "resident"
                                                : "streaming") +
                            " in a " +
                            (bands.resident ? "resident"
                                            : "streaming") +
                            " plan" + where);
                AuditRange r;
                r.label =
                    "conv '" + layer.op.name() + "' filter band" +
                    where;
                r.base = layer.baseArray;
                r.arrays = layer.bandArrays;
                if (bands.resident) {
                    r.epoch = AuditRange::kAllEpochs;
                    r.unit = kResidentUnitBase + resident_seq++;
                } else {
                    r.epoch = static_cast<uint32_t>(si);
                    r.unit = static_cast<uint32_t>(bi);
                }
                ranges.push_back(std::move(r));
            }
        }
    }

    // Scratch slots are always live: they must clear every band in
    // every epoch. Only placed (functional) models have them.
    if (model.functional()) {
        for (unsigned k = 0; k < bands.scratchSlots; ++k) {
            AuditRange r;
            r.label = "scratch slot " + std::to_string(k);
            r.base = model.scratchBaseArray() + k;
            r.arrays = 1;
            r.epoch = AuditRange::kAllEpochs;
            r.unit = kScratchUnitBase + k;
            ranges.push_back(std::move(r));
        }
    }
    return ranges;
}

} // namespace

std::vector<AuditRange>
planRanges(const core::CompiledModel &model)
{
    return collectRanges(model, nullptr);
}

AuditReport
auditPlan(const core::CompiledModel &model)
{
    const cache::Geometry &geom = model.config().geometry;
    const BatchBandPlan &bands = model.batchBands();

    AuditReport structural;
    std::vector<AuditRange> ranges = collectRanges(model, &structural);

    const cache::ComputeCache *cc = model.computeCache();
    uint64_t usable = 0;
    if (cc && cc->faultsConfigured())
        usable = cc->usableArrays();

    AuditReport rep = auditRanges(ranges, geom, bands, usable);

    // The fault-tolerance invariant: no live range — in any image
    // replica — may touch a retired physical array. The remap
    // guarantees this by construction; the audit re-proves it after
    // every compile and every runtime repair, because a repair bug
    // here means silently computing on dead silicon.
    if (cc && cc->health()) {
        const cache::HealthMap &hm = *cc->health();
        unsigned slots = bands.resident ? bands.imageSlots : 1;
        for (const AuditRange &r : ranges) {
            for (unsigned s = 0; s < slots; ++s) {
                uint64_t off = uint64_t(s) * bands.perImageArrays;
                if (r.base + off + r.arrays > cc->usableArrays())
                    break; // out of capacity: reported above
                for (uint64_t i = 0; i < r.arrays; ++i) {
                    uint64_t logical = r.base + off + i;
                    uint64_t phys = cc->physicalOf(logical);
                    if (hm.healthy(phys))
                        continue;
                    addViolation(
                        rep,
                        describe(r) + " slot " + std::to_string(s) +
                            " maps logical array " +
                            std::to_string(logical) +
                            " onto retired physical array " +
                            std::to_string(phys));
                }
            }
        }
    }

    rep.violations.insert(rep.violations.begin(),
                          structural.violations.begin(),
                          structural.violations.end());
    return rep;
}

void
auditOrDie(const AuditReport &rep, const std::string &what)
{
    if (rep.ok())
        return;
    nc_fatal("band-plan audit of %s failed:\n%s", what.c_str(),
             rep.summary().c_str());
}

void
auditPlanOrDie(const core::CompiledModel &model)
{
    auditOrDie(auditPlan(model),
               "'" + model.network().name + "'");
}

} // namespace nc::mapping
