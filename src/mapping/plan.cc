#include "mapping/plan.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::mapping
{

ConvPlan
planConv(const dnn::ConvOp &op, const cache::Geometry &geom,
         const TransformLimits &lim, const RowBudget &budget)
{
    constexpr unsigned bits = 8;

    ConvPlan plan;
    plan.ft = transformFilter(op, lim);

    plan.lanesPerConv = plan.ft.paddedChannels;
    unsigned cols = geom.arrayCols;

    if (plan.lanesPerConv <= cols) {
        plan.arraysPerConv = 1;
        plan.convsPerArray = cols / plan.lanesPerConv;
    } else {
        plan.arraysPerConv = static_cast<unsigned>(
            divCeil(plan.lanesPerConv, cols));
        plan.convsPerArray = 0; // one conv spans several arrays
    }
    // Channel reduction is cheap while it stays within the two arrays
    // that share sense amps (paper packs 1x1 filters precisely to
    // guarantee this).
    plan.fitsSenseAmpPair = plan.arraysPerConv <= 2;

    unsigned compute_arrays = geom.computeArrays();
    if (plan.convsPerArray >= 1) {
        plan.parallelConvs =
            uint64_t(compute_arrays) * plan.convsPerArray;
    } else {
        plan.parallelConvs = compute_arrays / plan.arraysPerConv;
    }
    nc_assert(plan.parallelConvs > 0, "op '%s' too large for the cache",
              op.name.c_str());

    uint64_t total = op.convCount();
    plan.serialPasses = divCeil(total, plan.parallelConvs);
    plan.utilization =
        static_cast<double>(total) /
        (static_cast<double>(plan.serialPasses) * plan.parallelConvs);

    plan.filterRows = plan.ft.filterRows(bits);
    plan.inputRows = plan.ft.inputRows(bits);
    unsigned used =
        plan.filterRows + plan.inputRows + budget.overhead();
    if (used > geom.arrayRows) {
        nc_fatal("layout of '%s' needs %u rows, array has %u",
                 op.name.c_str(), used, geom.arrayRows);
    }
    plan.freeRows = geom.arrayRows - used;

    // Sliding-window input reuse: moving one stride along the row
    // re-reads r x (s - stride) bytes of the window (paper's 3x3 u1
    // example: 6 of 9 bytes reused). Packed 1x1 filters stream their
    // packed bytes fresh each time.
    if (plan.ft.packFactor > 1 || op.s <= op.stride) {
        plan.newInputBytesPerWindow = plan.ft.effRS;
    } else {
        unsigned reused = op.r * (op.s - op.stride);
        unsigned fresh = op.r * op.s - reused;
        plan.newInputBytesPerWindow = static_cast<unsigned>(
            divCeil(fresh, plan.ft.splitFactor));
    }

    plan.outputsPerSlice = divCeil(total, geom.slices);
    return plan;
}

PoolPlan
planPool(const dnn::PoolOp &op, const cache::Geometry &geom)
{
    constexpr unsigned bits = 8;

    PoolPlan plan;
    plan.windows = op.windowCount();
    plan.windowSize = op.r * op.s;
    plan.inputRows = plan.windowSize * bits;
    // One lane per pooled output: channels and window positions both
    // spread across bit lines (no cross-lane reduction needed; the
    // window's inputs stream through each lane serially).
    plan.parallelWindows =
        uint64_t(geom.computeArrays()) * geom.arrayCols;
    plan.serialPasses = divCeil(plan.windows, plan.parallelWindows);
    plan.utilization =
        static_cast<double>(plan.windows) /
        (static_cast<double>(plan.serialPasses) * plan.parallelWindows);
    return plan;
}

unsigned
convLayoutRowsEx(unsigned lanes, unsigned mac_slots,
                 unsigned input_slots)
{
    constexpr unsigned bits = 8;
    constexpr unsigned acc_bits = 24;
    unsigned red_bits =
        acc_bits + log2Ceil(static_cast<uint64_t>(lanes));
    // filter band + input band + 2-byte scratchpad + partial sum with
    // reduction headroom + reduction scratch + the reserved zero row.
    return (mac_slots + input_slots) * bits + 2 * bits + red_bits +
           (red_bits > 1 ? red_bits - 1 : 1) + 1;
}

unsigned
convLayoutRows(unsigned c, unsigned r, unsigned s)
{
    unsigned rs = r * s;
    return convLayoutRowsEx(
        static_cast<unsigned>(roundUpPow2(c)), rs, rs);
}

namespace
{

/**
 * Largest power-of-two lane count (<= one array's bit lines) whose
 * carve-up of @p mac_slots + @p input_slots fits the word lines;
 * zero when even a single lane does not fit.
 */
unsigned
maxLanesFor(const cache::Geometry &geom, unsigned mac_slots,
            unsigned input_slots)
{
    unsigned lanes =
        static_cast<unsigned>(roundUpPow2(geom.arrayCols));
    if (lanes > geom.arrayCols)
        lanes /= 2;
    while (lanes >= 1 &&
           convLayoutRowsEx(lanes, mac_slots, input_slots) >
               geom.arrayRows)
        lanes /= 2;
    return lanes;
}

} // namespace

FunctionalConvPlan
planFunctionalConv(const dnn::ConvOp &op, const cache::Geometry &geom,
                   const TransformLimits &lim)
{
    unsigned rs = op.r * op.s;

    FunctionalConvPlan p;
    p.effRS = rs;
    p.chunkChannels = op.c;
    p.lanes = static_cast<unsigned>(roundUpPow2(op.c));

    // The untransformed one-array-per-filter-batch mapping: kept
    // bit- and cycle-identical for every shape the original executor
    // handled.
    if (p.lanes <= geom.arrayCols &&
        convLayoutRows(op.c, op.r, op.s) <= geom.arrayRows) {
        p.fits = true;
        return p;
    }
    p.legacy = false;

    if (rs == 1) {
        // §IV-A filter packing: consecutive channels share a bit
        // line, inputs stream one byte at a time (no window reuse to
        // preserve), shrinking both lanes and the reduction tree.
        p.packFactor = lim.packTarget;
        p.effRS = p.packFactor;
        unsigned lanes = maxLanesFor(geom, p.effRS, 1);
        if (lanes == 0)
            return p; // fits == false
        uint64_t cap = uint64_t(lanes) * p.packFactor;
        p.chunkChannels =
            static_cast<unsigned>(std::min<uint64_t>(op.c, cap));
        p.chunks =
            static_cast<unsigned>(divCeil(op.c, p.chunkChannels));
        p.lanes = static_cast<unsigned>(roundUpPow2(
            divCeil(p.chunkChannels, p.packFactor)));
        p.fits = true;
        return p;
    }

    if (rs > lim.maxFilterBytes) {
        // §IV-A filter splitting: each channel spreads over
        // splitFactor lanes of effRS filter positions; the split
        // partials merge in the cross-lane reduction.
        p.splitFactor =
            static_cast<unsigned>(divCeil(rs, lim.maxFilterBytes));
        p.effRS =
            static_cast<unsigned>(divCeil(rs, p.splitFactor));
    }

    unsigned lanes = maxLanesFor(geom, p.effRS, p.effRS);
    unsigned cap = lanes / p.splitFactor;
    if (cap == 0)
        return p; // fits == false
    p.chunkChannels = std::min(op.c, cap);
    p.chunks = static_cast<unsigned>(divCeil(op.c, p.chunkChannels));
    p.lanes = static_cast<unsigned>(
        roundUpPow2(p.chunkChannels * p.splitFactor));
    p.fits = true;
    return p;
}

ConvRowLayout
makeConvRowLayout(const cache::Geometry &geom,
                  const FunctionalConvPlan &plan)
{
    constexpr unsigned bits = 8;
    constexpr unsigned acc_bits = 24;

    nc_assert(plan.fits, "conv layout requested for a plan that does "
              "not fit the array");

    ConvRowLayout l;
    l.lanes = plan.lanes;
    nc_assert(l.lanes <= geom.arrayCols,
              "conv layout: %u lanes exceed %u bit lines", l.lanes,
              geom.arrayCols);
    l.rs = plan.effRS;
    l.packFactor = plan.packFactor;
    l.splitFactor = plan.splitFactor;
    l.redBits = acc_bits + log2Ceil(static_cast<uint64_t>(l.lanes));
    unsigned input_slots = plan.packFactor > 1 ? 1 : l.rs;

    bitserial::RowAllocator rows(geom.arrayRows);
    l.filt.resize(l.rs);
    l.inp.resize(input_slots);
    for (unsigned k = 0; k < l.rs; ++k)
        l.filt[k] = rows.alloc(bits);
    for (unsigned k = 0; k < input_slots; ++k)
        l.inp[k] = rows.alloc(bits);
    l.scratch = rows.alloc(2 * bits);
    l.partial = rows.alloc(l.redBits);
    l.redScratch = rows.alloc(l.redBits > 1 ? l.redBits - 1 : 1);
    l.zrow = rows.zeroRow();
    // Keep the arithmetic row model and the real allocation in
    // lockstep: any layout change that touches one but not the other
    // trips here on the very first prepare.
    nc_assert(rows.used() + 1 ==
                  convLayoutRowsEx(l.lanes, l.rs, input_slots),
              "Figure-10 row model drift: allocated %u+1, model says "
              "%u", rows.used(),
              convLayoutRowsEx(l.lanes, l.rs, input_slots));
    return l;
}

ConvRowLayout
makeConvRowLayout(const cache::Geometry &geom, unsigned c, unsigned r,
                  unsigned s)
{
    FunctionalConvPlan p;
    p.fits = true;
    p.effRS = r * s;
    p.chunkChannels = c;
    p.lanes = static_cast<unsigned>(roundUpPow2(c));
    return makeConvRowLayout(geom, p);
}

bool
fitsFunctionalExecutor(const dnn::ConvOp &op,
                       const cache::Geometry &geom)
{
    return planFunctionalConv(op, geom).fits;
}

EltwiseRowLayout
makeEltwiseRowLayout(const cache::Geometry &geom)
{
    constexpr unsigned bits = 8;

    EltwiseRowLayout l;
    bitserial::RowAllocator rows(geom.arrayRows);
    l.va = rows.alloc(bits);
    l.vb = rows.alloc(bits);
    l.acc = rows.alloc(bits + 1);
    l.gain = rows.alloc(bits);
    l.prod = rows.alloc((bits + 1) + bits); // acc.bits + gain.bits
    l.zrow = rows.zeroRow();
    return l;
}

PoolRowLayout
makePoolRowLayout(const cache::Geometry &geom)
{
    constexpr unsigned bits = 8;

    PoolRowLayout l;
    bitserial::RowAllocator rows(geom.arrayRows);
    l.cur = rows.alloc(bits);
    l.best = rows.alloc(bits);
    l.cmp = rows.alloc(bits);
    l.zrow = rows.zeroRow();
    return l;
}

namespace
{

StageConcatPlan::Shape3
opInputShape(const dnn::Op &op)
{
    if (op.isConv())
        return {op.conv.c, op.conv.h, op.conv.w};
    if (op.isPool())
        return {op.pool.c, op.pool.h, op.pool.w};
    return {op.elt.c, op.elt.h, op.elt.w};
}

StageConcatPlan::Shape3
opOutputShape(const dnn::Op &op)
{
    if (op.isConv())
        return {op.conv.m, op.conv.outH(), op.conv.outW()};
    if (op.isPool())
        return {op.pool.c, op.pool.outH(), op.pool.outW()};
    return {op.elt.c, op.elt.h, op.elt.w};
}

bool
sameShape(const StageConcatPlan::Shape3 &a,
          const StageConcatPlan::Shape3 &b)
{
    return a.c == b.c && a.h == b.h && a.w == b.w;
}

} // namespace

StageConcatPlan
planStageConcat(const dnn::Stage &stage)
{
    nc_assert(!stage.branches.empty(), "stage '%s' has no branches",
              stage.name.c_str());

    StageConcatPlan plan;
    plan.branchOut.resize(stage.branches.size());
    plan.concatOffset.assign(stage.branches.size(), 0);

    bool any_eltwise = false;
    for (size_t bi = 0; bi < stage.branches.size(); ++bi) {
        const dnn::Branch &br = stage.branches[bi];
        nc_assert(!br.ops.empty(), "branch '%s' of stage '%s' has no "
                  "ops", br.name.c_str(), stage.name.c_str());

        // Every branch reads the same stage input.
        StageConcatPlan::Shape3 in = opInputShape(br.ops.front());
        if (bi == 0)
            plan.input = in;
        else
            nc_assert(sameShape(in, plan.input),
                      "branch '%s' of stage '%s' expects %ux%ux%u "
                      "input, branch '%s' expects %ux%ux%u",
                      br.name.c_str(), stage.name.c_str(), in.c, in.h,
                      in.w, stage.branches.front().name.c_str(),
                      plan.input.c, plan.input.h, plan.input.w);

        if (br.shortcut) {
            nc_assert(plan.shortcutBranch < 0,
                      "stage '%s' has more than one shortcut branch",
                      stage.name.c_str());
            plan.shortcutBranch = static_cast<int>(bi);
        }

        bool has_eltwise = false;
        for (size_t oi = 0; oi < br.ops.size(); ++oi) {
            const dnn::Op &op = br.ops[oi];
            if (op.kind != dnn::OpKind::EltwiseAdd)
                continue;
            nc_assert(oi + 1 == br.ops.size(),
                      "eltwise '%s' must be the last op of branch "
                      "'%s'", op.elt.name.c_str(), br.name.c_str());
            nc_assert(!br.splitTail && !br.shortcut,
                      "eltwise '%s' cannot end a split-tail or "
                      "shortcut branch", op.elt.name.c_str());
            has_eltwise = true;
        }
        any_eltwise |= has_eltwise;

        // Walk the chain: each op consumes the previous output (the
        // split tail forks on the penultimate tensor; FC flattens).
        size_t serial = br.ops.size();
        if (br.splitTail) {
            nc_assert(br.ops.size() >= 2, "split-tail branch '%s' "
                      "needs at least two ops", br.name.c_str());
            serial -= 2;
        }
        StageConcatPlan::Shape3 cur = in;
        auto check_feed = [&](const dnn::Op &op,
                              const StageConcatPlan::Shape3 &feed) {
            StageConcatPlan::Shape3 want = opInputShape(op);
            if (op.isConv() && op.conv.isFullyConnected) {
                nc_assert(want.c == feed.c * feed.h * feed.w,
                          "fc '%s' expects %u inputs, previous op "
                          "produces %ux%ux%u", op.conv.name.c_str(),
                          want.c, feed.c, feed.h, feed.w);
            } else {
                nc_assert(sameShape(want, feed),
                          "op '%s' expects %ux%ux%u input, previous "
                          "op produces %ux%ux%u", op.name().c_str(),
                          want.c, want.h, want.w, feed.c, feed.h,
                          feed.w);
            }
        };
        for (size_t oi = 0; oi < serial; ++oi) {
            const dnn::Op &op = br.ops[oi];
            if (oi > 0)
                check_feed(op, cur);
            cur = opOutputShape(op);
        }
        if (br.splitTail) {
            const dnn::Op &t0 = br.ops[br.ops.size() - 2];
            const dnn::Op &t1 = br.ops[br.ops.size() - 1];
            check_feed(t0, cur);
            check_feed(t1, cur);
            StageConcatPlan::Shape3 o0 = opOutputShape(t0);
            StageConcatPlan::Shape3 o1 = opOutputShape(t1);
            nc_assert(o0.h == o1.h && o0.w == o1.w,
                      "split tail of branch '%s': %ux%u vs %ux%u "
                      "outputs cannot concatenate", br.name.c_str(),
                      o0.h, o0.w, o1.h, o1.w);
            cur = {o0.c + o1.c, o0.h, o0.w};
        }
        plan.branchOut[bi] = cur;
    }

    nc_assert(plan.shortcutBranch < 0 || any_eltwise,
              "stage '%s': shortcut branch '%s' has no eltwise merge "
              "to feed",
              stage.name.c_str(),
              stage.branches[static_cast<size_t>(plan.shortcutBranch)]
                  .name.c_str());

    // Eltwise merge shapes: the other operand is the shortcut
    // branch's output, or the stage input for identity residuals.
    StageConcatPlan::Shape3 merge_src =
        plan.shortcutBranch >= 0
            ? plan.branchOut[static_cast<size_t>(plan.shortcutBranch)]
            : plan.input;
    for (size_t bi = 0; bi < stage.branches.size(); ++bi) {
        const dnn::Branch &br = stage.branches[bi];
        if (br.ops.back().kind != dnn::OpKind::EltwiseAdd)
            continue;
        nc_assert(sameShape(plan.branchOut[bi], merge_src),
                  "eltwise '%s' merges %ux%ux%u with a %ux%ux%u "
                  "shortcut operand",
                  br.ops.back().elt.name.c_str(), plan.branchOut[bi].c,
                  plan.branchOut[bi].h, plan.branchOut[bi].w,
                  merge_src.c, merge_src.h, merge_src.w);
    }

    // Channel-concatenate the non-shortcut branch outputs, in branch
    // order, all at one spatial size.
    unsigned offset = 0;
    for (size_t bi = 0; bi < stage.branches.size(); ++bi) {
        if (static_cast<int>(bi) == plan.shortcutBranch)
            continue;
        const StageConcatPlan::Shape3 &o = plan.branchOut[bi];
        if (offset == 0) {
            plan.out = o;
        } else {
            nc_assert(o.h == plan.out.h && o.w == plan.out.w,
                      "branch '%s' of stage '%s' outputs %ux%u, "
                      "concat is %ux%u",
                      stage.branches[bi].name.c_str(),
                      stage.name.c_str(), o.h, o.w, plan.out.h,
                      plan.out.w);
        }
        plan.concatOffset[bi] = offset;
        offset += o.c;
    }
    plan.out.c = offset;
    return plan;
}

BatchBandPlan
planBatchBands(uint64_t filter_arrays, unsigned scratch_slots,
               const cache::Geometry &geom, bool fits_resident,
               uint64_t usable_arrays)
{
    uint64_t capacity = usable_arrays == 0 ? geom.totalArrays()
                                           : usable_arrays;
    nc_assert(capacity <= geom.totalArrays(),
              "usable capacity %llu exceeds the %llu-array geometry",
              static_cast<unsigned long long>(capacity),
              static_cast<unsigned long long>(geom.totalArrays()));
    BatchBandPlan p;
    p.filterArrays = filter_arrays;
    p.scratchSlots = std::max(scratch_slots, 1u);
    p.perImageArrays = filter_arrays + p.scratchSlots;
    p.resident = fits_resident && p.perImageArrays <= capacity;
    // Streaming layers time-share bands (and re-pin filter groups as
    // they run), so a second in-flight image would clobber the
    // first's filters — only the resident regime multi-slots.
    p.imageSlots =
        p.resident ? std::max<unsigned>(
                         1, static_cast<unsigned>(
                                capacity / p.perImageArrays))
                   : 1;
    return p;
}

BatchBandPlan
planBatchBands(const dnn::Network &net, const cache::Geometry &geom)
{
    uint64_t filters = 0;
    unsigned scratch = 1;
    bool fits = true;
    for (const dnn::Stage &stage : net.stages) {
        scratch = std::max(
            scratch, static_cast<unsigned>(stage.branches.size()));
        for (const dnn::Branch &branch : stage.branches) {
            for (const dnn::Op &op : branch.ops) {
                if (!op.isConv())
                    continue;
                FunctionalConvPlan fp =
                    planFunctionalConv(op.conv, geom);
                if (!fp.fits) {
                    fits = false;
                    continue;
                }
                filters += fp.totalArrays(op.conv.m);
            }
        }
    }
    return planBatchBands(filters, scratch, geom, fits);
}

} // namespace nc::mapping
