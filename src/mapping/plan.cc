#include "mapping/plan.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::mapping
{

ConvPlan
planConv(const dnn::ConvOp &op, const cache::Geometry &geom,
         const TransformLimits &lim, const RowBudget &budget)
{
    constexpr unsigned bits = 8;

    ConvPlan plan;
    plan.ft = transformFilter(op, lim);

    plan.lanesPerConv = plan.ft.paddedChannels;
    unsigned cols = geom.arrayCols;

    if (plan.lanesPerConv <= cols) {
        plan.arraysPerConv = 1;
        plan.convsPerArray = cols / plan.lanesPerConv;
    } else {
        plan.arraysPerConv = static_cast<unsigned>(
            divCeil(plan.lanesPerConv, cols));
        plan.convsPerArray = 0; // one conv spans several arrays
    }
    // Channel reduction is cheap while it stays within the two arrays
    // that share sense amps (paper packs 1x1 filters precisely to
    // guarantee this).
    plan.fitsSenseAmpPair = plan.arraysPerConv <= 2;

    unsigned compute_arrays = geom.computeArrays();
    if (plan.convsPerArray >= 1) {
        plan.parallelConvs =
            uint64_t(compute_arrays) * plan.convsPerArray;
    } else {
        plan.parallelConvs = compute_arrays / plan.arraysPerConv;
    }
    nc_assert(plan.parallelConvs > 0, "op '%s' too large for the cache",
              op.name.c_str());

    uint64_t total = op.convCount();
    plan.serialPasses = divCeil(total, plan.parallelConvs);
    plan.utilization =
        static_cast<double>(total) /
        (static_cast<double>(plan.serialPasses) * plan.parallelConvs);

    plan.filterRows = plan.ft.filterRows(bits);
    plan.inputRows = plan.ft.inputRows(bits);
    unsigned used =
        plan.filterRows + plan.inputRows + budget.overhead();
    if (used > geom.arrayRows) {
        nc_fatal("layout of '%s' needs %u rows, array has %u",
                 op.name.c_str(), used, geom.arrayRows);
    }
    plan.freeRows = geom.arrayRows - used;

    // Sliding-window input reuse: moving one stride along the row
    // re-reads r x (s - stride) bytes of the window (paper's 3x3 u1
    // example: 6 of 9 bytes reused). Packed 1x1 filters stream their
    // packed bytes fresh each time.
    if (plan.ft.packFactor > 1 || op.s <= op.stride) {
        plan.newInputBytesPerWindow = plan.ft.effRS;
    } else {
        unsigned reused = op.r * (op.s - op.stride);
        unsigned fresh = op.r * op.s - reused;
        plan.newInputBytesPerWindow = static_cast<unsigned>(
            divCeil(fresh, plan.ft.splitFactor));
    }

    plan.outputsPerSlice = divCeil(total, geom.slices);
    return plan;
}

PoolPlan
planPool(const dnn::PoolOp &op, const cache::Geometry &geom)
{
    constexpr unsigned bits = 8;

    PoolPlan plan;
    plan.windows = op.windowCount();
    plan.windowSize = op.r * op.s;
    plan.inputRows = plan.windowSize * bits;
    // One lane per pooled output: channels and window positions both
    // spread across bit lines (no cross-lane reduction needed; the
    // window's inputs stream through each lane serially).
    plan.parallelWindows =
        uint64_t(geom.computeArrays()) * geom.arrayCols;
    plan.serialPasses = divCeil(plan.windows, plan.parallelWindows);
    plan.utilization =
        static_cast<double>(plan.windows) /
        (static_cast<double>(plan.serialPasses) * plan.parallelWindows);
    return plan;
}

} // namespace nc::mapping
