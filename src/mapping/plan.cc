#include "mapping/plan.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::mapping
{

ConvPlan
planConv(const dnn::ConvOp &op, const cache::Geometry &geom,
         const TransformLimits &lim, const RowBudget &budget)
{
    constexpr unsigned bits = 8;

    ConvPlan plan;
    plan.ft = transformFilter(op, lim);

    plan.lanesPerConv = plan.ft.paddedChannels;
    unsigned cols = geom.arrayCols;

    if (plan.lanesPerConv <= cols) {
        plan.arraysPerConv = 1;
        plan.convsPerArray = cols / plan.lanesPerConv;
    } else {
        plan.arraysPerConv = static_cast<unsigned>(
            divCeil(plan.lanesPerConv, cols));
        plan.convsPerArray = 0; // one conv spans several arrays
    }
    // Channel reduction is cheap while it stays within the two arrays
    // that share sense amps (paper packs 1x1 filters precisely to
    // guarantee this).
    plan.fitsSenseAmpPair = plan.arraysPerConv <= 2;

    unsigned compute_arrays = geom.computeArrays();
    if (plan.convsPerArray >= 1) {
        plan.parallelConvs =
            uint64_t(compute_arrays) * plan.convsPerArray;
    } else {
        plan.parallelConvs = compute_arrays / plan.arraysPerConv;
    }
    nc_assert(plan.parallelConvs > 0, "op '%s' too large for the cache",
              op.name.c_str());

    uint64_t total = op.convCount();
    plan.serialPasses = divCeil(total, plan.parallelConvs);
    plan.utilization =
        static_cast<double>(total) /
        (static_cast<double>(plan.serialPasses) * plan.parallelConvs);

    plan.filterRows = plan.ft.filterRows(bits);
    plan.inputRows = plan.ft.inputRows(bits);
    unsigned used =
        plan.filterRows + plan.inputRows + budget.overhead();
    if (used > geom.arrayRows) {
        nc_fatal("layout of '%s' needs %u rows, array has %u",
                 op.name.c_str(), used, geom.arrayRows);
    }
    plan.freeRows = geom.arrayRows - used;

    // Sliding-window input reuse: moving one stride along the row
    // re-reads r x (s - stride) bytes of the window (paper's 3x3 u1
    // example: 6 of 9 bytes reused). Packed 1x1 filters stream their
    // packed bytes fresh each time.
    if (plan.ft.packFactor > 1 || op.s <= op.stride) {
        plan.newInputBytesPerWindow = plan.ft.effRS;
    } else {
        unsigned reused = op.r * (op.s - op.stride);
        unsigned fresh = op.r * op.s - reused;
        plan.newInputBytesPerWindow = static_cast<unsigned>(
            divCeil(fresh, plan.ft.splitFactor));
    }

    plan.outputsPerSlice = divCeil(total, geom.slices);
    return plan;
}

PoolPlan
planPool(const dnn::PoolOp &op, const cache::Geometry &geom)
{
    constexpr unsigned bits = 8;

    PoolPlan plan;
    plan.windows = op.windowCount();
    plan.windowSize = op.r * op.s;
    plan.inputRows = plan.windowSize * bits;
    // One lane per pooled output: channels and window positions both
    // spread across bit lines (no cross-lane reduction needed; the
    // window's inputs stream through each lane serially).
    plan.parallelWindows =
        uint64_t(geom.computeArrays()) * geom.arrayCols;
    plan.serialPasses = divCeil(plan.windows, plan.parallelWindows);
    plan.utilization =
        static_cast<double>(plan.windows) /
        (static_cast<double>(plan.serialPasses) * plan.parallelWindows);
    return plan;
}

unsigned
convLayoutRows(unsigned c, unsigned r, unsigned s)
{
    constexpr unsigned bits = 8;
    constexpr unsigned acc_bits = 24;
    unsigned rs = r * s;
    unsigned red_bits =
        acc_bits + log2Ceil(roundUpPow2(static_cast<uint64_t>(c)));
    // filter band + input band + 2-byte scratchpad + partial sum with
    // reduction headroom + reduction scratch + the reserved zero row.
    return 2 * rs * bits + 2 * bits + red_bits +
           (red_bits > 1 ? red_bits - 1 : 1) + 1;
}

ConvRowLayout
makeConvRowLayout(const cache::Geometry &geom, unsigned c, unsigned r,
                  unsigned s)
{
    constexpr unsigned bits = 8;
    constexpr unsigned acc_bits = 24;

    ConvRowLayout l;
    l.lanes = static_cast<unsigned>(roundUpPow2(c));
    nc_assert(l.lanes <= geom.arrayCols,
              "conv layout: %u channels exceed %u lanes", c,
              geom.arrayCols);
    l.rs = r * s;
    l.redBits = acc_bits + log2Ceil(static_cast<uint64_t>(l.lanes));

    bitserial::RowAllocator rows(geom.arrayRows);
    l.filt.resize(l.rs);
    l.inp.resize(l.rs);
    for (unsigned k = 0; k < l.rs; ++k)
        l.filt[k] = rows.alloc(bits);
    for (unsigned k = 0; k < l.rs; ++k)
        l.inp[k] = rows.alloc(bits);
    l.scratch = rows.alloc(2 * bits);
    l.partial = rows.alloc(l.redBits);
    l.redScratch = rows.alloc(l.redBits > 1 ? l.redBits - 1 : 1);
    l.zrow = rows.zeroRow();
    // Keep the arithmetic row model and the real allocation in
    // lockstep: any layout change that touches one but not the other
    // trips here on the very first prepare.
    nc_assert(rows.used() + 1 == convLayoutRows(c, r, s),
              "Figure-10 row model drift: allocated %u+1, model says "
              "%u", rows.used(), convLayoutRows(c, r, s));
    return l;
}

bool
fitsFunctionalExecutor(const dnn::ConvOp &op,
                       const cache::Geometry &geom)
{
    return roundUpPow2(op.c) <= geom.arrayCols &&
           convLayoutRows(op.c, op.r, op.s) <= geom.arrayRows;
}

} // namespace nc::mapping
