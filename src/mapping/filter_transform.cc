#include "mapping/filter_transform.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::mapping
{

FilterTransform
transformFilter(const dnn::ConvOp &op, const TransformLimits &lim)
{
    nc_assert(op.c > 0 && op.r > 0 && op.s > 0, "degenerate conv '%s'",
              op.name.c_str());

    FilterTransform ft;
    ft.rs = op.r * op.s;

    if (ft.rs > lim.maxFilterBytes) {
        // Split across bit lines.
        ft.splitFactor =
            static_cast<unsigned>(divCeil(ft.rs, lim.maxFilterBytes));
        ft.effRS = static_cast<unsigned>(divCeil(ft.rs, ft.splitFactor));
        ft.effChannels = op.c * ft.splitFactor;
    } else if (ft.rs == 1 && lim.packTarget > 1) {
        // Pack channels of pointwise filters.
        ft.packFactor = std::min(lim.packTarget, op.c);
        ft.effRS = ft.packFactor;
        ft.effChannels =
            static_cast<unsigned>(divCeil(op.c, ft.packFactor));
    } else {
        ft.effRS = ft.rs;
        ft.effChannels = op.c;
    }

    ft.paddedChannels =
        static_cast<unsigned>(roundUpPow2(ft.effChannels));
    return ft;
}

} // namespace nc::mapping
