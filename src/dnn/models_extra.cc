#include "dnn/models_extra.hh"

namespace nc::dnn
{

Network
alexNet()
{
    Network net;
    net.name = "alexnet";

    // conv1: 96 x 11x11 / 4, VALID on 227 -> 55.
    net.stages.push_back(singleOpStage(
        "conv1", conv("conv1", 227, 227, 3, 11, 11, 96, 4, false)));
    net.stages.push_back(singleOpStage(
        "pool1", maxPool("pool1", 55, 55, 96, 3, 3, 2)));
    // conv2: 256 x 5x5, SAME on 27.
    net.stages.push_back(singleOpStage(
        "conv2", conv("conv2", 27, 27, 96, 5, 5, 256, 1, true)));
    net.stages.push_back(singleOpStage(
        "pool2", maxPool("pool2", 27, 27, 256, 3, 3, 2)));
    net.stages.push_back(singleOpStage(
        "conv3", conv("conv3", 13, 13, 256, 3, 3, 384, 1, true)));
    net.stages.push_back(singleOpStage(
        "conv4", conv("conv4", 13, 13, 384, 3, 3, 384, 1, true)));
    net.stages.push_back(singleOpStage(
        "conv5", conv("conv5", 13, 13, 384, 3, 3, 256, 1, true)));
    net.stages.push_back(singleOpStage(
        "pool5", maxPool("pool5", 13, 13, 256, 3, 3, 2)));
    // FC layers as 1x1 convs over the flattened activations
    // (9216 = 256 x 6 x 6), the same conversion TF applies.
    net.stages.push_back(
        singleOpStage("fc6", fullyConnected("fc6", 9216, 4096)));
    net.stages.push_back(
        singleOpStage("fc7", fullyConnected("fc7", 4096, 4096)));
    net.stages.push_back(
        singleOpStage("fc8", fullyConnected("fc8", 4096, 1000)));
    return net;
}

namespace
{

/** One VGG conv block: n 3x3 SAME convs then a 2x2/2 max pool. */
void
vggBlock(Network &net, const std::string &name, unsigned hw,
         unsigned cin, unsigned cout, unsigned convs)
{
    unsigned c = cin;
    for (unsigned i = 0; i < convs; ++i) {
        net.stages.push_back(singleOpStage(
            name + "_conv" + std::to_string(i + 1),
            conv(name + "_conv" + std::to_string(i + 1), hw, hw, c, 3,
                 3, cout, 1, true)));
        c = cout;
    }
    net.stages.push_back(singleOpStage(
        name + "_pool",
        maxPool(name + "_pool", hw, hw, cout, 2, 2, 2)));
}

} // namespace

Network
vgg16()
{
    Network net;
    net.name = "vgg16";
    vggBlock(net, "block1", 224, 3, 64, 2);
    vggBlock(net, "block2", 112, 64, 128, 2);
    vggBlock(net, "block3", 56, 128, 256, 3);
    vggBlock(net, "block4", 28, 256, 512, 3);
    vggBlock(net, "block5", 14, 512, 512, 3);
    // 25088 = 512 x 7 x 7.
    net.stages.push_back(
        singleOpStage("fc6", fullyConnected("fc6", 25088, 4096)));
    net.stages.push_back(
        singleOpStage("fc7", fullyConnected("fc7", 4096, 4096)));
    net.stages.push_back(
        singleOpStage("fc8", fullyConnected("fc8", 4096, 1000)));
    return net;
}

namespace
{

/**
 * One ResNet basic block: two 3x3 convs plus the residual merge; the
 * stride-2 variant downsamples and projects the shortcut with a 1x1.
 */
Stage
basicBlock(const std::string &name, unsigned hw, unsigned cin,
           unsigned cout, unsigned stride)
{
    unsigned out_hw = outDim(hw, 3, stride, true);
    Stage st;
    st.name = name;

    Branch main{"main",
                {conv(name + "/conv1", hw, hw, cin, 3, 3, cout, stride,
                      true),
                 conv(name + "/conv2", out_hw, out_hw, cout, 3, 3,
                      cout, 1, true),
                 eltwiseAdd(name + "/add", out_hw, out_hw, cout)}};
    st.branches.push_back(main);

    if (stride != 1 || cin != cout) {
        Branch proj{"proj",
                    {conv(name + "/proj", hw, hw, cin, 1, 1, cout,
                          stride, true)}};
        proj.shortcut = true;
        st.branches.push_back(proj);
    }
    return st;
}

} // namespace

Network
resNet18()
{
    Network net;
    net.name = "resnet18";

    net.stages.push_back(singleOpStage(
        "conv1", conv("conv1", 224, 224, 3, 7, 7, 64, 2, true)));
    net.stages.push_back(singleOpStage(
        "pool1", maxPool("pool1", 112, 112, 64, 3, 3, 2, true)));

    struct Layer
    {
        const char *name;
        unsigned hw, cin, cout, stride;
    };
    const Layer layers[] = {
        {"layer1_0", 56, 64, 64, 1},   {"layer1_1", 56, 64, 64, 1},
        {"layer2_0", 56, 64, 128, 2},  {"layer2_1", 28, 128, 128, 1},
        {"layer3_0", 28, 128, 256, 2}, {"layer3_1", 14, 256, 256, 1},
        {"layer4_0", 14, 256, 512, 2}, {"layer4_1", 7, 512, 512, 1},
    };
    for (const Layer &l : layers)
        net.stages.push_back(
            basicBlock(l.name, l.hw, l.cin, l.cout, l.stride));

    net.stages.push_back(singleOpStage(
        "avgpool", avgPool("avgpool", 7, 7, 512, 7, 7, 1, false)));
    net.stages.push_back(
        singleOpStage("fc", fullyConnected("fc", 512, 1000)));
    return net;
}

} // namespace nc::dnn
