#include "dnn/inception_v3.hh"

#include "common/logging.hh"

namespace nc::dnn
{

namespace
{

/** The four-tower 35x35 block (Mixed_5b/5c/5d). */
Stage
mixed5(const std::string &name, unsigned hw, unsigned cin,
       unsigned pool_proj)
{
    Stage st;
    st.name = name;

    Branch b0{"b0_1x1", {conv(name + "/b0/1x1", hw, hw, cin, 1, 1, 64)}};

    Branch b1{"b1_5x5",
              {conv(name + "/b1/1x1", hw, hw, cin, 1, 1, 48),
               conv(name + "/b1/5x5", hw, hw, 48, 5, 5, 64)}};

    Branch b2{"b2_3x3dbl",
              {conv(name + "/b2/1x1", hw, hw, cin, 1, 1, 64),
               conv(name + "/b2/3x3a", hw, hw, 64, 3, 3, 96),
               conv(name + "/b2/3x3b", hw, hw, 96, 3, 3, 96)}};

    Branch b3{"b3_pool",
              {avgPool(name + "/b3/pool", hw, hw, cin, 3, 3, 1),
               conv(name + "/b3/1x1", hw, hw, cin, 1, 1, pool_proj)}};

    st.branches = {b0, b1, b2, b3};
    return st;
}

/** The 35->17 reduction block (Mixed_6a). */
Stage
mixed6a(unsigned hw, unsigned cin)
{
    Stage st;
    st.name = "Mixed_6a";

    Branch b0{"b0_3x3",
              {conv("Mixed_6a/b0/3x3", hw, hw, cin, 3, 3, 384, 2,
                    /*same_pad=*/false)}};

    Branch b1{"b1_3x3dbl",
              {conv("Mixed_6a/b1/1x1", hw, hw, cin, 1, 1, 64),
               conv("Mixed_6a/b1/3x3a", hw, hw, 64, 3, 3, 96),
               conv("Mixed_6a/b1/3x3b", hw, hw, 96, 3, 3, 96, 2,
                    /*same_pad=*/false)}};

    Branch b2{"b2_pool",
              {maxPool("Mixed_6a/b2/pool", hw, hw, cin, 3, 3, 2)}};

    st.branches = {b0, b1, b2};
    return st;
}

/** The four-tower 17x17 factorized-7x7 block (Mixed_6b..6e). */
Stage
mixed6(const std::string &name, unsigned hw, unsigned cin,
       unsigned mid)
{
    Stage st;
    st.name = name;

    Branch b0{"b0_1x1", {conv(name + "/b0/1x1", hw, hw, cin, 1, 1, 192)}};

    Branch b1{"b1_7x7",
              {conv(name + "/b1/1x1", hw, hw, cin, 1, 1, mid),
               conv(name + "/b1/1x7", hw, hw, mid, 1, 7, mid),
               conv(name + "/b1/7x1", hw, hw, mid, 7, 1, 192)}};

    Branch b2{"b2_7x7dbl",
              {conv(name + "/b2/1x1", hw, hw, cin, 1, 1, mid),
               conv(name + "/b2/7x1a", hw, hw, mid, 7, 1, mid),
               conv(name + "/b2/1x7a", hw, hw, mid, 1, 7, mid),
               conv(name + "/b2/7x1b", hw, hw, mid, 7, 1, mid),
               conv(name + "/b2/1x7b", hw, hw, mid, 1, 7, 192)}};

    Branch b3{"b3_pool",
              {avgPool(name + "/b3/pool", hw, hw, cin, 3, 3, 1),
               conv(name + "/b3/1x1", hw, hw, cin, 1, 1, 192)}};

    st.branches = {b0, b1, b2, b3};
    return st;
}

/** The 17->8 reduction block (Mixed_7a). */
Stage
mixed7a(unsigned hw, unsigned cin)
{
    Stage st;
    st.name = "Mixed_7a";

    Branch b0{"b0_3x3",
              {conv("Mixed_7a/b0/1x1", hw, hw, cin, 1, 1, 192),
               conv("Mixed_7a/b0/3x3", hw, hw, 192, 3, 3, 320, 2,
                    /*same_pad=*/false)}};

    Branch b1{"b1_7x7x3",
              {conv("Mixed_7a/b1/1x1", hw, hw, cin, 1, 1, 192),
               conv("Mixed_7a/b1/1x7", hw, hw, 192, 1, 7, 192),
               conv("Mixed_7a/b1/7x1", hw, hw, 192, 7, 1, 192),
               conv("Mixed_7a/b1/3x3", hw, hw, 192, 3, 3, 192, 2,
                    /*same_pad=*/false)}};

    Branch b2{"b2_pool",
              {maxPool("Mixed_7a/b2/pool", hw, hw, cin, 3, 3, 2)}};

    st.branches = {b0, b1, b2};
    return st;
}

/**
 * The four-tower 8x8 expanded block (Mixed_7b/7c).
 *
 * Towers b1 and b2 end in a fan-out pair (1x3 and 3x1 both reading the
 * same intermediate). A Branch is a sequence, so the pair is encoded
 * back-to-back: both ops see a 384-channel 8x8 input, which preserves
 * every count the cost model consumes (convolutions, MACs, filter and
 * activation bytes); only the (unused here) value semantics differ.
 */
Stage
mixed7(const std::string &name, unsigned hw, unsigned cin)
{
    Stage st;
    st.name = name;

    Branch b0{"b0_1x1", {conv(name + "/b0/1x1", hw, hw, cin, 1, 1, 320)}};

    Branch b1{"b1_3x3split",
              {conv(name + "/b1/1x1", hw, hw, cin, 1, 1, 384),
               conv(name + "/b1/1x3", hw, hw, 384, 1, 3, 384),
               conv(name + "/b1/3x1", hw, hw, 384, 3, 1, 384)},
              /*splitTail=*/true};

    Branch b2{"b2_3x3dblsplit",
              {conv(name + "/b2/1x1", hw, hw, cin, 1, 1, 448),
               conv(name + "/b2/3x3", hw, hw, 448, 3, 3, 384),
               conv(name + "/b2/1x3", hw, hw, 384, 1, 3, 384),
               conv(name + "/b2/3x1", hw, hw, 384, 3, 1, 384)},
              /*splitTail=*/true};

    Branch b3{"b3_pool",
              {avgPool(name + "/b3/pool", hw, hw, cin, 3, 3, 1),
               conv(name + "/b3/1x1", hw, hw, cin, 1, 1, 192)}};

    st.branches = {b0, b1, b2, b3};
    return st;
}

} // namespace

Network
inceptionV3(unsigned input_hw)
{
    // Every VALID window in the stem and the stride-2 reductions must
    // still be full; 75 is the smallest input that satisfies all of
    // them (Mixed_7a's 3x3/2 needs a 3-wide 17x17-level map).
    nc_assert(input_hw >= 75,
              "inceptionV3: input %u is below the smallest VALID-"
              "window-preserving size (75)", input_hw);

    Network net;
    net.name = "inception-v3";

    // Stem (VALID padding except 2b, per TF-slim). The spatial sizes
    // flow from the input; at 299 they are the published
    // 149/147/147/73/73/71/35 chain.
    unsigned hw = input_hw;
    net.stages.push_back(singleOpStage(
        "Conv2D_1a_3x3",
        conv("Conv2D_1a_3x3", hw, hw, 3, 3, 3, 32, 2, false)));
    hw = outDim(hw, 3, 2, false);
    net.stages.push_back(singleOpStage(
        "Conv2D_2a_3x3",
        conv("Conv2D_2a_3x3", hw, hw, 32, 3, 3, 32, 1, false)));
    hw = outDim(hw, 3, 1, false);
    net.stages.push_back(singleOpStage(
        "Conv2D_2b_3x3",
        conv("Conv2D_2b_3x3", hw, hw, 32, 3, 3, 64, 1, true)));
    net.stages.push_back(singleOpStage(
        "MaxPool_3a_3x3", maxPool("MaxPool_3a_3x3", hw, hw, 64, 3, 3,
                                  2)));
    hw = outDim(hw, 3, 2, false);
    net.stages.push_back(singleOpStage(
        "Conv2D_3b_1x1",
        conv("Conv2D_3b_1x1", hw, hw, 64, 1, 1, 80, 1, true)));
    net.stages.push_back(singleOpStage(
        "Conv2D_4a_3x3",
        conv("Conv2D_4a_3x3", hw, hw, 80, 3, 3, 192, 1, false)));
    hw = outDim(hw, 3, 1, false);
    net.stages.push_back(singleOpStage(
        "MaxPool_5a_3x3", maxPool("MaxPool_5a_3x3", hw, hw, 192, 3, 3,
                                  2)));
    hw = outDim(hw, 3, 2, false);

    // 35x35-level blocks.
    net.stages.push_back(mixed5("Mixed_5b", hw, 192, 32));
    net.stages.push_back(mixed5("Mixed_5c", hw, 256, 64));
    net.stages.push_back(mixed5("Mixed_5d", hw, 288, 64));

    // 17x17-level blocks.
    net.stages.push_back(mixed6a(hw, 288));
    hw = outDim(hw, 3, 2, false);
    net.stages.push_back(mixed6("Mixed_6b", hw, 768, 128));
    net.stages.push_back(mixed6("Mixed_6c", hw, 768, 160));
    net.stages.push_back(mixed6("Mixed_6d", hw, 768, 160));
    net.stages.push_back(mixed6("Mixed_6e", hw, 768, 192));

    // 8x8-level blocks.
    net.stages.push_back(mixed7a(hw, 768));
    hw = outDim(hw, 3, 2, false);
    net.stages.push_back(mixed7("Mixed_7b", hw, 1280));
    net.stages.push_back(mixed7("Mixed_7c", hw, 2048));

    // Head: global average over whatever spatial size flowed here.
    net.stages.push_back(singleOpStage(
        "AvgPool",
        avgPool("AvgPool", hw, hw, 2048, hw, hw, 1, false)));
    net.stages.push_back(singleOpStage(
        "FullyConnected", fullyConnected("FullyConnected", 2048, 1001)));

    return net;
}

std::vector<Table1Row>
paperTable1()
{
    // name, H, E, convs, filter MiB, input MiB, convsTypo, filterTypo
    return {
        {"Conv2D_1a_3x3", 299, 149, 710432, 0.001, 0.256, false, false},
        {"Conv2D_2a_3x3", 149, 147, 691488, 0.009, 0.678, false, false},
        {"Conv2D_2b_3x3", 147, 147, 1382976, 0.018, 0.659, false, false},
        {"MaxPool_3a_3x3", 147, 73, 0, 0.000, 1.319, false, false},
        {"Conv2D_3b_1x1", 73, 73, 426320, 0.005, 0.325, false, false},
        {"Conv2D_4a_3x3", 73, 71, 967872, 0.132, 0.407, false, false},
        {"MaxPool_5a_3x3", 71, 35, 0, 0.000, 0.923, false, false},
        {"Mixed_5b", 35, 35, 568400, 0.243, 0.897, false, false},
        {"Mixed_5c", 35, 35, 607600, 0.264, 1.196, false, false},
        {"Mixed_5d", 35, 35, 607600, 0.271, 1.346, false, false},
        // Filter column understates the 384-filter reduction conv.
        {"Mixed_6a", 35, 17, 334720, 0.255, 1.009, false, true},
        {"Mixed_6b", 17, 17, 443904, 1.234, 0.847, false, false},
        {"Mixed_6c", 17, 17, 499392, 1.609, 0.847, false, false},
        {"Mixed_6d", 17, 17, 499392, 1.609, 0.847, false, false},
        // Both columns are inconsistent with the 192-wide tower
        // structure: convs should be 554880 and the filter bank holds
        // 4x 1x1 projections plus 6x 7-taps = 2.039 MiB.
        {"Mixed_6e", 17, 17, 499392, 1.898, 0.847, true, true},
        {"Mixed_7a", 17, 8, 254720, 1.617, 0.635, false, false},
        {"Mixed_7b", 8, 8, 208896, 4.805, 0.313, false, false},
        {"Mixed_7c", 8, 8, 208896, 5.789, 0.500, false, false},
        {"AvgPool", 8, 1, 0, 0.000, 0.125, false, false},
        {"FullyConnected", 1, 1, 1001, 1.955, 0.002, false, false},
    };
}

} // namespace nc::dnn
