/**
 * @file
 * TF-style 8-bit affine quantization (paper §IV, §IV-D).
 *
 * Neural Cache assumes 8-bit quantized inputs and weights. A real
 * number x maps to a uint8 q via x ~= scale * (q - zeroPoint), with
 * scale/zeroPoint derived from the observed [min, max] of the layer
 * (TensorFlow's quantization scheme). Re-quantization after a layer
 * multiplies the 32-bit accumulator by a fixed-point multiplier and
 * shifts right — the exact operations the cache performs in-situ with
 * bit-serial multiply/add/shift, using two scalars computed on the CPU.
 */

#ifndef NC_DNN_QUANTIZE_HH
#define NC_DNN_QUANTIZE_HH

#include <cstdint>

namespace nc::dnn
{

/** Affine uint8 quantization parameters. */
struct QuantParams
{
    float minVal = 0.0f;
    float maxVal = 1.0f;

    float scale() const;
    int32_t zeroPoint() const;

    uint8_t quantize(float x) const;
    float dequantize(uint8_t q) const;

    /**
     * Build parameters from an observed range, nudged so that 0.0 is
     * exactly representable (TF requirement: zero padding must be
     * exact).
     */
    static QuantParams fromRange(float lo, float hi);
};

/**
 * Decompose a positive real multiplier into a 31-bit fixed-point
 * integer multiplier and a right shift: m ~= mult * 2^-shift with
 * mult in [2^30, 2^31).
 */
void quantizeMultiplier(double m, int32_t &mult, int &shift);

/**
 * Apply a fixed-point requantization to an int32 accumulator:
 * clamp(round(acc * mult * 2^-shift) + zero_point) to uint8. This is
 * the integer-only op sequence the cache executes after computing a
 * layer (multiply, add, shift).
 */
uint8_t requantize(int32_t acc, int32_t mult, int shift,
                   int32_t zero_point);

} // namespace nc::dnn

#endif // NC_DNN_QUANTIZE_HH
