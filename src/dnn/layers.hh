/**
 * @file
 * Layer descriptors and the network graph (paper §II-A, Table I).
 *
 * A Network is a serial list of Stages (the 20 rows of Table I). A
 * Stage contains one or more Branches (the parallel towers of an
 * Inception "mixed" block); Neural Cache executes stages, and branches
 * within a stage, serially (paper §IV). A Branch is a sequence of Ops
 * (convolutions or poolings). Fully connected layers are expressed as
 * 1x1 convolutions over a 1x1 input, exactly as TensorFlow converts
 * them (paper §IV-D).
 *
 * All byte quantities assume the 8-bit quantized representation the
 * accelerator operates on (1 byte per element).
 */

#ifndef NC_DNN_LAYERS_HH
#define NC_DNN_LAYERS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nc::dnn
{

/** Kinds of primitive operations Neural Cache executes in-cache. */
enum class OpKind
{
    Conv,
    MaxPool,
    AvgPool,
    FullyConnected,
    EltwiseAdd, ///< residual-connection merge (ResNet-style)
};

const char *opKindName(OpKind k);

/** Spatial output size of a windowed op. */
unsigned outDim(unsigned in, unsigned window, unsigned stride,
                bool same_pad);

/**
 * Leading TF SAME-padding: zeros before the first element so that
 * out = ceil(in / stride) (half of the total pad, rounded down).
 * Zero for VALID windows. Every executor shares this one definition
 * so the functional backends stay bit-exact with each other.
 */
unsigned padBefore(unsigned in, unsigned window, unsigned stride,
                   bool same_pad);

/** A convolution (or FC-as-1x1-conv) over an HxWxC input. */
struct ConvOp
{
    std::string name;
    unsigned h = 0, w = 0, c = 0; ///< input height/width/channels
    unsigned r = 0, s = 0;        ///< filter height/width
    unsigned m = 0;               ///< output channels (filter batches)
    unsigned stride = 1;
    bool samePad = true;
    bool isFullyConnected = false;

    unsigned outH() const { return outDim(h, r, stride, samePad); }
    unsigned outW() const { return outDim(w, s, stride, samePad); }

    /** One convolution = one output element (paper's counting). */
    uint64_t
    convCount() const
    {
        return uint64_t(outH()) * outW() * m;
    }

    uint64_t macsPerConv() const { return uint64_t(r) * s * c; }
    uint64_t macs() const { return convCount() * macsPerConv(); }
    uint64_t flops() const { return 2 * macs(); }

    uint64_t filterBytes() const { return uint64_t(r) * s * c * m; }
    uint64_t inputBytes() const { return uint64_t(h) * w * c; }
    uint64_t
    outputBytes() const
    {
        return uint64_t(outH()) * outW() * m;
    }
};

/**
 * Element-wise addition of two same-shape tensors (a residual merge).
 * Maps trivially onto bit lines: every lane adds one element pair.
 */
struct EltwiseOp
{
    std::string name;
    unsigned h = 0, w = 0, c = 0;

    uint64_t elements() const { return uint64_t(h) * w * c; }
    /** Both operands stream in. */
    uint64_t inputBytes() const { return 2 * elements(); }
    uint64_t outputBytes() const { return elements(); }
};

/** A max/avg pooling over an HxWxC input. */
struct PoolOp
{
    std::string name;
    bool isAvg = false;
    unsigned h = 0, w = 0, c = 0;
    unsigned r = 0, s = 0;
    unsigned stride = 1;
    bool samePad = true;

    unsigned outH() const { return outDim(h, r, stride, samePad); }
    unsigned outW() const { return outDim(w, s, stride, samePad); }

    uint64_t inputBytes() const { return uint64_t(h) * w * c; }
    uint64_t
    outputBytes() const
    {
        return uint64_t(outH()) * outW() * c;
    }
    /** Pooled windows (outputs), the pool analogue of convCount(). */
    uint64_t
    windowCount() const
    {
        return uint64_t(outH()) * outW() * c;
    }
};

/** Tagged union of the primitive ops. */
struct Op
{
    OpKind kind = OpKind::Conv;
    ConvOp conv;    ///< valid for Conv / FullyConnected
    PoolOp pool;    ///< valid for MaxPool / AvgPool
    EltwiseOp elt;  ///< valid for EltwiseAdd

    bool
    isConv() const
    {
        return kind == OpKind::Conv || kind == OpKind::FullyConnected;
    }

    bool
    isPool() const
    {
        return kind == OpKind::MaxPool || kind == OpKind::AvgPool;
    }

    const std::string &name() const;

    uint64_t inputBytes() const;
    uint64_t outputBytes() const;

    static Op
    makeConv(ConvOp c)
    {
        Op o;
        o.kind = c.isFullyConnected ? OpKind::FullyConnected
                                    : OpKind::Conv;
        o.conv = std::move(c);
        return o;
    }

    static Op
    makePool(PoolOp p)
    {
        Op o;
        o.kind = p.isAvg ? OpKind::AvgPool : OpKind::MaxPool;
        o.pool = std::move(p);
        return o;
    }

    static Op
    makeEltwise(EltwiseOp e)
    {
        Op o;
        o.kind = OpKind::EltwiseAdd;
        o.elt = std::move(e);
        return o;
    }
};

/** One tower of an inception block (executed serially). */
struct Branch
{
    std::string name;
    std::vector<Op> ops;
    /**
     * Expanded towers (Mixed_7b/7c) end in a fan-out pair: the last
     * two ops both read the penultimate tensor and their outputs
     * concatenate. Encoded as a sequence plus this flag so byte/count
     * aggregates stay exact.
     */
    bool splitTail = false;
    /**
     * Residual shortcuts (ResNet) merge into the main branch's
     * element-wise add instead of concatenating, so they do not
     * contribute to the stage's output bytes.
     */
    bool shortcut = false;
};

/** One row of Table I: a stem op or a whole mixed block. */
struct Stage
{
    std::string name;
    std::vector<Branch> branches;

    /** @name Table I aggregates */
    /// @{
    uint64_t convCount() const;  ///< "Conv" column
    uint64_t filterBytes() const; ///< "Filter Size" column
    /** "Input Size" column: the stage input, once per branch. */
    uint64_t inputBytes() const;
    /** Every op's input (intermediates included); streaming lower
     * bound for in-cache data movement. */
    uint64_t activationBytes() const;
    uint64_t outputBytes() const; ///< concat of branch outputs
    uint64_t macs() const;
    uint64_t flops() const;
    /// @}

    /** Height of the stage's input feature map ("H" column). */
    unsigned inputHeight() const;
    /** Output feature-map height ("E" column). */
    unsigned outputHeight() const;
    /** Smallest/largest filter footprint RxS over the stage's convs. */
    unsigned minFilterRS() const;
    unsigned maxFilterRS() const;

    bool
    isPoolOnly() const
    {
        return convCount() == 0;
    }
};

/** A whole model. */
struct Network
{
    std::string name;
    std::vector<Stage> stages;

    uint64_t convCount() const;
    uint64_t filterBytes() const;
    uint64_t inputBytes() const;
    uint64_t macs() const;
    uint64_t flops() const;
};

/** @name Builder helpers */
/// @{
Op conv(const std::string &name, unsigned h, unsigned w, unsigned c,
        unsigned r, unsigned s, unsigned m, unsigned stride = 1,
        bool same_pad = true);
Op fullyConnected(const std::string &name, unsigned c, unsigned m);
Op maxPool(const std::string &name, unsigned h, unsigned w, unsigned c,
           unsigned r, unsigned s, unsigned stride, bool same_pad = false);
Op avgPool(const std::string &name, unsigned h, unsigned w, unsigned c,
           unsigned r, unsigned s, unsigned stride, bool same_pad = true);
Op eltwiseAdd(const std::string &name, unsigned h, unsigned w,
              unsigned c);

/** A stage holding exactly one op. */
Stage singleOpStage(const std::string &name, Op op);
/// @}

} // namespace nc::dnn

#endif // NC_DNN_LAYERS_HH
