/**
 * @file
 * Minimal CHW tensors for the DNN substrate.
 *
 * Two flavours: float Tensor for reference math, and QTensor (uint8 +
 * quantization parameters) for the 8-bit path Neural Cache executes.
 * Layout is channel-major (c, h, w), matching how the mapper walks
 * channels across bit lines.
 */

#ifndef NC_DNN_TENSOR_HH
#define NC_DNN_TENSOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dnn/quantize.hh"

namespace nc::dnn
{

/** Dense float tensor, CHW layout. */
class Tensor
{
  public:
    Tensor() = default;
    Tensor(unsigned c_, unsigned h_, unsigned w_)
        : nc_(c_), nh(h_), nw(w_),
          buf(static_cast<size_t>(c_) * h_ * w_, 0.0f)
    {
    }

    unsigned channels() const { return nc_; }
    unsigned height() const { return nh; }
    unsigned width() const { return nw; }
    size_t size() const { return buf.size(); }

    float &
    at(unsigned c, unsigned h, unsigned w)
    {
        return buf[index(c, h, w)];
    }

    float
    at(unsigned c, unsigned h, unsigned w) const
    {
        return buf[index(c, h, w)];
    }

    const std::vector<float> &data() const { return buf; }
    std::vector<float> &data() { return buf; }

    /** Min/max over all elements (0,0 for empty). */
    float minValue() const;
    float maxValue() const;

  private:
    size_t
    index(unsigned c, unsigned h, unsigned w) const
    {
        return (static_cast<size_t>(c) * nh + h) * nw + w;
    }

    unsigned nc_ = 0;
    unsigned nh = 0;
    unsigned nw = 0;
    std::vector<float> buf;
};

/** Dense uint8 tensor with its affine quantization parameters. */
class QTensor
{
  public:
    QTensor() = default;
    QTensor(unsigned c_, unsigned h_, unsigned w_, QuantParams qp_ = {})
        : nc_(c_), nh(h_), nw(w_), qp(qp_),
          buf(static_cast<size_t>(c_) * h_ * w_, 0)
    {
    }

    unsigned channels() const { return nc_; }
    unsigned height() const { return nh; }
    unsigned width() const { return nw; }
    size_t size() const { return buf.size(); }

    uint8_t &
    at(unsigned c, unsigned h, unsigned w)
    {
        return buf[index(c, h, w)];
    }

    uint8_t
    at(unsigned c, unsigned h, unsigned w) const
    {
        return buf[index(c, h, w)];
    }

    const QuantParams &params() const { return qp; }
    QuantParams &params() { return qp; }

    const std::vector<uint8_t> &data() const { return buf; }
    std::vector<uint8_t> &data() { return buf; }

    /** Quantize a float tensor with the given parameters. */
    static QTensor fromFloat(const Tensor &t, const QuantParams &qp);
    /** Dequantize back to float. */
    Tensor toFloat() const;

  private:
    size_t
    index(unsigned c, unsigned h, unsigned w) const
    {
        return (static_cast<size_t>(c) * nh + h) * nw + w;
    }

    unsigned nc_ = 0;
    unsigned nh = 0;
    unsigned nw = 0;
    QuantParams qp;
    std::vector<uint8_t> buf;
};

} // namespace nc::dnn

#endif // NC_DNN_TENSOR_HH
