#include "dnn/layers.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::dnn
{

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Conv:
        return "conv";
      case OpKind::MaxPool:
        return "maxpool";
      case OpKind::AvgPool:
        return "avgpool";
      case OpKind::FullyConnected:
        return "fc";
      case OpKind::EltwiseAdd:
        return "eltwise-add";
    }
    return "?";
}

const std::string &
Op::name() const
{
    if (isConv())
        return conv.name;
    if (isPool())
        return pool.name;
    return elt.name;
}

unsigned
outDim(unsigned in, unsigned window, unsigned stride, bool same_pad)
{
    nc_assert(stride >= 1, "zero stride");
    if (same_pad)
        return static_cast<unsigned>(divCeil(in, stride));
    nc_assert(in >= window, "window %u larger than input %u (VALID)",
              window, in);
    return (in - window) / stride + 1;
}

unsigned
padBefore(unsigned in, unsigned window, unsigned stride, bool same_pad)
{
    if (!same_pad)
        return 0;
    unsigned out = outDim(in, window, stride, true);
    unsigned covered = (out - 1) * stride + window;
    unsigned total = covered > in ? covered - in : 0;
    return total / 2;
}

uint64_t
Op::inputBytes() const
{
    if (isConv())
        return conv.inputBytes();
    if (isPool())
        return pool.inputBytes();
    return elt.inputBytes();
}

uint64_t
Op::outputBytes() const
{
    if (isConv())
        return conv.outputBytes();
    if (isPool())
        return pool.outputBytes();
    return elt.outputBytes();
}

uint64_t
Stage::convCount() const
{
    uint64_t n = 0;
    for (const auto &b : branches)
        for (const auto &op : b.ops)
            if (op.isConv())
                n += op.conv.convCount();
    return n;
}

uint64_t
Stage::filterBytes() const
{
    uint64_t n = 0;
    for (const auto &b : branches)
        for (const auto &op : b.ops)
            if (op.isConv())
                n += op.conv.filterBytes();
    return n;
}

uint64_t
Stage::inputBytes() const
{
    // Table I counts the stage's input feature map once per branch
    // (every tower re-reads it); intermediate tensors within a branch
    // stay in the compute arrays and are not part of this column.
    uint64_t n = 0;
    for (const auto &b : branches) {
        if (!b.ops.empty())
            n += b.ops.front().inputBytes();
    }
    return n;
}

uint64_t
Stage::activationBytes() const
{
    uint64_t n = 0;
    for (const auto &b : branches)
        for (const auto &op : b.ops)
            n += op.inputBytes();
    return n;
}

uint64_t
Stage::outputBytes() const
{
    uint64_t n = 0;
    for (const auto &b : branches) {
        if (b.ops.empty() || b.shortcut)
            continue;
        n += b.ops.back().outputBytes();
        if (b.splitTail && b.ops.size() >= 2)
            n += b.ops[b.ops.size() - 2].outputBytes();
    }
    return n;
}

uint64_t
Stage::macs() const
{
    uint64_t n = 0;
    for (const auto &b : branches)
        for (const auto &op : b.ops)
            if (op.isConv())
                n += op.conv.macs();
    return n;
}

uint64_t
Stage::flops() const
{
    return 2 * macs();
}

unsigned
Stage::inputHeight() const
{
    nc_assert(!branches.empty() && !branches[0].ops.empty(),
              "empty stage '%s'", name.c_str());
    const Op &op = branches[0].ops[0];
    if (op.isConv())
        return op.conv.h;
    return op.isPool() ? op.pool.h : op.elt.h;
}

unsigned
Stage::outputHeight() const
{
    nc_assert(!branches.empty() && !branches[0].ops.empty(),
              "empty stage '%s'", name.c_str());
    const Op &op = branches[0].ops.back();
    if (op.isConv())
        return op.conv.outH();
    return op.isPool() ? op.pool.outH() : op.elt.h;
}

unsigned
Stage::minFilterRS() const
{
    unsigned best = 0;
    for (const auto &b : branches)
        for (const auto &op : b.ops)
            if (op.isConv()) {
                unsigned rs = op.conv.r * op.conv.s;
                best = best == 0 ? rs : std::min(best, rs);
            }
    return best;
}

unsigned
Stage::maxFilterRS() const
{
    unsigned best = 0;
    for (const auto &b : branches)
        for (const auto &op : b.ops)
            if (op.isConv())
                best = std::max(best, op.conv.r * op.conv.s);
    return best;
}

uint64_t
Network::convCount() const
{
    uint64_t n = 0;
    for (const auto &s : stages)
        n += s.convCount();
    return n;
}

uint64_t
Network::filterBytes() const
{
    uint64_t n = 0;
    for (const auto &s : stages)
        n += s.filterBytes();
    return n;
}

uint64_t
Network::inputBytes() const
{
    uint64_t n = 0;
    for (const auto &s : stages)
        n += s.inputBytes();
    return n;
}

uint64_t
Network::macs() const
{
    uint64_t n = 0;
    for (const auto &s : stages)
        n += s.macs();
    return n;
}

uint64_t
Network::flops() const
{
    return 2 * macs();
}

Op
conv(const std::string &name, unsigned h, unsigned w, unsigned c,
     unsigned r, unsigned s, unsigned m, unsigned stride, bool same_pad)
{
    ConvOp op;
    op.name = name;
    op.h = h;
    op.w = w;
    op.c = c;
    op.r = r;
    op.s = s;
    op.m = m;
    op.stride = stride;
    op.samePad = same_pad;
    return Op::makeConv(op);
}

Op
fullyConnected(const std::string &name, unsigned c, unsigned m)
{
    ConvOp op;
    op.name = name;
    op.h = 1;
    op.w = 1;
    op.c = c;
    op.r = 1;
    op.s = 1;
    op.m = m;
    op.stride = 1;
    op.samePad = true;
    op.isFullyConnected = true;
    return Op::makeConv(op);
}

Op
maxPool(const std::string &name, unsigned h, unsigned w, unsigned c,
        unsigned r, unsigned s, unsigned stride, bool same_pad)
{
    PoolOp op;
    op.name = name;
    op.isAvg = false;
    op.h = h;
    op.w = w;
    op.c = c;
    op.r = r;
    op.s = s;
    op.stride = stride;
    op.samePad = same_pad;
    return Op::makePool(op);
}

Op
avgPool(const std::string &name, unsigned h, unsigned w, unsigned c,
        unsigned r, unsigned s, unsigned stride, bool same_pad)
{
    PoolOp op;
    op.name = name;
    op.isAvg = true;
    op.h = h;
    op.w = w;
    op.c = c;
    op.r = r;
    op.s = s;
    op.stride = stride;
    op.samePad = same_pad;
    return Op::makePool(op);
}

Op
eltwiseAdd(const std::string &name, unsigned h, unsigned w, unsigned c)
{
    EltwiseOp op;
    op.name = name;
    op.h = h;
    op.w = w;
    op.c = c;
    return Op::makeEltwise(op);
}

Stage
singleOpStage(const std::string &name, Op op)
{
    Stage st;
    st.name = name;
    st.branches.push_back(Branch{name, {std::move(op)}});
    return st;
}

} // namespace nc::dnn
