#include "dnn/reference.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace nc::dnn
{

Tensor
convFloat(const Tensor &in, const Weights &w, unsigned stride,
          bool same_pad)
{
    nc_assert(in.channels() == w.c, "channel mismatch %u vs %u",
              in.channels(), w.c);
    unsigned oh = outDim(in.height(), w.r, stride, same_pad);
    unsigned ow = outDim(in.width(), w.s, stride, same_pad);
    unsigned ph = padBefore(in.height(), w.r, stride, same_pad);
    unsigned pw = padBefore(in.width(), w.s, stride, same_pad);

    Tensor out(w.m, oh, ow);
    for (unsigned mi = 0; mi < w.m; ++mi) {
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned x = 0; x < ow; ++x) {
                float acc = 0.0f;
                for (unsigned ci = 0; ci < w.c; ++ci) {
                    for (unsigned ri = 0; ri < w.r; ++ri) {
                        for (unsigned si = 0; si < w.s; ++si) {
                            int iy = static_cast<int>(y * stride + ri) -
                                     static_cast<int>(ph);
                            int ix = static_cast<int>(x * stride + si) -
                                     static_cast<int>(pw);
                            if (iy < 0 || ix < 0 ||
                                iy >= static_cast<int>(in.height()) ||
                                ix >= static_cast<int>(in.width()))
                                continue;
                            acc += in.at(ci, iy, ix) *
                                   w.at(mi, ci, ri, si);
                        }
                    }
                }
                out.at(mi, y, x) = acc;
            }
        }
    }
    return out;
}

Tensor
maxPoolFloat(const Tensor &in, unsigned r, unsigned s, unsigned stride,
             bool same_pad)
{
    unsigned oh = outDim(in.height(), r, stride, same_pad);
    unsigned ow = outDim(in.width(), s, stride, same_pad);
    unsigned ph = padBefore(in.height(), r, stride, same_pad);
    unsigned pw = padBefore(in.width(), s, stride, same_pad);

    Tensor out(in.channels(), oh, ow);
    for (unsigned ci = 0; ci < in.channels(); ++ci) {
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned x = 0; x < ow; ++x) {
                float best = -std::numeric_limits<float>::infinity();
                for (unsigned ri = 0; ri < r; ++ri) {
                    for (unsigned si = 0; si < s; ++si) {
                        int iy = static_cast<int>(y * stride + ri) -
                                 static_cast<int>(ph);
                        int ix = static_cast<int>(x * stride + si) -
                                 static_cast<int>(pw);
                        if (iy < 0 || ix < 0 ||
                            iy >= static_cast<int>(in.height()) ||
                            ix >= static_cast<int>(in.width()))
                            continue;
                        best = std::max(best, in.at(ci, iy, ix));
                    }
                }
                out.at(ci, y, x) = best;
            }
        }
    }
    return out;
}

Tensor
avgPoolFloat(const Tensor &in, unsigned r, unsigned s, unsigned stride,
             bool same_pad)
{
    unsigned oh = outDim(in.height(), r, stride, same_pad);
    unsigned ow = outDim(in.width(), s, stride, same_pad);
    unsigned ph = padBefore(in.height(), r, stride, same_pad);
    unsigned pw = padBefore(in.width(), s, stride, same_pad);

    Tensor out(in.channels(), oh, ow);
    for (unsigned ci = 0; ci < in.channels(); ++ci) {
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned x = 0; x < ow; ++x) {
                float sum = 0.0f;
                unsigned n = 0;
                for (unsigned ri = 0; ri < r; ++ri) {
                    for (unsigned si = 0; si < s; ++si) {
                        int iy = static_cast<int>(y * stride + ri) -
                                 static_cast<int>(ph);
                        int ix = static_cast<int>(x * stride + si) -
                                 static_cast<int>(pw);
                        if (iy < 0 || ix < 0 ||
                            iy >= static_cast<int>(in.height()) ||
                            ix >= static_cast<int>(in.width()))
                            continue;
                        sum += in.at(ci, iy, ix);
                        ++n;
                    }
                }
                out.at(ci, y, x) = n ? sum / static_cast<float>(n) : 0;
            }
        }
    }
    return out;
}

Tensor
reluFloat(const Tensor &in)
{
    Tensor out(in.channels(), in.height(), in.width());
    for (size_t i = 0; i < in.size(); ++i)
        out.data()[i] = std::max(0.0f, in.data()[i]);
    return out;
}

std::vector<int32_t>
convQuant(const QTensor &in, const QWeights &w, unsigned stride,
          bool same_pad, unsigned &out_h, unsigned &out_w)
{
    nc_assert(in.channels() == w.c, "channel mismatch %u vs %u",
              in.channels(), w.c);
    out_h = outDim(in.height(), w.r, stride, same_pad);
    out_w = outDim(in.width(), w.s, stride, same_pad);
    unsigned ph = padBefore(in.height(), w.r, stride, same_pad);
    unsigned pw = padBefore(in.width(), w.s, stride, same_pad);
    int32_t zi = in.params().zeroPoint();
    int32_t zw = w.qp.zeroPoint();

    std::vector<int32_t> out(
        static_cast<size_t>(w.m) * out_h * out_w, 0);
    for (unsigned mi = 0; mi < w.m; ++mi) {
        for (unsigned y = 0; y < out_h; ++y) {
            for (unsigned x = 0; x < out_w; ++x) {
                int32_t acc = 0;
                for (unsigned ci = 0; ci < w.c; ++ci) {
                    for (unsigned ri = 0; ri < w.r; ++ri) {
                        for (unsigned si = 0; si < w.s; ++si) {
                            int iy = static_cast<int>(y * stride + ri) -
                                     static_cast<int>(ph);
                            int ix = static_cast<int>(x * stride + si) -
                                     static_cast<int>(pw);
                            // Zero padding quantizes to the zero
                            // point, whose offset-removed value is 0.
                            int32_t iv =
                                (iy < 0 || ix < 0 ||
                                 iy >= static_cast<int>(in.height()) ||
                                 ix >= static_cast<int>(in.width()))
                                    ? zi
                                    : in.at(ci, iy, ix);
                            int32_t wv = w.at(mi, ci, ri, si);
                            acc += (iv - zi) * (wv - zw);
                        }
                    }
                }
                out[(static_cast<size_t>(mi) * out_h + y) * out_w + x] =
                    acc;
            }
        }
    }
    return out;
}

std::vector<uint32_t>
convQuantUnsigned(const QTensor &in, const QWeights &w, unsigned stride,
                  bool same_pad, unsigned &out_h, unsigned &out_w)
{
    nc_assert(in.channels() == w.c, "channel mismatch %u vs %u",
              in.channels(), w.c);
    out_h = outDim(in.height(), w.r, stride, same_pad);
    out_w = outDim(in.width(), w.s, stride, same_pad);
    unsigned ph = padBefore(in.height(), w.r, stride, same_pad);
    unsigned pw = padBefore(in.width(), w.s, stride, same_pad);

    std::vector<uint32_t> out(
        static_cast<size_t>(w.m) * out_h * out_w, 0);
    for (unsigned mi = 0; mi < w.m; ++mi) {
        for (unsigned y = 0; y < out_h; ++y) {
            for (unsigned x = 0; x < out_w; ++x) {
                uint32_t acc = 0;
                for (unsigned ci = 0; ci < w.c; ++ci) {
                    for (unsigned ri = 0; ri < w.r; ++ri) {
                        for (unsigned si = 0; si < w.s; ++si) {
                            int iy = static_cast<int>(y * stride + ri) -
                                     static_cast<int>(ph);
                            int ix = static_cast<int>(x * stride + si) -
                                     static_cast<int>(pw);
                            if (iy < 0 || ix < 0 ||
                                iy >= static_cast<int>(in.height()) ||
                                ix >= static_cast<int>(in.width()))
                                continue;
                            acc += uint32_t(in.at(ci, iy, ix)) *
                                   uint32_t(w.at(mi, ci, ri, si));
                        }
                    }
                }
                out[(static_cast<size_t>(mi) * out_h + y) * out_w + x] =
                    acc;
            }
        }
    }
    return out;
}

QTensor
maxPoolQuant(const QTensor &in, unsigned r, unsigned s, unsigned stride,
             bool same_pad)
{
    unsigned oh = outDim(in.height(), r, stride, same_pad);
    unsigned ow = outDim(in.width(), s, stride, same_pad);
    unsigned ph = padBefore(in.height(), r, stride, same_pad);
    unsigned pw = padBefore(in.width(), s, stride, same_pad);

    QTensor out(in.channels(), oh, ow, in.params());
    for (unsigned ci = 0; ci < in.channels(); ++ci) {
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned x = 0; x < ow; ++x) {
                uint8_t best = 0;
                for (unsigned ri = 0; ri < r; ++ri) {
                    for (unsigned si = 0; si < s; ++si) {
                        int iy = static_cast<int>(y * stride + ri) -
                                 static_cast<int>(ph);
                        int ix = static_cast<int>(x * stride + si) -
                                 static_cast<int>(pw);
                        if (iy < 0 || ix < 0 ||
                            iy >= static_cast<int>(in.height()) ||
                            ix >= static_cast<int>(in.width()))
                            continue;
                        best = std::max(best, in.at(ci, iy, ix));
                    }
                }
                out.at(ci, y, x) = best;
            }
        }
    }
    return out;
}

QTensor
avgPoolQuant(const QTensor &in, unsigned r, unsigned s, unsigned stride)
{
    return avgPoolQuant(in, r, s, stride, false);
}

QTensor
avgPoolQuant(const QTensor &in, unsigned r, unsigned s, unsigned stride,
             bool same_pad)
{
    unsigned oh = outDim(in.height(), r, stride, same_pad);
    unsigned ow = outDim(in.width(), s, stride, same_pad);
    unsigned ph = padBefore(in.height(), r, stride, same_pad);
    unsigned pw = padBefore(in.width(), s, stride, same_pad);

    QTensor out(in.channels(), oh, ow, in.params());
    for (unsigned ci = 0; ci < in.channels(); ++ci) {
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned x = 0; x < ow; ++x) {
                uint32_t sum = 0;
                unsigned count = 0;
                for (unsigned ri = 0; ri < r; ++ri) {
                    for (unsigned si = 0; si < s; ++si) {
                        int iy = static_cast<int>(y * stride + ri) -
                                 static_cast<int>(ph);
                        int ix = static_cast<int>(x * stride + si) -
                                 static_cast<int>(pw);
                        if (iy < 0 || ix < 0 ||
                            iy >= static_cast<int>(in.height()) ||
                            ix >= static_cast<int>(in.width()))
                            continue;
                        sum += in.at(ci, iy, ix);
                        ++count;
                    }
                }
                // Truncating division by the valid-element count (TF
                // SAME averages exclude padding), as the in-array
                // shift/divide sequence produces (read back modulo
                // 256).
                out.at(ci, y, x) =
                    static_cast<uint8_t>((sum / count) & 0xff);
            }
        }
    }
    return out;
}

std::vector<uint8_t>
eltwiseAddQuant(const std::vector<uint8_t> &a,
                const std::vector<uint8_t> &b, uint8_t mult,
                unsigned shift)
{
    nc_assert(a.size() == b.size(),
              "eltwise operands differ: %zu vs %zu elements", a.size(),
              b.size());
    std::vector<uint8_t> out(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        uint64_t t = ((static_cast<uint64_t>(a[i]) + b[i]) * mult) >>
                     shift;
        out[i] = static_cast<uint8_t>(t > 0xff ? 0xff : t);
    }
    return out;
}

QTensor
eltwiseAddQuant(const QTensor &a, const QTensor &b, uint8_t mult,
                unsigned shift)
{
    nc_assert(a.channels() == b.channels() &&
                  a.height() == b.height() && a.width() == b.width(),
              "eltwise operands differ: %ux%ux%u vs %ux%ux%u",
              a.channels(), a.height(), a.width(), b.channels(),
              b.height(), b.width());
    QTensor out(a.channels(), a.height(), a.width(), a.params());
    out.data() = eltwiseAddQuant(a.data(), b.data(), mult, shift);
    return out;
}

} // namespace nc::dnn
