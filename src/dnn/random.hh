/**
 * @file
 * Seeded random tensors and filter banks.
 *
 * Every workload that needs synthetic data — engine auto-weights,
 * examples, randomized tests — draws through these helpers so a run
 * is reproducible from one seed.
 */

#ifndef NC_DNN_RANDOM_HH
#define NC_DNN_RANDOM_HH

#include "common/rng.hh"
#include "dnn/reference.hh"
#include "dnn/tensor.hh"

namespace nc::dnn
{

/** Uniform random uint8 CHW tensor. */
inline QTensor
randomQTensor(Rng &rng, unsigned c, unsigned h, unsigned w,
              QuantParams qp = {})
{
    QTensor t(c, h, w, qp);
    for (auto &v : t.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return t;
}

/** Uniform random uint8 MCRS filter bank. */
inline QWeights
randomQWeights(Rng &rng, unsigned m, unsigned c, unsigned r,
               unsigned s, QuantParams qp = {})
{
    QWeights w(m, c, r, s, qp);
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return w;
}

} // namespace nc::dnn

#endif // NC_DNN_RANDOM_HH
