/**
 * @file
 * Additional classic CNN workloads.
 *
 * The paper evaluates Inception v3 but positions Neural Cache as a
 * general DNN accelerator ("While Neural Cache can accelerate the
 * broader class of DNNs, this paper focuses on CNNs", §II-A). AlexNet
 * and VGG-16 exercise very different corners of the mapper: AlexNet's
 * 11x11/5x5 filters stress filter splitting, VGG's 3x3-everywhere
 * stacks stress input reuse, and both end in enormous FC layers that
 * stress filter packing.
 */

#ifndef NC_DNN_MODELS_EXTRA_HH
#define NC_DNN_MODELS_EXTRA_HH

#include "dnn/layers.hh"

namespace nc::dnn
{

/** AlexNet (Krizhevsky et al., 2012), 227x227x3 input. */
Network alexNet();

/** VGG-16 configuration D (Simonyan & Zisserman, 2015), 224x224x3. */
Network vgg16();

/**
 * ResNet-18 (He et al., 2016), 224x224x3. Residual shortcuts use the
 * EltwiseAdd op — a natural fit for bit-serial vector addition —
 * with projection convs on the stride-2 blocks.
 */
Network resNet18();

} // namespace nc::dnn

#endif // NC_DNN_MODELS_EXTRA_HH
