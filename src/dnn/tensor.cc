#include "dnn/tensor.hh"

#include <algorithm>

namespace nc::dnn
{

float
Tensor::minValue() const
{
    if (buf.empty())
        return 0.0f;
    return *std::min_element(buf.begin(), buf.end());
}

float
Tensor::maxValue() const
{
    if (buf.empty())
        return 0.0f;
    return *std::max_element(buf.begin(), buf.end());
}

QTensor
QTensor::fromFloat(const Tensor &t, const QuantParams &qp)
{
    QTensor q(t.channels(), t.height(), t.width(), qp);
    for (size_t i = 0; i < t.size(); ++i)
        q.data()[i] = qp.quantize(t.data()[i]);
    return q;
}

Tensor
QTensor::toFloat() const
{
    Tensor t(nc_, nh, nw);
    for (size_t i = 0; i < buf.size(); ++i)
        t.data()[i] = qp.dequantize(buf[i]);
    return t;
}

} // namespace nc::dnn
