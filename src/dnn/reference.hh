/**
 * @file
 * Reference executors for the DNN primitives.
 *
 * These are straightforward, obviously-correct loops used as ground
 * truth: the bit-serial functional executor must match the quantized
 * reference exactly, and the quantized path must track the float path
 * within quantization error. They stand in for the paper's TensorFlow
 * trace-matching verification (DESIGN.md §4.5).
 */

#ifndef NC_DNN_REFERENCE_HH
#define NC_DNN_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "dnn/layers.hh"
#include "dnn/tensor.hh"

namespace nc::dnn
{

/** MCRS filter bank (m outer, then c, r, s) of floats. */
struct Weights
{
    unsigned m = 0, c = 0, r = 0, s = 0;
    std::vector<float> data;

    Weights() = default;
    Weights(unsigned m_, unsigned c_, unsigned r_, unsigned s_)
        : m(m_), c(c_), r(r_), s(s_),
          data(static_cast<size_t>(m_) * c_ * r_ * s_, 0.0f)
    {
    }

    float &
    at(unsigned mi, unsigned ci, unsigned ri, unsigned si)
    {
        return data[((static_cast<size_t>(mi) * c + ci) * r + ri) * s +
                    si];
    }

    float
    at(unsigned mi, unsigned ci, unsigned ri, unsigned si) const
    {
        return data[((static_cast<size_t>(mi) * c + ci) * r + ri) * s +
                    si];
    }
};

/** uint8 filter bank with its quantization parameters. */
struct QWeights
{
    unsigned m = 0, c = 0, r = 0, s = 0;
    QuantParams qp;
    std::vector<uint8_t> data;

    QWeights() = default;
    QWeights(unsigned m_, unsigned c_, unsigned r_, unsigned s_,
             QuantParams qp_ = {})
        : m(m_), c(c_), r(r_), s(s_), qp(qp_),
          data(static_cast<size_t>(m_) * c_ * r_ * s_, 0)
    {
    }

    uint8_t &
    at(unsigned mi, unsigned ci, unsigned ri, unsigned si)
    {
        return data[((static_cast<size_t>(mi) * c + ci) * r + ri) * s +
                    si];
    }

    uint8_t
    at(unsigned mi, unsigned ci, unsigned ri, unsigned si) const
    {
        return data[((static_cast<size_t>(mi) * c + ci) * r + ri) * s +
                    si];
    }
};

/** @name Float reference ops */
/// @{
Tensor convFloat(const Tensor &in, const Weights &w, unsigned stride,
                 bool same_pad);
Tensor maxPoolFloat(const Tensor &in, unsigned r, unsigned s,
                    unsigned stride, bool same_pad);
Tensor avgPoolFloat(const Tensor &in, unsigned r, unsigned s,
                    unsigned stride, bool same_pad);
Tensor reluFloat(const Tensor &in);
/// @}

/**
 * Quantized convolution: uint8 input x uint8 weights with zero-point
 * offsets removed, accumulated in int32 — the arithmetic Neural Cache
 * performs in the arrays (acc = sum (in - zi) * (w - zw)). Output is
 * the raw int32 accumulator per (m, oh, ow); requantization is a
 * separate step so tests can compare accumulators bit-exactly.
 */
std::vector<int32_t> convQuant(const QTensor &in, const QWeights &w,
                               unsigned stride, bool same_pad,
                               unsigned &out_h, unsigned &out_w);

/**
 * Unsigned-only quantized convolution (no zero-point subtraction):
 * acc = sum in * w over the window. This is the exact operation the
 * bit-serial functional executor implements, so integration tests
 * compare against it bit for bit.
 */
std::vector<uint32_t> convQuantUnsigned(const QTensor &in,
                                        const QWeights &w,
                                        unsigned stride, bool same_pad,
                                        unsigned &out_h,
                                        unsigned &out_w);

/** Quantized max pooling (uint8 passes through unchanged). */
QTensor maxPoolQuant(const QTensor &in, unsigned r, unsigned s,
                     unsigned stride, bool same_pad);

/**
 * Quantized average pooling, VALID windows, mirroring the bit-serial
 * implementation exactly: window sum followed by a truncating (floor)
 * division by the window size — a shift when RxS is a power of two,
 * restoring division otherwise (paper §IV-D). Ground truth for
 * Executor::avgPool.
 */
QTensor avgPoolQuant(const QTensor &in, unsigned r, unsigned s,
                     unsigned stride);

/**
 * Quantized average pooling with optional TF SAME padding: partial
 * windows divide by the number of valid elements (padding excluded
 * from the average, as TensorFlow computes it), still truncating.
 */
QTensor avgPoolQuant(const QTensor &in, unsigned r, unsigned s,
                     unsigned stride, bool same_pad);

/**
 * Quantized residual merge (§IV-D fixed point): out = sat8(((a + b) *
 * mult) >> shift) per element, with compile-time calibrated scalars —
 * the oracle the bit-serial eltwise kernel is pinned to.
 */
std::vector<uint8_t> eltwiseAddQuant(const std::vector<uint8_t> &a,
                                     const std::vector<uint8_t> &b,
                                     uint8_t mult, unsigned shift);
QTensor eltwiseAddQuant(const QTensor &a, const QTensor &b,
                        uint8_t mult, unsigned shift);

} // namespace nc::dnn

#endif // NC_DNN_REFERENCE_HH
