/**
 * @file
 * The Inception v3 model (Szegedy et al., CVPR 2016) at branch-level
 * detail — the paper's evaluation workload (Table I, 94 conv
 * sub-layers across 20 stages).
 *
 * The graph follows the TF-slim reference implementation: stem convs
 * use VALID padding, in-block convs use SAME padding, and all stride-2
 * reductions are VALID, which is exactly the combination that
 * reproduces the per-stage convolution counts of Table I. Two entries
 * of the published table are arithmetically inconsistent with the
 * model structure (documented as `knownTypo` below and in
 * EXPERIMENTS.md): Mixed_6e's conv count repeats the 6c/6d value
 * although 6e uses 192-wide towers, and Mixed_6a's filter size is
 * far below the parameter count of its own 384-filter reduction conv.
 */

#ifndef NC_DNN_INCEPTION_V3_HH
#define NC_DNN_INCEPTION_V3_HH

#include <vector>

#include "dnn/layers.hh"

namespace nc::dnn
{

/**
 * Build the full 20-stage Inception v3 network. The default 299x299
 * input reproduces Table I exactly. Other input sizes keep the whole
 * topology — every tower, channel width, padding mode, and the
 * global-average head (whose window follows the flowing feature-map
 * size) — while scaling the spatial extents, which is what makes a
 * full functional (bit-serial) run CI-affordable. The input must be
 * large enough that every VALID reduction still has a full window
 * (>= 75).
 */
Network inceptionV3(unsigned input_hw = 299);

/** One published row of Table I, for validation. */
struct Table1Row
{
    std::string name;
    unsigned h;        ///< input feature-map height
    unsigned e;        ///< output feature-map height
    uint64_t convs;    ///< "Conv" column
    double filterMiB;  ///< "Filter Size / MB" column
    double inputMiB;   ///< "Input Size / MB" column
    bool convsTypo = false;  ///< conv count inconsistent in the paper
    bool filterTypo = false; ///< filter size inconsistent in the paper
};

/** The published Table I. */
std::vector<Table1Row> paperTable1();

} // namespace nc::dnn

#endif // NC_DNN_INCEPTION_V3_HH
