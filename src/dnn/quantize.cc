#include "dnn/quantize.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace nc::dnn
{

float
QuantParams::scale() const
{
    return (maxVal - minVal) / 255.0f;
}

int32_t
QuantParams::zeroPoint() const
{
    float z = -minVal / scale();
    return static_cast<int32_t>(
        std::clamp(std::lround(z), 0l, 255l));
}

uint8_t
QuantParams::quantize(float x) const
{
    long q = std::lround(x / scale()) + zeroPoint();
    return static_cast<uint8_t>(std::clamp(q, 0l, 255l));
}

float
QuantParams::dequantize(uint8_t q) const
{
    return scale() * (static_cast<int32_t>(q) - zeroPoint());
}

QuantParams
QuantParams::fromRange(float lo, float hi)
{
    // Always include zero so padding quantizes exactly, and keep the
    // range non-degenerate.
    lo = std::min(lo, 0.0f);
    hi = std::max(hi, 0.0f);
    if (hi - lo < 1e-6f)
        hi = lo + 1e-6f;

    QuantParams qp{lo, hi};
    // Nudge min so the zero point is an integer (TF's scheme).
    float z = -lo / qp.scale();
    float zr = std::round(z);
    qp.minVal = -zr * qp.scale();
    return qp;
}

void
quantizeMultiplier(double m, int32_t &mult, int &shift)
{
    nc_assert(m > 0.0, "multiplier must be positive, got %f", m);
    shift = 0;
    while (m < 0.5) {
        m *= 2.0;
        ++shift;
    }
    while (m >= 1.0) {
        m /= 2.0;
        --shift;
    }
    // m in [0.5, 1): mult in [2^30, 2^31).
    auto q = static_cast<int64_t>(std::llround(m * (int64_t(1) << 31)));
    if (q == (int64_t(1) << 31)) {
        q /= 2;
        --shift;
    }
    mult = static_cast<int32_t>(q);
    shift += 31;
}

uint8_t
requantize(int32_t acc, int32_t mult, int shift, int32_t zero_point)
{
    nc_assert(shift >= 0 && shift < 64, "bad requantize shift %d", shift);
    // Rounded multiply-shift in 64-bit, exactly what a widened
    // bit-serial multiply + shift performs.
    int64_t prod = static_cast<int64_t>(acc) * mult;
    int64_t rounding = int64_t(1) << (shift - 1);
    int64_t shifted = (prod + rounding) >> shift;
    int64_t q = shifted + zero_point;
    return static_cast<uint8_t>(std::clamp<int64_t>(q, 0, 255));
}

} // namespace nc::dnn
