#include "core/compiled_model.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace nc::core
{

CompiledModel::CompiledModel() = default;
CompiledModel::CompiledModel(CompiledModel &&) noexcept = default;
CompiledModel &CompiledModel::operator=(CompiledModel &&) noexcept =
    default;
CompiledModel::~CompiledModel() = default;

unsigned
CompiledModel::threads() const
{
    return pool ? pool->size() : 1;
}

const CompiledLayer *
CompiledModel::findLayer(std::string_view name) const
{
    for (const auto &layer : layers)
        if (layer.op.name() == name)
            return &layer;
    return nullptr;
}

InferenceReport
CompiledModel::report(unsigned batch) const
{
    // Degenerate sizes are hard errors here — callers (runBatch,
    // benches, servers) are not trusted to pre-filter them.
    nc_assert(batch >= 1, "report: batch 0 for network '%s'",
              net.name.c_str());
    nc_assert(batch <= kMaxBatch,
              "report: batch %u exceeds the %u ceiling for '%s'",
              batch, kMaxBatch, net.name.c_str());
    // The compile-time banding is authoritative: the report prices
    // exactly the slot/pass structure runBatch executes (which a
    // per-layer reference override, say, can shrink below the
    // all-functional net-level estimate).
    return analytic->report(net, stageCosts, batch, &bandPlan);
}

Backend &
CompiledModel::backendFor(BackendKind k)
{
    Backend *b = nullptr;
    switch (k) {
      case BackendKind::Reference:
        b = refBackend.get();
        break;
      case BackendKind::Functional:
        b = funcBackend.get();
        break;
      case BackendKind::Isa:
        b = isaBackend.get();
        break;
      case BackendKind::Analytic:
        b = analytic.get();
        break;
    }
    nc_assert(b, "backend '%s' was not instantiated at compile time",
              backendKindName(k));
    return *b;
}

dnn::QTensor
CompiledModel::runOp(CompiledLayer &layer, dnn::QTensor act,
                     const ExecContext &ctx)
{
    Backend &b = backendFor(layer.backend);
    switch (layer.op.kind) {
      case dnn::OpKind::FullyConnected:
        // Flatten CHW into channels, as TF does for FC-as-1x1.
        if (act.height() != 1 || act.width() != 1) {
            dnn::QTensor flat(
                act.channels() * act.height() * act.width(), 1, 1,
                act.params());
            flat.data() = std::move(act.data());
            act = std::move(flat);
        }
        [[fallthrough]];
      case dnn::OpKind::Conv: {
        unsigned oh = 0, ow = 0;
        auto acc = b.conv(layer, act, oh, ow, ctx);
        auto bytes = b.requantize(layer, acc, ctx);
        dnn::QTensor next(layer.op.conv.m, oh, ow);
        next.data() = std::move(bytes);
        return next;
      }
      case dnn::OpKind::MaxPool:
        return b.maxPool(layer, act, ctx);
      case dnn::OpKind::AvgPool:
        return b.avgPool(layer, act, ctx);
      case dnn::OpKind::EltwiseAdd:
        nc_panic("eltwise '%s' is a merge, not a chain op (run loop "
                 "bug)", layer.op.name().c_str());
    }
    nc_panic("unreachable op kind");
}

dnn::QTensor
CompiledModel::runBranch(const CompiledBranch &branch,
                         dnn::QTensor input, const ExecContext &ctx)
{
    // The serial prefix (the trailing eltwise merge, if any, is
    // applied by the caller once the shortcut operand exists).
    size_t n = branch.layerIdx.size();
    if (branch.endsWithEltwise)
        --n;
    size_t serial = branch.splitTail ? n - 2 : n;

    dnn::QTensor act = std::move(input);
    for (size_t i = 0; i < serial; ++i)
        act = runOp(layers[branch.layerIdx[i]], std::move(act), ctx);

    if (branch.splitTail) {
        // The expanded-tower fan-out (Mixed_7b/7c): the last two ops
        // both read the penultimate tensor and their outputs
        // concatenate in op order.
        dnn::QTensor t0 =
            runOp(layers[branch.layerIdx[n - 2]], act, ctx);
        dnn::QTensor t1 =
            runOp(layers[branch.layerIdx[n - 1]], std::move(act),
                  ctx);
        dnn::QTensor cat(t0.channels() + t1.channels(), t0.height(),
                         t0.width(), t0.params());
        auto &buf = cat.data();
        std::copy(t0.data().begin(), t0.data().end(), buf.begin());
        std::copy(t1.data().begin(), t1.data().end(),
                  buf.begin() + static_cast<long>(t0.data().size()));
        act = std::move(cat);
    }
    return act;
}

dnn::QTensor
CompiledModel::runLayers(const dnn::QTensor &input,
                         const ExecContext &ctx)
{
    nc_assert(input.channels() == inC && input.height() == inH &&
                  input.width() == inW,
              "input is %ux%ux%u, network '%s' expects %ux%ux%u",
              input.channels(), input.height(), input.width(),
              net.name.c_str(), inC, inH, inW);

    dnn::QTensor act = input;
    for (const CompiledStage &stage : stages) {
        // Fast path: a plain single-branch chain moves the
        // activation through without copying it.
        if (stage.branches.size() == 1 &&
            !stage.branches.front().endsWithEltwise) {
            act = runBranch(stage.branches.front(), std::move(act),
                            ctx);
            continue;
        }

        // Mixed/residual stage: every branch reads the stage input;
        // the independent branch chains fan out over the shared pool
        // (each branch's layers own disjoint array bands and scratch,
        // so outputs and cycle charges stay bit-identical for any
        // thread count).
        const dnn::QTensor in0 = std::move(act);
        std::vector<dnn::QTensor> outs(stage.branches.size());
        // (Ownership claims happen at the leaf kernels each branch
        // runs — a branch-level claim here would conflict with the
        // real task fan-outs a branch's kernels dispatch whenever
        // this loop itself collapsed to inline execution.)
        pool->parallelFor(stage.branches.size(), [&](size_t bi) {
            outs[bi] = runBranch(stage.branches[bi], in0, ctx);
        });

        // Residual merges: the eltwise tail adds the shortcut
        // branch's output (or the stage input, for identity
        // shortcuts) into the branch result.
        for (size_t bi = 0; bi < stage.branches.size(); ++bi) {
            const CompiledBranch &br = stage.branches[bi];
            if (!br.endsWithEltwise)
                continue;
            const dnn::QTensor &operand =
                stage.shortcutBranch >= 0
                    ? outs[static_cast<size_t>(stage.shortcutBranch)]
                    : in0;
            CompiledLayer &l = layers[br.layerIdx.back()];
            outs[bi] = backendFor(l.backend)
                           .eltwiseAdd(l, outs[bi], operand, ctx);
        }

        // Channel-concatenate the non-shortcut branch outputs (CHW is
        // channel-major, so the concat is a buffer append).
        size_t total = 0;
        unsigned out_c = 0;
        const dnn::QTensor *first = nullptr;
        for (size_t bi = 0; bi < stage.branches.size(); ++bi) {
            if (static_cast<int>(bi) == stage.shortcutBranch)
                continue;
            total += outs[bi].data().size();
            out_c += outs[bi].channels();
            if (!first)
                first = &outs[bi];
        }
        nc_assert(first, "stage with only a shortcut branch");
        dnn::QTensor cat(out_c, first->height(), first->width(),
                         in0.params());
        nc_assert(cat.data().size() == total,
                  "concat size mismatch: %zu vs %zu",
                  cat.data().size(), total);
        size_t off = 0;
        for (size_t bi = 0; bi < stage.branches.size(); ++bi) {
            if (static_cast<int>(bi) == stage.shortcutBranch)
                continue;
            const auto &src = outs[bi].data();
            std::copy(src.begin(), src.end(),
                      cat.data().begin() + static_cast<long>(off));
            off += src.size();
        }
        act = std::move(cat);
    }
    return act;
}

InferenceResult
CompiledModel::run(const dnn::QTensor &input)
{
    InferenceResult res;
    res.report = report(1);
    if (functional())
        res.output = runLayers(input, ExecContext{});
    return res;
}

unsigned
CompiledModel::ensureImageSlots(unsigned want)
{
    want = std::max(want, 1u);
    nc_assert(want <= bandPlan.imageSlots,
              "%u image slots requested, capacity plans %u", want,
              bandPlan.imageSlots);
    bool arrays_in_use = funcBackend != nullptr ||
                         isaBackend != nullptr;
    for (unsigned slot = preparedSlots; slot < want; ++slot) {
        uint64_t off = uint64_t(slot) * bandPlan.perImageArrays;
        // The replica's scratch arrays, materialized now: the image
        // fan-out must never mutate the lazy array map.
        if (arrays_in_use) {
            for (unsigned i = 0; i < bandPlan.scratchSlots; ++i)
                cc->array(cc->coordOf(scratchBase + off + i));
        }
        for (CompiledLayer &layer : layers) {
            if (layer.funcConv)
                layer.funcConv->pinReplica(layer.weights, off);
            if (layer.isaConv) {
                unsigned got =
                    layer.isaConv->pinReplica(layer.weights, off);
                nc_assert(got == slot,
                          "ISA conv replica %u landed in slot %u",
                          slot, got);
            }
            if (layer.isaElt) {
                unsigned got = layer.isaElt->pinReplica(off);
                nc_assert(got == slot,
                          "ISA eltwise replica %u landed in slot %u",
                          slot, got);
            }
        }
    }
    preparedSlots = std::max(preparedSlots, want);
    return want;
}

BatchInferenceResult
CompiledModel::runBatch(std::span<const dnn::QTensor> inputs)
{
    nc_assert(!inputs.empty(), "runBatch: empty batch for '%s'",
              net.name.c_str());
    // Validate the size once, before it is ever narrowed: a negative
    // or garbage count wrapped into size_t dies here with the real
    // number in the message.
    nc_assert(inputs.size() <= kMaxBatch,
              "runBatch: batch of %zu images exceeds the %u ceiling "
              "for '%s'", inputs.size(), kMaxBatch, net.name.c_str());

    BatchInferenceResult res;
    res.report = report(static_cast<unsigned>(inputs.size()));
    if (!functional())
        return res;

    // Validate every image up front, naming the offending batch
    // index — a shape error must not surface as a layer mismatch
    // deep inside image 17's third conv.
    for (size_t i = 0; i < inputs.size(); ++i) {
        const dnn::QTensor &in = inputs[i];
        nc_assert(in.channels() == inC && in.height() == inH &&
                      in.width() == inW,
                  "runBatch: batch input %zu is %ux%ux%u, network "
                  "'%s' expects %ux%ux%u", i, in.channels(),
                  in.height(), in.width(), net.name.c_str(), inC, inH,
                  inW);
    }

    // Image-parallel execution (§IV-E): filters stay stationary and
    // the spare array capacity runs `slots` images concurrently,
    // each image streaming through its own replica of the network's
    // bands (disjoint array state per image slot). Batches beyond
    // the spare capacity time-slice into passes — the same pass
    // structure the analytic report prices. Every image is an
    // independent computation on its own replica, so the result is
    // bit-identical to the serial per-image loop for any thread
    // count and any batch size.
    unsigned slots = ensureImageSlots(static_cast<unsigned>(
        std::min<uint64_t>(inputs.size(), bandPlan.imageSlots)));
    res.outputs.resize(inputs.size());
    for (size_t first = 0; first < inputs.size(); first += slots) {
        size_t count =
            std::min<size_t>(slots, inputs.size() - first);
        // (Image-slot disjointness is proven statically by the band
        // plan audit; the runtime ownership claims stay at the leaf
        // kernels, which carry each image's arrayOffset.)
        pool->parallelFor(count, [&](size_t k) {
            ExecContext ctx{static_cast<unsigned>(k),
                            k * bandPlan.perImageArrays};
            res.outputs[first + k] =
                runLayers(inputs[first + k], ctx);
        });
    }
    return res;
}

} // namespace nc::core
