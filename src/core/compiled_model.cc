#include "core/compiled_model.hh"

#include <utility>

#include "common/logging.hh"

namespace nc::core
{

CompiledModel::CompiledModel() = default;
CompiledModel::CompiledModel(CompiledModel &&) noexcept = default;
CompiledModel &CompiledModel::operator=(CompiledModel &&) noexcept =
    default;
CompiledModel::~CompiledModel() = default;

unsigned
CompiledModel::threads() const
{
    return pool ? pool->size() : 1;
}

const CompiledLayer *
CompiledModel::findLayer(std::string_view name) const
{
    for (const auto &layer : layers)
        if (layer.op.name() == name)
            return &layer;
    return nullptr;
}

InferenceReport
CompiledModel::report(unsigned batch) const
{
    return analytic->report(net, stageCosts, batch);
}

Backend &
CompiledModel::backendFor(BackendKind k)
{
    Backend *b = nullptr;
    switch (k) {
      case BackendKind::Reference:
        b = refBackend.get();
        break;
      case BackendKind::Functional:
        b = funcBackend.get();
        break;
      case BackendKind::Isa:
        b = isaBackend.get();
        break;
      case BackendKind::Analytic:
        b = analytic.get();
        break;
    }
    nc_assert(b, "backend '%s' was not instantiated at compile time",
              backendKindName(k));
    return *b;
}

dnn::QTensor
CompiledModel::runLayers(const dnn::QTensor &input)
{
    nc_assert(input.channels() == inC && input.height() == inH &&
                  input.width() == inW,
              "input is %ux%ux%u, network '%s' expects %ux%ux%u",
              input.channels(), input.height(), input.width(),
              net.name.c_str(), inC, inH, inW);

    dnn::QTensor act = input;
    for (auto &layer : layers) {
        Backend &b = backendFor(layer.backend);
        switch (layer.op.kind) {
          case dnn::OpKind::FullyConnected:
            // Flatten CHW into channels, as TF does for FC-as-1x1.
            if (act.height() != 1 || act.width() != 1) {
                dnn::QTensor flat(
                    act.channels() * act.height() * act.width(), 1, 1,
                    act.params());
                flat.data() = std::move(act.data());
                act = std::move(flat);
            }
            [[fallthrough]];
          case dnn::OpKind::Conv: {
            unsigned oh = 0, ow = 0;
            auto acc = b.conv(layer, act, oh, ow);
            auto bytes = b.requantize(acc, layer.requantMult,
                                      layer.requantShift);
            dnn::QTensor next(layer.op.conv.m, oh, ow);
            next.data() = std::move(bytes);
            act = std::move(next);
            break;
          }
          case dnn::OpKind::MaxPool:
            act = b.maxPool(act, layer.op.pool.r, layer.op.pool.s,
                            layer.op.pool.stride,
                            layer.op.pool.samePad);
            break;
          case dnn::OpKind::AvgPool:
            act = b.avgPool(act, layer.op.pool.r, layer.op.pool.s,
                            layer.op.pool.stride);
            break;
          case dnn::OpKind::EltwiseAdd:
            nc_panic("eltwise layers are not functionally "
                     "executable (rejected at compile)");
        }
    }
    return act;
}

InferenceResult
CompiledModel::run(const dnn::QTensor &input)
{
    InferenceResult res;
    res.report = report(1);
    if (functional())
        res.output = runLayers(input);
    return res;
}

BatchInferenceResult
CompiledModel::runBatch(std::span<const dnn::QTensor> inputs)
{
    nc_assert(!inputs.empty(), "runBatch: empty batch for '%s'",
              net.name.c_str());

    BatchInferenceResult res;
    res.report = report(static_cast<unsigned>(inputs.size()));
    if (functional()) {
        res.outputs.reserve(inputs.size());
        // Filters stay stationary across the whole batch (§IV-E):
        // only input windows stream per image.
        for (const auto &in : inputs)
            res.outputs.push_back(runLayers(in));
    }
    return res;
}

} // namespace nc::core
