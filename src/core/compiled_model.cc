#include "core/compiled_model.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "core/program_verify.hh"
#include "mapping/plan_audit.hh"

namespace nc::core
{

CompiledModel::CompiledModel() = default;
CompiledModel::CompiledModel(CompiledModel &&) noexcept = default;
CompiledModel &CompiledModel::operator=(CompiledModel &&) noexcept =
    default;
CompiledModel::~CompiledModel() = default;

unsigned
CompiledModel::threads() const
{
    return pool ? pool->size() : 1;
}

const CompiledLayer *
CompiledModel::findLayer(std::string_view name) const
{
    for (const auto &layer : layers)
        if (layer.op.name() == name)
            return &layer;
    return nullptr;
}

InferenceReport
CompiledModel::report(unsigned batch) const
{
    // Degenerate sizes are hard errors here — callers (runBatch,
    // benches, servers) are not trusted to pre-filter them.
    nc_assert(batch >= 1, "report: batch 0 for network '%s'",
              net.name.c_str());
    nc_assert(batch <= kMaxBatch,
              "report: batch %u exceeds the %u ceiling for '%s'",
              batch, kMaxBatch, net.name.c_str());
    // The compile-time banding is authoritative: the report prices
    // exactly the slot/pass structure runBatch executes (which a
    // per-layer reference override, say, can shrink below the
    // all-functional net-level estimate) — and after runtime
    // retirements it is the degraded banding, so throughput honestly
    // shrinks with capacity.
    InferenceReport rep =
        analytic->report(net, stageCosts, batch, &bandPlan);
    rep.faultsDetected = nFaultsDetected;
    rep.arraysRetired = nArraysRetired;
    rep.passRetries = nPassRetries;
    rep.programsVerified = nProgramsVerified;
    rep.verifyMs = verifyMsTotal;
    return rep;
}

void
CompiledModel::placeAndPrepare(bool force_streaming)
{
    const cache::Geometry &geom = cfg.geometry;
    bool uses_func = false, uses_isa = false;
    for (const CompiledLayer &layer : layers) {
        uses_func |= layer.backend == BackendKind::Functional;
        uses_isa |= layer.backend == BackendKind::Isa;
    }

    // One scratch array per concurrently-executing branch (pools,
    // eltwise merges, and requantization scribble on it); stages
    // execute serially, so branch slot i is reused across stages.
    uint64_t scratch_slots = 1;
    for (const CompiledStage &cstage : stages)
        scratch_slots = std::max<uint64_t>(scratch_slots,
                                           cstage.branches.size());

    // Capacity: the full geometry, shrunk to the healthy survivors
    // when a fault campaign has retired arrays.
    const uint64_t usable =
        cc->faultsConfigured() ? cc->usableArrays() : 0;
    const uint64_t capacity =
        usable == 0 ? geom.totalArrays() : usable;

    uint64_t whole_need = 0;
    for (const CompiledLayer &layer : layers) {
        bool on_arrays = layer.backend == BackendKind::Functional ||
                         layer.backend == BackendKind::Isa;
        if (layer.op.isConv() && on_arrays)
            whole_need += layer.funcPlan.totalArrays(layer.op.conv.m);
    }
    // The §IV-E batch banding: one image's footprint (stationary
    // filter bands + per-branch scratch) and how many images the
    // spare capacity runs concurrently — runBatch executes exactly
    // this plan, and the analytic batch report prices the same pass
    // structure.
    bandPlan = mapping::planBatchBands(
        whole_need, static_cast<unsigned>(scratch_slots), geom,
        !force_streaming, usable);
    bool all_resident = bandPlan.resident;

    struct ConvPlacement
    {
        uint64_t base = 0;
        uint64_t band = 0;
        bool resident = true;
    };
    std::vector<ConvPlacement> place(layers.size());

    uint64_t scratch_base = 0;
    if (all_resident) {
        // Whole-network residency: every conv layer owns its full
        // band in layer order, filters pinned once at compile
        // (§IV-E: batches amortize the load forever); scratch slots
        // sit past the last band.
        uint64_t next = 0;
        for (size_t li = 0; li < layers.size(); ++li) {
            CompiledLayer &layer = layers[li];
            bool on_arrays =
                layer.backend == BackendKind::Functional ||
                layer.backend == BackendKind::Isa;
            if (!layer.op.isConv() || !on_arrays)
                continue;
            uint64_t need =
                layer.funcPlan.totalArrays(layer.op.conv.m);
            place[li] = {next, need, true};
            layer.baseArray = next;
            layer.bandArrays = need;
            layer.bandResident = true;
            next += need;
        }
        scratch_base = next;
        usedExtent = next + scratch_slots;
    } else {
        // Streaming regime: the network exceeds the (remaining)
        // cache, so conv layers re-pin filters as they run. Scratch
        // slots sit at the bottom; every stage re-uses the region
        // above them, with the stage's branches in disjoint bands so
        // they can execute concurrently. A band smaller than a
        // layer's full need makes the kernel cycle filter groups
        // through it.
        if (capacity <= scratch_slots)
            nc_fatal("'%s': %llu usable arrays cannot even hold the "
                     "%llu scratch slots; retired arrays: %s",
                     net.name.c_str(),
                     static_cast<unsigned long long>(capacity),
                     static_cast<unsigned long long>(scratch_slots),
                     cc->health()->summary().c_str());
        uint64_t avail = capacity - scratch_slots;
        usedExtent = scratch_slots;
        for (size_t si = 0; si < stages.size(); ++si) {
            const CompiledStage &cstage = stages[si];
            std::vector<uint64_t> need_b(cstage.branches.size(), 0);
            std::vector<uint64_t> min_b(cstage.branches.size(), 0);
            for (size_t bi = 0; bi < cstage.branches.size(); ++bi) {
                for (size_t li : cstage.branches[bi].layerIdx) {
                    const CompiledLayer &layer = layers[li];
                    bool on_arrays =
                        layer.backend == BackendKind::Functional ||
                        layer.backend == BackendKind::Isa;
                    if (!layer.op.isConv() || !on_arrays)
                        continue;
                    nc_assert(layer.backend != BackendKind::Isa,
                              "conv '%s': network '%s' exceeds the "
                              "cache (%llu arrays needed, %llu "
                              "total); the streaming regime is "
                              "functional-backend only",
                              layer.op.name().c_str(),
                              net.name.c_str(),
                              static_cast<unsigned long long>(
                                  whole_need + scratch_slots),
                              static_cast<unsigned long long>(
                                  capacity));
                    need_b[bi] = std::max(
                        need_b[bi], layer.funcPlan.totalArrays(
                                        layer.op.conv.m));
                    min_b[bi] = std::max(
                        min_b[bi],
                        uint64_t(layer.funcPlan.chunks));
                }
            }
            uint64_t need_sum = 0, min_sum = 0;
            for (size_t bi = 0; bi < need_b.size(); ++bi) {
                need_sum += need_b[bi];
                min_sum += min_b[bi];
            }
            // A shrunken capacity that cannot hold even the minimum
            // streaming footprint is the hard floor of graceful
            // degradation — die naming the retired arrays.
            if (min_sum > avail && cc->faultsConfigured())
                nc_fatal("stage '%s' of '%s' needs %llu arrays "
                         "concurrently but only %llu usable remain; "
                         "retired arrays: %s",
                         net.stages[si].name.c_str(),
                         net.name.c_str(),
                         static_cast<unsigned long long>(
                             min_sum + scratch_slots),
                         static_cast<unsigned long long>(capacity),
                         cc->health()->summary().c_str());
            nc_assert(min_sum <= avail,
                      "stage '%s' needs %llu arrays concurrently, "
                      "cache has %llu",
                      net.stages[si].name.c_str(),
                      static_cast<unsigned long long>(min_sum +
                                                      scratch_slots),
                      static_cast<unsigned long long>(capacity));
            // Every branch gets its need when the stage fits;
            // otherwise the guaranteed minimum plus an equal share of
            // the remainder (deterministic, capped at the need).
            std::vector<uint64_t> band_b = need_b;
            if (need_sum > avail) {
                uint64_t left = avail - min_sum;
                for (size_t bi = 0; bi < band_b.size(); ++bi) {
                    uint64_t extra = std::min(
                        need_b[bi] - min_b[bi],
                        left / (band_b.size() - bi));
                    band_b[bi] = min_b[bi] + extra;
                    left -= extra;
                }
            }
            uint64_t next = scratch_slots;
            for (size_t bi = 0; bi < cstage.branches.size(); ++bi) {
                for (size_t li : cstage.branches[bi].layerIdx) {
                    CompiledLayer &layer = layers[li];
                    bool on_arrays =
                        layer.backend == BackendKind::Functional ||
                        layer.backend == BackendKind::Isa;
                    if (!layer.op.isConv() || !on_arrays)
                        continue;
                    place[li] = {next, band_b[bi], false};
                    layer.baseArray = next;
                    layer.bandArrays = band_b[bi];
                    layer.bandResident = false;
                }
                next += band_b[bi];
            }
            usedExtent = std::max(usedExtent, next);
        }
    }

    // Scratch arrays: one per branch slot, materialized now so the
    // parallel branch fan-out never mutates the lazy array map.
    // Pure-reference models are CPU loops only and touch no arrays.
    if (uses_func || uses_isa) {
        for (uint64_t i = 0; i < scratch_slots; ++i)
            cc->array(cc->coordOf(scratch_base + i));
    }
    for (CompiledStage &cstage : stages) {
        for (size_t bi = 0; bi < cstage.branches.size(); ++bi) {
            for (size_t li : cstage.branches[bi].layerIdx)
                layers[li].scratchArray = scratch_base + bi;
        }
    }
    scratchBase = scratch_base;

    // Legacy direct Executor/LayerEngine helpers share slot 0.
    ex->setScratchBase(scratch_base);
    if (isaEngine)
        isaEngine->setScratchBase(scratch_base);

    // --- Pass C: prepare the per-layer kernels. --------------------
    for (size_t li = 0; li < layers.size(); ++li) {
        CompiledLayer &layer = layers[li];
        if (layer.op.isConv()) {
            const dnn::ConvOp &co = layer.op.conv;
            if (layer.backend == BackendKind::Functional) {
                layer.funcConv = ex->prepareConv(
                    layer.weights, co.stride, co.samePad,
                    place[li].base, place[li].band,
                    place[li].resident);
                // The band arithmetic above priced chunks from
                // layer.funcPlan; the executor re-derives its plan
                // from the same inputs — catch any drift before it
                // can overlap adjacent bands.
                nc_assert(layer.funcConv->chunksPerBatch() ==
                                  layer.funcPlan.chunks &&
                              layer.funcConv->plan().lanes ==
                                  layer.funcPlan.lanes,
                          "conv '%s': executor mapping (%u chunks, "
                          "%u lanes) disagrees with the compile plan "
                          "(%u chunks, %u lanes)",
                          co.name.c_str(),
                          layer.funcConv->chunksPerBatch(),
                          layer.funcConv->plan().lanes,
                          layer.funcPlan.chunks, layer.funcPlan.lanes);
            } else if (layer.backend == BackendKind::Isa)
                layer.isaConv = isaEngine->prepareConv(
                    layer.weights, co.stride, co.samePad,
                    place[li].base);
        } else if (layer.op.kind == dnn::OpKind::EltwiseAdd) {
            if (layer.backend == BackendKind::Functional)
                layer.funcElt = ex->prepareEltwise(
                    layer.requantMult, layer.requantShift,
                    layer.scratchArray);
            else if (layer.backend == BackendKind::Isa)
                layer.isaElt = isaEngine->prepareEltwise(
                    layer.requantMult, layer.requantShift,
                    layer.scratchArray);
        }
    }

    // Replicas (if any were pinned) are stale after a re-place; they
    // re-pin lazily on the next batch pass.
    preparedSlots = 1;
}

Backend &
CompiledModel::backendFor(BackendKind k)
{
    Backend *b = nullptr;
    switch (k) {
      case BackendKind::Reference:
        b = refBackend.get();
        break;
      case BackendKind::Functional:
        b = funcBackend.get();
        break;
      case BackendKind::Isa:
        b = isaBackend.get();
        break;
      case BackendKind::Analytic:
        b = analytic.get();
        break;
    }
    nc_assert(b, "backend '%s' was not instantiated at compile time",
              backendKindName(k));
    return *b;
}

dnn::QTensor
CompiledModel::runOp(CompiledLayer &layer, dnn::QTensor act,
                     const ExecContext &ctx)
{
    Backend &b = backendFor(layer.backend);
    switch (layer.op.kind) {
      case dnn::OpKind::FullyConnected:
        // Flatten CHW into channels, as TF does for FC-as-1x1.
        if (act.height() != 1 || act.width() != 1) {
            dnn::QTensor flat(
                act.channels() * act.height() * act.width(), 1, 1,
                act.params());
            flat.data() = std::move(act.data());
            act = std::move(flat);
        }
        [[fallthrough]];
      case dnn::OpKind::Conv: {
        unsigned oh = 0, ow = 0;
        auto acc = b.conv(layer, act, oh, ow, ctx);
        auto bytes = b.requantize(layer, acc, ctx);
        dnn::QTensor next(layer.op.conv.m, oh, ow);
        next.data() = std::move(bytes);
        return next;
      }
      case dnn::OpKind::MaxPool:
        return b.maxPool(layer, act, ctx);
      case dnn::OpKind::AvgPool:
        return b.avgPool(layer, act, ctx);
      case dnn::OpKind::EltwiseAdd:
        nc_panic("eltwise '%s' is a merge, not a chain op (run loop "
                 "bug)", layer.op.name().c_str());
    }
    nc_panic("unreachable op kind");
}

dnn::QTensor
CompiledModel::runBranch(const CompiledBranch &branch,
                         dnn::QTensor input, const ExecContext &ctx)
{
    // The serial prefix (the trailing eltwise merge, if any, is
    // applied by the caller once the shortcut operand exists).
    size_t n = branch.layerIdx.size();
    if (branch.endsWithEltwise)
        --n;
    size_t serial = branch.splitTail ? n - 2 : n;

    dnn::QTensor act = std::move(input);
    for (size_t i = 0; i < serial; ++i)
        act = runOp(layers[branch.layerIdx[i]], std::move(act), ctx);

    if (branch.splitTail) {
        // The expanded-tower fan-out (Mixed_7b/7c): the last two ops
        // both read the penultimate tensor and their outputs
        // concatenate in op order.
        dnn::QTensor t0 =
            runOp(layers[branch.layerIdx[n - 2]], act, ctx);
        dnn::QTensor t1 =
            runOp(layers[branch.layerIdx[n - 1]], std::move(act),
                  ctx);
        dnn::QTensor cat(t0.channels() + t1.channels(), t0.height(),
                         t0.width(), t0.params());
        auto &buf = cat.data();
        std::copy(t0.data().begin(), t0.data().end(), buf.begin());
        std::copy(t1.data().begin(), t1.data().end(),
                  buf.begin() + static_cast<long>(t0.data().size()));
        act = std::move(cat);
    }
    return act;
}

dnn::QTensor
CompiledModel::runLayers(const dnn::QTensor &input,
                         const ExecContext &ctx)
{
    nc_assert(input.channels() == inC && input.height() == inH &&
                  input.width() == inW,
              "input is %ux%ux%u, network '%s' expects %ux%ux%u",
              input.channels(), input.height(), input.width(),
              net.name.c_str(), inC, inH, inW);

    dnn::QTensor act = input;
    for (const CompiledStage &stage : stages) {
        // Fast path: a plain single-branch chain moves the
        // activation through without copying it.
        if (stage.branches.size() == 1 &&
            !stage.branches.front().endsWithEltwise) {
            act = runBranch(stage.branches.front(), std::move(act),
                            ctx);
            continue;
        }

        // Mixed/residual stage: every branch reads the stage input;
        // the independent branch chains fan out over the shared pool
        // (each branch's layers own disjoint array bands and scratch,
        // so outputs and cycle charges stay bit-identical for any
        // thread count).
        const dnn::QTensor in0 = std::move(act);
        std::vector<dnn::QTensor> outs(stage.branches.size());
        // (Ownership claims happen at the leaf kernels each branch
        // runs — a branch-level claim here would conflict with the
        // real task fan-outs a branch's kernels dispatch whenever
        // this loop itself collapsed to inline execution.)
        pool->parallelFor(stage.branches.size(), [&](size_t bi) {
            outs[bi] = runBranch(stage.branches[bi], in0, ctx);
        });

        // Residual merges: the eltwise tail adds the shortcut
        // branch's output (or the stage input, for identity
        // shortcuts) into the branch result.
        for (size_t bi = 0; bi < stage.branches.size(); ++bi) {
            const CompiledBranch &br = stage.branches[bi];
            if (!br.endsWithEltwise)
                continue;
            const dnn::QTensor &operand =
                stage.shortcutBranch >= 0
                    ? outs[static_cast<size_t>(stage.shortcutBranch)]
                    : in0;
            CompiledLayer &l = layers[br.layerIdx.back()];
            outs[bi] = backendFor(l.backend)
                           .eltwiseAdd(l, outs[bi], operand, ctx);
        }

        // Channel-concatenate the non-shortcut branch outputs (CHW is
        // channel-major, so the concat is a buffer append).
        size_t total = 0;
        unsigned out_c = 0;
        const dnn::QTensor *first = nullptr;
        for (size_t bi = 0; bi < stage.branches.size(); ++bi) {
            if (static_cast<int>(bi) == stage.shortcutBranch)
                continue;
            total += outs[bi].data().size();
            out_c += outs[bi].channels();
            if (!first)
                first = &outs[bi];
        }
        nc_assert(first, "stage with only a shortcut branch");
        dnn::QTensor cat(out_c, first->height(), first->width(),
                         in0.params());
        nc_assert(cat.data().size() == total,
                  "concat size mismatch: %zu vs %zu",
                  cat.data().size(), total);
        size_t off = 0;
        for (size_t bi = 0; bi < stage.branches.size(); ++bi) {
            if (static_cast<int>(bi) == stage.shortcutBranch)
                continue;
            const auto &src = outs[bi].data();
            std::copy(src.begin(), src.end(),
                      cat.data().begin() + static_cast<long>(off));
            off += src.size();
        }
        act = std::move(cat);
    }
    return act;
}

uint64_t
CompiledModel::liveArrayExtent() const
{
    return bandPlan.resident
               ? uint64_t(preparedSlots) * bandPlan.perImageArrays
               : usedExtent;
}

std::vector<uint64_t>
CompiledModel::canaryScan()
{
    // Every functional layout reserves the top word line as the
    // constant-zero row (bitserial::RowAllocator::zeroRow) and never
    // legally writes it, so a non-zero guard row is proof of a fault
    // — and the blast radius of an unnoticed one is real: padded
    // adds read that row. rowRef() touches the row, which re-applies
    // stuck clamps and pending transient flips before we look.
    std::vector<uint64_t> bad;
    const uint64_t extent = liveArrayExtent();
    for (uint64_t l = 0; l < extent; ++l) {
        const sram::Array *arr = cc->peekArray(l);
        if (!arr)
            continue; // unmaterialized: no data to corrupt
        if (arr->rowRef(arr->rows() - 1).popcount() != 0)
            bad.push_back(l);
    }
    return bad;
}

bool
CompiledModel::canarySweepAndRepair(unsigned &budget)
{
    std::vector<uint64_t> bad = canaryScan();
    if (bad.empty())
        return true;
    nFaultsDetected += bad.size();
    if (budget == 0)
        nc_fatal("'%s': fault retry budget (%u) exhausted with %zu "
                 "guard rows still corrupt; retired arrays: %s",
                 net.name.c_str(), faultCfg.retryBudget, bad.size(),
                 cc->health()->summary().c_str());
    --budget;
    for (uint64_t l : bad) {
        // A full re-place reshuffles the logical space, making the
        // remaining scanned indices stale; the next sweep (the retry
        // always rescans) catches any survivors.
        if (repairOne(l))
            break;
    }
    // Re-prove the healed plan before trusting it with a retry —
    // the placement audit and the program verifier, exactly the
    // compile-time gates, since repair may have re-placed layers
    // and re-prepared their programs.
    mapping::auditPlanOrDie(*this);
    verify::VerifySummary vs = verify::verifyCompiledModelOrDie(*this);
    nProgramsVerified += vs.programsVerified;
    verifyMsTotal += vs.verifyMs;
    return false;
}

bool
CompiledModel::repairOne(uint64_t logical)
{
    if (cc->usableArrays() > liveArrayExtent()) {
        // Spare available: surgical substitution — only the touched
        // replica re-pins, nothing else moves.
        uint64_t spare = cc->retireAndSubstitute(
            logical, "canary: guard row corrupted");
        ++nArraysRetired;
        repinLogical(logical);
        // The spare may have been the tail of a planned-but-unpinned
        // image slot; shrink the slot count to what still fits.
        if (bandPlan.resident &&
            uint64_t(bandPlan.imageSlots) * bandPlan.perImageArrays >
                cc->usableArrays())
            bandPlan.imageSlots = static_cast<unsigned>(
                cc->usableArrays() / bandPlan.perImageArrays);
        nc_inform("'%s': retired logical array %llu (physical %llu "
                  "substituted), %llu usable remain, %u image slots",
                  net.name.c_str(),
                  static_cast<unsigned long long>(logical),
                  static_cast<unsigned long long>(spare),
                  static_cast<unsigned long long>(cc->usableArrays()),
                  bandPlan.imageSlots);
        return false;
    }

    // No spare left: shed capacity and re-place the whole plan over
    // the survivors — fewer image slots, or the streaming regime
    // once one image's bands no longer fit. placeAndPrepare dies
    // with the retired-array roster when even the minimum streaming
    // footprint is gone.
    bool was_resident = bandPlan.resident;
    unsigned was_slots = bandPlan.imageSlots;
    cc->retireCompact(logical, "canary: guard row corrupted");
    ++nArraysRetired;
    placeAndPrepare(false);
    nc_inform("'%s': retired logical array %llu with no spare; "
              "re-placed over %llu arrays (%s, %u image slots; was "
              "%s, %u)",
              net.name.c_str(),
              static_cast<unsigned long long>(logical),
              static_cast<unsigned long long>(cc->usableArrays()),
              bandPlan.resident ? "resident" : "streaming",
              bandPlan.imageSlots,
              was_resident ? "resident" : "streaming", was_slots);
    return true;
}

void
CompiledModel::repinLogical(uint64_t logical)
{
    uint64_t slot_off = 0;
    uint64_t q = logical;
    if (bandPlan.resident) {
        uint64_t slot = logical / bandPlan.perImageArrays;
        slot_off = slot * bandPlan.perImageArrays;
        q = logical - slot_off;
    }
    // Scratch arrays hold no pinned state (kernels write before they
    // read); materializing the substitute is enough.
    if (q >= scratchBase && q < scratchBase + bandPlan.scratchSlots) {
        cc->array(cc->coordOf(logical));
        return;
    }
    for (CompiledLayer &layer : layers) {
        if (!layer.funcConv || layer.bandArrays == 0)
            continue;
        if (q < layer.baseArray ||
            q >= layer.baseArray + layer.bandArrays)
            continue;
        // Streaming bands re-pin their filter groups on every run;
        // only a resident band's stationary filters need restoring.
        if (layer.funcConv->resident())
            layer.funcConv->pinReplica(layer.weights, slot_off);
        return;
    }
    nc_panic("logical array %llu is in no live band (repair bug)",
             static_cast<unsigned long long>(logical));
}

InferenceResult
CompiledModel::run(const dnn::QTensor &input)
{
    InferenceResult res;
    if (functional()) {
        unsigned budget = faultCfg.retryBudget;
        for (;;) {
            res.output = runLayers(input, ExecContext{});
            if (!canaryOn || canarySweepAndRepair(budget))
                break;
            ++nPassRetries; // detected, repaired: recompute
        }
    }
    // Assembled after execution so runtime retirements (degraded
    // banding, fault counters) price into this very call's report.
    res.report = report(1);
    return res;
}

unsigned
CompiledModel::ensureImageSlots(unsigned want)
{
    want = std::max(want, 1u);
    nc_assert(want <= bandPlan.imageSlots,
              "%u image slots requested, capacity plans %u", want,
              bandPlan.imageSlots);
    bool arrays_in_use = funcBackend != nullptr ||
                         isaBackend != nullptr;
    for (unsigned slot = preparedSlots; slot < want; ++slot) {
        uint64_t off = uint64_t(slot) * bandPlan.perImageArrays;
        // The replica's scratch arrays, materialized now: the image
        // fan-out must never mutate the lazy array map.
        if (arrays_in_use) {
            for (unsigned i = 0; i < bandPlan.scratchSlots; ++i)
                cc->array(cc->coordOf(scratchBase + off + i));
        }
        for (CompiledLayer &layer : layers) {
            if (layer.funcConv)
                layer.funcConv->pinReplica(layer.weights, off);
            if (layer.isaConv) {
                unsigned got =
                    layer.isaConv->pinReplica(layer.weights, off);
                nc_assert(got == slot,
                          "ISA conv replica %u landed in slot %u",
                          slot, got);
            }
            if (layer.isaElt) {
                unsigned got = layer.isaElt->pinReplica(off);
                nc_assert(got == slot,
                          "ISA eltwise replica %u landed in slot %u",
                          slot, got);
            }
        }
    }
    preparedSlots = std::max(preparedSlots, want);
    return want;
}

BatchInferenceResult
CompiledModel::runBatch(std::span<const dnn::QTensor> inputs)
{
    nc_assert(!inputs.empty(), "runBatch: empty batch for '%s'",
              net.name.c_str());
    // Validate the size once, before it is ever narrowed: a negative
    // or garbage count wrapped into size_t dies here with the real
    // number in the message.
    nc_assert(inputs.size() <= kMaxBatch,
              "runBatch: batch of %zu images exceeds the %u ceiling "
              "for '%s'", inputs.size(), kMaxBatch, net.name.c_str());

    BatchInferenceResult res;
    if (functional()) {
        // Validate every image up front, naming the offending batch
        // index — a shape error must not surface as a layer mismatch
        // deep inside image 17's third conv.
        for (size_t i = 0; i < inputs.size(); ++i) {
            const dnn::QTensor &in = inputs[i];
            nc_assert(in.channels() == inC && in.height() == inH &&
                          in.width() == inW,
                      "runBatch: batch input %zu is %ux%ux%u, network "
                      "'%s' expects %ux%ux%u", i, in.channels(),
                      in.height(), in.width(), net.name.c_str(), inC,
                      inH, inW);
        }

        // Image-parallel execution (§IV-E): filters stay stationary
        // and the spare array capacity runs `slots` images
        // concurrently, each image streaming through its own replica
        // of the network's bands (disjoint array state per image
        // slot). Batches beyond the spare capacity time-slice into
        // passes — the same pass structure the analytic report
        // prices. Every image is an independent computation on its
        // own replica, so the result is bit-identical to the serial
        // per-image loop for any thread count and any batch size.
        // With the canary armed, a pass whose scan finds corruption
        // repairs and reruns — slot count and regime re-read each
        // iteration because repair may have degraded them.
        unsigned budget = faultCfg.retryBudget;
        res.outputs.resize(inputs.size());
        size_t first = 0;
        while (first < inputs.size()) {
            unsigned slots = ensureImageSlots(static_cast<unsigned>(
                std::min<uint64_t>(inputs.size() - first,
                                   bandPlan.imageSlots)));
            size_t count =
                std::min<size_t>(slots, inputs.size() - first);
            // (Image-slot disjointness is proven statically by the
            // band plan audit; the runtime ownership claims stay at
            // the leaf kernels, which carry each image's
            // arrayOffset.)
            pool->parallelFor(count, [&](size_t k) {
                ExecContext ctx{static_cast<unsigned>(k),
                                k * bandPlan.perImageArrays};
                res.outputs[first + k] =
                    runLayers(inputs[first + k], ctx);
            });
            if (canaryOn && !canarySweepAndRepair(budget)) {
                ++nPassRetries;
                continue; // rerun this pass on the healed plan
            }
            first += count;
        }
    }
    // Assembled after execution so runtime retirements (degraded
    // banding, fault counters) price into this very call's report.
    res.report = report(static_cast<unsigned>(inputs.size()));
    return res;
}

} // namespace nc::core
