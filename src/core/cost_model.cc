#include "core/cost_model.hh"

#include <algorithm>

#include "bitserial/extensions.hh"
#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::core
{

const char *
arithModeName(ArithMode m)
{
    switch (m) {
      case ArithMode::PaperCalibrated:
        return "paper-calibrated";
      case ArithMode::Analytic:
        return "analytic";
    }
    return "?";
}

PhaseBreakdown &
PhaseBreakdown::operator+=(const PhaseBreakdown &o)
{
    filterLoadPs += o.filterLoadPs;
    inputStreamPs += o.inputStreamPs;
    outputXferPs += o.outputXferPs;
    macPs += o.macPs;
    reducePs += o.reducePs;
    quantPs += o.quantPs;
    poolPs += o.poolPs;
    return *this;
}

CostModel::CostModel(cache::Geometry geom_, CostConfig cfg_,
                     cache::DramModel dram_, cache::IntraSliceBus bus_,
                     cache::Ring ring_, cache::CBox cbox_)
    : geom(std::move(geom_)), cfg(cfg_), dramModel(dram_),
      sliceBus(bus_), ringNet(ring_), cboxModel(cbox_)
{
    ringNet.stops = geom.slices;
}

double
CostModel::macCyclesPerConv(const mapping::ConvPlan &plan) const
{
    if (cfg.mode == ArithMode::PaperCalibrated)
        return cfg.paperMacCycles * plan.ft.effRS;
    return static_cast<double>(bitserial::implMacScratchCycles(
               cfg.bits, cfg.accumulatorBits)) *
           plan.ft.effRS;
}

double
CostModel::reduceCyclesPerConv(const mapping::ConvPlan &plan) const
{
    if (plan.lanesPerConv <= 1)
        return 0.0;
    if (cfg.mode == ArithMode::PaperCalibrated)
        return cfg.paperReduceCycles;
    double cycles = static_cast<double>(bitserial::implReduceSumCycles(
        cfg.accumulatorBits, plan.lanesPerConv,
        cfg.alu.moveCyclesPerRow));
    if (!plan.fitsSenseAmpPair)
        cycles *= cfg.interArrayReduceFactor;
    return cycles;
}

double
CostModel::quantCyclesPerPass() const
{
    if (cfg.quantCyclesPerPass > 0.0)
        return cfg.quantCyclesPerPass;
    // Fixed-point requantization of each buffered output: one widened
    // multiply by the CPU-provided scalar, a shift, and an offset add
    // (paper §IV-D), applied to the 32-bit accumulated outputs.
    return static_cast<double>(
        bitserial::implMulCycles(cfg.bits, 32) +
        bitserial::implShiftCycles(32) +
        bitserial::implAddCycles(32, false));
}

uint64_t
CostModel::convWindowProgramCycles(unsigned lanes,
                                   unsigned eff_rs) const
{
    // zero(partial[redBits]) + eff_rs MACs through the 2-byte
    // scratchpad + one cross-lane reduction — exactly the macro-op
    // stream convWindowProgram() emits and both conv kernels issue.
    unsigned red_bits =
        cfg.accumulatorBits + log2Ceil(lanes);
    return bitserial::implCopyCycles(red_bits) +
           uint64_t(eff_rs) * bitserial::implMacScratchCycles(
                                  cfg.bits, cfg.accumulatorBits) +
           bitserial::implReduceSumCycles(cfg.accumulatorBits, lanes,
                                          cfg.alu.moveCyclesPerRow);
}

uint64_t
CostModel::eltwiseProgramCycles() const
{
    // Widen-add (carry-out stored), multiply by the requant scalar,
    // truncating shift, in-array clamp (§IV-D residual merge).
    unsigned b = cfg.bits;
    return bitserial::implAddCycles(b, /*store_carry=*/true) +
           bitserial::implMulCycles(b + 1, b) +
           bitserial::implShiftCycles(2 * b + 1) +
           bitserial::implSaturateCycles(2 * b + 1, b);
}

uint64_t
CostModel::maxPoolWindowProgramCycles(unsigned window) const
{
    nc_assert(window >= 1, "empty pooling window");
    return bitserial::implCopyCycles(cfg.bits) +
           uint64_t(window - 1) * bitserial::implMaxCycles(cfg.bits);
}

namespace
{

/** Cycles of the once-per-layer min/max search (paper §IV-D). */
double
minMaxOnceCycles(const CostConfig &cfg, unsigned cols)
{
    // In-array min and max trees over the 32-bit outputs, then a short
    // bus tree across arrays/slices (rare enough that the paper calls
    // its penalty small); we charge a flat thousand bus cycles.
    return 2.0 * static_cast<double>(bitserial::implReduceMaxCycles(
               32, cols, cfg.alu.moveCyclesPerRow)) +
           1000.0;
}

} // namespace

StageCost
CostModel::convCost(const dnn::ConvOp &op) const
{
    mapping::ConvPlan plan = mapping::planConv(op, geom);

    StageCost cost;
    cost.name = op.name;
    cost.serialPasses = plan.serialPasses;
    cost.utilization = plan.utilization;

    double passes = static_cast<double>(plan.serialPasses);
    double mac = macCyclesPerConv(plan);
    double reduce = reduceCyclesPerConv(plan);
    double quant = quantCyclesPerPass();
    double minmax = minMaxOnceCycles(cfg, geom.arrayCols);

    cost.phases.macPs = computePs(passes * mac);
    cost.phases.reducePs = computePs(passes * reduce);
    cost.phases.quantPs = computePs(passes * quant + minmax);

    // Filters: one DRAM stream per layer, broadcast over ring and bus;
    // the array-fill tail is one way's worth (all ways receive the
    // broadcast concurrently).
    cost.phases.filterLoadPs =
        dramModel.transferPs(op.filterBytes()) +
        sliceBus.fillWayPs(plan.filterRows, geom.arrayCols);

    // Inputs: every serial pass stages a fresh window into each
    // compute way (ways hold replicated filters and work on different
    // output pixels, so each wants its own window; arrays inside a
    // way share it, so the bank latch halves the stream).
    unsigned rows_first = plan.inputRows;
    unsigned rows_later = plan.newInputBytesPerWindow * cfg.bits;
    double first = sliceBus.fillWayPs(rows_first, geom.arrayCols, true);
    double later = sliceBus.fillWayPs(rows_later, geom.arrayCols, true);
    double first_ps =
        first * geom.computeWays() * cfg.inputStreamFactor;
    double later_ps =
        later * geom.computeWays() * cfg.inputStreamFactor;
    if (cfg.overlapInputStream) {
        // Double-buffered: a pass's stream hides under the previous
        // pass's compute; only the excess is exposed. The first
        // window has nothing to hide under.
        double compute_ps = computePs(mac + reduce + quant);
        later_ps = std::max(0.0, later_ps - compute_ps);
    }
    cost.phases.inputStreamPs =
        first_ps + (passes - 1) * later_ps;

    // Outputs: one quantized byte per convolution drained to the
    // reserved way, slices in parallel.
    uint64_t out_bytes_per_pass_slice =
        divCeil(plan.parallelConvs, geom.slices);
    cost.phases.outputXferPs = passes *
                               sliceBus.streamPs(out_bytes_per_pass_slice) *
                               cfg.outputDrainFactor;

    // Energy bookkeeping.
    double busy_arrays =
        static_cast<double>(geom.computeArrays()) * plan.utilization;
    if (plan.convsPerArray >= 1) {
        // Lanes the convs actually occupy within each busy array.
        double lane_frac =
            static_cast<double>(plan.convsPerArray * plan.lanesPerConv) /
            geom.arrayCols;
        busy_arrays *= lane_frac;
    }
    cost.activeArrayCycles = static_cast<uint64_t>(
        passes * (mac + reduce + quant) * busy_arrays);
    cost.streamedRows = static_cast<uint64_t>(
        plan.filterRows * static_cast<double>(geom.computeArrays()) +
        passes * (rows_later * busy_arrays));
    cost.dramBytes = op.filterBytes();
    cost.wireBytes = static_cast<uint64_t>(
        op.filterBytes() +
        passes * rows_later * geom.arrayCols / 8 *
            geom.computeWays() * geom.slices / 8 +
        op.convCount());
    return cost;
}

StageCost
CostModel::poolCost(const dnn::PoolOp &op) const
{
    mapping::PoolPlan plan = mapping::planPool(op, geom);

    StageCost cost;
    cost.name = op.name;
    cost.serialPasses = plan.serialPasses;
    cost.utilization = plan.utilization;

    double passes = static_cast<double>(plan.serialPasses);
    double per_window;
    if (op.isAvg) {
        // Running sum over the window, then divide (shift when the
        // window is a power of two; Inception's 8x8 head is).
        per_window =
            static_cast<double>(op.r * op.s - 1) *
            bitserial::implAddCycles(2 * cfg.bits, false);
        if (isPow2(uint64_t(op.r) * op.s)) {
            per_window += bitserial::implShiftCycles(2 * cfg.bits);
        } else {
            unsigned dbits = log2Ceil(uint64_t(op.r) * op.s) + 1;
            per_window +=
                bitserial::implDivCycles(2 * cfg.bits, dbits);
        }
    } else {
        per_window = static_cast<double>(op.r * op.s - 1) *
                     bitserial::implMaxCycles(cfg.bits);
    }
    cost.phases.poolPs = computePs(passes * per_window);

    // Window inputs stream like conv inputs.
    double fill =
        sliceBus.fillWayPs(plan.inputRows, geom.arrayCols, true);
    cost.phases.inputStreamPs =
        passes * fill * geom.computeWays() * cfg.inputStreamFactor;

    uint64_t out_bytes_per_pass_slice =
        divCeil(plan.parallelWindows, geom.slices);
    cost.phases.outputXferPs = passes *
                               sliceBus.streamPs(out_bytes_per_pass_slice) *
                               cfg.outputDrainFactor;

    double busy =
        static_cast<double>(geom.computeArrays()) * plan.utilization;
    cost.activeArrayCycles =
        static_cast<uint64_t>(passes * per_window * busy);
    cost.streamedRows =
        static_cast<uint64_t>(passes * plan.inputRows * busy);
    cost.wireBytes = op.inputBytes() + op.outputBytes();
    return cost;
}

StageCost
CostModel::eltwiseCost(const dnn::EltwiseOp &op) const
{
    StageCost cost;
    cost.name = op.name;

    // One element pair per bit line: both operands already sit in the
    // reserved way, stream in, add in 8+1 cycles, stream out.
    uint64_t slots = uint64_t(geom.computeArrays()) * geom.arrayCols;
    cost.serialPasses = divCeil(op.elements(), slots);
    cost.utilization =
        static_cast<double>(op.elements()) /
        (static_cast<double>(cost.serialPasses) * slots);

    double passes = static_cast<double>(cost.serialPasses);
    double add_cycles =
        static_cast<double>(bitserial::implAddCycles(cfg.bits, true));
    // Charge the arithmetic to the MAC phase (it is vector add work).
    cost.phases.macPs = computePs(passes * add_cycles);

    // Two operand bytes in, one out, per lane: 2x8 + 8 rows.
    double fill =
        sliceBus.fillWayPs(3 * cfg.bits, geom.arrayCols, true);
    cost.phases.inputStreamPs =
        passes * fill * geom.computeWays() * cfg.inputStreamFactor;
    uint64_t out_bytes_per_pass_slice = divCeil(slots, geom.slices);
    cost.phases.outputXferPs =
        passes * sliceBus.streamPs(out_bytes_per_pass_slice) *
        cfg.outputDrainFactor;

    double busy =
        static_cast<double>(geom.computeArrays()) * cost.utilization;
    cost.activeArrayCycles =
        static_cast<uint64_t>(passes * add_cycles * busy);
    cost.streamedRows =
        static_cast<uint64_t>(passes * 3 * cfg.bits * busy);
    cost.wireBytes = op.inputBytes() + op.outputBytes();
    return cost;
}

StageCost
CostModel::stageCost(const dnn::Stage &stage) const
{
    StageCost total;
    total.name = stage.name;

    uint64_t conv_weight = 0;
    double util_weighted = 0.0;

    for (const auto &branch : stage.branches) {
        for (const auto &op : branch.ops) {
            StageCost c;
            if (op.isConv())
                c = convCost(op.conv);
            else if (op.isPool())
                c = poolCost(op.pool);
            else
                c = eltwiseCost(op.elt);
            total.phases += c.phases;
            total.serialPasses =
                std::max(total.serialPasses, c.serialPasses);
            total.activeArrayCycles += c.activeArrayCycles;
            total.streamedRows += c.streamedRows;
            total.dramBytes += c.dramBytes;
            total.wireBytes += c.wireBytes;
            if (op.isConv()) {
                uint64_t w = op.conv.convCount();
                conv_weight += w;
                util_weighted += c.utilization * static_cast<double>(w);
            }
        }
    }
    total.utilization =
        conv_weight ? util_weighted / static_cast<double>(conv_weight)
                    : 1.0;
    return total;
}

mapping::BatchBandPlan
CostModel::planImageBands(const dnn::Network &net) const
{
    return mapping::planBatchBands(net, geom);
}

} // namespace nc::core
