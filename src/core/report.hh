/**
 * @file
 * Human-readable report printers for inference results.
 *
 * Benches and examples share these so every table/figure binary emits
 * the same row format the paper's evaluation uses.
 */

#ifndef NC_CORE_REPORT_HH
#define NC_CORE_REPORT_HH

#include <ostream>

#include "core/neural_cache.hh"

namespace nc::core
{

/** Per-stage latency table (Figure 13 rows for one device). */
void printStageTable(std::ostream &os, const InferenceReport &rep);

/** Phase breakdown with percentages (Figure 14). */
void printBreakdown(std::ostream &os, const InferenceReport &rep);

/** Energy / power summary (Table III row). */
void printEnergy(std::ostream &os, const InferenceReport &rep);

/**
 * Machine-readable flat dump ("key value" per line, gem5 stats
 * style): totals, phases, per-stage latencies, energy components.
 */
void dumpStats(std::ostream &os, const InferenceReport &rep);

/**
 * Dump every parameter of a NeuralCache configuration (geometry,
 * clocks, calibration constants, energy model) so a run is fully
 * reproducible from its log.
 */
void printConfig(std::ostream &os, const NeuralCacheConfig &cfg);

} // namespace nc::core

#endif // NC_CORE_REPORT_HH
