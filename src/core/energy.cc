#include "core/energy.hh"

#include "common/units.hh"

namespace nc::core
{

EnergyReport
meterEnergy(const std::vector<StageCost> &stages, double total_ps,
            const EnergyConfig &cfg)
{
    EnergyReport rep;
    for (const auto &st : stages) {
        rep.computeJ += static_cast<double>(st.activeArrayCycles) *
                        cfg.array.computePj * pjToJoule;
        rep.accessJ += static_cast<double>(st.streamedRows) *
                       cfg.array.accessPj * pjToJoule;
        rep.dramJ += static_cast<double>(st.dramBytes) *
                     cfg.dramPjPerByte * pjToJoule;
        rep.wireJ += static_cast<double>(st.wireBytes) *
                     cfg.wirePjPerByte * pjToJoule;
    }
    rep.backgroundJ = cfg.backgroundPowerW * total_ps * picoToSec;
    return rep;
}

} // namespace nc::core
