/**
 * @file
 * LayerEngine: a whole convolution layer through the broadcast ISA.
 *
 * This is the §IV execution model in miniature, one level above the
 * Executor: filter batches (M's) spread across arrays that enroll in
 * one Controller group; every output window becomes one broadcast
 * program (zero the partial sums, RxS MAC macro-ops, one channel
 * reduction) that the per-bank FSMs expand identically everywhere, so
 * the entire layer runs in SIMD lock-step exactly as §IV-F describes
 * ("all compute arrays execute the same in-cache compute
 * instruction").
 *
 * Functionally it must agree bit-for-bit with Executor::conv (which
 * drives the ALU directly) and with the reference executor — the
 * integration tests pin all three against each other.
 */

#ifndef NC_CORE_LAYER_ENGINE_HH
#define NC_CORE_LAYER_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/compute_cache.hh"
#include "common/thread_pool.hh"
#include "core/controller.hh"
#include "dnn/reference.hh"
#include "dnn/tensor.hh"
#include "mapping/plan.hh"

namespace nc::core
{

/**
 * The shared per-array slice map and broadcast program of one conv
 * layer: every enrolled array holds the identical layout (the same
 * mapping::ConvRowLayout the direct-ALU executor uses), which is
 * what lets a single instruction stream drive the whole group.
 */
struct IsaConvProgram
{
    mapping::ConvRowLayout rows;
    std::vector<Instruction> program; ///< one output window's macro-ops
};

/** ISA-level layer runner. */
class LayerEngine
{
  public:
    /** @param nthreads worker threads (0 = NC_THREADS / hardware). */
    explicit LayerEngine(cache::ComputeCache &cc_,
                         unsigned nthreads = 0)
        : cc(cc_),
          ownedPool(std::make_unique<common::ThreadPool>(nthreads)),
          pool(*ownedPool), ctrl(cc_, &pool)
    {
    }

    /** Share an external worker pool (e.g. one engine-wide pool). */
    LayerEngine(cache::ComputeCache &cc_, common::ThreadPool &shared)
        : cc(cc_), pool(shared), ctrl(cc_, &pool)
    {
    }

    /**
     * A conv layer compiled onto the broadcast ISA: the slice map and
     * per-window program are built once, the filters pinned in arrays
     * [base, base+m) enrolled in a dedicated lock-step group. run()
     * then only streams windows and broadcasts the fixed program.
     * The LayerEngine must outlive every prepared layer.
     */
    class PreparedConvLayer
    {
      public:
        /**
         * Execute on @p in; accumulators in [m][oh][ow] order.
         * @p slot selects which pinned replica's group broadcasts
         * (0 = the group prepareConv enrolled; others come from
         * pinReplica) — one per concurrently executing image, each
         * with its own controller so batched broadcasts never share
         * group state.
         */
        std::vector<uint32_t> run(const dnn::QTensor &in,
                                  unsigned &out_h, unsigned &out_w,
                                  unsigned slot = 0);

        /**
         * Pin a stationary replica of @p w in arrays
         * [base + offset, base + offset + m), enrolled in its own
         * lock-step group — the §IV-E image-parallel copy one extra
         * in-flight image broadcasts to. @p w must be the bank
         * prepareConv pinned. Returns the replica's slot index.
         */
        unsigned pinReplica(const dnn::QWeights &w,
                            uint64_t array_offset);

        /** Instruction-bus cycles this layer has consumed (slot 0). */
        uint64_t cyclesIssued() const
        {
            return groups.front().ctrl->cyclesIssued();
        }
        /** Arrays enrolled in the layer's lock-step group. */
        size_t groupSize() const
        {
            return groups.front().ctrl->groupSize();
        }
        uint64_t baseArray() const { return groups.front().base; }
        /** Pinned replicas, the prepareConv band included. */
        unsigned slots() const
        {
            return static_cast<unsigned>(groups.size());
        }
        /** The fixed per-window broadcast program and its slice map
         * (program_verify checks this stream verbatim). */
        const IsaConvProgram &program() const { return prog; }

      private:
        friend class LayerEngine;
        PreparedConvLayer() = default;

        /** One image slot: a lock-step group over its replica band. */
        struct SlotGroup
        {
            std::unique_ptr<Controller> ctrl;
            uint64_t base = 0;
        };

        LayerEngine *eng = nullptr;
        std::vector<SlotGroup> groups; ///< [0] = prepareConv's band
        IsaConvProgram prog;
        unsigned m = 0, c = 0, r = 0, s = 0;
        unsigned stride = 1;
        bool samePad = false;
    };

    /**
     * Compile-once half of convLayer(): build the layout + broadcast
     * program, enroll arrays [base_array, base_array + w.m) in a
     * fresh controller group, and pin the filters. Repeated run()s
     * never repeat that work.
     */
    PreparedConvLayer prepareConv(const dnn::QWeights &w,
                                  unsigned stride, bool same_pad,
                                  uint64_t base_array = 0);

    /**
     * Execute a quantized (unsigned) convolution layer; returns the
     * raw accumulators in [m][oh][ow] order.
     */
    std::vector<uint32_t> convLayer(const dnn::QTensor &in,
                                    const dnn::QWeights &w,
                                    unsigned stride, bool same_pad,
                                    unsigned &out_h, unsigned &out_w);

    /**
     * Max pooling through the ISA: the window's inputs stream in and
     * a broadcast MaxInto program runs per element (paper §IV-D's
     * "designating a temporary maximum ... selective copy"). SAME
     * padding skips the out-of-image elements of edge windows — the
     * per-window programs just get shorter, exactly as the FSM would
     * sequence them.
     */
    dnn::QTensor maxPoolLayer(const dnn::QTensor &in, unsigned r,
                              unsigned s, unsigned stride,
                              bool same_pad = false);

    /**
     * maxPoolLayer on an explicit scratch array with its own
     * lock-step group (parallel branches give each branch one so
     * their broadcasts stay disjoint).
     */
    dnn::QTensor maxPoolLayerAt(uint64_t scratch_array,
                                const dnn::QTensor &in, unsigned r,
                                unsigned s, unsigned stride,
                                bool same_pad);

    /**
     * A prepared residual merge on the broadcast ISA: the row
     * carve-up and the fixed four-instruction program (Add, Multiply,
     * ShiftDown, Saturate) are built once; run() streams operand
     * chunks and broadcasts the program to the scratch array's
     * group. Bit-identical to Executor::PreparedEltwise and to
     * dnn::eltwiseAddQuant.
     */
    class PreparedEltwiseLayer
    {
      public:
        /** @p slot selects the scratch replica (0 = prepareEltwise's
         * array; others come from pinReplica). */
        std::vector<uint8_t> run(const std::vector<uint8_t> &a,
                                 const std::vector<uint8_t> &b,
                                 unsigned slot = 0);

        /** Enroll the merge's program on the image slot's scratch
         * replica (scratch + offset); returns the slot index. */
        unsigned pinReplica(uint64_t array_offset);

        /** The fixed four-instruction merge program (program_verify
         * checks this stream verbatim). */
        const std::vector<Instruction> &mergeProgram() const
        {
            return program;
        }
        /** The shared merge carve-up (same map as the functional
         * backend). */
        const mapping::EltwiseRowLayout &rowLayout() const
        {
            return rows;
        }

      private:
        friend class LayerEngine;
        PreparedEltwiseLayer() = default;

        /** One image slot: a group over its scratch replica. */
        struct SlotGroup
        {
            std::unique_ptr<Controller> ctrl;
            uint64_t scratch = 0;
        };

        LayerEngine *eng = nullptr;
        std::vector<SlotGroup> groups; ///< [0] = prepareEltwise's
        std::vector<Instruction> program;
        uint8_t mult = 1;
        unsigned sh = 0;
        mapping::EltwiseRowLayout rows;
    };

    /** Compile-once half of the ISA eltwise merge. */
    PreparedEltwiseLayer prepareEltwise(uint8_t mult, unsigned shift,
                                        uint64_t scratch_array);

    /** Compute cycles issued over the instruction bus. */
    uint64_t instructionCycles() const { return ctrl.cyclesIssued(); }

    /** Broadcast programs executed (one per output window). */
    uint64_t programsIssued() const { return nPrograms; }

    /** Arrays enrolled in the lock-step group. */
    size_t groupSize() const { return ctrl.groupSize(); }

    /** Worker threads the broadcast programs fan out over. */
    unsigned threads() const { return pool.size(); }

    /**
     * Flat index of the array maxPoolLayer() uses. Defaults to 0;
     * CompiledModel points it past the prepared conv layers so pool
     * programs never clobber stationary filters.
     */
    void setScratchBase(uint64_t base) { scratchBase = base; }

  private:
    dnn::QTensor maxPoolBroadcast(Controller &grp,
                                  uint64_t scratch_array,
                                  const dnn::QTensor &in, unsigned r,
                                  unsigned s, unsigned stride,
                                  bool same_pad);

    cache::ComputeCache &cc;
    std::unique_ptr<common::ThreadPool> ownedPool; ///< null when shared
    common::ThreadPool &pool; ///< must outlive ctrl (ctrl borrows it)
    Controller ctrl;
    /** Atomic: prepared layers in parallel branches bump it
     * concurrently; the sum is order-independent. */
    std::atomic<uint64_t> nPrograms{0};
    uint64_t scratchBase = 0;
};

} // namespace nc::core

#endif // NC_CORE_LAYER_ENGINE_HH
