/**
 * @file
 * LayerEngine: a whole convolution layer through the broadcast ISA.
 *
 * This is the §IV execution model in miniature, one level above the
 * Executor: filter batches (M's) spread across arrays that enroll in
 * one Controller group; every output window becomes one broadcast
 * program (zero the partial sums, RxS MAC macro-ops, one channel
 * reduction) that the per-bank FSMs expand identically everywhere, so
 * the entire layer runs in SIMD lock-step exactly as §IV-F describes
 * ("all compute arrays execute the same in-cache compute
 * instruction").
 *
 * Functionally it must agree bit-for-bit with Executor::conv (which
 * drives the ALU directly) and with the reference executor — the
 * integration tests pin all three against each other.
 */

#ifndef NC_CORE_LAYER_ENGINE_HH
#define NC_CORE_LAYER_ENGINE_HH

#include <cstdint>
#include <vector>

#include "cache/compute_cache.hh"
#include "common/thread_pool.hh"
#include "core/controller.hh"
#include "dnn/reference.hh"
#include "dnn/tensor.hh"

namespace nc::core
{

/** ISA-level layer runner. */
class LayerEngine
{
  public:
    /** @param nthreads worker threads (0 = NC_THREADS / hardware). */
    explicit LayerEngine(cache::ComputeCache &cc_,
                         unsigned nthreads = 0)
        : cc(cc_), pool(nthreads), ctrl(cc_, &pool)
    {
    }

    /**
     * Execute a quantized (unsigned) convolution layer; returns the
     * raw accumulators in [m][oh][ow] order.
     */
    std::vector<uint32_t> convLayer(const dnn::QTensor &in,
                                    const dnn::QWeights &w,
                                    unsigned stride, bool same_pad,
                                    unsigned &out_h, unsigned &out_w);

    /**
     * Max pooling through the ISA: the window's inputs stream in and
     * a broadcast MaxInto program runs per element (paper §IV-D's
     * "designating a temporary maximum ... selective copy"). VALID
     * windows only.
     */
    dnn::QTensor maxPoolLayer(const dnn::QTensor &in, unsigned r,
                              unsigned s, unsigned stride);

    /** Compute cycles issued over the instruction bus. */
    uint64_t instructionCycles() const { return ctrl.cyclesIssued(); }

    /** Broadcast programs executed (one per output window). */
    uint64_t programsIssued() const { return nPrograms; }

    /** Arrays enrolled in the lock-step group. */
    size_t groupSize() const { return ctrl.groupSize(); }

    /** Worker threads the broadcast programs fan out over. */
    unsigned threads() const { return pool.size(); }

  private:
    cache::ComputeCache &cc;
    common::ThreadPool pool; ///< must outlive ctrl (ctrl borrows it)
    Controller ctrl;
    uint64_t nPrograms = 0;
};

} // namespace nc::core

#endif // NC_CORE_LAYER_ENGINE_HH
