#include "core/layer_engine.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "dnn/layers.hh"

namespace nc::core
{

namespace bs = bitserial;

std::vector<uint32_t>
LayerEngine::convLayer(const dnn::QTensor &in, const dnn::QWeights &w,
                       unsigned stride, bool same_pad, unsigned &out_h,
                       unsigned &out_w)
{
    const unsigned bits = 8;
    const unsigned acc_bits = 24;
    unsigned rs = w.r * w.s;
    unsigned cols = cc.geometry().arrayCols;
    unsigned lanes = static_cast<unsigned>(roundUpPow2(w.c));
    nc_assert(lanes <= cols, "layer engine: %u channels exceed %u "
              "lanes", w.c, cols);

    out_h = dnn::outDim(in.height(), w.r, stride, same_pad);
    out_w = dnn::outDim(in.width(), w.s, stride, same_pad);
    unsigned pad_h = 0, pad_w = 0;
    if (same_pad) {
        unsigned cov_h = (out_h - 1) * stride + w.r;
        unsigned cov_w = (out_w - 1) * stride + w.s;
        pad_h = cov_h > in.height() ? (cov_h - in.height()) / 2 : 0;
        pad_w = cov_w > in.width() ? (cov_w - in.width()) / 2 : 0;
    }
    unsigned red_bits = acc_bits + log2Ceil(lanes);

    // The shared slice map (identical in every array — that is what
    // makes one instruction stream sufficient).
    bs::RowAllocator rows(cc.geometry().arrayRows);
    std::vector<bs::VecSlice> filt(rs), inp(rs);
    for (unsigned k = 0; k < rs; ++k)
        filt[k] = rows.alloc(bits);
    for (unsigned k = 0; k < rs; ++k)
        inp[k] = rows.alloc(bits);
    bs::VecSlice scratch = rows.alloc(2 * bits);
    bs::VecSlice partial = rows.alloc(red_bits);
    bs::VecSlice red_scratch =
        rows.alloc(red_bits > 1 ? red_bits - 1 : 1);
    unsigned zrow = rows.zeroRow();

    // Enroll one array per filter batch and pin its weights.
    std::vector<uint64_t> fv(lanes, 0);
    for (unsigned mi = 0; mi < w.m; ++mi) {
        cache::ArrayCoord coord = cc.coordOf(mi);
        ctrl.enroll(coord);
        sram::Array &arr = cc.array(coord);
        for (unsigned k = 0; k < rs; ++k) {
            std::fill(fv.begin(), fv.end(), 0);
            for (unsigned ci = 0; ci < w.c; ++ci)
                fv[ci] = w.at(mi, ci, k / w.s, k % w.s);
            bs::storeVector(arr, filt[k], fv);
        }
    }

    // The per-window broadcast program (identical every window).
    std::vector<Instruction> program;
    program.push_back(Instruction::zero(partial));
    for (unsigned k = 0; k < rs; ++k)
        program.push_back(Instruction::mac(
            filt[k], inp[k], partial.slice(0, acc_bits), scratch,
            zrow));
    program.push_back(
        Instruction::reduceSum(partial, acc_bits, lanes, red_scratch));

    std::vector<uint32_t> out(static_cast<size_t>(w.m) * out_h * out_w,
                              0);
    // Per-window streaming buffers, reused across every window, and
    // the per-array store prologue the controller folds into each
    // window's fan-out (hoisted so no per-window type erasure).
    std::vector<std::vector<uint64_t>> ivk(
        rs, std::vector<uint64_t>(lanes, 0));
    const std::function<void(const cache::ArrayCoord &)> store_window =
        [&](const cache::ArrayCoord &coord) {
            sram::Array &arr = cc.array(coord);
            for (unsigned k = 0; k < rs; ++k)
                bs::storeVector(arr, inp[k], ivk[k]);
        };
    for (unsigned y = 0; y < out_h; ++y) {
        for (unsigned x = 0; x < out_w; ++x) {
            // Stream the window — the same bytes reach every array
            // (one intra-slice broadcast per §IV-C). The per-array
            // stores are independent, so the controller runs them as
            // each array's prologue inside the program fan-out.
            for (unsigned k = 0; k < rs; ++k) {
                int iy = static_cast<int>(y * stride + k / w.s) -
                         static_cast<int>(pad_h);
                int ix = static_cast<int>(x * stride + k % w.s) -
                         static_cast<int>(pad_w);
                std::vector<uint64_t> &iv = ivk[k];
                std::fill(iv.begin(), iv.end(), 0);
                if (iy >= 0 && ix >= 0 &&
                    iy < static_cast<int>(in.height()) &&
                    ix < static_cast<int>(in.width())) {
                    for (unsigned ci = 0; ci < w.c; ++ci)
                        iv[ci] = in.at(ci, iy, ix);
                }
            }

            uint64_t cycles = ctrl.run(program, &store_window);
            ++nPrograms;
            nc_dprintf("LayerEngine",
                       "window (%u,%u): %llu cycles on %zu arrays", y,
                       x, static_cast<unsigned long long>(cycles),
                       ctrl.groupSize());

            for (unsigned mi = 0; mi < w.m; ++mi) {
                uint64_t sum = bs::loadLane(
                    cc.array(cc.coordOf(mi)), partial, 0);
                out[(static_cast<size_t>(mi) * out_h + y) * out_w +
                    x] = static_cast<uint32_t>(sum);
            }
        }
    }
    return out;
}

dnn::QTensor
LayerEngine::maxPoolLayer(const dnn::QTensor &in, unsigned r,
                          unsigned s, unsigned stride)
{
    const unsigned bits = 8;
    unsigned cols = cc.geometry().arrayCols;
    unsigned lanes = static_cast<unsigned>(roundUpPow2(in.channels()));
    nc_assert(lanes <= cols, "maxPoolLayer: %u channels exceed %u "
              "lanes", in.channels(), cols);

    unsigned oh = dnn::outDim(in.height(), r, stride, false);
    unsigned ow = dnn::outDim(in.width(), s, stride, false);

    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice cur = rows.alloc(bits);
    bs::VecSlice best = rows.alloc(bits);
    bs::VecSlice cmp = rows.alloc(bits);

    if (ctrl.groupSize() == 0)
        ctrl.enroll(cc.coordOf(0));
    sram::Array &arr = cc.array(cc.coordOf(0));

    Instruction take_first = Instruction::copy(cur, best);
    Instruction fold;
    fold.op = Opcode::MaxInto;
    fold.a = best;
    fold.b = cur;
    fold.scratch = cmp;

    dnn::QTensor out(in.channels(), oh, ow, in.params());
    for (unsigned y = 0; y < oh; ++y) {
        for (unsigned x = 0; x < ow; ++x) {
            bool first = true;
            for (unsigned ri = 0; ri < r; ++ri) {
                for (unsigned si = 0; si < s; ++si) {
                    std::vector<uint64_t> iv(lanes, 0);
                    for (unsigned ci = 0; ci < in.channels(); ++ci)
                        iv[ci] = in.at(ci, y * stride + ri,
                                       x * stride + si);
                    bs::storeVector(arr, cur, iv);
                    ctrl.broadcast(first ? take_first : fold);
                    first = false;
                }
            }
            ++nPrograms;
            for (unsigned ci = 0; ci < in.channels(); ++ci)
                out.at(ci, y, x) = static_cast<uint8_t>(
                    bs::loadLane(arr, best, ci));
        }
    }
    return out;
}

} // namespace nc::core
