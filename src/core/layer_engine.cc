#include "core/layer_engine.hh"

#include <algorithm>

#include "bitserial/alu.hh"
#include "common/arena.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "dnn/layers.hh"
#include "sram/ownership.hh"

namespace nc::core
{

namespace bs = bitserial;

using dnn::padBefore;

namespace
{

/**
 * Build the shared slice map (identical in every array — that is what
 * makes one instruction stream sufficient; the same ConvRowLayout the
 * direct-ALU executor uses) and the per-window broadcast program:
 * zero the partials, RxS MAC macro-ops, one channel reduction.
 */
IsaConvProgram
buildConvProgram(const cache::Geometry &geom, const dnn::QWeights &w)
{
    const unsigned acc_bits = 24;

    IsaConvProgram p;
    p.rows = mapping::makeConvRowLayout(geom, w.c, w.r, w.s);

    p.program.push_back(Instruction::zero(p.rows.partial));
    for (unsigned k = 0; k < p.rows.rs; ++k)
        p.program.push_back(Instruction::mac(
            p.rows.filt[k], p.rows.inp[k],
            p.rows.partial.slice(0, acc_bits), p.rows.scratch,
            p.rows.zrow));
    p.program.push_back(Instruction::reduceSum(
        p.rows.partial, acc_bits, p.rows.lanes, p.rows.redScratch));
    return p;
}

/** Pin filter batch @p mi's weights into its array's filter band. */
void
storeFilters(cache::ComputeCache &cc, uint64_t base,
             const dnn::QWeights &w, const IsaConvProgram &p)
{
    common::ArenaScope scratch;
    std::span<uint64_t> fv = scratch.alloc(p.rows.lanes);
    for (unsigned mi = 0; mi < w.m; ++mi) {
        sram::Array &arr = cc.array(cc.coordOf(base + mi));
        for (unsigned k = 0; k < p.rows.rs; ++k) {
            std::fill(fv.begin(), fv.end(), 0);
            for (unsigned ci = 0; ci < w.c; ++ci)
                fv[ci] = w.at(mi, ci, k / w.s, k % w.s);
            bs::storeVector(arr, p.rows.filt[k], fv);
        }
    }
}

/**
 * The run-many half: stream every output window's inputs and
 * broadcast the fixed program to the group, reading back one
 * accumulator per array per window.
 */
std::vector<uint32_t>
runConvWindows(cache::ComputeCache &cc, Controller &ctrl,
               const IsaConvProgram &p, const dnn::QTensor &in,
               unsigned m, unsigned c, unsigned r, unsigned s,
               unsigned stride, bool same_pad, uint64_t base,
               unsigned &out_h, unsigned &out_w,
               std::atomic<uint64_t> &n_programs)
{
    nc_assert(in.channels() == c,
              "prepared ISA conv expects %u input channels, got %u", c,
              in.channels());
    out_h = dnn::outDim(in.height(), r, stride, same_pad);
    out_w = dnn::outDim(in.width(), s, stride, same_pad);
    unsigned pad_h = padBefore(in.height(), r, stride, same_pad);
    unsigned pad_w = padBefore(in.width(), s, stride, same_pad);

    std::vector<uint32_t> out(static_cast<size_t>(m) * out_h * out_w,
                              0);
    // Per-window streaming buffers, reused across every window, and
    // the per-array store prologue the controller folds into each
    // window's fan-out (hoisted so no per-window type erasure).
    std::vector<std::vector<uint64_t>> ivk(
        p.rows.rs, std::vector<uint64_t>(p.rows.lanes, 0));
    const std::function<void(const cache::ArrayCoord &)> store_window =
        [&](const cache::ArrayCoord &coord) {
            sram::Array &arr = cc.array(coord);
            for (unsigned k = 0; k < p.rows.rs; ++k)
                bs::storeVector(arr, p.rows.inp[k], ivk[k]);
        };
    for (unsigned y = 0; y < out_h; ++y) {
        for (unsigned x = 0; x < out_w; ++x) {
            // Stream the window — the same bytes reach every array
            // (one intra-slice broadcast per §IV-C). The per-array
            // stores are independent, so the controller runs them as
            // each array's prologue inside the program fan-out.
            for (unsigned k = 0; k < p.rows.rs; ++k) {
                int iy = static_cast<int>(y * stride + k / s) -
                         static_cast<int>(pad_h);
                int ix = static_cast<int>(x * stride + k % s) -
                         static_cast<int>(pad_w);
                std::vector<uint64_t> &iv = ivk[k];
                std::fill(iv.begin(), iv.end(), 0);
                if (iy >= 0 && ix >= 0 &&
                    iy < static_cast<int>(in.height()) &&
                    ix < static_cast<int>(in.width())) {
                    for (unsigned ci = 0; ci < c; ++ci)
                        iv[ci] = in.at(ci, iy, ix);
                }
            }

            uint64_t cycles = ctrl.run(p.program, &store_window);
            ++n_programs;
            nc_dprintf("LayerEngine",
                       "window (%u,%u): %llu cycles on %zu arrays", y,
                       x, static_cast<unsigned long long>(cycles),
                       ctrl.groupSize());

            for (unsigned mi = 0; mi < m; ++mi) {
                uint64_t sum = bs::loadLane(
                    cc.array(cc.coordOf(base + mi)), p.rows.partial,
                    0);
                out[(static_cast<size_t>(mi) * out_h + y) * out_w +
                    x] = static_cast<uint32_t>(sum);
            }
        }
    }
    return out;
}

} // namespace

LayerEngine::PreparedConvLayer
LayerEngine::prepareConv(const dnn::QWeights &w, unsigned stride,
                         bool same_pad, uint64_t base_array)
{
    // The broadcast path runs the untransformed one-array mapping
    // only: pack/split/chunk shapes would need per-chunk programs and
    // a cross-array merge macro the ISA does not define yet. The
    // direct-ALU executor covers those shapes.
    {
        dnn::ConvOp shape;
        shape.name = "isa-prepared";
        shape.c = w.c;
        shape.r = w.r;
        shape.s = w.s;
        shape.m = w.m;
        mapping::FunctionalConvPlan fp =
            mapping::planFunctionalConv(shape, cc.geometry());
        nc_assert(fp.fits && fp.legacy,
                  "conv (C=%u RxS=%ux%u) needs the pack/split/chunk "
                  "mapping, which the broadcast ISA path does not "
                  "support; use the functional (direct-ALU) backend",
                  w.c, w.r, w.s);
    }

    PreparedConvLayer p;
    p.eng = this;
    p.prog = buildConvProgram(cc.geometry(), w);
    p.m = w.m;
    p.c = w.c;
    p.r = w.r;
    p.s = w.s;
    p.stride = stride;
    p.samePad = same_pad;

    // Enroll one array per filter batch into the layer's own
    // lock-step group and pin its weights — paid exactly once.
    PreparedConvLayer::SlotGroup g;
    g.ctrl = std::make_unique<Controller>(cc, &pool);
    g.base = base_array;
    for (unsigned mi = 0; mi < w.m; ++mi)
        g.ctrl->enroll(cc.coordOf(base_array + mi));
    storeFilters(cc, base_array, w, p.prog);
    p.groups.push_back(std::move(g));
    return p;
}

unsigned
LayerEngine::PreparedConvLayer::pinReplica(const dnn::QWeights &w,
                                           uint64_t array_offset)
{
    nc_assert(w.m == m && w.c == c && w.r == r && w.s == s,
              "pinReplica: bank is %ux%ux%ux%u, layer wants "
              "%ux%ux%ux%u", w.m, w.c, w.r, w.s, m, c, r, s);
    cache::ComputeCache &cc = eng->cc;
    SlotGroup g;
    g.ctrl = std::make_unique<Controller>(cc, &eng->pool);
    g.base = groups.front().base + array_offset;
    for (unsigned mi = 0; mi < m; ++mi)
        g.ctrl->enroll(cc.coordOf(g.base + mi));
    storeFilters(cc, g.base, w, prog);
    groups.push_back(std::move(g));
    return static_cast<unsigned>(groups.size() - 1);
}

std::vector<uint32_t>
LayerEngine::PreparedConvLayer::run(const dnn::QTensor &in,
                                    unsigned &out_h, unsigned &out_w,
                                    unsigned slot)
{
    nc_assert(slot < groups.size(),
              "prepared ISA conv has %zu replicas, slot %u requested",
              groups.size(), slot);
    SlotGroup &g = groups[slot];
    return runConvWindows(eng->cc, *g.ctrl, prog, in, m, c, r, s,
                          stride, samePad, g.base, out_h, out_w,
                          eng->nPrograms);
}

std::vector<uint32_t>
LayerEngine::convLayer(const dnn::QTensor &in, const dnn::QWeights &w,
                       unsigned stride, bool same_pad, unsigned &out_h,
                       unsigned &out_w)
{
    // Legacy per-call entry point: compile the layer into the
    // engine's own broadcast group and run once. Micro-op sequence —
    // and hence every cycle counter — matches the historical fused
    // implementation.
    IsaConvProgram prog = buildConvProgram(cc.geometry(), w);
    for (unsigned mi = 0; mi < w.m; ++mi)
        ctrl.enroll(cc.coordOf(mi));
    storeFilters(cc, 0, w, prog);
    return runConvWindows(cc, ctrl, prog, in, w.m, w.c, w.r, w.s,
                          stride, same_pad, 0, out_h, out_w,
                          nPrograms);
}

dnn::QTensor
LayerEngine::maxPoolLayer(const dnn::QTensor &in, unsigned r,
                          unsigned s, unsigned stride, bool same_pad)
{
    if (ctrl.groupSize() == 0)
        ctrl.enroll(cc.coordOf(scratchBase));
    return maxPoolBroadcast(ctrl, scratchBase, in, r, s, stride,
                            same_pad);
}

dnn::QTensor
LayerEngine::maxPoolLayerAt(uint64_t scratch_array,
                            const dnn::QTensor &in, unsigned r,
                            unsigned s, unsigned stride, bool same_pad)
{
    // A throwaway group on the caller's scratch array: parallel
    // branches must not share the engine-level group (nor its cycle
    // bookkeeping) while they broadcast concurrently.
    Controller local(cc, &pool);
    local.enroll(cc.coordOf(scratch_array));
    return maxPoolBroadcast(local, scratch_array, in, r, s, stride,
                            same_pad);
}

dnn::QTensor
LayerEngine::maxPoolBroadcast(Controller &grp, uint64_t scratch_array,
                              const dnn::QTensor &in, unsigned r,
                              unsigned s, unsigned stride,
                              bool same_pad)
{
    unsigned cols = cc.geometry().arrayCols;
    unsigned lanes = static_cast<unsigned>(roundUpPow2(in.channels()));
    nc_assert(lanes <= cols, "maxPoolLayer: %u channels exceed %u "
              "lanes", in.channels(), cols);

    unsigned oh = dnn::outDim(in.height(), r, stride, same_pad);
    unsigned ow = dnn::outDim(in.width(), s, stride, same_pad);
    unsigned ph = padBefore(in.height(), r, stride, same_pad);
    unsigned pw = padBefore(in.width(), s, stride, same_pad);

    // The shared carve-up (mapping layer): streamed element, running
    // maximum, compare scratch — the same map the program verifier
    // checks the fold program against.
    mapping::PoolRowLayout prows =
        mapping::makePoolRowLayout(cc.geometry());
    const bs::VecSlice cur = prows.cur;
    const bs::VecSlice best = prows.best;

    sram::Array &arr = cc.array(cc.coordOf(scratch_array));

    Instruction take_first = Instruction::copy(cur, best);
    Instruction fold;
    fold.op = Opcode::MaxInto;
    fold.a = best;
    fold.b = cur;
    fold.scratch = prows.cmp;

    // One streaming buffer for every window, on the arena.
    common::ArenaScope scratch;
    std::span<uint64_t> iv = scratch.alloc(lanes);

    dnn::QTensor out(in.channels(), oh, ow, in.params());
    for (unsigned y = 0; y < oh; ++y) {
        for (unsigned x = 0; x < ow; ++x) {
            bool first = true;
            // SAME padding: out-of-image elements simply drop out of
            // the window's broadcast sequence (max over the valid
            // ones), so edge windows run shorter programs.
            for (unsigned ri = 0; ri < r; ++ri) {
                for (unsigned si = 0; si < s; ++si) {
                    int iy = static_cast<int>(y * stride + ri) -
                             static_cast<int>(ph);
                    int ix = static_cast<int>(x * stride + si) -
                             static_cast<int>(pw);
                    if (iy < 0 || ix < 0 ||
                        iy >= static_cast<int>(in.height()) ||
                        ix >= static_cast<int>(in.width()))
                        continue;
                    std::fill(iv.begin(), iv.end(), 0);
                    for (unsigned ci = 0; ci < in.channels(); ++ci)
                        iv[ci] = in.at(ci, iy, ix);
                    bs::storeVector(arr, cur, iv);
                    grp.broadcast(first ? take_first : fold);
                    first = false;
                }
            }
            nc_assert(!first, "maxPoolLayer: window (%u,%u) has no "
                      "valid elements", y, x);
            ++nPrograms;
            for (unsigned ci = 0; ci < in.channels(); ++ci)
                out.at(ci, y, x) = static_cast<uint8_t>(
                    bs::loadLane(arr, best, ci));
        }
    }
    return out;
}

LayerEngine::PreparedEltwiseLayer
LayerEngine::prepareEltwise(uint8_t mult, unsigned shift,
                            uint64_t scratch_array)
{
    const unsigned bits = 8;

    PreparedEltwiseLayer p;
    p.eng = this;
    p.mult = mult;
    p.sh = shift;
    PreparedEltwiseLayer::SlotGroup g;
    g.ctrl = std::make_unique<Controller>(cc, &pool);
    g.scratch = scratch_array;
    g.ctrl->enroll(cc.coordOf(scratch_array));
    p.groups.push_back(std::move(g));

    // Row carve-up and the fixed merge program, built exactly once:
    // widen add, multiply by the calibrated scalar, truncating shift,
    // in-array clamp — the same §IV-D sequence (and the same shared
    // mapping::EltwiseRowLayout carve-up) the direct-ALU kernel
    // drives, here as four broadcast instructions.
    p.rows = mapping::makeEltwiseRowLayout(cc.geometry());
    p.program.push_back(
        Instruction::add(p.rows.va, p.rows.vb, p.rows.acc,
                         p.rows.zrow));
    p.program.push_back(
        Instruction::multiply(p.rows.acc, p.rows.gain, p.rows.prod));
    p.program.push_back(Instruction::shiftDown(p.rows.prod, shift));
    p.program.push_back(Instruction::saturate(p.rows.prod, bits));
    return p;
}

unsigned
LayerEngine::PreparedEltwiseLayer::pinReplica(uint64_t array_offset)
{
    cache::ComputeCache &cc = eng->cc;
    SlotGroup g;
    g.ctrl = std::make_unique<Controller>(cc, &eng->pool);
    g.scratch = groups.front().scratch + array_offset;
    g.ctrl->enroll(cc.coordOf(g.scratch));
    groups.push_back(std::move(g));
    return static_cast<unsigned>(groups.size() - 1);
}

std::vector<uint8_t>
LayerEngine::PreparedEltwiseLayer::run(const std::vector<uint8_t> &a,
                                       const std::vector<uint8_t> &b,
                                       unsigned slot)
{
    const unsigned bits = 8;
    cache::ComputeCache &cc = eng->cc;
    nc_assert(a.size() == b.size(),
              "eltwise operands differ: %zu vs %zu elements", a.size(),
              b.size());
    nc_assert(slot < groups.size(),
              "prepared ISA eltwise has %zu replicas, slot %u "
              "requested", groups.size(), slot);
    SlotGroup &g = groups[slot];

    unsigned cols = cc.geometry().arrayCols;
    // Race detector (debug): the merge owns its slot's scratch array
    // (the nested broadcast fan-out re-claims it reentrantly).
    [[maybe_unused]] sram::ownership::ClaimScope own(
        cc.ownershipRegistry(),
        sram::ownership::Range{g.scratch, 1}, 0,
        "ISA eltwise merge kernel");
    sram::Array &arr = cc.array(cc.coordOf(g.scratch));
    bs::storeSplat(arr, rows.gain, mult, cols);

    common::ArenaScope scratch;
    std::span<uint64_t> iv = scratch.alloc(cols);
    std::vector<uint8_t> out(a.size());
    for (size_t base = 0; base < a.size(); base += cols) {
        size_t n = std::min<size_t>(cols, a.size() - base);
        for (size_t i = 0; i < n; ++i)
            iv[i] = a[base + i];
        bs::storeVector(arr, rows.va, iv.first(n));
        for (size_t i = 0; i < n; ++i)
            iv[i] = b[base + i];
        bs::storeVector(arr, rows.vb, iv.first(n));

        g.ctrl->run(program);
        ++eng->nPrograms;

        for (size_t i = 0; i < n; ++i) {
            out[base + i] = static_cast<uint8_t>(bs::loadLane(
                arr, rows.prod.slice(0, bits),
                static_cast<unsigned>(i)));
        }
    }
    return out;
}

} // namespace nc::core
