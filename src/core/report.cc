#include "core/report.hh"

#include <iomanip>

namespace nc::core
{

void
printStageTable(std::ostream &os, const InferenceReport &rep)
{
    os << std::left << std::setw(18) << "stage" << std::right
       << std::setw(12) << "latency_ms" << std::setw(9) << "passes"
       << std::setw(8) << "util%" << "\n";
    for (const auto &st : rep.stages) {
        os << std::left << std::setw(18) << st.name << std::right
           << std::setw(12) << std::fixed << std::setprecision(4)
           << st.totalPs() * picoToMs << std::setw(9)
           << st.serialPasses << std::setw(8) << std::setprecision(1)
           << st.utilization * 100.0 << "\n";
    }
    os << std::left << std::setw(18) << "total" << std::right
       << std::setw(12) << std::setprecision(4) << rep.latencyMs()
       << "\n";
}

void
printBreakdown(std::ostream &os, const InferenceReport &rep)
{
    const auto &p = rep.phases;
    double total = p.totalPs();
    auto row = [&](const char *name, double ps) {
        os << std::left << std::setw(16) << name << std::right
           << std::setw(10) << std::fixed << std::setprecision(4)
           << ps * picoToMs << " ms" << std::setw(8)
           << std::setprecision(2) << (total > 0 ? 100.0 * ps / total : 0)
           << " %\n";
    };
    row("filter_load", p.filterLoadPs);
    row("input_stream", p.inputStreamPs);
    row("output_xfer", p.outputXferPs);
    row("macs", p.macPs);
    row("reduction", p.reducePs);
    row("quantization", p.quantPs);
    row("pooling", p.poolPs);
    os << std::left << std::setw(16) << "total" << std::right
       << std::setw(10) << std::setprecision(4) << total * picoToMs
       << " ms\n";
}

void
dumpStats(std::ostream &os, const InferenceReport &rep)
{
    os << std::setprecision(9);
    os << "sim.network " << rep.networkName << "\n";
    os << "sim.batch " << rep.batch << "\n";
    os << "sim.sockets " << rep.sockets << "\n";
    os << "sim.latency_ms " << rep.latencyMs() << "\n";
    os << "sim.batch_ms " << rep.batchMs() << "\n";
    os << "sim.throughput_inf_per_s " << rep.throughput() << "\n";
    os << "sim.spill_ms " << rep.spillPs * picoToMs << "\n";
    os << "sim.image_slots " << rep.imageSlots << "\n";
    os << "sim.batch_passes " << rep.batchPasses << "\n";
    os << "sim.faults_detected " << rep.faultsDetected << "\n";
    os << "sim.arrays_retired " << rep.arraysRetired << "\n";
    os << "sim.pass_retries " << rep.passRetries << "\n";
    os << "sim.programs_verified " << rep.programsVerified << "\n";
    os << "sim.verify_ms " << rep.verifyMs << "\n";

    const auto &p = rep.phases;
    os << "phase.filter_load_ms " << p.filterLoadPs * picoToMs << "\n";
    os << "phase.input_stream_ms " << p.inputStreamPs * picoToMs
       << "\n";
    os << "phase.output_xfer_ms " << p.outputXferPs * picoToMs << "\n";
    os << "phase.mac_ms " << p.macPs * picoToMs << "\n";
    os << "phase.reduce_ms " << p.reducePs * picoToMs << "\n";
    os << "phase.quant_ms " << p.quantPs * picoToMs << "\n";
    os << "phase.pool_ms " << p.poolPs * picoToMs << "\n";

    for (const auto &st : rep.stages) {
        os << "stage." << st.name << ".latency_ms "
           << st.totalPs() * picoToMs << "\n";
        os << "stage." << st.name << ".passes " << st.serialPasses
           << "\n";
        os << "stage." << st.name << ".utilization "
           << st.utilization << "\n";
    }

    const auto &e = rep.energy;
    os << "energy.compute_J " << e.computeJ << "\n";
    os << "energy.access_J " << e.accessJ << "\n";
    os << "energy.dram_J " << e.dramJ << "\n";
    os << "energy.wire_J " << e.wireJ << "\n";
    os << "energy.background_J " << e.backgroundJ << "\n";
    os << "energy.total_J " << e.totalJ() << "\n";
    os << "power.avg_W " << rep.avgPowerW() << "\n";
}

void
printConfig(std::ostream &os, const NeuralCacheConfig &cfg)
{
    const auto &g = cfg.geometry;
    os << "config.geometry.name " << g.name << "\n";
    os << "config.geometry.slices " << g.slices << "\n";
    os << "config.geometry.ways " << g.waysPerSlice << "\n";
    os << "config.geometry.reserved_ways " << g.reservedWays << "\n";
    os << "config.geometry.total_arrays " << g.totalArrays() << "\n";
    os << "config.geometry.alu_slots " << g.aluSlots() << "\n";
    os << "config.geometry.capacity_mib "
       << bytesToMiB(g.capacityBytes()) << "\n";

    const auto &c = cfg.cost;
    os << "config.cost.mode " << arithModeName(c.mode) << "\n";
    os << "config.cost.bits " << c.bits << "\n";
    os << "config.cost.accumulator_bits " << c.accumulatorBits << "\n";
    os << "config.cost.paper_mac_cycles " << c.paperMacCycles << "\n";
    os << "config.cost.paper_reduce_cycles " << c.paperReduceCycles
       << "\n";
    os << "config.cost.input_stream_factor " << c.inputStreamFactor
       << "\n";
    os << "config.cost.output_drain_factor " << c.outputDrainFactor
       << "\n";
    os << "config.cost.overlap_input_stream "
       << (c.overlapInputStream ? 1 : 0) << "\n";
    os << "config.cost.compute_ghz "
       << c.timing.computeClock.freqHz * 1e-9 << "\n";
    os << "config.cost.access_ghz "
       << c.timing.accessClock.freqHz * 1e-9 << "\n";

    os << "config.dram.effective_gbps "
       << cfg.dram.effectiveBw.bytesPerSec * 1e-9 << "\n";
    os << "config.dram.latency_ns "
       << cfg.dram.streamLatencyPs * 1e-3 << "\n";

    const auto &e = cfg.energy;
    os << "config.energy.compute_pj " << e.array.computePj << "\n";
    os << "config.energy.access_pj " << e.array.accessPj << "\n";
    os << "config.energy.dram_pj_per_byte " << e.dramPjPerByte << "\n";
    os << "config.energy.wire_pj_per_byte " << e.wirePjPerByte << "\n";
    os << "config.energy.background_w " << e.backgroundPowerW << "\n";
    os << "config.sockets " << cfg.sockets << "\n";
}

void
printEnergy(std::ostream &os, const InferenceReport &rep)
{
    const auto &e = rep.energy;
    os << std::fixed << std::setprecision(4);
    os << "energy.compute_J    " << e.computeJ << "\n";
    os << "energy.access_J     " << e.accessJ << "\n";
    os << "energy.dram_J       " << e.dramJ << "\n";
    os << "energy.wire_J       " << e.wireJ << "\n";
    os << "energy.background_J " << e.backgroundJ << "\n";
    os << "energy.total_J      " << e.totalJ() << "\n";
    os << "power.avg_W         " << std::setprecision(2)
       << rep.avgPowerW() << "\n";
}

} // namespace nc::core
