#include "core/controller.hh"

#include "bitserial/alu.hh"
#include "bitserial/extensions.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "sram/ownership.hh"

namespace nc::core
{

namespace bs = bitserial;

namespace
{

void
requireWidth(const Instruction &inst, const bs::VecSlice &s,
             const char *which)
{
    if (s.bits == 0)
        nc_fatal("broadcast of %s rejected: zero-width %s operand",
                 opcodeName(inst.op), which);
}

/**
 * Operand sanity at the broadcast boundary: a zero-width slice would
 * make the bank FSM expand zero micro-ops and silently compute
 * nothing on every array in the group, so it is rejected by name
 * before any array sees the instruction.
 */
void
validateOperands(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Copy:
      case Opcode::CopyInv:
        requireWidth(inst, inst.a, "a");
        requireWidth(inst, inst.out, "out");
        break;
      case Opcode::Zero:
        requireWidth(inst, inst.out, "out");
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Multiply:
      case Opcode::Mac:
      case Opcode::Divide:
        requireWidth(inst, inst.a, "a");
        requireWidth(inst, inst.b, "b");
        requireWidth(inst, inst.out, "out");
        break;
      case Opcode::ReduceSum:
      case Opcode::ReduceMax:
      case Opcode::Relu:
      case Opcode::ShiftUp:
      case Opcode::ShiftDown:
      case Opcode::Saturate:
      case Opcode::Search:
        requireWidth(inst, inst.a, "a");
        break;
      case Opcode::MaxInto:
      case Opcode::MinInto:
      case Opcode::BatchNorm:
        requireWidth(inst, inst.a, "a");
        requireWidth(inst, inst.b, "b");
        break;
      case Opcode::LoadTag:
        break; // one raw row, no width to check
    }
}

} // namespace

void
Controller::enroll(const cache::ArrayCoord &coord)
{
    cc.array(coord); // materialize
    group.push_back(coord);
}

uint64_t
Controller::broadcast(const Instruction &inst)
{
    nc_assert(!group.empty(), "broadcast to an empty array group");
    validateOperands(inst);
    uint64_t cycles = 0;
    bool first = true;
    for (const auto &coord : group) {
        uint64_t c = execute(cc.array(coord), inst);
        if (first) {
            cycles = c;
            first = false;
        } else if (c != cycles) {
            nc_panic("lock-step divergence on %s: %llu vs %llu cycles",
                     opcodeName(inst.op),
                     static_cast<unsigned long long>(c),
                     static_cast<unsigned long long>(cycles));
        }
    }
    issued += cycles;
    nc_dprintf("Controller", "%s -> %llu cycles across %zu arrays",
               opcodeName(inst.op),
               static_cast<unsigned long long>(cycles), group.size());
    return cycles;
}

uint64_t
Controller::run(const std::vector<Instruction> &program,
                const std::function<void(const cache::ArrayCoord &)>
                    *prologue)
{
    if (program.empty())
        nc_fatal("Controller::run rejected: empty broadcast program "
                 "(%zu arrays enrolled, nothing to execute)",
                 group.size());
    if (!pool || pool->size() <= 1 || group.size() <= 1) {
        if (prologue) {
            for (const auto &coord : group)
                (*prologue)(coord);
        }
        uint64_t total = 0;
        for (const auto &inst : program)
            total += broadcast(inst);
        return total;
    }

    // Fan the whole program (plus the optional per-array prologue)
    // over the group: every array executes the identical instruction
    // sequence on its own state, so running the arrays concurrently
    // is bit-identical to interleaving them per instruction.
    // Per-array, per-instruction cycle counts are recorded into the
    // reused scratch and the lock-step divergence check runs after
    // the join.
    const size_t np = program.size();
    for (const auto &inst : program)
        validateOperands(inst);
    runCycles.assign(group.size() * np, 0);
    pool->parallelFor(group.size(), [&](size_t g) {
        // Race detector (debug): each task owns its enrolled array.
        [[maybe_unused]] sram::ownership::ClaimScope own(
            cc.ownershipRegistry(),
            sram::ownership::Range{cc.flatIndex(group[g]), 1}, 0,
            "broadcast program task");
        if (prologue)
            (*prologue)(group[g]);
        sram::Array &arr = cc.array(group[g]);
        for (size_t i = 0; i < np; ++i)
            runCycles[g * np + i] = execute(arr, program[i]);
    });

    uint64_t total = 0;
    for (size_t i = 0; i < np; ++i) {
        uint64_t c = runCycles[i];
        for (size_t g = 1; g < group.size(); ++g) {
            if (runCycles[g * np + i] != c) {
                nc_panic("lock-step divergence on %s: %llu vs %llu "
                         "cycles",
                         opcodeName(program[i].op),
                         static_cast<unsigned long long>(
                             runCycles[g * np + i]),
                         static_cast<unsigned long long>(c));
            }
        }
        issued += c;
        nc_dprintf("Controller", "%s -> %llu cycles across %zu arrays",
                   opcodeName(program[i].op),
                   static_cast<unsigned long long>(c), group.size());
        total += c;
    }
    return total;
}

uint64_t
Controller::execute(sram::Array &arr, const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Copy:
        return bs::copy(arr, inst.a, inst.out, inst.pred);
      case Opcode::CopyInv:
        return bs::copyInv(arr, inst.a, inst.out, inst.pred);
      case Opcode::Zero:
        return bs::zero(arr, inst.out, inst.pred);
      case Opcode::Add:
        return bs::add(arr, inst.a, inst.b, inst.out, inst.zeroRow,
                       inst.pred, inst.carryIn);
      case Opcode::Sub:
        return bs::sub(arr, inst.a, inst.b, inst.out, inst.scratch,
                       inst.zeroRow, inst.pred);
      case Opcode::Multiply:
        return bs::multiply(arr, inst.a, inst.b, inst.out);
      case Opcode::Mac:
        return bs::macScratch(arr, inst.a, inst.b, inst.out,
                              inst.scratch, inst.zeroRow);
      case Opcode::ReduceSum:
        return bs::reduceSum(arr, inst.a, inst.imm2, inst.imm,
                             inst.scratch);
      case Opcode::ReduceMax:
        return bs::reduceMax(arr, inst.a, inst.imm, inst.scratch,
                             inst.scratch2);
      case Opcode::MaxInto:
        return bs::maxInto(arr, inst.a, inst.b, inst.scratch);
      case Opcode::MinInto:
        return bs::minInto(arr, inst.a, inst.b, inst.scratch);
      case Opcode::Relu:
        return bs::relu(arr, inst.a);
      case Opcode::ShiftUp:
        return bs::shiftUp(arr, inst.a, inst.imm);
      case Opcode::ShiftDown:
        return bs::shiftDown(arr, inst.a, inst.imm);
      case Opcode::Saturate:
        return bs::saturate(arr, inst.a, inst.imm);
      case Opcode::Divide:
        return bs::divide(arr, inst.a, inst.b, inst.out, inst.scratch,
                          inst.scratch2, inst.c);
      case Opcode::BatchNorm:
        return bs::batchNorm(arr, inst.a, inst.b, inst.c, inst.imm,
                             inst.scratch, inst.zeroRow);
      case Opcode::Search:
        return bs::searchKey(arr, inst.a, inst.key);
      case Opcode::LoadTag:
        arr.opLoadTag(inst.a.base);
        return 1;
    }
    nc_panic("undecodable opcode %d", static_cast<int>(inst.op));
}

} // namespace nc::core
