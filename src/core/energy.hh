/**
 * @file
 * Energy / power accounting (paper §V, Table III).
 *
 * Four metered components plus a background term:
 *  - compute:    active-array compute cycles x 15.4 pJ (22 nm SPICE)
 *  - access:     conventional row reads/writes x 8.6 pJ
 *  - dram:       bytes moved to/from memory x per-byte energy
 *  - wire:       on-chip bus/ring movement x per-byte energy
 *  - background: the rest of the package (uncore, reserved way
 *    serving the cores, clocks) drawing a constant power for the
 *    duration of the inference.
 */

#ifndef NC_CORE_ENERGY_HH
#define NC_CORE_ENERGY_HH

#include <vector>

#include "core/cost_model.hh"
#include "sram/timing.hh"

namespace nc::core
{

/** Energy model parameters. */
struct EnergyConfig
{
    sram::EnergyParams array = sram::EnergyParams::node22nm();
    /** DRAM channel energy per byte, picojoules. */
    double dramPjPerByte = 40.0;
    /** On-chip interconnect energy per byte moved, picojoules. */
    double wirePjPerByte = 6.0;
    /** Constant package draw while the accelerator runs, watts
     * (calibrated so Inception v3 lands at Table III's 0.246 J /
     * 52.9 W). */
    double backgroundPowerW = 15.0;
};

/** Metered energy of one inference. */
struct EnergyReport
{
    double computeJ = 0;
    double accessJ = 0;
    double dramJ = 0;
    double wireJ = 0;
    double backgroundJ = 0;

    double
    totalJ() const
    {
        return computeJ + accessJ + dramJ + wireJ + backgroundJ;
    }

    /** Average power over @p seconds. */
    double
    avgPowerW(double seconds) const
    {
        return seconds > 0 ? totalJ() / seconds : 0.0;
    }
};

/** Meter @p stages, whose wall clock was @p total_ps. */
EnergyReport meterEnergy(const std::vector<StageCost> &stages,
                         double total_ps, const EnergyConfig &cfg = {});

} // namespace nc::core

#endif // NC_CORE_ENERGY_HH
