#include "core/program_verify.hh"

#include <algorithm>
#include <chrono>

#include "bitserial/extensions.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "core/compiled_model.hh"
#include "core/cost_model.hh"
#include "core/neural_cache.hh"
#include "dnn/layers.hh"

namespace nc::core::verify
{

namespace bs = bitserial;

namespace
{

/**
 * The abstract machine one program runs on: a per-row defined bitmap
 * (seeded from the prologue defs and the guard row), the carry and
 * tag latch states, and the running cycle sum. Every check mirrors
 * an nc_assert the ALU would hit at runtime — plus the dataflow and
 * latch rules no runtime assert can see — as a named compile-time
 * violation.
 */
class Interpreter
{
  public:
    explicit Interpreter(const ProgramContext &ctx_) : ctx(ctx_)
    {
        if (ctx.arrayRows == 0)
            nc_fatal("program verify '%s': zero-row array geometry",
                     ctx.layer.c_str());
        defined.assign(ctx.arrayRows, false);
        // The guard row is the constant-zero line: always readable
        // (uneven adds sense it), never writable.
        if (ctx.guardRow != bs::kNoRow) {
            if (ctx.guardRow >= ctx.arrayRows)
                nc_fatal("program verify '%s': guard row %u outside "
                         "the %u-row array", ctx.layer.c_str(),
                         ctx.guardRow, ctx.arrayRows);
            defined[ctx.guardRow] = true;
        }
        for (const bs::VecSlice &s : ctx.initialDefs) {
            boundsOrDie(s, "prologue def");
            for (unsigned j = 0; j < s.bits; ++j)
                defined[s.row(j)] = true;
        }
    }

    ProgramStats
    run(const std::vector<Instruction> &program)
    {
        stats.instructions = program.size();
        stats.maxLiveRows = liveRows();
        for (idx = 0; idx < program.size(); ++idx) {
            step(program[idx]);
            stats.maxLiveRows =
                std::max(stats.maxLiveRows, liveRows());
        }
        return stats;
    }

  private:
    enum class Latch { Clobbered, Valid };

    /** "program verify '<layer>': inst <idx> (<opcode>)" */
    std::string
    where() const
    {
        return detail::format("program verify '%s': inst %zu (%s)",
                              ctx.layer.c_str(), idx,
                              opcodeName(cur->op));
    }

    unsigned
    liveRows() const
    {
        return static_cast<unsigned>(
            std::count(defined.begin(), defined.end(), true));
    }

    /** Bounds half of check class 1 (no interpreter state needed). */
    void
    boundsOrDie(const bs::VecSlice &s, const char *which) const
    {
        const char *layer = ctx.layer.c_str();
        if (s.bits == 0) {
            if (cur)
                nc_fatal("%s: zero-width %s operand", where().c_str(),
                         which);
            nc_fatal("program verify '%s': zero-width %s slice",
                     layer, which);
        }
        if (s.base == bs::kNoRow || s.base + s.bits > ctx.arrayRows ||
            s.base + s.bits < s.base) {
            if (cur)
                nc_fatal("%s: %s slice [%u,+%u) outside the %u-row "
                         "array", where().c_str(), which, s.base,
                         s.bits, ctx.arrayRows);
            nc_fatal("program verify '%s': %s slice [%u,+%u) outside "
                     "the %u-row array", layer, which, s.base, s.bits,
                     ctx.arrayRows);
        }
    }

    /** In-place aliasing is only safe when base rows line up. */
    void
    aliasOrDie(const bs::VecSlice &out, const bs::VecSlice &in,
               const char *which) const
    {
        if (out.base != in.base && out.overlaps(in))
            nc_fatal("%s: shifted overlap between %s [%u,+%u) and "
                     "destination [%u,+%u)", where().c_str(), which,
                     in.base, in.bits, out.base, out.bits);
    }

    /** Check class 2: every read row must carry a def. */
    void
    readOrDie(const bs::VecSlice &s, const char *which) const
    {
        for (unsigned j = 0; j < s.bits; ++j) {
            if (!defined[s.row(j)])
                nc_fatal("%s: %s reads row %u (bit %u of [%u,+%u)) "
                         "before any def", where().c_str(), which,
                         s.row(j), j, s.base, s.bits);
        }
    }

    void
    readRowOrDie(unsigned row, const char *which) const
    {
        if (row >= ctx.arrayRows)
            nc_fatal("%s: %s row %u outside the %u-row array",
                     where().c_str(), which, row, ctx.arrayRows);
        if (!defined[row])
            nc_fatal("%s: %s reads row %u before any def",
                     where().c_str(), which, row);
    }

    /** Uneven-width ops sense the zero row; it must be real. */
    void
    zeroRowOrDie(unsigned zrow) const
    {
        if (zrow == bs::kNoRow)
            nc_fatal("%s: uneven operand widths require a zero row",
                     where().c_str());
        readRowOrDie(zrow, "zero-row pad");
    }

    /**
     * Check class 3 + the write half of class 2: the guard row is
     * never a destination, and a non-predicated write defines its
     * rows (a predicated write leaves lanes whose tag is clear
     * untouched, so it cannot introduce a def).
     */
    void
    write(const bs::VecSlice &s, const char *which, bool pred = false)
    {
        for (unsigned j = 0; j < s.bits; ++j) {
            const unsigned row = s.row(j);
            if (row == ctx.guardRow)
                nc_fatal("%s: %s slice [%u,+%u) writes the reserved "
                         "guard row %u", where().c_str(), which,
                         s.base, s.bits, ctx.guardRow);
            if (!pred && !defined[row]) {
                defined[row] = true;
                ++stats.defs;
            }
        }
    }

    /** Check class 4: latch consumers need a live producer. */
    void
    tagValidOrDie() const
    {
        if (tag != Latch::Valid)
            nc_fatal("%s: predicated write-back consumes the tag "
                     "latches, but no live Search/LoadTag precedes it "
                     "(tag clobbered or never defined)",
                     where().c_str());
    }

    void
    carryValidOrDie() const
    {
        if (carry != Latch::Valid)
            nc_fatal("%s: carry-in consumes the carry latches, but no "
                     "live Add/Sub precedes it (carry clobbered or "
                     "never defined)", where().c_str());
    }

    void step(const Instruction &inst);

    const ProgramContext &ctx;
    ProgramStats stats;
    std::vector<bool> defined;
    Latch carry = Latch::Clobbered;
    Latch tag = Latch::Clobbered;
    size_t idx = 0;
    const Instruction *cur = nullptr;
};

void
Interpreter::step(const Instruction &inst)
{
    cur = &inst;

    // The pred and carryIn flags only mean something to the ops whose
    // micro-sequences thread them through; anywhere else they are a
    // malformed encoding, not a silent no-op.
    const bool predicable =
        inst.op == Opcode::Copy || inst.op == Opcode::CopyInv ||
        inst.op == Opcode::Zero || inst.op == Opcode::Add ||
        inst.op == Opcode::Sub;
    if (inst.pred && !predicable)
        nc_fatal("%s: pred set on an opcode with no predicated "
                 "write-back", where().c_str());
    if (inst.pred)
        tagValidOrDie();
    if (inst.carryIn && inst.op != Opcode::Add)
        nc_fatal("%s: carryIn set on an opcode that cannot consume "
                 "the carry latches", where().c_str());

    switch (inst.op) {
      case Opcode::Copy:
      case Opcode::CopyInv: {
        boundsOrDie(inst.a, "a");
        boundsOrDie(inst.out, "out");
        if (inst.out.bits < inst.a.bits)
            nc_fatal("%s: copy into narrower slice (out %u < a %u "
                     "bits)", where().c_str(), inst.out.bits,
                     inst.a.bits);
        aliasOrDie(inst.out, inst.a, "a");
        readOrDie(inst.a, "a");
        // Only the low a.bits rows of the destination are driven.
        write(bs::VecSlice{inst.out.base, inst.a.bits}, "out",
              inst.pred);
        break;
      }
      case Opcode::Zero: {
        boundsOrDie(inst.out, "out");
        write(inst.out, "out", inst.pred);
        break;
      }
      case Opcode::Add: {
        boundsOrDie(inst.a, "a");
        boundsOrDie(inst.b, "b");
        boundsOrDie(inst.out, "out");
        const unsigned n = std::max(inst.a.bits, inst.b.bits);
        if (inst.out.bits != n && inst.out.bits != n + 1)
            nc_fatal("%s: add output %u bits for %u-bit operands",
                     where().c_str(), inst.out.bits, n);
        if (inst.a.bits != inst.b.bits)
            zeroRowOrDie(inst.zeroRow);
        aliasOrDie(inst.out, inst.a, "a");
        aliasOrDie(inst.out, inst.b, "b");
        if (inst.carryIn)
            carryValidOrDie();
        readOrDie(inst.a, "a");
        readOrDie(inst.b, "b");
        write(inst.out, "out", inst.pred);
        carry = Latch::Valid; // holds the final carry-out
        break;
      }
      case Opcode::Sub: {
        boundsOrDie(inst.a, "a");
        boundsOrDie(inst.b, "b");
        boundsOrDie(inst.out, "out");
        boundsOrDie(inst.scratch, "scratch");
        if (inst.a.bits != inst.b.bits)
            nc_fatal("%s: sub requires equal widths (a %u, b %u)",
                     where().c_str(), inst.a.bits, inst.b.bits);
        if (inst.scratch.bits < inst.b.bits)
            nc_fatal("%s: sub scratch [%u,+%u) narrower than b (%u "
                     "bits)", where().c_str(), inst.scratch.base,
                     inst.scratch.bits, inst.b.bits);
        const unsigned n = inst.a.bits;
        if (inst.out.bits != n && inst.out.bits != n + 1)
            nc_fatal("%s: sub output %u bits for %u-bit operands",
                     where().c_str(), inst.out.bits, n);
        const bs::VecSlice inv = inst.scratch.slice(0, inst.b.bits);
        aliasOrDie(inv, inst.b, "b");
        aliasOrDie(inst.out, inst.a, "a");
        aliasOrDie(inst.out, inv, "scratch");
        readOrDie(inst.a, "a");
        readOrDie(inst.b, "b");
        write(inv, "scratch", inst.pred);
        write(inst.out, "out", inst.pred);
        carry = Latch::Valid;
        break;
      }
      case Opcode::Multiply: {
        boundsOrDie(inst.a, "a");
        boundsOrDie(inst.b, "b");
        boundsOrDie(inst.out, "out");
        if (inst.out.bits != inst.a.bits + inst.b.bits)
            nc_fatal("%s: product must be %u bits, got %u",
                     where().c_str(), inst.a.bits + inst.b.bits,
                     inst.out.bits);
        if (inst.out.overlaps(inst.a) || inst.out.overlaps(inst.b))
            nc_fatal("%s: product [%u,+%u) overlaps an operand",
                     where().c_str(), inst.out.base, inst.out.bits);
        readOrDie(inst.a, "a");
        readOrDie(inst.b, "b");
        write(inst.out, "out"); // zeroed first: a full def
        carry = tag = Latch::Clobbered;
        break;
      }
      case Opcode::Mac: {
        boundsOrDie(inst.a, "a");
        boundsOrDie(inst.b, "b");
        boundsOrDie(inst.out, "acc");
        boundsOrDie(inst.scratch, "scratch");
        if (inst.scratch.bits != inst.a.bits + inst.b.bits)
            nc_fatal("%s: scratch [%u,+%u) must fit the %u-bit "
                     "product", where().c_str(), inst.scratch.base,
                     inst.scratch.bits, inst.a.bits + inst.b.bits);
        if (inst.out.bits < inst.scratch.bits)
            nc_fatal("%s: accumulator [%u,+%u) narrower than the "
                     "product", where().c_str(), inst.out.base,
                     inst.out.bits);
        if (inst.scratch.overlaps(inst.a) ||
            inst.scratch.overlaps(inst.b))
            nc_fatal("%s: product scratch [%u,+%u) overlaps an "
                     "operand", where().c_str(), inst.scratch.base,
                     inst.scratch.bits);
        if (inst.scratch.bits != inst.out.bits)
            zeroRowOrDie(inst.zeroRow); // uneven scratch+acc add
        aliasOrDie(inst.out, inst.scratch, "scratch");
        readOrDie(inst.a, "a");
        readOrDie(inst.b, "b");
        readOrDie(inst.out, "acc"); // read-modify-write
        write(inst.scratch, "scratch");
        write(inst.out, "acc");
        carry = tag = Latch::Clobbered;
        break;
      }
      case Opcode::ReduceSum: {
        const unsigned lanes = inst.imm;
        const unsigned w0 = inst.imm2;
        if (lanes == 0 || !isPow2(lanes))
            nc_fatal("%s: lanes %u not a power of two",
                     where().c_str(), lanes);
        if (w0 == 0)
            nc_fatal("%s: zero live width", where().c_str());
        const unsigned steps = log2Ceil(lanes);
        boundsOrDie(inst.a, "acc");
        if (inst.a.bits < w0 + steps)
            nc_fatal("%s: reduction headroom: need %u rows, acc "
                     "[%u,+%u)", where().c_str(), w0 + steps,
                     inst.a.base, inst.a.bits);
        if (steps > 0) {
            boundsOrDie(inst.scratch, "scratch");
            if (inst.scratch.bits < w0 + steps - 1)
                nc_fatal("%s: reduction scratch: need %u rows, have "
                         "[%u,+%u)", where().c_str(), w0 + steps - 1,
                         inst.scratch.base, inst.scratch.bits);
            if (inst.scratch.overlaps(inst.a))
                nc_fatal("%s: reduction scratch [%u,+%u) overlaps "
                         "the accumulator", where().c_str(),
                         inst.scratch.base, inst.scratch.bits);
        }
        readOrDie(inst.a.slice(0, w0), "acc");
        if (steps > 0) {
            write(inst.a.slice(0, w0 + steps), "acc");
            write(inst.scratch.slice(0, w0 + steps - 1), "scratch");
            carry = Latch::Clobbered;
        }
        break;
      }
      case Opcode::ReduceMax: {
        const unsigned lanes = inst.imm;
        if (lanes == 0 || !isPow2(lanes))
            nc_fatal("%s: lanes %u not a power of two",
                     where().c_str(), lanes);
        boundsOrDie(inst.a, "data");
        readOrDie(inst.a, "data");
        if (lanes > 1) {
            boundsOrDie(inst.scratch, "move scratch");
            boundsOrDie(inst.scratch2, "compare scratch");
            if (inst.scratch.bits < inst.a.bits ||
                inst.scratch2.bits < inst.a.bits)
                nc_fatal("%s: scratch narrower than the %u-bit data",
                         where().c_str(), inst.a.bits);
            write(inst.a, "data");
            write(inst.scratch.slice(0, inst.a.bits), "move scratch");
            write(inst.scratch2.slice(0, inst.a.bits),
                  "compare scratch");
            carry = tag = Latch::Clobbered;
        }
        break;
      }
      case Opcode::MaxInto:
      case Opcode::MinInto: {
        boundsOrDie(inst.a, "a");
        boundsOrDie(inst.b, "b");
        boundsOrDie(inst.scratch, "scratch");
        if (inst.a.bits != inst.b.bits)
            nc_fatal("%s: width mismatch (a %u, b %u)",
                     where().c_str(), inst.a.bits, inst.b.bits);
        if (inst.scratch.bits < inst.a.bits)
            nc_fatal("%s: compare scratch [%u,+%u) narrower than the "
                     "operands", where().c_str(), inst.scratch.base,
                     inst.scratch.bits);
        const bs::VecSlice cmp = inst.scratch.slice(0, inst.a.bits);
        aliasOrDie(cmp, inst.b, "b");
        if (cmp.overlaps(inst.a))
            nc_fatal("%s: compare scratch overlaps operand a",
                     where().c_str());
        readOrDie(inst.a, "a");
        readOrDie(inst.b, "b");
        write(cmp, "scratch");
        write(inst.a, "a", /*pred=*/true); // selective copy-back
        carry = tag = Latch::Clobbered;
        break;
      }
      case Opcode::Relu: {
        boundsOrDie(inst.a, "a");
        readOrDie(inst.a, "a");
        write(inst.a, "a", /*pred=*/true); // sign-predicated zero
        tag = Latch::Clobbered;
        break;
      }
      case Opcode::ShiftUp:
      case Opcode::ShiftDown: {
        boundsOrDie(inst.a, "a");
        readOrDie(inst.a, "a");
        write(inst.a, "a");
        break;
      }
      case Opcode::Saturate: {
        boundsOrDie(inst.a, "a");
        if (inst.imm == 0 || inst.imm >= inst.a.bits)
            nc_fatal("%s: clamp to %u bits of a %u-bit value",
                     where().c_str(), inst.imm, inst.a.bits);
        readOrDie(inst.a, "a");
        write(inst.a.slice(0, inst.imm), "a", /*pred=*/true);
        tag = Latch::Clobbered;
        break;
      }
      case Opcode::Divide: {
        boundsOrDie(inst.a, "num");
        boundsOrDie(inst.b, "den");
        boundsOrDie(inst.out, "quot");
        boundsOrDie(inst.scratch, "rwork");
        boundsOrDie(inst.scratch2, "twork");
        boundsOrDie(inst.c, "dwork");
        const unsigned n = inst.a.bits, d = inst.b.bits;
        if (inst.out.bits < n)
            nc_fatal("%s: quotient [%u,+%u) too narrow for a %u-bit "
                     "dividend", where().c_str(), inst.out.base,
                     inst.out.bits, n);
        if (inst.scratch.bits < n + d)
            nc_fatal("%s: rwork needs %u rows, have [%u,+%u)",
                     where().c_str(), n + d, inst.scratch.base,
                     inst.scratch.bits);
        if (inst.scratch2.bits < d + 1 || inst.c.bits < d + 1)
            nc_fatal("%s: t/d work bands need %u rows",
                     where().c_str(), d + 1);
        readOrDie(inst.a, "num");
        readOrDie(inst.b, "den");
        write(inst.scratch.slice(0, n + d), "rwork");
        write(inst.c.slice(0, d + 1), "dwork");
        write(inst.scratch2.slice(0, d + 1), "twork");
        write(inst.out.slice(0, n), "quot");
        carry = tag = Latch::Clobbered;
        break;
      }
      case Opcode::BatchNorm: {
        boundsOrDie(inst.a, "val");
        boundsOrDie(inst.b, "gamma");
        boundsOrDie(inst.c, "beta");
        boundsOrDie(inst.scratch, "prod");
        if (inst.c.bits != inst.a.bits)
            nc_fatal("%s: beta width %u must match the %u-bit value",
                     where().c_str(), inst.c.bits, inst.a.bits);
        if (inst.scratch.bits != inst.a.bits + inst.b.bits)
            nc_fatal("%s: product band needs %u rows, have [%u,+%u)",
                     where().c_str(), inst.a.bits + inst.b.bits,
                     inst.scratch.base, inst.scratch.bits);
        if (inst.imm + inst.a.bits > inst.scratch.bits)
            nc_fatal("%s: shift %u pushes the window past the "
                     "product", where().c_str(), inst.imm);
        if (inst.scratch.overlaps(inst.a) ||
            inst.scratch.overlaps(inst.b))
            nc_fatal("%s: product band overlaps an operand",
                     where().c_str());
        readOrDie(inst.a, "val");
        readOrDie(inst.b, "gamma");
        readOrDie(inst.c, "beta");
        write(inst.scratch, "prod");
        write(inst.a, "val");
        carry = tag = Latch::Clobbered;
        break;
      }
      case Opcode::Search: {
        boundsOrDie(inst.a, "a");
        if (inst.a.bits > 64)
            nc_fatal("%s: key wider than 64 bits", where().c_str());
        if (truncate(inst.key, inst.a.bits) != inst.key)
            nc_fatal("%s: key does not fit %u bits", where().c_str(),
                     inst.a.bits);
        readOrDie(inst.a, "a");
        tag = Latch::Valid;
        break;
      }
      case Opcode::LoadTag: {
        readRowOrDie(inst.a.base, "tag source");
        tag = Latch::Valid;
        break;
      }
    }

    stats.staticCycles += instructionCycles(inst, ctx.alu);
    cur = nullptr;
}

/** Synthesize + verify one layer program and record its report. */
ProgramStats
verifyOne(const ProgramContext &ctx,
          const std::vector<Instruction> &program, const char *kind,
          std::vector<LayerProgramReport> *reports)
{
    const ProgramStats st = verifyProgram(ctx, program);
    if (reports)
        reports->push_back({ctx.layer, kind, st});
    return st;
}

/** The §IV-D merge scalars every eltwise layer calibrates to (both
 * operands are requantized bytes, so acc_max is 2*255; shift only
 * positions the window — the program's shape and cost are
 * shift-invariant). */
constexpr unsigned kEltwiseShift = 8;

/** Whether the config's cycle constants match the canonical 8-bit /
 * 24-bit-accumulator programs the kernels hard-code. */
bool
costCheckable(const CostConfig &cost)
{
    return cost.bits == 8 && cost.accumulatorBits == 24;
}

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

} // namespace

uint64_t
instructionCycles(const Instruction &inst,
                  const bitserial::AluConfig &alu)
{
    switch (inst.op) {
      case Opcode::Copy:
      case Opcode::CopyInv:
        return bs::implCopyCycles(inst.a.bits);
      case Opcode::Zero:
        return bs::implCopyCycles(inst.out.bits);
      case Opcode::Add: {
        const unsigned n = std::max(inst.a.bits, inst.b.bits);
        return bs::implAddCycles(n, inst.out.bits == n + 1);
      }
      case Opcode::Sub:
        return bs::implCopyCycles(inst.b.bits) +
               bs::implAddCycles(inst.a.bits,
                                 inst.out.bits == inst.a.bits + 1);
      case Opcode::Multiply:
        return bs::implMulCycles(inst.a.bits, inst.b.bits);
      case Opcode::Mac:
        // multiply into scratch, then the scratch+acc in-place add
        // (acc is the wider operand; no carry-out row).
        return bs::implMulCycles(inst.a.bits, inst.b.bits) +
               bs::implAddCycles(
                   std::max(inst.scratch.bits, inst.out.bits), false);
      case Opcode::ReduceSum:
        return bs::implReduceSumCycles(inst.imm2, inst.imm,
                                       alu.moveCyclesPerRow);
      case Opcode::ReduceMax:
        return bs::implReduceMaxCycles(inst.a.bits, inst.imm,
                                       alu.moveCyclesPerRow);
      case Opcode::MaxInto:
      case Opcode::MinInto:
        return bs::implMaxCycles(inst.a.bits);
      case Opcode::Relu:
        return bs::implReluCycles(inst.a.bits);
      case Opcode::ShiftUp:
      case Opcode::ShiftDown:
        return bs::implShiftCycles(inst.a.bits);
      case Opcode::Saturate:
        return bs::implSaturateCycles(inst.a.bits, inst.imm);
      case Opcode::Divide:
        return bs::implDivCycles(inst.a.bits, inst.b.bits);
      case Opcode::BatchNorm:
        return bs::implBatchNormCycles(inst.a.bits, inst.b.bits);
      case Opcode::Search:
        return inst.a.bits;
      case Opcode::LoadTag:
        return 1;
    }
    nc_panic("undecodable opcode %d", static_cast<int>(inst.op));
}

void
crossCheckProgramCostOrDie(const std::string &layer, const char *kind,
                           uint64_t static_cycles,
                           uint64_t analytic_cycles)
{
    if (static_cycles != analytic_cycles)
        nc_fatal("program verify '%s': %s program cost mismatch: "
                 "static sum %llu cycles, CostModel charges %llu",
                 layer.c_str(), kind,
                 static_cast<unsigned long long>(static_cycles),
                 static_cast<unsigned long long>(analytic_cycles));
}

ProgramStats
verifyProgram(const ProgramContext &ctx,
              const std::vector<Instruction> &program)
{
    if (program.empty())
        nc_fatal("program verify '%s': empty program",
                 ctx.layer.c_str());
    Interpreter interp(ctx);
    return interp.run(program);
}

std::vector<Instruction>
convWindowProgram(const mapping::ConvRowLayout &rows,
                  unsigned acc_bits)
{
    // Mirrors LayerEngine::buildConvProgram and the macro-op order
    // Executor::PreparedConv::run issues: packed 1x1 mappings stage
    // every MAC's input through the single slot inp[0].
    std::vector<Instruction> p;
    p.push_back(Instruction::zero(rows.partial));
    for (unsigned k = 0; k < rows.rs; ++k)
        p.push_back(Instruction::mac(
            rows.filt[k], rows.inp[rows.inp.size() > 1 ? k : 0],
            rows.partial.slice(0, acc_bits), rows.scratch, rows.zrow));
    p.push_back(Instruction::reduceSum(rows.partial, acc_bits,
                                       rows.lanes, rows.redScratch));
    return p;
}

std::vector<Instruction>
eltwiseMergeProgram(const mapping::EltwiseRowLayout &rows,
                    unsigned shift, unsigned bits)
{
    std::vector<Instruction> p;
    p.push_back(Instruction::add(rows.va, rows.vb, rows.acc,
                                 rows.zrow));
    p.push_back(Instruction::multiply(rows.acc, rows.gain, rows.prod));
    p.push_back(Instruction::shiftDown(rows.prod, shift));
    p.push_back(Instruction::saturate(rows.prod, bits));
    return p;
}

std::vector<Instruction>
maxPoolWindowProgram(const mapping::PoolRowLayout &rows,
                     unsigned window)
{
    nc_assert(window >= 1, "empty pooling window");
    std::vector<Instruction> p;
    p.push_back(Instruction::copy(rows.cur, rows.best));
    for (unsigned k = 1; k < window; ++k) {
        Instruction fold;
        fold.op = Opcode::MaxInto;
        fold.a = rows.best;
        fold.b = rows.cur;
        fold.scratch = rows.cmp;
        p.push_back(fold);
    }
    return p;
}

void
requireAuditedBand(const std::string &layer, uint64_t base,
                   uint64_t arrays,
                   const std::vector<mapping::AuditRange> &ranges)
{
    if (arrays == 0)
        nc_fatal("program verify '%s': empty array band at %llu",
                 layer.c_str(),
                 static_cast<unsigned long long>(base));
    for (const mapping::AuditRange &r : ranges) {
        if (r.base <= base && base + arrays <= r.base + r.arrays)
            return;
    }
    nc_fatal("program verify '%s': array band [%llu,+%llu) is not "
             "contained in any range the plan auditor proved placed",
             layer.c_str(), static_cast<unsigned long long>(base),
             static_cast<unsigned long long>(arrays));
}

VerifySummary
verifyCompiledModelOrDie(const CompiledModel &model,
                         std::vector<LayerProgramReport> *reports)
{
    const Clock::time_point t0 = Clock::now();
    VerifySummary sum;

    const NeuralCacheConfig &cfg = model.config();
    const cache::Geometry &geom = cfg.geometry;
    const bool check_cost = costCheckable(cfg.cost);
    const CostModel costs(geom, cfg.cost);
    const std::vector<mapping::AuditRange> ranges =
        mapping::planRanges(model);

    for (const CompiledLayer &layer : model.compiledLayers()) {
        if (layer.backend != BackendKind::Functional &&
            layer.backend != BackendKind::Isa)
            continue; // reference layers run CPU loops, no program

        const std::string &name = layer.op.name();
        ProgramContext ctx;
        ctx.layer = name;
        ctx.arrayRows = geom.arrayRows;
        ctx.alu = cfg.cost.alu;

        if (layer.op.isConv()) {
            // Both kernels carve the same shared ConvRowLayout; the
            // ISA engine's cached stream is checked verbatim, the
            // direct-ALU kernel through the canonical program it
            // issues by hand.
            const mapping::ConvRowLayout *rows = nullptr;
            std::vector<Instruction> synth;
            const std::vector<Instruction> *prog = nullptr;
            if (layer.isaConv) {
                rows = &layer.isaConv->program().rows;
                prog = &layer.isaConv->program().program;
            } else if (layer.funcConv) {
                rows = &layer.funcConv->rowLayout();
                synth = convWindowProgram(*rows);
                prog = &synth;
            } else {
                continue; // not prepared (placed elsewhere)
            }
            ctx.guardRow = rows->zrow;
            ctx.initialDefs = rows->filt; // stationary filter pins
            ctx.initialDefs.insert(ctx.initialDefs.end(),
                                   rows->inp.begin(),
                                   rows->inp.end()); // window stream
            const ProgramStats st =
                verifyOne(ctx, *prog, "conv", reports);
            if (layer.bandArrays > 0)
                requireAuditedBand(name, layer.baseArray,
                                   layer.bandArrays, ranges);
            if (check_cost)
                crossCheckProgramCostOrDie(name, "conv", st.staticCycles,
                                costs.convWindowProgramCycles(
                                    rows->lanes, rows->rs));
            ++sum.programsVerified;
        } else if (layer.op.kind == dnn::OpKind::EltwiseAdd) {
            const mapping::EltwiseRowLayout *rows = nullptr;
            std::vector<Instruction> synth;
            const std::vector<Instruction> *prog = nullptr;
            if (layer.isaElt) {
                rows = &layer.isaElt->rowLayout();
                prog = &layer.isaElt->mergeProgram();
            } else if (layer.funcElt) {
                rows = &layer.funcElt->rowLayout();
                synth = eltwiseMergeProgram(*rows,
                                            layer.requantShift);
                prog = &synth;
            } else {
                continue;
            }
            ctx.guardRow = rows->zrow;
            ctx.initialDefs = {rows->va, rows->vb, rows->gain};
            const ProgramStats st =
                verifyOne(ctx, *prog, "eltwise", reports);
            requireAuditedBand(name, layer.scratchArray, 1, ranges);
            if (check_cost)
                crossCheckProgramCostOrDie(name, "eltwise", st.staticCycles,
                                costs.eltwiseProgramCycles());
            ++sum.programsVerified;
        } else if (layer.op.kind == dnn::OpKind::MaxPool) {
            // Full-window program (SAME-padded edge windows only
            // shorten the fold chain). Average pools reduce through
            // the add/shift path, not a cached fold program.
            const mapping::PoolRowLayout rows =
                mapping::makePoolRowLayout(geom);
            const unsigned window = layer.op.pool.r * layer.op.pool.s;
            const std::vector<Instruction> prog =
                maxPoolWindowProgram(rows, window);
            ctx.guardRow = rows.zrow;
            ctx.initialDefs = {rows.cur};
            const ProgramStats st =
                verifyOne(ctx, prog, "maxpool", reports);
            requireAuditedBand(name, layer.scratchArray, 1, ranges);
            if (check_cost)
                crossCheckProgramCostOrDie(
                    name, "maxpool", st.staticCycles,
                    costs.maxPoolWindowProgramCycles(window));
            ++sum.programsVerified;
        }
    }

    sum.verifyMs = msSince(t0);
    return sum;
}

VerifySummary
verifyNetworkProgramsOrDie(const dnn::Network &net,
                           const NeuralCacheConfig &cfg,
                           std::vector<LayerProgramReport> *reports)
{
    const Clock::time_point t0 = Clock::now();
    VerifySummary sum;

    const cache::Geometry &geom = cfg.geometry;
    const bool check_cost = costCheckable(cfg.cost);
    const CostModel costs(geom, cfg.cost);

    for (const dnn::Stage &stage : net.stages) {
        for (const dnn::Branch &branch : stage.branches) {
            for (const dnn::Op &op : branch.ops) {
                ProgramContext ctx;
                ctx.layer = op.name();
                ctx.arrayRows = geom.arrayRows;
                ctx.alu = cfg.cost.alu;

                if (op.isConv()) {
                    const mapping::FunctionalConvPlan fplan =
                        mapping::planFunctionalConv(op.conv, geom);
                    if (!fplan.fits)
                        continue; // priced analytically, no program
                    const mapping::ConvRowLayout rows =
                        mapping::makeConvRowLayout(geom, fplan);
                    ctx.guardRow = rows.zrow;
                    ctx.initialDefs = rows.filt;
                    ctx.initialDefs.insert(ctx.initialDefs.end(),
                                           rows.inp.begin(),
                                           rows.inp.end());
                    const ProgramStats st =
                        verifyOne(ctx, convWindowProgram(rows),
                                  "conv", reports);
                    if (check_cost)
                        crossCheckProgramCostOrDie(
                            ctx.layer, "conv", st.staticCycles,
                            costs.convWindowProgramCycles(rows.lanes,
                                                          rows.rs));
                    ++sum.programsVerified;
                } else if (op.kind == dnn::OpKind::EltwiseAdd) {
                    const mapping::EltwiseRowLayout rows =
                        mapping::makeEltwiseRowLayout(geom);
                    ctx.guardRow = rows.zrow;
                    ctx.initialDefs = {rows.va, rows.vb, rows.gain};
                    const ProgramStats st = verifyOne(
                        ctx, eltwiseMergeProgram(rows, kEltwiseShift),
                        "eltwise", reports);
                    if (check_cost)
                        crossCheckProgramCostOrDie(ctx.layer, "eltwise",
                                        st.staticCycles,
                                        costs.eltwiseProgramCycles());
                    ++sum.programsVerified;
                } else if (op.kind == dnn::OpKind::MaxPool) {
                    const mapping::PoolRowLayout rows =
                        mapping::makePoolRowLayout(geom);
                    const unsigned window = op.pool.r * op.pool.s;
                    ctx.guardRow = rows.zrow;
                    ctx.initialDefs = {rows.cur};
                    const ProgramStats st = verifyOne(
                        ctx, maxPoolWindowProgram(rows, window),
                        "maxpool", reports);
                    if (check_cost)
                        crossCheckProgramCostOrDie(
                            ctx.layer, "maxpool", st.staticCycles,
                            costs.maxPoolWindowProgramCycles(window));
                    ++sum.programsVerified;
                }
            }
        }
    }

    sum.verifyMs = msSince(t0);
    return sum;
}

} // namespace nc::core::verify
