/**
 * @file
 * NeuralCache: the public facade of the accelerator model.
 *
 * Construct one with a cache geometry and configuration, hand it a
 * dnn::Network, and receive an InferenceReport: per-stage latency with
 * the Figure-14 phase breakdown, totals, energy, power, and batched
 * throughput (paper §IV-E: filter loading is paid once per layer and
 * amortized across the batch; batch outputs that overflow the
 * reserved-way capacity spill to DRAM and are re-loaded, which is why
 * the heavy early layers dump under batching).
 */

#ifndef NC_CORE_NEURAL_CACHE_HH
#define NC_CORE_NEURAL_CACHE_HH

#include <string>
#include <vector>

#include "core/cost_model.hh"
#include "core/energy.hh"
#include "dnn/layers.hh"

namespace nc::core
{

/** Result of one (possibly batched) inference simulation. */
struct InferenceReport
{
    std::string networkName;
    unsigned batch = 1;
    unsigned sockets = 1;

    std::vector<StageCost> stages;
    PhaseBreakdown phases; ///< summed over stages (per image)

    /**
     * Image-parallel pass structure (§IV-E / Figure 16): how many
     * images the spare array capacity executes concurrently once the
     * filters are stationary, and how many time-sliced passes this
     * batch therefore needs — the same capacity arithmetic the
     * functional runBatch fan-out uses (mapping::planBatchBands), so
     * the analytic and functional batch paths agree on structure.
     */
    unsigned imageSlots = 1;
    uint64_t batchPasses = 1;

    /**
     * @name Fault-tolerance counters (cumulative for the model)
     *
     * Zero unless fault injection is configured. arraysRetired
     * counts BIST retirements plus runtime canary retirements;
     * faultsDetected counts runtime canary detections; passRetries
     * counts passes re-executed after a detect→repair cycle.
     */
    /// @{
    uint64_t faultsDetected = 0;
    uint64_t arraysRetired = 0;
    uint64_t passRetries = 0;
    /// @}

    /**
     * @name Static program verification (compile-time, cumulative)
     *
     * Layer programs the abstract interpreter
     * (core/program_verify.hh) proved legal at compile (and after
     * any runtime repair re-placement), and the wall milliseconds
     * that proof cost — always part of compile time, never of the
     * modeled inference latency.
     */
    /// @{
    uint64_t programsVerified = 0;
    double verifyMs = 0.0;
    /// @}

    /** Batch-1 equivalent per-image latency, picoseconds. */
    double latencyPs = 0;
    /** Whole-batch wall time, picoseconds (one socket). */
    double batchPs = 0;
    /** Extra DRAM spill time per batch (reserved way overflow). */
    double spillPs = 0;

    EnergyReport energy;

    double latencyMs() const { return latencyPs * picoToMs; }
    double batchMs() const { return batchPs * picoToMs; }

    /** Inferences per second across all sockets. */
    double
    throughput() const
    {
        return batchPs > 0
                   ? static_cast<double>(batch) * sockets /
                         (batchPs * picoToSec)
                   : 0.0;
    }

    double avgPowerW() const;
};

/** Configuration of the accelerator model. */
struct NeuralCacheConfig
{
    cache::Geometry geometry = cache::Geometry::xeonE5_35MB();
    CostConfig cost;
    EnergyConfig energy;
    cache::DramModel dram;
    /** Sockets contributing throughput (paper: dual socket). */
    unsigned sockets = 2;
};

/**
 * Assemble the batched inference report from precomputed per-stage
 * costs: filter loading paid once for the batch, per-image phases
 * multiplied out, reserved-way overflow spilled to DRAM, first-layer
 * input streamed from DRAM, and energy metered over the batch wall
 * time (paper §IV-E). Shared by the legacy NeuralCache facade and
 * CompiledModel so both produce bit-identical reports — the engine
 * just caches @p stages at compile time instead of re-deriving them
 * per call. The report's image-parallel pass structure comes from
 * @p bands when the caller already planned it (CompiledModel caches
 * the plan at compile time), else from mapping::planBatchBands on
 * the spot.
 */
InferenceReport assembleBatchReport(
    const dnn::Network &net, std::vector<StageCost> stages,
    unsigned batch, unsigned sockets, const CostModel &model,
    const EnergyConfig &energy,
    const mapping::BatchBandPlan *bands = nullptr);

/**
 * The accelerator model.
 *
 * @deprecated Facade over the analytic cost model only, re-deriving
 * every stage's mapping on each call. New code should use
 * core::Engine with BackendKind::Analytic — Engine::compile pays the
 * mapping once and CompiledModel::report()/run() answer repeatedly
 * (and the other backends give functional answers from the same
 * API). Kept as a thin shim over the same report assembly.
 */
class NeuralCache
{
  public:
    using Config = NeuralCacheConfig;

    explicit NeuralCache(Config cfg = {});

    const Config &config() const { return cfg; }
    const CostModel &costModel() const { return model; }

    /** Simulate one inference (batch 1). */
    InferenceReport infer(const dnn::Network &net) const;

    /**
     * Simulate a batched inference (paper §IV-E). The network must be
     * non-empty and @p batch >= 1 (degenerate inputs are hard
     * errors, not silently-empty reports).
     */
    InferenceReport inferBatch(const dnn::Network &net,
                               unsigned batch) const;

  private:
    Config cfg;
    CostModel model;
};

} // namespace nc::core

#endif // NC_CORE_NEURAL_CACHE_HH
