#include "core/isa.hh"

namespace nc::core
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Copy:
        return "copy";
      case Opcode::CopyInv:
        return "copyinv";
      case Opcode::Zero:
        return "zero";
      case Opcode::Add:
        return "add";
      case Opcode::Sub:
        return "sub";
      case Opcode::Multiply:
        return "multiply";
      case Opcode::Mac:
        return "mac";
      case Opcode::ReduceSum:
        return "reducesum";
      case Opcode::ReduceMax:
        return "reducemax";
      case Opcode::MaxInto:
        return "maxinto";
      case Opcode::MinInto:
        return "mininto";
      case Opcode::Relu:
        return "relu";
      case Opcode::ShiftUp:
        return "shiftup";
      case Opcode::ShiftDown:
        return "shiftdown";
      case Opcode::Saturate:
        return "saturate";
      case Opcode::Divide:
        return "divide";
      case Opcode::BatchNorm:
        return "batchnorm";
      case Opcode::Search:
        return "search";
      case Opcode::LoadTag:
        return "loadtag";
    }
    return "?";
}

Instruction
Instruction::copy(bitserial::VecSlice a, bitserial::VecSlice out,
                  bool pred)
{
    Instruction i;
    i.op = Opcode::Copy;
    i.a = a;
    i.out = out;
    i.pred = pred;
    return i;
}

Instruction
Instruction::zero(bitserial::VecSlice out)
{
    Instruction i;
    i.op = Opcode::Zero;
    i.out = out;
    return i;
}

Instruction
Instruction::add(bitserial::VecSlice a, bitserial::VecSlice b,
                 bitserial::VecSlice out, unsigned zero_row,
                 bool carry_in)
{
    Instruction i;
    i.op = Opcode::Add;
    i.a = a;
    i.b = b;
    i.out = out;
    i.zeroRow = zero_row;
    i.carryIn = carry_in;
    return i;
}

Instruction
Instruction::sub(bitserial::VecSlice a, bitserial::VecSlice b,
                 bitserial::VecSlice out, bitserial::VecSlice scratch)
{
    Instruction i;
    i.op = Opcode::Sub;
    i.a = a;
    i.b = b;
    i.out = out;
    i.scratch = scratch;
    return i;
}

Instruction
Instruction::multiply(bitserial::VecSlice a, bitserial::VecSlice b,
                      bitserial::VecSlice out)
{
    Instruction i;
    i.op = Opcode::Multiply;
    i.a = a;
    i.b = b;
    i.out = out;
    return i;
}

Instruction
Instruction::mac(bitserial::VecSlice a, bitserial::VecSlice b,
                 bitserial::VecSlice acc, bitserial::VecSlice scratch,
                 unsigned zero_row)
{
    Instruction i;
    i.op = Opcode::Mac;
    i.a = a;
    i.b = b;
    i.out = acc;
    i.scratch = scratch;
    i.zeroRow = zero_row;
    return i;
}

Instruction
Instruction::reduceSum(bitserial::VecSlice acc, unsigned w0,
                       unsigned lanes, bitserial::VecSlice scratch)
{
    Instruction i;
    i.op = Opcode::ReduceSum;
    i.a = acc;
    i.scratch = scratch;
    i.imm = lanes;
    i.imm2 = w0;
    return i;
}

Instruction
Instruction::relu(bitserial::VecSlice a)
{
    Instruction i;
    i.op = Opcode::Relu;
    i.a = a;
    return i;
}

Instruction
Instruction::search(bitserial::VecSlice a, uint64_t key)
{
    Instruction i;
    i.op = Opcode::Search;
    i.a = a;
    i.key = key;
    return i;
}

Instruction
Instruction::shiftDown(bitserial::VecSlice a, unsigned k)
{
    Instruction i;
    i.op = Opcode::ShiftDown;
    i.a = a;
    i.imm = k;
    return i;
}

Instruction
Instruction::saturate(bitserial::VecSlice a, unsigned out_bits)
{
    Instruction i;
    i.op = Opcode::Saturate;
    i.a = a;
    i.imm = out_bits;
    return i;
}

} // namespace nc::core
