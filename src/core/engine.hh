/**
 * @file
 * Engine: the compile-once / run-many front door of the library.
 *
 *     core::EngineOptions opts;            // backend, threads, config
 *     core::Engine engine(opts);
 *     auto model = engine.compile(net);    // mapping + calibration +
 *                                          // weight layout, paid once
 *     auto r1 = model.run(image);          // execute; r1.output +
 *     auto r2 = model.run(image2);         // r1.report in one call
 *     auto rep = model.report(64);         // batch-64 timing, free
 *
 * One Engine owns one common::ThreadPool; every model it compiles
 * (and every backend behind them) shares it. Weights come from an
 * explicit ModelWeights map or, for synthetic studies, are generated
 * deterministically from options().weightSeed.
 */

#ifndef NC_CORE_ENGINE_HH
#define NC_CORE_ENGINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/backend.hh"
#include "core/compiled_model.hh"
#include "sram/faults.hh"

namespace nc::core
{

/** Filter banks by layer (op) name; absent layers get seeded random. */
using ModelWeights = std::map<std::string, dnn::QWeights>;

/** Everything an Engine is configured with. */
struct EngineOptions
{
    /** Default backend for every layer. */
    BackendKind backend = BackendKind::Functional;
    /**
     * Per-layer overrides by op name (mixed runs: e.g. convs on the
     * ISA path, pools on the direct-ALU path). Only meaningful for
     * functional engines; overriding to Analytic is an error.
     */
    std::map<std::string, BackendKind> layerBackends;
    /** Worker threads shared engine-wide (0 = NC_THREADS / hw). */
    unsigned threads = 0;
    /** Accelerator model configuration (geometry, cost, energy). */
    NeuralCacheConfig config;
    /** Seed for deterministically generated absent weights. */
    uint64_t weightSeed = 0x5eed;
    /**
     * SRAM fault-injection campaign (sram/faults.hh). Disabled by
     * default (no rates, no kill list) — then the fault machinery is
     * never instantiated and execution is bit- and cost-identical to
     * a build without it. The NC_FAULTS environment variable overlays
     * these fields at Engine construction. Fault injection requires a
     * functional backend: the analytic model has no arrays to break,
     * so Analytic + faults is a hard error.
     */
    sram::faults::Config faults;
};

/** Compiles networks into immutable CompiledModels. */
class Engine
{
  public:
    using Options = EngineOptions;

    explicit Engine(Options opts_ = {});

    const Options &options() const { return opts; }
    common::ThreadPool &threadPool() { return *pool; }

    /**
     * Compile @p net: validate the topology, run quantization
     * calibration, mapping/tiling, transposed weight layout, and
     * per-layer program construction exactly once. @p weights names
     * filter banks by layer; layers without one get deterministic
     * seeded random filters. The network must be non-empty.
     * Functional backends execute whole multi-branch stages (branch
     * outputs channel-concatenate; an eltwise tail merges with the
     * shortcut branch or the stage input) and any conv shape
     * mapping::planFunctionalConv can place — the broadcast-ISA conv
     * path alone still requires the untransformed one-array mapping
     * and whole-network residency.
     */
    CompiledModel compile(const dnn::Network &net,
                          const ModelWeights &weights = {}) const;

  private:
    Options opts;
    std::shared_ptr<common::ThreadPool> pool;
};

} // namespace nc::core

#endif // NC_CORE_ENGINE_HH
