/**
 * @file
 * Functional executor: run DNN primitives through real bit-serial
 * array operations.
 *
 * This is the verification half of the simulator (the cost model is
 * the timing half): layers are mapped channel-per-bit-line exactly as
 * §IV-A describes, every MAC and reduction executes through
 * bitserial::* micro-ops on sram::Array bit cells, and the result is
 * read back and compared against dnn::convQuantUnsigned ground truth
 * in the tests. Timing falls out of the same run via the arrays'
 * cycle counters, which keeps the functional and analytic models
 * honest with each other.
 *
 * Parallelism: the independent units of a layer (per-filter-batch
 * array programs in conv/fc, output windows in maxPool) fan out over
 * a common::ThreadPool. Each task owns its array and writes a
 * disjoint slice of the output, so results are bit-identical for any
 * thread count, and cycle statistics are reduced after the join as
 * order-independent sums — the modeled machine is unchanged, only
 * the simulator wall clock shrinks. Thread count: constructor
 * argument, else NC_THREADS, else hardware concurrency.
 *
 * Scope: shapes inside the one-array-per-filter-batch envelope run
 * the original untransformed mapping (bit- and cycle-identical to the
 * historical kernels). Larger shapes engage the §IV-A transforms the
 * mapper plans (mapping::planFunctionalConv): 1x1 filter packing,
 * filter splitting for wide windows, and channel chunking across
 * arrays with the per-chunk partials merged after read-out — which is
 * what lets Inception-scale layers (2048-channel 1x1s, 5x5 windows)
 * execute functionally.
 */

#ifndef NC_CORE_EXECUTOR_HH
#define NC_CORE_EXECUTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bitserial/layout.hh"
#include "cache/compute_cache.hh"
#include "common/thread_pool.hh"
#include "dnn/reference.hh"
#include "dnn/tensor.hh"
#include "mapping/plan.hh"

namespace nc::core
{

/** Executes quantized layers on compute-cache arrays. */
class Executor
{
  public:
    /** @param nthreads worker threads (0 = NC_THREADS / hardware). */
    explicit Executor(cache::ComputeCache &cc_, unsigned nthreads = 0)
        : cc(cc_),
          ownedPool(std::make_unique<common::ThreadPool>(nthreads)),
          pool(*ownedPool)
    {
    }

    /** Share an external worker pool (e.g. one engine-wide pool). */
    Executor(cache::ComputeCache &cc_, common::ThreadPool &shared)
        : cc(cc_), pool(shared)
    {
    }

    /**
     * A convolution layer compiled onto the cache: the Figure-10 row
     * layout is fixed and the filters sit stationary (transposed) in
     * the layer's array band, so run() only streams input windows and
     * computes — repeatedly, without re-deriving the layout or
     * re-storing weights. Obtained from Executor::prepareConv(); the
     * Executor must outlive every prepared layer it hands out.
     *
     * Large layers span several arrays per filter batch (channel
     * chunks, merged after read-out) and layers whose band is smaller
     * than filterBatches() x chunks run in grouped passes, re-pinning
     * each group's filters — the §IV-E streaming regime for networks
     * that exceed the cache.
     *
     * Batching (§IV-E): a resident layer can pin replica bands at
     * fixed flat-array offsets (pinReplica), one per concurrently
     * executing image, and run() then names which replica an image
     * streams through — concurrent images never share arrays, so a
     * parallel batch is bit-identical to the serial per-image loop.
     */
    class PreparedConv
    {
      public:
        /**
         * Execute the layer on @p in; returns raw accumulators in
         * [m][oh][ow] order, exactly like Executor::conv.
         * @p array_offset selects the replica band pinned at
         * base + offset (0 = the band prepareConv placed); streaming
         * layers accept only offset 0.
         */
        std::vector<uint32_t> run(const dnn::QTensor &in,
                                  unsigned &out_h, unsigned &out_w,
                                  uint64_t array_offset = 0);

        /**
         * Pin a stationary replica of @p w in the band
         * [base + offset, base + offset + bandArrays()): the
         * per-image copy one extra in-flight image streams through.
         * Resident layers only (a streaming layer re-pins its shared
         * band as it runs and cannot overlap images). @p w must be
         * the bank prepareConv pinned.
         */
        void pinReplica(const dnn::QWeights &w, uint64_t array_offset);

        /** First flat array index of the layer's band. */
        uint64_t baseArray() const { return base; }
        /** Arrays the band holds (>= chunks, <= m x chunks). */
        uint64_t bandArrays() const { return band; }
        /** Filter batches (output channels). */
        unsigned filterBatches() const { return m; }
        /** Arrays one filter batch spans (channel chunks). */
        unsigned chunksPerBatch() const { return fplan.chunks; }
        /** Whether filters stay pinned across run() calls. */
        bool resident() const { return isResident; }
        /** The mapper's transform selection for this layer. */
        const mapping::FunctionalConvPlan &plan() const
        {
            return fplan;
        }
        /** The shared Figure-10 row carve-up (program_verify checks
         * the canonical window program against exactly this map). */
        const mapping::ConvRowLayout &rowLayout() const
        {
            return rows;
        }

      private:
        friend class Executor;
        PreparedConv() = default;

        void storeFilters(const dnn::QWeights &w, unsigned first_batch,
                          unsigned count, uint64_t array_offset);

        Executor *ex = nullptr;
        unsigned m = 0, c = 0, r = 0, s = 0;
        unsigned stride = 1;
        bool samePad = false;
        bool isResident = true;
        unsigned groupBatches = 0; ///< filter batches per pass
        uint64_t base = 0;
        uint64_t band = 0;
        mapping::FunctionalConvPlan fplan;
        mapping::ConvRowLayout rows; ///< shared Figure-10 carve-up
        dnn::QWeights weights; ///< kept only for streaming re-pins
    };

    /**
     * Compile-once half of conv(): fix the per-array row layout and pin
     * @p w stationary in the band [base_array, base_array +
     * band_arrays). The returned layer can then run() any number of
     * inputs without repeating this work. Layers prepared at different
     * base offsets coexist (each owns its arrays), which is how
     * CompiledModel keeps a whole network resident.
     *
     * @param band_arrays arrays granted to the layer; 0 means the
     *     full m x chunks (whole layer resident). A smaller band (at
     *     least one filter batch's chunks) makes run() stream filter
     *     groups through the band.
     * @param resident false forces streaming even when the band
     *     covers the layer (the filters are re-pinned on every run
     *     because other layers time-share the same arrays).
     */
    PreparedConv prepareConv(const dnn::QWeights &w, unsigned stride,
                             bool same_pad, uint64_t base_array = 0,
                             uint64_t band_arrays = 0,
                             bool resident = true);

    /**
     * A prepared residual merge: out = sat8(((a + b) * mult) >>
     * shift) lane-parallel on the scratch array, with the row layout
     * fixed and the calibrated scalars captured once. run() streams
     * operand chunks through the array's bit lines.
     */
    class PreparedEltwise
    {
      public:
        /** @p array_offset relocates the run onto the image slot's
         * scratch replica (scratch + offset); the carve-up is
         * position-independent, so no per-replica state exists. */
        std::vector<uint8_t> run(const std::vector<uint8_t> &a,
                                 const std::vector<uint8_t> &b,
                                 uint64_t array_offset = 0);

        uint8_t multiplier() const { return mult; }
        unsigned shift() const { return sh; }
        /** The shared merge carve-up (same map as the ISA backend). */
        const mapping::EltwiseRowLayout &rowLayout() const
        {
            return rows;
        }

      private:
        friend class Executor;
        PreparedEltwise() = default;

        Executor *ex = nullptr;
        uint8_t mult = 1;
        unsigned sh = 0;
        uint64_t scratch = 0;
        mapping::EltwiseRowLayout rows;
    };

    /**
     * Compile-once half of eltwiseAdd(): fix the row carve-up on the
     * scratch array at @p scratch_array and capture the calibrated
     * requantization scalars.
     */
    PreparedEltwise prepareEltwise(uint8_t mult, unsigned shift,
                                   uint64_t scratch_array);

    /**
     * Quantized residual merge of two equal-length byte vectors (one
     * prepare + run). Ground truth: dnn::eltwiseAddQuant.
     */
    std::vector<uint8_t> eltwiseAdd(const std::vector<uint8_t> &a,
                                    const std::vector<uint8_t> &b,
                                    uint8_t mult, unsigned shift);

    /**
     * Quantized convolution (unsigned, zero-point-free): returns the
     * raw accumulators in [m][oh][ow] order, exactly like
     * dnn::convQuantUnsigned.
     */
    std::vector<uint32_t> conv(const dnn::QTensor &in,
                               const dnn::QWeights &w, unsigned stride,
                               bool same_pad, unsigned &out_h,
                               unsigned &out_w);

    /**
     * Fully-connected layer: out[m] = sum_c in[c] * w[m][c][0][0],
     * i.e. a 1x1 convolution over a 1x1 feature map with the same
     * channel-per-bit-line mapping and per-filter-batch parallelism.
     * Weights must be 1x1 with w.c == in.size().
     */
    std::vector<uint32_t> fc(const std::vector<uint8_t> &in,
                             const dnn::QWeights &w);

    /** Max pooling through bit-serial compare/select. */
    dnn::QTensor maxPool(const dnn::QTensor &in, unsigned r, unsigned s,
                         unsigned stride, bool same_pad);

    /** maxPool on an explicit scratch array (parallel branches give
     * each branch its own so their cycle charges stay disjoint). */
    dnn::QTensor maxPoolAt(uint64_t scratch_array,
                           const dnn::QTensor &in, unsigned r,
                           unsigned s, unsigned stride, bool same_pad);

    /**
     * Average pooling: bit-serial window summation followed by
     * in-array division (a shift when the window is a power of two,
     * restoring division otherwise — paper §IV-D notes Inception's
     * divisors are 4 bits). VALID windows, matching Inception's 8x8
     * head.
     */
    dnn::QTensor avgPool(const dnn::QTensor &in, unsigned r, unsigned s,
                         unsigned stride);

    /**
     * Average pooling with optional TF SAME padding: partial windows
     * divide by their valid-element count (padding excluded), the
     * divisor streamed per window — what Inception's in-block 3x3/1
     * average pools need.
     */
    dnn::QTensor avgPool(const dnn::QTensor &in, unsigned r, unsigned s,
                         unsigned stride, bool same_pad);

    /** avgPool on an explicit scratch array. */
    dnn::QTensor avgPoolAt(uint64_t scratch_array,
                           const dnn::QTensor &in, unsigned r,
                           unsigned s, unsigned stride, bool same_pad);

    /** ReLU on int8-style values stored as two's complement bytes. */
    std::vector<uint8_t> relu(const std::vector<uint8_t> &vals);

    /**
     * In-array min/max over a set of @p bits-wide values (the
     * quantization range search of §IV-D). Lane padding uses 0 for
     * the max tree and all-ones for the min tree.
     */
    std::pair<uint64_t, uint64_t> minMax(
        const std::vector<uint64_t> &vals, unsigned bits);

    /**
     * In-cache requantization (§IV-D): q = (acc * mult) >> shift for
     * every accumulator, via bit-serial multiply and shift, with the
     * CPU-provided 8-bit multiplier broadcast to every lane. The
     * result is truncated (the hardware sequence has no rounding
     * add) and saturated to 8 bits on read-out.
     */
    std::vector<uint8_t> requantize(const std::vector<uint32_t> &acc,
                                    uint8_t mult, unsigned shift);

    /** requantize on an explicit scratch array. */
    std::vector<uint8_t> requantizeAt(uint64_t scratch_array,
                                      const std::vector<uint32_t> &acc,
                                      uint8_t mult, unsigned shift);

    /** Lock-step compute cycles consumed so far. */
    uint64_t lockstepCycles() const { return cc.lockstepCycles(); }

    /** Worker threads the executor fans layer tasks over. */
    unsigned threads() const { return pool.size(); }

    /**
     * Flat index of the array the layer-less helpers (maxPool,
     * avgPool, minMax, requantize, relu) scribble on. Defaults to 0;
     * CompiledModel points it past the last prepared conv layer so
     * the helpers never clobber stationary filters.
     */
    void setScratchBase(uint64_t base) { scratchBase = base; }
    uint64_t scratchArray() const { return scratchBase; }

  private:
    cache::ComputeCache &cc;
    std::unique_ptr<common::ThreadPool> ownedPool; ///< null when shared
    common::ThreadPool &pool;
    uint64_t scratchBase = 0;
};

} // namespace nc::core

#endif // NC_CORE_EXECUTOR_HH
