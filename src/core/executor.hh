/**
 * @file
 * Functional executor: run DNN primitives through real bit-serial
 * array operations.
 *
 * This is the verification half of the simulator (the cost model is
 * the timing half): layers are mapped channel-per-bit-line exactly as
 * §IV-A describes, every MAC and reduction executes through
 * bitserial::* micro-ops on sram::Array bit cells, and the result is
 * read back and compared against dnn::convQuantUnsigned ground truth
 * in the tests. Timing falls out of the same run via the arrays'
 * cycle counters, which keeps the functional and analytic models
 * honest with each other.
 *
 * Parallelism: the independent units of a layer (per-filter-batch
 * array programs in conv/fc, output windows in maxPool) fan out over
 * a common::ThreadPool. Each task owns its array and writes a
 * disjoint slice of the output, so results are bit-identical for any
 * thread count, and cycle statistics are reduced after the join as
 * order-independent sums — the modeled machine is unchanged, only
 * the simulator wall clock shrinks. Thread count: constructor
 * argument, else NC_THREADS, else hardware concurrency.
 *
 * Scope: one array per filter batch (padded channels <= 256 bit
 * lines, RxS <= 12 so the Figure 10 layout fits), which covers the
 * small end-to-end networks the integration tests and examples use.
 */

#ifndef NC_CORE_EXECUTOR_HH
#define NC_CORE_EXECUTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bitserial/layout.hh"
#include "cache/compute_cache.hh"
#include "common/thread_pool.hh"
#include "dnn/reference.hh"
#include "dnn/tensor.hh"
#include "mapping/plan.hh"

namespace nc::core
{

/** Executes quantized layers on compute-cache arrays. */
class Executor
{
  public:
    /** @param nthreads worker threads (0 = NC_THREADS / hardware). */
    explicit Executor(cache::ComputeCache &cc_, unsigned nthreads = 0)
        : cc(cc_),
          ownedPool(std::make_unique<common::ThreadPool>(nthreads)),
          pool(*ownedPool)
    {
    }

    /** Share an external worker pool (e.g. one engine-wide pool). */
    Executor(cache::ComputeCache &cc_, common::ThreadPool &shared)
        : cc(cc_), pool(shared)
    {
    }

    /**
     * A convolution layer compiled onto the cache: the Figure-10 row
     * layout is fixed and the filters sit stationary (transposed) in
     * arrays [base, base+m), so run() only streams input windows and
     * computes — repeatedly, without re-deriving the layout or
     * re-storing weights. Obtained from Executor::prepareConv(); the
     * Executor must outlive every prepared layer it hands out.
     */
    class PreparedConv
    {
      public:
        /**
         * Execute the layer on @p in; returns raw accumulators in
         * [m][oh][ow] order, exactly like Executor::conv.
         */
        std::vector<uint32_t> run(const dnn::QTensor &in,
                                  unsigned &out_h, unsigned &out_w);

        /** First flat array index of the layer's filter batches. */
        uint64_t baseArray() const { return base; }
        /** Arrays (filter batches) the layer occupies. */
        unsigned filterBatches() const { return m; }

      private:
        friend class Executor;
        PreparedConv() = default;

        Executor *ex = nullptr;
        unsigned m = 0, c = 0, r = 0, s = 0;
        unsigned stride = 1;
        bool samePad = false;
        uint64_t base = 0;
        mapping::ConvRowLayout rows; ///< shared Figure-10 carve-up
    };

    /**
     * Compile-once half of conv(): fix the per-array row layout and pin
     * @p w stationary in arrays [base_array, base_array + w.m). The
     * returned layer can then run() any number of inputs without
     * repeating this work. Layers prepared at different base offsets
     * coexist (each owns its arrays), which is how CompiledModel keeps
     * a whole network resident.
     */
    PreparedConv prepareConv(const dnn::QWeights &w, unsigned stride,
                             bool same_pad, uint64_t base_array = 0);

    /**
     * Quantized convolution (unsigned, zero-point-free): returns the
     * raw accumulators in [m][oh][ow] order, exactly like
     * dnn::convQuantUnsigned.
     */
    std::vector<uint32_t> conv(const dnn::QTensor &in,
                               const dnn::QWeights &w, unsigned stride,
                               bool same_pad, unsigned &out_h,
                               unsigned &out_w);

    /**
     * Fully-connected layer: out[m] = sum_c in[c] * w[m][c][0][0],
     * i.e. a 1x1 convolution over a 1x1 feature map with the same
     * channel-per-bit-line mapping and per-filter-batch parallelism.
     * Weights must be 1x1 with w.c == in.size().
     */
    std::vector<uint32_t> fc(const std::vector<uint8_t> &in,
                             const dnn::QWeights &w);

    /** Max pooling through bit-serial compare/select. */
    dnn::QTensor maxPool(const dnn::QTensor &in, unsigned r, unsigned s,
                         unsigned stride, bool same_pad);

    /**
     * Average pooling: bit-serial window summation followed by
     * in-array division (a shift when the window is a power of two,
     * restoring division otherwise — paper §IV-D notes Inception's
     * divisors are 4 bits). VALID windows only (every window full),
     * matching Inception's 8x8 head.
     */
    dnn::QTensor avgPool(const dnn::QTensor &in, unsigned r, unsigned s,
                         unsigned stride);

    /** ReLU on int8-style values stored as two's complement bytes. */
    std::vector<uint8_t> relu(const std::vector<uint8_t> &vals);

    /**
     * In-array min/max over a set of @p bits-wide values (the
     * quantization range search of §IV-D). Lane padding uses 0 for
     * the max tree and all-ones for the min tree.
     */
    std::pair<uint64_t, uint64_t> minMax(
        const std::vector<uint64_t> &vals, unsigned bits);

    /**
     * In-cache requantization (§IV-D): q = (acc * mult) >> shift for
     * every accumulator, via bit-serial multiply and shift, with the
     * CPU-provided 8-bit multiplier broadcast to every lane. The
     * result is truncated (the hardware sequence has no rounding
     * add) and saturated to 8 bits on read-out.
     */
    std::vector<uint8_t> requantize(const std::vector<uint32_t> &acc,
                                    uint8_t mult, unsigned shift);

    /** Lock-step compute cycles consumed so far. */
    uint64_t lockstepCycles() const { return cc.lockstepCycles(); }

    /** Worker threads the executor fans layer tasks over. */
    unsigned threads() const { return pool.size(); }

    /**
     * Flat index of the array the layer-less helpers (maxPool,
     * avgPool, minMax, requantize, relu) scribble on. Defaults to 0;
     * CompiledModel points it past the last prepared conv layer so
     * the helpers never clobber stationary filters.
     */
    void setScratchBase(uint64_t base) { scratchBase = base; }
    uint64_t scratchArray() const { return scratchBase; }

  private:
    cache::ComputeCache &cc;
    std::unique_ptr<common::ThreadPool> ownedPool; ///< null when shared
    common::ThreadPool &pool;
    uint64_t scratchBase = 0;
};

} // namespace nc::core

#endif // NC_CORE_EXECUTOR_HH
