#include "core/neural_cache.hh"

#include <utility>

#include "common/logging.hh"

namespace nc::core
{

double
InferenceReport::avgPowerW() const
{
    double span = batchPs > 0 ? batchPs : latencyPs;
    return energy.avgPowerW(span * picoToSec);
}

NeuralCache::NeuralCache(Config cfg_)
    : cfg(std::move(cfg_)),
      model(cfg.geometry, cfg.cost, cfg.dram)
{
}

InferenceReport
NeuralCache::infer(const dnn::Network &net) const
{
    return inferBatch(net, 1);
}

InferenceReport
assembleBatchReport(const dnn::Network &net,
                    std::vector<StageCost> stages, unsigned batch,
                    unsigned sockets, const CostModel &model,
                    const EnergyConfig &energy,
                    const mapping::BatchBandPlan *bands)
{
    nc_assert(batch >= 1, "empty batch for network '%s'",
              net.name.c_str());
    nc_assert(!net.stages.empty(), "empty network '%s'",
              net.name.c_str());
    nc_assert(stages.size() == net.stages.size(),
              "%zu stage costs for %zu stages", stages.size(),
              net.stages.size());

    InferenceReport rep;
    rep.networkName = net.name;
    rep.batch = batch;
    rep.sockets = sockets;
    rep.stages = std::move(stages);

    // Image-parallel pass structure (§IV-E): spare capacity beyond
    // one image's stationary bands runs extra images concurrently,
    // the rest of the batch time-slices — the same arithmetic the
    // functional runBatch fan-out executes.
    mapping::BatchBandPlan local_bands;
    if (!bands) {
        local_bands =
            mapping::planBatchBands(net, model.geometry());
        bands = &local_bands;
    }
    rep.imageSlots = bands->imageSlots;
    rep.batchPasses = bands->passes(batch);

    double filter_ps = 0; // paid once per layer for the whole batch
    double per_image_ps = 0;
    double spill_ps = 0;

    // Reserved-way capacity across all slices buffers layer outputs.
    const cache::Geometry &geom = model.geometry();
    double reserved_bytes =
        static_cast<double>(geom.slices) * geom.reservedWayBytes();

    for (size_t i = 0; i < rep.stages.size(); ++i) {
        StageCost &c = rep.stages[i];

        filter_ps += c.phases.filterLoadPs;
        per_image_ps += c.totalPs() - c.phases.filterLoadPs;

        // Batch outputs that overflow the reserved way spill to DRAM
        // and return for the next layer (paper §IV-E); only the
        // overflow beyond the buffered capacity pays the round trip.
        double batch_out =
            static_cast<double>(net.stages[i].outputBytes()) * batch;
        if (batch > 1 && batch_out > reserved_bytes) {
            auto overflow =
                static_cast<uint64_t>(batch_out - reserved_bytes);
            spill_ps += model.dram().transferPs(overflow) * 2.0;
            c.dramBytes += 2 * overflow;
        }

        rep.phases += c.phases;
    }

    // First-layer input arrives from DRAM through the TMUs.
    uint64_t image_bytes = net.stages.front().inputBytes();
    double input_dram_ps =
        model.dram().transferPs(image_bytes) * batch;
    rep.stages.front().dramBytes += image_bytes * batch;
    double per_image_share = input_dram_ps / batch;
    rep.stages.front().phases.inputStreamPs += per_image_share;
    rep.phases.inputStreamPs += per_image_share;
    per_image_ps += per_image_share;

    rep.latencyPs = filter_ps + per_image_ps;
    rep.batchPs = filter_ps + per_image_ps * batch + spill_ps;
    rep.spillPs = spill_ps;
    rep.energy = meterEnergy(rep.stages, rep.batchPs, energy);
    return rep;
}

InferenceReport
NeuralCache::inferBatch(const dnn::Network &net, unsigned batch) const
{
    nc_assert(batch >= 1, "empty batch for network '%s'",
              net.name.c_str());
    nc_assert(!net.stages.empty(),
              "inference on empty network '%s'", net.name.c_str());

    // The legacy facade re-derives every stage's mapping per call;
    // Engine::compile caches exactly these costs instead.
    std::vector<StageCost> costs;
    costs.reserve(net.stages.size());
    for (const auto &stage : net.stages)
        costs.push_back(model.stageCost(stage));
    return assembleBatchReport(net, std::move(costs), batch,
                               cfg.sockets, model, cfg.energy);
}

} // namespace nc::core
