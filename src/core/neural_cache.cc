#include "core/neural_cache.hh"

#include "common/logging.hh"

namespace nc::core
{

double
InferenceReport::avgPowerW() const
{
    double span = batchPs > 0 ? batchPs : latencyPs;
    return energy.avgPowerW(span * picoToSec);
}

NeuralCache::NeuralCache(Config cfg_)
    : cfg(std::move(cfg_)),
      model(cfg.geometry, cfg.cost, cfg.dram)
{
}

InferenceReport
NeuralCache::infer(const dnn::Network &net) const
{
    return inferBatch(net, 1);
}

InferenceReport
NeuralCache::inferBatch(const dnn::Network &net, unsigned batch) const
{
    nc_assert(batch >= 1, "empty batch");

    InferenceReport rep;
    rep.networkName = net.name;
    rep.batch = batch;
    rep.sockets = cfg.sockets;

    double filter_ps = 0; // paid once per layer for the whole batch
    double per_image_ps = 0;
    double spill_ps = 0;

    // Reserved-way capacity across all slices buffers layer outputs.
    double reserved_bytes = static_cast<double>(cfg.geometry.slices) *
                            cfg.geometry.reservedWayBytes();

    for (const auto &stage : net.stages) {
        StageCost c = model.stageCost(stage);

        filter_ps += c.phases.filterLoadPs;
        per_image_ps += c.totalPs() - c.phases.filterLoadPs;

        // Batch outputs that overflow the reserved way spill to DRAM
        // and return for the next layer (paper §IV-E); only the
        // overflow beyond the buffered capacity pays the round trip.
        double batch_out =
            static_cast<double>(stage.outputBytes()) * batch;
        if (batch > 1 && batch_out > reserved_bytes) {
            auto overflow =
                static_cast<uint64_t>(batch_out - reserved_bytes);
            spill_ps += model.dram().transferPs(overflow) * 2.0;
            c.dramBytes += 2 * overflow;
        }

        rep.stages.push_back(c);
        rep.phases += c.phases;
    }

    // First-layer input arrives from DRAM through the TMUs.
    uint64_t image_bytes =
        net.stages.empty() ? 0 : net.stages.front().inputBytes();
    double input_dram_ps =
        model.dram().transferPs(image_bytes) * batch;
    if (!rep.stages.empty()) {
        rep.stages.front().dramBytes += image_bytes * batch;
        double per_image_share = input_dram_ps / batch;
        rep.stages.front().phases.inputStreamPs += per_image_share;
        rep.phases.inputStreamPs += per_image_share;
        per_image_ps += per_image_share;
    }

    rep.latencyPs = filter_ps + per_image_ps;
    rep.batchPs = filter_ps + per_image_ps * batch + spill_ps;
    rep.spillPs = spill_ps;
    rep.energy = meterEnergy(rep.stages, rep.batchPs, cfg.energy);
    return rep;
}

} // namespace nc::core
