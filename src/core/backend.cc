#include "core/backend.hh"

#include "common/logging.hh"
#include "core/compiled_model.hh"
#include "core/executor.hh"
#include "core/layer_engine.hh"
#include "dnn/reference.hh"

namespace nc::core
{

const char *
backendKindName(BackendKind k)
{
    switch (k) {
      case BackendKind::Reference:
        return "reference";
      case BackendKind::Functional:
        return "functional";
      case BackendKind::Isa:
        return "isa";
      case BackendKind::Analytic:
        return "analytic";
    }
    return "unknown";
}

bool
parseBackendKind(std::string_view name, BackendKind &out)
{
    if (name == "reference")
        out = BackendKind::Reference;
    else if (name == "functional")
        out = BackendKind::Functional;
    else if (name == "isa")
        out = BackendKind::Isa;
    else if (name == "analytic")
        out = BackendKind::Analytic;
    else
        return false;
    return true;
}

// ---- Analytic -------------------------------------------------------

AnalyticBackend::AnalyticBackend(const NeuralCacheConfig &cfg_)
    : cfg(cfg_), costModel(cfg_.geometry, cfg_.cost, cfg_.dram)
{
}

StageCost
AnalyticBackend::stageCost(const dnn::Stage &stage) const
{
    return costModel.stageCost(stage);
}

InferenceReport
AnalyticBackend::report(const dnn::Network &net,
                        const std::vector<StageCost> &stageCosts,
                        unsigned batch,
                        const mapping::BatchBandPlan *bands) const
{
    return assembleBatchReport(net, stageCosts, batch, cfg.sockets,
                               costModel, cfg.energy, bands);
}

std::vector<uint32_t>
AnalyticBackend::conv(CompiledLayer &, const dnn::QTensor &, unsigned &,
                      unsigned &, const ExecContext &)
{
    nc_panic("the analytic backend cannot execute tensors; use "
             "CompiledModel::report() or a functional backend");
}

dnn::QTensor
AnalyticBackend::maxPool(CompiledLayer &, const dnn::QTensor &,
                         const ExecContext &)
{
    nc_panic("the analytic backend cannot execute tensors");
}

dnn::QTensor
AnalyticBackend::avgPool(CompiledLayer &, const dnn::QTensor &,
                         const ExecContext &)
{
    nc_panic("the analytic backend cannot execute tensors");
}

dnn::QTensor
AnalyticBackend::eltwiseAdd(CompiledLayer &, const dnn::QTensor &,
                            const dnn::QTensor &, const ExecContext &)
{
    nc_panic("the analytic backend cannot execute tensors");
}

std::vector<uint8_t>
AnalyticBackend::requantize(CompiledLayer &,
                            const std::vector<uint32_t> &,
                            const ExecContext &)
{
    nc_panic("the analytic backend cannot execute tensors");
}

namespace
{

// ---- Reference ------------------------------------------------------

/** Ground-truth CPU loops; what every functional path is pinned to. */
class ReferenceBackend : public Backend
{
  public:
    BackendKind kind() const override { return BackendKind::Reference; }

    // CPU loops carry no array state, so every image slot runs the
    // identical code: the ExecContext is accepted and ignored.
    std::vector<uint32_t>
    conv(CompiledLayer &layer, const dnn::QTensor &in, unsigned &out_h,
         unsigned &out_w, const ExecContext &) override
    {
        return dnn::convQuantUnsigned(in, layer.weights,
                                      layer.op.conv.stride,
                                      layer.op.conv.samePad, out_h,
                                      out_w);
    }

    dnn::QTensor
    maxPool(CompiledLayer &layer, const dnn::QTensor &in,
            const ExecContext &) override
    {
        const dnn::PoolOp &po = layer.op.pool;
        return dnn::maxPoolQuant(in, po.r, po.s, po.stride,
                                 po.samePad);
    }

    dnn::QTensor
    avgPool(CompiledLayer &layer, const dnn::QTensor &in,
            const ExecContext &) override
    {
        const dnn::PoolOp &po = layer.op.pool;
        return dnn::avgPoolQuant(in, po.r, po.s, po.stride,
                                 po.samePad);
    }

    dnn::QTensor
    eltwiseAdd(CompiledLayer &layer, const dnn::QTensor &a,
               const dnn::QTensor &b, const ExecContext &) override
    {
        return dnn::eltwiseAddQuant(a, b, layer.requantMult,
                                    layer.requantShift);
    }

    std::vector<uint8_t>
    requantize(CompiledLayer &layer,
               const std::vector<uint32_t> &acc,
               const ExecContext &) override
    {
        // Integer-exact mirror of the in-array sequence: multiply,
        // truncating shift, saturate to 8 bits.
        std::vector<uint8_t> out(acc.size());
        for (size_t i = 0; i < acc.size(); ++i) {
            uint64_t t = (static_cast<uint64_t>(acc[i]) *
                          layer.requantMult) >>
                         layer.requantShift;
            out[i] = static_cast<uint8_t>(t > 0xff ? 0xff : t);
        }
        return out;
    }
};

// ---- Functional (direct-ALU Executor) -------------------------------

class FunctionalBackend : public Backend
{
  public:
    explicit FunctionalBackend(Executor &ex_) : ex(ex_) {}

    BackendKind kind() const override
    {
        return BackendKind::Functional;
    }

    std::vector<uint32_t>
    conv(CompiledLayer &layer, const dnn::QTensor &in, unsigned &out_h,
         unsigned &out_w, const ExecContext &ctx) override
    {
        nc_assert(layer.funcConv.has_value(),
                  "layer '%s' was not prepared for the functional "
                  "backend", layer.op.name().c_str());
        return layer.funcConv->run(in, out_h, out_w,
                                   ctx.arrayOffset);
    }

    dnn::QTensor
    maxPool(CompiledLayer &layer, const dnn::QTensor &in,
            const ExecContext &ctx) override
    {
        const dnn::PoolOp &po = layer.op.pool;
        return ex.maxPoolAt(layer.scratchArray + ctx.arrayOffset, in,
                            po.r, po.s, po.stride, po.samePad);
    }

    dnn::QTensor
    avgPool(CompiledLayer &layer, const dnn::QTensor &in,
            const ExecContext &ctx) override
    {
        const dnn::PoolOp &po = layer.op.pool;
        return ex.avgPoolAt(layer.scratchArray + ctx.arrayOffset, in,
                            po.r, po.s, po.stride, po.samePad);
    }

    dnn::QTensor
    eltwiseAdd(CompiledLayer &layer, const dnn::QTensor &a,
               const dnn::QTensor &b, const ExecContext &ctx) override
    {
        nc_assert(layer.funcElt.has_value(),
                  "eltwise '%s' was not prepared for the functional "
                  "backend", layer.op.name().c_str());
        dnn::QTensor out(a.channels(), a.height(), a.width(),
                         a.params());
        out.data() = layer.funcElt->run(a.data(), b.data(),
                                        ctx.arrayOffset);
        return out;
    }

    std::vector<uint8_t>
    requantize(CompiledLayer &layer,
               const std::vector<uint32_t> &acc,
               const ExecContext &ctx) override
    {
        return ex.requantizeAt(layer.scratchArray + ctx.arrayOffset,
                               acc, layer.requantMult,
                               layer.requantShift);
    }

  private:
    Executor &ex;
};

// ---- ISA (broadcast LayerEngine) ------------------------------------

class IsaBackend : public Backend
{
  public:
    IsaBackend(LayerEngine &le_, Executor &ex_) : le(le_), ex(ex_) {}

    BackendKind kind() const override { return BackendKind::Isa; }

    std::vector<uint32_t>
    conv(CompiledLayer &layer, const dnn::QTensor &in, unsigned &out_h,
         unsigned &out_w, const ExecContext &ctx) override
    {
        nc_assert(layer.isaConv.has_value(),
                  "layer '%s' was not prepared for the ISA backend",
                  layer.op.name().c_str());
        return layer.isaConv->run(in, out_h, out_w, ctx.slot);
    }

    dnn::QTensor
    maxPool(CompiledLayer &layer, const dnn::QTensor &in,
            const ExecContext &ctx) override
    {
        // The broadcast MaxInto program sequences VALID and SAME
        // windows alike (edge windows just run shorter programs), so
        // the executor fallback SAME padding used to need is gone.
        const dnn::PoolOp &po = layer.op.pool;
        return le.maxPoolLayerAt(layer.scratchArray + ctx.arrayOffset,
                                 in, po.r, po.s, po.stride,
                                 po.samePad);
    }

    dnn::QTensor
    avgPool(CompiledLayer &layer, const dnn::QTensor &in,
            const ExecContext &ctx) override
    {
        // No broadcast macro for the sum+divide sequence yet; the
        // executor drives the identical bit-serial micro-ops.
        const dnn::PoolOp &po = layer.op.pool;
        return ex.avgPoolAt(layer.scratchArray + ctx.arrayOffset, in,
                            po.r, po.s, po.stride, po.samePad);
    }

    dnn::QTensor
    eltwiseAdd(CompiledLayer &layer, const dnn::QTensor &a,
               const dnn::QTensor &b, const ExecContext &ctx) override
    {
        nc_assert(layer.isaElt.has_value(),
                  "eltwise '%s' was not prepared for the ISA backend",
                  layer.op.name().c_str());
        dnn::QTensor out(a.channels(), a.height(), a.width(),
                         a.params());
        out.data() = layer.isaElt->run(a.data(), b.data(), ctx.slot);
        return out;
    }

    std::vector<uint8_t>
    requantize(CompiledLayer &layer,
               const std::vector<uint32_t> &acc,
               const ExecContext &ctx) override
    {
        return ex.requantizeAt(layer.scratchArray + ctx.arrayOffset,
                               acc, layer.requantMult,
                               layer.requantShift);
    }

  private:
    LayerEngine &le;
    Executor &ex;
};

} // namespace

std::unique_ptr<Backend>
makeBackend(BackendKind kind, Executor *ex, LayerEngine *le)
{
    switch (kind) {
      case BackendKind::Reference:
        return std::make_unique<ReferenceBackend>();
      case BackendKind::Functional:
        nc_assert(ex, "functional backend needs an Executor");
        return std::make_unique<FunctionalBackend>(*ex);
      case BackendKind::Isa:
        nc_assert(ex && le,
                  "ISA backend needs a LayerEngine and an Executor");
        return std::make_unique<IsaBackend>(*le, *ex);
      case BackendKind::Analytic:
        break;
    }
    nc_panic("no functional backend for kind '%s'",
             backendKindName(kind));
}

} // namespace nc::core
