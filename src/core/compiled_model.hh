/**
 * @file
 * CompiledModel: the run-many half of the compile-once API.
 *
 * Engine::compile() pays, exactly once per network: quantization
 * calibration, mapping/tiling (mapping::planConv / planPool), the
 * §IV-C transposed weight layout, per-layer program/plan
 * construction, and — for functional backends — pinning every conv
 * layer's filters stationary in its own band of arrays. The
 * resulting CompiledModel then answers run()/runBatch() repeatedly
 * without re-planning or re-streaming weights, which is the whole
 * point of the paper's §IV-E amortization argument.
 */

#ifndef NC_CORE_COMPILED_MODEL_HH
#define NC_CORE_COMPILED_MODEL_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/backend.hh"
#include "core/executor.hh"
#include "core/layer_engine.hh"
#include "dnn/layers.hh"
#include "dnn/tensor.hh"
#include "mapping/plan.hh"
#include "sram/faults.hh"

namespace nc::core
{

class Engine;

/**
 * One layer after compilation: the op descriptor plus everything the
 * compile pass derived for it. Conv/FC layers carry quantized
 * weights, the mapping plan, the preprocessed (transposed) DRAM
 * image, calibrated requantization scalars, and — per backend — the
 * prepared stationary-filter kernel.
 */
struct CompiledLayer
{
    dnn::Op op;
    BackendKind backend = BackendKind::Functional;

    /** @name Conv / FullyConnected artifacts */
    /// @{
    dnn::QWeights weights;
    mapping::ConvPlan plan;
    /** The executor transform selection (pack/split/chunk bands). */
    mapping::FunctionalConvPlan funcPlan;
    /**
     * Filter bytes in §IV-C streaming order — the preprocessed DRAM
     * image the modeled machine would burst into the arrays, built
     * once per compile and exposed for inspection/tooling. The
     * simulator kernels pin `weights` directly (their one-array
     * layout differs from the mapper's multi-way placement), so this
     * is a modeled artifact, not kernel input.
     */
    std::vector<uint8_t> dramImage;
    /** Calibrated fixed-point requantization: q = sat8((acc*m)>>s).
     * For eltwise layers these are the merge scalars of
     * sat8(((a+b)*mult)>>shift). */
    uint8_t requantMult = 1;
    unsigned requantShift = 0;
    /** First flat array index of the layer's filter band. */
    uint64_t baseArray = 0;
    /**
     * Arrays in the band starting at baseArray (0 for layers that
     * own no filter band — pools, eltwise, reference-backed convs).
     * With bandResident the pair records the placement verdict pass
     * B made, so the static auditor (mapping::auditPlan) can
     * re-derive every concurrently-live range without re-running
     * placement.
     */
    uint64_t bandArrays = 0;
    /** Whether the band is pinned stationary (resident regime) or
     * time-shares its arrays with the branch's other layers
     * (streaming regime). */
    bool bandResident = true;
    std::optional<Executor::PreparedConv> funcConv;
    std::optional<LayerEngine::PreparedConvLayer> isaConv;
    /// @}

    /** @name Pool artifacts */
    /// @{
    mapping::PoolPlan poolPlan;
    /// @}

    /** @name Eltwise artifacts */
    /// @{
    std::optional<Executor::PreparedEltwise> funcElt;
    std::optional<LayerEngine::PreparedEltwiseLayer> isaElt;
    /// @}

    /**
     * The scratch array the layer-less kernels (pools, eltwise,
     * requantization) of this layer scribble on — one per branch, so
     * concurrently executing branches never share mutable arrays.
     */
    uint64_t scratchArray = 0;
};

/** What one run() returns: tensors and timing from a single call. */
struct InferenceResult
{
    /**
     * The network's final activation (empty for a pure-analytic
     * compile, which prices the run without executing tensors).
     */
    dnn::QTensor output;
    /** The analytic answer for the same call (batch 1). */
    InferenceReport report;
};

/** What runBatch() returns: one output per input, one batch report. */
struct BatchInferenceResult
{
    std::vector<dnn::QTensor> outputs; ///< empty for pure-analytic
    InferenceReport report;
};

/** An immutable compiled network; obtained from Engine::compile. */
class CompiledModel
{
  public:
    /**
     * Sanity ceiling on batch sizes: large enough for any real
     * serving batch (the paper's Figure 16 sweeps to 256), small
     * enough that a negative or garbage size narrowed into an
     * unsigned is caught instead of allocating terabytes.
     */
    static constexpr unsigned kMaxBatch = 1u << 16;

    CompiledModel(CompiledModel &&) noexcept;
    CompiledModel &operator=(CompiledModel &&) noexcept;
    ~CompiledModel();

    const dnn::Network &network() const { return net; }
    /** The engine-level backend the model was compiled for. */
    BackendKind backend() const { return kind; }
    /** Whether run() produces output tensors (any functional layer). */
    bool functional() const { return !layers.empty(); }

    /** @name Expected input shape (the first op's input) */
    /// @{
    unsigned inputChannels() const { return inC; }
    unsigned inputHeight() const { return inH; }
    unsigned inputWidth() const { return inW; }
    /// @}

    /**
     * Execute one inference. Repeated calls are bit-identical and
     * skip all compile-time work (mapping, layout, filter loading).
     */
    InferenceResult run(const dnn::QTensor &input);

    /**
     * Execute a batch image-parallel (§IV-E): filters stay
     * stationary across the whole span, and the cache's spare array
     * capacity runs up to batchBands().imageSlots images
     * concurrently, each in its own replica of the network's bands —
     * batches beyond that time-slice in passes. Outputs are
     * bit-identical to the serial per-image loop for any thread
     * count and any batch size. @p inputs must be non-empty, at most
     * kMaxBatch images, every image of the network's input shape.
     * The report prices the batch with filter loading amortized.
     */
    BatchInferenceResult runBatch(std::span<const dnn::QTensor> inputs);

    /**
     * The analytic answer alone (no tensor execution): the batched
     * InferenceReport assembled from compile-time stage costs. Cheap
     * enough to sweep batch sizes on one compiled model. @p batch
     * must be in [1, kMaxBatch] — batch 0 is a hard error here, not
     * something callers are trusted to pre-filter.
     */
    InferenceReport report(unsigned batch = 1) const;

    /**
     * The §IV-E batch banding the residency planner carved: per-image
     * footprint, concurrent image slots, time-sliced pass structure.
     */
    const mapping::BatchBandPlan &batchBands() const
    {
        return bandPlan;
    }
    /** Image replicas pinned so far (grows lazily with runBatch). */
    unsigned preparedImageSlots() const { return preparedSlots; }

    /** Per-layer compile artifacts, in execution order. */
    const std::vector<CompiledLayer> &compiledLayers() const
    {
        return layers;
    }
    /** Find a compiled layer by op name (null if absent). */
    const CompiledLayer *findLayer(std::string_view name) const;

    /**
     * The functional compute cache (null for pure-analytic models):
     * array state, lock-step cycle counters.
     */
    cache::ComputeCache *computeCache() { return cc.get(); }
    const cache::ComputeCache *computeCache() const { return cc.get(); }

    /** The shared worker pool threads count. */
    unsigned threads() const;

    /**
     * One branch of a compiled stage: indices into compiledLayers()
     * in execution order, plus the fork/merge structure the run loop
     * honors (split tails fork on the penultimate tensor, eltwise
     * tails merge with the shortcut operand).
     */
    struct CompiledBranch
    {
        std::vector<size_t> layerIdx;
        bool splitTail = false;
        bool shortcut = false;
        bool endsWithEltwise = false;
    };

    /** One stage: branches execute concurrently, outputs concat. */
    struct CompiledStage
    {
        std::vector<CompiledBranch> branches;
        int shortcutBranch = -1;
    };

    /** The stage/branch program (empty for pure-analytic models). */
    const std::vector<CompiledStage> &compiledStages() const
    {
        return stages;
    }

    /** Slot 0's first scratch array (pass B's placement verdict). */
    uint64_t scratchBaseArray() const { return scratchBase; }

    /** The configuration the model was compiled against. */
    const NeuralCacheConfig &config() const { return cfg; }

    /** @name Fault tolerance (sram/faults.hh, cache/health.hh) */
    /// @{
    /** The fault campaign the model was compiled under (enabled()
     * false when none was configured). */
    const sram::faults::Config &faultConfig() const { return faultCfg; }
    /**
     * Whether the runtime canary check runs after every pass: faults
     * configured with canary on, and every on-array layer on the
     * functional backend (the broadcast-ISA path has no runtime
     * repair — it is covered by compile-time BIST only).
     */
    bool canaryArmed() const { return canaryOn; }
    /** Flat logical indices [0, extent) the current plan touches:
     * pinned replicas in the resident regime, the placed region in
     * the streaming regime. The canary scans exactly this span. */
    uint64_t liveArrayExtent() const;
    /// @}

    /** @name Static program verification (core/program_verify.hh) */
    /// @{
    /** Layer programs the compile-time verifier proved legal
     * (cumulative: runtime repair re-verifies after re-placement). */
    uint64_t programsVerified() const { return nProgramsVerified; }
    /** Wall milliseconds spent verifying (part of compile time). */
    double verifyMs() const { return verifyMsTotal; }
    /// @}

  private:
    friend class Engine;
    CompiledModel();

    Backend &backendFor(BackendKind k);
    dnn::QTensor runLayers(const dnn::QTensor &input,
                           const ExecContext &ctx);
    dnn::QTensor runOp(CompiledLayer &layer, dnn::QTensor act,
                       const ExecContext &ctx);
    /** By value: the fast path moves the activation through; the
     * branch fan-out passes each branch its own copy. */
    dnn::QTensor runBranch(const CompiledBranch &branch,
                           dnn::QTensor input,
                           const ExecContext &ctx);
    /**
     * Lazily pin image replicas 1..want-1 (bands + scratch at
     * offset slot * perImageArrays) so a batch can fan @p want
     * images concurrently. Capped by the planner's imageSlots;
     * replicas persist, so later batches skip the work.
     */
    unsigned ensureImageSlots(unsigned want);

    /**
     * Pass B + C of compilation, re-runnable: plan the §IV-E banding
     * over the currently usable arrays, place every on-array layer,
     * materialize scratch, and prepare the per-layer kernels.
     * Engine::compile runs it once; runtime repair re-runs it to
     * shed capacity (fewer image slots, or streaming once one
     * image's bands no longer fit) after arrays retire. Resets
     * preparedSlots to 1 — replicas re-pin lazily on the next pass.
     */
    void placeAndPrepare(bool force_streaming);

    /**
     * Read every live array's guard row (the reserved constant-zero
     * word line, bitserial::RowAllocator::zeroRow — always the top
     * row) and return the logical indices whose guard is corrupt.
     * The touch itself re-applies pending fault state, so a
     * transient struck since the last scan cannot hide.
     */
    std::vector<uint64_t> canaryScan();
    /**
     * One post-pass canary round: scan, and when corruption is found
     * charge @p budget, retire/repair every casualty, and re-audit
     * the healed plan. Returns true when the scan was clean (the
     * pass output is trustworthy); false means the caller must rerun
     * the pass. Exhausting the budget with corruption still present
     * is fatal, naming the retired arrays.
     */
    bool canarySweepAndRepair(unsigned &budget);
    /**
     * Retire faulty @p logical. With a spare available the
     * substitution is surgical: only the affected band replica (or
     * scratch slot) re-pins, and at most the planned-but-unpinned
     * slot count shrinks. With no spare the whole plan re-places
     * over the survivors (returns true: logical indices reshuffled).
     */
    bool repairOne(uint64_t logical);
    /** Re-pin whatever the plan keeps at @p logical after a
     * substitution (conv replica band, or nothing for scratch). */
    void repinLogical(uint64_t logical);

    dnn::Network net;
    NeuralCacheConfig cfg;
    BackendKind kind = BackendKind::Analytic;
    unsigned inC = 0, inH = 0, inW = 0;

    std::shared_ptr<common::ThreadPool> pool;
    std::unique_ptr<AnalyticBackend> analytic;
    std::vector<StageCost> stageCosts;
    mapping::BatchBandPlan bandPlan;
    uint64_t scratchBase = 0;  ///< slot 0's first scratch array
    unsigned preparedSlots = 1; ///< image replicas pinned so far

    sram::faults::Config faultCfg; ///< enabled() false: no campaign
    bool canaryOn = false;     ///< post-pass guard-row check armed
    uint64_t usedExtent = 0;   ///< streaming: top of the placed region
    /** @name Cumulative fault counters (into InferenceReport) */
    /// @{
    uint64_t nFaultsDetected = 0;
    uint64_t nArraysRetired = 0;
    uint64_t nPassRetries = 0;
    /// @}

    /** @name Static program verification counters */
    /// @{
    uint64_t nProgramsVerified = 0;
    double verifyMsTotal = 0.0;
    /// @}

    std::unique_ptr<cache::ComputeCache> cc;
    std::unique_ptr<Executor> ex;
    std::unique_ptr<LayerEngine> isaEngine;
    std::unique_ptr<Backend> refBackend, funcBackend, isaBackend;
    std::vector<CompiledLayer> layers;
    std::vector<CompiledStage> stages;
};

} // namespace nc::core

#endif // NC_CORE_COMPILED_MODEL_HH
