/**
 * @file
 * Pluggable execution backends behind the Engine / CompiledModel API.
 *
 * One compiled network can be answered four ways:
 *
 *  - Reference:  obviously-correct CPU loops (dnn::reference) — the
 *                ground truth every functional path is pinned to.
 *  - Functional: bit-serial array operations through core::Executor
 *                (direct ALU calls, per-filter-batch parallelism).
 *  - Isa:        the broadcast-ISA path through core::LayerEngine /
 *                Controller (one instruction stream, SIMD lock-step).
 *  - Analytic:   the paper's cost model (core::CostModel) — timing,
 *                phase breakdowns, and energy, no tensors.
 *
 * The three functional backends are bit-exact against each other by
 * construction (the backend-parity test suite enforces it); the
 * analytic backend answers every run's InferenceReport. Backends are
 * selected per engine and overridable per layer for mixed runs, and
 * all share one common::ThreadPool.
 */

#ifndef NC_CORE_BACKEND_HH
#define NC_CORE_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/neural_cache.hh"
#include "dnn/tensor.hh"

namespace nc::core
{

class Executor;
class LayerEngine;
struct CompiledLayer;

/** The four ways a compiled layer can execute. */
enum class BackendKind
{
    Reference,
    Functional,
    Isa,
    Analytic,
};

const char *backendKindName(BackendKind k);

/**
 * Parse a backend name ("reference", "functional", "isa",
 * "analytic"); returns false on unknown names.
 */
bool parseBackendKind(std::string_view name, BackendKind &out);

/**
 * The per-image execution context of one batch slot (§IV-E):
 * runBatch fans N images over the pool concurrently, and every image
 * in flight owns a complete replica of the network's array state —
 * stationary filter bands and scratch arrays alike — at flat-array
 * offset slot * perImageArrays. Kernels add arrayOffset to every
 * array index they touch, so concurrent images never share mutable
 * arrays and outputs are bit-identical to the serial per-image loop
 * for any thread count. Slot 0 (offset 0) is the bands the compile
 * pass placed; run() always executes there.
 */
struct ExecContext
{
    unsigned slot = 0;        ///< image slot (replica ordinal)
    uint64_t arrayOffset = 0; ///< flat-array offset of the replica
};

/**
 * A functional execution strategy for compiled layers. Implementations
 * wrap the existing executors; CompiledModel dispatches each layer to
 * the backend its compile options selected. Every entry point takes
 * the CompiledLayer, which carries the op shape, the prepared
 * kernels, the calibrated requantization scalars, and the layer's own
 * scratch array — the latter is what lets independent branches of one
 * stage execute concurrently without sharing mutable array state —
 * plus the ExecContext naming which image slot's array replica the
 * call runs on (images of one batch execute concurrently, each on
 * its own replica).
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    virtual BackendKind kind() const = 0;

    /**
     * Convolution (or FC-as-1x1-conv) of @p layer on @p in; returns
     * the raw accumulators in [m][oh][ow] order.
     */
    virtual std::vector<uint32_t> conv(CompiledLayer &layer,
                                       const dnn::QTensor &in,
                                       unsigned &out_h,
                                       unsigned &out_w,
                                       const ExecContext &ctx) = 0;

    /** Max pooling with @p layer's window/stride/padding. */
    virtual dnn::QTensor maxPool(CompiledLayer &layer,
                                 const dnn::QTensor &in,
                                 const ExecContext &ctx) = 0;

    /** Average pooling (truncating division; SAME padding divides
     * partial windows by their valid-element count). */
    virtual dnn::QTensor avgPool(CompiledLayer &layer,
                                 const dnn::QTensor &in,
                                 const ExecContext &ctx) = 0;

    /**
     * Residual merge: out = sat8(((a + b) * mult) >> shift) with the
     * layer's calibrated scalars.
     */
    virtual dnn::QTensor eltwiseAdd(CompiledLayer &layer,
                                    const dnn::QTensor &a,
                                    const dnn::QTensor &b,
                                    const ExecContext &ctx) = 0;

    /**
     * Requantize accumulators to bytes: q = sat8((acc * mult) >>
     * shift), the §IV-D fixed-point sequence with @p layer's
     * compile-time calibrated scalars.
     */
    virtual std::vector<uint8_t> requantize(
        CompiledLayer &layer, const std::vector<uint32_t> &acc,
        const ExecContext &ctx) = 0;
};

/**
 * The timing half: wraps CostModel. It cannot execute tensors (the
 * functional entry points panic); CompiledModel uses it to derive
 * per-stage costs at compile time and assemble batched reports at run
 * time — which is exactly the compile/run amortization: mapping and
 * tiling are priced once, report assembly is arithmetic.
 */
class AnalyticBackend : public Backend
{
  public:
    explicit AnalyticBackend(const NeuralCacheConfig &cfg_);

    BackendKind kind() const override { return BackendKind::Analytic; }

    const CostModel &model() const { return costModel; }

    /** Price one stage (runs mapping/tiling; compile-time only). */
    StageCost stageCost(const dnn::Stage &stage) const;

    /**
     * Assemble the batched report from compile-time stage costs.
     * @p bands is the §IV-E banding the caller executes (CompiledModel
     * passes its compile-time plan so the report prices exactly the
     * pass structure runBatch runs); null derives the net-level plan.
     */
    InferenceReport report(const dnn::Network &net,
                           const std::vector<StageCost> &stageCosts,
                           unsigned batch,
                           const mapping::BatchBandPlan *bands =
                               nullptr) const;

    std::vector<uint32_t> conv(CompiledLayer &layer,
                               const dnn::QTensor &in, unsigned &out_h,
                               unsigned &out_w,
                               const ExecContext &ctx) override;
    dnn::QTensor maxPool(CompiledLayer &layer, const dnn::QTensor &in,
                         const ExecContext &ctx) override;
    dnn::QTensor avgPool(CompiledLayer &layer, const dnn::QTensor &in,
                         const ExecContext &ctx) override;
    dnn::QTensor eltwiseAdd(CompiledLayer &layer, const dnn::QTensor &a,
                            const dnn::QTensor &b,
                            const ExecContext &ctx) override;
    std::vector<uint8_t> requantize(
        CompiledLayer &layer, const std::vector<uint32_t> &acc,
        const ExecContext &ctx) override;

  private:
    NeuralCacheConfig cfg;
    CostModel costModel;
};

/**
 * Build a functional backend. @p ex is required for Functional and
 * Isa (the Isa backend routes avg pooling and requantization through
 * the executor's bit-serial helpers — the ISA has no broadcast macro
 * for them yet); @p le is required for Isa.
 */
std::unique_ptr<Backend> makeBackend(BackendKind kind, Executor *ex,
                                     LayerEngine *le);

} // namespace nc::core

#endif // NC_CORE_BACKEND_HH
