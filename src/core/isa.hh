/**
 * @file
 * The in-cache instruction set (paper §IV-F).
 *
 * "Neural Cache requires supporting a few new instructions: in-cache
 * addition, multiplication, reduction, and moves. Since, at any given
 * time only one layer in the network is being operated on, all
 * compute arrays execute the same in-cache compute instruction."
 *
 * An Instruction names an ALU macro-op and its operand slices; the
 * Controller (controller.hh) broadcasts it over the intra-slice
 * address bus to every enrolled array, where the per-bank FSM expands
 * it into the bit-serial micro-op sequence. Because operands are
 * slice-relative and every array holds the same layout, one encoding
 * drives thousands of arrays in lock-step.
 */

#ifndef NC_CORE_ISA_HH
#define NC_CORE_ISA_HH

#include <cstdint>
#include <string>

#include "bitserial/layout.hh"

namespace nc::core
{

/**
 * Macro-opcodes the bank FSM can expand. Latch effects matter to
 * program legality (program_verify.hh polices them statically):
 * Add/Sub leave the lane carry latches holding the final carry-out;
 * Search and LoadTag define the tag latches; and every multi-step op
 * that runs its own internal compare/carry sequence (Multiply, Mac,
 * MaxInto, MinInto, Relu, Saturate, Divide, BatchNorm, ReduceMax)
 * clobbers both latch sets on the way through.
 */
enum class Opcode
{
    Copy,      ///< out <= a (honors pred)
    CopyInv,   ///< out <= ~a (honors pred)
    Zero,      ///< out <= 0 (honors pred)
    Add,       ///< out <= a + b (honors pred/carryIn; defines carry)
    Sub,       ///< out <= a - b (scratch: b.bits; honors pred)
    Multiply,  ///< out <= a * b (out = a.bits + b.bits)
    Mac,       ///< out += a * b through scratch (Fig 10 flow)
    ReduceSum, ///< lane-tree sum over imm lanes (a live in low bits)
    ReduceMax, ///< lane-tree max over imm lanes
    MaxInto,   ///< a <= max(a, b) (scratch: compare band)
    MinInto,   ///< a <= min(a, b) (scratch: compare band)
    Relu,      ///< a <= max(a, 0), two's complement
    ShiftUp,   ///< a <<= imm
    ShiftDown, ///< a >>= imm
    Saturate,  ///< a <= min(a, 2^imm - 1) (the §IV-D clamp)
    Divide,    ///< out <= a / b (scratch, scratch2, c as dwork)
    BatchNorm, ///< a <= ((a * b) >> imm) + c (paper §IV-D)
    Search,    ///< tag <= (a == key)
    LoadTag,   ///< tag <= row a.base
};

const char *opcodeName(Opcode op);

/** One broadcast instruction. */
struct Instruction
{
    Opcode op = Opcode::Zero;
    bitserial::VecSlice a;       ///< first operand / in-place target
    bitserial::VecSlice b;       ///< second operand
    bitserial::VecSlice c;       ///< BatchNorm beta / Divide dwork
    bitserial::VecSlice out;     ///< destination
    bitserial::VecSlice scratch; ///< primary scratch band
    bitserial::VecSlice scratch2; ///< secondary scratch band
    unsigned imm = 0;            ///< lanes / shift amount
    unsigned imm2 = 0;           ///< ReduceSum live width w0
    uint64_t key = 0;            ///< Search key
    unsigned zeroRow = bitserial::kNoRow;
    bool pred = false;           ///< tag-predicated write-back
    bool carryIn = false;        ///< Add consumes the carry latches

    /** @name Assembly-style factories */
    /// @{
    static Instruction copy(bitserial::VecSlice a,
                            bitserial::VecSlice out,
                            bool pred = false);
    static Instruction zero(bitserial::VecSlice out);
    static Instruction add(bitserial::VecSlice a, bitserial::VecSlice b,
                           bitserial::VecSlice out,
                           unsigned zero_row = bitserial::kNoRow,
                           bool carry_in = false);
    static Instruction sub(bitserial::VecSlice a, bitserial::VecSlice b,
                           bitserial::VecSlice out,
                           bitserial::VecSlice scratch);
    static Instruction multiply(bitserial::VecSlice a,
                                bitserial::VecSlice b,
                                bitserial::VecSlice out);
    static Instruction mac(bitserial::VecSlice a, bitserial::VecSlice b,
                           bitserial::VecSlice acc,
                           bitserial::VecSlice scratch,
                           unsigned zero_row);
    static Instruction reduceSum(bitserial::VecSlice acc, unsigned w0,
                                 unsigned lanes,
                                 bitserial::VecSlice scratch);
    static Instruction relu(bitserial::VecSlice a);
    static Instruction search(bitserial::VecSlice a, uint64_t key);
    static Instruction shiftDown(bitserial::VecSlice a, unsigned k);
    static Instruction saturate(bitserial::VecSlice a,
                                unsigned out_bits);
    /// @}
};

} // namespace nc::core

#endif // NC_CORE_ISA_HH
