#include "core/engine.hh"

#include <algorithm>
#include <utility>

#include "common/env.hh"
#include "common/logging.hh"
#include "dnn/random.hh"
#include "core/program_verify.hh"
#include "mapping/plan_audit.hh"
#include "mapping/weight_layout.hh"

namespace nc::core
{

namespace
{

/**
 * Decompose 255/acc_max into the 8-bit multiplier and truncating
 * right shift the in-array requantizer executes: q = sat8((acc *
 * mult) >> shift).
 */
void
calibrateFromAccMax(uint64_t acc_max, uint8_t &mult, unsigned &shift)
{
    if (acc_max <= 255) { // identity: accumulators already fit a byte
        mult = 1;
        shift = 0;
        return;
    }

    double ratio = 255.0 / static_cast<double>(acc_max);
    unsigned sh = 0;
    while (sh < 31 &&
           ratio * static_cast<double>(uint64_t(1) << sh) < 128.0)
        ++sh;
    auto m8 = static_cast<uint64_t>(
        ratio * static_cast<double>(uint64_t(1) << sh));
    mult = static_cast<uint8_t>(std::min<uint64_t>(m8, 255));
    shift = sh;
}

/**
 * Quantization calibration (§IV-D, done once at compile): bound the
 * worst-case accumulator by the largest filter's weight sum against
 * all-255 inputs.
 */
void
calibrateRequant(const dnn::QWeights &w, uint8_t &mult,
                 unsigned &shift)
{
    uint64_t acc_max = 0;
    for (unsigned mi = 0; mi < w.m; ++mi) {
        uint64_t sum = 0;
        for (unsigned ci = 0; ci < w.c; ++ci)
            for (unsigned ri = 0; ri < w.r; ++ri)
                for (unsigned si = 0; si < w.s; ++si)
                    sum += w.at(mi, ci, ri, si);
        acc_max = std::max(acc_max, sum * 255);
    }
    calibrateFromAccMax(acc_max, mult, shift);
}

/** The (c, h, w) shape flowing between layers during compilation. */
struct Shape
{
    unsigned c = 0, h = 0, w = 0;
};

} // namespace

Engine::Engine(Options opts_)
    : opts(std::move(opts_)),
      pool(std::make_shared<common::ThreadPool>(opts.threads))
{
    common::checkEnvOnce();
    // NC_FAULTS overlays the programmatic campaign, exactly like
    // NC_THREADS overlays opts.threads (strict parse, fatal on junk).
    opts.faults = sram::faults::configFromEnv(opts.faults);
}

CompiledModel
Engine::compile(const dnn::Network &net,
                const ModelWeights &weights) const
{
    nc_assert(!net.stages.empty(), "Engine::compile: empty network "
              "'%s'", net.name.c_str());

    CompiledModel m;
    m.net = net;
    m.cfg = opts.config;
    m.kind = opts.backend;
    m.pool = pool;

    // 1. Analytic plans + per-stage costs: the mapping/tiling pass,
    //    paid exactly once. report() re-uses these forever.
    m.analytic = std::make_unique<AnalyticBackend>(opts.config);
    m.stageCosts.reserve(net.stages.size());
    for (const auto &stage : net.stages) {
        nc_assert(!stage.branches.empty() &&
                      !stage.branches.front().ops.empty(),
                  "stage '%s' of '%s' has no ops",
                  stage.name.c_str(), net.name.c_str());
        m.stageCosts.push_back(m.analytic->stageCost(stage));
    }

    // Expected input shape: the first op's input.
    {
        const dnn::Op &front = net.stages.front().branches.front()
                                   .ops.front();
        if (front.isConv()) {
            m.inC = front.conv.c;
            m.inH = front.conv.h;
            m.inW = front.conv.w;
        } else if (front.isPool()) {
            m.inC = front.pool.c;
            m.inH = front.pool.h;
            m.inW = front.pool.w;
        } else {
            m.inC = front.elt.c;
            m.inH = front.elt.h;
            m.inW = front.elt.w;
        }
    }

    if (opts.backend == BackendKind::Analytic) {
        // Faults break arrays; the analytic model has none. Failing
        // here beats silently reporting ideal-silicon numbers for a
        // campaign the caller thought was running.
        if (opts.faults.enabled())
            nc_fatal("fault injection configured for '%s', but the "
                     "analytic backend has no arrays to break (use a "
                     "functional backend)", net.name.c_str());
        // Pure timing model: no functional state at all — and no
        // silent discard of filter banks the caller thought mattered.
        nc_assert(weights.empty(),
                  "analytic engines never read weights; %zu banks "
                  "were passed for '%s'", weights.size(),
                  net.name.c_str());
        // No layer placement happens, so the report's §IV-E pass
        // structure comes from the all-functional net-level banding
        // (the same one the legacy facade derives).
        m.bandPlan = mapping::planBatchBands(
            net, opts.config.geometry);
        mapping::auditPlanOrDie(m);
        // No prepared kernels exist, but the programs the functional
        // mapper would run are still derivable — verify them, so an
        // illegal canonical stream dies even on analytic compiles.
        verify::VerifySummary vs =
            verify::verifyNetworkProgramsOrDie(net, opts.config);
        m.nProgramsVerified += vs.programsVerified;
        m.verifyMsTotal += vs.verifyMs;
        return m;
    }

    // 2. Functional compilation: validate the topology, calibrate,
    //    lay out weights, and pin every conv layer's filters into its
    //    own band of arrays.
    const cache::Geometry &geom = opts.config.geometry;
    m.cc = std::make_unique<cache::ComputeCache>(geom);
    m.ex = std::make_unique<Executor>(*m.cc, *pool);

    // Fault campaign: arm the injection registry before any array
    // materializes, then march-scan (BIST) so statically broken
    // arrays retire before placement ever sees them — the remap
    // compacts the survivors and everything downstream just plans
    // over fewer interchangeable arrays.
    if (opts.faults.enabled()) {
        m.faultCfg = opts.faults;
        m.cc->configureFaults(opts.faults);
        if (opts.faults.bist) {
            uint64_t retired = m.cc->bistScanAndRemap();
            m.nArraysRetired += retired;
            if (retired > 0)
                nc_inform("BIST retired %llu of %llu arrays "
                          "compiling '%s': %s",
                          static_cast<unsigned long long>(retired),
                          static_cast<unsigned long long>(
                              geom.totalArrays()),
                          net.name.c_str(),
                          m.cc->health()->summary().c_str());
        }
    }

    // Which backends do the layers actually use?
    bool uses_isa = opts.backend == BackendKind::Isa;
    bool uses_func = opts.backend == BackendKind::Functional;
    bool uses_ref = opts.backend == BackendKind::Reference;
    for (const auto &[name, kind] : opts.layerBackends) {
        nc_assert(kind != BackendKind::Analytic,
                  "layer '%s': per-layer analytic override is "
                  "meaningless in a functional engine", name.c_str());
        uses_isa |= kind == BackendKind::Isa;
        uses_func |= kind == BackendKind::Functional;
        uses_ref |= kind == BackendKind::Reference;
    }
    if (uses_isa)
        m.isaEngine = std::make_unique<LayerEngine>(*m.cc, *pool);

    // Runtime repair (canary check -> retire -> re-pin -> retry) is
    // functional-backend-only: the broadcast-ISA engine caches
    // per-array programs the remap would silently invalidate. ISA
    // layer mixes still get compile-time BIST, but injecting
    // mid-run transients into them would corrupt outputs with no
    // detector — refuse the campaign instead.
    if (opts.faults.enabled()) {
        if (uses_isa && opts.faults.transientRate > 0)
            nc_fatal("'%s' routes layers to the broadcast-ISA "
                     "backend, which has no runtime repair; "
                     "transient injection (rate %g) requires an "
                     "all-functional layer mix (BIST-only campaigns "
                     "— transient=0 — work on any backend)",
                     net.name.c_str(), opts.faults.transientRate);
        m.canaryOn = opts.faults.canary && uses_func && !uses_isa;
    }

    // --- Pass A: validate the topology and build the per-layer and
    // per-stage program structure (no array placement yet). ---------
    Shape shape{m.inC, m.inH, m.inW};
    unsigned layer_idx = 0;
    size_t max_branches = 1;

    for (const auto &stage : net.stages) {
        mapping::StageConcatPlan scp = mapping::planStageConcat(stage);
        // The stage's common branch input must be what the previous
        // stage produced (an FC head flattens CHW into channels).
        bool fc_front =
            stage.branches.front().ops.front().isConv() &&
            stage.branches.front().ops.front().conv.isFullyConnected;
        if (fc_front) {
            nc_assert(scp.input.c == shape.c * shape.h * shape.w,
                      "fc stage '%s' expects %u inputs, previous "
                      "stage produces %ux%ux%u", stage.name.c_str(),
                      scp.input.c, shape.c, shape.h, shape.w);
        } else {
            nc_assert(scp.input.c == shape.c &&
                          scp.input.h == shape.h &&
                          scp.input.w == shape.w,
                      "stage '%s' expects %ux%ux%u input, previous "
                      "stage produces %ux%ux%u", stage.name.c_str(),
                      scp.input.c, scp.input.h, scp.input.w, shape.c,
                      shape.h, shape.w);
        }
        max_branches = std::max(max_branches, stage.branches.size());

        CompiledModel::CompiledStage cstage;
        cstage.shortcutBranch = scp.shortcutBranch;

        for (const auto &branch : stage.branches) {
            CompiledModel::CompiledBranch cbranch;
            cbranch.splitTail = branch.splitTail;
            cbranch.shortcut = branch.shortcut;
            cbranch.endsWithEltwise =
                branch.ops.back().kind == dnn::OpKind::EltwiseAdd;

            for (const auto &op : branch.ops) {
                CompiledLayer layer;
                layer.op = op;
                layer.backend = opts.backend;
                if (auto it = opts.layerBackends.find(op.name());
                    it != opts.layerBackends.end())
                    layer.backend = it->second;
                bool on_arrays =
                    layer.backend == BackendKind::Functional ||
                    layer.backend == BackendKind::Isa;

                if (op.isConv()) {
                    const dnn::ConvOp &co = op.conv;
                    nc_assert(co.c > 0 && co.m > 0 && co.r > 0 &&
                                  co.s > 0,
                              "conv '%s': degenerate shape",
                              co.name.c_str());
                    // Only the bit-serial kernels map onto arrays;
                    // the reference backend runs CPU loops of any
                    // shape.
                    layer.funcPlan =
                        mapping::planFunctionalConv(co, geom);
                    nc_assert(!on_arrays || layer.funcPlan.fits,
                              "conv '%s' (C=%u RxS=%ux%u) exceeds "
                              "every functional mapping",
                              co.name.c_str(), co.c, co.r, co.s);
                    nc_assert(layer.backend != BackendKind::Isa ||
                                  layer.funcPlan.legacy,
                              "conv '%s' (C=%u RxS=%ux%u) needs the "
                              "pack/split/chunk mapping, which the "
                              "broadcast ISA path does not support; "
                              "route it to the functional backend",
                              co.name.c_str(), co.c, co.r, co.s);

                    // Weights: explicit bank, else deterministic
                    // seed.
                    if (auto it = weights.find(op.name());
                        it != weights.end()) {
                        const dnn::QWeights &qw = it->second;
                        nc_assert(qw.m == co.m && qw.c == co.c &&
                                      qw.r == co.r && qw.s == co.s,
                                  "weights for '%s' are "
                                  "%ux%ux%ux%u, op wants %ux%ux%ux%u",
                                  co.name.c_str(), qw.m, qw.c, qw.r,
                                  qw.s, co.m, co.c, co.r, co.s);
                        layer.weights = qw;
                    } else {
                        Rng rng(opts.weightSeed +
                                0x9e3779b97f4a7c15ull *
                                    (layer_idx + 1));
                        layer.weights = dnn::randomQWeights(
                            rng, co.m, co.c, co.r, co.s);
                    }

                    // Mapping/tiling + the §IV-C transposed DRAM
                    // image. stageCost() above already planned this
                    // op internally for its cost; re-deriving the
                    // plan here (cheap arithmetic, compile-time only)
                    // keeps CostModel's interface unchanged while
                    // exposing the per-layer artifact.
                    layer.plan = mapping::planConv(co, geom);
                    mapping::WeightLayout wl(co, layer.plan, geom);
                    layer.dramImage = wl.dramImage(layer.weights);
                    calibrateRequant(layer.weights, layer.requantMult,
                                     layer.requantShift);
                } else if (op.isPool()) {
                    layer.poolPlan = mapping::planPool(op.pool, geom);
                } else {
                    // Residual merge: both operands are requantized
                    // bytes, so the worst-case accumulator is 510 and
                    // the §IV-D scalars come from the same
                    // calibration the convs use.
                    calibrateFromAccMax(2 * 255, layer.requantMult,
                                        layer.requantShift);
                }

                cbranch.layerIdx.push_back(m.layers.size());
                m.layers.push_back(std::move(layer));
                ++layer_idx;
            }
            cstage.branches.push_back(std::move(cbranch));
        }
        m.stages.push_back(std::move(cstage));
        shape = {scp.out.c, scp.out.h, scp.out.w};
    }

    // Every per-layer override and every provided weight bank must
    // have named a real layer — a typo silently running the default
    // backend, or silently substituting seeded random filters, would
    // be a measurement lie.
    for (const auto &[name, kind] : opts.layerBackends)
        nc_assert(m.findLayer(name) != nullptr,
                  "layerBackends override names unknown layer '%s'",
                  name.c_str());
    for (const auto &[name, qw] : weights) {
        const CompiledLayer *l = m.findLayer(name);
        nc_assert(l && l->op.isConv(),
                  "weights provided for '%s', which is not a "
                  "conv/fc layer of '%s'", name.c_str(),
                  net.name.c_str());
    }

    // --- Pass B + C: array placement and kernel preparation. ------
    // Shared with the runtime repair path, which re-places the plan
    // over fewer arrays after retirements — compile is just the
    // first placement, over the BIST survivors.
    (void)max_branches;
    m.placeAndPrepare(false);

    // 3. Instantiate the backends the layers use.
    if (uses_ref)
        m.refBackend = makeBackend(BackendKind::Reference, m.ex.get(),
                                   nullptr);
    if (uses_func)
        m.funcBackend = makeBackend(BackendKind::Functional,
                                    m.ex.get(), nullptr);
    if (uses_isa)
        m.isaBackend = makeBackend(BackendKind::Isa, m.ex.get(),
                                   m.isaEngine.get());

    // 4. The static band-plan audit: prove every concurrently-live
    //    range disjoint and in-bounds before the model can run.
    //    Unconditional — a placement bug must die here, with names,
    //    not as a corrupted activation ten layers later.
    mapping::auditPlanOrDie(m);

    // 5. The static program verifier: abstractly interpret every
    //    prepared layer's instruction stream (bounds, dataflow,
    //    guard row, latch discipline) and prove its cycle sum equals
    //    the analytic charge bit-exact. Unconditional, like the
    //    audit: a malformed program dies here with its layer name
    //    and instruction index, not mid-inference.
    verify::VerifySummary vs = verify::verifyCompiledModelOrDie(m);
    m.nProgramsVerified += vs.programsVerified;
    m.verifyMsTotal += vs.verifyMs;
    return m;
}

} // namespace nc::core
