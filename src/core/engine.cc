#include "core/engine.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "dnn/random.hh"
#include "mapping/weight_layout.hh"

namespace nc::core
{

namespace
{

/**
 * Quantization calibration (§IV-D, done once at compile): bound the
 * worst-case accumulator by the largest filter's weight sum against
 * all-255 inputs, then decompose 255/bound into the 8-bit multiplier
 * and truncating right shift the in-array requantizer executes:
 * q = sat8((acc * mult) >> shift).
 */
void
calibrateRequant(const dnn::QWeights &w, uint8_t &mult,
                 unsigned &shift)
{
    uint64_t acc_max = 0;
    for (unsigned mi = 0; mi < w.m; ++mi) {
        uint64_t sum = 0;
        for (unsigned ci = 0; ci < w.c; ++ci)
            for (unsigned ri = 0; ri < w.r; ++ri)
                for (unsigned si = 0; si < w.s; ++si)
                    sum += w.at(mi, ci, ri, si);
        acc_max = std::max(acc_max, sum * 255);
    }
    if (acc_max <= 255) { // identity: accumulators already fit a byte
        mult = 1;
        shift = 0;
        return;
    }

    double ratio = 255.0 / static_cast<double>(acc_max);
    unsigned sh = 0;
    while (sh < 31 &&
           ratio * static_cast<double>(uint64_t(1) << sh) < 128.0)
        ++sh;
    auto m8 = static_cast<uint64_t>(
        ratio * static_cast<double>(uint64_t(1) << sh));
    mult = static_cast<uint8_t>(std::min<uint64_t>(m8, 255));
    shift = sh;
}

/** The (c, h, w) shape flowing between layers during compilation. */
struct Shape
{
    unsigned c = 0, h = 0, w = 0;
};

} // namespace

Engine::Engine(Options opts_)
    : opts(std::move(opts_)),
      pool(std::make_shared<common::ThreadPool>(opts.threads))
{
}

CompiledModel
Engine::compile(const dnn::Network &net,
                const ModelWeights &weights) const
{
    nc_assert(!net.stages.empty(), "Engine::compile: empty network "
              "'%s'", net.name.c_str());

    CompiledModel m;
    m.net = net;
    m.cfg = opts.config;
    m.kind = opts.backend;
    m.pool = pool;

    // 1. Analytic plans + per-stage costs: the mapping/tiling pass,
    //    paid exactly once. report() re-uses these forever.
    m.analytic = std::make_unique<AnalyticBackend>(opts.config);
    m.stageCosts.reserve(net.stages.size());
    for (const auto &stage : net.stages) {
        nc_assert(!stage.branches.empty() &&
                      !stage.branches.front().ops.empty(),
                  "stage '%s' of '%s' has no ops",
                  stage.name.c_str(), net.name.c_str());
        m.stageCosts.push_back(m.analytic->stageCost(stage));
    }

    // Expected input shape: the first op's input.
    {
        const dnn::Op &front = net.stages.front().branches.front()
                                   .ops.front();
        if (front.isConv()) {
            m.inC = front.conv.c;
            m.inH = front.conv.h;
            m.inW = front.conv.w;
        } else if (front.isPool()) {
            m.inC = front.pool.c;
            m.inH = front.pool.h;
            m.inW = front.pool.w;
        } else {
            m.inC = front.elt.c;
            m.inH = front.elt.h;
            m.inW = front.elt.w;
        }
    }

    if (opts.backend == BackendKind::Analytic) {
        // Pure timing model: no functional state at all — and no
        // silent discard of filter banks the caller thought mattered.
        nc_assert(weights.empty(),
                  "analytic engines never read weights; %zu banks "
                  "were passed for '%s'", weights.size(),
                  net.name.c_str());
        return m;
    }

    // 2. Functional compilation: validate the topology, calibrate,
    //    lay out weights, and pin every conv layer's filters into its
    //    own band of arrays.
    const cache::Geometry &geom = opts.config.geometry;
    m.cc = std::make_unique<cache::ComputeCache>(geom);
    m.ex = std::make_unique<Executor>(*m.cc, *pool);

    // Which backends do the layers actually use?
    bool uses_isa = opts.backend == BackendKind::Isa;
    bool uses_func = opts.backend == BackendKind::Functional;
    bool uses_ref = opts.backend == BackendKind::Reference;
    for (const auto &[name, kind] : opts.layerBackends) {
        nc_assert(kind != BackendKind::Analytic,
                  "layer '%s': per-layer analytic override is "
                  "meaningless in a functional engine", name.c_str());
        uses_isa |= kind == BackendKind::Isa;
        uses_func |= kind == BackendKind::Functional;
        uses_ref |= kind == BackendKind::Reference;
    }
    if (uses_isa)
        m.isaEngine = std::make_unique<LayerEngine>(*m.cc, *pool);

    Shape shape{m.inC, m.inH, m.inW};
    uint64_t next_base = 0; // first free array for stationary filters
    unsigned layer_idx = 0;

    for (const auto &stage : net.stages) {
        nc_assert(stage.branches.size() == 1,
                  "stage '%s': multi-branch stages are analytic-only "
                  "(functional backends execute single-branch "
                  "chains)", stage.name.c_str());
        for (const auto &op : stage.branches.front().ops) {
            CompiledLayer layer;
            layer.op = op;
            layer.backend = opts.backend;
            if (auto it = opts.layerBackends.find(op.name());
                it != opts.layerBackends.end())
                layer.backend = it->second;

            if (op.isConv()) {
                const dnn::ConvOp &co = op.conv;
                nc_assert(co.c > 0 && co.m > 0 && co.r > 0 && co.s > 0,
                          "conv '%s': degenerate shape",
                          co.name.c_str());
                if (co.isFullyConnected) {
                    nc_assert(co.c == shape.c * shape.h * shape.w,
                              "fc '%s' expects %u inputs, previous "
                              "layer produces %ux%ux%u",
                              co.name.c_str(), co.c, shape.c, shape.h,
                              shape.w);
                } else {
                    nc_assert(co.c == shape.c && co.h == shape.h &&
                                  co.w == shape.w,
                              "conv '%s' expects %ux%ux%u input, "
                              "previous layer produces %ux%ux%u",
                              co.name.c_str(), co.c, co.h, co.w,
                              shape.c, shape.h, shape.w);
                }
                // Only the bit-serial kernels map onto arrays; the
                // reference backend runs CPU loops of any shape.
                bool on_arrays =
                    layer.backend == BackendKind::Functional ||
                    layer.backend == BackendKind::Isa;
                nc_assert(!on_arrays ||
                              mapping::fitsFunctionalExecutor(co,
                                                              geom),
                          "conv '%s' (C=%u RxS=%ux%u) exceeds the "
                          "functional executor's one-array mapping",
                          co.name.c_str(), co.c, co.r, co.s);

                // Weights: explicit bank, else deterministic seed.
                if (auto it = weights.find(op.name());
                    it != weights.end()) {
                    const dnn::QWeights &qw = it->second;
                    nc_assert(qw.m == co.m && qw.c == co.c &&
                                  qw.r == co.r && qw.s == co.s,
                              "weights for '%s' are %ux%ux%ux%u, op "
                              "wants %ux%ux%ux%u", co.name.c_str(),
                              qw.m, qw.c, qw.r, qw.s, co.m, co.c,
                              co.r, co.s);
                    layer.weights = qw;
                } else {
                    Rng rng(opts.weightSeed +
                            0x9e3779b97f4a7c15ull * (layer_idx + 1));
                    layer.weights = dnn::randomQWeights(
                        rng, co.m, co.c, co.r, co.s);
                }

                // Mapping/tiling + the §IV-C transposed DRAM image.
                // stageCost() above already planned this op
                // internally for its cost; re-deriving the plan here
                // (cheap arithmetic, compile-time only) keeps
                // CostModel's interface unchanged while exposing the
                // per-layer artifact.
                layer.plan = mapping::planConv(co, geom);
                mapping::WeightLayout wl(co, layer.plan, geom);
                layer.dramImage = wl.dramImage(layer.weights);
                calibrateRequant(layer.weights, layer.requantMult,
                                 layer.requantShift);

                // Pin the filters stationary in this layer's band.
                // The +1 keeps the shared scratch array in range
                // too. Reference layers reserve nothing.
                if (on_arrays) {
                    layer.baseArray = next_base;
                    next_base += co.m;
                    nc_assert(
                        next_base + 1 <= geom.totalArrays(),
                        "conv '%s': stationary filters need %llu "
                        "arrays, cache has %llu", co.name.c_str(),
                        static_cast<unsigned long long>(next_base +
                                                        1),
                        static_cast<unsigned long long>(
                            geom.totalArrays()));
                }
                if (layer.backend == BackendKind::Functional)
                    layer.funcConv = m.ex->prepareConv(
                        layer.weights, co.stride, co.samePad,
                        layer.baseArray);
                else if (layer.backend == BackendKind::Isa)
                    layer.isaConv = m.isaEngine->prepareConv(
                        layer.weights, co.stride, co.samePad,
                        layer.baseArray);

                shape = {co.m, co.outH(), co.outW()};
            } else if (op.isPool()) {
                const dnn::PoolOp &po = op.pool;
                nc_assert(po.c == shape.c && po.h == shape.h &&
                              po.w == shape.w,
                          "pool '%s' expects %ux%ux%u input, "
                          "previous layer produces %ux%ux%u",
                          po.name.c_str(), po.c, po.h, po.w, shape.c,
                          shape.h, shape.w);
                if (po.isAvg) {
                    // The bit-serial average pool runs VALID windows;
                    // SAME is accepted only when it degenerates to
                    // VALID (no padding needed).
                    unsigned vh =
                        dnn::outDim(po.h, po.r, po.stride, false);
                    unsigned vw =
                        dnn::outDim(po.w, po.s, po.stride, false);
                    nc_assert(po.outH() == vh && po.outW() == vw,
                              "avgPool '%s': SAME padding with "
                              "partial windows is not functionally "
                              "supported", po.name.c_str());
                }
                layer.poolPlan = mapping::planPool(po, geom);
                shape = {po.c, po.outH(), po.outW()};
            } else {
                nc_assert(false,
                          "eltwise '%s' is analytic-only (no "
                          "functional mapping yet)",
                          op.elt.name.c_str());
            }
            m.layers.push_back(std::move(layer));
            ++layer_idx;
        }
    }

    // Every per-layer override and every provided weight bank must
    // have named a real layer — a typo silently running the default
    // backend, or silently substituting seeded random filters, would
    // be a measurement lie.
    for (const auto &[name, kind] : opts.layerBackends)
        nc_assert(m.findLayer(name) != nullptr,
                  "layerBackends override names unknown layer '%s'",
                  name.c_str());
    for (const auto &[name, qw] : weights) {
        const CompiledLayer *l = m.findLayer(name);
        nc_assert(l && l->op.isConv(),
                  "weights provided for '%s', which is not a "
                  "conv/fc layer of '%s'", name.c_str(),
                  net.name.c_str());
    }

    // The layer-less helpers (pools, requantization) scribble on the
    // first array past the stationary filter bands.
    m.ex->setScratchBase(next_base);
    if (m.isaEngine)
        m.isaEngine->setScratchBase(next_base);

    // 3. Instantiate the backends the layers use.
    if (uses_ref)
        m.refBackend = makeBackend(BackendKind::Reference, m.ex.get(),
                                   nullptr);
    if (uses_func)
        m.funcBackend = makeBackend(BackendKind::Functional,
                                    m.ex.get(), nullptr);
    if (uses_isa)
        m.isaBackend = makeBackend(BackendKind::Isa, m.ex.get(),
                                   m.isaEngine.get());
    return m;
}

} // namespace nc::core
