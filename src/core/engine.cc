#include "core/engine.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "dnn/random.hh"
#include "mapping/plan_audit.hh"
#include "mapping/weight_layout.hh"

namespace nc::core
{

namespace
{

/**
 * Decompose 255/acc_max into the 8-bit multiplier and truncating
 * right shift the in-array requantizer executes: q = sat8((acc *
 * mult) >> shift).
 */
void
calibrateFromAccMax(uint64_t acc_max, uint8_t &mult, unsigned &shift)
{
    if (acc_max <= 255) { // identity: accumulators already fit a byte
        mult = 1;
        shift = 0;
        return;
    }

    double ratio = 255.0 / static_cast<double>(acc_max);
    unsigned sh = 0;
    while (sh < 31 &&
           ratio * static_cast<double>(uint64_t(1) << sh) < 128.0)
        ++sh;
    auto m8 = static_cast<uint64_t>(
        ratio * static_cast<double>(uint64_t(1) << sh));
    mult = static_cast<uint8_t>(std::min<uint64_t>(m8, 255));
    shift = sh;
}

/**
 * Quantization calibration (§IV-D, done once at compile): bound the
 * worst-case accumulator by the largest filter's weight sum against
 * all-255 inputs.
 */
void
calibrateRequant(const dnn::QWeights &w, uint8_t &mult,
                 unsigned &shift)
{
    uint64_t acc_max = 0;
    for (unsigned mi = 0; mi < w.m; ++mi) {
        uint64_t sum = 0;
        for (unsigned ci = 0; ci < w.c; ++ci)
            for (unsigned ri = 0; ri < w.r; ++ri)
                for (unsigned si = 0; si < w.s; ++si)
                    sum += w.at(mi, ci, ri, si);
        acc_max = std::max(acc_max, sum * 255);
    }
    calibrateFromAccMax(acc_max, mult, shift);
}

/** The (c, h, w) shape flowing between layers during compilation. */
struct Shape
{
    unsigned c = 0, h = 0, w = 0;
};

} // namespace

Engine::Engine(Options opts_)
    : opts(std::move(opts_)),
      pool(std::make_shared<common::ThreadPool>(opts.threads))
{
}

CompiledModel
Engine::compile(const dnn::Network &net,
                const ModelWeights &weights) const
{
    nc_assert(!net.stages.empty(), "Engine::compile: empty network "
              "'%s'", net.name.c_str());

    CompiledModel m;
    m.net = net;
    m.cfg = opts.config;
    m.kind = opts.backend;
    m.pool = pool;

    // 1. Analytic plans + per-stage costs: the mapping/tiling pass,
    //    paid exactly once. report() re-uses these forever.
    m.analytic = std::make_unique<AnalyticBackend>(opts.config);
    m.stageCosts.reserve(net.stages.size());
    for (const auto &stage : net.stages) {
        nc_assert(!stage.branches.empty() &&
                      !stage.branches.front().ops.empty(),
                  "stage '%s' of '%s' has no ops",
                  stage.name.c_str(), net.name.c_str());
        m.stageCosts.push_back(m.analytic->stageCost(stage));
    }

    // Expected input shape: the first op's input.
    {
        const dnn::Op &front = net.stages.front().branches.front()
                                   .ops.front();
        if (front.isConv()) {
            m.inC = front.conv.c;
            m.inH = front.conv.h;
            m.inW = front.conv.w;
        } else if (front.isPool()) {
            m.inC = front.pool.c;
            m.inH = front.pool.h;
            m.inW = front.pool.w;
        } else {
            m.inC = front.elt.c;
            m.inH = front.elt.h;
            m.inW = front.elt.w;
        }
    }

    if (opts.backend == BackendKind::Analytic) {
        // Pure timing model: no functional state at all — and no
        // silent discard of filter banks the caller thought mattered.
        nc_assert(weights.empty(),
                  "analytic engines never read weights; %zu banks "
                  "were passed for '%s'", weights.size(),
                  net.name.c_str());
        // No layer placement happens, so the report's §IV-E pass
        // structure comes from the all-functional net-level banding
        // (the same one the legacy facade derives).
        m.bandPlan = mapping::planBatchBands(
            net, opts.config.geometry);
        mapping::auditPlanOrDie(m);
        return m;
    }

    // 2. Functional compilation: validate the topology, calibrate,
    //    lay out weights, and pin every conv layer's filters into its
    //    own band of arrays.
    const cache::Geometry &geom = opts.config.geometry;
    m.cc = std::make_unique<cache::ComputeCache>(geom);
    m.ex = std::make_unique<Executor>(*m.cc, *pool);

    // Which backends do the layers actually use?
    bool uses_isa = opts.backend == BackendKind::Isa;
    bool uses_func = opts.backend == BackendKind::Functional;
    bool uses_ref = opts.backend == BackendKind::Reference;
    for (const auto &[name, kind] : opts.layerBackends) {
        nc_assert(kind != BackendKind::Analytic,
                  "layer '%s': per-layer analytic override is "
                  "meaningless in a functional engine", name.c_str());
        uses_isa |= kind == BackendKind::Isa;
        uses_func |= kind == BackendKind::Functional;
        uses_ref |= kind == BackendKind::Reference;
    }
    if (uses_isa)
        m.isaEngine = std::make_unique<LayerEngine>(*m.cc, *pool);

    // --- Pass A: validate the topology and build the per-layer and
    // per-stage program structure (no array placement yet). ---------
    Shape shape{m.inC, m.inH, m.inW};
    unsigned layer_idx = 0;
    size_t max_branches = 1;

    for (const auto &stage : net.stages) {
        mapping::StageConcatPlan scp = mapping::planStageConcat(stage);
        // The stage's common branch input must be what the previous
        // stage produced (an FC head flattens CHW into channels).
        bool fc_front =
            stage.branches.front().ops.front().isConv() &&
            stage.branches.front().ops.front().conv.isFullyConnected;
        if (fc_front) {
            nc_assert(scp.input.c == shape.c * shape.h * shape.w,
                      "fc stage '%s' expects %u inputs, previous "
                      "stage produces %ux%ux%u", stage.name.c_str(),
                      scp.input.c, shape.c, shape.h, shape.w);
        } else {
            nc_assert(scp.input.c == shape.c &&
                          scp.input.h == shape.h &&
                          scp.input.w == shape.w,
                      "stage '%s' expects %ux%ux%u input, previous "
                      "stage produces %ux%ux%u", stage.name.c_str(),
                      scp.input.c, scp.input.h, scp.input.w, shape.c,
                      shape.h, shape.w);
        }
        max_branches = std::max(max_branches, stage.branches.size());

        CompiledModel::CompiledStage cstage;
        cstage.shortcutBranch = scp.shortcutBranch;

        for (const auto &branch : stage.branches) {
            CompiledModel::CompiledBranch cbranch;
            cbranch.splitTail = branch.splitTail;
            cbranch.shortcut = branch.shortcut;
            cbranch.endsWithEltwise =
                branch.ops.back().kind == dnn::OpKind::EltwiseAdd;

            for (const auto &op : branch.ops) {
                CompiledLayer layer;
                layer.op = op;
                layer.backend = opts.backend;
                if (auto it = opts.layerBackends.find(op.name());
                    it != opts.layerBackends.end())
                    layer.backend = it->second;
                bool on_arrays =
                    layer.backend == BackendKind::Functional ||
                    layer.backend == BackendKind::Isa;

                if (op.isConv()) {
                    const dnn::ConvOp &co = op.conv;
                    nc_assert(co.c > 0 && co.m > 0 && co.r > 0 &&
                                  co.s > 0,
                              "conv '%s': degenerate shape",
                              co.name.c_str());
                    // Only the bit-serial kernels map onto arrays;
                    // the reference backend runs CPU loops of any
                    // shape.
                    layer.funcPlan =
                        mapping::planFunctionalConv(co, geom);
                    nc_assert(!on_arrays || layer.funcPlan.fits,
                              "conv '%s' (C=%u RxS=%ux%u) exceeds "
                              "every functional mapping",
                              co.name.c_str(), co.c, co.r, co.s);
                    nc_assert(layer.backend != BackendKind::Isa ||
                                  layer.funcPlan.legacy,
                              "conv '%s' (C=%u RxS=%ux%u) needs the "
                              "pack/split/chunk mapping, which the "
                              "broadcast ISA path does not support; "
                              "route it to the functional backend",
                              co.name.c_str(), co.c, co.r, co.s);

                    // Weights: explicit bank, else deterministic
                    // seed.
                    if (auto it = weights.find(op.name());
                        it != weights.end()) {
                        const dnn::QWeights &qw = it->second;
                        nc_assert(qw.m == co.m && qw.c == co.c &&
                                      qw.r == co.r && qw.s == co.s,
                                  "weights for '%s' are "
                                  "%ux%ux%ux%u, op wants %ux%ux%ux%u",
                                  co.name.c_str(), qw.m, qw.c, qw.r,
                                  qw.s, co.m, co.c, co.r, co.s);
                        layer.weights = qw;
                    } else {
                        Rng rng(opts.weightSeed +
                                0x9e3779b97f4a7c15ull *
                                    (layer_idx + 1));
                        layer.weights = dnn::randomQWeights(
                            rng, co.m, co.c, co.r, co.s);
                    }

                    // Mapping/tiling + the §IV-C transposed DRAM
                    // image. stageCost() above already planned this
                    // op internally for its cost; re-deriving the
                    // plan here (cheap arithmetic, compile-time only)
                    // keeps CostModel's interface unchanged while
                    // exposing the per-layer artifact.
                    layer.plan = mapping::planConv(co, geom);
                    mapping::WeightLayout wl(co, layer.plan, geom);
                    layer.dramImage = wl.dramImage(layer.weights);
                    calibrateRequant(layer.weights, layer.requantMult,
                                     layer.requantShift);
                } else if (op.isPool()) {
                    layer.poolPlan = mapping::planPool(op.pool, geom);
                } else {
                    // Residual merge: both operands are requantized
                    // bytes, so the worst-case accumulator is 510 and
                    // the §IV-D scalars come from the same
                    // calibration the convs use.
                    calibrateFromAccMax(2 * 255, layer.requantMult,
                                        layer.requantShift);
                }

                cbranch.layerIdx.push_back(m.layers.size());
                m.layers.push_back(std::move(layer));
                ++layer_idx;
            }
            cstage.branches.push_back(std::move(cbranch));
        }
        m.stages.push_back(std::move(cstage));
        shape = {scp.out.c, scp.out.h, scp.out.w};
    }

    // Every per-layer override and every provided weight bank must
    // have named a real layer — a typo silently running the default
    // backend, or silently substituting seeded random filters, would
    // be a measurement lie.
    for (const auto &[name, kind] : opts.layerBackends)
        nc_assert(m.findLayer(name) != nullptr,
                  "layerBackends override names unknown layer '%s'",
                  name.c_str());
    for (const auto &[name, qw] : weights) {
        const CompiledLayer *l = m.findLayer(name);
        nc_assert(l && l->op.isConv(),
                  "weights provided for '%s', which is not a "
                  "conv/fc layer of '%s'", name.c_str(),
                  net.name.c_str());
    }

    // --- Pass B: array placement. ---------------------------------
    // One scratch array per concurrently-executing branch (pools,
    // eltwise merges, and requantization scribble on it); stages
    // execute serially, so branch slot i is reused across stages.
    const uint64_t total_arrays = geom.totalArrays();
    const uint64_t scratch_slots = max_branches;

    uint64_t whole_need = 0;
    for (const CompiledLayer &layer : m.layers) {
        bool on_arrays = layer.backend == BackendKind::Functional ||
                         layer.backend == BackendKind::Isa;
        if (layer.op.isConv() && on_arrays)
            whole_need += layer.funcPlan.totalArrays(layer.op.conv.m);
    }
    // The §IV-E batch banding: one image's footprint (stationary
    // filter bands + per-branch scratch) and how many images the
    // spare capacity runs concurrently — runBatch executes exactly
    // this plan, and the analytic batch report prices the same pass
    // structure.
    m.bandPlan = mapping::planBatchBands(
        whole_need, static_cast<unsigned>(scratch_slots), geom, true);
    bool all_resident = m.bandPlan.resident;

    struct ConvPlacement
    {
        uint64_t base = 0;
        uint64_t band = 0;
        bool resident = true;
    };
    std::vector<ConvPlacement> place(m.layers.size());

    uint64_t scratch_base = 0;
    if (all_resident) {
        // Whole-network residency: every conv layer owns its full
        // band in layer order, filters pinned once at compile
        // (§IV-E: batches amortize the load forever); scratch slots
        // sit past the last band.
        uint64_t next = 0;
        for (size_t li = 0; li < m.layers.size(); ++li) {
            CompiledLayer &layer = m.layers[li];
            bool on_arrays =
                layer.backend == BackendKind::Functional ||
                layer.backend == BackendKind::Isa;
            if (!layer.op.isConv() || !on_arrays)
                continue;
            uint64_t need =
                layer.funcPlan.totalArrays(layer.op.conv.m);
            place[li] = {next, need, true};
            layer.baseArray = next;
            layer.bandArrays = need;
            layer.bandResident = true;
            next += need;
        }
        scratch_base = next;
    } else {
        // Streaming regime: the network exceeds the cache, so conv
        // layers re-pin filters as they run. Scratch slots sit at the
        // bottom; every stage re-uses the region above them, with the
        // stage's branches in disjoint bands so they can execute
        // concurrently. A band smaller than a layer's full need makes
        // the kernel cycle filter groups through it.
        uint64_t avail = total_arrays - scratch_slots;
        for (size_t si = 0; si < m.stages.size(); ++si) {
            const CompiledModel::CompiledStage &cstage = m.stages[si];
            std::vector<uint64_t> need_b(cstage.branches.size(), 0);
            std::vector<uint64_t> min_b(cstage.branches.size(), 0);
            for (size_t bi = 0; bi < cstage.branches.size(); ++bi) {
                for (size_t li : cstage.branches[bi].layerIdx) {
                    const CompiledLayer &layer = m.layers[li];
                    bool on_arrays =
                        layer.backend == BackendKind::Functional ||
                        layer.backend == BackendKind::Isa;
                    if (!layer.op.isConv() || !on_arrays)
                        continue;
                    nc_assert(layer.backend != BackendKind::Isa,
                              "conv '%s': network '%s' exceeds the "
                              "cache (%llu arrays needed, %llu "
                              "total); the streaming regime is "
                              "functional-backend only",
                              layer.op.name().c_str(),
                              net.name.c_str(),
                              static_cast<unsigned long long>(
                                  whole_need + scratch_slots),
                              static_cast<unsigned long long>(
                                  total_arrays));
                    need_b[bi] = std::max(
                        need_b[bi], layer.funcPlan.totalArrays(
                                        layer.op.conv.m));
                    min_b[bi] = std::max(
                        min_b[bi],
                        uint64_t(layer.funcPlan.chunks));
                }
            }
            uint64_t need_sum = 0, min_sum = 0;
            for (size_t bi = 0; bi < need_b.size(); ++bi) {
                need_sum += need_b[bi];
                min_sum += min_b[bi];
            }
            nc_assert(min_sum <= avail,
                      "stage '%s' needs %llu arrays concurrently, "
                      "cache has %llu",
                      net.stages[si].name.c_str(),
                      static_cast<unsigned long long>(min_sum +
                                                      scratch_slots),
                      static_cast<unsigned long long>(total_arrays));
            // Every branch gets its need when the stage fits;
            // otherwise the guaranteed minimum plus an equal share of
            // the remainder (deterministic, capped at the need).
            std::vector<uint64_t> band_b = need_b;
            if (need_sum > avail) {
                uint64_t left = avail - min_sum;
                for (size_t bi = 0; bi < band_b.size(); ++bi) {
                    uint64_t extra = std::min(
                        need_b[bi] - min_b[bi],
                        left / (band_b.size() - bi));
                    band_b[bi] = min_b[bi] + extra;
                    left -= extra;
                }
            }
            uint64_t next = scratch_slots;
            for (size_t bi = 0; bi < cstage.branches.size(); ++bi) {
                for (size_t li : cstage.branches[bi].layerIdx) {
                    CompiledLayer &layer = m.layers[li];
                    bool on_arrays =
                        layer.backend == BackendKind::Functional ||
                        layer.backend == BackendKind::Isa;
                    if (!layer.op.isConv() || !on_arrays)
                        continue;
                    place[li] = {next, band_b[bi], false};
                    layer.baseArray = next;
                    layer.bandArrays = band_b[bi];
                    layer.bandResident = false;
                }
                next += band_b[bi];
            }
        }
    }

    // Scratch arrays: one per branch slot, materialized now so the
    // parallel branch fan-out never mutates the lazy array map.
    // Pure-reference models are CPU loops only and touch no arrays.
    if (uses_func || uses_isa) {
        for (uint64_t i = 0; i < scratch_slots; ++i)
            m.cc->array(m.cc->coordOf(scratch_base + i));
    }
    for (auto &cstage : m.stages) {
        for (size_t bi = 0; bi < cstage.branches.size(); ++bi) {
            for (size_t li : cstage.branches[bi].layerIdx)
                m.layers[li].scratchArray = scratch_base + bi;
        }
    }
    m.scratchBase = scratch_base;

    // Legacy direct Executor/LayerEngine helpers share slot 0.
    m.ex->setScratchBase(scratch_base);
    if (m.isaEngine)
        m.isaEngine->setScratchBase(scratch_base);

    // --- Pass C: prepare the per-layer kernels. --------------------
    for (size_t li = 0; li < m.layers.size(); ++li) {
        CompiledLayer &layer = m.layers[li];
        if (layer.op.isConv()) {
            const dnn::ConvOp &co = layer.op.conv;
            if (layer.backend == BackendKind::Functional) {
                layer.funcConv = m.ex->prepareConv(
                    layer.weights, co.stride, co.samePad,
                    place[li].base, place[li].band,
                    place[li].resident);
                // The band arithmetic above priced chunks from
                // layer.funcPlan; the executor re-derives its plan
                // from the same inputs — catch any drift before it
                // can overlap adjacent bands.
                nc_assert(layer.funcConv->chunksPerBatch() ==
                                  layer.funcPlan.chunks &&
                              layer.funcConv->plan().lanes ==
                                  layer.funcPlan.lanes,
                          "conv '%s': executor mapping (%u chunks, "
                          "%u lanes) disagrees with the compile plan "
                          "(%u chunks, %u lanes)",
                          co.name.c_str(),
                          layer.funcConv->chunksPerBatch(),
                          layer.funcConv->plan().lanes,
                          layer.funcPlan.chunks, layer.funcPlan.lanes);
            } else if (layer.backend == BackendKind::Isa)
                layer.isaConv = m.isaEngine->prepareConv(
                    layer.weights, co.stride, co.samePad,
                    place[li].base);
        } else if (layer.op.kind == dnn::OpKind::EltwiseAdd) {
            if (layer.backend == BackendKind::Functional)
                layer.funcElt = m.ex->prepareEltwise(
                    layer.requantMult, layer.requantShift,
                    layer.scratchArray);
            else if (layer.backend == BackendKind::Isa)
                layer.isaElt = m.isaEngine->prepareEltwise(
                    layer.requantMult, layer.requantShift,
                    layer.scratchArray);
        }
    }

    // 3. Instantiate the backends the layers use.
    if (uses_ref)
        m.refBackend = makeBackend(BackendKind::Reference, m.ex.get(),
                                   nullptr);
    if (uses_func)
        m.funcBackend = makeBackend(BackendKind::Functional,
                                    m.ex.get(), nullptr);
    if (uses_isa)
        m.isaBackend = makeBackend(BackendKind::Isa, m.ex.get(),
                                   m.isaEngine.get());

    // 4. The static band-plan audit: prove every concurrently-live
    //    range disjoint and in-bounds before the model can run.
    //    Unconditional — a placement bug must die here, with names,
    //    not as a corrupted activation ten layers later.
    mapping::auditPlanOrDie(m);
    return m;
}

} // namespace nc::core
