/**
 * @file
 * The Neural Cache per-layer cost model (paper §IV, §V, §VI-A).
 *
 * For every stage the model derives seven phases, matching the paper's
 * Figure 14 breakdown:
 *
 *   filterLoad   - DRAM stream of the stage's weights + broadcast fill
 *   inputStream  - moving input windows from the reserved way into
 *                  compute arrays, once per serial pass
 *   outputXfer   - draining quantized outputs back to the reserved way
 *   mac          - bit-serial multiply-accumulates (in lock-step)
 *   reduce       - cross-lane channel reduction trees
 *   quant        - per-layer min/max search + fixed-point requantization
 *   pool         - max/avg pooling compute
 *
 * Arithmetic cycles come in two modes:
 *  - PaperCalibrated (default): the per-MAC and per-reduction cycle
 *    constants the paper reports for its Conv2D_2b anchor (236
 *    cycles/MAC, 660-cycle reduction) — reproduces the published
 *    absolute numbers.
 *  - Analytic: our exact micro-op counts from bitserial/cost.hh —
 *    first-principles numbers, same shape, roughly 2x faster
 *    arithmetic (see EXPERIMENTS.md for the comparison).
 */

#ifndef NC_CORE_COST_MODEL_HH
#define NC_CORE_COST_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bitserial/cost.hh"
#include "cache/cbox.hh"
#include "cache/dram.hh"
#include "cache/geometry.hh"
#include "cache/interconnect.hh"
#include "common/units.hh"
#include "dnn/layers.hh"
#include "mapping/plan.hh"
#include "sram/timing.hh"

namespace nc::core
{

/** Arithmetic-cycle source. */
enum class ArithMode { PaperCalibrated, Analytic };

const char *arithModeName(ArithMode m);

/** All tunables of the cost model. */
struct CostConfig
{
    ArithMode mode = ArithMode::PaperCalibrated;
    unsigned bits = 8;            ///< element precision
    unsigned accumulatorBits = 24; ///< partial-sum width (3 bytes)

    /** Paper-calibrated constants (§VI-A anchor). */
    double paperMacCycles = 236.0;   ///< cycles per 8-bit MAC
    double paperReduceCycles = 660.0; ///< cycles per channel reduction

    /** Analytic-mode knobs. */
    bitserial::AluConfig alu;
    /** Reduction slowdown once operands span >2 arrays. */
    double interArrayReduceFactor = 2.0;

    /** Quantization cycles per serial pass (min/max trees + requant);
     * 0 selects the analytic estimate. */
    double quantCyclesPerPass = 0.0;

    /**
     * Input-stream calibration: the structural model charges every
     * compute way an independent window fill, but consecutive ways
     * work on consecutive output pixels whose windows overlap heavily
     * and ride the same bus broadcast; the factor discounts that
     * overlap (calibrated to Figure 14's 15% input share).
     */
    double inputStreamFactor = 0.40;
    /**
     * Output-drain calibration: quantized outputs leave through the
     * 32-bit array ports and the transpose gateway rather than the
     * full 256-bit bus, i.e. 8x slower than a raw bus stream
     * (Figure 14's 4% output share).
     */
    double outputDrainFactor = 8.0;

    /**
     * Double-buffer input windows in the spare word lines
     * (plan.freeRows) so pass N+1's window streams while pass N
     * computes; only the un-hidden remainder shows up as input time.
     * Off by default — the paper's breakdown (Figure 14) charges
     * streaming serially; ablation_overlap quantifies the gain.
     */
    bool overlapInputStream = false;

    sram::TimingParams timing;
};

/** Per-phase picosecond costs of one stage (Figure 14 categories). */
struct PhaseBreakdown
{
    double filterLoadPs = 0;
    double inputStreamPs = 0;
    double outputXferPs = 0;
    double macPs = 0;
    double reducePs = 0;
    double quantPs = 0;
    double poolPs = 0;

    double
    totalPs() const
    {
        return filterLoadPs + inputStreamPs + outputXferPs + macPs +
               reducePs + quantPs + poolPs;
    }

    PhaseBreakdown &operator+=(const PhaseBreakdown &o);
};

/** Cost report of one stage. */
struct StageCost
{
    std::string name;
    PhaseBreakdown phases;
    uint64_t serialPasses = 0;   ///< max over the stage's ops
    double utilization = 0.0;    ///< conv-weighted mean utilization
    uint64_t activeArrayCycles = 0; ///< sum over arrays (for energy)
    uint64_t streamedRows = 0;   ///< array row writes (for energy)
    uint64_t dramBytes = 0;      ///< DRAM traffic (for energy)
    uint64_t wireBytes = 0;      ///< on-chip bus/ring bytes (energy)

    double totalPs() const { return phases.totalPs(); }
};

/** The cost model over one cache configuration. */
class CostModel
{
  public:
    CostModel(cache::Geometry geom, CostConfig cfg = {},
              cache::DramModel dram = {}, cache::IntraSliceBus bus = {},
              cache::Ring ring = {}, cache::CBox cbox = {});

    const cache::Geometry &geometry() const { return geom; }
    const CostConfig &config() const { return cfg; }
    const cache::DramModel &dram() const { return dramModel; }

    /** @name Arithmetic cycle primitives (per convolution) */
    /// @{
    double macCyclesPerConv(const mapping::ConvPlan &plan) const;
    double reduceCyclesPerConv(const mapping::ConvPlan &plan) const;
    double quantCyclesPerPass() const;
    /// @}

    /** @name Canonical program charges (program_verify cross-check)
     * Exact cycle totals of the per-layer instruction streams both
     * functional kernels issue, from the same impl* formulas the ALU
     * returns. The static program verifier proves its per-opcode sum
     * equals these bit-exact, so the analytic constants and the
     * verified programs can never drift apart.
     */
    /// @{
    /** One conv output window: zero the partial, @p eff_rs MACs,
     * one cross-lane reduction over @p lanes lanes (Figure 10). */
    uint64_t convWindowProgramCycles(unsigned lanes,
                                     unsigned eff_rs) const;
    /** The four-instruction §IV-D residual merge. */
    uint64_t eltwiseProgramCycles() const;
    /** One max-pool window: seed + (window-1) MaxInto folds. */
    uint64_t maxPoolWindowProgramCycles(unsigned window) const;
    /// @}

    /** Cost of one convolution op. */
    StageCost convCost(const dnn::ConvOp &op) const;
    /** Cost of one pooling op. */
    StageCost poolCost(const dnn::PoolOp &op) const;
    /** Cost of a residual element-wise add. */
    StageCost eltwiseCost(const dnn::EltwiseOp &op) const;
    /** Cost of a whole stage (branches serial). */
    StageCost stageCost(const dnn::Stage &stage) const;

    /**
     * Image-parallel batch banding of @p net on this geometry
     * (§IV-E / Figure 16): concurrent image slots and time-sliced
     * pass counts, priced from the same functional mappings the
     * executor runs.
     */
    mapping::BatchBandPlan planImageBands(const dnn::Network &net)
        const;

    /** Picoseconds of @p cycles on the compute clock. */
    double
    computePs(double cycles) const
    {
        return cfg.timing.computeClock.cyclesToPs(cycles);
    }

  private:
    cache::Geometry geom;
    CostConfig cfg;
    cache::DramModel dramModel;
    cache::IntraSliceBus sliceBus;
    cache::Ring ringNet;
    cache::CBox cboxModel;
};

} // namespace nc::core

#endif // NC_CORE_COST_MODEL_HH
