/**
 * @file
 * Static bit-serial program verifier: an abstract interpreter over
 * core::Instruction streams.
 *
 * Engine::compile() runs it unconditionally over every program the
 * compile pass produced — the broadcast-ISA layers' cached streams
 * verbatim, and for the direct-ALU kernels the canonical program
 * synthesized from the same shared mapping row layout the kernel
 * drives — so a malformed stream dies at compile time with the layer
 * name and instruction index, never as a corrupted activation ten
 * layers later. Five check classes:
 *
 *  1. Row/slice bounds: every operand slice inside the array
 *     geometry, and the layer's array band inside a range the plan
 *     auditor (mapping::planRanges) proved placed.
 *  2. Initialization dataflow: per-row def-before-use; the
 *     filter-pin / vector-store prologue is modeled as initial defs.
 *  3. Guard-row protection: the reserved constant-zero word line
 *     (bitserial::RowAllocator::zeroRow, the fault canary) is never
 *     a destination.
 *  4. Carry/tag latch discipline: a predicated write-back or a
 *     carry-consuming Add must be preceded by an op that defines the
 *     latch it reads, with no clobbering op in between.
 *  5. Static cycle accounting: the summed per-opcode cycle model
 *     must equal the CostModel's analytic charge bit-exact — the
 *     compile-time proof that the functional and analytic models
 *     cannot drift.
 *
 * Violations are fatal (nc_fatal) naming the layer, the instruction
 * index, and the offending operand slice.
 */

#ifndef NC_CORE_PROGRAM_VERIFY_HH
#define NC_CORE_PROGRAM_VERIFY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bitserial/cost.hh"
#include "core/isa.hh"
#include "mapping/plan.hh"
#include "mapping/plan_audit.hh"

namespace nc::dnn
{
struct Network;
}

namespace nc::core
{
class CompiledModel;
struct NeuralCacheConfig;
}

namespace nc::core::verify
{

/** What the interpreter measured while proving one program legal. */
struct ProgramStats
{
    size_t instructions = 0;
    size_t defs = 0;          ///< rows the program itself defined
    unsigned maxLiveRows = 0; ///< peak defined-row count
    uint64_t staticCycles = 0; ///< summed per-opcode cycle model
};

/**
 * Everything the interpreter knows before instruction 0: the array
 * shape, the write-protected guard row, and the slices the layer's
 * prologue (filter pinning, window/operand vector stores) defines
 * before the broadcast program runs.
 */
struct ProgramContext
{
    std::string layer;        ///< diagnostic name for violations
    unsigned arrayRows = 0;   ///< word lines per array
    unsigned guardRow = bitserial::kNoRow; ///< reserved zero row
    std::vector<bitserial::VecSlice> initialDefs;
    bitserial::AluConfig alu;
};

/**
 * Cycles instruction @p inst charges, mirroring exactly what the ALU
 * (bitserial/alu.cc, extensions.cc) returns for the macro-op.
 * @pre the instruction is shape-legal (verifyProgram proves that).
 */
uint64_t instructionCycles(const Instruction &inst,
                           const bitserial::AluConfig &alu);

/**
 * Abstractly interpret @p program under @p ctx, proving check
 * classes 1-4 and accumulating the class-5 cycle sum. Fatal on the
 * first violation, naming ctx.layer, the instruction index, and the
 * operand slice. Returns the measured stats.
 */
ProgramStats verifyProgram(const ProgramContext &ctx,
                           const std::vector<Instruction> &program);

/** @name Canonical per-layer programs
 * One output window / element of each layer kind as an instruction
 * stream, built from the shared mapping row layouts both backends
 * carve. The broadcast-ISA engine caches exactly these streams; the
 * direct-ALU kernels issue the same macro-op sequence by hand, which
 * is what lets one verified program stand for both.
 */
/// @{
/** zero partial, rs MACs, one cross-lane reduction (Figure 10). */
std::vector<Instruction>
convWindowProgram(const mapping::ConvRowLayout &rows,
                  unsigned acc_bits = 24);
/** Widen-add, multiply, truncating shift, clamp (§IV-D merge). */
std::vector<Instruction>
eltwiseMergeProgram(const mapping::EltwiseRowLayout &rows,
                    unsigned shift, unsigned bits = 8);
/** Seed the running max, then window-1 MaxInto folds (§IV-D). */
std::vector<Instruction>
maxPoolWindowProgram(const mapping::PoolRowLayout &rows,
                     unsigned window);
/// @}

/**
 * Check class 5's comparator: fatal (naming the layer and program
 * kind) unless the interpreter's summed cycle model equals the
 * CostModel's analytic charge bit-exact.
 */
void crossCheckProgramCostOrDie(const std::string &layer,
                                const char *kind,
                                uint64_t static_cycles,
                                uint64_t analytic_cycles);

/**
 * Check class 1's band half: the program's array band
 * [base, base + arrays) must be contained in one of the ranges the
 * plan auditor proved placed (mapping::planRanges). Fatal with the
 * layer name and band otherwise.
 */
void requireAuditedBand(const std::string &layer, uint64_t base,
                        uint64_t arrays,
                        const std::vector<mapping::AuditRange> &ranges);

/** One verified layer program, for tooling (examples/program_lint). */
struct LayerProgramReport
{
    std::string layer;
    std::string kind; ///< "conv", "eltwise", "maxpool"
    ProgramStats stats;
};

/** What a whole-model verification pass costs and covered. */
struct VerifySummary
{
    uint64_t programsVerified = 0;
    double verifyMs = 0.0;
};

/**
 * Verify every prepared program of @p model: broadcast-ISA streams
 * verbatim, direct-ALU layers via the canonical program synthesized
 * from their shared row layout, plus the band containment check
 * against the audited placement and the bit-exact CostModel cycle
 * cross-check (8-bit / 24-bit-accumulator configs). Reference-backend
 * layers and average pools (no in-array program) are skipped. Fatal
 * on any violation; returns coverage counters, and per-layer stats
 * through @p reports when non-null.
 */
VerifySummary
verifyCompiledModelOrDie(const CompiledModel &model,
                         std::vector<LayerProgramReport> *reports =
                             nullptr);

/**
 * The analytic-compile twin of verifyCompiledModelOrDie(): no
 * placement exists, so every op the functional mapper could place
 * (planFunctionalConv fits) gets its canonical program synthesized
 * on @p cfg's geometry and verified, cycle cross-check included.
 * Ops with no functional mapping are skipped — the analytic model
 * prices them without a program.
 */
VerifySummary
verifyNetworkProgramsOrDie(const dnn::Network &net,
                           const NeuralCacheConfig &cfg,
                           std::vector<LayerProgramReport> *reports =
                               nullptr);

} // namespace nc::core::verify

#endif // NC_CORE_PROGRAM_VERIFY_HH
