#include "core/executor.hh"

#include <algorithm>
#include <utility>

#include "bitserial/alu.hh"
#include "bitserial/extensions.hh"
#include "bitserial/layout.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "dnn/layers.hh"

namespace nc::core
{

namespace bs = bitserial;

using dnn::padBefore;

Executor::PreparedConv
Executor::prepareConv(const dnn::QWeights &w, unsigned stride,
                      bool same_pad, uint64_t base_array)
{
    PreparedConv p;
    p.ex = this;
    p.m = w.m;
    p.c = w.c;
    p.r = w.r;
    p.s = w.s;
    p.stride = stride;
    p.samePad = same_pad;
    p.base = base_array;
    // The Figure-10 slice map, shared with the ISA path: every array
    // gets the identical layout, so it is derived once here.
    p.rows = mapping::makeConvRowLayout(cc.geometry(), w.c, w.r, w.s);

    // Materialize every filter batch's array up front: the parallel
    // regions (here and in run()) must not mutate the lazy array map.
    for (unsigned mi = 0; mi < w.m; ++mi)
        cc.array(cc.coordOf(base_array + mi));

    // Filters are stationary for the lifetime of the prepared layer
    // (the §IV-C transposed preprocessing, paid exactly once).
    pool.parallelFor(w.m, [&](size_t mi_) {
        unsigned mi = static_cast<unsigned>(mi_);
        sram::Array &arr = cc.array(cc.coordOf(base_array + mi));
        std::vector<uint64_t> vals(p.rows.lanes, 0);
        for (unsigned k = 0; k < p.rows.rs; ++k) {
            std::fill(vals.begin(), vals.end(), 0);
            for (unsigned ci = 0; ci < w.c; ++ci)
                vals[ci] = w.at(mi, ci, k / w.s, k % w.s);
            bs::storeVector(arr, p.rows.filt[k], vals);
        }
    });
    return p;
}

std::vector<uint32_t>
Executor::PreparedConv::run(const dnn::QTensor &in, unsigned &out_h,
                            unsigned &out_w)
{
    const unsigned acc_bits = 24;
    cache::ComputeCache &cc = ex->cc;
    nc_assert(in.channels() == c,
              "prepared conv expects %u input channels, got %u", c,
              in.channels());

    out_h = dnn::outDim(in.height(), r, stride, samePad);
    out_w = dnn::outDim(in.width(), s, stride, samePad);
    unsigned ph = padBefore(in.height(), r, stride, samePad);
    unsigned pw = padBefore(in.width(), s, stride, samePad);
    unsigned oh = out_h, ow = out_w;

    std::vector<uint32_t> out(static_cast<size_t>(m) * oh * ow, 0);

    // One array per filter batch, spread across the cache the way the
    // mapper replicates M's over ways (Figure 9). The batches are
    // fully independent — each task owns its array and its slice of
    // `out` — so they fan out across the pool.
    ex->pool.parallelFor(m, [&](size_t mi_) {
        unsigned mi = static_cast<unsigned>(mi_);
        sram::Array &arr = cc.array(cc.coordOf(base + mi));

        // One streaming buffer per task, reused for every window.
        std::vector<uint64_t> vals(rows.lanes, 0);

        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned x = 0; x < ow; ++x) {
                // Stream the input window (zero padding stays zero).
                for (unsigned k = 0; k < rows.rs; ++k) {
                    int iy = static_cast<int>(y * stride + k / s) -
                             static_cast<int>(ph);
                    int ix = static_cast<int>(x * stride + k % s) -
                             static_cast<int>(pw);
                    std::fill(vals.begin(), vals.end(), 0);
                    if (iy >= 0 && ix >= 0 &&
                        iy < static_cast<int>(in.height()) &&
                        ix < static_cast<int>(in.width())) {
                        for (unsigned ci = 0; ci < c; ++ci)
                            vals[ci] = in.at(ci, iy, ix);
                    }
                    bs::storeVector(arr, rows.inp[k], vals);
                }

                // RxS MACs per bit line, then the channel reduction.
                bs::zero(arr, rows.partial);
                for (unsigned k = 0; k < rows.rs; ++k) {
                    bs::macScratch(arr, rows.filt[k], rows.inp[k],
                                   rows.partial.slice(0, acc_bits),
                                   rows.scratch, rows.zrow);
                }
                bs::reduceSum(arr, rows.partial, acc_bits, rows.lanes,
                              rows.redScratch);

                uint64_t sum = bs::loadLane(arr, rows.partial, 0);
                out[(static_cast<size_t>(mi) * oh + y) * ow + x] =
                    static_cast<uint32_t>(sum);
            }
        }
    });
    return out;
}

std::vector<uint32_t>
Executor::conv(const dnn::QTensor &in, const dnn::QWeights &w,
               unsigned stride, bool same_pad, unsigned &out_h,
               unsigned &out_w)
{
    // The legacy per-call entry point: compile and run once. The
    // micro-op sequence (and hence every cycle counter) is identical
    // to the historical fused implementation.
    return prepareConv(w, stride, same_pad).run(in, out_h, out_w);
}

std::vector<uint32_t>
Executor::fc(const std::vector<uint8_t> &in, const dnn::QWeights &w)
{
    nc_assert(w.r == 1 && w.s == 1, "fc weights must be 1x1, got %ux%u",
              w.r, w.s);
    nc_assert(w.c == in.size(), "fc: %u weight channels for %zu inputs",
              w.c, in.size());
    dnn::QTensor t(w.c, 1, 1);
    for (unsigned ci = 0; ci < w.c; ++ci)
        t.at(ci, 0, 0) = in[ci];
    unsigned oh, ow;
    return conv(t, w, 1, false, oh, ow);
}

dnn::QTensor
Executor::maxPool(const dnn::QTensor &in, unsigned r, unsigned s,
                  unsigned stride, bool same_pad)
{
    const unsigned bits = 8;
    unsigned cols = cc.geometry().arrayCols;
    unsigned arows = cc.geometry().arrayRows;
    unsigned lanes = static_cast<unsigned>(roundUpPow2(in.channels()));
    nc_assert(lanes <= cols, "maxPool: %u channels exceed %u lanes",
              in.channels(), cols);

    unsigned oh = dnn::outDim(in.height(), r, stride, same_pad);
    unsigned ow = dnn::outDim(in.width(), s, stride, same_pad);
    unsigned ph = padBefore(in.height(), r, stride, same_pad);
    unsigned pw = padBefore(in.width(), s, stride, same_pad);

    // The modeled machine runs every window on one array; the
    // simulator partitions the independent windows into contiguous
    // chunks, runs each chunk on a task-private array with the
    // identical slice map, and reduces the (data-independent, hence
    // partition-independent) cycle counts into the modeled array
    // after the join.
    sram::Array &model = cc.array(cc.coordOf(scratchBase));
    size_t windows = static_cast<size_t>(oh) * ow;
    size_t chunks = std::min<size_t>(pool.size(), windows);
    std::vector<std::pair<uint64_t, uint64_t>> charged(
        chunks > 0 ? chunks : 1, {0, 0});

    dnn::QTensor out(in.channels(), oh, ow, in.params());
    pool.parallelFor(chunks, [&](size_t chunk) {
        sram::Array arr(arows, cols);
        arr.setReferenceMode(model.referenceMode());
        bs::RowAllocator rows(arows);
        bs::VecSlice cur = rows.alloc(bits);
        bs::VecSlice best = rows.alloc(bits);
        bs::VecSlice cmp = rows.alloc(bits);

        size_t lo = windows * chunk / chunks;
        size_t hi = windows * (chunk + 1) / chunks;
        std::vector<uint64_t> iv(lanes, 0);
        for (size_t wi = lo; wi < hi; ++wi) {
            unsigned y = static_cast<unsigned>(wi / ow);
            unsigned x = static_cast<unsigned>(wi % ow);
            bool first = true;
            for (unsigned ri = 0; ri < r; ++ri) {
                for (unsigned si = 0; si < s; ++si) {
                    int iy = static_cast<int>(y * stride + ri) -
                             static_cast<int>(ph);
                    int ix = static_cast<int>(x * stride + si) -
                             static_cast<int>(pw);
                    if (iy < 0 || ix < 0 ||
                        iy >= static_cast<int>(in.height()) ||
                        ix >= static_cast<int>(in.width()))
                        continue;
                    std::fill(iv.begin(), iv.end(), 0);
                    for (unsigned ci = 0; ci < in.channels(); ++ci)
                        iv[ci] = in.at(ci, iy, ix);
                    bs::storeVector(arr, cur, iv);
                    if (first) {
                        bs::copy(arr, cur, best);
                        first = false;
                    } else {
                        bs::maxInto(arr, best, cur, cmp);
                    }
                }
            }
            for (unsigned ci = 0; ci < in.channels(); ++ci) {
                out.at(ci, y, x) = static_cast<uint8_t>(
                    bs::loadLane(arr, best, ci));
            }
        }
        charged[chunk] = {arr.computeCycles(), arr.accessCycles()};
    });

    for (const auto &[compute, access] : charged)
        model.chargeCycles(compute, access);
    return out;
}

dnn::QTensor
Executor::avgPool(const dnn::QTensor &in, unsigned r, unsigned s,
                  unsigned stride)
{
    const unsigned bits = 8;
    const unsigned acc_bits = 2 * bits;
    unsigned ws = r * s;
    unsigned cols = cc.geometry().arrayCols;
    unsigned lanes = static_cast<unsigned>(roundUpPow2(in.channels()));
    nc_assert(lanes <= cols, "avgPool: %u channels exceed %u lanes",
              in.channels(), cols);
    nc_assert(ws <= 256, "window too large");

    unsigned oh = dnn::outDim(in.height(), r, stride, false);
    unsigned ow = dnn::outDim(in.width(), s, stride, false);

    sram::Array &arr = cc.array(cc.coordOf(scratchBase));
    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice cur = rows.alloc(bits);
    bs::VecSlice acc = rows.alloc(acc_bits);
    unsigned zrow = rows.zeroRow();

    bool pow2 = isPow2(ws);
    unsigned dbits = pow2 ? 0 : log2Ceil(uint64_t(ws) + 1);
    bs::VecSlice den, quot, rwork, twork, dwork;
    if (!pow2) {
        den = rows.alloc(dbits);
        quot = rows.alloc(acc_bits);
        rwork = rows.alloc(acc_bits + dbits);
        twork = rows.alloc(dbits + 1);
        dwork = rows.alloc(dbits + 1);
        bs::storeVector(arr, den,
                        std::vector<uint64_t>(lanes, ws));
    }

    std::vector<uint64_t> iv(lanes, 0);
    dnn::QTensor out(in.channels(), oh, ow, in.params());
    for (unsigned y = 0; y < oh; ++y) {
        for (unsigned x = 0; x < ow; ++x) {
            bs::zero(arr, acc);
            for (unsigned ri = 0; ri < r; ++ri) {
                for (unsigned si = 0; si < s; ++si) {
                    std::fill(iv.begin(), iv.end(), 0);
                    for (unsigned ci = 0; ci < in.channels(); ++ci)
                        iv[ci] = in.at(ci, y * stride + ri,
                                       x * stride + si);
                    bs::storeVector(arr, cur, iv);
                    bs::add(arr, acc, cur, acc, zrow);
                }
            }
            const bs::VecSlice *result = &acc;
            if (pow2) {
                bs::shiftDown(arr, acc, log2Ceil(ws));
            } else {
                bs::divide(arr, acc, den, quot, rwork, twork, dwork);
                result = &quot;
            }
            for (unsigned ci = 0; ci < in.channels(); ++ci) {
                out.at(ci, y, x) = static_cast<uint8_t>(
                    bs::loadLane(arr, *result, ci));
            }
        }
    }
    return out;
}

std::pair<uint64_t, uint64_t>
Executor::minMax(const std::vector<uint64_t> &vals, unsigned bits)
{
    unsigned cols = cc.geometry().arrayCols;
    nc_assert(!vals.empty() && vals.size() <= cols,
              "minMax over %zu values", vals.size());
    unsigned lanes =
        static_cast<unsigned>(roundUpPow2(vals.size()));

    sram::Array &arr = cc.array(cc.coordOf(scratchBase));
    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice mx = rows.alloc(bits);
    bs::VecSlice mn = rows.alloc(bits);
    bs::VecSlice mv = rows.alloc(bits);
    bs::VecSlice cmp = rows.alloc(bits);

    // Max tree pads with 0, min tree pads with all-ones.
    std::vector<uint64_t> vmax(lanes, 0);
    std::vector<uint64_t> vmin(lanes, lowMask(bits));
    for (size_t i = 0; i < vals.size(); ++i)
        vmax[i] = vmin[i] = vals[i];
    bs::storeVector(arr, mx, vmax);
    bs::reduceMax(arr, mx, lanes, mv, cmp, /*take_min=*/false);
    bs::storeVector(arr, mn, vmin);
    bs::reduceMax(arr, mn, lanes, mv, cmp, /*take_min=*/true);

    return {bs::loadLane(arr, mn, 0), bs::loadLane(arr, mx, 0)};
}

std::vector<uint8_t>
Executor::requantize(const std::vector<uint32_t> &acc, uint8_t mult,
                     unsigned shift)
{
    const unsigned vbits = 32;
    const unsigned gbits = 8;
    unsigned cols = cc.geometry().arrayCols;

    sram::Array &arr = cc.array(cc.coordOf(scratchBase));
    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice v = rows.alloc(vbits);
    bs::VecSlice g = rows.alloc(gbits);
    bs::VecSlice prod = rows.alloc(vbits + gbits);

    std::vector<uint8_t> out(acc.size());
    for (size_t base = 0; base < acc.size(); base += cols) {
        size_t n = std::min<size_t>(cols, acc.size() - base);
        std::vector<uint64_t> vv(n);
        for (size_t i = 0; i < n; ++i)
            vv[i] = acc[base + i];
        bs::storeVector(arr, v, vv);
        bs::storeVector(arr, g,
                        std::vector<uint64_t>(n, mult));
        bs::multiply(arr, v, g, prod);
        bs::shiftDown(arr, prod, shift);
        // In-array clamp: lanes whose value exceeds 8 bits saturate
        // to 255 (the §IV-D clamp, done with a tag-OR overflow fold).
        bs::saturate(arr, prod, 8);
        for (size_t i = 0; i < n; ++i) {
            out[base + i] = static_cast<uint8_t>(bs::loadLane(
                arr, prod.slice(0, 8), static_cast<unsigned>(i)));
        }
    }
    return out;
}

std::vector<uint8_t>
Executor::relu(const std::vector<uint8_t> &vals)
{
    const unsigned bits = 8;
    unsigned cols = cc.geometry().arrayCols;
    nc_assert(vals.size() <= cols, "relu: %zu values exceed %u lanes",
              vals.size(), cols);

    sram::Array &arr = cc.array(cc.coordOf(scratchBase));
    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice v = rows.alloc(bits);

    std::vector<uint64_t> iv(vals.begin(), vals.end());
    bs::storeVector(arr, v, iv);
    bs::relu(arr, v);

    std::vector<uint8_t> out(vals.size());
    for (size_t i = 0; i < vals.size(); ++i)
        out[i] = static_cast<uint8_t>(
            bs::loadLane(arr, v, static_cast<unsigned>(i)));
    return out;
}

} // namespace nc::core
