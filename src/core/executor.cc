#include "core/executor.hh"

#include <algorithm>
#include <utility>

#include "bitserial/alu.hh"
#include "bitserial/extensions.hh"
#include "bitserial/layout.hh"
#include "common/arena.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "dnn/layers.hh"
#include "sram/ownership.hh"

namespace nc::core
{

namespace bs = bitserial;

using dnn::padBefore;

Executor::PreparedConv
Executor::prepareConv(const dnn::QWeights &w, unsigned stride,
                      bool same_pad, uint64_t base_array,
                      uint64_t band_arrays, bool resident)
{
    PreparedConv p;
    p.ex = this;
    p.m = w.m;
    p.c = w.c;
    p.r = w.r;
    p.s = w.s;
    p.stride = stride;
    p.samePad = same_pad;
    p.base = base_array;

    dnn::ConvOp shape;
    shape.name = "prepared";
    shape.c = w.c;
    shape.r = w.r;
    shape.s = w.s;
    shape.m = w.m;
    p.fplan = mapping::planFunctionalConv(shape, cc.geometry());
    nc_assert(p.fplan.fits,
              "conv (C=%u RxS=%ux%u) exceeds every functional "
              "mapping of a %ux%u array", w.c, w.r, w.s,
              cc.geometry().arrayRows, cc.geometry().arrayCols);
    // The Figure-10 slice map, shared with the ISA path: every array
    // gets the identical layout, so it is derived once here.
    p.rows = mapping::makeConvRowLayout(cc.geometry(), p.fplan);

    uint64_t need = p.fplan.totalArrays(w.m);
    p.band = band_arrays == 0 ? need : std::min(band_arrays, need);
    nc_assert(p.band >= p.fplan.chunks,
              "band of %llu arrays cannot hold one filter batch "
              "(%u chunks)",
              static_cast<unsigned long long>(p.band),
              p.fplan.chunks);
    p.groupBatches = static_cast<unsigned>(p.band / p.fplan.chunks);
    p.isResident = resident && p.groupBatches >= w.m;
    if (p.isResident)
        p.band = need;
    else
        p.weights = w; // streaming re-pins need the bank at run time

    // Materialize every band array up front: the parallel regions
    // (here and in run()) must not mutate the lazy array map.
    for (uint64_t i = 0; i < p.band; ++i)
        cc.array(cc.coordOf(base_array + i));

    // Filters are stationary for the lifetime of the prepared layer
    // (the §IV-C transposed preprocessing, paid exactly once) —
    // unless the layer streams, in which case run() re-pins each
    // filter group as it cycles through the band.
    if (p.isResident)
        p.storeFilters(w, 0, w.m, 0);
    return p;
}

void
Executor::PreparedConv::pinReplica(const dnn::QWeights &w,
                                   uint64_t array_offset)
{
    nc_assert(isResident,
              "pinReplica: streaming layers time-share their band "
              "and cannot hold image replicas");
    nc_assert(w.m == m && w.c == c && w.r == r && w.s == s,
              "pinReplica: bank is %ux%ux%ux%u, layer wants "
              "%ux%ux%ux%u", w.m, w.c, w.r, w.s, m, c, r, s);
    cache::ComputeCache &cc = ex->cc;
    // Materialize the replica band up front: the image fan-out must
    // never mutate the lazy array map.
    for (uint64_t i = 0; i < band; ++i)
        cc.array(cc.coordOf(base + array_offset + i));
    storeFilters(w, 0, m, array_offset);
}

void
Executor::PreparedConv::storeFilters(const dnn::QWeights &w,
                                     unsigned first_batch,
                                     unsigned count,
                                     uint64_t array_offset)
{
    cache::ComputeCache &cc = ex->cc;
    const unsigned chunks = fplan.chunks;
    const unsigned pack = fplan.packFactor;
    const unsigned split = fplan.splitFactor;
    const unsigned rs = r * s;

    ex->pool.parallelFor(static_cast<size_t>(count) * chunks,
                         [&](size_t t) {
        // Race detector (debug): each store task owns its one array.
        [[maybe_unused]] sram::ownership::ClaimScope own(
            cc.ownershipRegistry(),
            sram::ownership::Range{base + array_offset + t, 1}, 0,
            "conv filter store");
        unsigned mi = first_batch + static_cast<unsigned>(t / chunks);
        unsigned ch = static_cast<unsigned>(t % chunks);
        sram::Array &arr =
            cc.array(cc.coordOf(base + array_offset + t));
        unsigned c0 = ch * fplan.chunkChannels;
        unsigned c1 = std::min(c, c0 + fplan.chunkChannels);

        // Streaming buffer on this worker's scratch arena: filters
        // repin every pass in the streaming regime, so a heap
        // allocation here would recur per (batch, chunk) task.
        common::ArenaScope scratch;
        std::span<uint64_t> vals = scratch.alloc(rows.lanes);
        for (unsigned k = 0; k < rows.rs; ++k) {
            std::fill(vals.begin(), vals.end(), 0);
            if (pack > 1) {
                for (unsigned l = 0; l < rows.lanes; ++l) {
                    unsigned ci = c0 + l * pack + k;
                    if (l * pack + k < fplan.chunkChannels && ci < c1)
                        vals[l] = w.at(mi, ci, 0, 0);
                }
            } else if (split > 1) {
                for (unsigned ci = c0; ci < c1; ++ci) {
                    for (unsigned j = 0; j < split; ++j) {
                        unsigned kg = j * rows.rs + k;
                        if (kg >= rs)
                            continue;
                        vals[(ci - c0) * split + j] =
                            w.at(mi, ci, kg / s, kg % s);
                    }
                }
            } else {
                for (unsigned ci = c0; ci < c1; ++ci)
                    vals[ci - c0] = w.at(mi, ci, k / s, k % s);
            }
            bs::storeVector(arr, rows.filt[k], vals);
        }
    });
}

std::vector<uint32_t>
Executor::PreparedConv::run(const dnn::QTensor &in, unsigned &out_h,
                            unsigned &out_w, uint64_t array_offset)
{
    const unsigned acc_bits = 24;
    cache::ComputeCache &cc = ex->cc;
    nc_assert(in.channels() == c,
              "prepared conv expects %u input channels, got %u", c,
              in.channels());
    nc_assert(array_offset == 0 || isResident,
              "streaming conv layers run at offset 0 only (got %llu)",
              static_cast<unsigned long long>(array_offset));

    out_h = dnn::outDim(in.height(), r, stride, samePad);
    out_w = dnn::outDim(in.width(), s, stride, samePad);
    unsigned ph = padBefore(in.height(), r, stride, samePad);
    unsigned pw = padBefore(in.width(), s, stride, samePad);
    unsigned oh = out_h, ow = out_w;
    const unsigned chunks = fplan.chunks;
    const unsigned pack = fplan.packFactor;
    const unsigned split = fplan.splitFactor;
    const unsigned rs = r * s;
    const size_t win = static_cast<size_t>(oh) * ow;

    std::vector<uint32_t> out(static_cast<size_t>(m) * win, 0);
    // Per-chunk partial accumulators of the current pass; the chunk
    // merge below models the cross-array sense-amp reduction.
    std::vector<uint32_t> part;

    unsigned passes =
        static_cast<unsigned>(divCeil(m, groupBatches));
    for (unsigned pass = 0; pass < passes; ++pass) {
        unsigned mb0 = pass * groupBatches;
        unsigned mb1 = std::min(m, mb0 + groupBatches);
        // Streaming regime: pin this pass's filter group before its
        // windows run (whole-layer-resident bands skip this forever).
        if (!isResident)
            storeFilters(weights, mb0, mb1 - mb0, 0);

        size_t tasks = static_cast<size_t>(mb1 - mb0) * chunks;
        if (chunks > 1)
            part.assign(tasks * win, 0);

        // One array per (filter batch, channel chunk), spread across
        // the cache the way the mapper replicates M's over ways
        // (Figure 9). The tasks are fully independent — each owns its
        // array and its slice of the output — so they fan out across
        // the pool.
        ex->pool.parallelFor(tasks, [&](size_t t) {
            // Race detector (debug): this task owns exactly the one
            // array of its (filter batch, chunk) pair.
            [[maybe_unused]] sram::ownership::ClaimScope own(
                cc.ownershipRegistry(),
                sram::ownership::Range{base + array_offset + t, 1},
                0, "conv window kernel");
            unsigned mi = mb0 + static_cast<unsigned>(t / chunks);
            unsigned ch = static_cast<unsigned>(t % chunks);
            sram::Array &arr =
                cc.array(cc.coordOf(base + array_offset + t));
            unsigned c0 = ch * fplan.chunkChannels;
            unsigned c1 = std::min(c, c0 + fplan.chunkChannels);

            // One streaming buffer per task on the worker's scratch
            // arena, reused for every window.
            common::ArenaScope scratch;
            std::span<uint64_t> vals = scratch.alloc(rows.lanes);
            std::fill(vals.begin(), vals.end(), 0);

            auto in_at = [&](unsigned ci, int iy, int ix) -> uint64_t {
                if (iy < 0 || ix < 0 ||
                    iy >= static_cast<int>(in.height()) ||
                    ix >= static_cast<int>(in.width()))
                    return 0;
                return in.at(ci, iy, ix);
            };

            for (unsigned y = 0; y < oh; ++y) {
                for (unsigned x = 0; x < ow; ++x) {
                    if (pack > 1) {
                        // Packed 1x1: one input slot, one byte per
                        // MAC, each lane covering `pack` channels.
                        bs::zero(arr, rows.partial);
                        int iy = static_cast<int>(y * stride) -
                                 static_cast<int>(ph);
                        int ix = static_cast<int>(x * stride) -
                                 static_cast<int>(pw);
                        for (unsigned k = 0; k < rows.rs; ++k) {
                            std::fill(vals.begin(), vals.end(), 0);
                            for (unsigned l = 0; l < rows.lanes;
                                 ++l) {
                                unsigned ci = c0 + l * pack + k;
                                if (l * pack + k <
                                        fplan.chunkChannels &&
                                    ci < c1)
                                    vals[l] = in_at(ci, iy, ix);
                            }
                            bs::storeVector(arr, rows.inp[0], vals);
                            bs::macScratch(
                                arr, rows.filt[k], rows.inp[0],
                                rows.partial.slice(0, acc_bits),
                                rows.scratch, rows.zrow);
                        }
                    } else {
                        // Stream the input window (zero padding stays
                        // zero), then the MAC sequence — the original
                        // kernel order, so untransformed shapes stay
                        // cycle-identical.
                        for (unsigned k = 0; k < rows.rs; ++k) {
                            std::fill(vals.begin(), vals.end(), 0);
                            if (split > 1) {
                                for (unsigned ci = c0; ci < c1;
                                     ++ci) {
                                    for (unsigned j = 0; j < split;
                                         ++j) {
                                        unsigned kg =
                                            j * rows.rs + k;
                                        if (kg >= rs)
                                            continue;
                                        int iy = static_cast<int>(
                                                     y * stride +
                                                     kg / s) -
                                                 static_cast<int>(ph);
                                        int ix = static_cast<int>(
                                                     x * stride +
                                                     kg % s) -
                                                 static_cast<int>(pw);
                                        vals[(ci - c0) * split + j] =
                                            in_at(ci, iy, ix);
                                    }
                                }
                            } else {
                                int iy = static_cast<int>(y * stride +
                                                          k / s) -
                                         static_cast<int>(ph);
                                int ix = static_cast<int>(x * stride +
                                                          k % s) -
                                         static_cast<int>(pw);
                                if (iy >= 0 && ix >= 0 &&
                                    iy < static_cast<int>(
                                             in.height()) &&
                                    ix < static_cast<int>(
                                             in.width())) {
                                    for (unsigned ci = c0; ci < c1;
                                         ++ci)
                                        vals[ci - c0] =
                                            in.at(ci, iy, ix);
                                }
                            }
                            bs::storeVector(arr, rows.inp[k], vals);
                        }
                        // RxS MACs per bit line, then the reduction.
                        bs::zero(arr, rows.partial);
                        for (unsigned k = 0; k < rows.rs; ++k) {
                            bs::macScratch(
                                arr, rows.filt[k], rows.inp[k],
                                rows.partial.slice(0, acc_bits),
                                rows.scratch, rows.zrow);
                        }
                    }
                    bs::reduceSum(arr, rows.partial, acc_bits,
                                  rows.lanes, rows.redScratch);

                    uint64_t sum =
                        bs::loadLane(arr, rows.partial, 0);
                    if (chunks > 1) {
                        part[t * win + y * ow + x] =
                            static_cast<uint32_t>(sum);
                    } else {
                        out[(static_cast<size_t>(mi)) * win +
                            static_cast<size_t>(y) * ow + x] =
                            static_cast<uint32_t>(sum);
                    }
                }
            }
        });

        // Merge the chunk partials (the shared-sense-amp reduction
        // across the batch's arrays).
        if (chunks > 1) {
            for (unsigned mi = mb0; mi < mb1; ++mi) {
                for (unsigned ch = 0; ch < chunks; ++ch) {
                    size_t t =
                        (static_cast<size_t>(mi - mb0)) * chunks + ch;
                    for (size_t i = 0; i < win; ++i)
                        out[static_cast<size_t>(mi) * win + i] +=
                            part[t * win + i];
                }
            }
        }
    }
    return out;
}

std::vector<uint32_t>
Executor::conv(const dnn::QTensor &in, const dnn::QWeights &w,
               unsigned stride, bool same_pad, unsigned &out_h,
               unsigned &out_w)
{
    // The legacy per-call entry point: compile and run once. The
    // micro-op sequence (and hence every cycle counter) is identical
    // to the historical fused implementation.
    return prepareConv(w, stride, same_pad).run(in, out_h, out_w);
}

std::vector<uint32_t>
Executor::fc(const std::vector<uint8_t> &in, const dnn::QWeights &w)
{
    nc_assert(w.r == 1 && w.s == 1, "fc weights must be 1x1, got %ux%u",
              w.r, w.s);
    nc_assert(w.c == in.size(), "fc: %u weight channels for %zu inputs",
              w.c, in.size());
    dnn::QTensor t(w.c, 1, 1);
    for (unsigned ci = 0; ci < w.c; ++ci)
        t.at(ci, 0, 0) = in[ci];
    unsigned oh, ow;
    return conv(t, w, 1, false, oh, ow);
}

dnn::QTensor
Executor::maxPool(const dnn::QTensor &in, unsigned r, unsigned s,
                  unsigned stride, bool same_pad)
{
    return maxPoolAt(scratchBase, in, r, s, stride, same_pad);
}

dnn::QTensor
Executor::maxPoolAt(uint64_t scratch_array, const dnn::QTensor &in,
                    unsigned r, unsigned s, unsigned stride,
                    bool same_pad)
{
    unsigned cols = cc.geometry().arrayCols;
    unsigned arows = cc.geometry().arrayRows;
    // Channel ranges beyond one array's bit lines run as extra
    // serial passes over the same slice map (one lane per channel).
    unsigned cchunk = std::min(in.channels(), cols);
    unsigned lanes = static_cast<unsigned>(roundUpPow2(cchunk));
    nc_assert(lanes <= cols, "maxPool: %u lanes exceed %u bit lines "
              "(non-power-of-two array width)", lanes, cols);
    unsigned cpasses = static_cast<unsigned>(
        divCeil(in.channels(), cchunk));

    unsigned oh = dnn::outDim(in.height(), r, stride, same_pad);
    unsigned ow = dnn::outDim(in.width(), s, stride, same_pad);
    unsigned ph = padBefore(in.height(), r, stride, same_pad);
    unsigned pw = padBefore(in.width(), s, stride, same_pad);

    // The modeled machine runs every window on one array; the
    // simulator partitions the independent (window, channel-pass)
    // units into contiguous chunks, runs each chunk on a task-private
    // array with the identical slice map, and reduces the
    // (data-independent, hence partition-independent) cycle counts
    // into the modeled array after the join.
    // Race detector (debug): the kernel owns the modeled scratch
    // array (window tasks run on task-private arrays and only their
    // cycle counts merge back here after the join).
    [[maybe_unused]] sram::ownership::ClaimScope own(
        cc.ownershipRegistry(),
        sram::ownership::Range{scratch_array, 1}, 0,
        "maxPool kernel");
    sram::Array &model = cc.array(cc.coordOf(scratch_array));
    size_t windows = static_cast<size_t>(oh) * ow * cpasses;
    size_t chunks = std::min<size_t>(pool.size(), windows);
    std::vector<std::pair<uint64_t, uint64_t>> charged(
        chunks > 0 ? chunks : 1, {0, 0});

    dnn::QTensor out(in.channels(), oh, ow, in.params());
    pool.parallelFor(chunks, [&](size_t chunk) {
        sram::Array arr(arows, cols);
        arr.setReferenceMode(model.referenceMode());
        // The shared carve-up the broadcast engine and the program
        // verifier use too — one slice map for every max-pool kernel.
        mapping::PoolRowLayout prows =
            mapping::makePoolRowLayout(cc.geometry());
        bs::VecSlice cur = prows.cur;
        bs::VecSlice best = prows.best;
        bs::VecSlice cmp = prows.cmp;

        size_t lo = windows * chunk / chunks;
        size_t hi = windows * (chunk + 1) / chunks;
        common::ArenaScope task_scratch;
        std::span<uint64_t> iv = task_scratch.alloc(lanes);
        std::fill(iv.begin(), iv.end(), 0);
        for (size_t wi = lo; wi < hi; ++wi) {
            unsigned y = static_cast<unsigned>(wi / cpasses / ow);
            unsigned x = static_cast<unsigned>(wi / cpasses % ow);
            unsigned c0 = static_cast<unsigned>(wi % cpasses) *
                          cchunk;
            unsigned c1 = std::min(in.channels(), c0 + cchunk);
            bool first = true;
            for (unsigned ri = 0; ri < r; ++ri) {
                for (unsigned si = 0; si < s; ++si) {
                    int iy = static_cast<int>(y * stride + ri) -
                             static_cast<int>(ph);
                    int ix = static_cast<int>(x * stride + si) -
                             static_cast<int>(pw);
                    if (iy < 0 || ix < 0 ||
                        iy >= static_cast<int>(in.height()) ||
                        ix >= static_cast<int>(in.width()))
                        continue;
                    std::fill(iv.begin(), iv.end(), 0);
                    for (unsigned ci = c0; ci < c1; ++ci)
                        iv[ci - c0] = in.at(ci, iy, ix);
                    bs::storeVector(arr, cur, iv);
                    if (first) {
                        bs::copy(arr, cur, best);
                        first = false;
                    } else {
                        bs::maxInto(arr, best, cur, cmp);
                    }
                }
            }
            for (unsigned ci = c0; ci < c1; ++ci) {
                out.at(ci, y, x) = static_cast<uint8_t>(
                    bs::loadLane(arr, best, ci - c0));
            }
        }
        charged[chunk] = {arr.computeCycles(), arr.accessCycles()};
    });

    for (const auto &[compute, access] : charged)
        model.chargeCycles(compute, access);
    return out;
}

dnn::QTensor
Executor::avgPool(const dnn::QTensor &in, unsigned r, unsigned s,
                  unsigned stride)
{
    return avgPoolAt(scratchBase, in, r, s, stride, false);
}

dnn::QTensor
Executor::avgPool(const dnn::QTensor &in, unsigned r, unsigned s,
                  unsigned stride, bool same_pad)
{
    return avgPoolAt(scratchBase, in, r, s, stride, same_pad);
}

dnn::QTensor
Executor::avgPoolAt(uint64_t scratch_array, const dnn::QTensor &in,
                    unsigned r, unsigned s, unsigned stride,
                    bool same_pad)
{
    const unsigned bits = 8;
    const unsigned acc_bits = 2 * bits;
    unsigned ws = r * s;
    unsigned cols = cc.geometry().arrayCols;
    // Channel ranges beyond one array's bit lines run as extra
    // serial passes over the same slice map (one lane per channel).
    unsigned cchunk = std::min(in.channels(), cols);
    unsigned lanes = static_cast<unsigned>(roundUpPow2(cchunk));
    nc_assert(lanes <= cols, "avgPool: %u lanes exceed %u bit lines "
              "(non-power-of-two array width)", lanes, cols);
    unsigned cpasses = static_cast<unsigned>(
        divCeil(in.channels(), cchunk));
    nc_assert(ws <= 256, "window too large");

    unsigned oh = dnn::outDim(in.height(), r, stride, same_pad);
    unsigned ow = dnn::outDim(in.width(), s, stride, same_pad);
    unsigned ph = padBefore(in.height(), r, stride, same_pad);
    unsigned pw = padBefore(in.width(), s, stride, same_pad);

    sram::Array &arr = cc.array(cc.coordOf(scratch_array));
    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice cur = rows.alloc(bits);
    bs::VecSlice acc = rows.alloc(acc_bits);
    unsigned zrow = rows.zeroRow();

    // SAME padding shrinks edge windows, so their divisors vary; the
    // divide bands are carved out whenever any window count can need
    // the restoring divider, and the divisor streams per window.
    bool pow2_full = isPow2(ws);
    bool need_div = !pow2_full || same_pad;
    unsigned dbits = need_div ? log2Ceil(uint64_t(ws) + 1) : 0;
    bs::VecSlice den, quot, rwork, twork, dwork;
    unsigned den_cur = 0; // divisor currently stored in `den`
    if (need_div) {
        den = rows.alloc(dbits);
        quot = rows.alloc(acc_bits);
        rwork = rows.alloc(acc_bits + dbits);
        twork = rows.alloc(dbits + 1);
        dwork = rows.alloc(dbits + 1);
        if (!pow2_full) {
            bs::storeSplat(arr, den, ws, lanes);
            den_cur = ws;
        }
    }

    common::ArenaScope scratch;
    std::span<uint64_t> iv = scratch.alloc(lanes);
    std::fill(iv.begin(), iv.end(), 0);
    dnn::QTensor out(in.channels(), oh, ow, in.params());
    for (unsigned cp = 0; cp < cpasses; ++cp) {
        unsigned c0 = cp * cchunk;
        unsigned c1 = std::min(in.channels(), c0 + cchunk);
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned x = 0; x < ow; ++x) {
                unsigned count = 0;
                bs::zero(arr, acc);
                for (unsigned ri = 0; ri < r; ++ri) {
                    for (unsigned si = 0; si < s; ++si) {
                        int iy = static_cast<int>(y * stride + ri) -
                                 static_cast<int>(ph);
                        int ix = static_cast<int>(x * stride + si) -
                                 static_cast<int>(pw);
                        if (iy < 0 || ix < 0 ||
                            iy >= static_cast<int>(in.height()) ||
                            ix >= static_cast<int>(in.width()))
                            continue;
                        std::fill(iv.begin(), iv.end(), 0);
                        for (unsigned ci = c0; ci < c1; ++ci)
                            iv[ci - c0] = in.at(ci, iy, ix);
                        bs::storeVector(arr, cur, iv);
                        bs::add(arr, acc, cur, acc, zrow);
                        ++count;
                    }
                }
                // TF SAME averages exclude padding: divide by the
                // valid count — a shift when it is a power of two,
                // the restoring divider otherwise (divisor streamed
                // when it differs from what the band holds).
                const bs::VecSlice *result = &acc;
                if (isPow2(count)) {
                    bs::shiftDown(arr, acc, log2Ceil(count));
                } else {
                    if (count != den_cur) {
                        bs::storeSplat(arr, den, count, lanes);
                        den_cur = count;
                    }
                    bs::divide(arr, acc, den, quot, rwork, twork,
                               dwork);
                    result = &quot;
                }
                for (unsigned ci = c0; ci < c1; ++ci) {
                    out.at(ci, y, x) = static_cast<uint8_t>(
                        bs::loadLane(arr, *result, ci - c0));
                }
            }
        }
    }
    return out;
}

std::pair<uint64_t, uint64_t>
Executor::minMax(const std::vector<uint64_t> &vals, unsigned bits)
{
    unsigned cols = cc.geometry().arrayCols;
    nc_assert(!vals.empty() && vals.size() <= cols,
              "minMax over %zu values", vals.size());
    unsigned lanes =
        static_cast<unsigned>(roundUpPow2(vals.size()));

    sram::Array &arr = cc.array(cc.coordOf(scratchBase));
    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice mx = rows.alloc(bits);
    bs::VecSlice mn = rows.alloc(bits);
    bs::VecSlice mv = rows.alloc(bits);
    bs::VecSlice cmp = rows.alloc(bits);

    // Max tree pads with 0, min tree pads with all-ones.
    std::vector<uint64_t> vmax(lanes, 0);
    std::vector<uint64_t> vmin(lanes, lowMask(bits));
    for (size_t i = 0; i < vals.size(); ++i)
        vmax[i] = vmin[i] = vals[i];
    bs::storeVector(arr, mx, vmax);
    bs::reduceMax(arr, mx, lanes, mv, cmp, /*take_min=*/false);
    bs::storeVector(arr, mn, vmin);
    bs::reduceMax(arr, mn, lanes, mv, cmp, /*take_min=*/true);

    return {bs::loadLane(arr, mn, 0), bs::loadLane(arr, mx, 0)};
}

std::vector<uint8_t>
Executor::requantize(const std::vector<uint32_t> &acc, uint8_t mult,
                     unsigned shift)
{
    return requantizeAt(scratchBase, acc, mult, shift);
}

std::vector<uint8_t>
Executor::requantizeAt(uint64_t scratch_array,
                       const std::vector<uint32_t> &acc, uint8_t mult,
                       unsigned shift)
{
    const unsigned vbits = 32;
    const unsigned gbits = 8;
    unsigned cols = cc.geometry().arrayCols;

    sram::Array &arr = cc.array(cc.coordOf(scratch_array));
    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice v = rows.alloc(vbits);
    bs::VecSlice g = rows.alloc(gbits);
    bs::VecSlice prod = rows.alloc(vbits + gbits);

    common::ArenaScope scratch;
    std::span<uint64_t> vv = scratch.alloc(cols);
    std::vector<uint8_t> out(acc.size());
    for (size_t base = 0; base < acc.size(); base += cols) {
        size_t n = std::min<size_t>(cols, acc.size() - base);
        for (size_t i = 0; i < n; ++i)
            vv[i] = acc[base + i];
        bs::storeVector(arr, v, vv.first(n));
        bs::storeSplat(arr, g, mult, n);
        bs::multiply(arr, v, g, prod);
        bs::shiftDown(arr, prod, shift);
        // In-array clamp: lanes whose value exceeds 8 bits saturate
        // to 255 (the §IV-D clamp, done with a tag-OR overflow fold).
        bs::saturate(arr, prod, 8);
        for (size_t i = 0; i < n; ++i) {
            out[base + i] = static_cast<uint8_t>(bs::loadLane(
                arr, prod.slice(0, 8), static_cast<unsigned>(i)));
        }
    }
    return out;
}

Executor::PreparedEltwise
Executor::prepareEltwise(uint8_t mult, unsigned shift,
                         uint64_t scratch_array)
{
    PreparedEltwise p;
    p.ex = this;
    p.mult = mult;
    p.sh = shift;
    p.scratch = scratch_array;
    cc.array(cc.coordOf(scratch_array)); // materialize up front

    // Row carve-up, fixed once: the shared mapping-layer map (two
    // operand bytes, the 9-bit sum, the broadcast multiplier, the
    // 17-bit product shifted and saturated in place) — identical to
    // the ISA backend's, which is what lets the program verifier
    // check one canonical merge program for both.
    p.rows = mapping::makeEltwiseRowLayout(cc.geometry());
    return p;
}

std::vector<uint8_t>
Executor::PreparedEltwise::run(const std::vector<uint8_t> &a,
                               const std::vector<uint8_t> &b,
                               uint64_t array_offset)
{
    const unsigned bits = 8;
    cache::ComputeCache &cc = ex->cc;
    nc_assert(a.size() == b.size(),
              "eltwise operands differ: %zu vs %zu elements", a.size(),
              b.size());

    unsigned cols = cc.geometry().arrayCols;
    // Race detector (debug): the merge owns its branch's scratch
    // array, displaced into the running image slot.
    [[maybe_unused]] sram::ownership::ClaimScope own(
        cc.ownershipRegistry(),
        sram::ownership::Range{scratch + array_offset, 1}, 0,
        "eltwise merge kernel");
    sram::Array &arr = cc.array(cc.coordOf(scratch + array_offset));

    // The multiplier is one broadcast scalar per run (other layers
    // may have scribbled on the scratch array in between).
    bs::storeSplat(arr, rows.gain, mult, cols);

    common::ArenaScope scratch;
    std::span<uint64_t> iv = scratch.alloc(cols);
    std::vector<uint8_t> out(a.size());
    for (size_t base = 0; base < a.size(); base += cols) {
        size_t n = std::min<size_t>(cols, a.size() - base);
        for (size_t i = 0; i < n; ++i)
            iv[i] = a[base + i];
        bs::storeVector(arr, rows.va, iv.first(n));
        for (size_t i = 0; i < n; ++i)
            iv[i] = b[base + i];
        bs::storeVector(arr, rows.vb, iv.first(n));

        // sat8(((a + b) * mult) >> shift): widen add, multiply by
        // the calibrated 8-bit scalar, truncating shift, in-array
        // clamp (the §IV-D sequence, one lane per element).
        bs::add(arr, rows.va, rows.vb, rows.acc, rows.zrow);
        bs::multiply(arr, rows.acc, rows.gain, rows.prod);
        bs::shiftDown(arr, rows.prod, sh);
        bs::saturate(arr, rows.prod, bits);
        for (size_t i = 0; i < n; ++i) {
            out[base + i] = static_cast<uint8_t>(bs::loadLane(
                arr, rows.prod.slice(0, bits),
                static_cast<unsigned>(i)));
        }
    }
    return out;
}

std::vector<uint8_t>
Executor::eltwiseAdd(const std::vector<uint8_t> &a,
                     const std::vector<uint8_t> &b, uint8_t mult,
                     unsigned shift)
{
    return prepareEltwise(mult, shift, scratchBase).run(a, b);
}

std::vector<uint8_t>
Executor::relu(const std::vector<uint8_t> &vals)
{
    const unsigned bits = 8;
    unsigned cols = cc.geometry().arrayCols;
    nc_assert(vals.size() <= cols, "relu: %zu values exceed %u lanes",
              vals.size(), cols);

    sram::Array &arr = cc.array(cc.coordOf(scratchBase));
    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice v = rows.alloc(bits);

    std::vector<uint64_t> iv(vals.begin(), vals.end());
    bs::storeVector(arr, v, iv);
    bs::relu(arr, v);

    std::vector<uint8_t> out(vals.size());
    for (size_t i = 0; i < vals.size(); ++i)
        out[i] = static_cast<uint8_t>(
            bs::loadLane(arr, v, static_cast<unsigned>(i)));
    return out;
}

} // namespace nc::core
