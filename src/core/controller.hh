/**
 * @file
 * The broadcast controller (paper §IV-F).
 *
 * The intra-slice address bus carries one compute instruction to
 * every bank; a small per-bank FSM (204 um^2) expands it into word
 * line / sense / write-back control sequences. This class models
 * that: a group of enrolled arrays receives each Instruction and
 * executes the identical micro-op sequence, so the whole group stays
 * in SIMD lock-step — which the controller asserts after every
 * broadcast.
 */

#ifndef NC_CORE_CONTROLLER_HH
#define NC_CORE_CONTROLLER_HH

#include <functional>
#include <vector>

#include "cache/compute_cache.hh"
#include "common/thread_pool.hh"
#include "core/isa.hh"

namespace nc::core
{

/** Broadcasts in-cache instructions to a lock-step array group. */
class Controller
{
  public:
    /**
     * @param pool_ optional worker pool: run() fans the per-array
     *     program expansions over it (each enrolled array executes
     *     the identical instruction stream independently, exactly as
     *     the per-bank FSMs do in hardware). No pool = serial.
     */
    explicit Controller(cache::ComputeCache &cc_,
                        common::ThreadPool *pool_ = nullptr)
        : cc(cc_), pool(pool_)
    {
    }

    /** Add an array to the broadcast group (materializes it). */
    void enroll(const cache::ArrayCoord &coord);

    size_t groupSize() const { return group.size(); }

    /**
     * Issue one instruction to every enrolled array. Returns the
     * compute cycles the instruction took (identical across the
     * group by construction; panics if an array diverges).
     */
    uint64_t broadcast(const Instruction &inst);

    /**
     * Issue a whole program; returns total cycles. With a pool, the
     * whole program runs on every array in parallel (one task per
     * array — arrays never share state, so this is bit-identical to
     * the serial instruction-by-instruction broadcast), and the
     * per-instruction lock-step check runs after the join.
     *
     * @param prologue optional per-array setup (e.g. streaming the
     *     window's input bytes) run on each enrolled array before its
     *     program — folded into the same fan-out so a window costs
     *     one wake/join round-trip, not two. Receives the array's
     *     coordinate and must touch only that array's state.
     */
    uint64_t run(const std::vector<Instruction> &program,
                 const std::function<void(const cache::ArrayCoord &)>
                     *prologue = nullptr);

    /** Cycles issued by this controller so far. */
    uint64_t cyclesIssued() const { return issued; }

  private:
    /** Expand @p inst on one array (the per-bank FSM). */
    uint64_t execute(sram::Array &arr, const Instruction &inst);

    cache::ComputeCache &cc;
    common::ThreadPool *pool;
    std::vector<cache::ArrayCoord> group;
    uint64_t issued = 0;
    /** Per-(array, instruction) cycle records, reused across run()s. */
    std::vector<uint64_t> runCycles;
};

} // namespace nc::core

#endif // NC_CORE_CONTROLLER_HH
