/**
 * @file
 * The broadcast controller (paper §IV-F).
 *
 * The intra-slice address bus carries one compute instruction to
 * every bank; a small per-bank FSM (204 um^2) expands it into word
 * line / sense / write-back control sequences. This class models
 * that: a group of enrolled arrays receives each Instruction and
 * executes the identical micro-op sequence, so the whole group stays
 * in SIMD lock-step — which the controller asserts after every
 * broadcast.
 */

#ifndef NC_CORE_CONTROLLER_HH
#define NC_CORE_CONTROLLER_HH

#include <vector>

#include "cache/compute_cache.hh"
#include "core/isa.hh"

namespace nc::core
{

/** Broadcasts in-cache instructions to a lock-step array group. */
class Controller
{
  public:
    explicit Controller(cache::ComputeCache &cc_) : cc(cc_) {}

    /** Add an array to the broadcast group (materializes it). */
    void enroll(const cache::ArrayCoord &coord);

    size_t groupSize() const { return group.size(); }

    /**
     * Issue one instruction to every enrolled array. Returns the
     * compute cycles the instruction took (identical across the
     * group by construction; panics if an array diverges).
     */
    uint64_t broadcast(const Instruction &inst);

    /** Issue a whole program; returns total cycles. */
    uint64_t run(const std::vector<Instruction> &program);

    /** Cycles issued by this controller so far. */
    uint64_t cyclesIssued() const { return issued; }

  private:
    /** Expand @p inst on one array (the per-bank FSM). */
    uint64_t execute(sram::Array &arr, const Instruction &inst);

    cache::ComputeCache &cc;
    std::vector<cache::ArrayCoord> group;
    uint64_t issued = 0;
};

} // namespace nc::core

#endif // NC_CORE_CONTROLLER_HH
