/**
 * @file
 * Width-templated compute kernels behind sram::Array, with runtime
 * SIMD dispatch.
 *
 * Every fused micro-op pass (sense + logic + predicated write-back
 * over a row's 64-bit words) and the word-parallel data-movement
 * passes of bitserial::storeVector/loadVector exist in up to three
 * instantiations of one templated inner kernel: portable uint64_t
 * (64 lanes per step), AVX2 (256 lanes), and AVX-512 (512 lanes).
 * Carry and predicate lanes stay in-register across a pass at every
 * width; wider tiers fall through to the next-narrower kernel for
 * the remainder words of rows that are not a multiple of their step.
 *
 * A Table bundles one tier's kernels as function pointers. Dispatch
 * picks a table once, lazily at the first op: the host's best tier
 * (CPUID intersected with what this build compiled — a tier whose
 * -m flags the compiler lacked degrades to a nullptr table), unless
 * NC_SIMD=scalar|avx2|avx512|auto overrides it (strict-parsed; a
 * tier the host can't run is fatal, naming the best one it can —
 * see common/simd.hh). Tests and benches pin tiers explicitly with
 * forceTier().
 *
 * Each tier is pinned bit-exact — rows, carry/tag latches, and cycle
 * counts — against Array's bit-by-bit reference mode by the
 * differential suites (tests/sram/test_array_kernels.cc forces every
 * available tier in turn).
 */

#ifndef NC_SRAM_KERNELS_HH
#define NC_SRAM_KERNELS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.hh"

namespace nc::sram::kern
{

/** Two-operand logic family (the BL/BLB sense combinations). */
enum class Logic2
{
    And,
    Nor,
    Or,
    Xor,
    Xnor,
};

/** Tag-latch folds against one sensed row. */
enum class TagFold
{
    And,    ///< tag &= row
    AndInv, ///< tag &= ~row
    Or,     ///< tag |= row
};

/**
 * One tier's kernel set. All row pointers are to BitRow word storage
 * (64 lanes per word, zero-tail invariant); @p nw is the word count,
 * @p tm the valid-lane mask of the last word. The *Pred variants
 * commit d only in lanes where the tag word t holds 1; they are
 * separate entries (rather than a bool flag) so the unpredicated
 * forms — the inner loops of every arithmetic kernel — fit entirely
 * in argument registers and Array's hot ops can sibling-call them
 * without building a stack frame.
 */
struct Table
{
    common::simd::Tier tier;

    /** d <= op(a, b), tail-masked. */
    void (*logic2)(Logic2 op, const uint64_t *a, const uint64_t *b,
                   uint64_t *d, size_t nw, uint64_t tm);
    void (*logic2Pred)(Logic2 op, const uint64_t *a,
                       const uint64_t *b, uint64_t *d,
                       const uint64_t *t, size_t nw, uint64_t tm);
    /**
     * Full-adder pass: d <= a^b^c, c <= majority (in the predicated
     * form the carry still updates unconditionally). d may alias a
     * or b — each chunk's operand words are loaded before its
     * stores, and chunks run forward.
     */
    void (*add)(const uint64_t *a, const uint64_t *b, uint64_t *d,
                uint64_t *c, size_t nw, uint64_t tm);
    void (*addPred)(const uint64_t *a, const uint64_t *b,
                    uint64_t *d, uint64_t *c, const uint64_t *t,
                    size_t nw, uint64_t tm);
    /** d <= s (or ~s), tail-masked. */
    void (*copy)(const uint64_t *s, uint64_t *d, size_t nw,
                 uint64_t tm, bool invert);
    void (*copyPred)(const uint64_t *s, uint64_t *d,
                     const uint64_t *t, size_t nw, uint64_t tm,
                     bool invert);
    /** d <= the constant word v in every word, tail-masked. */
    void (*imm)(uint64_t v, uint64_t *d, size_t nw, uint64_t tm);
    void (*immPred)(uint64_t v, uint64_t *d, const uint64_t *t,
                    size_t nw, uint64_t tm);
    /** d <= s where s is a latch row (tail already zero: no mask). */
    void (*latchStore)(const uint64_t *s, uint64_t *d, size_t nw);
    void (*latchStorePred)(const uint64_t *s, uint64_t *d,
                           const uint64_t *t, size_t nw);
    /** t <= fold(t, s); both operands already tail-masked. */
    void (*tagFold)(TagFold op, uint64_t *t, const uint64_t *s,
                    size_t nw);
    /** t &= ~(a ^ b) — the equality-search fold. */
    void (*tagAndXnor)(uint64_t *t, const uint64_t *a,
                       const uint64_t *b, size_t nw);
    /** d <= s (or ~s) into a latch row; last word always masked. */
    void (*loadLatch)(uint64_t *d, const uint64_t *s, size_t nw,
                      uint64_t tm, bool invert);
    /**
     * In-place 64x64 bit-matrix transpose of @p nblocks consecutive
     * 64-word blocks (the batched form of nc::transpose64).
     */
    void (*transposeBlocks)(uint64_t *blocks, size_t nblocks);
    /**
     * Bit-plane pack for narrow elements (bits <= 8): plane word
     * planes[b * nblocks + blk] receives bit b of the 64 values of
     * block blk (vals beyond nvals read as 0). Lets storeVector skip
     * the full transpose for the dominant 8-bit-quantized layouts.
     */
    void (*packPlanes)(const uint64_t *vals, size_t nvals,
                       unsigned bits, uint64_t *planes,
                       size_t nblocks);
};

/** @name Per-tier tables (internal linkage points)
 * One per translation unit so each can carry its own -m flags; a
 * tier this build could not compile returns nullptr (the scalar
 * table never does).
 */
/// @{
const Table *scalarTable();
const Table *avx2Table();
const Table *avx512Table();
/// @}

/** Published active table; nullptr until first resolution. */
extern std::atomic<const Table *> g_active;

/** Cold path: resolve NC_SIMD against bestTier() and publish. */
const Table &resolveActive();

/** The kernel set every Array op runs (resolved lazily, once). */
inline const Table &
active()
{
    const Table *t = g_active.load(std::memory_order_acquire);
    return t ? *t : resolveActive();
}

/** Widest tier this host AND this build support. */
common::simd::Tier bestTier();

/** Tier of the currently active table. */
inline common::simd::Tier
activeTier()
{
    return active().tier;
}

/**
 * Pin dispatch to @p t (tests, benches). Fatal if the host/build
 * cannot run it, naming bestTier() — same contract as NC_SIMD.
 */
void forceTier(common::simd::Tier t);

/** Every runnable tier, narrowest first: {scalar, ..., bestTier()}. */
std::vector<common::simd::Tier> availableTiers();

} // namespace nc::sram::kern

#endif // NC_SRAM_KERNELS_HH
