/**
 * @file
 * Seeded, deterministic SRAM fault injection.
 *
 * The paper repurposes live LLC arrays as compute, and live SRAM
 * fails: manufacturing stuck-at cells, radiation-induced transient
 * flips, and whole arrays lost to peripheral defects. This module is
 * the injection half of the fault-tolerance subsystem — it decides,
 * from one seed and a handful of rates, which physical arrays carry
 * which defects, and applies them at the same sram::Array access
 * funnel the ownership race detector uses (checkRow, the one choke
 * point every conventional access and every compute micro-op passes
 * through per touched row).
 *
 * Fault semantics are "sense-time": whenever a word line is touched,
 * stuck cells clamp to their stuck value, a killed array's touched
 * row scrambles to deterministic garbage, and transient flips hit a
 * pseudo-random bit line of the touched row with the configured
 * per-touch probability. Writes can therefore momentarily store the
 * ideal value, but any later touch of the row — and every compute op
 * senses its operand rows — re-applies the defect, which is how the
 * real circuit behaves (the cell holds, the bit line lies).
 *
 * Everything is keyed by *physical* flat array index, so the
 * detection/repair layers (cache/health.hh, the ComputeCache remap)
 * can retire a physical array while the logical placement keeps its
 * indices. Determinism: all randomness is counter-mode hashing of
 * (seed, array, site, touch-count) — no global RNG state, so the same
 * configuration faults the same cells on every run and thread count.
 *
 * Cost contract: an array with no fault record carries exactly one
 * extra pointer test per touched row (the `flt` null check in
 * Array::checkRow), in release builds too — unlike the ownership
 * detector, faults must be injectable in optimized benchmarking
 * builds. With no registry configured, ComputeCache never attaches
 * records at all and the subsystem is strictly zero-state.
 */

#ifndef NC_SRAM_FAULTS_HH
#define NC_SRAM_FAULTS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sram/bitrow.hh"

namespace nc::sram::faults
{

/** One stuck-at bit cell: (row, lane) clamps to `value` on touch. */
struct StuckCell
{
    unsigned row = 0;
    unsigned lane = 0;
    bool value = false;
};

/**
 * Fault-injection configuration, carried in core::EngineOptions and
 * parseable from the NC_FAULTS environment variable. Rates are
 * per-array (stuck/kill: probability an array carries that defect)
 * or per-row-touch (transient: probability one touch flips a bit).
 */
struct Config
{
    uint64_t seed = 0xfa017;

    /** Probability an array carries one stuck-at cell. */
    double stuckRate = 0.0;
    /** Probability a touched row suffers one transient bit flip. */
    double transientRate = 0.0;
    /** Probability an array is wholly dead (scrambled on touch). */
    double killRate = 0.0;

    /** Explicitly dead physical arrays (deterministic tests/demos). */
    std::vector<uint64_t> killArrays;
    /** Explicit stuck cells by physical array index. */
    std::vector<std::pair<uint64_t, StuckCell>> stuckCells;

    /** Run the compile-time BIST march scan (retires bad arrays). */
    bool bist = true;
    /** Verify guard rows after every pass (runtime detection). */
    bool canary = true;
    /** Detect→repair→retry attempts per run/pass before dying. */
    unsigned retryBudget = 4;

    /** Whether any fault source is configured at all. */
    bool
    enabled() const
    {
        return stuckRate > 0 || transientRate > 0 || killRate > 0 ||
               !killArrays.empty() || !stuckCells.empty();
    }

};

/**
 * Overlay the NC_FAULTS environment variable onto @p base and
 * return the result. Syntax: comma-separated key=value pairs —
 * seed=N, stuck=R, transient=R, kill=R, kill_list=I:J:K,
 * bist=0|1, canary=0|1, retries=N. Malformed keys, values, or
 * rates outside [0, 1] are hard errors (nc_fatal), with the
 * nearest known key named on a typo — consistent with the strict
 * NC_THREADS/NC_DEBUG parsing.
 */
Config configFromEnv(Config base = {});

class Registry;

/**
 * The fault record of one physical array. Attached to the
 * materialized sram::Array via setFaults(); onTouch() is the hot
 * hook, called by Array::checkRow for every touched row.
 */
class ArrayFaults
{
  public:
    /** Clamp/scramble/flip @p row (cells[r] of the array). */
    void onTouch(BitRow &row, unsigned r);

    bool killed() const { return dead; }
    const std::vector<StuckCell> &stuck() const { return stuckList; }
    /** Touches recorded so far (deterministic transient counter). */
    uint64_t touches() const { return nTouches; }
    /** Whether any defect (or a pending flip) exists at all. */
    bool faulty() const;

  private:
    friend class Registry;

    uint64_t index = 0;      ///< physical flat array index
    uint64_t seed = 0;
    unsigned cols = 256;
    bool dead = false;
    double transientRate = 0.0;
    std::vector<StuckCell> stuckList;
    /** One-shot (row, lane) flips applied at the next touch. */
    std::vector<std::pair<unsigned, unsigned>> pendingFlips;
    uint64_t nTouches = 0;
};

/**
 * Per-ComputeCache fault registry: one optional ArrayFaults record
 * per physical array, fully decided at construction from the Config
 * (so the hot path never allocates or locks). Arrays whose record is
 * null are ideal and pay only the null test.
 */
class Registry
{
  public:
    Registry(const Config &cfg, uint64_t narrays, unsigned rows,
             unsigned cols);

    const Config &config() const { return cfg; }
    uint64_t arrays() const { return n; }

    /** The record of physical array @p index (null = ideal). */
    ArrayFaults *
    recordFor(uint64_t index)
    {
        return index < n ? records[index].get() : nullptr;
    }
    const ArrayFaults *
    recordFor(uint64_t index) const
    {
        return index < n ? records[index].get() : nullptr;
    }

    /** How many arrays carry any static defect (stuck or dead). */
    uint64_t staticFaultCount() const;

    /** @name Test/diagnostic injection (deterministic, targeted) */
    /// @{
    /** Mark physical array @p index dead. */
    void killArray(uint64_t index);
    /** Add a stuck-at cell to physical array @p index. */
    void addStuck(uint64_t index, unsigned row, unsigned lane,
                  bool value);
    /**
     * Schedule a one-shot transient: the next touch of physical
     * array @p index flips (row, lane). Models a mid-run soft error
     * at a deterministic point.
     */
    void injectFlip(uint64_t index, unsigned row, unsigned lane);
    /// @}

  private:
    ArrayFaults &ensureRecord(uint64_t index);

    Config cfg;
    uint64_t n = 0;
    unsigned rows = 256, cols = 256;
    std::vector<std::unique_ptr<ArrayFaults>> records;
};

} // namespace nc::sram::faults

#endif // NC_SRAM_FAULTS_HH
