/**
 * @file
 * The compute-capable 8KB SRAM array (paper Figure 3d / Figure 7).
 *
 * An Array is `rows` word lines by `cols` bit lines of bit cells plus the
 * compute column peripheral: per bit line, two single-ended sense amps
 * (BL senses A AND B, BLB senses NOR = ~A AND ~B when two word lines are
 * activated together), XOR derivation, full-adder sum/carry logic, a
 * carry latch, a tag latch, and a 4:1 write-back mux gated by the tag.
 *
 * Every op*() method models exactly one compute clock cycle: a sensing
 * half-cycle (read word lines at lowered voltage) and a write-back
 * half-cycle (one write word line). Conventional readRow()/writeRow()
 * model one access clock cycle each. The class counts both so callers
 * can convert to time and energy with sram::TimingParams/EnergyParams.
 *
 * Predication: ops taking a `pred` flag only commit their write-back in
 * lanes whose tag latch holds 1; other lanes keep their stored value.
 * The carry latch is updated unconditionally — sequences that use
 * predication must re-initialize carry with carrySet() (free: the preset
 * is part of the next issued micro-op's control word), exactly as the
 * multiplication walk-through in the paper does.
 *
 * Implementation: every op is a single allocation-free pass over the
 * operand rows' 64-bit words — sense, logic, and predicated write-back
 * fuse into one width-templated kernel (sram/kernels.hh) running 64,
 * 256, or 512 lanes per iteration depending on the SIMD tier chosen
 * at startup (CPUID, NC_SIMD override); carry and predicate lanes
 * stay in-register across the pass. A bit-by-bit reference
 * implementation of the same semantics remains available behind
 * setReferenceMode(true); differential tests and the perf_report
 * baseline run it to pin the fast kernels at every tier (state,
 * latches, and cycle counts must match exactly).
 */

#ifndef NC_SRAM_ARRAY_HH
#define NC_SRAM_ARRAY_HH

#include <cstdint>
#include <vector>

#include "sram/bitrow.hh"

namespace nc::sram
{

namespace ownership
{
class Registry;
}

namespace kern
{
enum class Logic2;
enum class TagFold;
}

namespace faults
{
class ArrayFaults;
}

/** One compute-capable SRAM array. Default geometry: 256 x 256 (8KB). */
class Array
{
  public:
    explicit Array(unsigned rows_ = 256, unsigned cols_ = 256);

    unsigned rows() const { return nrows; }
    unsigned cols() const { return ncols; }
    /** Capacity in bytes. */
    uint64_t sizeBytes() const { return uint64_t(nrows) * ncols / 8; }

    /** @name Conventional SRAM mode (1 access cycle each) */
    /// @{
    BitRow readRow(unsigned r);
    void writeRow(unsigned r, const BitRow &row);
    /// @}

    /** @name Zero-cost debug access (test instrumentation, no cycles) */
    /// @{
    const BitRow &rowRef(unsigned r) const;
    /** Mutable row access for cycle-free data movement (layout.cc). */
    BitRow &rowMut(unsigned r);
    bool peek(unsigned r, unsigned lane) const;
    void poke(unsigned r, unsigned lane, bool v);
    /// @}

    /** @name Compute micro-ops (1 compute cycle each) */
    /// @{
    /** dst <= A AND B (BL sense). */
    void opAnd(unsigned ra, unsigned rb, unsigned dst, bool pred = false);
    /** dst <= A NOR B (BLB sense). */
    void opNor(unsigned ra, unsigned rb, unsigned dst, bool pred = false);
    /** dst <= A OR B (inverted BLB). */
    void opOr(unsigned ra, unsigned rb, unsigned dst, bool pred = false);
    /** dst <= A XOR B (NOR of the two sensed values). */
    void opXor(unsigned ra, unsigned rb, unsigned dst, bool pred = false);
    /** dst <= A XNOR B. */
    void opXnor(unsigned ra, unsigned rb, unsigned dst, bool pred = false);

    /**
     * Full-adder cycle: dst <= A ^ B ^ carry; carry latch <= majority.
     * This is the workhorse of bit-serial arithmetic (paper Figure 4).
     */
    void opAdd(unsigned ra, unsigned rb, unsigned dst, bool pred = false);

    /** dst <= src (single-row activation, write-back of BL). */
    void opCopy(unsigned src, unsigned dst, bool pred = false);
    /** dst <= NOT src (write-back of BLB). */
    void opCopyInv(unsigned src, unsigned dst, bool pred = false);
    /** dst <= 0 in selected lanes (bit-line driver forced low). */
    void opZero(unsigned dst, bool pred = false);
    /** dst <= 1 in selected lanes. */
    void opOnes(unsigned dst, bool pred = false);

    /** Tag latch <= row / NOT row / tag AND row / tag AND NOT row. */
    void opLoadTag(unsigned r);
    void opLoadTagInv(unsigned r);
    void opTagAnd(unsigned r);
    void opTagAndInv(unsigned r);
    /** Tag latch <= tag OR row (overflow detection folds). */
    void opTagOr(unsigned r);
    /**
     * Tag latch <= tag AND (A XNOR B): the equality fold used by
     * Compute Cache's comparison/search modes — the XNOR is already
     * available at the peripheral as BL OR BLB.
     */
    void opTagAndXnor(unsigned ra, unsigned rb);
    /**
     * Tag latch <= carry latch, optionally inverted (captures the final
     * carry of a subtraction as a lane-wise a >= b / a < b mask).
     */
    void opLoadTagFromCarry(bool invert = false);
    /** dst <= tag latch. */
    void opStoreTag(unsigned dst, bool pred = false);
    /** dst <= carry latch (finishes an addition, paper "n+1"th cycle). */
    void opStoreCarry(unsigned dst, bool pred = false);

    /**
     * dst <= src moved down @p shift bit lines (lane i takes lane
     * i+shift; vacated lanes read 0). Models word-line moves through
     * the column mux / sense-amp cycling used by reductions (paper
     * Figure 5 and [Cache Automaton]); costs @p cycles compute cycles
     * (default 2: one sense phase, one drive phase).
     */
    void opLaneShift(unsigned src, unsigned dst, unsigned shift,
                     unsigned cycles = 2);
    /// @}

    /**
     * Preset the carry latch in every lane. Free of cycle cost: the
     * preset travels with the control word of the next issued op.
     */
    void carrySet(bool v);
    /** Preset the tag latch in every lane (also free). */
    void tagSet(bool v);

    const BitRow &carry() const { return carryLatch; }
    const BitRow &tag() const { return tagLatch; }

    /** @name Cycle accounting */
    /// @{
    uint64_t computeCycles() const { return nComputeCycles; }
    uint64_t accessCycles() const { return nAccessCycles; }
    void resetCycles();
    /**
     * Merge cycle counts measured elsewhere into this array's
     * counters. The parallel executor runs independent work items on
     * task-private arrays and reduces their counts into the modeled
     * array after the join, so aggregate cycle/energy statistics are
     * identical to a serial run (sums are order-independent).
     */
    void chargeCycles(uint64_t compute, uint64_t access);
    /// @}

    /**
     * Switch to the bit-by-bit reference implementation of every
     * micro-op (identical architectural semantics and cycle counts,
     * roughly an order of magnitude slower). Differential tests
     * compare the two paths; bench/perf_report uses the reference
     * path as its scalar baseline.
     */
    void setReferenceMode(bool on) { refMode = on; }
    bool referenceMode() const { return refMode; }

    /**
     * Attach the array-ownership race detector: every subsequent
     * state access verifies the calling task owns flat array
     * @p flat_index in @p reg (see sram/ownership.hh). ComputeCache
     * tags its arrays at materialization in debug builds; standalone
     * arrays (unit tests, task-private pooling scratch) stay
     * untagged and unchecked. No-op under NDEBUG.
     */
    void setOwnership(ownership::Registry *reg, uint64_t flat_index);

    /**
     * Attach a fault-injection record (sram/faults.hh): every
     * subsequent touch of a word line re-applies the record's
     * defects to it before the access proceeds. Unlike the ownership
     * detector this is live in release builds — faults must be
     * injectable under the optimized kernels — but an array without
     * a record (the configured-but-ideal case) pays exactly one
     * pointer test per touched row, and nothing at all reaches here
     * when no registry is configured.
     */
    void setFaults(faults::ArrayFaults *rec) { flt = rec; }
    const faults::ArrayFaults *faultRecord() const { return flt; }

  private:
    /** Sense phase of a dual-row activation (reference path). */
    struct Sensed
    {
        BitRow bl;  ///< A AND B
        BitRow blb; ///< ~A AND ~B
    };
    Sensed sense(unsigned ra, unsigned rb) const;

    /** Commit @p value to @p dst honouring predication (reference). */
    void writeBack(unsigned dst, const BitRow &value, bool pred);

    /** @name Reference-mode op bodies
     * Kept out of line (noinline in array.cc): their BitRow
     * temporaries otherwise inflate the hot ops' stack frames and
     * prologues, which costs more than the fused kernel call itself
     * on the default 4-word geometry.
     */
    /// @{
    void refFused2(unsigned ra, unsigned rb, unsigned dst, bool pred,
                   kern::Logic2 op);
    void refAdd(unsigned ra, unsigned rb, unsigned dst, bool pred);
    void refCopy(unsigned src, unsigned dst, bool pred, bool invert);
    /// @}

    /**
     * Fused sense + logic + predicated write-back: one pass over the
     * operand words through the active SIMD kernel table
     * (sram/kernels.hh). @p op selects how the two sensed rows
     * combine into the value to commit.
     */
    void fused2(unsigned ra, unsigned rb, unsigned dst, bool pred,
                kern::Logic2 op);

    /** Single-source variant (optionally inverting the sense). */
    void fused1(unsigned src, unsigned dst, bool pred, bool invert);

    /** @name Cold bodies of the fused ops
     * One predicted-not-taken branch in each hot op funnels every
     * non-steady-state case here (first-op dispatch resolution,
     * fault re-application, programming-error asserts), keeping the
     * hot bodies frameless so the kernel is a sibling call.
     */
    /// @{
    void fused2Slow(unsigned ra, unsigned rb, unsigned dst, bool pred,
                    kern::Logic2 op);
    void fused1Slow(unsigned src, unsigned dst, bool pred,
                    bool invert);
    void opAddSlow(unsigned ra, unsigned rb, unsigned dst, bool pred);
    /// @}

    /** Commit the constant word @p v to every word of @p dst. */
    void fusedImm(unsigned dst, bool pred, uint64_t v);

    /** Predicated write-back of a latch row (tag/carry) into @p dst. */
    void fusedLatchStore(const BitRow &src, unsigned dst, bool pred);

    /** tag <= fold(tag, row r), word-wise (the tag-fold family). */
    void fusedTag(unsigned r, kern::TagFold op);

    /** dst latch <= src (row or latch), optionally inverted. */
    static void loadLatch(BitRow &dst, const BitRow &src, bool invert);

    void checkRow(unsigned r) const;
    /**
     * checkRow for the row set of one fused op, folded into a single
     * fault-hook branch (kNoTouch entries are skipped). The hot ops
     * touch two or three rows each; three separate checkRow calls
     * triple the pointer tests on the ideal-array fast path.
     */
    static constexpr unsigned kNoTouch = ~0u;
    void touchRows(unsigned ra, unsigned rb = kNoTouch,
                   unsigned dst = kNoTouch) const;
    /** Ownership-detector gate on every state access (debug only). */
    void checkOwner() const;
    /** Cold path of the fault hook (out of line; checkRow branches). */
    void applyFaults(unsigned r) const;

    unsigned nrows;
    unsigned ncols;
    /**
     * Row geometry, cached once: every row (and both latches) of
     * this array shares the same word count and tail mask, and the
     * fused ops are hot enough that re-deriving them per op from the
     * BitRow costs measurable time.
     */
    size_t nwords;
    uint64_t tmask;
    std::vector<BitRow> cells;
    BitRow carryLatch;
    BitRow tagLatch;
    uint64_t nComputeCycles = 0;
    uint64_t nAccessCycles = 0;
    bool refMode = false;
    ownership::Registry *ownReg = nullptr; ///< null: unchecked
    uint64_t ownIdx = 0;                   ///< flat index in ownReg
    faults::ArrayFaults *flt = nullptr;    ///< null: ideal array
};

} // namespace nc::sram

#endif // NC_SRAM_ARRAY_HH
