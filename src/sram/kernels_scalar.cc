// Portable kernel tier: always compiled, always available — the
// floor of the dispatch ladder and the NC_SIMD=scalar CI leg.

#include "sram/kernels_impl.hh"

namespace nc::sram::kern
{

const Table *
scalarTable()
{
    static const Table t = makeTable<ScalarB>(common::simd::Tier::Scalar);
    return &t;
}

} // namespace nc::sram::kern
