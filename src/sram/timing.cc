#include "sram/timing.hh"

// Parameter tables are header-only; this translation unit exists so the
// library has a home for future non-inline timing helpers and so the
// header is compile-checked on its own.

namespace nc::sram
{
} // namespace nc::sram
