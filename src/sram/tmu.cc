#include "sram/tmu.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nc::sram
{

TransposeUnit::TransposeUnit(unsigned rows_, unsigned cols_)
    : nrows(rows_), ncols(cols_), cells(rows_, BitRow(cols_))
{
    nc_assert(rows_ > 0 && cols_ > 0, "degenerate TMU %ux%u",
              rows_, cols_);
}

void
TransposeUnit::writeRegular(unsigned r, uint64_t value)
{
    nc_assert(r < nrows, "TMU row %u out of %u", r, nrows);
    nc_assert(ncols <= 64 || truncate(value, 64) == value,
              "value wider than TMU row");
    ++nAccessCycles;
    for (unsigned c = 0; c < std::min(ncols, 64u); ++c)
        cells[r].set(c, bit(value, c));
}

uint64_t
TransposeUnit::readRegular(unsigned r)
{
    nc_assert(r < nrows, "TMU row %u out of %u", r, nrows);
    ++nAccessCycles;
    uint64_t v = 0;
    for (unsigned c = 0; c < std::min(ncols, 64u); ++c)
        v = setBit(v, c, cells[r].get(c));
    return v;
}

void
TransposeUnit::writeTransposed(unsigned c, const BitRow &slice)
{
    nc_assert(c < ncols, "TMU col %u out of %u", c, ncols);
    nc_assert(slice.width() == nrows, "slice width %u != %u",
              slice.width(), nrows);
    ++nAccessCycles;
    for (unsigned r = 0; r < nrows; ++r)
        cells[r].set(c, slice.get(r));
}

BitRow
TransposeUnit::readTransposed(unsigned c)
{
    nc_assert(c < ncols, "TMU col %u out of %u", c, ncols);
    ++nAccessCycles;
    BitRow slice(nrows);
    for (unsigned r = 0; r < nrows; ++r)
        slice.set(r, cells[r].get(c));
    return slice;
}

uint64_t
TransposeUnit::streamCycles(uint64_t nelems, unsigned elem_bits,
                            unsigned port_bits) const
{
    if (nelems == 0)
        return 0;
    nc_assert(port_bits >= elem_bits, "bus beat narrower than element");
    // Each batch of `nrows` elements needs nrows*elem_bits bits
    // through the regular port (port_bits per cycle) and `elem_bits`
    // bit-slice cycles out of the transposed port; batches pipeline,
    // so steady state costs the slower port per batch, plus one
    // drain of the faster one at the end.
    uint64_t batches = divCeil(nelems, nrows);
    uint64_t fill = divCeil(uint64_t(nrows) * elem_bits, port_bits);
    uint64_t per = std::max<uint64_t>(fill, elem_bits);
    uint64_t tail = std::min<uint64_t>(fill, elem_bits);
    return batches * per + tail;
}

std::vector<BitRow>
TransposeUnit::transposeElements(const std::vector<uint64_t> &elems,
                                 unsigned elem_bits, unsigned lanes)
{
    nc_assert(elems.size() <= lanes,
              "%zu elements exceed %u lanes", elems.size(), lanes);
    nc_assert(elem_bits >= 1 && elem_bits <= 64,
              "unsupported element width %u", elem_bits);
    std::vector<BitRow> slices(elem_bits, BitRow(lanes));
    for (unsigned i = 0; i < elems.size(); ++i)
        for (unsigned b = 0; b < elem_bits; ++b)
            slices[b].set(i, bit(elems[i], b));
    return slices;
}

std::vector<uint64_t>
TransposeUnit::untransposeElements(const std::vector<BitRow> &slices,
                                   unsigned elem_bits)
{
    nc_assert(!slices.empty(), "no slices to untranspose");
    nc_assert(elem_bits <= slices.size(),
              "asked for %u bits from %zu slices", elem_bits,
              slices.size());
    unsigned lanes = slices[0].width();
    std::vector<uint64_t> elems(lanes, 0);
    for (unsigned i = 0; i < lanes; ++i)
        for (unsigned b = 0; b < elem_bits; ++b)
            elems[i] = setBit(elems[i], b, slices[b].get(i));
    return elems;
}

} // namespace nc::sram
