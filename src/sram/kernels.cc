// Runtime dispatch over the per-tier kernel tables: resolve once
// (CPUID best tier, NC_SIMD override), publish the chosen table, and
// let tests/benches pin tiers explicitly.

#include "sram/kernels.hh"

#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"

namespace nc::sram::kern
{

namespace
{

using common::simd::Tier;

const Table *
tableFor(Tier t)
{
    switch (t) {
    case Tier::Scalar:
        return scalarTable();
    case Tier::Avx2:
        return avx2Table();
    case Tier::Avx512:
        return avx512Table();
    }
    return scalarTable();
}

} // namespace

constinit std::atomic<const Table *> g_active{nullptr};

common::simd::Tier
bestTier()
{
    // The ladder is monotonic in both dimensions — a CPU with a tier
    // has every lower one, and a build with a tier's TU compiled has
    // every lower TU — so "best" is the min of the two heights.
    static const Tier best = [] {
        Tier cpu = common::simd::cpuBestTier();
        Tier b = Tier::Scalar;
        if (avx2Table() && cpu >= Tier::Avx2)
            b = Tier::Avx2;
        if (avx512Table() && cpu >= Tier::Avx512)
            b = Tier::Avx512;
        return b;
    }();
    return best;
}

const Table &
resolveActive()
{
    // First compute op of the process (or the first after a test
    // reset): a typo'd NC_* knob dies before any kernel runs, then
    // NC_SIMD picks the tier (strictly — see common/simd.hh).
    common::checkEnvOnce();
    Tier t = common::simd::resolveTierSpec(std::getenv("NC_SIMD"),
                                           bestTier());
    const Table *tb = tableFor(t);
    g_active.store(tb, std::memory_order_release);
    return *tb;
}

void
forceTier(common::simd::Tier t)
{
    if (t > bestTier())
        nc_fatal("SIMD tier '%s' is not available on this host/build "
                 "(best tier: %s)",
                 common::simd::tierName(t),
                 common::simd::tierName(bestTier()));
    g_active.store(tableFor(t), std::memory_order_release);
}

std::vector<common::simd::Tier>
availableTiers()
{
    std::vector<common::simd::Tier> out;
    for (int t = 0; t <= static_cast<int>(bestTier()); ++t)
        out.push_back(static_cast<common::simd::Tier>(t));
    return out;
}

} // namespace nc::sram::kern
