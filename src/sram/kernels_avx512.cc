// AVX-512 kernel tier (F+BW+VL: the pass bodies need 512-bit logic,
// VPMOVB2M byte masks, and 256-bit VPTERNLOGQ for the remainder
// kernels). This TU alone is compiled with -mavx512f -mavx512bw
// -mavx512vl; see kernels_avx2.cc for the dispatch rationale.

#include "sram/kernels_impl.hh"

namespace nc::sram::kern
{

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

const Table *
avx512Table()
{
    static const Table t =
        makeTable<Avx512B>(common::simd::Tier::Avx512);
    return &t;
}

#else

const Table *
avx512Table()
{
    return nullptr;
}

#endif

} // namespace nc::sram::kern
