#include "sram/array.hh"

#include "common/logging.hh"

namespace nc::sram
{

Array::Array(unsigned rows_, unsigned cols_)
    : nrows(rows_), ncols(cols_), cells(rows_, BitRow(cols_)),
      carryLatch(cols_), tagLatch(cols_)
{
    nc_assert(rows_ > 0 && cols_ > 0, "degenerate array %ux%u",
              rows_, cols_);
}

void
Array::checkRow(unsigned r) const
{
    nc_assert(r < nrows, "row %u out of %u", r, nrows);
}

BitRow
Array::readRow(unsigned r)
{
    checkRow(r);
    ++nAccessCycles;
    return cells[r];
}

void
Array::writeRow(unsigned r, const BitRow &row)
{
    checkRow(r);
    nc_assert(row.width() == ncols, "row width %u != %u",
              row.width(), ncols);
    ++nAccessCycles;
    cells[r] = row;
}

const BitRow &
Array::rowRef(unsigned r) const
{
    checkRow(r);
    return cells[r];
}

bool
Array::peek(unsigned r, unsigned lane) const
{
    checkRow(r);
    return cells[r].get(lane);
}

void
Array::poke(unsigned r, unsigned lane, bool v)
{
    checkRow(r);
    cells[r].set(lane, v);
}

Array::Sensed
Array::sense(unsigned ra, unsigned rb) const
{
    checkRow(ra);
    checkRow(rb);
    nc_assert(ra != rb, "dual activation of the same word line %u", ra);
    const BitRow &a = cells[ra];
    const BitRow &b = cells[rb];
    return Sensed{a & b, ~a & ~b};
}

void
Array::writeBack(unsigned dst, const BitRow &value, bool pred)
{
    checkRow(dst);
    if (pred)
        cells[dst].mergeFrom(value, tagLatch);
    else
        cells[dst] = value;
}

void
Array::opAnd(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    writeBack(dst, sense(ra, rb).bl, pred);
}

void
Array::opNor(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    writeBack(dst, sense(ra, rb).blb, pred);
}

void
Array::opOr(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    writeBack(dst, ~sense(ra, rb).blb, pred);
}

void
Array::opXor(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    Sensed s = sense(ra, rb);
    writeBack(dst, ~(s.bl | s.blb), pred);
}

void
Array::opXnor(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    Sensed s = sense(ra, rb);
    writeBack(dst, s.bl | s.blb, pred);
}

void
Array::opAdd(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    Sensed s = sense(ra, rb);
    BitRow axb = ~(s.bl | s.blb);            // A XOR B
    BitRow sum = axb ^ carryLatch;           // A ^ B ^ Cin
    BitRow cout = s.bl | (axb & carryLatch); // A&B + (A^B)&Cin
    writeBack(dst, sum, pred);
    carryLatch = cout;
}

void
Array::opCopy(unsigned src, unsigned dst, bool pred)
{
    checkRow(src);
    ++nComputeCycles;
    writeBack(dst, cells[src], pred);
}

void
Array::opCopyInv(unsigned src, unsigned dst, bool pred)
{
    checkRow(src);
    ++nComputeCycles;
    writeBack(dst, ~cells[src], pred);
}

void
Array::opZero(unsigned dst, bool pred)
{
    ++nComputeCycles;
    writeBack(dst, BitRow(ncols, false), pred);
}

void
Array::opOnes(unsigned dst, bool pred)
{
    ++nComputeCycles;
    writeBack(dst, BitRow(ncols, true), pred);
}

void
Array::opLoadTag(unsigned r)
{
    checkRow(r);
    ++nComputeCycles;
    tagLatch = cells[r];
}

void
Array::opLoadTagInv(unsigned r)
{
    checkRow(r);
    ++nComputeCycles;
    tagLatch = ~cells[r];
}

void
Array::opTagAnd(unsigned r)
{
    checkRow(r);
    ++nComputeCycles;
    tagLatch = tagLatch & cells[r];
}

void
Array::opTagAndInv(unsigned r)
{
    checkRow(r);
    ++nComputeCycles;
    tagLatch = tagLatch & ~cells[r];
}

void
Array::opTagOr(unsigned r)
{
    checkRow(r);
    ++nComputeCycles;
    tagLatch = tagLatch | cells[r];
}

void
Array::opTagAndXnor(unsigned ra, unsigned rb)
{
    ++nComputeCycles;
    Sensed s = sense(ra, rb);
    tagLatch = tagLatch & (s.bl | s.blb);
}

void
Array::opLoadTagFromCarry(bool invert)
{
    ++nComputeCycles;
    tagLatch = invert ? ~carryLatch : carryLatch;
}

void
Array::opStoreTag(unsigned dst, bool pred)
{
    ++nComputeCycles;
    writeBack(dst, tagLatch, pred);
}

void
Array::opStoreCarry(unsigned dst, bool pred)
{
    ++nComputeCycles;
    writeBack(dst, carryLatch, pred);
}

void
Array::opLaneShift(unsigned src, unsigned dst, unsigned shift,
                   unsigned cycles)
{
    checkRow(src);
    checkRow(dst);
    nComputeCycles += cycles;
    cells[dst] = cells[src].shiftedDown(shift);
}

void
Array::carrySet(bool v)
{
    carryLatch.fill(v);
}

void
Array::tagSet(bool v)
{
    tagLatch.fill(v);
}

void
Array::resetCycles()
{
    nComputeCycles = 0;
    nAccessCycles = 0;
}

} // namespace nc::sram
