#include "sram/array.hh"

#include "common/logging.hh"
#include "sram/faults.hh"
#include "sram/kernels.hh"
#include "sram/ownership.hh"

namespace nc::sram
{

Array::Array(unsigned rows_, unsigned cols_)
    : nrows(rows_), ncols(cols_), nwords((cols_ + 63) / 64),
      tmask(cols_ % 64 ? (uint64_t(1) << (cols_ % 64)) - 1
                       : ~uint64_t(0)),
      cells(rows_, BitRow(cols_)), carryLatch(cols_), tagLatch(cols_)
{
    nc_assert(rows_ > 0 && cols_ > 0, "degenerate array %ux%u",
              rows_, cols_);
}

void
Array::touchRows(unsigned ra, unsigned rb, unsigned dst) const
{
    nc_dassert(ra < nrows, "row %u out of %u", ra, nrows);
    nc_dassert(rb == kNoTouch || rb < nrows, "row %u out of %u", rb,
               nrows);
    nc_dassert(dst == kNoTouch || dst < nrows, "row %u out of %u",
               dst, nrows);
    checkOwner();
    if (flt) {
        applyFaults(ra);
        if (rb != kNoTouch)
            applyFaults(rb);
        if (dst != kNoTouch)
            applyFaults(dst);
    }
}

void
Array::checkRow(unsigned r) const
{
    nc_dassert(r < nrows, "row %u out of %u", r, nrows);
    checkOwner();
    // The fault-injection hook: the whole cost of an unfaulted array
    // is this one pointer test (live in release builds, unlike the
    // ownership gate above — see sram/faults.hh).
    if (flt)
        applyFaults(r);
    (void)r;
}

void
Array::applyFaults(unsigned r) const
{
    // checkRow is const because reads funnel through it, but fault
    // application mutates the touched cells by design (stuck clamps,
    // scrambles, flips are array state, not observer state).
    auto *self = const_cast<Array *>(this);
    self->flt->onTouch(self->cells[r], r);
}

void
Array::checkOwner() const
{
#ifndef NDEBUG
    if (ownReg)
        ownReg->checkAccess(ownIdx);
#endif
}

void
Array::setOwnership(ownership::Registry *reg, uint64_t flat_index)
{
#ifndef NDEBUG
    ownReg = reg;
    ownIdx = flat_index;
#else
    (void)reg;
    (void)flat_index;
#endif
}

BitRow
Array::readRow(unsigned r)
{
    checkRow(r);
    ++nAccessCycles;
    return cells[r];
}

void
Array::writeRow(unsigned r, const BitRow &row)
{
    checkRow(r);
    nc_assert(row.width() == ncols, "row width %u != %u",
              row.width(), ncols);
    ++nAccessCycles;
    cells[r] = row;
}

const BitRow &
Array::rowRef(unsigned r) const
{
    checkRow(r);
    return cells[r];
}

BitRow &
Array::rowMut(unsigned r)
{
    checkRow(r);
    return cells[r];
}

bool
Array::peek(unsigned r, unsigned lane) const
{
    checkRow(r);
    return cells[r].get(lane);
}

void
Array::poke(unsigned r, unsigned lane, bool v)
{
    checkRow(r);
    cells[r].set(lane, v);
}

Array::Sensed
Array::sense(unsigned ra, unsigned rb) const
{
    checkRow(ra);
    checkRow(rb);
    nc_assert(ra != rb, "dual activation of the same word line %u", ra);
    const BitRow &a = cells[ra];
    const BitRow &b = cells[rb];
    return Sensed{a & b, ~a & ~b};
}

void
Array::writeBack(unsigned dst, const BitRow &value, bool pred)
{
    checkRow(dst);
    if (pred)
        cells[dst].mergeFrom(value, tagLatch);
    else
        cells[dst] = value;
}

void
Array::fused2(unsigned ra, unsigned rb, unsigned dst, bool pred,
              kern::Logic2 op)
{
    // Hot shape: everything that cannot happen on a resolved,
    // unfaulted array (first-op dispatch, fault re-application, the
    // same-row programming error) funnels through one predicted-
    // not-taken branch into the out-of-line slow body, and the
    // kernel is reached by a frameless sibling call — the per-op
    // wrapper cost is otherwise comparable to the pass itself on
    // the default 4-word geometry.
    const kern::Table *t = kern::g_active.load(std::memory_order_acquire);
    if (!t || flt || ra == rb) [[unlikely]]
        return fused2Slow(ra, rb, dst, pred, op);
    nc_dassert(ra < nrows && rb < nrows && dst < nrows,
               "row out of %u", nrows);
    checkOwner();
    if (pred)
        t->logic2Pred(op, cells[ra].wordData(), cells[rb].wordData(),
                      cells[dst].wordData(), tagLatch.wordData(),
                      nwords, tmask);
    else
        t->logic2(op, cells[ra].wordData(), cells[rb].wordData(),
                  cells[dst].wordData(), nwords, tmask);
}

[[gnu::noinline]] void
Array::fused2Slow(unsigned ra, unsigned rb, unsigned dst, bool pred,
                  kern::Logic2 op)
{
    touchRows(ra, rb, dst);
    nc_assert(ra != rb, "dual activation of the same word line %u", ra);
    const kern::Table &t = kern::active();
    if (pred)
        t.logic2Pred(op, cells[ra].wordData(), cells[rb].wordData(),
                     cells[dst].wordData(), tagLatch.wordData(),
                     nwords, tmask);
    else
        t.logic2(op, cells[ra].wordData(), cells[rb].wordData(),
                 cells[dst].wordData(), nwords, tmask);
}

void
Array::fused1(unsigned src, unsigned dst, bool pred, bool invert)
{
    const kern::Table *t = kern::g_active.load(std::memory_order_acquire);
    if (!t || flt) [[unlikely]]
        return fused1Slow(src, dst, pred, invert);
    nc_dassert(src < nrows && dst < nrows, "row out of %u", nrows);
    checkOwner();
    if (pred)
        t->copyPred(cells[src].wordData(), cells[dst].wordData(),
                    tagLatch.wordData(), nwords, tmask, invert);
    else
        t->copy(cells[src].wordData(), cells[dst].wordData(), nwords,
                tmask, invert);
}

[[gnu::noinline]] void
Array::fused1Slow(unsigned src, unsigned dst, bool pred, bool invert)
{
    touchRows(src, dst);
    const kern::Table &t = kern::active();
    if (pred)
        t.copyPred(cells[src].wordData(), cells[dst].wordData(),
                   tagLatch.wordData(), nwords, tmask, invert);
    else
        t.copy(cells[src].wordData(), cells[dst].wordData(), nwords,
               tmask, invert);
}

void
Array::fusedImm(unsigned dst, bool pred, uint64_t v)
{
    touchRows(dst);
    const kern::Table &t = kern::active();
    if (pred)
        t.immPred(v, cells[dst].wordData(), tagLatch.wordData(),
                  nwords, tmask);
    else
        t.imm(v, cells[dst].wordData(), nwords, tmask);
}

void
Array::fusedLatchStore(const BitRow &src, unsigned dst, bool pred)
{
    touchRows(dst);
    // src is a latch row: its tail lanes are already zero.
    const kern::Table &t = kern::active();
    if (pred)
        t.latchStorePred(src.wordData(), cells[dst].wordData(),
                         tagLatch.wordData(), nwords);
    else
        t.latchStore(src.wordData(), cells[dst].wordData(), nwords);
}

void
Array::fusedTag(unsigned r, kern::TagFold op)
{
    touchRows(r);
    kern::active().tagFold(op, tagLatch.wordData(),
                           cells[r].wordData(), nwords);
}

void
Array::loadLatch(BitRow &dst, const BitRow &src, bool invert)
{
    kern::active().loadLatch(dst.wordData(), src.wordData(),
                             dst.wordCount(), dst.tailMask(), invert);
}

[[gnu::noinline]] void
Array::refFused2(unsigned ra, unsigned rb, unsigned dst, bool pred,
                 kern::Logic2 op)
{
    Sensed s = sense(ra, rb);
    switch (op) {
    case kern::Logic2::And:
        writeBack(dst, s.bl, pred);
        break;
    case kern::Logic2::Nor:
        writeBack(dst, s.blb, pred);
        break;
    case kern::Logic2::Or:
        writeBack(dst, ~s.blb, pred);
        break;
    case kern::Logic2::Xor:
        writeBack(dst, ~(s.bl | s.blb), pred);
        break;
    case kern::Logic2::Xnor:
        writeBack(dst, s.bl | s.blb, pred);
        break;
    }
}

[[gnu::noinline]] void
Array::refAdd(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    Sensed s = sense(ra, rb);
    BitRow axb = ~(s.bl | s.blb);            // A XOR B
    BitRow sum = axb ^ carryLatch;           // A ^ B ^ Cin
    BitRow cout = s.bl | (axb & carryLatch); // A&B + (A^B)&Cin
    writeBack(dst, sum, pred);
    carryLatch = cout;
}

[[gnu::noinline]] void
Array::refCopy(unsigned src, unsigned dst, bool pred, bool invert)
{
    checkRow(src);
    if (invert)
        writeBack(dst, ~cells[src], pred);
    else
        writeBack(dst, cells[src], pred);
}

void
Array::opAnd(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) [[unlikely]]
        return refFused2(ra, rb, dst, pred, kern::Logic2::And);
    fused2(ra, rb, dst, pred, kern::Logic2::And);
}

void
Array::opNor(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) [[unlikely]]
        return refFused2(ra, rb, dst, pred, kern::Logic2::Nor);
    fused2(ra, rb, dst, pred, kern::Logic2::Nor);
}

void
Array::opOr(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) [[unlikely]]
        return refFused2(ra, rb, dst, pred, kern::Logic2::Or);
    fused2(ra, rb, dst, pred, kern::Logic2::Or);
}

void
Array::opXor(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) [[unlikely]]
        return refFused2(ra, rb, dst, pred, kern::Logic2::Xor);
    fused2(ra, rb, dst, pred, kern::Logic2::Xor);
}

void
Array::opXnor(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) [[unlikely]]
        return refFused2(ra, rb, dst, pred, kern::Logic2::Xnor);
    fused2(ra, rb, dst, pred, kern::Logic2::Xnor);
}

void
Array::opAdd(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    // Sum write-back honours predication; the carry latch updates
    // unconditionally, exactly like the hardware's full-adder cycle.
    // Operand chunks are read before the destination chunk is
    // written, so dst may alias ra or rb (in-place accumulation).
    // Hot shape mirrors fused2: one cold branch, sibling call.
    const kern::Table *t = kern::g_active.load(std::memory_order_acquire);
    if (refMode || !t || flt || ra == rb) [[unlikely]]
        return opAddSlow(ra, rb, dst, pred);
    nc_dassert(ra < nrows && rb < nrows && dst < nrows,
               "row out of %u", nrows);
    checkOwner();
    if (pred)
        t->addPred(cells[ra].wordData(), cells[rb].wordData(),
                   cells[dst].wordData(), carryLatch.wordData(),
                   tagLatch.wordData(), nwords, tmask);
    else
        t->add(cells[ra].wordData(), cells[rb].wordData(),
               cells[dst].wordData(), carryLatch.wordData(), nwords,
               tmask);
}

[[gnu::noinline]] void
Array::opAddSlow(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    if (refMode)
        return refAdd(ra, rb, dst, pred);
    touchRows(ra, rb, dst);
    nc_assert(ra != rb, "dual activation of the same word line %u", ra);
    const kern::Table &t = kern::active();
    if (pred)
        t.addPred(cells[ra].wordData(), cells[rb].wordData(),
                  cells[dst].wordData(), carryLatch.wordData(),
                  tagLatch.wordData(), nwords, tmask);
    else
        t.add(cells[ra].wordData(), cells[rb].wordData(),
              cells[dst].wordData(), carryLatch.wordData(), nwords,
              tmask);
}

void
Array::opCopy(unsigned src, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) [[unlikely]]
        return refCopy(src, dst, pred, /*invert=*/false);
    fused1(src, dst, pred, /*invert=*/false);
}

void
Array::opCopyInv(unsigned src, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) [[unlikely]]
        return refCopy(src, dst, pred, /*invert=*/true);
    fused1(src, dst, pred, /*invert=*/true);
}

void
Array::opZero(unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, BitRow(ncols, false), pred);
        return;
    }
    fusedImm(dst, pred, 0);
}

void
Array::opOnes(unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, BitRow(ncols, true), pred);
        return;
    }
    fusedImm(dst, pred, ~uint64_t(0));
}

void
Array::opLoadTag(unsigned r)
{
    checkRow(r);
    ++nComputeCycles;
    tagLatch = cells[r];
}

void
Array::opLoadTagInv(unsigned r)
{
    checkRow(r);
    ++nComputeCycles;
    if (refMode) {
        tagLatch = ~cells[r];
        return;
    }
    loadLatch(tagLatch, cells[r], /*invert=*/true);
}

void
Array::opTagAnd(unsigned r)
{
    ++nComputeCycles;
    if (refMode) {
        checkRow(r);
        tagLatch = tagLatch & cells[r];
        return;
    }
    fusedTag(r, kern::TagFold::And);
}

void
Array::opTagAndInv(unsigned r)
{
    ++nComputeCycles;
    if (refMode) {
        checkRow(r);
        tagLatch = tagLatch & ~cells[r];
        return;
    }
    fusedTag(r, kern::TagFold::AndInv);
}

void
Array::opTagOr(unsigned r)
{
    ++nComputeCycles;
    if (refMode) {
        checkRow(r);
        tagLatch = tagLatch | cells[r];
        return;
    }
    fusedTag(r, kern::TagFold::Or);
}

void
Array::opTagAndXnor(unsigned ra, unsigned rb)
{
    ++nComputeCycles;
    if (refMode) {
        Sensed s = sense(ra, rb);
        tagLatch = tagLatch & (s.bl | s.blb);
        return;
    }
    touchRows(ra, rb);
    nc_assert(ra != rb, "dual activation of the same word line %u", ra);
    kern::active().tagAndXnor(tagLatch.wordData(),
                              cells[ra].wordData(),
                              cells[rb].wordData(), nwords);
}

void
Array::opLoadTagFromCarry(bool invert)
{
    ++nComputeCycles;
    if (refMode) {
        tagLatch = invert ? ~carryLatch : carryLatch;
        return;
    }
    loadLatch(tagLatch, carryLatch, invert);
}

void
Array::opStoreTag(unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, tagLatch, pred);
        return;
    }
    fusedLatchStore(tagLatch, dst, pred);
}

void
Array::opStoreCarry(unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, carryLatch, pred);
        return;
    }
    fusedLatchStore(carryLatch, dst, pred);
}

void
Array::opLaneShift(unsigned src, unsigned dst, unsigned shift,
                   unsigned cycles)
{
    checkRow(src);
    checkRow(dst);
    nComputeCycles += cycles;
    if (refMode) {
        cells[dst] = cells[src].shiftedDown(shift);
        return;
    }
    cells[dst].assignShiftedDown(cells[src], shift);
}

void
Array::carrySet(bool v)
{
    checkOwner();
    carryLatch.fill(v);
}

void
Array::tagSet(bool v)
{
    checkOwner();
    tagLatch.fill(v);
}

void
Array::resetCycles()
{
    nComputeCycles = 0;
    nAccessCycles = 0;
}

void
Array::chargeCycles(uint64_t compute, uint64_t access)
{
    checkOwner();
    nComputeCycles += compute;
    nAccessCycles += access;
}

} // namespace nc::sram
