#include "sram/array.hh"

#include "common/logging.hh"
#include "sram/faults.hh"
#include "sram/ownership.hh"

namespace nc::sram
{

Array::Array(unsigned rows_, unsigned cols_)
    : nrows(rows_), ncols(cols_), cells(rows_, BitRow(cols_)),
      carryLatch(cols_), tagLatch(cols_)
{
    nc_assert(rows_ > 0 && cols_ > 0, "degenerate array %ux%u",
              rows_, cols_);
}

void
Array::checkRow(unsigned r) const
{
    nc_dassert(r < nrows, "row %u out of %u", r, nrows);
    checkOwner();
    // The fault-injection hook: the whole cost of an unfaulted array
    // is this one pointer test (live in release builds, unlike the
    // ownership gate above — see sram/faults.hh).
    if (flt)
        applyFaults(r);
    (void)r;
}

void
Array::applyFaults(unsigned r) const
{
    // checkRow is const because reads funnel through it, but fault
    // application mutates the touched cells by design (stuck clamps,
    // scrambles, flips are array state, not observer state).
    auto *self = const_cast<Array *>(this);
    self->flt->onTouch(self->cells[r], r);
}

void
Array::checkOwner() const
{
#ifndef NDEBUG
    if (ownReg)
        ownReg->checkAccess(ownIdx);
#endif
}

void
Array::setOwnership(ownership::Registry *reg, uint64_t flat_index)
{
#ifndef NDEBUG
    ownReg = reg;
    ownIdx = flat_index;
#else
    (void)reg;
    (void)flat_index;
#endif
}

BitRow
Array::readRow(unsigned r)
{
    checkRow(r);
    ++nAccessCycles;
    return cells[r];
}

void
Array::writeRow(unsigned r, const BitRow &row)
{
    checkRow(r);
    nc_assert(row.width() == ncols, "row width %u != %u",
              row.width(), ncols);
    ++nAccessCycles;
    cells[r] = row;
}

const BitRow &
Array::rowRef(unsigned r) const
{
    checkRow(r);
    return cells[r];
}

BitRow &
Array::rowMut(unsigned r)
{
    checkRow(r);
    return cells[r];
}

bool
Array::peek(unsigned r, unsigned lane) const
{
    checkRow(r);
    return cells[r].get(lane);
}

void
Array::poke(unsigned r, unsigned lane, bool v)
{
    checkRow(r);
    cells[r].set(lane, v);
}

Array::Sensed
Array::sense(unsigned ra, unsigned rb) const
{
    checkRow(ra);
    checkRow(rb);
    nc_assert(ra != rb, "dual activation of the same word line %u", ra);
    const BitRow &a = cells[ra];
    const BitRow &b = cells[rb];
    return Sensed{a & b, ~a & ~b};
}

void
Array::writeBack(unsigned dst, const BitRow &value, bool pred)
{
    checkRow(dst);
    if (pred)
        cells[dst].mergeFrom(value, tagLatch);
    else
        cells[dst] = value;
}

template <class F>
void
Array::fused2(unsigned ra, unsigned rb, unsigned dst, bool pred, F f)
{
    checkRow(ra);
    checkRow(rb);
    checkRow(dst);
    nc_assert(ra != rb, "dual activation of the same word line %u", ra);
    const uint64_t *a = cells[ra].wordData();
    const uint64_t *b = cells[rb].wordData();
    uint64_t *d = cells[dst].wordData();
    const uint64_t *t = tagLatch.wordData();
    const size_t nw = cells[dst].wordCount();
    const uint64_t tm = cells[dst].tailMask();
    for (size_t i = 0; i < nw; ++i) {
        uint64_t v = f(a[i], b[i]);
        if (i + 1 == nw)
            v &= tm;
        d[i] = pred ? ((d[i] & ~t[i]) | (v & t[i])) : v;
    }
}

template <class F>
void
Array::fused1(unsigned src, unsigned dst, bool pred, F f)
{
    checkRow(src);
    checkRow(dst);
    const uint64_t *s = cells[src].wordData();
    uint64_t *d = cells[dst].wordData();
    const uint64_t *t = tagLatch.wordData();
    const size_t nw = cells[dst].wordCount();
    const uint64_t tm = cells[dst].tailMask();
    for (size_t i = 0; i < nw; ++i) {
        uint64_t v = f(s[i]);
        if (i + 1 == nw)
            v &= tm;
        d[i] = pred ? ((d[i] & ~t[i]) | (v & t[i])) : v;
    }
}

void
Array::fusedImm(unsigned dst, bool pred, uint64_t v)
{
    checkRow(dst);
    uint64_t *d = cells[dst].wordData();
    const uint64_t *t = tagLatch.wordData();
    const size_t nw = cells[dst].wordCount();
    const uint64_t tm = cells[dst].tailMask();
    for (size_t i = 0; i < nw; ++i) {
        uint64_t w = i + 1 == nw ? v & tm : v;
        d[i] = pred ? ((d[i] & ~t[i]) | (w & t[i])) : w;
    }
}

void
Array::fusedLatchStore(const BitRow &src, unsigned dst, bool pred)
{
    checkRow(dst);
    // src is a latch row: its tail lanes are already zero.
    const uint64_t *s = src.wordData();
    uint64_t *d = cells[dst].wordData();
    const uint64_t *t = tagLatch.wordData();
    for (size_t i = 0, nw = cells[dst].wordCount(); i < nw; ++i)
        d[i] = pred ? ((d[i] & ~t[i]) | (s[i] & t[i])) : s[i];
}

template <class F>
void
Array::fusedTag(unsigned r, F f)
{
    checkRow(r);
    const uint64_t *s = cells[r].wordData();
    uint64_t *t = tagLatch.wordData();
    for (size_t i = 0, nw = tagLatch.wordCount(); i < nw; ++i)
        t[i] = f(t[i], s[i]);
}

void
Array::loadLatch(BitRow &dst, const BitRow &src, bool invert)
{
    const uint64_t *s = src.wordData();
    uint64_t *d = dst.wordData();
    const size_t nw = dst.wordCount();
    const uint64_t tm = dst.tailMask();
    for (size_t i = 0; i < nw; ++i) {
        uint64_t v = invert ? ~s[i] : s[i];
        d[i] = i + 1 == nw ? v & tm : v;
    }
}

void
Array::opAnd(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, sense(ra, rb).bl, pred);
        return;
    }
    fused2(ra, rb, dst, pred,
           [](uint64_t a, uint64_t b) { return a & b; });
}

void
Array::opNor(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, sense(ra, rb).blb, pred);
        return;
    }
    fused2(ra, rb, dst, pred,
           [](uint64_t a, uint64_t b) { return ~a & ~b; });
}

void
Array::opOr(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, ~sense(ra, rb).blb, pred);
        return;
    }
    fused2(ra, rb, dst, pred,
           [](uint64_t a, uint64_t b) { return a | b; });
}

void
Array::opXor(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        Sensed s = sense(ra, rb);
        writeBack(dst, ~(s.bl | s.blb), pred);
        return;
    }
    fused2(ra, rb, dst, pred,
           [](uint64_t a, uint64_t b) { return a ^ b; });
}

void
Array::opXnor(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        Sensed s = sense(ra, rb);
        writeBack(dst, s.bl | s.blb, pred);
        return;
    }
    fused2(ra, rb, dst, pred,
           [](uint64_t a, uint64_t b) { return ~(a ^ b); });
}

void
Array::opAdd(unsigned ra, unsigned rb, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        Sensed s = sense(ra, rb);
        BitRow axb = ~(s.bl | s.blb);            // A XOR B
        BitRow sum = axb ^ carryLatch;           // A ^ B ^ Cin
        BitRow cout = s.bl | (axb & carryLatch); // A&B + (A^B)&Cin
        writeBack(dst, sum, pred);
        carryLatch = cout;
        return;
    }
    checkRow(ra);
    checkRow(rb);
    checkRow(dst);
    nc_assert(ra != rb, "dual activation of the same word line %u", ra);
    const uint64_t *a = cells[ra].wordData();
    const uint64_t *b = cells[rb].wordData();
    uint64_t *d = cells[dst].wordData();
    uint64_t *c = carryLatch.wordData();
    const uint64_t *t = tagLatch.wordData();
    const size_t nw = cells[dst].wordCount();
    const uint64_t tm = cells[dst].tailMask();
    // Sum write-back honours predication; the carry latch updates
    // unconditionally, exactly like the hardware's full-adder cycle.
    // Operand words are read before the destination word is written,
    // so dst may alias ra or rb (in-place accumulation).
    for (size_t i = 0; i < nw; ++i) {
        uint64_t aw = a[i], bw = b[i], cw = c[i];
        uint64_t axb = aw ^ bw;
        uint64_t sum = axb ^ cw;
        uint64_t cout = (aw & bw) | (axb & cw);
        if (i + 1 == nw) {
            sum &= tm;
            cout &= tm;
        }
        d[i] = pred ? ((d[i] & ~t[i]) | (sum & t[i])) : sum;
        c[i] = cout;
    }
}

void
Array::opCopy(unsigned src, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        checkRow(src);
        writeBack(dst, cells[src], pred);
        return;
    }
    fused1(src, dst, pred, [](uint64_t s) { return s; });
}

void
Array::opCopyInv(unsigned src, unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        checkRow(src);
        writeBack(dst, ~cells[src], pred);
        return;
    }
    fused1(src, dst, pred, [](uint64_t s) { return ~s; });
}

void
Array::opZero(unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, BitRow(ncols, false), pred);
        return;
    }
    fusedImm(dst, pred, 0);
}

void
Array::opOnes(unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, BitRow(ncols, true), pred);
        return;
    }
    fusedImm(dst, pred, ~uint64_t(0));
}

void
Array::opLoadTag(unsigned r)
{
    checkRow(r);
    ++nComputeCycles;
    tagLatch = cells[r];
}

void
Array::opLoadTagInv(unsigned r)
{
    checkRow(r);
    ++nComputeCycles;
    if (refMode) {
        tagLatch = ~cells[r];
        return;
    }
    loadLatch(tagLatch, cells[r], /*invert=*/true);
}

void
Array::opTagAnd(unsigned r)
{
    ++nComputeCycles;
    if (refMode) {
        checkRow(r);
        tagLatch = tagLatch & cells[r];
        return;
    }
    fusedTag(r, [](uint64_t t, uint64_t s) { return t & s; });
}

void
Array::opTagAndInv(unsigned r)
{
    ++nComputeCycles;
    if (refMode) {
        checkRow(r);
        tagLatch = tagLatch & ~cells[r];
        return;
    }
    fusedTag(r, [](uint64_t t, uint64_t s) { return t & ~s; });
}

void
Array::opTagOr(unsigned r)
{
    ++nComputeCycles;
    if (refMode) {
        checkRow(r);
        tagLatch = tagLatch | cells[r];
        return;
    }
    fusedTag(r, [](uint64_t t, uint64_t s) { return t | s; });
}

void
Array::opTagAndXnor(unsigned ra, unsigned rb)
{
    ++nComputeCycles;
    if (refMode) {
        Sensed s = sense(ra, rb);
        tagLatch = tagLatch & (s.bl | s.blb);
        return;
    }
    checkRow(ra);
    checkRow(rb);
    nc_assert(ra != rb, "dual activation of the same word line %u", ra);
    const uint64_t *a = cells[ra].wordData();
    const uint64_t *b = cells[rb].wordData();
    uint64_t *t = tagLatch.wordData();
    for (size_t i = 0, nw = tagLatch.wordCount(); i < nw; ++i)
        t[i] &= ~(a[i] ^ b[i]);
}

void
Array::opLoadTagFromCarry(bool invert)
{
    ++nComputeCycles;
    if (refMode) {
        tagLatch = invert ? ~carryLatch : carryLatch;
        return;
    }
    loadLatch(tagLatch, carryLatch, invert);
}

void
Array::opStoreTag(unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, tagLatch, pred);
        return;
    }
    fusedLatchStore(tagLatch, dst, pred);
}

void
Array::opStoreCarry(unsigned dst, bool pred)
{
    ++nComputeCycles;
    if (refMode) {
        writeBack(dst, carryLatch, pred);
        return;
    }
    fusedLatchStore(carryLatch, dst, pred);
}

void
Array::opLaneShift(unsigned src, unsigned dst, unsigned shift,
                   unsigned cycles)
{
    checkRow(src);
    checkRow(dst);
    nComputeCycles += cycles;
    if (refMode) {
        cells[dst] = cells[src].shiftedDown(shift);
        return;
    }
    cells[dst].assignShiftedDown(cells[src], shift);
}

void
Array::carrySet(bool v)
{
    checkOwner();
    carryLatch.fill(v);
}

void
Array::tagSet(bool v)
{
    checkOwner();
    tagLatch.fill(v);
}

void
Array::resetCycles()
{
    nComputeCycles = 0;
    nAccessCycles = 0;
}

void
Array::chargeCycles(uint64_t compute, uint64_t access)
{
    checkOwner();
    nComputeCycles += compute;
    nAccessCycles += access;
}

} // namespace nc::sram
