#include "sram/bitrow.hh"

#include <bit>

#include "common/logging.hh"

namespace nc::sram
{

BitRow::BitRow(unsigned width_, bool fill_)
    : nbits(width_), words((width_ + 63) / 64, fill_ ? ~uint64_t(0) : 0)
{
    maskTail();
}

void
BitRow::maskTail()
{
    if (!words.empty())
        words.back() &= tailMask();
}

void
BitRow::fill(bool v)
{
    for (auto &w : words)
        w = v ? ~uint64_t(0) : 0;
    maskTail();
}

unsigned
BitRow::popcount() const
{
    unsigned n = 0;
    for (auto w : words)
        n += static_cast<unsigned>(std::popcount(w));
    return n;
}

BitRow
BitRow::operator&(const BitRow &o) const
{
    nc_assert(nbits == o.nbits, "width mismatch %u vs %u", nbits, o.nbits);
    BitRow r(nbits);
    for (size_t i = 0; i < words.size(); ++i)
        r.words[i] = words[i] & o.words[i];
    return r;
}

BitRow
BitRow::operator|(const BitRow &o) const
{
    nc_assert(nbits == o.nbits, "width mismatch %u vs %u", nbits, o.nbits);
    BitRow r(nbits);
    for (size_t i = 0; i < words.size(); ++i)
        r.words[i] = words[i] | o.words[i];
    return r;
}

BitRow
BitRow::operator^(const BitRow &o) const
{
    nc_assert(nbits == o.nbits, "width mismatch %u vs %u", nbits, o.nbits);
    BitRow r(nbits);
    for (size_t i = 0; i < words.size(); ++i)
        r.words[i] = words[i] ^ o.words[i];
    return r;
}

BitRow
BitRow::operator~() const
{
    BitRow r(nbits);
    for (size_t i = 0; i < words.size(); ++i)
        r.words[i] = ~words[i];
    r.maskTail();
    return r;
}

bool
BitRow::operator==(const BitRow &o) const
{
    return nbits == o.nbits && words == o.words;
}

BitRow
BitRow::shiftedDown(unsigned shift) const
{
    BitRow r(nbits);
    r.assignShiftedDown(*this, shift);
    return r;
}

void
BitRow::assignShiftedDown(const BitRow &src, unsigned shift)
{
    nc_assert(nbits == src.nbits, "width mismatch %u vs %u", nbits,
              src.nbits);
    size_t nw = words.size();
    if (shift >= nbits) {
        for (auto &w : words)
            w = 0;
        return;
    }
    size_t ws = shift / 64;
    unsigned bs = shift % 64;
    // Forward iteration only reads source words at index >= the one
    // being written, so src may alias *this.
    if (bs == 0) {
        for (size_t i = 0; i + ws < nw; ++i)
            words[i] = src.words[i + ws];
    } else {
        for (size_t i = 0; i + ws < nw; ++i) {
            uint64_t lo = src.words[i + ws] >> bs;
            uint64_t hi = i + ws + 1 < nw
                              ? src.words[i + ws + 1] << (64 - bs)
                              : 0;
            words[i] = lo | hi;
        }
    }
    for (size_t i = nw - ws; i < nw; ++i)
        words[i] = 0;
    maskTail();
}

void
BitRow::mergeFrom(const BitRow &src, const BitRow &mask)
{
    nc_assert(nbits == src.nbits && nbits == mask.nbits,
              "width mismatch in mergeFrom");
    for (size_t i = 0; i < words.size(); ++i) {
        words[i] = (words[i] & ~mask.words[i]) |
                   (src.words[i] & mask.words[i]);
    }
}

} // namespace nc::sram
