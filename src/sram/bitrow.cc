#include "sram/bitrow.hh"

#include <bit>

#include "common/logging.hh"

namespace nc::sram
{

BitRow::BitRow(unsigned width_, bool fill_)
    : nbits(width_), words((width_ + 63) / 64, fill_ ? ~uint64_t(0) : 0)
{
    maskTail();
}

void
BitRow::maskTail()
{
    unsigned rem = nbits % 64;
    if (rem != 0 && !words.empty())
        words.back() &= (uint64_t(1) << rem) - 1;
}

bool
BitRow::get(unsigned lane) const
{
    nc_assert(lane < nbits, "lane %u out of %u", lane, nbits);
    return (words[lane / 64] >> (lane % 64)) & 1u;
}

void
BitRow::set(unsigned lane, bool v)
{
    nc_assert(lane < nbits, "lane %u out of %u", lane, nbits);
    uint64_t mask = uint64_t(1) << (lane % 64);
    if (v)
        words[lane / 64] |= mask;
    else
        words[lane / 64] &= ~mask;
}

void
BitRow::fill(bool v)
{
    for (auto &w : words)
        w = v ? ~uint64_t(0) : 0;
    maskTail();
}

unsigned
BitRow::popcount() const
{
    unsigned n = 0;
    for (auto w : words)
        n += static_cast<unsigned>(std::popcount(w));
    return n;
}

BitRow
BitRow::operator&(const BitRow &o) const
{
    nc_assert(nbits == o.nbits, "width mismatch %u vs %u", nbits, o.nbits);
    BitRow r(nbits);
    for (size_t i = 0; i < words.size(); ++i)
        r.words[i] = words[i] & o.words[i];
    return r;
}

BitRow
BitRow::operator|(const BitRow &o) const
{
    nc_assert(nbits == o.nbits, "width mismatch %u vs %u", nbits, o.nbits);
    BitRow r(nbits);
    for (size_t i = 0; i < words.size(); ++i)
        r.words[i] = words[i] | o.words[i];
    return r;
}

BitRow
BitRow::operator^(const BitRow &o) const
{
    nc_assert(nbits == o.nbits, "width mismatch %u vs %u", nbits, o.nbits);
    BitRow r(nbits);
    for (size_t i = 0; i < words.size(); ++i)
        r.words[i] = words[i] ^ o.words[i];
    return r;
}

BitRow
BitRow::operator~() const
{
    BitRow r(nbits);
    for (size_t i = 0; i < words.size(); ++i)
        r.words[i] = ~words[i];
    r.maskTail();
    return r;
}

bool
BitRow::operator==(const BitRow &o) const
{
    return nbits == o.nbits && words == o.words;
}

BitRow
BitRow::shiftedDown(unsigned shift) const
{
    BitRow r(nbits);
    for (unsigned i = 0; i + shift < nbits; ++i)
        r.set(i, get(i + shift));
    return r;
}

void
BitRow::mergeFrom(const BitRow &src, const BitRow &mask)
{
    nc_assert(nbits == src.nbits && nbits == mask.nbits,
              "width mismatch in mergeFrom");
    for (size_t i = 0; i < words.size(); ++i) {
        words[i] = (words[i] & ~mask.words[i]) |
                   (src.words[i] & mask.words[i]);
    }
}

} // namespace nc::sram
