/**
 * @file
 * Transpose Memory Unit (paper Figure 8).
 *
 * The TMU is an 8T SRAM macro with sense amps and drivers on both axes,
 * so data written in the regular (horizontal, one element per row)
 * orientation can be read back in the transposed (vertical, one bit
 * position per row) orientation, and vice versa. A few TMUs sit in each
 * slice's C-BOX and act as the gateway between bit-parallel bus data and
 * the transposed layout bit-serial compute requires.
 *
 * Functionally the unit is an exact transpose; its cost model is one
 * access cycle per row written plus one per column read, overlappable
 * when streaming (fill and drain pipeline).
 */

#ifndef NC_SRAM_TMU_HH
#define NC_SRAM_TMU_HH

#include <cstdint>
#include <vector>

#include "sram/bitrow.hh"

namespace nc::sram
{

/** An 8T two-axis-access SRAM macro used for dynamic transposition. */
class TransposeUnit
{
  public:
    /** @param rows_ element slots, @param cols_ bits per element slot. */
    explicit TransposeUnit(unsigned rows_ = 256, unsigned cols_ = 256);

    unsigned rows() const { return nrows; }
    unsigned cols() const { return ncols; }

    /** Write element @p value (low @p cols() bits) into row @p r. */
    void writeRegular(unsigned r, uint64_t value);
    /** Read row @p r back as an element. */
    uint64_t readRegular(unsigned r);

    /** Write a bit-slice (lane i = element i's bit) into column @p c. */
    void writeTransposed(unsigned c, const BitRow &slice);
    /** Read column @p c as a bit-slice across all element slots. */
    BitRow readTransposed(unsigned c);

    /** Access cycles consumed so far (both axes count equally). */
    uint64_t accessCycles() const { return nAccessCycles; }
    void resetCycles() { nAccessCycles = 0; }

    /**
     * Cycles to stream @p nelems elements of @p elem_bits bits through
     * the unit (regular in, transposed out or the reverse). The
     * regular port accepts a full @p port_bits bus beat per cycle
     * (several elements at once — the TMU fronts the 64-bit quadrant
     * bus); the transposed port moves one bit-slice per cycle. Fill
     * and drain pipeline across batches, so the steady-state cost is
     * the larger of the two port demands.
     */
    uint64_t streamCycles(uint64_t nelems, unsigned elem_bits,
                          unsigned port_bits = 64) const;

    /**
     * Convenience: transpose @p elems (each @p elem_bits wide) into
     * bit-slices of width @p lanes. Element i occupies lane i; slice j
     * holds bit j of every element. Elements beyond @p lanes are
     * rejected; missing elements read as zero.
     */
    static std::vector<BitRow>
    transposeElements(const std::vector<uint64_t> &elems,
                      unsigned elem_bits, unsigned lanes);

    /** Inverse of transposeElements(). */
    static std::vector<uint64_t>
    untransposeElements(const std::vector<BitRow> &slices,
                        unsigned elem_bits);

  private:
    unsigned nrows;
    unsigned ncols;
    std::vector<BitRow> cells; ///< row-major bit storage
    uint64_t nAccessCycles = 0;
};

} // namespace nc::sram

#endif // NC_SRAM_TMU_HH
