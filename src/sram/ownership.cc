#include "sram/ownership.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace nc::sram::ownership
{

namespace
{

/** High bit separates pool-task tokens from per-thread tokens. */
constexpr uint64_t kPoolTokenBit = uint64_t(1) << 63;

std::atomic<uint64_t> g_next_thread_token{0};

/** Lazily assigned identity of threads running outside any pool task
 * (the main thread, plain std::threads in tests). */
thread_local uint64_t tl_thread_token = 0;

/** Claim scopes the calling thread currently holds, with their labels
 * (a task claims only on its own thread, so thread-local is exact). */
thread_local unsigned tl_claim_depth = 0;
thread_local std::vector<const char *> tl_claim_labels;

uint64_t
currentToken()
{
    if (uint64_t task = common::currentTaskId())
        return task | kPoolTokenBit;
    if (tl_thread_token == 0)
        tl_thread_token = g_next_thread_token.fetch_add(
                              1, std::memory_order_relaxed) +
                          1;
    return tl_thread_token;
}

/** Render the calling thread's claim labels for a diagnostic. */
std::string
ownLabels()
{
    if (tl_claim_labels.empty())
        return "no claims";
    std::string s;
    for (const char *l : tl_claim_labels) {
        if (!s.empty())
            s += ", ";
        s += l ? l : "?";
    }
    return s;
}

} // namespace

Registry::Registry(uint64_t narrays)
    : n(narrays), slots(new Slot[narrays]), labels(narrays)
{
}

Registry::~Registry() = default;

void
Registry::claim(uint64_t base, uint64_t count, const char *label)
{
    if (count == 0)
        return;
    const uint64_t tok = currentToken();
    std::lock_guard<std::mutex> lk(mtx);
    nc_assert(base + count <= n && base + count >= base,
              "ownership claim '%s' [%" PRIu64 ", %" PRIu64
              ") exceeds the %" PRIu64 "-array cache",
              label ? label : "?", base, base + count, n);
    for (uint64_t i = base; i < base + count; ++i) {
        uint64_t owner =
            slots[i].owner.load(std::memory_order_relaxed);
        if (owner == 0) {
            slots[i].owner.store(tok, std::memory_order_release);
            slots[i].depth = 1;
            labels[i] = label ? label : "?";
        } else if (owner == tok) {
            ++slots[i].depth;
        } else {
            nc_panic("array-ownership race: claim '%s' (task %" PRIx64
                     ") overlaps array %" PRIu64
                     " already claimed as '%s' (task %" PRIx64 ")",
                     label ? label : "?", tok, i, labels[i].c_str(),
                     owner);
        }
    }
}

void
Registry::release(uint64_t base, uint64_t count)
{
    if (count == 0)
        return;
    const uint64_t tok = currentToken();
    std::lock_guard<std::mutex> lk(mtx);
    for (uint64_t i = base; i < base + count; ++i) {
        nc_assert(i < n, "ownership release beyond table");
        uint64_t owner =
            slots[i].owner.load(std::memory_order_relaxed);
        nc_assert(owner == tok,
                  "ownership release of array %" PRIu64
                  " not owned by the releasing task",
                  i);
        if (--slots[i].depth == 0) {
            labels[i].clear();
            slots[i].owner.store(0, std::memory_order_release);
        }
    }
}

void
Registry::checkAccess(uint64_t index) const
{
    nc_dassert(index < n, "ownership check beyond table");
    const uint64_t owner =
        slots[index].owner.load(std::memory_order_acquire);
    if (owner == 0 && tl_claim_depth == 0)
        return; // serial phase: unclaimed access to unclaimed array
    const uint64_t cur = currentToken();
    if (owner == cur)
        return;
    accessViolation(index, owner, cur);
}

void
Registry::accessViolation(uint64_t index, uint64_t owner,
                          uint64_t current) const
{
    std::string owner_label;
    {
        std::lock_guard<std::mutex> lk(mtx);
        owner_label = owner ? labels[index] : "unclaimed";
        // The owner may have released between the load and here;
        // that still means this access had no happens-before edge to
        // the owning kernel, so it stays a hard failure.
    }
    nc_panic("array-ownership race on array %" PRIu64
             ": task %" PRIx64 " (claims: %s) touched state %s "
             "(task %" PRIx64 ", claim '%s')",
             index, current, ownLabels().c_str(),
             owner ? "owned by another task" : "outside its claims",
             owner, owner_label.c_str());
}

#ifndef NDEBUG

ClaimScope::ClaimScope(Registry *reg_, Range r, uint64_t offset,
                       const char *label)
    : reg(reg_), single(r), off(offset)
{
    enter(label);
}

ClaimScope::ClaimScope(Registry *reg_,
                       const std::vector<Range> &ranges_,
                       uint64_t offset, const char *label)
    : reg(reg_), ranges(ranges_), off(offset)
{
    enter(label);
}

void
ClaimScope::enter(const char *label)
{
    if (!reg)
        return;
    if (ranges.empty() && single.arrays == 0)
        return;
    if (ranges.empty()) {
        reg->claim(single.base + off, single.arrays, label);
    } else {
        for (const Range &r : ranges)
            reg->claim(r.base + off, r.arrays, label);
    }
    active = true;
    ++tl_claim_depth;
    tl_claim_labels.push_back(label);
}

ClaimScope::~ClaimScope()
{
    if (!active)
        return;
    if (ranges.empty()) {
        reg->release(single.base + off, single.arrays);
    } else {
        for (const Range &r : ranges)
            reg->release(r.base + off, r.arrays);
    }
    --tl_claim_depth;
    tl_claim_labels.pop_back();
}

#endif // !NDEBUG

} // namespace nc::sram::ownership
