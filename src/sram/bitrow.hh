/**
 * @file
 * BitRow: one word line's worth of bit cells.
 *
 * A BitRow models the 256 (or however many) bit cells that share a word
 * line. Bit index == bit-line (lane) index. All logical operations are
 * lane-wise, mirroring what the per-bit-line column peripherals compute
 * in parallel during one array cycle.
 *
 * Storage is 64 lanes per machine word, tail bits (lanes >= width)
 * always held at zero — every mutator maintains that invariant, so the
 * word-parallel compute kernels in sram::Array can operate on whole
 * words without re-masking their inputs.
 */

#ifndef NC_SRAM_BITROW_HH
#define NC_SRAM_BITROW_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace nc::sram
{

/** A fixed-width row of bits with lane-wise logic operations. */
class BitRow
{
  public:
    BitRow() = default;
    explicit BitRow(unsigned width_, bool fill = false);

    unsigned width() const { return nbits; }

    bool
    get(unsigned lane) const
    {
        nc_dassert(lane < nbits, "lane %u out of %u", lane, nbits);
        return (words[lane / 64] >> (lane % 64)) & 1u;
    }

    void
    set(unsigned lane, bool v)
    {
        nc_dassert(lane < nbits, "lane %u out of %u", lane, nbits);
        uint64_t mask = uint64_t(1) << (lane % 64);
        if (v)
            words[lane / 64] |= mask;
        else
            words[lane / 64] &= ~mask;
    }

    /** @name Word-granular access (64 lanes per word, LSB = lane 0) */
    /// @{
    size_t wordCount() const { return words.size(); }

    uint64_t
    word(size_t i) const
    {
        nc_dassert(i < words.size(), "word %zu out of %zu", i,
                   words.size());
        return words[i];
    }

    /** Overwrite word @p i; tail lanes of the last word are masked. */
    void
    setWord(size_t i, uint64_t w)
    {
        nc_dassert(i < words.size(), "word %zu out of %zu", i,
                   words.size());
        words[i] = i + 1 == words.size() ? w & tailMask() : w;
    }

    const uint64_t *wordData() const { return words.data(); }
    uint64_t *wordData() { return words.data(); }

    /**
     * Mask covering the valid lanes of the last word (all-ones when
     * the width is a multiple of 64). Word-parallel kernels AND their
     * last computed word with this to preserve the zero-tail
     * invariant.
     */
    uint64_t
    tailMask() const
    {
        unsigned rem = nbits % 64;
        return rem == 0 ? ~uint64_t(0) : (uint64_t(1) << rem) - 1;
    }
    /// @}

    /** Set every lane to @p v. */
    void fill(bool v);

    /** Number of lanes holding 1. */
    unsigned popcount() const;

    /** Lane-wise logic; operands must have equal width. */
    BitRow operator&(const BitRow &o) const;
    BitRow operator|(const BitRow &o) const;
    BitRow operator^(const BitRow &o) const;
    BitRow operator~() const;

    bool operator==(const BitRow &o) const;

    /**
     * Lane-shifted copy: result lane i takes this row's lane (i + shift)
     * when in range, else 0. Models moving data toward lower-numbered
     * bit lines via sense-amp cycling / column mux.
     */
    BitRow shiftedDown(unsigned shift) const;

    /**
     * this <= src lane-shifted down by @p shift, without allocating:
     * a word-level funnel shift. @p src may alias this object.
     * Widths must match.
     */
    void assignShiftedDown(const BitRow &src, unsigned shift);

    /** Merge: lanes where mask is 1 take @p src, others keep this. */
    void mergeFrom(const BitRow &src, const BitRow &mask);

  private:
    void maskTail();

    unsigned nbits = 0;
    std::vector<uint64_t> words;
};

} // namespace nc::sram

#endif // NC_SRAM_BITROW_HH
