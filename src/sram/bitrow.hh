/**
 * @file
 * BitRow: one word line's worth of bit cells.
 *
 * A BitRow models the 256 (or however many) bit cells that share a word
 * line. Bit index == bit-line (lane) index. All logical operations are
 * lane-wise, mirroring what the per-bit-line column peripherals compute
 * in parallel during one array cycle.
 */

#ifndef NC_SRAM_BITROW_HH
#define NC_SRAM_BITROW_HH

#include <cstdint>
#include <vector>

namespace nc::sram
{

/** A fixed-width row of bits with lane-wise logic operations. */
class BitRow
{
  public:
    BitRow() = default;
    explicit BitRow(unsigned width_, bool fill = false);

    unsigned width() const { return nbits; }

    bool get(unsigned lane) const;
    void set(unsigned lane, bool v);

    /** Set every lane to @p v. */
    void fill(bool v);

    /** Number of lanes holding 1. */
    unsigned popcount() const;

    /** Lane-wise logic; operands must have equal width. */
    BitRow operator&(const BitRow &o) const;
    BitRow operator|(const BitRow &o) const;
    BitRow operator^(const BitRow &o) const;
    BitRow operator~() const;

    bool operator==(const BitRow &o) const;

    /**
     * Lane-shifted copy: result lane i takes this row's lane (i + shift)
     * when in range, else 0. Models moving data toward lower-numbered
     * bit lines via sense-amp cycling / column mux.
     */
    BitRow shiftedDown(unsigned shift) const;

    /** Merge: lanes where mask is 1 take @p src, others keep this. */
    void mergeFrom(const BitRow &src, const BitRow &mask);

  private:
    void maskTail();

    unsigned nbits = 0;
    std::vector<uint64_t> words;
};

} // namespace nc::sram

#endif // NC_SRAM_BITROW_HH
