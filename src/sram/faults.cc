#include "sram/faults.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.hh"

namespace nc::sram::faults
{

namespace
{

/**
 * Stateless counter-mode hash (splitmix64 finalizer over a mixed
 * key). All fault-site decisions derive from this, so a (seed,
 * array, site) triple names the same defect on every run, thread
 * count, and platform.
 */
uint64_t
mix(uint64_t a, uint64_t b)
{
    uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Map a hash to a uniform real in [0, 1). */
double
toUnit(uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Site tags keep the per-array decision streams independent. */
enum : uint64_t
{
    kSiteKill = 1,
    kSiteStuck = 2,
    kSiteStuckRow = 3,
    kSiteStuckLane = 4,
    kSiteStuckVal = 5,
    kSiteTransient = 6,
    kSiteTransientLane = 7,
    kSiteScramble = 8,
};

uint64_t
siteHash(uint64_t seed, uint64_t array, uint64_t site, uint64_t extra)
{
    return mix(mix(seed, array), mix(site, extra));
}

[[noreturn]] void
badKey(const std::string &key)
{
    static const char *known[] = {"seed",      "stuck",   "transient",
                                  "kill",      "kill_list", "bist",
                                  "canary",    "retries"};
    // Nearest known key by edit distance — same spirit as the
    // unknown-NC_* variable rejection (common/env.cc).
    size_t best = SIZE_MAX;
    const char *hint = nullptr;
    for (const char *k : known) {
        size_t la = key.size(), lb = std::strlen(k);
        std::vector<size_t> prev(lb + 1), cur(lb + 1);
        for (size_t j = 0; j <= lb; ++j)
            prev[j] = j;
        for (size_t i = 1; i <= la; ++i) {
            cur[0] = i;
            for (size_t j = 1; j <= lb; ++j)
                cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1,
                                   prev[j - 1] +
                                       (key[i - 1] != k[j - 1])});
            std::swap(prev, cur);
        }
        if (prev[lb] < best) {
            best = prev[lb];
            hint = k;
        }
    }
    nc_fatal("NC_FAULTS key '%s' is unknown; did you mean '%s'?",
             key.c_str(), hint);
}

uint64_t
parseU64(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(val.c_str(), &end, 0);
    if (end == val.c_str() || *end != '\0' || errno == ERANGE ||
        std::isspace(static_cast<unsigned char>(val[0])))
        nc_fatal("NC_FAULTS %s='%s' is not an integer", key.c_str(),
                 val.c_str());
    return v;
}

double
parseRate(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0' || errno == ERANGE ||
        std::isspace(static_cast<unsigned char>(val[0])))
        nc_fatal("NC_FAULTS %s='%s' is not a number", key.c_str(),
                 val.c_str());
    if (v < 0.0 || v > 1.0)
        nc_fatal("NC_FAULTS %s=%s is outside [0, 1]", key.c_str(),
                 val.c_str());
    return v;
}

bool
parseBool(const std::string &key, const std::string &val)
{
    if (val == "0" || val == "1")
        return val == "1";
    nc_fatal("NC_FAULTS %s='%s' must be 0 or 1", key.c_str(),
             val.c_str());
}

} // namespace

Config
configFromEnv(Config base)
{
    const char *env = std::getenv("NC_FAULTS");
    if (!env)
        return base;
    std::istringstream ss(env);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue; // tolerate "a=1,,b=2" / trailing commas
        size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == item.size())
            nc_fatal("NC_FAULTS item '%s' is not key=value",
                     item.c_str());
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (key == "seed")
            base.seed = parseU64(key, val);
        else if (key == "stuck")
            base.stuckRate = parseRate(key, val);
        else if (key == "transient")
            base.transientRate = parseRate(key, val);
        else if (key == "kill")
            base.killRate = parseRate(key, val);
        else if (key == "kill_list") {
            std::istringstream ls(val);
            std::string idx;
            while (std::getline(ls, idx, ':'))
                base.killArrays.push_back(parseU64(key, idx));
        } else if (key == "bist")
            base.bist = parseBool(key, val);
        else if (key == "canary")
            base.canary = parseBool(key, val);
        else if (key == "retries")
            base.retryBudget =
                static_cast<unsigned>(parseU64(key, val));
        else
            badKey(key);
    }
    return base;
}

bool
ArrayFaults::faulty() const
{
    return dead || !stuckList.empty() || !pendingFlips.empty() ||
           transientRate > 0;
}

void
ArrayFaults::onTouch(BitRow &row, unsigned r)
{
    ++nTouches;

    if (!pendingFlips.empty()) {
        // Scheduled one-shot transients: flip and forget, applied at
        // the next touch of the struck word line. Guard rows are
        // touched by every canary scan, so a flip scheduled there is
        // detected at the latest by the end of the current pass.
        for (const auto &[fr, fl] : pendingFlips)
            if (fr == r && fl < row.width())
                row.set(fl, !row.get(fl));
        std::erase_if(pendingFlips,
                      [r](const auto &p) { return p.first == r; });
    }

    if (dead) {
        // Dead periphery: every touched word line senses
        // deterministic garbage (stable per (array, row, touch)).
        for (size_t w = 0; w < row.wordCount(); ++w)
            row.setWord(w, siteHash(seed, index, kSiteScramble,
                                    (uint64_t(r) << 32) | w));
        return;
    }

    for (const StuckCell &c : stuckList)
        if (c.row == r && c.lane < row.width())
            row.set(c.lane, c.value);

    if (transientRate > 0 &&
        toUnit(siteHash(seed, index, kSiteTransient, nTouches)) <
            transientRate) {
        unsigned lane = static_cast<unsigned>(
            siteHash(seed, index, kSiteTransientLane, nTouches) %
            row.width());
        row.set(lane, !row.get(lane));
    }
}

Registry::Registry(const Config &cfg_, uint64_t narrays,
                   unsigned rows_, unsigned cols_)
    : cfg(cfg_), n(narrays), rows(rows_), cols(cols_), records(narrays)
{
    // Decide every static defect now: the hot path must never
    // allocate, and BIST must be able to enumerate suspect arrays
    // without touching ideal ones.
    for (uint64_t i = 0; i < n; ++i) {
        bool dead =
            cfg.killRate > 0 &&
            toUnit(siteHash(cfg.seed, i, kSiteKill, 0)) < cfg.killRate;
        bool stuck =
            cfg.stuckRate > 0 &&
            toUnit(siteHash(cfg.seed, i, kSiteStuck, 0)) <
                cfg.stuckRate;
        if (dead)
            killArray(i);
        if (stuck)
            addStuck(i,
                     static_cast<unsigned>(
                         siteHash(cfg.seed, i, kSiteStuckRow, 0) %
                         rows),
                     static_cast<unsigned>(
                         siteHash(cfg.seed, i, kSiteStuckLane, 0) %
                         cols),
                     (siteHash(cfg.seed, i, kSiteStuckVal, 0) & 1) !=
                         0);
        if (cfg.transientRate > 0)
            ensureRecord(i).transientRate = cfg.transientRate;
    }
    for (uint64_t i : cfg.killArrays)
        killArray(i);
    for (const auto &[i, c] : cfg.stuckCells)
        addStuck(i, c.row, c.lane, c.value);
}

ArrayFaults &
Registry::ensureRecord(uint64_t index)
{
    nc_assert(index < n, "fault record index %llu out of %llu arrays",
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(n));
    auto &rec = records[index];
    if (!rec) {
        rec = std::make_unique<ArrayFaults>();
        rec->index = index;
        rec->seed = cfg.seed;
        rec->cols = cols;
    }
    return *rec;
}

uint64_t
Registry::staticFaultCount() const
{
    uint64_t count = 0;
    for (const auto &rec : records)
        count += rec && (rec->dead || !rec->stuckList.empty());
    return count;
}

void
Registry::killArray(uint64_t index)
{
    ensureRecord(index).dead = true;
}

void
Registry::addStuck(uint64_t index, unsigned row, unsigned lane,
                   bool value)
{
    nc_assert(row < rows && lane < cols,
              "stuck cell (%u, %u) outside the %ux%u array", row,
              lane, rows, cols);
    ensureRecord(index).stuckList.push_back({row, lane, value});
}

void
Registry::injectFlip(uint64_t index, unsigned row, unsigned lane)
{
    nc_assert(row < rows && lane < cols,
              "transient site (%u, %u) outside the %ux%u array", row,
              lane, rows, cols);
    ensureRecord(index).pendingFlips.emplace_back(row, lane);
}

} // namespace nc::sram::faults
