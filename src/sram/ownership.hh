/**
 * @file
 * Runtime array-ownership race detector (debug builds only).
 *
 * The thread-pool determinism contract says concurrent tasks must
 * touch disjoint sram::Array state. The parity tests check that
 * empirically (bit-identical outputs across thread counts); this
 * detector checks it directly: every parallelFor task claims the
 * flat-array ranges its prepared kernel is about to touch, a Registry
 * keeps one owner word per array of the compute cache, and any
 * read-modify access to an array owned by a different task — or to an
 * unclaimed array while the task holds claims — aborts immediately
 * with a diagnostic naming both tasks' claim labels and the array
 * index. Races that parity tests could only witness probabilistically
 * become deterministic, localized failures.
 *
 * Task identity is common::currentTaskId() (a fresh id per pool task)
 * for pool tasks, and a lazily assigned per-thread id otherwise, so
 * plain std::thread concurrency is policed too. Claims live at the
 * LEAF kernels (conv filter store / conv window / maxPool / eltwise /
 * ISA broadcast tasks) — the innermost loop level that actually
 * touches array state. Coarser levels (branch or image fan-outs) must
 * NOT claim: when such an outer loop collapses to inline execution,
 * the kernels below it still dispatch real pool tasks, and an outer
 * claim held by the caller would falsely conflict with those tasks'
 * own claims. Plan-level disjointness of branches and image replicas
 * is proven statically by mapping::auditPlan instead. Claims are
 * scoped (ClaimScope) and reentrant: a nested parallelFor runs inline
 * under the outer task's id, so re-claiming an already-owned array
 * just bumps a depth count. Sibling tasks claiming overlapping ranges
 * abort at claim time — before any data is corrupted.
 *
 * The whole mechanism is compiled out under NDEBUG (kEnabled == false,
 * ComputeCache creates no Registry, Array::setOwnership() leaves the
 * hook pointer null, ClaimScope collapses to an empty literal type),
 * so release kernels carry zero overhead — bench/perf_report pins
 * that. Debug, asan, and tsan presets all run with it armed.
 */

#ifndef NC_SRAM_OWNERSHIP_HH
#define NC_SRAM_OWNERSHIP_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nc::sram::ownership
{

/** Whether the detector is compiled in (any non-NDEBUG build). */
#ifdef NDEBUG
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/** One claimed flat-array range: [base, base + arrays). */
struct Range
{
    uint64_t base = 0;
    uint64_t arrays = 0;
};

/**
 * Owner table of one compute cache: one word per flat array index.
 * claim()/release() serialize on a mutex (claims are per-kernel, not
 * per-access); the access check is a single relaxed-ish atomic load.
 */
class Registry
{
  public:
    explicit Registry(uint64_t narrays);
    ~Registry();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    uint64_t arrays() const { return n; }

    /**
     * Claim [base, base + count) for the calling task. Aborts if any
     * array in the range is owned by a different task (two sibling
     * tasks claiming overlapping ranges IS the race — caught here,
     * before either touches data). Reentrant for the same task.
     */
    void claim(uint64_t base, uint64_t count, const char *label);

    /** Undo one matching claim() (depth-counted). */
    void release(uint64_t base, uint64_t count);

    /**
     * The hot check, called from Array's access funnel. Passes when
     * the array is owned by the calling task, or when it is unowned
     * and the calling task holds no claims at all (serial phases —
     * pinning, readbacks, host-side merges — run unclaimed). Anything
     * else aborts with both tasks' labels.
     */
    void checkAccess(uint64_t index) const;

  private:
    [[noreturn]] void accessViolation(uint64_t index, uint64_t owner,
                                      uint64_t current) const;

    struct Slot
    {
        std::atomic<uint64_t> owner{0};
        uint32_t depth = 0; ///< reentrant claims (guarded by mtx)
    };

    uint64_t n;
    std::unique_ptr<Slot[]> slots;
    mutable std::mutex mtx;
    std::vector<std::string> labels; ///< owner's claim label per array
};

#ifndef NDEBUG

/**
 * RAII claim of one or more ranges (all offset by @p offset — the
 * batch image-slot displacement). Null registry or an empty range set
 * is a no-op. Non-copyable; intended as a stack local at the top of a
 * task lambda.
 */
class ClaimScope
{
  public:
    ClaimScope(Registry *reg_, Range r, uint64_t offset,
               const char *label);
    ClaimScope(Registry *reg_, const std::vector<Range> &ranges_,
               uint64_t offset, const char *label);
    ~ClaimScope();

    ClaimScope(const ClaimScope &) = delete;
    ClaimScope &operator=(const ClaimScope &) = delete;

  private:
    void enter(const char *label);

    Registry *reg = nullptr;
    Range single;                ///< used when ranges is empty
    std::vector<Range> ranges;   ///< multi-range claims (branches)
    uint64_t off = 0;
    bool active = false;
};

#else // NDEBUG: zero-size, zero-cost stand-in.

class ClaimScope
{
  public:
    constexpr ClaimScope(Registry *, Range, uint64_t, const char *) {}
    constexpr ClaimScope(Registry *, const std::vector<Range> &,
                         uint64_t, const char *)
    {
    }
};

#endif

} // namespace nc::sram::ownership

#endif // NC_SRAM_OWNERSHIP_HH
