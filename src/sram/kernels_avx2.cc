// AVX2 kernel tier. This TU alone is compiled with -mavx2 (see
// src/CMakeLists.txt); everything else in the library stays at the
// baseline ISA so the binary runs on any x86-64 host and dispatch
// stays a runtime decision. On compilers without the flag the tier
// degrades to a nullptr table and the ladder tops out lower.

#include "sram/kernels_impl.hh"

namespace nc::sram::kern
{

#if defined(__AVX2__)

const Table *
avx2Table()
{
    static const Table t = makeTable<Avx2B>(common::simd::Tier::Avx2);
    return &t;
}

#else

const Table *
avx2Table()
{
    return nullptr;
}

#endif

} // namespace nc::sram::kern
