/**
 * @file
 * SRAM array timing / energy / area parameters.
 *
 * The paper characterizes an 8KB computational SRAM in 28 nm SPICE and
 * scales the energy numbers to the 22 nm Xeon E5-2697 v3 node. The
 * architectural model only ever consumes these scalars, so this table is
 * the substitution for the authors' circuit work (see DESIGN.md §4).
 *
 * Published values (paper §V):
 *  - compute cycle:       1022 ps (0.66 V RWL, 6-sigma robust)
 *  - normal SRAM read:     654 ps
 *  - compute frequency:    2.5 GHz (conservatively chosen)
 *  - SRAM access freq:     4.0 GHz
 *  - 256-bit access energy: 13.9 pJ @ 28 nm -> 8.6 pJ @ 22 nm
 *  - 256-lane compute op:   25.7 pJ @ 28 nm -> 15.4 pJ @ 22 nm
 *  - area overhead:         7.5% per 8KB array, < 2% of processor die
 */

#ifndef NC_SRAM_TIMING_HH
#define NC_SRAM_TIMING_HH

#include "common/units.hh"

namespace nc::sram
{

/** Clocking of an SRAM array in its two operating modes. */
struct TimingParams
{
    /** Clock used while executing bit-line compute operations. */
    Clock computeClock{2.5_GHz};
    /** Clock used for conventional read/write accesses. */
    Clock accessClock{4.0_GHz};

    /** Raw circuit delays from the paper's SPICE characterization. */
    double computeDelayPs = 1022.0;
    double readDelayPs = 654.0;

    /** Ratio compute delay / read delay (paper quotes ~1.6x). */
    double computeSlowdown() const { return computeDelayPs / readDelayPs; }
};

/** Per-cycle energy of one array (whole 256-lane row operation). */
struct EnergyParams
{
    /** Energy of a 256-bit conventional access cycle, picojoules. */
    double accessPj = 8.6;
    /** Energy of a 256-lane compute cycle, picojoules. */
    double computePj = 15.4;

    /** 28 nm values before scaling to the 22 nm host node. */
    static EnergyParams
    node28nm()
    {
        return EnergyParams{13.9, 25.7};
    }

    /** Default: scaled to the 22 nm Xeon E5-2697 v3. */
    static EnergyParams
    node22nm()
    {
        return EnergyParams{8.6, 15.4};
    }
};

/** Area model of one 8KB array, after adding compute peripherals. */
struct AreaParams
{
    /** Base array footprint (paper Figure 12), micrometres. */
    double arrayWidthUm = 263.0;
    double arrayHeightUm = 108.0 * 2 + 120.0;
    /** Extra height attributed to compute logic, micrometres. */
    double computeLogicUm = 7.0;
    /** Fractional area overhead of the compute peripherals. */
    double peripheralOverhead = 0.075;
    /** Fraction of the whole processor die the overhead represents. */
    double dieOverhead = 0.02;
    /** 8T transpose bit-cell TMU macro area, mm^2 (paper Figure 8). */
    double tmuAreaMm2 = 0.019;
};

} // namespace nc::sram

#endif // NC_SRAM_TIMING_HH
