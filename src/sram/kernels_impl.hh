/**
 * @file
 * The width-templated kernel bodies behind sram/kernels.hh.
 *
 * Included only by the per-tier translation units (kernels_scalar.cc,
 * kernels_avx2.cc, kernels_avx512.cc), each compiled with its own -m
 * flags; the backends self-gate on the compiler's feature macros so a
 * TU built without the flags still compiles (to a stub — see the
 * nullptr tables in those files).
 *
 * A backend describes one register width: vector type V, step W in
 * 64-bit words, and the handful of lane-wise primitives the passes
 * need. Passes are templated over <backend, op, predication>, keep
 * carry and predicate lanes in registers across each chunk, and
 * recurse into the backend's Narrower sibling for remainder words,
 * so a 512-bit pass over a 6-word row runs one 256-bit chunk and two
 * scalar words rather than six scalar words.
 *
 * All memory access goes through std::memcpy-based load/store (the
 * compilers lower these to plain/unaligned vector moves), never
 * through casted pointers, so alignment and strict-aliasing behavior
 * is defined at every tier — see ISSUE 9's UBSan requirement.
 */

#ifndef NC_SRAM_KERNELS_IMPL_HH
#define NC_SRAM_KERNELS_IMPL_HH

#include <cstring>
#include <type_traits>

#include "sram/kernels.hh"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace nc::sram::kern
{

// Everything here has internal linkage, on purpose: the same
// templates instantiate differently per TU (Avx2B's ternary-logic
// primitives depend on whether the including TU was built with
// AVX-512VL), so letting the instantiations share COMDAT symbols
// would hand the linker a choice between a VL and a non-VL body for
// the avx2 tier — and the wrong pick SIGILLs on a non-VL host. One
// private copy per tier TU keeps each dispatch table self-consistent
// with the flags it was compiled under.
namespace
{

/** Portable backend: one 64-bit word (64 lanes) per step. */
struct ScalarB
{
    using V = uint64_t;
    using Narrower = void; ///< terminates the remainder recursion
    static constexpr size_t W = 1;

    static V
    load(const uint64_t *p)
    {
        V v;
        std::memcpy(&v, p, sizeof v);
        return v;
    }
    static void
    store(uint64_t *p, V v)
    {
        std::memcpy(p, &v, sizeof v);
    }
    static V splat(uint64_t x) { return x; }
    static V and_(V a, V b) { return a & b; }
    static V or_(V a, V b) { return a | b; }
    static V xor_(V a, V b) { return a ^ b; }
    /** ~a & b (operand order matches the VPANDN instruction). */
    static V andnot(V a, V b) { return ~a & b; }
    static V not_(V a) { return ~a; }
    static V shr(V v, unsigned n) { return v >> n; }
    static V shl(V v, unsigned n) { return v << n; }
    /** a ^ b ^ c — the full-adder sum. */
    static V sum3(V a, V b, V c) { return a ^ b ^ c; }
    /** majority(a, b, c) — the full-adder carry-out. */
    static V maj3(V a, V b, V c) { return (a & b) | ((a ^ b) & c); }
    /** Lane blend: t ? v : d. */
    static V blend(V t, V v, V d) { return (v & t) | (d & ~t); }
    /** Chunk mask whose highest word is the row's tail mask. */
    static V lastMask(uint64_t tm) { return tm; }

    /** Bit b of each of 64 packed bytes, as one plane word. */
    static uint64_t
    packPlane(const uint8_t bytes[64], unsigned b)
    {
        uint64_t w = 0;
        for (unsigned i = 0; i < 64; ++i)
            w |= uint64_t((bytes[i] >> b) & 1u) << i;
        return w;
    }
};

#if defined(__AVX2__)

/** AVX2 backend: four words (256 lanes) per step. */
struct Avx2B
{
    using V = __m256i;
    using Narrower = ScalarB;
    static constexpr size_t W = 4;

    static V
    load(const uint64_t *p)
    {
        V v;
        std::memcpy(&v, p, sizeof v);
        return v;
    }
    static void
    store(uint64_t *p, V v)
    {
        std::memcpy(p, &v, sizeof v);
    }
    static V
    splat(uint64_t x)
    {
        return _mm256_set1_epi64x(static_cast<long long>(x));
    }
    static V and_(V a, V b) { return _mm256_and_si256(a, b); }
    static V or_(V a, V b) { return _mm256_or_si256(a, b); }
    static V xor_(V a, V b) { return _mm256_xor_si256(a, b); }
    static V andnot(V a, V b) { return _mm256_andnot_si256(a, b); }
    static V not_(V a) { return _mm256_xor_si256(a, splat(~uint64_t(0))); }
    static V
    shr(V v, unsigned n)
    {
        return _mm256_srl_epi64(v, _mm_cvtsi32_si128(int(n)));
    }
    static V
    shl(V v, unsigned n)
    {
        return _mm256_sll_epi64(v, _mm_cvtsi32_si128(int(n)));
    }
#if defined(__AVX512VL__)
    // With AVX-512VL each 3-input boolean collapses to one VPTERNLOGQ
    // (imm = truth table over A:0xF0 B:0xCC C:0xAA), shortening the
    // carry chain of the dominant single-chunk opAdd geometry.
    static V
    sum3(V a, V b, V c)
    {
        return _mm256_ternarylogic_epi64(a, b, c, 0x96);
    }
    static V
    maj3(V a, V b, V c)
    {
        return _mm256_ternarylogic_epi64(a, b, c, 0xE8);
    }
    static V
    blend(V t, V v, V d)
    {
        return _mm256_ternarylogic_epi64(t, v, d, 0xCA);
    }
#else
    static V sum3(V a, V b, V c) { return xor_(xor_(a, b), c); }
    static V
    maj3(V a, V b, V c)
    {
        return or_(and_(a, b), and_(xor_(a, b), c));
    }
    static V blend(V t, V v, V d) { return or_(and_(v, t), andnot(t, d)); }
#endif
    static V
    lastMask(uint64_t tm)
    {
        return _mm256_set_epi64x(static_cast<long long>(tm), -1, -1,
                                 -1);
    }

    static uint64_t
    packPlane(const uint8_t bytes[64], unsigned b)
    {
        // Left-shift each byte so bit b lands in bit 7, then let
        // VPMOVMSKB collect the sign bits. The 16-bit shift cannot
        // contaminate the read bit: for shifts <= 7, each byte's bit
        // 7 still comes from within that byte.
        V v0, v1;
        std::memcpy(&v0, bytes, 32);
        std::memcpy(&v1, bytes + 32, 32);
        __m128i cnt = _mm_cvtsi32_si128(int(7 - b));
        auto lo = static_cast<uint32_t>(
            _mm256_movemask_epi8(_mm256_sll_epi16(v0, cnt)));
        auto hi = static_cast<uint32_t>(
            _mm256_movemask_epi8(_mm256_sll_epi16(v1, cnt)));
        return uint64_t(lo) | (uint64_t(hi) << 32);
    }
};

#endif // __AVX2__

#if defined(__AVX512F__) && defined(__AVX512BW__)

/** AVX-512 backend: eight words (512 lanes) per step. */
struct Avx512B
{
    using V = __m512i;
    using Narrower = Avx2B; ///< -mavx512f implies AVX2 on GCC/Clang
    static constexpr size_t W = 8;

    static V
    load(const uint64_t *p)
    {
        V v;
        std::memcpy(&v, p, sizeof v);
        return v;
    }
    static void
    store(uint64_t *p, V v)
    {
        std::memcpy(p, &v, sizeof v);
    }
    static V
    splat(uint64_t x)
    {
        return _mm512_set1_epi64(static_cast<long long>(x));
    }
    static V and_(V a, V b) { return _mm512_and_si512(a, b); }
    static V or_(V a, V b) { return _mm512_or_si512(a, b); }
    static V xor_(V a, V b) { return _mm512_xor_si512(a, b); }
    static V andnot(V a, V b) { return _mm512_andnot_si512(a, b); }
    static V not_(V a) { return _mm512_xor_si512(a, splat(~uint64_t(0))); }
    static V
    shr(V v, unsigned n)
    {
        return _mm512_srl_epi64(v, _mm_cvtsi32_si128(int(n)));
    }
    static V
    shl(V v, unsigned n)
    {
        return _mm512_sll_epi64(v, _mm_cvtsi32_si128(int(n)));
    }
    static V
    sum3(V a, V b, V c)
    {
        return _mm512_ternarylogic_epi64(a, b, c, 0x96);
    }
    static V
    maj3(V a, V b, V c)
    {
        return _mm512_ternarylogic_epi64(a, b, c, 0xE8);
    }
    static V
    blend(V t, V v, V d)
    {
        return _mm512_ternarylogic_epi64(t, v, d, 0xCA);
    }
    static V
    lastMask(uint64_t tm)
    {
        return _mm512_set_epi64(static_cast<long long>(tm), -1, -1,
                                -1, -1, -1, -1, -1);
    }

    static uint64_t
    packPlane(const uint8_t bytes[64], unsigned b)
    {
        // One masked sign-bit extraction for the whole block; the
        // VPMOVB2M byte mask is why this tier requires AVX512BW.
        V v;
        std::memcpy(&v, bytes, 64);
        __m128i cnt = _mm_cvtsi32_si128(int(7 - b));
        return static_cast<uint64_t>(
            _mm512_movepi8_mask(_mm512_sll_epi16(v, cnt)));
    }
};

#endif // __AVX512F__ && __AVX512BW__

/** @name Logic ops for the two-operand family */
/// @{
struct OpAnd
{
    template <class B>
    static typename B::V
    apply(typename B::V a, typename B::V b)
    {
        return B::and_(a, b);
    }
};
struct OpNor
{
    template <class B>
    static typename B::V
    apply(typename B::V a, typename B::V b)
    {
        return B::andnot(a, B::not_(b)); // ~a & ~b
    }
};
struct OpOr
{
    template <class B>
    static typename B::V
    apply(typename B::V a, typename B::V b)
    {
        return B::or_(a, b);
    }
};
struct OpXor
{
    template <class B>
    static typename B::V
    apply(typename B::V a, typename B::V b)
    {
        return B::xor_(a, b);
    }
};
struct OpXnor
{
    template <class B>
    static typename B::V
    apply(typename B::V a, typename B::V b)
    {
        return B::not_(B::xor_(a, b));
    }
};
/// @}

/**
 * Predicated commit of @p v into the destination chunk: lanes where
 * the tag holds 1 take v, others keep d.
 */
template <class B>
inline typename B::V
predMerge(typename B::V v, typename B::V tv, typename B::V dv)
{
    return B::blend(tv, v, dv);
}

/** All-ones tail masks are the norm (width % 64 == 0): skip them. */
inline bool
maskedTail(uint64_t tm)
{
    return tm != ~uint64_t(0);
}

template <class B, class OP, bool PRED>
void
logic2Pass(const uint64_t *a, const uint64_t *b, uint64_t *d,
           const uint64_t *t, size_t nw, uint64_t tm)
{
    size_t i = 0;
    for (; i + B::W <= nw; i += B::W) {
        auto v = OP::template apply<B>(B::load(a + i), B::load(b + i));
        if (maskedTail(tm) && i + B::W == nw)
            v = B::and_(v, B::lastMask(tm));
        if constexpr (PRED)
            v = predMerge<B>(v, B::load(t + i), B::load(d + i));
        B::store(d + i, v);
    }
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (i < nw)
            logic2Pass<typename B::Narrower, OP, PRED>(
                a + i, b + i, d + i, t + i, nw - i, tm);
    }
}

template <class B, bool PRED>
void
addPass(const uint64_t *a, const uint64_t *b, uint64_t *d, uint64_t *c,
        const uint64_t *t, size_t nw, uint64_t tm)
{
    size_t i = 0;
    for (; i + B::W <= nw; i += B::W) {
        // All operand chunks (dst included when predicated) load
        // before either store, and chunks advance forward, so dst
        // may alias ra or rb (in-place accumulation).
        auto av = B::load(a + i);
        auto bv = B::load(b + i);
        auto cv = B::load(c + i);
        auto sum = B::sum3(av, bv, cv);
        auto cout = B::maj3(av, bv, cv);
        if (maskedTail(tm) && i + B::W == nw) {
            auto lm = B::lastMask(tm);
            sum = B::and_(sum, lm);
            cout = B::and_(cout, lm);
        }
        if constexpr (PRED)
            sum = predMerge<B>(sum, B::load(t + i), B::load(d + i));
        B::store(d + i, sum);
        B::store(c + i, cout);
    }
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (i < nw)
            addPass<typename B::Narrower, PRED>(a + i, b + i, d + i,
                                                c + i, t + i, nw - i,
                                                tm);
    }
}

template <class B, bool INV, bool PRED>
void
copyPass(const uint64_t *s, uint64_t *d, const uint64_t *t, size_t nw,
         uint64_t tm)
{
    size_t i = 0;
    for (; i + B::W <= nw; i += B::W) {
        auto v = B::load(s + i);
        if constexpr (INV)
            v = B::not_(v);
        if (maskedTail(tm) && i + B::W == nw)
            v = B::and_(v, B::lastMask(tm));
        if constexpr (PRED)
            v = predMerge<B>(v, B::load(t + i), B::load(d + i));
        B::store(d + i, v);
    }
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (i < nw)
            copyPass<typename B::Narrower, INV, PRED>(
                s + i, d + i, t + i, nw - i, tm);
    }
}

template <class B, bool PRED>
void
immPass(uint64_t v, uint64_t *d, const uint64_t *t, size_t nw,
        uint64_t tm)
{
    auto vv = B::splat(v);
    size_t i = 0;
    for (; i + B::W <= nw; i += B::W) {
        auto w = vv;
        if (maskedTail(tm) && i + B::W == nw)
            w = B::and_(w, B::lastMask(tm));
        if constexpr (PRED)
            w = predMerge<B>(w, B::load(t + i), B::load(d + i));
        B::store(d + i, w);
    }
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (i < nw)
            immPass<typename B::Narrower, PRED>(v, d + i, t + i,
                                                nw - i, tm);
    }
}

template <class B, bool PRED>
void
latchStorePass(const uint64_t *s, uint64_t *d, const uint64_t *t,
               size_t nw)
{
    // The source is a latch row whose tail lanes are already zero:
    // no mask needed at any width.
    size_t i = 0;
    for (; i + B::W <= nw; i += B::W) {
        auto v = B::load(s + i);
        if constexpr (PRED)
            v = predMerge<B>(v, B::load(t + i), B::load(d + i));
        B::store(d + i, v);
    }
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (i < nw)
            latchStorePass<typename B::Narrower, PRED>(s + i, d + i,
                                                       t + i, nw - i);
    }
}

/** Tag folds: both operands already honour the zero-tail invariant. */
template <class B, TagFold OP>
void
tagFoldPass(uint64_t *t, const uint64_t *s, size_t nw)
{
    size_t i = 0;
    for (; i + B::W <= nw; i += B::W) {
        auto tv = B::load(t + i);
        auto sv = B::load(s + i);
        typename B::V v;
        if constexpr (OP == TagFold::And)
            v = B::and_(tv, sv);
        else if constexpr (OP == TagFold::AndInv)
            v = B::andnot(sv, tv); // t & ~s
        else
            v = B::or_(tv, sv);
        B::store(t + i, v);
    }
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (i < nw)
            tagFoldPass<typename B::Narrower, OP>(t + i, s + i,
                                                  nw - i);
    }
}

template <class B>
void
tagAndXnorPass(uint64_t *t, const uint64_t *a, const uint64_t *b,
               size_t nw)
{
    // t &= ~(a ^ b): the xor's tail is zero (both inputs masked), so
    // its complement's tail ones vanish against t's zero tail.
    size_t i = 0;
    for (; i + B::W <= nw; i += B::W) {
        auto x = B::xor_(B::load(a + i), B::load(b + i));
        B::store(t + i, B::andnot(x, B::load(t + i)));
    }
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (i < nw)
            tagAndXnorPass<typename B::Narrower>(t + i, a + i, b + i,
                                                 nw - i);
    }
}

template <class B, bool INV>
void
loadLatchPass(uint64_t *d, const uint64_t *s, size_t nw, uint64_t tm)
{
    size_t i = 0;
    for (; i + B::W <= nw; i += B::W) {
        auto v = B::load(s + i);
        if constexpr (INV)
            v = B::not_(v); // sets tail lanes: mask below
        if (maskedTail(tm) && i + B::W == nw)
            v = B::and_(v, B::lastMask(tm));
        B::store(d + i, v);
    }
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (i < nw)
            loadLatchPass<typename B::Narrower, INV>(d + i, s + i,
                                                     nw - i, tm);
    }
}

/**
 * One 64x64 transpose stage schedule (Hacker's Delight fig. 7-6):
 * butterfly j with mask m, j halving from 32 to 1.
 */
constexpr unsigned kStageJ[6] = {32, 16, 8, 4, 2, 1};
constexpr uint64_t kStageMask[6] = {
    0x00000000FFFFFFFFULL, 0x0000FFFF0000FFFFULL,
    0x00FF00FF00FF00FFULL, 0x0F0F0F0F0F0F0F0FULL,
    0x3333333333333333ULL, 0x5555555555555555ULL,
};

template <class B>
inline void
transposeBlock(uint64_t *a)
{
    for (unsigned s = 0; s < 6; ++s) {
        const unsigned j = kStageJ[s];
        const uint64_t m = kStageMask[s];
        if constexpr (B::W > 1) {
            // Stages whose butterfly span covers whole chunks run
            // vectorized: within each 2j-aligned pair of j-word
            // halves, the k indices are contiguous.
            if (j >= B::W) {
                auto mv = B::splat(m);
                for (unsigned base = 0; base < 64; base += 2 * j)
                    for (unsigned k = base; k < base + j; k += B::W) {
                        auto lo = B::load(a + k);
                        auto hi = B::load(a + k + j);
                        auto t =
                            B::and_(B::xor_(B::shr(lo, j), hi), mv);
                        B::store(a + k + j, B::xor_(hi, t));
                        B::store(a + k, B::xor_(lo, B::shl(t, j)));
                    }
                continue;
            }
        }
        for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
            uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k + j] ^= t;
            a[k] ^= t << j;
        }
    }
}

template <class B>
void
transposeBlocksPass(uint64_t *blocks, size_t nblocks)
{
    for (size_t blk = 0; blk < nblocks; ++blk)
        transposeBlock<B>(blocks + blk * 64);
}

template <class B>
void
packPlanesPass(const uint64_t *vals, size_t nvals, unsigned bits,
               uint64_t *planes, size_t nblocks)
{
    for (size_t blk = 0; blk < nblocks; ++blk) {
        // Narrow the block's 64 elements to bytes once, then peel
        // one plane word per bit.
        alignas(64) uint8_t bytes[64];
        const size_t lane0 = blk * 64;
        const size_t n =
            nvals > lane0 ? (nvals - lane0 < 64 ? nvals - lane0 : 64)
                          : 0;
        for (size_t i = 0; i < n; ++i)
            bytes[i] = static_cast<uint8_t>(vals[lane0 + i]);
        if (n < 64)
            std::memset(bytes + n, 0, 64 - n);
        for (unsigned b = 0; b < bits; ++b)
            planes[b * nblocks + blk] = B::packPlane(bytes, b);
    }
}

/** @name Table wrappers (the function-pointer shapes)
 *
 * Unpredicated and predicated forms are separate entry points: the
 * unpredicated ones are the hot inner loops of every arithmetic
 * kernel and stay within six integer argument registers so Array's
 * ops reach them as frameless sibling calls (kernels.hh). Each
 * wrapper first hands rows narrower than its own chunk straight to
 * the narrower tier's wrapper — the default 256-column geometry is
 * half an AVX-512 chunk, and threading it through the generic
 * chunk-loop + remainder recursion costs more bookkeeping than the
 * whole pass does work. addW additionally special-cases the exact
 * one-chunk add: that is the opAdd inner loop, hot enough that the
 * loop scaffolding around a single 3-load/2-op/2-store chunk shows
 * up in perf_report.
 */
/// @{
template <class B, class OP, bool PRED>
inline void
logic2Op(const uint64_t *a, const uint64_t *b, uint64_t *d,
         const uint64_t *t, size_t nw, uint64_t tm)
{
    logic2Pass<B, OP, PRED>(a, b, d, t, nw, tm);
}

template <class B, bool PRED>
inline void
logic2Switch(Logic2 op, const uint64_t *a, const uint64_t *b,
             uint64_t *d, const uint64_t *t, size_t nw, uint64_t tm)
{
    switch (op) {
    case Logic2::And:
        logic2Op<B, OpAnd, PRED>(a, b, d, t, nw, tm);
        break;
    case Logic2::Nor:
        logic2Op<B, OpNor, PRED>(a, b, d, t, nw, tm);
        break;
    case Logic2::Or:
        logic2Op<B, OpOr, PRED>(a, b, d, t, nw, tm);
        break;
    case Logic2::Xor:
        logic2Op<B, OpXor, PRED>(a, b, d, t, nw, tm);
        break;
    case Logic2::Xnor:
        logic2Op<B, OpXnor, PRED>(a, b, d, t, nw, tm);
        break;
    }
}

template <class B>
void
logic2W(Logic2 op, const uint64_t *a, const uint64_t *b, uint64_t *d,
        size_t nw, uint64_t tm)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W)
            return logic2W<typename B::Narrower>(op, a, b, d, nw, tm);
    }
    logic2Switch<B, false>(op, a, b, d, nullptr, nw, tm);
}

template <class B>
void
logic2PredW(Logic2 op, const uint64_t *a, const uint64_t *b,
            uint64_t *d, const uint64_t *t, size_t nw, uint64_t tm)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W)
            return logic2PredW<typename B::Narrower>(op, a, b, d, t,
                                                     nw, tm);
    }
    logic2Switch<B, true>(op, a, b, d, t, nw, tm);
}

/**
 * Exactly one chunk of width B: the opAdd hot path. The carry row is
 * a loop-carried dependency across consecutive adds (stored here,
 * reloaded by the next op), so the chunk is written with as short a
 * load-to-store chain as the backend allows.
 */
template <class B>
inline void
addChunk(const uint64_t *a, const uint64_t *b, uint64_t *d,
         uint64_t *c, uint64_t tm)
{
    auto av = B::load(a);
    auto bv = B::load(b);
    auto cv = B::load(c);
    auto sum = B::sum3(av, bv, cv);
    auto cout = B::maj3(av, bv, cv);
    if (maskedTail(tm)) {
        auto lm = B::lastMask(tm);
        sum = B::and_(sum, lm);
        cout = B::and_(cout, lm);
    }
    B::store(d, sum);
    B::store(c, cout);
}

template <class B>
void
addW(const uint64_t *a, const uint64_t *b, uint64_t *d, uint64_t *c,
     size_t nw, uint64_t tm)
{
    if (nw == B::W)
        return addChunk<B>(a, b, d, c, tm);
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W) {
            // One chunk of the narrower sibling (the default
            // 256-column row under the 512-bit tier) is common
            // enough to resolve here rather than re-dispatch.
            if (nw == B::Narrower::W)
                return addChunk<typename B::Narrower>(a, b, d, c, tm);
            return addW<typename B::Narrower>(a, b, d, c, nw, tm);
        }
    }
    addPass<B, false>(a, b, d, c, nullptr, nw, tm);
}

template <class B>
void
addPredW(const uint64_t *a, const uint64_t *b, uint64_t *d,
         uint64_t *c, const uint64_t *t, size_t nw, uint64_t tm)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W)
            return addPredW<typename B::Narrower>(a, b, d, c, t, nw,
                                                  tm);
    }
    addPass<B, true>(a, b, d, c, t, nw, tm);
}

template <class B>
void
copyW(const uint64_t *s, uint64_t *d, size_t nw, uint64_t tm,
      bool invert)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W)
            return copyW<typename B::Narrower>(s, d, nw, tm, invert);
    }
    if (invert)
        copyPass<B, true, false>(s, d, nullptr, nw, tm);
    else
        copyPass<B, false, false>(s, d, nullptr, nw, tm);
}

template <class B>
void
copyPredW(const uint64_t *s, uint64_t *d, const uint64_t *t,
          size_t nw, uint64_t tm, bool invert)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W)
            return copyPredW<typename B::Narrower>(s, d, t, nw, tm,
                                                   invert);
    }
    if (invert)
        copyPass<B, true, true>(s, d, t, nw, tm);
    else
        copyPass<B, false, true>(s, d, t, nw, tm);
}

template <class B>
void
immW(uint64_t v, uint64_t *d, size_t nw, uint64_t tm)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W)
            return immW<typename B::Narrower>(v, d, nw, tm);
    }
    immPass<B, false>(v, d, nullptr, nw, tm);
}

template <class B>
void
immPredW(uint64_t v, uint64_t *d, const uint64_t *t, size_t nw,
         uint64_t tm)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W)
            return immPredW<typename B::Narrower>(v, d, t, nw, tm);
    }
    immPass<B, true>(v, d, t, nw, tm);
}

template <class B>
void
latchStoreW(const uint64_t *s, uint64_t *d, size_t nw)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W)
            return latchStoreW<typename B::Narrower>(s, d, nw);
    }
    latchStorePass<B, false>(s, d, nullptr, nw);
}

template <class B>
void
latchStorePredW(const uint64_t *s, uint64_t *d, const uint64_t *t,
                size_t nw)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W)
            return latchStorePredW<typename B::Narrower>(s, d, t, nw);
    }
    latchStorePass<B, true>(s, d, t, nw);
}

template <class B>
void
tagFoldW(TagFold op, uint64_t *t, const uint64_t *s, size_t nw)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W) {
            tagFoldW<typename B::Narrower>(op, t, s, nw);
            return;
        }
    }
    switch (op) {
    case TagFold::And:
        tagFoldPass<B, TagFold::And>(t, s, nw);
        break;
    case TagFold::AndInv:
        tagFoldPass<B, TagFold::AndInv>(t, s, nw);
        break;
    case TagFold::Or:
        tagFoldPass<B, TagFold::Or>(t, s, nw);
        break;
    }
}

template <class B>
void
loadLatchW(uint64_t *d, const uint64_t *s, size_t nw, uint64_t tm,
           bool invert)
{
    if constexpr (!std::is_same_v<typename B::Narrower, void>) {
        if (nw < B::W) {
            loadLatchW<typename B::Narrower>(d, s, nw, tm, invert);
            return;
        }
    }
    if (invert)
        loadLatchPass<B, true>(d, s, nw, tm);
    else
        loadLatchPass<B, false>(d, s, nw, tm);
}
/// @}

/** Assemble one tier's dispatch table from the B instantiations. */
template <class B>
Table
makeTable(common::simd::Tier tier)
{
    Table t{};
    t.tier = tier;
    t.logic2 = &logic2W<B>;
    t.logic2Pred = &logic2PredW<B>;
    t.add = &addW<B>;
    t.addPred = &addPredW<B>;
    t.copy = &copyW<B>;
    t.copyPred = &copyPredW<B>;
    t.imm = &immW<B>;
    t.immPred = &immPredW<B>;
    t.latchStore = &latchStoreW<B>;
    t.latchStorePred = &latchStorePredW<B>;
    t.tagFold = &tagFoldW<B>;
    t.tagAndXnor = &tagAndXnorPass<B>;
    t.loadLatch = &loadLatchW<B>;
    t.transposeBlocks = &transposeBlocksPass<B>;
    t.packPlanes = &packPlanesPass<B>;
    return t;
}

} // namespace

} // namespace nc::sram::kern


#endif // NC_SRAM_KERNELS_IMPL_HH
