/**
 * @file
 * The SRAM array model card (Figure 12 and the §V SPICE table):
 * circuit delays, clocks, per-cycle energy at both process nodes,
 * area overheads, and the bit-serial cycle formulas in both variants.
 */

#include <cstdio>

#include "bitserial/cost.hh"
#include "cache/cbox.hh"
#include "sram/timing.hh"

int
main()
{
    using namespace nc;

    sram::TimingParams t;
    sram::EnergyParams e28 = sram::EnergyParams::node28nm();
    sram::EnergyParams e22 = sram::EnergyParams::node22nm();
    sram::AreaParams a;

    std::printf("=== SRAM array model card (paper §V / Figure 12) "
                "===\n");
    std::printf("compute cycle delay      %8.0f ps (paper 1022)\n",
                t.computeDelayPs);
    std::printf("normal read delay        %8.0f ps (paper 654)\n",
                t.readDelayPs);
    std::printf("compute/read slowdown    %8.2fx (paper ~1.6x)\n",
                t.computeSlowdown());
    std::printf("compute clock            %8.2f GHz\n",
                t.computeClock.freqHz * 1e-9);
    std::printf("access clock             %8.2f GHz\n",
                t.accessClock.freqHz * 1e-9);
    std::printf("256-bit access energy    %8.1f pJ @28nm, %.1f pJ "
                "@22nm\n",
                e28.accessPj, e22.accessPj);
    std::printf("256-lane compute energy  %8.1f pJ @28nm, %.1f pJ "
                "@22nm\n",
                e28.computePj, e22.computePj);
    std::printf("array area overhead      %8.1f %% (die: <%.0f %%)\n",
                a.peripheralOverhead * 100, a.dieOverhead * 100);
    std::printf("TMU macro area           %8.3f mm^2\n", a.tmuAreaMm2);

    cache::CBox cbox;
    std::printf("bank control FSM         %8.0f um^2 x %u/slice "
                "= %.2f mm^2 chip-wide (paper 0.23)\n",
                cbox.fsmAreaUm2, cbox.fsmsPerSlice,
                cbox.fsmAreaMm2(14));

    std::printf("\n=== bit-serial cycle formulas (8-bit) ===\n");
    std::printf("%-16s %10s %10s\n", "op", "ours", "paper");
    std::printf("%-16s %10llu %10llu\n", "add",
                (unsigned long long)bitserial::implAddCycles(8, true),
                (unsigned long long)bitserial::paperAddCycles(8));
    std::printf("%-16s %10llu %10llu\n", "multiply",
                (unsigned long long)bitserial::implMulCycles(8),
                (unsigned long long)bitserial::paperMulCycles(8));
    std::printf("%-16s %10llu %10.0f\n", "divide",
                (unsigned long long)bitserial::implDivCycles(8, 8),
                bitserial::paperDivCycles(8));
    std::printf("%-16s %10llu %10s\n", "mac (24b acc)",
                (unsigned long long)bitserial::implMacScratchCycles(
                    8, 24),
                "236*");
    std::printf("%-16s %10llu %10s\n", "reduce 128ch",
                (unsigned long long)bitserial::implReduceSumCycles(
                    24, 128, 2),
                "660*");
    std::printf("(*: the paper's calibrated per-conv constants, used "
                "by the default cost-model mode)\n");
    return 0;
}
