/**
 * @file
 * Extension ablation: zero-skipping MACs (the paper's stated future
 * work, §VII: "Utilizing sparsity in DNN models for Neural Cache is a
 * promising direction").
 *
 * The one-cycle wired-OR detect (bitserial::macScratchSkipZero) skips
 * a MAC only when the multiplier is zero in *every* lane — SIMD
 * lock-step means per-lane sparsity does not help, only whole-slice
 * sparsity does. This bench measures both: real skip rates on random
 * data with per-element zero probability p (lanes conspiring rarely),
 * and with structured channel-group sparsity (whole lanes-groups
 * zeroed together, as pruning would produce).
 */

#include <cstdio>

#include "bitserial/extensions.hh"
#include "common/rng.hh"

int
main()
{
    using namespace nc;
    namespace bs = bitserial;

    const unsigned trials = 64;
    std::printf("=== Ablation: zero-skip MACs vs weight sparsity "
                "===\n");
    std::printf("%12s %22s %22s\n", "zero prob",
                "random sparsity", "structured sparsity");
    std::printf("%12s %11s %10s %11s %10s\n", "",
                "cycles/MAC", "skipped", "cycles/MAC", "skipped");

    for (double p : {0.0, 0.5, 0.8, 0.9, 0.95, 0.99, 1.0}) {
        uint64_t cyc_rand = 0, skip_rand = 0;
        uint64_t cyc_struct = 0, skip_struct = 0;
        Rng rng(static_cast<uint64_t>(p * 1000) + 3);

        for (unsigned t = 0; t < trials; ++t) {
            sram::Array arr(256, 256);
            bs::RowAllocator rows(256);
            unsigned zrow = rows.zeroRow();
            bs::VecSlice a = rows.alloc(8), b = rows.alloc(8);
            bs::VecSlice acc = rows.alloc(24);
            bs::VecSlice scratch = rows.alloc(16);

            // Random: each lane's multiplier is zero with prob p.
            std::vector<uint64_t> bv(256);
            for (auto &v : bv)
                v = rng.uniformReal(0, 1) < p ? 0 : rng.uniformBits(8);
            bs::storeVector(arr, a, rng.bitVector(256, 8));
            bs::storeVector(arr, b, bv);
            uint64_t c = bs::macScratchSkipZero(arr, a, b, acc,
                                                scratch, zrow);
            cyc_rand += c;
            skip_rand += c == bs::implMacSkipHitCycles();

            // Structured: the whole multiplier slice is zero with
            // prob p (pruned channel groups land together).
            bool zero_group = rng.uniformReal(0, 1) < p;
            std::vector<uint64_t> sv(256, 0);
            if (!zero_group)
                sv = rng.bitVector(256, 8);
            bs::storeVector(arr, b, sv);
            c = bs::macScratchSkipZero(arr, a, b, acc, scratch, zrow);
            cyc_struct += c;
            skip_struct += c == bs::implMacSkipHitCycles();
        }
        std::printf("%11.0f%% %11.1f %9.0f%% %11.1f %9.0f%%\n",
                    p * 100, double(cyc_rand) / trials,
                    100.0 * skip_rand / trials,
                    double(cyc_struct) / trials,
                    100.0 * skip_struct / trials);
    }
    std::printf("\nlesson: SIMD lock-step only profits from "
                "*structured* sparsity — random zeros almost never "
                "align across 256 lanes (dense MAC: %llu cycles).\n",
                (unsigned long long)bs::implMacScratchCycles(8, 24));
    return 0;
}
