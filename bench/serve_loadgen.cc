/**
 * @file
 * Load generator for the inference serving front end.
 *
 * Hosts an InferenceServer around the shared "batch-functional"
 * workload (bench/batch_net.hh) and drives it with open- or
 * closed-loop traffic over either transport, recording p50/p99
 * latency, images/s, the batch-occupancy histogram, and the
 * backpressure reject count — optionally as JSON for CI artifacts.
 * Every served output is verified bit-identical to a direct
 * CompiledModel::runBatch of the same inputs unless --no-verify;
 * the process exits nonzero on any mismatch or transport error, so
 * CI can gate on it.
 *
 * Usage: serve_loadgen [--mode loopback|socket] [--requests N]
 *          [--clients N] [--rate RPS] [--threads N] [--seed S]
 *          [--port P] [--deadline-ms D] [--max-inflight M]
 *          [--priority P] [--json PATH] [--no-verify]
 */

#include <cstdio>
#include <string>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "core/engine.hh"
#include "serve/flags.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"

#include "batch_net.hh"

int
main(int argc, char **argv)
{
    using namespace nc;

    serve::ServeFlags flags;
    std::string mode = "loopback";
    unsigned requests = 64, clients = 4, threads = 0;
    double rate = 0;
    uint64_t seed = 1;
    std::string jsonPath;
    bool noVerify = false;
    common::ArgParser args("serve_loadgen",
                           "Load generator for the serving front end");
    flags.registerWith(args);
    args.addString("mode", &mode, "loopback|socket transport");
    args.addUint("requests", &requests, "total requests to send", 1,
                 1u << 20);
    args.addUint("clients", &clients, "concurrent client channels", 1,
                 256);
    args.addDouble("rate", &rate,
                   "open-loop arrivals/s (0 = closed loop)");
    args.addUnsigned("threads", &threads, "engine workers (0 = auto)");
    args.addUint64("seed", &seed, "request input seed");
    args.addString("json", &jsonPath, "write stats JSON here");
    args.addFlag("no-verify", &noVerify,
                 "skip the direct-runBatch parity check");
    args.parse(argc, argv);
    if (mode != "loopback" && mode != "socket")
        nc_fatal("--mode must be loopback or socket (got '%s')",
                 mode.c_str());

    // The shared §IV-E bench workload, so serve numbers stay
    // comparable with the batch section of BENCH_simspeed.json.
    auto net = benchnet::batchFunctionalNet();
    core::EngineOptions eopts;
    eopts.backend = core::BackendKind::Functional;
    eopts.threads = threads;
    core::Engine engine(eopts);
    auto model = engine.compile(net);

    serve::InferenceServer server(model, flags.serverOptions());
    if (mode == "socket") {
        std::string err;
        if (!server.start(&err))
            nc_fatal("cannot start the socket server (%s) — use "
                     "--mode loopback", err.c_str());
        std::printf("serve_loadgen: serving on 127.0.0.1:%u\n",
                    server.port());
    }

    serve::LoadGenOptions lopts;
    lopts.requests = requests;
    lopts.clients = clients;
    lopts.openLoopRps = rate;
    lopts.priority = flags.priority;
    lopts.seed = seed;
    lopts.verify = !noVerify;
    lopts.overSocket = mode == "socket";
    auto stats = serve::runLoadGen(model, server, lopts);
    server.shutdown();

    std::printf(
        "serve_loadgen: %s %s, %u clients: %llu ok, %llu rejected, "
        "%llu errors — p50 %.2f ms, p99 %.2f ms, %.1f img/s, "
        "mean occupancy %.2f (deadline %u ms, max-inflight %u)\n",
        mode.c_str(), rate > 0 ? "open-loop" : "closed-loop", clients,
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.errors), stats.p50Ms,
        stats.p99Ms, stats.imagesPerSec, stats.meanOccupancy,
        flags.deadlineMs, flags.maxInflight);
    if (!noVerify)
        std::printf("serve_loadgen: %llu/%llu served outputs "
                    "bit-identical to direct runBatch\n",
                    static_cast<unsigned long long>(stats.completed -
                                                    stats.mismatched),
                    static_cast<unsigned long long>(stats.completed));

    if (!jsonPath.empty()) {
        std::FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (!f)
            nc_fatal("cannot open %s for writing", jsonPath.c_str());
        std::fprintf(f,
            "{\n"
            "  \"bench\": \"serve\",\n"
            "  \"schema\": 1,\n"
            "  \"mode\": \"%s\",\n"
            "  \"loop\": \"%s\",\n"
            "  \"requests\": %u,\n"
            "  \"clients\": %u,\n"
            "  \"rate_rps\": %.1f,\n"
            "  \"deadline_ms\": %u,\n"
            "  \"max_inflight\": %u,\n"
            "  \"completed\": %llu,\n"
            "  \"rejected\": %llu,\n"
            "  \"errors\": %llu,\n"
            "  \"p50_ms\": %.3f,\n"
            "  \"p99_ms\": %.3f,\n"
            "  \"images_per_s\": %.1f,\n"
            "  \"mean_occupancy\": %.2f,\n"
            "  \"occupancy_hist\": [",
            mode.c_str(), rate > 0 ? "open" : "closed", requests,
            clients, rate, flags.deadlineMs, flags.maxInflight,
            static_cast<unsigned long long>(stats.completed),
            static_cast<unsigned long long>(stats.rejected),
            static_cast<unsigned long long>(stats.errors),
            stats.p50Ms, stats.p99Ms, stats.imagesPerSec,
            stats.meanOccupancy);
        for (size_t n = 1; n < stats.occupancyHist.size(); ++n)
            std::fprintf(f, "%s%llu", n > 1 ? ", " : "",
                         static_cast<unsigned long long>(
                             stats.occupancyHist[n]));
        std::fprintf(f,
            "],\n"
            "  \"verified\": \"%s\"\n"
            "}\n",
            noVerify ? "skipped"
                     : (stats.mismatched ? "MISMATCH"
                                         : "bit-identical"));
        std::fclose(f);
        std::printf("serve_loadgen: wrote %s\n", jsonPath.c_str());
    }

    if (stats.mismatched > 0)
        nc_fatal("%llu served outputs diverged from direct runBatch",
                 static_cast<unsigned long long>(stats.mismatched));
    if (stats.errors > 0)
        nc_fatal("%llu requests failed in transport",
                 static_cast<unsigned long long>(stats.errors));
    return 0;
}
