/**
 * @file
 * Table IV: batch-1 inference latency as LLC capacity scales from
 * 35 MB (14 slices) to 45 MB (18) and 60 MB (24).
 */

#include <cstdio>

#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();
    struct Row
    {
        cache::Geometry geom;
        double paper_ms;
    };
    Row rows[] = {{cache::Geometry::xeonE5_35MB(), 4.72},
                  {cache::Geometry::scaled45MB(), 4.12},
                  {cache::Geometry::scaled60MB(), 3.79}};

    std::printf("=== Table IV: scaling with cache capacity "
                "(batch 1) ===\n");
    std::printf("%-16s %10s %10s %10s %10s\n", "capacity",
                "latency ms", "paper ms", "ratio", "paper");
    double base = 0, paper_base = 0;
    for (const Row &r : rows) {
        core::NeuralCacheConfig cfg;
        cfg.geometry = r.geom;
        auto rep = core::NeuralCache(cfg).infer(net);
        double ms = rep.latencyMs();
        if (base == 0) {
            base = ms;
            paper_base = r.paper_ms;
        }
        std::printf("%-16s %10.2f %10.2f %10.3f %10.3f\n",
                    r.geom.name.c_str(), ms, r.paper_ms, ms / base,
                    r.paper_ms / paper_base);
    }
    std::printf("\nfilter loading is capacity-independent; compute "
                "and input streaming scale with slice count (§VI-D)\n");
    return 0;
}
