/**
 * @file
 * Fault sweep: graceful capacity degradation, measured.
 *
 * Kills a growing prefix of the physical arrays of a shrunken 1-slice
 * cache and runs the shared batch-functional workload after each
 * campaign: the compile-time BIST retires the dead arrays, placement
 * re-packs the survivors, and the batch band plan sheds image slots
 * until the last sweep point no longer fits one whole image and
 * degrades to the streaming regime. Every row's outputs are verified
 * bit-identical to the fault-free run — capacity degrades, accuracy
 * never does.
 *
 * Usage: fault_sweep [--batch N] [--rate R] [--seed S]
 *   --rate adds one extra row with random whole-array kills at that
 *   per-array probability (seeded by --seed) on top of the sweep.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "core/engine.hh"

#include "batch_net.hh"

namespace
{

using namespace nc;

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

core::EngineOptions
baseOptions()
{
    core::EngineOptions opts;
    opts.backend = core::BackendKind::Functional;
    // One slice, six ways: 96 arrays, small enough that the sweep
    // actually exhausts capacity instead of scratching 4480 arrays.
    opts.config.geometry.slices = 1;
    opts.config.geometry.waysPerSlice = 6;
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned batch = 8;
    double rate = 0.0;
    uint64_t seed = 0xfa017;
    common::ArgParser args(
        "fault_sweep",
        "Capacity degradation under growing whole-array kill counts");
    args.addUnsigned("batch", &batch, "images per batch (>= 1)");
    args.addDouble("rate", &rate,
                   "extra row: random kill probability [0, 1]");
    args.addUint64("seed", &seed, "seed for the --rate row");
    args.parse(argc, argv);
    if (batch < 1)
        nc_fatal("--batch must be >= 1");
    if (rate < 0.0 || rate > 1.0)
        nc_fatal("--rate %g is outside [0, 1]", rate);

    auto net = benchnet::batchFunctionalNet();
    auto images = benchnet::batchFunctionalImages(batch);

    // Fault-free baseline: ground-truth outputs, full capacity.
    auto base_opts = baseOptions();
    auto baseline = core::Engine(base_opts).compile(net);
    auto want = baseline.runBatch(images);
    const uint64_t total = base_opts.config.geometry.totalArrays();
    const uint64_t per_image = baseline.batchBands().perImageArrays;

    // Kill prefixes of growing size; the last point leaves fewer
    // survivors than one image's footprint, forcing streaming.
    std::vector<uint64_t> kills = {0, total / 8, total / 4, total / 2};
    if (total > per_image + 1)
        kills.push_back(total - per_image + 1);

    std::printf("fault_sweep: %s, batch %u, %llu arrays total, %llu "
                "per image slot\n\n",
                net.name.c_str(), batch,
                (unsigned long long)total,
                (unsigned long long)per_image);
    std::printf("%8s %8s %8s %6s %10s %10s  %s\n", "killed", "usable",
                "retired", "slots", "regime", "batch_ms", "outputs");

    auto row = [&](const char *tag, core::EngineOptions opts) {
        auto model = core::Engine(opts).compile(net);
        auto t0 = std::chrono::steady_clock::now();
        auto got = model.runBatch(images);
        double ms = msSince(t0);
        bool ok = true;
        for (unsigned i = 0; i < batch; ++i)
            ok = ok && got.outputs[i].data() == want.outputs[i].data();
        const auto &bands = model.batchBands();
        std::printf("%8s %8llu %8llu %6u %10s %10.2f  %s\n", tag,
                    (unsigned long long)(total -
                                         got.report.arraysRetired),
                    (unsigned long long)got.report.arraysRetired,
                    bands.imageSlots,
                    bands.resident ? "resident" : "streaming", ms,
                    ok ? "identical" : "MISMATCH");
        if (!ok)
            nc_fatal("fault campaign '%s' changed the outputs", tag);
    };

    for (uint64_t k : kills) {
        auto opts = baseOptions();
        for (uint64_t i = 0; i < k; ++i)
            opts.faults.killArrays.push_back(i);
        char tag[32];
        std::snprintf(tag, sizeof tag, "%llu",
                      (unsigned long long)k);
        row(tag, opts);
    }

    if (rate > 0.0) {
        auto opts = baseOptions();
        opts.faults.seed = seed;
        opts.faults.killRate = rate;
        // Random campaigns can land anywhere; keep at least one
        // deterministic casualty so the row is never a no-op.
        opts.faults.killArrays.push_back(0);
        char tag[32];
        std::snprintf(tag, sizeof tag, "p=%.3f", rate);
        row(tag, opts);
    }

    std::printf("\nevery campaign produced bit-identical outputs on "
                "the surviving arrays\n");
    return 0;
}
