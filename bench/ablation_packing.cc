/**
 * @file
 * Ablation: filter packing on/off (paper §IV-A).
 *
 * Packing compresses 1x1 filters 16 channels per bit line, shrinking
 * the reduction tree and — critically — keeping every channel group
 * within the two arrays that share sense amps. Disabling it shows
 * what the pointwise-heavy layers would cost.
 */

#include <cstdio>

#include "core/cost_model.hh"
#include "dnn/inception_v3.hh"
#include "mapping/plan.hh"

int
main()
{
    using namespace nc;

    cache::Geometry geom = cache::Geometry::xeonE5_35MB();
    core::CostModel model(geom);

    mapping::TransformLimits packed;
    mapping::TransformLimits unpacked;
    unpacked.packTarget = 1;

    std::printf("=== Ablation: filter packing for pointwise layers "
                "===\n");
    std::printf("%-22s %6s | %6s %7s %10s | %6s %7s %10s | %7s\n",
                "layer", "C", "lanes", "passes", "layer kcyc",
                "lanes", "passes", "layer kcyc", "speedup");
    std::printf("%-22s %6s | %25s | %25s |\n", "", "",
                "packed (x16)", "unpacked");

    double packed_total = 0, unpacked_total = 0;
    auto net = dnn::inceptionV3();
    for (const auto &st : net.stages) {
        for (const auto &b : st.branches) {
            for (const auto &op : b.ops) {
                if (!op.isConv() || op.conv.r * op.conv.s != 1 ||
                    op.conv.c < 256)
                    continue;
                auto pp = mapping::planConv(op.conv, geom, packed);
                auto up = mapping::planConv(op.conv, geom, unpacked);
                // Whole-layer arithmetic cycles: passes x per-conv.
                double pk = (model.macCyclesPerConv(pp) +
                             model.reduceCyclesPerConv(pp)) *
                            static_cast<double>(pp.serialPasses) /
                            1000.0;
                double uk = (model.macCyclesPerConv(up) +
                             model.reduceCyclesPerConv(up)) *
                            static_cast<double>(up.serialPasses) /
                            1000.0;
                packed_total += pk;
                unpacked_total += uk;
                std::printf("%-22s %6u | %6u %7llu %10.1f | %6u "
                            "%7llu %10.1f | %6.2fx\n",
                            op.name().c_str(), op.conv.c,
                            pp.lanesPerConv,
                            (unsigned long long)pp.serialPasses, pk,
                            up.lanesPerConv,
                            (unsigned long long)up.serialPasses, uk,
                            uk / pk);
            }
        }
    }
    std::printf("\ntotals: packed %.0f kcycles vs unpacked %.0f "
                "kcycles (%.2fx) across the wide pointwise layers\n",
                packed_total, unpacked_total,
                unpacked_total / packed_total);
    std::printf("packing also guarantees every channel group fits "
                "the sense-amp pair (paper §IV-A)\n");
    return 0;
}
