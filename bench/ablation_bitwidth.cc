/**
 * @file
 * Ablation: operand bit-width sweep.
 *
 * "bit-serial operation allows for flexible operand bit-width, which
 * can be advantageous in DNNs where the required bit width can vary
 * from layer to layer" (§III-A). Arithmetic time scales ~linearly
 * (add) and ~quadratically (multiply) with precision; this sweep
 * shows the whole-network effect in analytic mode.
 */

#include <cstdio>

#include "bitserial/cost.hh"
#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();

    std::printf("=== Ablation: operand precision (analytic mode) "
                "===\n");
    std::printf("%6s %10s %12s %12s %12s\n", "bits", "mac cyc",
                "mac ms", "reduce ms", "arith ms");
    for (unsigned bits : {2u, 4u, 6u, 8u, 12u, 16u}) {
        core::NeuralCacheConfig cfg;
        cfg.cost.mode = core::ArithMode::Analytic;
        cfg.cost.bits = bits;
        cfg.cost.accumulatorBits = 3 * bits;
        core::NeuralCache sim(cfg);
        auto rep = sim.infer(net);
        std::printf("%6u %10llu %12.4f %12.4f %12.4f\n", bits,
                    (unsigned long long)bitserial::implMacScratchCycles(
                        bits, 3 * bits),
                    rep.phases.macPs * picoToMs,
                    rep.phases.reducePs * picoToMs,
                    (rep.phases.macPs + rep.phases.reducePs) *
                        picoToMs);
    }
    std::printf("\nMAC cycles grow ~quadratically with precision "
                "(bit-serial multiply is O(n^2)); 8-bit is the "
                "paper's operating point.\n");
    return 0;
}
