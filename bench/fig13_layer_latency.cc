/**
 * @file
 * Figure 13: per-layer inference latency of Inception v3 on the CPU,
 * GPU, and Neural Cache, plus the paper's Conv2D_2b anchor numbers.
 */

#include <cstdio>

#include "baselines/device_model.hh"
#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"
#include "mapping/plan.hh"

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();
    auto cpu = baselines::DeviceModel::xeonE5_2697v3(net);
    auto gpu = baselines::DeviceModel::titanXp(net);
    core::NeuralCache sim;
    auto rep = sim.infer(net);

    auto cpu_ms = cpu.stageLatenciesMs(net);
    auto gpu_ms = gpu.stageLatenciesMs(net);

    std::printf("=== Figure 13: latency by layer (ms) ===\n");
    std::printf("%-17s %9s %9s %13s\n", "layer", "cpu", "gpu",
                "neural-cache");
    double ct = 0, gt = 0, nt = 0;
    for (size_t i = 0; i < net.stages.size(); ++i) {
        double nc_ms = rep.stages[i].totalPs() * picoToMs;
        std::printf("%-17s %9.3f %9.3f %13.4f\n",
                    net.stages[i].name.c_str(), cpu_ms[i], gpu_ms[i],
                    nc_ms);
        ct += cpu_ms[i];
        gt += gpu_ms[i];
        nt += nc_ms;
    }
    std::printf("%-17s %9.3f %9.3f %13.4f\n", "total", ct, gt, nt);

    // The paper's §VI-A anchor for Conv2D_2b_3x3.
    const auto &anchor = net.stages[2].branches[0].ops[0].conv;
    auto plan = mapping::planConv(anchor, sim.config().geometry);
    const auto &model = sim.costModel();
    double cycles_per_conv = model.macCyclesPerConv(plan) +
                             model.reduceCyclesPerConv(plan);
    std::printf("\nConv2D_2b anchor (paper §VI-A):\n");
    std::printf("  parallel convs  %8llu (paper ~32 thousand)\n",
                (unsigned long long)plan.parallelConvs);
    std::printf("  serial passes   %8llu (paper 43)\n",
                (unsigned long long)plan.serialPasses);
    std::printf("  cycles/conv     %8.0f (paper 2784 = 236x9 + 660)\n",
                cycles_per_conv);
    std::printf("  utilization     %8.1f %% (paper 99.7%%)\n",
                plan.utilization * 100);
    std::printf("  conv time       %8.4f ms (paper 0.0479)\n",
                model.computePs(cycles_per_conv *
                                (double)plan.serialPasses) *
                    picoToMs);
    return 0;
}
