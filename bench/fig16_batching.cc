/**
 * @file
 * Figure 16: throughput (inferences/second) as batch size sweeps 1 to
 * 256 for the CPU, GPU, and the dual-socket Neural Cache node. The
 * network is compiled once; the whole sweep is answered from the
 * cached per-stage costs of one CompiledModel, including the §IV-E
 * image-parallel pass structure (concurrent image slots carved from
 * the spare array capacity, over-capacity batches time-slicing).
 *
 * The analytic table is followed by a functional datapoint: a small
 * network executed for real through the bit-serial arrays, a serial
 * per-image loop versus the image-parallel runBatch fan-out, with
 * measured wall time and images/s — the same pass structure the
 * analytic report prices, now observable.
 */

#include <chrono>
#include <cstdio>

#include "baselines/device_model.hh"
#include "core/engine.hh"
#include "dnn/inception_v3.hh"

#include "batch_net.hh"

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();
    core::EngineOptions opts;
    opts.backend = core::BackendKind::Analytic;
    core::Engine engine(opts);
    auto model = engine.compile(net);

    // Baseline batch curves fitted to the paper's endpoints: peak
    // throughputs derive from "604 inf/s = 12.4x CPU = 2.2x GPU".
    auto cpu_curve =
        baselines::BatchCurve::fit(86.0, 604.0 / 12.4);
    auto gpu_curve =
        baselines::BatchCurve::fit(86.0 / 18.3 * 7.7, 604.0 / 2.2);

    std::printf("=== Figure 16: throughput vs batch size (inf/s) "
                "===\n");
    std::printf("%7s %10s %10s %14s %14s %7s %7s\n", "batch", "cpu",
                "gpu", "neural-cache", "nc batch ms", "slots",
                "passes");
    for (unsigned b : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        auto rep = model.report(b);
        std::printf("%7u %10.1f %10.1f %14.1f %14.2f %7u %7llu\n", b,
                    cpu_curve.throughput(b), gpu_curve.throughput(b),
                    rep.throughput(), rep.batchMs(), rep.imageSlots,
                    static_cast<unsigned long long>(rep.batchPasses));
    }

    auto peak = model.report(256);
    std::printf("\npeak nc throughput %.0f inf/s (paper 604; "
                "2.2x gpu, 12.4x cpu)\n",
                peak.throughput());
    std::printf("ratios: %.1fx gpu, %.1fx cpu\n",
                peak.throughput() / gpu_curve.throughput(256),
                peak.throughput() / cpu_curve.throughput(256));
    auto single = model.report(1);
    std::printf("filter-load amortization: batch-1 pays %.2f ms of "
                "weight streaming per image, batch-256 pays %.3f ms\n",
                single.phases.filterLoadPs * picoToMs,
                single.phases.filterLoadPs * picoToMs / 256);

    // --- Functional datapoint: measured image-parallel batching ----
    // The shared small conv net (bench/batch_net.hh, same workload
    // perf_report's batch section times); the serial per-image loop
    // (1 worker) versus the image-parallel fan-out (>= 2 workers) on
    // the same batch, bit-identical by construction and checked here.
    auto fnet = benchnet::batchFunctionalNet();
    const unsigned batch = 8;
    auto images = benchnet::batchFunctionalImages(batch);

    core::EngineOptions serial_opts;
    serial_opts.backend = core::BackendKind::Functional;
    serial_opts.threads = 1;
    auto serial_model = core::Engine(serial_opts).compile(fnet);

    core::EngineOptions par_opts = serial_opts;
    par_opts.threads =
        std::max(2u, common::ThreadPool::defaultThreads());
    auto par_model = core::Engine(par_opts).compile(fnet);

    // Warm-up (untimed): the first batch pays the one-time lazy
    // replica pinning; the timed runs measure steady-state §IV-E
    // execution.
    (void)serial_model.runBatch(images);
    (void)par_model.runBatch(images);

    auto t0 = std::chrono::steady_clock::now();
    auto serial_res = serial_model.runBatch(images);
    double serial_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    auto par_res = par_model.runBatch(images);
    double par_s = secondsSince(t0);

    bool identical = true;
    for (unsigned i = 0; i < batch; ++i)
        identical &=
            serial_res.outputs[i].data() == par_res.outputs[i].data();

    std::printf("\nfunctional batch-%u datapoint (%s): serial "
                "%.1f ms (%.1f img/s), parallel x%u threads %.1f ms "
                "(%.1f img/s, %.2fx), %u image slots, %llu pass(es), "
                "outputs %s\n",
                batch, fnet.name.c_str(), serial_s * 1e3,
                batch / serial_s, par_opts.threads, par_s * 1e3,
                batch / par_s, serial_s / par_s,
                par_model.batchBands().imageSlots,
                static_cast<unsigned long long>(
                    par_model.batchBands().passes(batch)),
                identical ? "bit-identical" : "DIVERGED");
    return identical ? 0 : 1;
}
