/**
 * @file
 * Figure 16: throughput (inferences/second) as batch size sweeps 1 to
 * 256 for the CPU, GPU, and the dual-socket Neural Cache node. The
 * network is compiled once; the whole sweep is answered from the
 * cached per-stage costs of one CompiledModel.
 */

#include <cstdio>

#include "baselines/device_model.hh"
#include "core/engine.hh"
#include "dnn/inception_v3.hh"

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();
    core::EngineOptions opts;
    opts.backend = core::BackendKind::Analytic;
    core::Engine engine(opts);
    auto model = engine.compile(net);

    // Baseline batch curves fitted to the paper's endpoints: peak
    // throughputs derive from "604 inf/s = 12.4x CPU = 2.2x GPU".
    auto cpu_curve =
        baselines::BatchCurve::fit(86.0, 604.0 / 12.4);
    auto gpu_curve =
        baselines::BatchCurve::fit(86.0 / 18.3 * 7.7, 604.0 / 2.2);

    std::printf("=== Figure 16: throughput vs batch size (inf/s) "
                "===\n");
    std::printf("%7s %10s %10s %14s %14s\n", "batch", "cpu", "gpu",
                "neural-cache", "nc batch ms");
    for (unsigned b : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        auto rep = model.report(b);
        std::printf("%7u %10.1f %10.1f %14.1f %14.2f\n", b,
                    cpu_curve.throughput(b), gpu_curve.throughput(b),
                    rep.throughput(), rep.batchMs());
    }

    auto peak = model.report(256);
    std::printf("\npeak nc throughput %.0f inf/s (paper 604; "
                "2.2x gpu, 12.4x cpu)\n",
                peak.throughput());
    std::printf("ratios: %.1fx gpu, %.1fx cpu\n",
                peak.throughput() / gpu_curve.throughput(256),
                peak.throughput() / cpu_curve.throughput(256));
    auto single = model.report(1);
    std::printf("filter-load amortization: batch-1 pays %.2f ms of "
                "weight streaming per image, batch-256 pays %.3f ms\n",
                single.phases.filterLoadPs * picoToMs,
                single.phases.filterLoadPs * picoToMs / 256);
    return 0;
}
