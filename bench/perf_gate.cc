/**
 * @file
 * CI perf-regression gate over BENCH_simspeed.json.
 *
 * Compares a freshly generated report against the committed baseline
 * and fails (exit 1) when a gated throughput metric dropped by more
 * than the tolerance (default 15%). Gated metrics:
 *
 *   - micro.tiers.<t>.opadd_mops and
 *     micro.tiers.<t>.store_vector_mlanes_per_s for every dispatch
 *     tier present in BOTH files — a tier only one host can run is
 *     skipped, so an avx512 baseline does not fail an avx2 runner;
 *   - conv_layer.sim_cycles_per_sec, only when the two reports were
 *     generated at the same dispatch tier (otherwise the numbers
 *     measure different kernels and the comparison is noise);
 *   - the top-level micro.opadd_mops / store_vector_mlanes_per_s
 *     pair as a schema-5 fallback when a file has no tiers section.
 *
 * Improvements are never an error; the gate is one-sided. The JSON
 * reader is deliberately minimal: it understands exactly the object/
 * string/number subset perf_report emits, flattened to dotted paths.
 *
 * Usage: perf_gate BASELINE.json NEW.json [--tolerance FRAC]
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace
{

/** Flat view of a JSON document: dotted path -> scalar token. */
using Doc = std::map<std::string, std::string>;

struct Parser
{
    const char *p;
    const char *end;
    const char *file;

    void
    fail(const char *what) const
    {
        std::fprintf(stderr, "perf_gate: %s: malformed JSON (%s)\n",
                     file, what);
        std::exit(2);
    }

    void
    ws()
    {
        while (p < end && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    char
    peek()
    {
        ws();
        if (p == end)
            fail("unexpected end");
        return *p;
    }

    std::string
    string()
    {
        if (peek() != '"')
            fail("expected string");
        ++p;
        std::string s;
        while (p < end && *p != '"') {
            if (*p == '\\')
                fail("escapes unsupported");
            s += *p++;
        }
        if (p == end)
            fail("unterminated string");
        ++p;
        return s;
    }

    void
    value(Doc &doc, const std::string &path)
    {
        char c = peek();
        if (c == '{') {
            ++p;
            if (peek() == '}') {
                ++p;
                return;
            }
            for (;;) {
                std::string key = string();
                if (peek() != ':')
                    fail("expected ':'");
                ++p;
                value(doc, path.empty() ? key : path + "." + key);
                char d = peek();
                ++p;
                if (d == '}')
                    return;
                if (d != ',')
                    fail("expected ',' or '}'");
            }
        }
        if (c == '"') {
            doc[path] = string();
            return;
        }
        // Bare scalar: number / true / false / null.
        std::string tok;
        while (p < end && !std::isspace(static_cast<unsigned char>(*p))
               && *p != ',' && *p != '}' && *p != ']')
            tok += *p++;
        if (tok.empty())
            fail("expected value");
        doc[path] = tok;
    }
};

Doc
load(const char *path)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f) {
        std::fprintf(stderr, "perf_gate: cannot open %s\n", path);
        std::exit(2);
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    Doc doc;
    Parser ps{text.data(), text.data() + text.size(), path};
    ps.value(doc, "");
    return doc;
}

std::optional<double>
number(const Doc &doc, const std::string &path)
{
    auto it = doc.find(path);
    if (it == doc.end())
        return std::nullopt;
    return std::strtod(it->second.c_str(), nullptr);
}

std::string
text(const Doc &doc, const std::string &path)
{
    auto it = doc.find(path);
    return it == doc.end() ? std::string() : it->second;
}

/** Tiers with a micro.tiers.<name> section, in ladder order. */
std::vector<std::string>
tiersOf(const Doc &doc)
{
    std::vector<std::string> out;
    for (const char *t : {"scalar", "avx2", "avx512"})
        if (doc.count("micro.tiers." + std::string(t) +
                      ".opadd_mops"))
            out.push_back(t);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    double tolerance = 0.15;
    std::vector<const char *> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc)
            tolerance = std::strtod(argv[++i], nullptr);
        else
            files.push_back(argv[i]);
    }
    if (files.size() != 2) {
        std::fprintf(stderr, "usage: perf_gate BASELINE.json NEW.json "
                             "[--tolerance FRAC]\n");
        return 2;
    }

    Doc base = load(files[0]);
    Doc next = load(files[1]);

    unsigned failures = 0, checked = 0;
    auto check = [&](const std::string &metric, double was,
                     double now) {
        ++checked;
        double delta = was > 0 ? now / was - 1.0 : 0.0;
        bool bad = delta < -tolerance;
        std::printf("perf_gate: %-11s %-45s %12.2f -> %12.2f "
                    "(%+.1f%%)\n",
                    bad ? "REGRESSION" : "ok", metric.c_str(), was,
                    now, delta * 100.0);
        if (bad)
            ++failures;
    };

    // Per-tier kernel throughputs: only tiers both reports measured.
    auto base_tiers = tiersOf(base);
    auto next_tiers = tiersOf(next);
    bool tiered = false;
    for (const auto &t : base_tiers) {
        bool have = false;
        for (const auto &u : next_tiers)
            have |= u == t;
        if (!have) {
            std::printf("perf_gate: skip       tier %s (not runnable "
                        "on this host/build)\n",
                        t.c_str());
            continue;
        }
        tiered = true;
        for (const char *m :
             {"opadd_mops", "store_vector_mlanes_per_s"}) {
            std::string path = "micro.tiers." + t + "." + m;
            auto was = number(base, path), now = number(next, path);
            if (was && now)
                check(path, *was, *now);
        }
    }

    // Schema-5 fallback: no tiers section on one side, so compare
    // the top-level micros (same dispatch assumed by the old schema).
    if (!tiered) {
        for (const char *m : {"micro.opadd_mops",
                              "micro.store_vector_mlanes_per_s"}) {
            auto was = number(base, m), now = number(next, m);
            if (was && now)
                check(m, *was, *now);
        }
    }

    // End-to-end sim throughput is only comparable when both reports
    // dispatched the same kernels (missing dispatch = schema 5,
    // compared as-is for continuity).
    std::string bd = text(base, "dispatch"), nd = text(next, "dispatch");
    if (bd == nd || bd.empty() || nd.empty()) {
        auto was = number(base, "conv_layer.sim_cycles_per_sec");
        auto now = number(next, "conv_layer.sim_cycles_per_sec");
        if (was && now)
            check("conv_layer.sim_cycles_per_sec", *was, *now);
    } else {
        std::printf("perf_gate: skip       "
                    "conv_layer.sim_cycles_per_sec (dispatch %s vs "
                    "%s)\n",
                    bd.c_str(), nd.c_str());
    }

    if (checked == 0) {
        std::fprintf(stderr, "perf_gate: no comparable metrics "
                             "between %s and %s\n",
                     files[0], files[1]);
        return 2;
    }
    if (failures) {
        std::printf("perf_gate: FAIL — %u of %u metrics regressed "
                    "past %.0f%%\n",
                    failures, checked, tolerance * 100.0);
        return 1;
    }
    std::printf("perf_gate: PASS — %u metrics within %.0f%% of "
                "baseline\n",
                checked, tolerance * 100.0);
    return 0;
}
