/**
 * @file
 * google-benchmark micro suite for the bit-serial ALU (§III-B/C).
 *
 * Two things are reported per operation:
 *  - wall time of the functional simulation (host performance of the
 *    simulator itself), and
 *  - `cycles` / `elems_per_kcycle` counters: the modeled array cycles
 *    and the SIMD throughput they imply — the paper's argument that
 *    256-lane bit-serial beats element-serial despite long per-op
 *    latency.
 */

#include <benchmark/benchmark.h>

#include "bitserial/alu.hh"
#include "bitserial/extensions.hh"
#include "common/rng.hh"
#include "sram/tmu.hh"

namespace
{

using namespace nc::bitserial;
using nc::sram::Array;

struct Rig
{
    Array arr{256, 256};
    RowAllocator rows{256};
    unsigned zrow;
    nc::Rng rng{1};

    Rig() : zrow(rows.zeroRow()) {}

    VecSlice
    filled(unsigned bits)
    {
        VecSlice s = rows.alloc(bits);
        storeVector(arr, s, rng.bitVector(arr.cols(), bits));
        return s;
    }
};

void
reportCycles(benchmark::State &state, uint64_t cycles_per_iter,
             unsigned lanes)
{
    state.counters["cycles"] =
        benchmark::Counter(static_cast<double>(cycles_per_iter));
    state.counters["elems_per_kcycle"] = benchmark::Counter(
        1000.0 * lanes / static_cast<double>(cycles_per_iter));
}

void
BM_Add(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    Rig rig;
    VecSlice a = rig.filled(n), b = rig.filled(n);
    VecSlice out = rig.rows.alloc(n + 1);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles = add(rig.arr, a, b, out);
    reportCycles(state, cycles, rig.arr.cols());
}
BENCHMARK(BM_Add)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void
BM_Multiply(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    Rig rig;
    VecSlice a = rig.filled(n), b = rig.filled(n);
    VecSlice p = rig.rows.alloc(2 * n);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles = multiply(rig.arr, a, b, p);
    reportCycles(state, cycles, rig.arr.cols());
}
BENCHMARK(BM_Multiply)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void
BM_MacScratch(benchmark::State &state)
{
    Rig rig;
    VecSlice a = rig.filled(8), b = rig.filled(8);
    VecSlice acc = rig.rows.alloc(24);
    VecSlice scratch = rig.rows.alloc(16);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles = macScratch(rig.arr, a, b, acc, scratch, rig.zrow);
    reportCycles(state, cycles, rig.arr.cols());
}
BENCHMARK(BM_MacScratch);

void
BM_ReduceSum(benchmark::State &state)
{
    unsigned lanes = static_cast<unsigned>(state.range(0));
    Rig rig;
    unsigned steps = nc::log2Ceil(lanes);
    VecSlice acc = rig.rows.alloc(24 + steps);
    VecSlice scratch = rig.rows.alloc(24 + steps);
    storeVector(rig.arr, acc.slice(0, 24),
                rig.rng.bitVector(rig.arr.cols(), 24));
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles = reduceSum(rig.arr, acc, 24, lanes, scratch);
    reportCycles(state, cycles, lanes);
}
BENCHMARK(BM_ReduceSum)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

void
BM_Divide(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    Rig rig;
    VecSlice num = rig.filled(n);
    VecSlice den = rig.rows.alloc(4);
    std::vector<uint64_t> dv(rig.arr.cols());
    for (auto &x : dv)
        x = rig.rng.uniformInt(1, 15);
    storeVector(rig.arr, den, dv);
    VecSlice quot = rig.rows.alloc(n);
    VecSlice rwork = rig.rows.alloc(n + 4);
    VecSlice twork = rig.rows.alloc(5), dwork = rig.rows.alloc(5);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles =
            divide(rig.arr, num, den, quot, rwork, twork, dwork);
    reportCycles(state, cycles, rig.arr.cols());
}
BENCHMARK(BM_Divide)->Arg(8)->Arg(16);

void
BM_ReduceMax(benchmark::State &state)
{
    unsigned lanes = static_cast<unsigned>(state.range(0));
    Rig rig;
    VecSlice data = rig.filled(8);
    VecSlice mv = rig.rows.alloc(8), cmp = rig.rows.alloc(8);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles = reduceMax(rig.arr, data, lanes, mv, cmp);
    reportCycles(state, cycles, lanes);
}
BENCHMARK(BM_ReduceMax)->Arg(32)->Arg(256);

void
BM_Relu(benchmark::State &state)
{
    Rig rig;
    VecSlice v = rig.filled(8);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles = relu(rig.arr, v);
    reportCycles(state, cycles, rig.arr.cols());
}
BENCHMARK(BM_Relu);

void
BM_SearchKey(benchmark::State &state)
{
    Rig rig;
    VecSlice v = rig.filled(8);
    uint64_t cycles = 0;
    uint64_t key = 0;
    for (auto _ : state) {
        cycles = searchKey(rig.arr, v, key);
        key = (key + 1) & 0xff;
    }
    reportCycles(state, cycles, rig.arr.cols());
}
BENCHMARK(BM_SearchKey);

void
BM_EqualCompare(benchmark::State &state)
{
    Rig rig;
    VecSlice a = rig.filled(8), b = rig.filled(8);
    VecSlice s = rig.rows.alloc(1);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles = equalCompare(rig.arr, a, b, s);
    reportCycles(state, cycles, rig.arr.cols());
}
BENCHMARK(BM_EqualCompare);

void
BM_BatchNorm(benchmark::State &state)
{
    Rig rig;
    VecSlice x = rig.filled(8);
    VecSlice gamma = rig.filled(8), beta = rig.filled(8);
    VecSlice prod = rig.rows.alloc(16);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles = batchNorm(rig.arr, x, gamma, beta, 8, prod, rig.zrow);
    reportCycles(state, cycles, rig.arr.cols());
}
BENCHMARK(BM_BatchNorm);

void
BM_TmuStream(benchmark::State &state)
{
    // Functional transpose of one batch of 256 8-bit elements.
    nc::Rng rng(7);
    auto elems = rng.bitVector(256, 8);
    for (auto _ : state) {
        auto slices =
            nc::sram::TransposeUnit::transposeElements(elems, 8, 256);
        benchmark::DoNotOptimize(slices);
    }
    nc::sram::TransposeUnit proto(256, 64);
    state.counters["cycles"] = benchmark::Counter(
        static_cast<double>(proto.streamCycles(256, 8)));
}
BENCHMARK(BM_TmuStream);

void
BM_LaneShiftMove(benchmark::State &state)
{
    Rig rig;
    VecSlice v = rig.filled(24);
    VecSlice dst = rig.rows.alloc(24);
    uint64_t cycles = 0;
    for (auto _ : state) {
        cycles = 0;
        for (unsigned j = 0; j < 24; ++j) {
            rig.arr.opLaneShift(v.row(j), dst.row(j), 16, 2);
            cycles += 2;
        }
    }
    reportCycles(state, cycles, rig.arr.cols());
}
BENCHMARK(BM_LaneShiftMove);

/** One full conv window: 9 MACs + a 32-lane reduction. */
void
BM_ConvWindow(benchmark::State &state)
{
    Rig rig;
    std::vector<VecSlice> f, in;
    for (int k = 0; k < 9; ++k)
        f.push_back(rig.filled(8));
    for (int k = 0; k < 9; ++k)
        in.push_back(rig.filled(8));
    VecSlice acc = rig.rows.alloc(29);
    VecSlice scratch = rig.rows.alloc(28);
    VecSlice pscratch = rig.rows.alloc(16);
    uint64_t cycles = 0;
    for (auto _ : state) {
        cycles = zero(rig.arr, acc);
        for (int k = 0; k < 9; ++k)
            cycles += macScratch(rig.arr, f[k], in[k],
                                 acc.slice(0, 24), pscratch,
                                 rig.zrow);
        cycles += reduceSum(rig.arr, acc, 24, 32, scratch);
    }
    reportCycles(state, cycles, rig.arr.cols());
}
BENCHMARK(BM_ConvWindow);

} // namespace
