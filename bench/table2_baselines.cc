/**
 * @file
 * Table II: baseline CPU/GPU configurations as modeled, plus the
 * Neural Cache host configuration, with the calibration anchors.
 */

#include <cstdio>

#include "baselines/device_model.hh"
#include "cache/geometry.hh"
#include "dnn/inception_v3.hh"

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();
    auto cpu = baselines::DeviceModel::xeonE5_2697v3(net);
    auto gpu = baselines::DeviceModel::titanXp(net);

    std::printf("=== Table II: baseline configurations ===\n\n");
    auto print = [](const baselines::DeviceModel &m) {
        const auto &p = m.params();
        std::printf("%s\n", p.name.c_str());
        std::printf("  peak FP32            %8.2f TFLOP/s\n",
                    p.peakFlops * 1e-12);
        std::printf("  memory bandwidth     %8.1f GB/s\n",
                    p.memBwBytesPerSec * 1e-9);
        std::printf("  sustained efficiency %8.2f %% of peak\n",
                    p.computeEfficiency * 100);
        std::printf("  per-op overhead      %8.1f us\n",
                    p.perOpOverheadPs * 1e-6);
        std::printf("  measured power       %8.2f W (paper "
                    "RAPL/SMI)\n",
                    p.measuredPowerW);
        std::printf("  calibration scale    %8.3f\n\n",
                    m.calibrationScale());
    };
    print(cpu);
    print(gpu);

    cache::Geometry g = cache::Geometry::xeonE5_35MB();
    std::printf("neural-cache host (Xeon E5-2697 v3 LLC)\n");
    std::printf("  slices x ways x banks %5u x %u x %u\n", g.slices,
                g.waysPerSlice, g.banksPerWay);
    std::printf("  8KB arrays            %8u\n", g.totalArrays());
    std::printf("  compute clock         %8.1f GHz "
                "(4.0 GHz access)\n",
                2.5);
    std::printf("  bit-serial ALU slots  %8llu\n",
                static_cast<unsigned long long>(g.aluSlots()));
    return 0;
}
