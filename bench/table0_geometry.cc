/**
 * @file
 * §III-A headline numbers: arrays per slice, total arrays, bit-serial
 * ALU slots, capacity — printed for each Table IV geometry preset.
 */

#include <cstdio>

#include "cache/geometry.hh"
#include "common/units.hh"

int
main()
{
    using nc::cache::Geometry;

    std::printf("=== Cache geometry (paper §II-C / §III-A) ===\n");
    std::printf("%-18s %7s %12s %12s %14s %10s\n", "config", "slices",
                "arrays/slice", "total arrays", "alu slots",
                "capacity");
    for (const Geometry &g :
         {Geometry::xeonE5_35MB(), Geometry::scaled45MB(),
          Geometry::scaled60MB()}) {
        std::printf("%-18s %7u %12u %12u %14llu %8.0f MB\n",
                    g.name.c_str(), g.slices, g.arraysPerSlice(),
                    g.totalArrays(),
                    static_cast<unsigned long long>(g.aluSlots()),
                    nc::bytesToMiB(g.capacityBytes()));
    }

    Geometry g = Geometry::xeonE5_35MB();
    std::printf("\npaper check: 320 arrays/slice -> %u\n",
                g.arraysPerSlice());
    std::printf("paper check: 4480 arrays       -> %u\n",
                g.totalArrays());
    std::printf("paper check: 1,146,880 slots   -> %llu\n",
                static_cast<unsigned long long>(g.aluSlots()));
    std::printf("compute resources: %u ways, %u arrays, %llu slots "
                "(ways 19/20 reserved)\n",
                g.computeWays(), g.computeArrays(),
                static_cast<unsigned long long>(g.computeAluSlots()));
    return 0;
}
