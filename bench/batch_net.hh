/**
 * @file
 * The shared "batch-functional" workload of the §IV-E batch benches:
 * fig16_batching's functional datapoint and perf_report's schema-3
 * batch section measure the identical network and the identical
 * images, so their numbers stay comparable by construction.
 */

#ifndef NC_BENCH_BATCH_NET_HH
#define NC_BENCH_BATCH_NET_HH

#include <vector>

#include "common/rng.hh"
#include "dnn/layers.hh"
#include "dnn/random.hh"

namespace nc::benchnet
{

/** A small conv net the bit-serial executor runs end to end. */
inline dnn::Network
batchFunctionalNet()
{
    dnn::Network net;
    net.name = "batch-functional";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 12, 12, 8, 3, 3, 4, 1, true)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 12, 12, 4, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 6, 6, 4, 1, 1, 4)));
    return net;
}

/** The deterministic batch both benches feed it. */
inline std::vector<dnn::QTensor>
batchFunctionalImages(unsigned batch)
{
    Rng rng(0xba7c4);
    std::vector<dnn::QTensor> images;
    images.reserve(batch);
    for (unsigned i = 0; i < batch; ++i)
        images.push_back(dnn::randomQTensor(rng, 8, 12, 12));
    return images;
}

} // namespace nc::benchnet

#endif // NC_BENCH_BATCH_NET_HH
