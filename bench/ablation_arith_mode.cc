/**
 * @file
 * Ablation: paper-calibrated vs analytic arithmetic cycle models.
 *
 * The default mode reproduces the paper's per-conv constants (236
 * cycles/MAC, 660-cycle reduction); analytic mode counts our exact
 * micro-op schedules from bitserial/cost.hh. Both must produce the
 * same per-layer *shape*; the analytic arithmetic is roughly 2x
 * leaner (see EXPERIMENTS.md).
 */

#include <cstdio>

#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();

    core::NeuralCacheConfig paper_cfg;
    core::NeuralCacheConfig ana_cfg;
    ana_cfg.cost.mode = core::ArithMode::Analytic;

    core::NeuralCache paper(paper_cfg);
    core::NeuralCache ana(ana_cfg);
    auto pr = paper.infer(net);
    auto ar = ana.infer(net);

    std::printf("=== Ablation: arithmetic cycle model ===\n");
    std::printf("%-17s %16s %16s\n", "metric", "paper-calibrated",
                "analytic");
    std::printf("%-17s %16.3f %16.3f\n", "mac ms",
                pr.phases.macPs * picoToMs, ar.phases.macPs * picoToMs);
    std::printf("%-17s %16.3f %16.3f\n", "reduction ms",
                pr.phases.reducePs * picoToMs,
                ar.phases.reducePs * picoToMs);
    std::printf("%-17s %16.3f %16.3f\n", "total ms", pr.latencyMs(),
                ar.latencyMs());

    std::printf("\nper-stage arithmetic ratio "
                "(paper-calibrated / analytic):\n");
    for (size_t i = 0; i < net.stages.size(); ++i) {
        double p = pr.stages[i].phases.macPs +
                   pr.stages[i].phases.reducePs;
        double a = ar.stages[i].phases.macPs +
                   ar.stages[i].phases.reducePs;
        if (a <= 0)
            continue;
        std::printf("  %-17s %6.2fx\n", net.stages[i].name.c_str(),
                    p / a);
    }
    return 0;
}
