/**
 * @file
 * Ablation: double-buffered input streaming.
 *
 * The spare word lines the mapper leaves in each array
 * (ConvPlan::freeRows) can stage pass N+1's input window while pass N
 * computes, hiding most of the 15% input-streaming share of Figure 14
 * behind arithmetic. The paper charges streaming serially; this
 * quantifies what the overlap optimization would buy.
 */

#include <cstdio>

#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"
#include "dnn/models_extra.hh"

int
main()
{
    using namespace nc;

    std::printf("=== Ablation: input-stream / compute overlap ===\n");
    std::printf("%-14s | %10s %10s | %10s %10s | %8s\n", "network",
                "input ms", "total ms", "input ms", "total ms",
                "gain");
    std::printf("%-14s | %21s | %21s |\n", "", "serial (paper)",
                "double-buffered");

    for (const dnn::Network &net :
         {dnn::inceptionV3(), dnn::alexNet(), dnn::vgg16()}) {
        core::NeuralCacheConfig serial_cfg, overlap_cfg;
        overlap_cfg.cost.overlapInputStream = true;
        auto s = core::NeuralCache(serial_cfg).infer(net);
        auto o = core::NeuralCache(overlap_cfg).infer(net);
        std::printf("%-14s | %10.3f %10.3f | %10.3f %10.3f | "
                    "%7.1f%%\n",
                    net.name.c_str(),
                    s.phases.inputStreamPs * picoToMs, s.latencyMs(),
                    o.phases.inputStreamPs * picoToMs, o.latencyMs(),
                    100.0 * (s.latencyMs() - o.latencyMs()) /
                        s.latencyMs());
    }
    std::printf("\nthe mapper's spare word lines (free rows after "
                "the Figure-10 layout) are what makes the staging "
                "buffer free.\n");
    return 0;
}
