/**
 * @file
 * google-benchmark micro suite for the simulator's own speed (host
 * wall clock, not modeled cycles): the word-parallel Array kernels
 * against their bit-by-bit reference path, the transposed
 * storeVector/loadVector data movement, and a small end-to-end conv
 * layer through the Executor. Complements micro_bitserial, which
 * reports modeled-machine throughput; this file is about how fast the
 * model itself runs. bench/perf_report emits the same comparison as
 * machine-readable BENCH_simspeed.json.
 */

#include <benchmark/benchmark.h>

#include "bitserial/alu.hh"
#include "bitserial/layout.hh"
#include "common/rng.hh"
#include "core/executor.hh"
#include "dnn/reference.hh"

namespace
{

using namespace nc;
using bitserial::RowAllocator;
using bitserial::VecSlice;
using sram::Array;

Array
randomArray(bool reference, unsigned rows = 256, unsigned cols = 256)
{
    Array arr(rows, cols);
    Rng rng(7);
    for (unsigned r = 0; r < rows; ++r)
        for (unsigned w = 0; w < (cols + 63) / 64; ++w)
            arr.rowMut(r).setWord(w, rng.uniformBits(64));
    arr.setReferenceMode(reference);
    return arr;
}

/** One full-adder micro-op per iteration (the hot-loop workhorse). */
void
BM_OpAdd(benchmark::State &state)
{
    Array arr = randomArray(state.range(0) != 0);
    unsigned r = 0;
    for (auto _ : state) {
        arr.opAdd(r, r + 1, r + 2);
        r = (r + 1) % 250;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpAdd)->Arg(0)->Arg(1);

/** Tag-predicated add, as issued by multiply/mac inner loops. */
void
BM_OpAddPredicated(benchmark::State &state)
{
    Array arr = randomArray(state.range(0) != 0);
    arr.opLoadTag(3);
    unsigned r = 0;
    for (auto _ : state) {
        arr.opAdd(r, r + 1, r + 2, /*pred=*/true);
        r = (r + 1) % 250;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpAddPredicated)->Arg(0)->Arg(1);

/** One 8x8 MAC macro-op into a 24-bit accumulator. */
void
BM_MacScratch(benchmark::State &state)
{
    Array arr = randomArray(state.range(0) != 0);
    RowAllocator rows(arr.rows());
    VecSlice a = rows.alloc(8), b = rows.alloc(8);
    VecSlice acc = rows.alloc(24), scratch = rows.alloc(16);
    unsigned zrow = rows.zeroRow();
    for (auto _ : state)
        bitserial::macScratch(arr, a, b, acc, scratch, zrow);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacScratch)->Arg(0)->Arg(1);

/** Transposed 8-bit store of a full 256-lane vector. */
void
BM_StoreVector(benchmark::State &state)
{
    Array arr = randomArray(state.range(0) != 0);
    RowAllocator rows(arr.rows());
    VecSlice s = rows.alloc(8);
    Rng rng(11);
    std::vector<uint64_t> values(arr.cols());
    for (auto &v : values)
        v = rng.uniformBits(8);
    for (auto _ : state)
        bitserial::storeVector(arr, s, values);
    state.SetItemsProcessed(state.iterations() * arr.cols());
}
BENCHMARK(BM_StoreVector)->Arg(0)->Arg(1);

/** Transposed load of the same vector. */
void
BM_LoadVector(benchmark::State &state)
{
    Array arr = randomArray(state.range(0) != 0);
    RowAllocator rows(arr.rows());
    VecSlice s = rows.alloc(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(bitserial::loadVector(arr, s));
    state.SetItemsProcessed(state.iterations() * arr.cols());
}
BENCHMARK(BM_LoadVector)->Arg(0)->Arg(1);

/** End-to-end: one small conv layer through the functional executor. */
void
BM_ExecutorConv(benchmark::State &state)
{
    Rng rng(21);
    dnn::QTensor in(8, 6, 6);
    for (auto &v : in.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    dnn::QWeights w(2, 8, 3, 3);
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));
    for (auto _ : state) {
        cache::ComputeCache cc;
        core::Executor ex(cc, static_cast<unsigned>(state.range(0)));
        unsigned oh, ow;
        benchmark::DoNotOptimize(ex.conv(in, w, 1, true, oh, ow));
    }
}
BENCHMARK(BM_ExecutorConv)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

} // namespace
