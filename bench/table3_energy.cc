/**
 * @file
 * Table III: total energy and average power for CPU, GPU, and Neural
 * Cache on one Inception v3 inference.
 */

#include <cstdio>

#include "baselines/device_model.hh"
#include "core/neural_cache.hh"
#include "core/report.hh"
#include "dnn/inception_v3.hh"

#include <iostream>

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();
    auto cpu = baselines::DeviceModel::xeonE5_2697v3(net);
    auto gpu = baselines::DeviceModel::titanXp(net);
    core::NeuralCache sim;
    auto rep = sim.infer(net);

    std::printf("=== Table III: energy and power (measured | paper) "
                "===\n");
    std::printf("%-14s %10s %10s %12s %12s\n", "device", "energy J",
                "paper J", "avg power W", "paper W");
    std::printf("%-14s %10.3f %10.3f %12.2f %12.2f\n", "cpu",
                cpu.energyJ(net), 9.137, cpu.params().measuredPowerW,
                105.56);
    std::printf("%-14s %10.3f %10.3f %12.2f %12.2f\n", "gpu",
                gpu.energyJ(net), 4.087, gpu.params().measuredPowerW,
                112.87);
    std::printf("%-14s %10.3f %10.3f %12.2f %12.2f\n", "neural-cache",
                rep.energy.totalJ(), 0.246, rep.avgPowerW(), 52.92);

    std::printf("\nefficiency vs cpu: %.1fx (paper 37.1x), vs gpu: "
                "%.1fx (paper 16.6x)\n",
                cpu.energyJ(net) / rep.energy.totalJ(),
                gpu.energyJ(net) / rep.energy.totalJ());

    std::printf("\nneural-cache energy components:\n");
    core::printEnergy(std::cout, rep);
    return 0;
}
