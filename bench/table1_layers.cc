/**
 * @file
 * Regenerates Table I (Inception v3 layer parameters) from our graph
 * and prints it against the published values. Known paper typos are
 * flagged rather than hidden (see EXPERIMENTS.md).
 */

#include <cstdio>

#include "common/units.hh"
#include "dnn/inception_v3.hh"

int
main()
{
    using namespace nc::dnn;

    Network net = inceptionV3();
    auto table = paperTable1();

    std::printf("=== Table I: Inception v3 layers "
                "(measured | paper) ===\n");
    std::printf("%-17s %4s %4s | %9s %9s | %7s %7s | %7s %7s\n",
                "layer", "H", "E", "convs", "paper", "filtMB",
                "paper", "inMB", "paper");
    for (size_t i = 0; i < net.stages.size(); ++i) {
        const auto &st = net.stages[i];
        const auto &row = table[i];
        const char *flag =
            (row.convsTypo || row.filterTypo) ? " [paper typo]" : "";
        std::printf("%-17s %4u %4u | %9llu %9llu | %7.3f %7.3f | "
                    "%7.3f %7.3f%s\n",
                    st.name.c_str(), st.inputHeight(),
                    st.outputHeight(),
                    static_cast<unsigned long long>(st.convCount()),
                    static_cast<unsigned long long>(row.convs),
                    nc::bytesToMiB(st.filterBytes()), row.filterMiB,
                    nc::bytesToMiB(st.inputBytes()), row.inputMiB,
                    flag);
    }
    std::printf("%-17s           | %9llu           | %7.3f         | "
                "%7.3f\n",
                "total",
                static_cast<unsigned long long>(net.convCount()),
                nc::bytesToMiB(net.filterBytes()),
                nc::bytesToMiB(net.inputBytes()));
    std::printf("\nconv sub-layers: 94 (+1 FC-as-conv); "
                "total MACs: %.2f G\n",
                static_cast<double>(net.macs()) * 1e-9);
    return 0;
}
