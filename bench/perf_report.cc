/**
 * @file
 * Machine-readable simulator-speed report (BENCH_simspeed.json).
 *
 * Runs the same workload through the scalar baseline (bit-by-bit
 * reference kernels + poke-based data movement + 1 thread — the
 * pre-optimization simulator) and through the word-parallel
 * multithreaded path, verifies the two agree bit-for-bit and
 * cycle-for-cycle, and emits throughputs and speedups as JSON so the
 * perf trajectory of the repository is tracked by data, not
 * anecdotes. Schema 2 adds the Engine compile/run split: compiling
 * Inception v3 once (mapping + tiling + calibration) versus
 * answering a batched report from the compiled model (arithmetic
 * only) — the §IV-E amortization, measured. Schema 3 adds the batch
 * section: the image-parallel runBatch fan-out (§IV-E) against the
 * serial per-image loop on the same functional network, wall time
 * and measured images/s, outputs verified bit-identical. Schema 4
 * adds the faults section: the same batch with dead arrays — BIST
 * retire at compile, a mid-batch soft error healed by the canary
 * repair path — priced against the fault-free run, outputs still
 * bit-identical. Schema 5 adds the serve section: the deadline-
 * driven dynamic batcher behind the loopback transport — closed-loop
 * p50/p99 latency, images/s, mean batch occupancy, every served
 * output verified bit-identical to direct runBatch, plus a paused-
 * batcher probe proving admission control rejects (typed, counted)
 * past --max-inflight. Schema 6 adds the SIMD dispatch dimension:
 * the resolved dispatch tier and the host's best tier next to
 * host_cores, and a micro.tiers section timing the opAdd and
 * storeVector kernels at every tier this host/build can run
 * (scalar / avx2 / avx512, pinned with forceTier). All micro
 * numbers are interleaved best-of-3 so scheduler noise hits every
 * tier alike; bench/perf_gate diffs this file against the committed
 * baseline and fails CI on regressions. Schema 7 adds the static
 * program verifier's coverage to the engine section
 * (programs_verified, verify_ms), asserted to stay a fraction of the
 * measured compile wall time. See ROADMAP.md
 * "Performance & benchmarking" for the schema.
 * Usage: perf_report [output.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bitserial/layout.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "common/thread_pool.hh"
#include "sram/kernels.hh"
#include "core/engine.hh"
#include "core/executor.hh"
#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"
#include "dnn/reference.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"

#include "batch_net.hh"

namespace
{

using namespace nc;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Run fn repeatedly for ~0.2s; return seconds per call. */
template <class F>
double
timePerCall(F fn)
{
    // Warm-up + calibration.
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double once = secondsSince(t0);
    unsigned reps = once > 0.2 ? 1
                    : static_cast<unsigned>(0.2 / (once + 1e-9)) + 1;
    t0 = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < reps; ++i)
        fn();
    return secondsSince(t0) / reps;
}

/**
 * One interleaved micro measurement: a workload, its calibrated rep
 * count, and the best (least-preempted) per-call time seen so far.
 */
struct Measurement
{
    std::function<void()> fn;
    unsigned reps = 1;
    double best_s = 1e30;
};

/**
 * Time every measurement interleaved, best-of-@p rounds: calibrate
 * each to ~0.1 s, then cycle through the whole list per round so
 * scheduler noise lands on all of them alike, keeping each one's
 * minimum. The minimum — not the mean — is what the code can
 * actually do; it is what the perf gate compares.
 */
void
runInterleaved(std::vector<Measurement> &meas, unsigned rounds = 3)
{
    for (auto &m : meas) {
        auto t0 = std::chrono::steady_clock::now();
        m.fn();
        double once = secondsSince(t0);
        m.reps = once > 0.1
                     ? 1
                     : static_cast<unsigned>(0.1 / (once + 1e-9)) + 1;
    }
    for (unsigned round = 0; round < rounds; ++round) {
        for (auto &m : meas) {
            // Each rep is timed on its own and only the fastest kept:
            // on a 1-vCPU host a 0.1 s window always absorbs timer
            // interrupts, and averaging them in would understate what
            // the code can do by several percent. The workloads run
            // tens of microseconds each, so the clock reads are noise.
            for (unsigned i = 0; i < m.reps; ++i) {
                auto t0 = std::chrono::steady_clock::now();
                m.fn();
                m.best_s = std::min(m.best_s, secondsSince(t0));
            }
        }
    }
}

struct ConvResult
{
    std::vector<uint32_t> out;
    uint64_t cycles = 0;
    double seconds = 0;
};

ConvResult
runConv(const dnn::QTensor &in, const dnn::QWeights &w, bool scalar)
{
    cache::ComputeCache cc;
    // The scalar baseline: every array in bit-by-bit reference mode,
    // one thread — the simulator as it was before the word-parallel
    // rebuild.
    for (unsigned mi = 0; mi < w.m; ++mi)
        cc.array(cc.coordOf(mi)).setReferenceMode(scalar);
    core::Executor ex(cc, scalar ? 1 : 0);
    unsigned oh, ow;
    auto t0 = std::chrono::steady_clock::now();
    ConvResult r;
    r.out = ex.conv(in, w, 1, true, oh, ow);
    r.seconds = secondsSince(t0);
    r.cycles = ex.lockstepCycles();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = argc > 1 ? argv[1] : "BENCH_simspeed.json";

    // Resolve dispatch up front: activeTier() parses NC_SIMD (fatal
    // on a bogus or unsupported spec) before any timing runs.
    const common::simd::Tier dispatch = sram::kern::activeTier();
    const common::simd::Tier host_best = sram::kern::bestTier();
    const auto tiers = sram::kern::availableTiers();

    // ---- micro: opAdd and storeVector at every runnable tier ---------
    sram::Array fast(256, 256), ref(256, 256);
    Rng rng(13);
    for (unsigned r = 0; r < 256; ++r)
        for (unsigned wi = 0; wi < 4; ++wi) {
            uint64_t v = rng.uniformBits(64);
            fast.rowMut(r).setWord(wi, v);
            ref.rowMut(r).setWord(wi, v);
        }
    ref.setReferenceMode(true);

    const unsigned kOps = 20000;
    auto addLoop = [](sram::Array &a) {
        unsigned r = 0;
        for (unsigned i = 0; i < kOps; ++i) {
            a.opAdd(r, r + 1, r + 2);
            r = (r + 1) % 250;
        }
    };
    bitserial::VecSlice slice{200, 8};
    std::vector<uint64_t> values(256);
    for (auto &v : values)
        v = rng.uniformBits(8);
    const unsigned kStores = 2000;
    auto storeLoop = [&](sram::Array &a) {
        for (unsigned i = 0; i < kStores; ++i)
            bitserial::storeVector(a, slice, values);
    };

    // One measurement list, interleaved best-of-3: per tier the add
    // and store kernels (pinned with forceTier inside the workload),
    // plus the bit-by-bit reference versions (tier-independent).
    std::vector<Measurement> meas(2 * tiers.size() + 2);
    for (size_t ti = 0; ti < tiers.size(); ++ti) {
        common::simd::Tier t = tiers[ti];
        meas[ti].fn = [&, t] {
            sram::kern::forceTier(t);
            addLoop(fast);
        };
        meas[tiers.size() + ti].fn = [&, t] {
            sram::kern::forceTier(t);
            storeLoop(fast);
        };
    }
    meas[2 * tiers.size()].fn = [&] { addLoop(ref); };
    meas[2 * tiers.size() + 1].fn = [&] { storeLoop(ref); };
    runInterleaved(meas);
    sram::kern::forceTier(dispatch);

    std::vector<double> tier_add_mops(tiers.size());
    std::vector<double> tier_st_ml(tiers.size());
    double add_fast_mops = 0, st_fast_ml = 0;
    for (size_t ti = 0; ti < tiers.size(); ++ti) {
        tier_add_mops[ti] = kOps / meas[ti].best_s / 1e6;
        tier_st_ml[ti] =
            kStores * 256.0 / meas[tiers.size() + ti].best_s / 1e6;
        if (tiers[ti] == dispatch) {
            add_fast_mops = tier_add_mops[ti];
            st_fast_ml = tier_st_ml[ti];
        }
    }
    double add_ref_mops = kOps / meas[2 * tiers.size()].best_s / 1e6;
    double st_ref_ml =
        kStores * 256.0 / meas[2 * tiers.size() + 1].best_s / 1e6;

    // ---- end to end: representative conv layer -----------------------
    Rng wrng(7);
    dnn::QTensor in(16, 14, 14);
    for (auto &v : in.data())
        v = static_cast<uint8_t>(wrng.uniformBits(8));
    dnn::QWeights w(8, 16, 3, 3);
    for (auto &v : w.data)
        v = static_cast<uint8_t>(wrng.uniformBits(8));

    ConvResult scalar = runConv(in, w, /*scalar=*/true);
    ConvResult opt = runConv(in, w, /*scalar=*/false);
    nc_assert(scalar.out == opt.out,
              "scalar and optimized paths disagree");
    nc_assert(scalar.cycles == opt.cycles,
              "modeled cycles changed: %llu vs %llu",
              static_cast<unsigned long long>(scalar.cycles),
              static_cast<unsigned long long>(opt.cycles));
    // Best-of-3 on the optimized path: sim_cycles_per_sec is gated,
    // so it gets the same least-preempted-run treatment as the
    // micros (the scalar baseline only feeds the speedup ratio).
    for (unsigned rep = 0; rep < 2; ++rep) {
        ConvResult again = runConv(in, w, /*scalar=*/false);
        nc_assert(again.cycles == opt.cycles,
                  "conv cycles moved between repeats");
        opt.seconds = std::min(opt.seconds, again.seconds);
    }
    double conv_speedup = scalar.seconds / opt.seconds;

    // ---- engine: compile-once vs run-many amortization ---------------
    // Compiling Inception v3 runs mapping/tiling + calibration for
    // all 20 stages; a batched report from the compiled model is
    // pure arithmetic on the cached stage costs. The old per-call
    // API (NeuralCache::inferBatch) pays both on every query.
    auto inception = dnn::inceptionV3();
    core::EngineOptions eopts;
    eopts.backend = core::BackendKind::Analytic;

    double compile_s = timePerCall([&] {
        core::Engine engine(eopts);
        auto m = engine.compile(inception);
        (void)m;
    });
    core::Engine engine(eopts);
    auto compile_t0 = std::chrono::steady_clock::now();
    auto model = engine.compile(inception);
    double one_compile_s = secondsSince(compile_t0);
    double run_s = timePerCall([&] { (void)model.report(16); });

    // The static program verifier runs inside compile(); its cost is
    // a phase of that same wall time, never extra.
    nc_assert(model.programsVerified() > 0,
              "compile verified no programs");
    nc_assert(model.verifyMs() <= one_compile_s * 1e3,
              "verify_ms %.4f exceeds the compile wall time %.4f ms",
              model.verifyMs(), one_compile_s * 1e3);

    // The compiled model must answer exactly what the legacy
    // per-call facade answers.
    core::NeuralCache sim;
    auto legacy = sim.inferBatch(inception, 16);
    auto compiled = model.report(16);
    nc_assert(compiled.batchPs == legacy.batchPs &&
                  compiled.latencyPs == legacy.latencyPs,
              "engine and legacy facade reports disagree");

    // ---- batch: image-parallel runBatch vs the serial loop -----------
    // The §IV-E scaling primitive, measured: the same functional
    // network and batch of 8, executed by a one-worker engine (the
    // serial per-image loop) and by an image-parallel engine fanning
    // images over >= 2 workers, each image in its own replica of the
    // pinned filter bands. Outputs must be bit-identical.
    auto bnet = benchnet::batchFunctionalNet();
    const unsigned kBatch = 8;
    auto images = benchnet::batchFunctionalImages(kBatch);

    core::EngineOptions serial_opts;
    serial_opts.backend = core::BackendKind::Functional;
    serial_opts.threads = 1;
    core::Engine serial_engine(serial_opts);
    auto serial_model = serial_engine.compile(bnet);

    core::EngineOptions par_opts = serial_opts;
    par_opts.threads =
        std::max(2u, common::ThreadPool::defaultThreads());
    core::Engine par_engine(par_opts);
    auto par_model = par_engine.compile(bnet);

    // Also the untimed warm-up: the first batch pays the one-time
    // lazy replica pinning, so the timed loops below measure
    // steady-state execution.
    auto serial_res = serial_model.runBatch(images);
    auto par_res = par_model.runBatch(images);
    for (unsigned i = 0; i < kBatch; ++i)
        nc_assert(serial_res.outputs[i].data() ==
                      par_res.outputs[i].data(),
                  "serial and image-parallel batch disagree on "
                  "image %u", i);

    // Interleaved best-of-N: the two paths alternate so scheduler
    // noise hits both alike, and the minimum (the least-preempted
    // run) is what each path can actually do.
    double batch_serial_s = 1e30, batch_par_s = 1e30;
    for (unsigned rep = 0; rep < 3; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        (void)serial_model.runBatch(images);
        batch_serial_s = std::min(batch_serial_s, secondsSince(t0));
        t0 = std::chrono::steady_clock::now();
        (void)par_model.runBatch(images);
        batch_par_s = std::min(batch_par_s, secondsSince(t0));
    }
    double batch_speedup = batch_serial_s / batch_par_s;

    // ---- faults: BIST + self-healing priced ------------------------
    // The same batch with the first three physical arrays dead: BIST
    // retires them at compile, placement lands on survivors, outputs
    // must not move. Then a soft error strikes a guard row mid-model
    // and the canary repair path (detect -> retire -> substitute ->
    // re-pin -> retry) must heal it without changing a bit.
    core::EngineOptions fault_opts = par_opts;
    fault_opts.faults.killArrays = {0, 1, 2};
    core::Engine fault_engine(fault_opts);
    auto fault_model = fault_engine.compile(bnet);
    auto fault_res = fault_model.runBatch(images); // warm-up
    for (unsigned i = 0; i < kBatch; ++i)
        nc_assert(fault_res.outputs[i].data() ==
                      par_res.outputs[i].data(),
                  "fault campaign changed batch output %u", i);
    double batch_fault_s = 1e30;
    for (unsigned rep = 0; rep < 3; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        (void)fault_model.runBatch(images);
        batch_fault_s = std::min(batch_fault_s, secondsSince(t0));
    }
    auto *fault_cc = fault_model.computeCache();
    fault_cc->injectFlip(fault_cc->physicalOf(0),
                         fault_cc->geometry().arrayRows - 1, 7);
    auto healed = fault_model.runBatch(images);
    for (unsigned i = 0; i < kBatch; ++i)
        nc_assert(healed.outputs[i].data() ==
                      par_res.outputs[i].data(),
                  "self-healed batch output %u mismatches", i);
    nc_assert(healed.report.passRetries > 0,
              "canary repair did not retry any pass");

    // ---- serve: dynamic batching behind the loopback transport -------
    // The serving front end around the same image-parallel model:
    // closed-loop clients through the wire protocol, the batcher
    // coalescing under its deadline, every served output compared
    // bit for bit against the direct runBatch of the same inputs.
    const unsigned kServeRequests = 48, kServeClients = 4;
    serve::LoadStats serveStats;
    {
        serve::ServerOptions sopts;
        sopts.batcher.deadlineMs = 2;
        sopts.batcher.maxInflight = 256;
        serve::InferenceServer server(par_model, sopts);
        serve::LoadGenOptions lopts;
        lopts.requests = kServeRequests;
        lopts.clients = kServeClients;
        lopts.seed = 1;
        serveStats = serve::runLoadGen(par_model, server, lopts);
        server.shutdown();
    }
    nc_assert(serveStats.completed == kServeRequests &&
                  serveStats.mismatched == 0 &&
                  serveStats.errors == 0,
              "serve run lost or corrupted requests: %llu ok, %llu "
              "mismatched, %llu errors",
              static_cast<unsigned long long>(serveStats.completed),
              static_cast<unsigned long long>(serveStats.mismatched),
              static_cast<unsigned long long>(serveStats.errors));

    // Backpressure, demonstrated rather than assumed: a paused
    // batcher with a cap of 4 must queue the first four requests and
    // reject the overflow with the typed status, never silently.
    const unsigned kCap = 4, kOffered = 8;
    uint64_t serveRejected = 0;
    {
        serve::ServerOptions sopts;
        sopts.batcher.maxInflight = kCap;
        sopts.batcher.startPaused = true;
        serve::InferenceServer server(par_model, sopts);
        auto client = server.loopback();
        for (unsigned i = 0; i < kOffered; ++i) {
            serve::wire::RequestFrame req;
            req.id = i + 1;
            req.input = images[i % kBatch];
            client.send(req);
        }
        server.batcher().resume();
        for (unsigned i = 0; i < kOffered; ++i) {
            auto rsp = client.receive();
            nc_assert(rsp.has_value(),
                      "backpressure probe response %u missing", i);
            if (rsp->status == serve::wire::Status::Rejected)
                ++serveRejected;
        }
        server.shutdown();
    }
    nc_assert(serveRejected == kOffered - kCap,
              "cap %u rejected %llu of %u offered", kCap,
              static_cast<unsigned long long>(serveRejected),
              kOffered);

    unsigned threads = common::ThreadPool::defaultThreads();
    unsigned host_cores = std::max(
        1u, static_cast<unsigned>(std::thread::hardware_concurrency()));

    // micro.tiers: one object per runnable tier, narrowest first.
    std::string tiers_json;
    for (size_t ti = 0; ti < tiers.size(); ++ti) {
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "      \"%s\": {\n"
                      "        \"opadd_mops\": %.2f,\n"
                      "        \"store_vector_mlanes_per_s\": %.2f\n"
                      "      }%s\n",
                      common::simd::tierName(tiers[ti]),
                      tier_add_mops[ti], tier_st_ml[ti],
                      ti + 1 < tiers.size() ? "," : "");
        tiers_json += buf;
    }

    std::FILE *f = std::fopen(path, "w");
    if (!f)
        nc_fatal("cannot open %s for writing", path);
    std::fprintf(f,
        "{\n"
        "  \"bench\": \"simspeed\",\n"
        "  \"schema\": 7,\n"
        "  \"threads\": %u,\n"
        "  \"host_cores\": %u,\n"
        "  \"dispatch\": \"%s\",\n"
        "  \"host_best\": \"%s\",\n"
        "  \"micro\": {\n"
        "    \"timing\": \"interleaved best-of-3\",\n"
        "    \"opadd_mops\": %.2f,\n"
        "    \"opadd_ref_mops\": %.2f,\n"
        "    \"opadd_speedup\": %.2f,\n"
        "    \"store_vector_mlanes_per_s\": %.2f,\n"
        "    \"store_vector_ref_mlanes_per_s\": %.2f,\n"
        "    \"store_vector_speedup\": %.2f,\n"
        "    \"tiers\": {\n"
        "%s"
        "    }\n"
        "  },\n"
        "  \"conv_layer\": {\n"
        "    \"shape\": \"in 16x14x14, filters 8x16x3x3, stride 1, "
        "same pad\",\n"
        "    \"sim_cycles\": %llu,\n"
        "    \"scalar_ms\": %.3f,\n"
        "    \"fast_ms\": %.3f,\n"
        "    \"speedup\": %.2f,\n"
        "    \"sim_cycles_per_sec\": %.0f\n"
        "  },\n"
        "  \"engine\": {\n"
        "    \"network\": \"inception_v3\",\n"
        "    \"backend\": \"analytic\",\n"
        "    \"compile_ms\": %.4f,\n"
        "    \"run_ms\": %.4f,\n"
        "    \"runs_per_compile\": %.1f,\n"
        "    \"programs_verified\": %llu,\n"
        "    \"verify_ms\": %.4f\n"
        "  },\n"
        "  \"batch\": {\n"
        "    \"network\": \"%s\",\n"
        "    \"backend\": \"functional\",\n"
        "    \"batch\": %u,\n"
        "    \"serial_threads\": 1,\n"
        "    \"parallel_threads\": %u,\n"
        "    \"image_slots\": %u,\n"
        "    \"passes\": %llu,\n"
        "    \"serial_ms\": %.2f,\n"
        "    \"parallel_ms\": %.2f,\n"
        "    \"speedup\": %.2f,\n"
        "    \"images_per_s\": %.1f\n"
        "  },\n"
        "  \"faults\": {\n"
        "    \"network\": \"%s\",\n"
        "    \"killed\": 3,\n"
        "    \"bist_retired\": %llu,\n"
        "    \"image_slots\": %u,\n"
        "    \"batch_ms\": %.2f,\n"
        "    \"fault_free_ms\": %.2f,\n"
        "    \"overhead_pct\": %.1f,\n"
        "    \"repair_detected\": %llu,\n"
        "    \"repair_retired_total\": %llu,\n"
        "    \"repair_pass_retries\": %llu,\n"
        "    \"outputs\": \"bit-identical\"\n"
        "  },\n"
        "  \"serve\": {\n"
        "    \"network\": \"%s\",\n"
        "    \"transport\": \"loopback\",\n"
        "    \"loop\": \"closed\",\n"
        "    \"requests\": %u,\n"
        "    \"clients\": %u,\n"
        "    \"deadline_ms\": 2,\n"
        "    \"max_inflight\": 256,\n"
        "    \"p50_ms\": %.3f,\n"
        "    \"p99_ms\": %.3f,\n"
        "    \"images_per_s\": %.1f,\n"
        "    \"mean_occupancy\": %.2f,\n"
        "    \"backpressure_cap\": %u,\n"
        "    \"backpressure_offered\": %u,\n"
        "    \"rejected\": %llu,\n"
        "    \"outputs\": \"bit-identical\"\n"
        "  }\n"
        "}\n",
        threads, host_cores, common::simd::tierName(dispatch),
        common::simd::tierName(host_best),
        add_fast_mops, add_ref_mops, add_fast_mops / add_ref_mops,
        st_fast_ml, st_ref_ml, st_fast_ml / st_ref_ml, tiers_json.c_str(),
        static_cast<unsigned long long>(opt.cycles),
        scalar.seconds * 1e3, opt.seconds * 1e3, conv_speedup,
        opt.cycles / opt.seconds,
        compile_s * 1e3, run_s * 1e3, compile_s / run_s,
        static_cast<unsigned long long>(model.programsVerified()),
        model.verifyMs(),
        bnet.name.c_str(), kBatch, par_opts.threads,
        par_model.batchBands().imageSlots,
        static_cast<unsigned long long>(
            par_model.batchBands().passes(kBatch)),
        batch_serial_s * 1e3, batch_par_s * 1e3, batch_speedup,
        kBatch / batch_par_s,
        bnet.name.c_str(),
        static_cast<unsigned long long>(fault_res.report.arraysRetired),
        fault_model.batchBands().imageSlots, batch_fault_s * 1e3,
        batch_par_s * 1e3,
        (batch_fault_s / batch_par_s - 1.0) * 100.0,
        static_cast<unsigned long long>(healed.report.faultsDetected),
        static_cast<unsigned long long>(healed.report.arraysRetired),
        static_cast<unsigned long long>(healed.report.passRetries),
        bnet.name.c_str(), kServeRequests, kServeClients,
        serveStats.p50Ms, serveStats.p99Ms, serveStats.imagesPerSec,
        serveStats.meanOccupancy, kCap, kOffered,
        static_cast<unsigned long long>(serveRejected));
    std::fclose(f);

    std::printf("perf_report: dispatch %s (host best %s, %u cores): "
                "opAdd %.1f Mops/s (ref %.2f, %.0fx), storeVector "
                "%.1f Mlanes/s (ref %.2f, %.0fx), conv %.1f ms vs "
                "%.1f ms scalar (%.1fx, %u threads)\n",
                common::simd::tierName(dispatch),
                common::simd::tierName(host_best), host_cores,
                add_fast_mops, add_ref_mops,
                add_fast_mops / add_ref_mops, st_fast_ml, st_ref_ml,
                st_fast_ml / st_ref_ml, opt.seconds * 1e3,
                scalar.seconds * 1e3, conv_speedup, threads);
    for (size_t ti = 0; ti < tiers.size(); ++ti)
        std::printf("perf_report: tier %-6s opAdd %8.1f Mops/s, "
                    "storeVector %8.1f Mlanes/s\n",
                    common::simd::tierName(tiers[ti]),
                    tier_add_mops[ti], tier_st_ml[ti]);
    std::printf("perf_report: engine compile %.3f ms, run %.4f ms "
                "(%.0f runs amortize one compile)\n",
                compile_s * 1e3, run_s * 1e3, compile_s / run_s);
    std::printf("perf_report: batch-%u serial %.1f ms vs parallel "
                "%.1f ms on %u threads (%.2fx, %.1f img/s, %u image "
                "slots)\n",
                kBatch, batch_serial_s * 1e3, batch_par_s * 1e3,
                par_opts.threads, batch_speedup, kBatch / batch_par_s,
                par_model.batchBands().imageSlots);
    std::printf("perf_report: faults batch %.1f ms vs %.1f ms clean "
                "(%.1f%% overhead); BIST retired %llu, mid-run "
                "repair retired %llu with %llu pass retries, outputs "
                "bit-identical\n",
                batch_fault_s * 1e3, batch_par_s * 1e3,
                (batch_fault_s / batch_par_s - 1.0) * 100.0,
                static_cast<unsigned long long>(
                    fault_res.report.arraysRetired),
                static_cast<unsigned long long>(
                    healed.report.arraysRetired),
                static_cast<unsigned long long>(
                    healed.report.passRetries));
    std::printf("perf_report: serve %u reqs, %u clients over "
                "loopback: p50 %.2f ms, p99 %.2f ms, %.1f img/s, "
                "mean occupancy %.2f; cap-%u probe rejected %llu of "
                "%u, outputs bit-identical\n",
                kServeRequests, kServeClients, serveStats.p50Ms,
                serveStats.p99Ms, serveStats.imagesPerSec,
                serveStats.meanOccupancy, kCap,
                static_cast<unsigned long long>(serveRejected),
                kOffered);
    std::printf("perf_report: wrote %s\n", path);
    return 0;
}
