/**
 * @file
 * Ablation: data-movement machinery (paper §IV-C).
 *
 * Three levers the paper motivates individually:
 *  - the 64-bit bank latch that halves replicated input fills,
 *  - DRAM effective bandwidth (filter loading dominates at 46%),
 *  - the compute clock (2.5 GHz chosen conservatively vs the 4 GHz
 *    access clock).
 */

#include <cstdio>

#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();

    std::printf("=== Ablation: interconnect & clocks ===\n\n");

    {
        core::NeuralCacheConfig with, without;
        // The latch halves replicated in-bank fills; model its loss
        // by doubling the input stream.
        without.cost.inputStreamFactor *= 2.0;
        auto a = core::NeuralCache(with).infer(net);
        auto b = core::NeuralCache(without).infer(net);
        std::printf("bank latch        on: input %.3f ms, total %.3f "
                    "ms\n",
                    a.phases.inputStreamPs * picoToMs, a.latencyMs());
        std::printf("bank latch       off: input %.3f ms, total %.3f "
                    "ms\n\n",
                    b.phases.inputStreamPs * picoToMs, b.latencyMs());
    }

    std::printf("%-22s %12s %12s %9s\n", "dram effective bw",
                "filter ms", "total ms", "share");
    for (double gbps : {6.0, 11.0, 16.0, 25.6, 51.2}) {
        core::NeuralCacheConfig cfg;
        cfg.dram.effectiveBw.bytesPerSec = gbps * 1e9;
        auto rep = core::NeuralCache(cfg).infer(net);
        std::printf("%18.1f GB/s %12.3f %12.3f %8.1f%%\n", gbps,
                    rep.phases.filterLoadPs * picoToMs,
                    rep.latencyMs(),
                    100.0 * rep.phases.filterLoadPs /
                        rep.phases.totalPs());
    }

    std::printf("\n%-22s %12s\n", "compute clock", "total ms");
    for (double ghz : {1.0, 2.0, 2.5, 3.0, 4.0}) {
        core::NeuralCacheConfig cfg;
        cfg.cost.timing.computeClock.freqHz = ghz * 1e9;
        auto rep = core::NeuralCache(cfg).infer(net);
        std::printf("%18.1f GHz %12.3f\n", ghz, rep.latencyMs());
    }
    std::printf("\n(the paper runs compute at 2.5 GHz for 6-sigma "
                "robustness although the arrays access at 4 GHz)\n");
    return 0;
}
