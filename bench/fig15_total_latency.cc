/**
 * @file
 * Figure 15: total Inception v3 inference latency and the headline
 * speedups (18.3x over the Xeon E5, 7.7x over the Titan Xp).
 */

#include <cstdio>

#include "baselines/device_model.hh"
#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();
    auto cpu = baselines::DeviceModel::xeonE5_2697v3(net);
    auto gpu = baselines::DeviceModel::titanXp(net);
    core::NeuralCache sim;
    auto rep = sim.infer(net);

    double cpu_ms = cpu.totalLatencyMs(net);
    double gpu_ms = gpu.totalLatencyMs(net);
    double nc_ms = rep.latencyMs();

    std::printf("=== Figure 15: total latency on Inception v3 ===\n");
    std::printf("%-14s %12s %12s\n", "device", "latency ms",
                "paper ms");
    std::printf("%-14s %12.2f %12.2f\n", "cpu", cpu_ms, 86.0);
    std::printf("%-14s %12.2f %12.2f\n", "gpu", gpu_ms, 36.19);
    std::printf("%-14s %12.2f %12.2f\n", "neural-cache", nc_ms, 4.72);

    std::printf("\nspeedup vs cpu: %5.1fx (paper 18.3x)\n",
                cpu_ms / nc_ms);
    std::printf("speedup vs gpu: %5.1fx (paper  7.7x)\n",
                gpu_ms / nc_ms);
    return 0;
}
