/**
 * @file
 * Figure 14: Neural Cache inference-latency breakdown by phase, with
 * the paper's published shares alongside.
 */

#include <cstdio>

#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"

int
main()
{
    using namespace nc;

    auto net = dnn::inceptionV3();
    core::NeuralCache sim;
    auto rep = sim.infer(net);

    const auto &p = rep.phases;
    double total = p.totalPs();
    struct Row
    {
        const char *name;
        double ps;
        double paper_pct;
    };
    Row rows[] = {
        {"filter load", p.filterLoadPs, 46.0},
        {"input streaming", p.inputStreamPs, 15.0},
        {"output transfer", p.outputXferPs, 4.0},
        {"MACs", p.macPs, 20.0},
        {"reduction", p.reducePs, 10.0},
        {"quantization", p.quantPs, 5.0},
        {"pooling", p.poolPs, 0.04},
    };

    std::printf("=== Figure 14: latency breakdown (batch 1) ===\n");
    std::printf("%-17s %10s %9s %9s\n", "phase", "ms", "share",
                "paper");
    for (const Row &r : rows) {
        std::printf("%-17s %10.4f %8.2f%% %8.2f%%\n", r.name,
                    r.ps * picoToMs, 100.0 * r.ps / total,
                    r.paper_pct);
    }
    std::printf("%-17s %10.4f\n", "total", total * picoToMs);
    return 0;
}
