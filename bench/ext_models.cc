/**
 * @file
 * Extension: Neural Cache on AlexNet and VGG-16 alongside Inception.
 *
 * The paper evaluates Inception v3 only; these runs exercise the same
 * mapper and cost model on workloads with very different balance —
 * AlexNet (filter splitting, huge FCs), VGG-16 (deep 3x3 stacks,
 * 138 M parameters so filter streaming dominates even more).
 */

#include <cstdio>

#include "baselines/device_model.hh"
#include "core/neural_cache.hh"
#include "dnn/inception_v3.hh"
#include "dnn/models_extra.hh"

int
main()
{
    using namespace nc;

    core::NeuralCache sim;

    std::printf("=== Extension: more workloads on Neural Cache ===\n");
    std::printf("%-14s %8s %9s %10s %10s %9s %9s %9s\n", "network",
                "GMACs", "weightsMB", "latency ms", "thr inf/s",
                "energy J", "power W", "filter%%");
    for (const dnn::Network &net :
         {dnn::inceptionV3(), dnn::alexNet(), dnn::vgg16(),
          dnn::resNet18()}) {
        auto rep = sim.infer(net);
        auto batch = sim.inferBatch(net, 64);
        std::printf("%-14s %8.2f %9.1f %10.2f %10.0f %9.3f %9.1f "
                    "%8.1f%%\n",
                    net.name.c_str(),
                    static_cast<double>(net.macs()) * 1e-9,
                    static_cast<double>(net.filterBytes()) * 1e-6,
                    rep.latencyMs(), batch.throughput(),
                    rep.energy.totalJ(), rep.avgPowerW(),
                    100.0 * rep.phases.filterLoadPs /
                        rep.phases.totalPs());
    }

    std::printf("\nshape check: weight-heavy VGG-16 is filter-load "
                "bound; batching matters most there.\n");
    for (const dnn::Network &net : {dnn::vgg16()}) {
        std::printf("%s throughput: batch 1 %.0f, 16 %.0f, 64 %.0f "
                    "inf/s\n",
                    net.name.c_str(),
                    sim.inferBatch(net, 1).throughput(),
                    sim.inferBatch(net, 16).throughput(),
                    sim.inferBatch(net, 64).throughput());
    }
    return 0;
}
