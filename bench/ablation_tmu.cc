/**
 * @file
 * Ablation: the transpose gateway (paper §III-F).
 *
 * "Only a few TMUs are needed to saturate the available interconnect
 * bandwidth." This sweeps the TMU count against the time to transpose
 * one Inception input image (299x299x3 bytes) and one layer's worth
 * of outputs, and compares against option 1 of §III-F — software
 * transposition on the host (x86 shuffle/pack, modeled at the rate
 * the Parabix-style transform sustains).
 */

#include <cstdio>
#include <initializer_list>

#include "cache/cbox.hh"
#include "cache/interconnect.hh"

int
main()
{
    using namespace nc;

    const uint64_t image_bytes = 299 * 299 * 3;
    const uint64_t layer_bytes = uint64_t(147) * 147 * 64;

    std::printf("=== Ablation: transpose gateway (TMUs per slice) "
                "===\n");
    std::printf("%6s %18s %18s\n", "tmus", "image transpose us",
                "layer transpose us");
    for (unsigned tmus : {1u, 2u, 4u, 8u}) {
        cache::CBox cbox;
        cbox.tmus = tmus;
        std::printf("%6u %18.2f %18.2f\n", tmus,
                    cbox.transposePs(image_bytes) * 1e-6,
                    cbox.transposePs(layer_bytes) * 1e-6);
    }

    // Bus saturation point: the intra-slice bus streams the image in
    // this long, so more TMUs than this are wasted.
    cache::IntraSliceBus bus;
    double bus_us = bus.streamPs(image_bytes) * 1e-6;
    std::printf("\nintra-slice bus streams the image in %.2f us -> "
                "a couple of TMUs saturate it (paper: 'only a few "
                "TMUs are needed')\n",
                bus_us);

    // Software transpose (§III-F option 1): Parabix-style SIMD
    // transform sustains ~1 byte/cycle/core on the host; one core at
    // 2.6 GHz.
    double sw_us = static_cast<double>(image_bytes) / 2.6e9 * 1e6;
    cache::CBox two;
    std::printf("software transpose of the image: ~%.0f us on one "
                "core vs %.2f us through 2 TMUs (%.0fx) — why "
                "dynamic data goes through the gateway while "
                "one-time filter transposition stays in software\n",
                sw_us, two.transposePs(image_bytes) * 1e-6,
                sw_us / (two.transposePs(image_bytes) * 1e-6));
    return 0;
}
