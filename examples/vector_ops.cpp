/**
 * @file
 * Tour of the bit-serial ALU (paper §III): every arithmetic primitive
 * executed on one 8KB array, with its cycle count next to the paper's
 * closed-form formula, ending with the throughput argument of §III-A
 * (512 32-bit element-wise adds: 512 steps element-serial vs 32ish
 * steps bit-serial).
 *
 * Usage: vector_ops [--seed S]
 */

#include <cstdio>

#include "bitserial/alu.hh"
#include "common/argparse.hh"
#include "common/rng.hh"

int
main(int argc, char **argv)
{
    using namespace nc;
    namespace bs = bitserial;

    uint64_t seed = 11;
    common::ArgParser args("vector_ops",
                           "Bit-serial ALU primitive tour");
    args.addUint64("seed", &seed, "operand seed");
    args.parse(argc, argv);

    sram::Array arr; // 256 x 256
    bs::RowAllocator rows(arr.rows());
    rows.zeroRow(); // reserve the constant-zero word line
    Rng rng(seed);

    bs::VecSlice a = rows.alloc(8), b = rows.alloc(8);
    bs::VecSlice sum = rows.alloc(9), diff = rows.alloc(8);
    bs::VecSlice prod = rows.alloc(16);
    bs::VecSlice quot = rows.alloc(8);
    bs::VecSlice scratch = rows.alloc(16);
    bs::VecSlice rwork = rows.alloc(16), twork = rows.alloc(9),
                 dwork = rows.alloc(9);

    auto av = rng.bitVector(arr.cols(), 8);
    auto bv = rng.bitVector(arr.cols(), 8);
    for (auto &v : bv)
        v = v ? v : 1; // avoid division by zero in the demo
    bs::storeVector(arr, a, av);
    bs::storeVector(arr, b, bv);

    std::printf("=== bit-serial ALU on one 8KB array (256 lanes) "
                "===\n");
    std::printf("%-10s %12s %14s\n", "op", "cycles", "paper formula");

    uint64_t c = bs::add(arr, a, b, sum);
    std::printf("%-10s %12llu %11llu (n+1)\n", "add",
                (unsigned long long)c,
                (unsigned long long)bs::paperAddCycles(8));

    c = bs::sub(arr, a, b, diff, scratch);
    std::printf("%-10s %12llu %14s\n", "sub", (unsigned long long)c,
                "2n (+inv)");

    c = bs::multiply(arr, a, b, prod);
    std::printf("%-10s %12llu %11llu (n^2+5n-2)\n", "multiply",
                (unsigned long long)c,
                (unsigned long long)bs::paperMulCycles(8));

    c = bs::divide(arr, a, b, quot, rwork, twork, dwork);
    std::printf("%-10s %12llu %11.0f (1.5n^2+5.5n)\n", "divide",
                (unsigned long long)c, bs::paperDivCycles(8));

    // Verify a lane end-to-end.
    unsigned lane = 123;
    std::printf("\nlane %u: a=%llu b=%llu -> a+b=%llu a-b=%llu "
                "a*b=%llu a/b=%llu\n",
                lane, (unsigned long long)av[lane],
                (unsigned long long)bv[lane],
                (unsigned long long)bs::loadLane(arr, sum, lane),
                (unsigned long long)bs::loadLane(arr, diff, lane),
                (unsigned long long)bs::loadLane(arr, prod, lane),
                (unsigned long long)bs::loadLane(arr, quot, lane));

    // ReLU and max demo.
    bs::VecSlice r = rows.alloc(8);
    bs::storeVector(arr, r, {5, 200, 127, 128, 0});
    bs::relu(arr, r);
    auto relued = bs::loadVector(arr, r);
    std::printf("relu([5,-56,127,-128,0]) = [%llu,%llu,%llu,%llu,"
                "%llu] (two's complement bytes)\n",
                (unsigned long long)relued[0],
                (unsigned long long)relued[1],
                (unsigned long long)relued[2],
                (unsigned long long)relued[3],
                (unsigned long long)relued[4]);

    // The §III-A throughput argument: element-wise sum of 512 32-bit
    // elements. A scalar core: 512 operations. Bit-serial SRAM: the
    // elements sit on 512 lanes of two arrays and finish in 33
    // cycles.
    sram::Array arr2(256, 256);
    bs::RowAllocator rows2(arr2.rows());
    bs::VecSlice wa = rows2.alloc(32), wb = rows2.alloc(32),
                 ws = rows2.alloc(33);
    bs::storeVector(arr2, wa, rng.bitVector(256, 32));
    bs::storeVector(arr2, wb, rng.bitVector(256, 32));
    uint64_t wide = bs::add(arr2, wa, wb, ws);
    std::printf("\n512x 32-bit adds: element-serial processor = 512 "
                "steps; two bit-serial arrays = %llu cycles "
                "(paper §III-A)\n",
                (unsigned long long)wide);
    return 0;
}
