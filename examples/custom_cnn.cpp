/**
 * @file
 * Define your own CNN and run it through the compile-once / run-many
 * Engine:
 *
 *  - describe the topology with the dnn:: builders,
 *  - Engine::compile() calibrates quantization, maps every layer onto
 *    the cache, and pins the filters stationary in their arrays,
 *  - CompiledModel::run() executes functionally (bit-serial array
 *    operations) and answers the timing model from the same call,
 *  - a second compile with the reference backend pins the bit-serial
 *    outputs against ground-truth CPU loops.
 *
 * The network is a small LeNet-style classifier on a 16x16 input;
 * swap the layer list to explore your own topology.
 *
 * Usage: custom_cnn [--backend functional|isa|reference]
 *                   [--threads N] [--seed S]
 */

#include <cstdio>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/engine.hh"
#include "dnn/random.hh"

int
main(int argc, char **argv)
{
    using namespace nc;

    std::string backend_name = "functional";
    unsigned threads = 0;
    uint64_t seed = 7;
    common::ArgParser args("custom_cnn",
                           "A custom CNN through the Engine API");
    args.addString("backend", &backend_name,
                   "functional|isa|reference");
    args.addUnsigned("threads", &threads,
                     "worker threads (0 = auto)");
    args.addUint64("seed", &seed, "weight/input seed");
    args.parse(argc, argv);

    core::BackendKind backend;
    if (!core::parseBackendKind(backend_name, backend) ||
        backend == core::BackendKind::Analytic)
        nc_fatal("--backend must be functional, isa, or reference "
                 "(got '%s')", backend_name.c_str());

    // The topology: conv -> pool -> conv -> pool -> 1x1 head.
    dnn::Network net;
    net.name = "custom-lenet";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 16, 16, 3, 3, 3, 8)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 16, 16, 8, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "conv2", dnn::conv("conv2", 8, 8, 8, 3, 3, 16)));
    net.stages.push_back(dnn::singleOpStage(
        "pool2", dnn::maxPool("pool2", 8, 8, 16, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 4, 4, 16, 1, 1, 10)));

    // Weights and an input image, reproducible from --seed.
    Rng rng(seed);
    core::ModelWeights weights;
    weights.emplace("conv1", dnn::randomQWeights(rng, 8, 3, 3, 3));
    weights.emplace("conv2", dnn::randomQWeights(rng, 16, 8, 3, 3));
    weights.emplace("head", dnn::randomQWeights(rng, 10, 16, 1, 1));
    auto img = dnn::randomQTensor(rng, 3, 16, 16);

    // Compile once: mapping, §IV-C weight layout, calibration, and
    // stationary filter loading all happen here.
    core::EngineOptions opts;
    opts.backend = backend;
    opts.threads = threads;
    core::Engine engine(opts);
    auto model = engine.compile(net, weights);

    std::printf("== %s through the %s backend ==\n", net.name.c_str(),
                core::backendKindName(backend));
    const auto *head = model.findLayer("head");
    uint64_t arrays = backend == core::BackendKind::Reference
                          ? 0 // CPU loops pin nothing
                          : head->baseArray + head->weights.m;
    std::printf("compiled %zu layers; %llu arrays hold stationary "
                "filters\n",
                model.compiledLayers().size(),
                (unsigned long long)arrays);

    // Run many: the second call re-uses everything the first set up.
    auto r1 = model.run(img);
    auto r2 = model.run(img);
    std::printf("run twice on one image: outputs %s\n",
                r1.output.data() == r2.output.data()
                    ? "bit-identical (compile-once, run-many)"
                    : "MISMATCH");

    // Pin against the reference backend (ground-truth CPU loops).
    core::EngineOptions ref_opts = opts;
    ref_opts.backend = core::BackendKind::Reference;
    auto ref_model = core::Engine(ref_opts).compile(net, weights);
    auto ref = ref_model.run(img);
    std::printf("vs reference backend: %s\n",
                r1.output.data() == ref.output.data()
                    ? "bit-exact"
                    : "MISMATCH");

    std::printf("\nclass logits (10 lanes):");
    for (unsigned ci = 0; ci < r1.output.channels(); ++ci)
        std::printf(" %3u", r1.output.at(ci, 0, 0));
    std::printf("\n");

    // The analytic answer arrived with the same run() call.
    std::printf("\ntiming model: %.4f ms end-to-end on a 35MB LLC "
                "(tiny nets waste the cache: per-layer fixed costs "
                "dominate and utilization is low)\n",
                r1.report.latencyMs());
    if (auto *cc = model.computeCache()) {
        std::printf("simulated arrays: %zu, lock-step compute cycles: "
                    "%llu (%.1f us at 2.5 GHz)\n",
                    cc->materializedCount(),
                    (unsigned long long)cc->lockstepCycles(),
                    cc->lockstepCycles() / 2.5e9 * 1e6);
    }
    return 0;
}
