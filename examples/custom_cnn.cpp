/**
 * @file
 * Define your own CNN and run it two ways:
 *
 *  - functionally, through real bit-serial array operations (the
 *    accumulators are checked against the reference executor), and
 *  - through the timing model, to see how the same network would
 *    perform occupying a server-class LLC.
 *
 * The network here is a small LeNet-style classifier on a 16x16
 * input; swap the layer list to explore your own topology.
 */

#include <cstdio>

#include "common/rng.hh"
#include "core/executor.hh"
#include "core/neural_cache.hh"
#include "dnn/reference.hh"

namespace
{

nc::dnn::QTensor
randomImage(nc::Rng &rng, unsigned c, unsigned h, unsigned w)
{
    nc::dnn::QTensor t(c, h, w,
                       nc::dnn::QuantParams::fromRange(0.f, 1.f));
    for (auto &v : t.data())
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return t;
}

nc::dnn::QWeights
randomFilters(nc::Rng &rng, unsigned m, unsigned c, unsigned r,
              unsigned s)
{
    nc::dnn::QWeights w(m, c, r, s);
    for (auto &v : w.data)
        v = static_cast<uint8_t>(rng.uniformBits(8));
    return w;
}

/** Requantize 32-bit accumulators to bytes with CPU-side scalars. */
nc::dnn::QTensor
requant(const std::vector<uint32_t> &acc, unsigned m, unsigned oh,
        unsigned ow)
{
    uint32_t peak = 1;
    for (auto a : acc)
        peak = std::max(peak, a);
    int32_t mult;
    int shift;
    nc::dnn::quantizeMultiplier(255.0 / peak, mult, shift);
    nc::dnn::QTensor out(m, oh, ow);
    for (size_t i = 0; i < acc.size(); ++i)
        out.data()[i] = nc::dnn::requantize(
            static_cast<int32_t>(acc[i]), mult, shift, 0);
    return out;
}

} // namespace

int
main()
{
    using namespace nc;

    Rng rng(7);
    cache::ComputeCache cc;
    core::Executor ex(cc);

    std::printf("== custom CNN, functional bit-serial execution ==\n");

    // conv1: 3x3, 3 -> 8 channels, SAME.
    auto img = randomImage(rng, 3, 16, 16);
    auto w1 = randomFilters(rng, 8, 3, 3, 3);
    unsigned oh, ow, rh, rw;
    auto acc1 = ex.conv(img, w1, 1, true, oh, ow);
    auto ref1 = dnn::convQuantUnsigned(img, w1, 1, true, rh, rw);
    std::printf("conv1 8x%ux%u   : %s\n", oh, ow,
                acc1 == ref1 ? "bit-exact vs reference" : "MISMATCH");
    auto a1 = requant(acc1, 8, oh, ow);

    // pool: 2x2 stride 2 max.
    auto p1 = ex.maxPool(a1, 2, 2, 2, false);
    auto p1ref = dnn::maxPoolQuant(a1, 2, 2, 2, false);
    std::printf("maxpool 8x%ux%u : %s\n", p1.height(), p1.width(),
                p1.data() == p1ref.data() ? "bit-exact vs reference"
                                          : "MISMATCH");

    // conv2: 3x3, 8 -> 16 channels.
    auto w2 = randomFilters(rng, 16, 8, 3, 3);
    auto acc2 = ex.conv(p1, w2, 1, true, oh, ow);
    auto ref2 = dnn::convQuantUnsigned(p1, w2, 1, true, rh, rw);
    std::printf("conv2 16x%ux%u  : %s\n", oh, ow,
                acc2 == ref2 ? "bit-exact vs reference" : "MISMATCH");
    auto a2 = requant(acc2, 16, oh, ow);

    // head: 1x1 squeeze to 10 "classes" on the pooled map.
    auto p2 = ex.maxPool(a2, 2, 2, 2, false);
    auto w3 = randomFilters(rng, 10, 16, 1, 1);
    auto logits = ex.conv(p2, w3, 1, true, oh, ow);
    auto ref3 = dnn::convQuantUnsigned(p2, w3, 1, true, rh, rw);
    std::printf("head 10x%ux%u   : %s\n", oh, ow,
                logits == ref3 ? "bit-exact vs reference"
                               : "MISMATCH");

    std::printf("\narrays used: %zu, lock-step compute cycles: %llu "
                "(%.1f us at 2.5 GHz)\n",
                cc.materializedCount(),
                (unsigned long long)ex.lockstepCycles(),
                ex.lockstepCycles() / 2.5e9 * 1e6);

    // The same topology through the timing model.
    dnn::Network net;
    net.name = "custom-lenet";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 16, 16, 3, 3, 3, 8)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 16, 16, 8, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "conv2", dnn::conv("conv2", 8, 8, 8, 3, 3, 16)));
    net.stages.push_back(dnn::singleOpStage(
        "pool2", dnn::maxPool("pool2", 8, 8, 16, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 4, 4, 16, 1, 1, 10)));

    core::NeuralCache sim;
    auto rep = sim.infer(net);
    std::printf("\ntiming model: %.4f ms end-to-end on a 35MB LLC "
                "(tiny nets waste the cache: per-layer fixed costs "
                "dominate and utilization is low)\n",
                rep.latencyMs());
    return 0;
}
