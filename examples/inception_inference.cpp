/**
 * @file
 * Full Inception v3 inference study: per-layer latency against the
 * CPU/GPU baselines, the Figure-14 phase breakdown, energy, and a
 * batching sweep — everything the paper's evaluation section reports,
 * in one run.
 *
 * Usage: inception_inference [batch]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "baselines/device_model.hh"
#include "core/neural_cache.hh"
#include "core/report.hh"
#include "dnn/inception_v3.hh"

int
main(int argc, char **argv)
{
    using namespace nc;

    unsigned batch = argc > 1 ? std::atoi(argv[1]) : 1;
    if (batch < 1)
        batch = 1;

    auto net = dnn::inceptionV3();
    core::NeuralCache sim;
    auto rep = sim.inferBatch(net, batch);

    std::printf("== Neural Cache: %s, batch %u ==\n\n",
                net.name.c_str(), batch);
    core::printStageTable(std::cout, rep);

    std::printf("\nphase breakdown (per image):\n");
    core::printBreakdown(std::cout, rep);

    std::printf("\nenergy & power:\n");
    core::printEnergy(std::cout, rep);

    auto cpu = baselines::DeviceModel::xeonE5_2697v3(net);
    auto gpu = baselines::DeviceModel::titanXp(net);
    std::printf("\nbaselines: cpu %.1f ms, gpu %.1f ms -> speedups "
                "%.1fx / %.1fx\n",
                cpu.totalLatencyMs(net), gpu.totalLatencyMs(net),
                cpu.totalLatencyMs(net) / rep.latencyMs(),
                gpu.totalLatencyMs(net) / rep.latencyMs());

    std::printf("\nbatch sweep (dual socket):\n");
    std::printf("%8s %14s %12s\n", "batch", "throughput", "ms/batch");
    for (unsigned b : {1u, 4u, 16u, 64u, 256u}) {
        auto r = sim.inferBatch(net, b);
        std::printf("%8u %11.0f inf/s %12.1f\n", b, r.throughput(),
                    r.batchMs());
    }
    return 0;
}
