/**
 * @file
 * Full Inception v3 inference study: per-layer latency against the
 * CPU/GPU baselines, the Figure-14 phase breakdown, energy, and a
 * batching sweep — everything the paper's evaluation section reports,
 * in one run.
 *
 * The network is compiled exactly once; every batch size in the
 * sweep is answered from the same CompiledModel (the §IV-E
 * amortization: mapping and filter-layout planning are not repeated
 * per query).
 *
 * Usage: inception_inference [--batch N] [--threads N]
 */

#include <cstdio>
#include <iostream>

#include "baselines/device_model.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "core/engine.hh"
#include "core/report.hh"
#include "dnn/inception_v3.hh"

int
main(int argc, char **argv)
{
    using namespace nc;

    unsigned batch = 1;
    unsigned threads = 0;
    common::ArgParser args("inception_inference",
                           "Inception v3 evaluation study");
    args.addUnsigned("batch", &batch, "images per batch (>= 1)");
    args.addUnsigned("threads", &threads,
                     "worker threads (0 = auto)");
    args.parse(argc, argv);
    if (batch < 1)
        nc_fatal("--batch must be at least 1");

    auto net = dnn::inceptionV3();

    core::EngineOptions opts;
    opts.backend = core::BackendKind::Analytic;
    opts.threads = threads;
    core::Engine engine(opts);
    auto model = engine.compile(net); // mapping/tiling paid here, once

    auto rep = model.report(batch);
    std::printf("== Neural Cache: %s, batch %u ==\n\n",
                net.name.c_str(), batch);
    core::printStageTable(std::cout, rep);

    std::printf("\nphase breakdown (per image):\n");
    core::printBreakdown(std::cout, rep);

    std::printf("\nenergy & power:\n");
    core::printEnergy(std::cout, rep);

    auto cpu = baselines::DeviceModel::xeonE5_2697v3(net);
    auto gpu = baselines::DeviceModel::titanXp(net);
    std::printf("\nbaselines: cpu %.1f ms, gpu %.1f ms -> speedups "
                "%.1fx / %.1fx\n",
                cpu.totalLatencyMs(net), gpu.totalLatencyMs(net),
                cpu.totalLatencyMs(net) / rep.latencyMs(),
                gpu.totalLatencyMs(net) / rep.latencyMs());

    std::printf("\nbatch sweep (dual socket, one compiled model):\n");
    std::printf("%8s %14s %12s\n", "batch", "throughput", "ms/batch");
    for (unsigned b : {1u, 4u, 16u, 64u, 256u}) {
        auto r = model.report(b);
        std::printf("%8u %11.0f inf/s %12.1f\n", b, r.throughput(),
                    r.batchMs());
    }
    return 0;
}
