/**
 * @file
 * Quickstart: the three layers of the library in ~90 lines.
 *
 *  1. Compute *inside* an SRAM array: store two vectors transposed,
 *     add them with bit-line micro-ops, read the result back.
 *  2. Ask the mapper how a convolution spreads over a Xeon-class LLC.
 *  3. Compile Inception v3 once with the Engine and query the Neural
 *     Cache timing model — repeatedly, for free — from the resulting
 *     CompiledModel.
 *
 * Build & run:  ./build/examples/quickstart [--threads N]
 */

#include <cstdio>

#include "bitserial/alu.hh"
#include "common/argparse.hh"
#include "core/engine.hh"
#include "dnn/inception_v3.hh"
#include "mapping/plan.hh"

int
main(int argc, char **argv)
{
    using namespace nc;
    namespace bs = bitserial;

    unsigned threads = 0;
    common::ArgParser args("quickstart",
                           "Tour of the three library layers");
    args.addUnsigned("threads", &threads,
                     "engine worker threads (0 = auto)");
    args.parse(argc, argv);

    // --- 1. In-SRAM vector arithmetic -----------------------------
    sram::Array array; // one 8KB array: 256 word lines x 256 bit lines
    bs::RowAllocator rows(array.rows());
    bs::VecSlice a = rows.alloc(8);
    bs::VecSlice b = rows.alloc(8);
    bs::VecSlice sum = rows.alloc(9);
    bs::VecSlice prod = rows.alloc(16);

    // 256 lanes; show the first few.
    std::vector<uint64_t> av, bv;
    for (unsigned i = 0; i < array.cols(); ++i) {
        av.push_back(i % 200);
        bv.push_back((3 * i + 7) % 200);
    }
    bs::storeVector(array, a, av);
    bs::storeVector(array, b, bv);

    uint64_t add_cycles = bs::add(array, a, b, sum);
    uint64_t mul_cycles = bs::multiply(array, a, b, prod);

    auto sums = bs::loadVector(array, sum);
    auto prods = bs::loadVector(array, prod);
    std::printf("in-SRAM add:      256 lanes in %llu cycles "
                "(e.g. %llu + %llu = %llu)\n",
                (unsigned long long)add_cycles,
                (unsigned long long)av[5], (unsigned long long)bv[5],
                (unsigned long long)sums[5]);
    std::printf("in-SRAM multiply: 256 lanes in %llu cycles "
                "(e.g. %llu * %llu = %llu)\n",
                (unsigned long long)mul_cycles,
                (unsigned long long)av[5], (unsigned long long)bv[5],
                (unsigned long long)prods[5]);

    // --- 2. Mapping a convolution onto the LLC --------------------
    auto op = dnn::conv("demo", 147, 147, 32, 3, 3, 64).conv;
    auto plan =
        mapping::planConv(op, cache::Geometry::xeonE5_35MB());
    std::printf("\nmapping Conv 3x3 C=32 M=64 on a 35MB LLC:\n");
    std::printf("  %llu convolutions, %llu in parallel, %llu serial "
                "passes, %.1f%% utilization\n",
                (unsigned long long)op.convCount(),
                (unsigned long long)plan.parallelConvs,
                (unsigned long long)plan.serialPasses,
                plan.utilization * 100);

    // --- 3. Whole-model inference timing --------------------------
    // Compile once: quantization calibration, mapping/tiling, and
    // weight layout are priced here. Every report() afterwards is
    // pure arithmetic on the cached per-stage costs.
    core::EngineOptions opts;
    opts.backend = core::BackendKind::Analytic;
    opts.threads = threads;
    core::Engine engine(opts); // dual-socket Xeon E5-2697 v3, 35MB LLC
    auto model = engine.compile(dnn::inceptionV3());

    auto rep = model.report();
    std::printf("\nInception v3 on Neural Cache: %.2f ms/inference, "
                "%.0f inf/s, %.2f J, %.1f W\n",
                rep.latencyMs(), rep.throughput(),
                rep.energy.totalJ(), rep.avgPowerW());
    auto batched = model.report(64); // same compiled model, no re-plan
    std::printf("batch 64 from the same compiled model: %.0f inf/s\n",
                batched.throughput());
    return 0;
}
