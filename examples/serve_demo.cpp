/**
 * @file
 * Serve a compiled model behind the deadline-driven dynamic batcher:
 *
 *  - compile a small CNN once with the Engine API,
 *  - wrap it in an InferenceServer (poll-loop TCP front end on
 *    127.0.0.1, plus the in-process loopback transport),
 *  - walk one request/response pair through the length-prefixed wire
 *    protocol to show every field a client gets back,
 *  - fire a closed-loop burst of concurrent clients and watch the
 *    batcher coalesce them into image-parallel runBatch passes,
 *    verifying each served output bit-identical to a direct run,
 *  - overrun the admission cap to show typed backpressure rejects
 *    (never silent drops), then drain and shut down gracefully.
 *
 * Usage: serve_demo [--port P] [--deadline-ms D] [--max-inflight M]
 *                   [--priority P] [--requests N] [--clients N]
 *                   [--threads N] [--seed S] [--loopback]
 */

#include <cstdio>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/engine.hh"
#include "dnn/random.hh"
#include "serve/flags.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"

int
main(int argc, char **argv)
{
    using namespace nc;

    serve::ServeFlags flags;
    unsigned requests = 24, clients = 3, threads = 0;
    uint64_t seed = 7;
    bool loopbackOnly = false;
    common::ArgParser args("serve_demo",
                           "A compiled model behind the serving "
                           "front end");
    flags.registerWith(args);
    args.addUint("requests", &requests, "burst size", 1, 4096);
    args.addUint("clients", &clients, "concurrent clients", 1, 64);
    args.addUnsigned("threads", &threads, "worker threads (0 = auto)");
    args.addUint64("seed", &seed, "weight/input seed");
    args.addFlag("loopback", &loopbackOnly,
                 "skip TCP, use only the in-process transport");
    args.parse(argc, argv);

    // The same LeNet-style topology as examples/custom_cnn.
    dnn::Network net;
    net.name = "custom-lenet";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 16, 16, 3, 3, 3, 8)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 16, 16, 8, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "conv2", dnn::conv("conv2", 8, 8, 8, 3, 3, 16)));
    net.stages.push_back(dnn::singleOpStage(
        "pool2", dnn::maxPool("pool2", 8, 8, 16, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 4, 4, 16, 1, 1, 10)));
    Rng rng(seed);
    core::ModelWeights weights;
    weights.emplace("conv1", dnn::randomQWeights(rng, 8, 3, 3, 3));
    weights.emplace("conv2", dnn::randomQWeights(rng, 16, 8, 3, 3));
    weights.emplace("head", dnn::randomQWeights(rng, 10, 16, 1, 1));

    core::EngineOptions eopts;
    eopts.backend = core::BackendKind::Functional;
    eopts.threads = threads;
    core::Engine engine(eopts);
    auto model = engine.compile(net, weights);

    serve::InferenceServer server(model, flags.serverOptions());
    bool overSocket = false;
    if (!loopbackOnly) {
        std::string err;
        overSocket = server.start(&err);
        if (!overSocket)
            nc_warn("TCP unavailable (%s) — continuing over the "
                    "loopback transport", err.c_str());
    }
    std::printf("== %s behind the serving front end ==\n",
                net.name.c_str());
    if (overSocket)
        std::printf("listening on 127.0.0.1:%u (deadline %u ms, "
                    "max-inflight %u, %u image slots per pass)\n",
                    server.port(), flags.deadlineMs,
                    flags.maxInflight,
                    server.batcher().imagesPerPass());
    else
        std::printf("in-process loopback transport (deadline %u ms, "
                    "max-inflight %u, %u image slots per pass)\n",
                    flags.deadlineMs, flags.maxInflight,
                    server.batcher().imagesPerPass());

    // -- one request, field by field ---------------------------------
    // Request: u32 length prefix, magic/version/kind header, id,
    // priority, then the c/h/w + quant-params + bytes of the tensor.
    // Response: the same framing carrying status, the per-request
    // slice of the InferenceReport, and the output tensor.
    auto image = dnn::randomQTensor(rng, 3, 16, 16);
    serve::wire::RequestFrame req;
    req.id = 1;
    req.priority = static_cast<uint8_t>(flags.priority);
    req.input = image;
    std::optional<serve::wire::ResponseFrame> rsp;
    if (overSocket) {
        auto client = serve::SocketClient::connectTo(
            static_cast<uint16_t>(server.port()));
        nc_assert(client.has_value(), "demo client cannot connect");
        client->send(req);
        rsp = client->receive();
    } else {
        auto client = server.loopback();
        client.send(req);
        rsp = client.receive();
    }
    nc_assert(rsp.has_value(), "no response to the demo request");
    auto direct = model.run(image);
    std::printf("\none request through the wire protocol:\n"
                "  id %llu  status %s  queue %.3f ms  latency %.3f "
                "ms\n  served in pass %llu with %u image(s); output "
                "%s direct run()\n",
                (unsigned long long)rsp->id,
                serve::wire::statusName(rsp->status), rsp->queueMs,
                rsp->latencyMs, (unsigned long long)rsp->passIndex,
                rsp->batchSize,
                rsp->output.data() == direct.output.data()
                    ? "bit-identical to"
                    : "MISMATCHES");

    // -- a concurrent burst ------------------------------------------
    // Closed-loop clients; the batcher coalesces whatever is queued
    // when a pass launches (flush on full or on the oldest request's
    // deadline), so occupancy climbs with concurrency.
    serve::LoadGenOptions lopts;
    lopts.requests = requests;
    lopts.clients = clients;
    lopts.priority = flags.priority;
    lopts.seed = seed;
    lopts.overSocket = overSocket;
    auto stats = serve::runLoadGen(model, server, lopts);
    std::printf("\nburst of %u requests from %u clients:\n"
                "  p50 %.2f ms  p99 %.2f ms  %.1f img/s  mean "
                "occupancy %.2f\n  served outputs %s direct "
                "runBatch\n",
                requests, clients, stats.p50Ms, stats.p99Ms,
                stats.imagesPerSec, stats.meanOccupancy,
                stats.mismatched == 0 ? "bit-identical to"
                                      : "MISMATCH");
    auto bstats = server.batcher().stats();
    std::printf("  batcher: %llu passes (%llu deadline flushes), "
                "occupancy histogram:",
                (unsigned long long)bstats.passes,
                (unsigned long long)bstats.deadlineFlushes);
    for (size_t n = 1; n < bstats.occupancyHist.size(); ++n)
        if (bstats.occupancyHist[n])
            std::printf(" %zux%llu", n,
                        (unsigned long long)bstats.occupancyHist[n]);
    std::printf("\n");

    // -- backpressure ------------------------------------------------
    // Pause the runner so the queue cannot drain, then offer more
    // than --max-inflight: the overflow is refused with the typed
    // Rejected status, loudly, not dropped.
    server.batcher().pause();
    auto probe = server.loopback();
    unsigned offered = flags.maxInflight + 2;
    for (unsigned i = 0; i < offered; ++i) {
        serve::wire::RequestFrame burst;
        burst.id = 100 + i;
        burst.input = image;
        probe.send(burst);
    }
    unsigned rejected = 0;
    std::string rejectMessage;
    for (unsigned i = 0; i < 2; ++i) { // the overflow replies now
        auto r = probe.receive();
        if (r && r->status == serve::wire::Status::Rejected) {
            ++rejected;
            rejectMessage = r->message;
        }
    }
    std::printf("\nadmission control: offered %u against a cap of "
                "%u while paused — %u typed rejects (\"%s\")\n",
                offered, flags.maxInflight, rejected,
                rejectMessage.c_str());
    server.batcher().resume();

    // -- graceful shutdown -------------------------------------------
    // drain() finishes everything admitted before the demo exits.
    server.shutdown();
    auto sstats = server.serverStats();
    std::printf("\ngraceful drain: batcher served %llu of %llu "
                "accepted across %llu passes; server saw %llu "
                "frames, %llu connections, %llu protocol errors\n",
                (unsigned long long)server.batcher().stats().served,
                (unsigned long long)server.batcher().stats().accepted,
                (unsigned long long)server.batcher().stats().passes,
                (unsigned long long)sstats.framesIn,
                (unsigned long long)sstats.connectionsAccepted,
                (unsigned long long)sstats.protocolErrors);
    return stats.mismatched == 0 ? 0 : 1;
}
