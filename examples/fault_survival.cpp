/**
 * @file
 * Survive dead SRAM arrays: fault injection, BIST, and self-healing
 * remap through the public Engine API.
 *
 *  - compile the same small CNN twice, once fault-free and once with
 *    the first three physical arrays killed outright (plus optional
 *    random kills at --fault-rate),
 *  - the compile-time BIST march scan retires the dead arrays and the
 *    logical->physical remap places every filter on survivors, so the
 *    faulty model produces bit-identical outputs,
 *  - then a mid-run soft error is injected into a guard row; the
 *    post-pass canary scan detects it, retires the array, substitutes
 *    a spare, re-pins the affected filters, and retries the pass —
 *    same bits out, with the repair visible in the run report.
 *
 * Usage: fault_survival [--fault-seed S] [--fault-rate R]
 *                       [--threads N]
 */

#include <cstdio>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/engine.hh"
#include "dnn/random.hh"

int
main(int argc, char **argv)
{
    using namespace nc;

    uint64_t fault_seed = 0xfa017;
    double fault_rate = 0.0;
    unsigned threads = 0;
    common::ArgParser args(
        "fault_survival",
        "Kill SRAM arrays; BIST + self-healing remap survive them");
    args.addUint64("fault-seed", &fault_seed, "fault campaign seed");
    args.addDouble("fault-rate", &fault_rate,
                   "probability an array is wholly dead [0, 1]");
    args.addUnsigned("threads", &threads,
                     "worker threads (0 = auto)");
    args.parse(argc, argv);
    if (fault_rate < 0.0 || fault_rate > 1.0)
        nc_fatal("--fault-rate %g is outside [0, 1]", fault_rate);

    // A small conv net and reproducible weights/input.
    dnn::Network net;
    net.name = "fault-demo";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 16, 16, 3, 3, 3, 8)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 16, 16, 8, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "conv2", dnn::conv("conv2", 8, 8, 8, 3, 3, 16)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 8, 8, 16, 1, 1, 10)));

    Rng rng(17);
    core::ModelWeights weights;
    weights.emplace("conv1", dnn::randomQWeights(rng, 8, 3, 3, 3));
    weights.emplace("conv2", dnn::randomQWeights(rng, 16, 8, 3, 3));
    weights.emplace("head", dnn::randomQWeights(rng, 10, 16, 1, 1));
    auto img = dnn::randomQTensor(rng, 3, 16, 16);

    // Ground truth: the same network on ideal silicon.
    core::EngineOptions opts;
    opts.threads = threads;
    auto healthy = core::Engine(opts).compile(net, weights);
    auto want = healthy.run(img);

    // The campaign: the first three physical arrays — exactly where
    // placement would otherwise pin conv1's filters — are dead, plus
    // random whole-array kills at --fault-rate.
    core::EngineOptions fopts = opts;
    fopts.faults.seed = fault_seed;
    fopts.faults.killRate = fault_rate;
    fopts.faults.killArrays = {0, 1, 2};
    auto model = core::Engine(fopts).compile(net, weights);
    auto r1 = model.run(img);

    std::printf("== %s with arrays 0-2 dead (seed %llu, kill rate "
                "%g) ==\n",
                net.name.c_str(),
                (unsigned long long)fault_seed, fault_rate);
    std::printf("BIST retired %llu arrays at compile; placement "
                "moved every filter onto survivors\n",
                (unsigned long long)r1.report.arraysRetired);
    bool bist_ok = r1.output.data() == want.output.data();
    std::printf("outputs vs fault-free run: %s\n",
                bist_ok ? "bit-identical" : "MISMATCH");

    // Now a soft error strikes mid-flight: flip a bit in the guard
    // row of the array holding logical slot 0. The canary sweep after
    // the pass catches it, retires the array, substitutes a spare,
    // re-pins only the affected filters, and reruns the pass.
    auto *cc = model.computeCache();
    cc->injectFlip(cc->physicalOf(0), cc->geometry().arrayRows - 1,
                   3);
    auto r2 = model.run(img);
    std::printf("\n== mid-run transient on a guard row ==\n");
    std::printf("detected %llu corrupt guard rows, retired %llu "
                "arrays total, retried %llu passes\n",
                (unsigned long long)r2.report.faultsDetected,
                (unsigned long long)r2.report.arraysRetired,
                (unsigned long long)r2.report.passRetries);
    bool heal_ok = r2.output.data() == want.output.data() &&
                   r2.report.passRetries > 0;
    std::printf("outputs after self-healing: %s\n",
                heal_ok ? "bit-identical" : "MISMATCH");

    if (!bist_ok || !heal_ok)
        return 1;
    std::printf("\nthe model survived %llu dead arrays with zero "
                "accuracy loss\n",
                (unsigned long long)r2.report.arraysRetired);
    return 0;
}
