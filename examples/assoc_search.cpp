/**
 * @file
 * Associative search: the cache as a content-addressable memory.
 *
 * Neural Cache inherits Compute Cache's search capability (§II-B:
 * "copy, bulk zeroing, xor, equality comparison, and search"). This
 * example stores a table of 16-bit record keys transposed across the
 * bit lines of several arrays and answers WHERE-clause style queries
 * with tag-latch folds: exact match (searchKey), range predicates
 * (compareGE), and a conjunction of both — each in tens of cycles
 * regardless of how many records share an array.
 *
 * Usage: assoc_search [--seed S]
 */

#include <cstdio>
#include <vector>

#include "bitserial/alu.hh"
#include "bitserial/extensions.hh"
#include "cache/compute_cache.hh"
#include "common/argparse.hh"
#include "common/rng.hh"

int
main(int argc, char **argv)
{
    using namespace nc;
    namespace bs = bitserial;

    uint64_t seed = 99;
    common::ArgParser args("assoc_search",
                           "In-cache associative search demo");
    args.addUint64("seed", &seed, "record-table seed");
    args.parse(argc, argv);

    cache::ComputeCache cc;
    const unsigned arrays = 4;
    const unsigned lanes = cc.geometry().arrayCols;
    const unsigned records = arrays * lanes; // 1024 records

    // The "table": key (16 bits) and value (8 bits) per record.
    Rng rng(seed);
    std::vector<uint64_t> keys(records), vals(records);
    for (unsigned i = 0; i < records; ++i) {
        keys[i] = rng.uniformBits(14);
        vals[i] = rng.uniformBits(8);
    }
    keys[777] = 12345; // a needle to find later

    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice key = rows.alloc(16);
    bs::VecSlice val = rows.alloc(8);
    bs::VecSlice thr = rows.alloc(16);
    bs::VecSlice cmp = rows.alloc(16);

    for (unsigned a = 0; a < arrays; ++a) {
        auto &arr = cc.array(cc.coordOf(a));
        std::vector<uint64_t> k(keys.begin() + a * lanes,
                                keys.begin() + (a + 1) * lanes);
        std::vector<uint64_t> v(vals.begin() + a * lanes,
                                vals.begin() + (a + 1) * lanes);
        bs::storeVector(arr, key, k);
        bs::storeVector(arr, val, v);
        bs::storeVector(arr, thr,
                        std::vector<uint64_t>(lanes, 12000));
    }

    std::printf("=== in-cache associative search over %u records "
                "===\n\n",
                records);

    // Query 1: WHERE key == 12345.
    unsigned hits = 0, hit_lane = 0, hit_array = 0;
    uint64_t cycles = 0;
    for (unsigned a = 0; a < arrays; ++a) {
        auto &arr = cc.array(cc.coordOf(a));
        cycles = bs::searchKey(arr, key, 12345);
        for (unsigned l = 0; l < lanes; ++l) {
            if (arr.tag().get(l)) {
                ++hits;
                hit_lane = l;
                hit_array = a;
            }
        }
    }
    std::printf("WHERE key == 12345: %u hit(s) in %llu cycles/array "
                "(record %u)\n",
                hits, (unsigned long long)cycles,
                hit_array * lanes + hit_lane);
    auto &harr = cc.array(cc.coordOf(hit_array));
    std::printf("  -> value = %llu\n",
                (unsigned long long)bs::loadLane(harr, val, hit_lane));

    // Query 2: WHERE key >= 12000 (range scan via compareGE).
    unsigned ge_hits = 0;
    for (unsigned a = 0; a < arrays; ++a) {
        auto &arr = cc.array(cc.coordOf(a));
        cycles = bs::compareGE(arr, key, thr, cmp);
        ge_hits += bs::matchCount(arr);
    }
    unsigned ge_want = 0;
    for (auto k : keys)
        ge_want += k >= 12000;
    std::printf("\nWHERE key >= 12000: %u hits (scan says %u), "
                "%llu cycles/array\n",
                ge_hits, ge_want, (unsigned long long)cycles);

    // Query 3: conjunction — key >= 12000 AND value == 7 — by
    // folding a search into the surviving tag.
    unsigned and_hits = 0;
    for (unsigned a = 0; a < arrays; ++a) {
        auto &arr = cc.array(cc.coordOf(a));
        bs::compareGE(arr, key, thr, cmp);
        // Fold "value == 7" into the existing tag (AND semantics).
        for (unsigned j = 0; j < 8; ++j) {
            if ((7u >> j) & 1)
                arr.opTagAnd(val.row(j));
            else
                arr.opTagAndInv(val.row(j));
        }
        and_hits += bs::matchCount(arr);
    }
    unsigned and_want = 0;
    for (unsigned i = 0; i < records; ++i)
        and_want += keys[i] >= 12000 && vals[i] == 7;
    std::printf("WHERE key >= 12000 AND value == 7: %u hits "
                "(scan says %u)\n",
                and_hits, and_want);

    std::printf("\neach predicate costs ~bit-width cycles per array, "
                "independent of the %u records per array — the BCAM "
                "behaviour the bit-line circuits were first built "
                "for.\n",
                lanes);
    return 0;
}
