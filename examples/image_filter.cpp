/**
 * @file
 * A non-DNN use of the compute cache: classic image filtering.
 *
 * The paper pitches Neural Cache as a general data-parallel
 * co-processor ("improves performance of many other workloads when
 * not functioning as a DNN accelerator", §VII). This example
 * compiles a 3x3 box blur as a one-layer "network" — the Engine's
 * quantization calibration derives the x227 >> 11 (~ divide by 9)
 * normalizer from the all-ones kernel automatically — runs it
 * in-cache, then extracts a bright-region mask with a raw bit-serial
 * compare, and renders the stages as ASCII art.
 *
 * Usage: image_filter [--backend functional|isa|reference]
 */

#include <cstdio>
#include <vector>

#include "bitserial/alu.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "core/engine.hh"

namespace
{

/** A synthetic 24x24 image: two bright blobs on a dark gradient. */
nc::dnn::QTensor
makeImage()
{
    nc::dnn::QTensor img(1, 24, 24);
    for (unsigned y = 0; y < 24; ++y)
        for (unsigned x = 0; x < 24; ++x) {
            int v = static_cast<int>(2 * y);
            auto blob = [&](int cy, int cx, int bright) {
                int dy = int(y) - cy, dx = int(x) - cx;
                if (dy * dy + dx * dx < 20)
                    v += bright;
            };
            blob(7, 6, 180);
            blob(16, 17, 120);
            img.at(0, y, x) =
                static_cast<uint8_t>(std::min(v, 255));
        }
    return img;
}

void
render(const char *title, const std::vector<uint8_t> &pix, unsigned h,
       unsigned w)
{
    static const char shades[] = " .:-=+*#%@";
    std::printf("%s\n", title);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x)
            std::putchar(shades[pix[y * w + x] * 9 / 255]);
        std::putchar('\n');
    }
    std::putchar('\n');
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nc;
    namespace bs = bitserial;

    std::string backend_name = "functional";
    common::ArgParser args("image_filter",
                           "In-cache box blur + threshold mask");
    args.addString("backend", &backend_name,
                   "functional|isa|reference");
    args.parse(argc, argv);

    core::BackendKind backend;
    if (!core::parseBackendKind(backend_name, backend) ||
        backend == core::BackendKind::Analytic)
        nc_fatal("--backend must be functional, isa, or reference "
                 "(got '%s')", backend_name.c_str());

    auto img = makeImage();
    render("input (synthetic, 24x24):",
           {img.data().begin(), img.data().end()}, 24, 24);

    // The blur as a one-conv network: an all-ones kernel. The
    // compile-time calibration bounds the accumulator at 9 * 255 and
    // derives q = (acc * 227) >> 11, i.e. the divide-by-9 normalize.
    dnn::Network net;
    net.name = "box-blur";
    net.stages.push_back(dnn::singleOpStage(
        "blur", dnn::conv("blur", 24, 24, 1, 3, 3, 1)));

    dnn::QWeights box(1, 1, 3, 3);
    for (auto &v : box.data)
        v = 1;
    core::ModelWeights weights;
    weights.emplace("blur", box);

    core::EngineOptions opts;
    opts.backend = backend;
    core::Engine engine(opts);
    auto model = engine.compile(net, weights);

    const auto *blur = model.findLayer("blur");
    auto result = model.run(img);
    const std::vector<uint8_t> &blurred = result.output.data();
    std::printf("calibrated normalizer: x %u >> %u (~ /9)\n\n",
                blur->requantMult, blur->requantShift);
    render("3x3 box blur (in-cache conv + requantize):", blurred, 24,
           24);

    // Threshold: mask = blurred >= 140, via bit-serial compareGE and
    // a predicated write of white — the raw ALU layer, on a private
    // array.
    std::vector<uint8_t> mask(blurred.size(), 0);
    sram::Array arr;
    unsigned cols = arr.cols();
    bs::RowAllocator rows(arr.rows());
    bs::VecSlice v = rows.alloc(8), thr = rows.alloc(8);
    bs::VecSlice cmp = rows.alloc(8), out = rows.alloc(8);
    for (size_t base = 0; base < blurred.size(); base += cols) {
        size_t n = std::min<size_t>(cols, blurred.size() - base);
        std::vector<uint64_t> vals(n);
        for (size_t i = 0; i < n; ++i)
            vals[i] = blurred[base + i];
        bs::storeVector(arr, v, vals);
        bs::storeVector(arr, thr,
                        std::vector<uint64_t>(n, 140));
        bs::zero(arr, out);
        bs::compareGE(arr, v, thr, cmp); // tag = (pixel >= 140)
        for (unsigned j = 0; j < 8; ++j)
            arr.opOnes(out.row(j), /*pred=*/true);
        for (size_t i = 0; i < n; ++i)
            mask[base + i] = static_cast<uint8_t>(
                bs::loadLane(arr, out, static_cast<unsigned>(i)));
    }
    render("bright-region mask (compareGE 140 + predicated write):",
           mask, 24, 24);

    uint64_t cycles = arr.computeCycles();
    if (auto *cc = model.computeCache())
        cycles += cc->lockstepCycles();
    std::printf("lock-step compute cycles for the whole pipeline: "
                "%llu (%.1f us at 2.5 GHz)\n",
                (unsigned long long)cycles, cycles / 2.5e9 * 1e6);
    return 0;
}
