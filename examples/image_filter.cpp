/**
 * @file
 * A non-DNN use of the compute cache: classic image filtering.
 *
 * The paper pitches Neural Cache as a general data-parallel
 * co-processor ("improves performance of many other workloads when
 * not functioning as a DNN accelerator", §VII). This example runs a
 * 3x3 box blur over a synthetic image as an in-cache convolution,
 * normalizes it with the in-cache requantizer (x 227 >> 11 ~ divide
 * by 9), then extracts a bright-region mask with a bit-serial
 * compare — and renders the stages as ASCII art.
 */

#include <cstdio>
#include <vector>

#include "bitserial/alu.hh"
#include "core/executor.hh"

namespace
{

/** A synthetic 24x24 image: two bright blobs on a dark gradient. */
nc::dnn::QTensor
makeImage()
{
    nc::dnn::QTensor img(1, 24, 24);
    for (unsigned y = 0; y < 24; ++y)
        for (unsigned x = 0; x < 24; ++x) {
            int v = static_cast<int>(2 * y);
            auto blob = [&](int cy, int cx, int bright) {
                int dy = int(y) - cy, dx = int(x) - cx;
                if (dy * dy + dx * dx < 20)
                    v += bright;
            };
            blob(7, 6, 180);
            blob(16, 17, 120);
            img.at(0, y, x) =
                static_cast<uint8_t>(std::min(v, 255));
        }
    return img;
}

void
render(const char *title, const std::vector<uint8_t> &pix, unsigned h,
       unsigned w)
{
    static const char shades[] = " .:-=+*#%@";
    std::printf("%s\n", title);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x)
            std::putchar(shades[pix[y * w + x] * 9 / 255]);
        std::putchar('\n');
    }
    std::putchar('\n');
}

} // namespace

int
main()
{
    using namespace nc;
    namespace bs = bitserial;

    auto img = makeImage();
    render("input (synthetic, 24x24):",
           {img.data().begin(), img.data().end()}, 24, 24);

    cache::ComputeCache cc;
    core::Executor ex(cc);

    // 3x3 box blur: an all-ones kernel through the conv path.
    dnn::QWeights box(1, 1, 3, 3);
    for (auto &v : box.data)
        v = 1;
    unsigned oh, ow;
    auto acc = ex.conv(img, box, 1, true, oh, ow);

    // Normalize in-cache: x * 227 >> 11 is 1/9.02.
    auto blurred = ex.requantize(acc, 227, 11);
    render("3x3 box blur (in-cache conv + requantize /9):", blurred,
           oh, ow);

    // Threshold: mask = blurred >= 140, via bit-serial compareGE and
    // a predicated write of white.
    std::vector<uint8_t> mask(blurred.size(), 0);
    unsigned cols = cc.geometry().arrayCols;
    sram::Array &arr = cc.array(cc.coordOf(1));
    bs::RowAllocator rows(cc.geometry().arrayRows);
    bs::VecSlice v = rows.alloc(8), thr = rows.alloc(8);
    bs::VecSlice cmp = rows.alloc(8), out = rows.alloc(8);
    for (size_t base = 0; base < blurred.size(); base += cols) {
        size_t n = std::min<size_t>(cols, blurred.size() - base);
        std::vector<uint64_t> vals(n);
        for (size_t i = 0; i < n; ++i)
            vals[i] = blurred[base + i];
        bs::storeVector(arr, v, vals);
        bs::storeVector(arr, thr,
                        std::vector<uint64_t>(n, 140));
        bs::zero(arr, out);
        bs::compareGE(arr, v, thr, cmp); // tag = (pixel >= 140)
        for (unsigned j = 0; j < 8; ++j)
            arr.opOnes(out.row(j), /*pred=*/true);
        for (size_t i = 0; i < n; ++i)
            mask[base + i] = static_cast<uint8_t>(
                bs::loadLane(arr, out, static_cast<unsigned>(i)));
    }
    render("bright-region mask (compareGE 140 + predicated write):",
           mask, oh, ow);

    std::printf("lock-step compute cycles for the whole pipeline: "
                "%llu (%.1f us at 2.5 GHz)\n",
                (unsigned long long)cc.lockstepCycles(),
                cc.lockstepCycles() / 2.5e9 * 1e6);
    return 0;
}
