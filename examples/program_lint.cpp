/**
 * @file
 * Static program lint: run the compile-time bit-serial program
 * verifier (core/program_verify.hh) over a named network and dump
 * per-layer verification stats — instructions, rows defined, peak
 * live rows, and the static cycle account the CostModel cross-check
 * proved bit-exact.
 *
 * Engine::compile already runs the same verifier unconditionally and
 * dies on the first violation; this tool re-runs it with the
 * reporting sink so the per-layer numbers are visible, which makes it
 * the CI smoke that every shipped network (including the full-res
 * Inception v3 streaming compile) stays provably legal.
 *
 * Usage: program_lint [--network lenet|inception|inception-small|
 *                       alexnet|vgg16|resnet18]
 *                     [--backend analytic|functional|isa|reference]
 *                     [--threads N]
 */

#include <cstdio>
#include <vector>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "core/engine.hh"
#include "core/program_verify.hh"
#include "dnn/inception_v3.hh"
#include "dnn/models_extra.hh"

namespace
{

/** The custom_cnn LeNet-style topology: a fast default. */
nc::dnn::Network
lenet()
{
    using namespace nc;
    dnn::Network net;
    net.name = "custom-lenet";
    net.stages.push_back(dnn::singleOpStage(
        "conv1", dnn::conv("conv1", 16, 16, 3, 3, 3, 8)));
    net.stages.push_back(dnn::singleOpStage(
        "pool1", dnn::maxPool("pool1", 16, 16, 8, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "conv2", dnn::conv("conv2", 8, 8, 8, 3, 3, 16)));
    net.stages.push_back(dnn::singleOpStage(
        "pool2", dnn::maxPool("pool2", 8, 8, 16, 2, 2, 2)));
    net.stages.push_back(dnn::singleOpStage(
        "head", dnn::conv("head", 4, 4, 16, 1, 1, 10)));
    return net;
}

nc::dnn::Network
netByName(const std::string &name)
{
    using namespace nc;
    if (name == "lenet")
        return lenet();
    if (name == "inception")
        return dnn::inceptionV3(); // full 299x299: streaming regime
    if (name == "inception-small")
        return dnn::inceptionV3(75);
    if (name == "alexnet")
        return dnn::alexNet();
    if (name == "vgg16")
        return dnn::vgg16();
    if (name == "resnet18")
        return dnn::resNet18();
    nc_fatal("unknown --network '%s' (want lenet, inception, "
             "inception-small, alexnet, vgg16, or resnet18)",
             name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nc;

    std::string network = "lenet";
    std::string backend_name = "analytic";
    unsigned threads = 0;
    common::ArgParser args("program_lint",
                           "Static bit-serial program verifier stats");
    args.addString("network", &network,
                   "lenet|inception|inception-small|alexnet|vgg16|"
                   "resnet18");
    args.addString("backend", &backend_name,
                   "analytic|functional|isa|reference");
    args.addUnsigned("threads", &threads, "worker threads (0 = auto)");
    args.parse(argc, argv);

    core::BackendKind backend;
    if (!core::parseBackendKind(backend_name, backend))
        nc_fatal("--backend must be analytic, functional, isa, or "
                 "reference (got '%s')", backend_name.c_str());

    dnn::Network net = netByName(network);

    core::EngineOptions opts;
    opts.backend = backend;
    opts.threads = threads;
    core::Engine engine(opts);

    // compile() runs the verifier unconditionally and dies on the
    // first violation; a second pass with the reporting sink makes
    // the per-layer stats visible. The analytic backend verifies the
    // synthesized canonical programs without placing the model; the
    // functional ones verify the prepared programs plus the audited
    // band placement.
    std::vector<core::verify::LayerProgramReport> reports;
    core::verify::VerifySummary sum;
    if (backend == core::BackendKind::Analytic) {
        engine.compile(net);
        sum = core::verify::verifyNetworkProgramsOrDie(
            net, opts.config, &reports);
    } else {
        auto model = engine.compile(net);
        sum = core::verify::verifyCompiledModelOrDie(model, &reports);
        std::printf("compile verified %llu programs in %.3f ms\n",
                    (unsigned long long)model.programsVerified(),
                    model.verifyMs());
    }

    std::printf("== %s: %zu layer programs verified (%s backend) ==\n",
                net.name.c_str(), reports.size(),
                core::backendKindName(backend));
    std::printf("%-28s %-8s %6s %6s %9s %13s\n", "layer", "kind",
                "insts", "defs", "max_live", "static_cycles");
    for (const auto &r : reports) {
        std::printf("%-28s %-8s %6zu %6zu %9u %13llu\n",
                    r.layer.c_str(), r.kind.c_str(),
                    r.stats.instructions, r.stats.defs,
                    r.stats.maxLiveRows,
                    (unsigned long long)r.stats.staticCycles);
    }
    std::printf("\nverified %llu programs in %.3f ms; every static "
                "cycle sum matched the CostModel bit-exact\n",
                (unsigned long long)sum.programsVerified,
                sum.verifyMs);
    return 0;
}
